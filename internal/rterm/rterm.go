// Package rterm is the remote-terminal (Telnet-like) application of
// table 6-7: "A program on the 'server' host prints characters which
// are transmitted across the network and displayed at the 'user'
// host."  The session runs over any byte-stream transport — the
// user-level Pup/BSP or the kernel TCP — through one small interface,
// which is precisely the portability argument of §2: protocol choice
// is a deployment detail, not an application rewrite.
package rterm

import (
	"time"

	"repro/internal/inet"
	"repro/internal/pup"
	"repro/internal/sim"
)

// Stream is the transport a terminal session runs over.
type Stream interface {
	// Send transmits a chunk of output characters.
	Send(p *sim.Proc, chunk []byte) error
	// Recv returns the next received chunk, or an error when the
	// stream ends or idles out.
	Recv(p *sim.Proc, idle time.Duration) ([]byte, error)
}

// Display models the user-side sink: an MC68010 workstation console
// (3350 chars/s) or a 9600-baud terminal (960 chars/s) from table 6-7.
type Display struct {
	// CPS is the display's character rate.
	CPS int
	// Shown counts characters drawn.
	Shown int
	// start and last bound the displaying interval.
	start, last time.Duration
}

// Draw renders a chunk, taking len/CPS of real (non-CPU) time.
func (d *Display) Draw(p *sim.Proc, chunk []byte) {
	if d.Shown == 0 {
		d.start = p.Now()
	}
	if d.CPS > 0 {
		p.Sleep(time.Duration(len(chunk)) * time.Second / time.Duration(d.CPS))
	}
	d.Shown += len(chunk)
	d.last = p.Now()
}

// Rate returns the achieved output rate in characters per second —
// the number table 6-7 reports.
func (d *Display) Rate() float64 {
	if d.Shown == 0 || d.last <= d.start {
		return 0
	}
	return float64(d.Shown) / (float64(d.last-d.start) / float64(time.Second))
}

// ServerConfig tunes the character producer.
type ServerConfig struct {
	// Chunk is the characters per write (a line-ish unit).
	Chunk int
	// GenCPU is the CPU cost of producing one chunk of output.
	GenCPU time.Duration
}

// DefaultServerConfig returns the benchmark configuration.
func DefaultServerConfig() ServerConfig {
	return ServerConfig{Chunk: 64, GenCPU: 200 * time.Microsecond}
}

// Serve "prints" total characters down the stream in chunks.
func Serve(p *sim.Proc, s Stream, total int, cfg ServerConfig) error {
	if cfg.Chunk <= 0 {
		cfg.Chunk = 64
	}
	line := make([]byte, cfg.Chunk)
	for i := range line {
		line[i] = byte('a' + i%26)
	}
	for sent := 0; sent < total; sent += cfg.Chunk {
		if cfg.GenCPU > 0 {
			p.Consume(cfg.GenCPU)
		}
		if err := s.Send(p, line); err != nil {
			return err
		}
	}
	return nil
}

// View consumes the stream into the display until chars have been
// shown or the stream idles out; it returns the achieved rate.
func View(p *sim.Proc, s Stream, d *Display, chars int, idle time.Duration) float64 {
	for d.Shown < chars {
		chunk, err := s.Recv(p, idle)
		if err != nil {
			break
		}
		d.Draw(p, chunk)
	}
	return d.Rate()
}

// --- BSP adapter ------------------------------------------------------------

// BSPStream adapts a Pup/BSP sender or receiver to Stream; use
// NewBSPServerStream on the printing side and NewBSPUserStream on the
// display side.
type BSPStream struct {
	snd *pup.BSPSender
	rcv *pup.BSPReceiver
}

// NewBSPServerStream wraps a BSP sender.
func NewBSPServerStream(sock *pup.Socket, dst pup.PortAddr, cfg pup.BSPConfig) *BSPStream {
	return &BSPStream{snd: pup.NewBSPSender(sock, dst, cfg)}
}

// NewBSPUserStream wraps a BSP receiver.
func NewBSPUserStream(sock *pup.Socket, cfg pup.BSPConfig) *BSPStream {
	return &BSPStream{rcv: pup.NewBSPReceiver(sock, cfg)}
}

// Send implements Stream.
func (b *BSPStream) Send(p *sim.Proc, chunk []byte) error {
	return b.snd.Send(p, chunk)
}

// Recv implements Stream.
func (b *BSPStream) Recv(p *sim.Proc, idle time.Duration) ([]byte, error) {
	return b.rcv.Receive(p, idle)
}

// --- TCP adapter ------------------------------------------------------------

// TCPStream adapts a kernel TCP connection to Stream.
type TCPStream struct {
	Conn *inet.TCPConn
}

// Send implements Stream.
func (t *TCPStream) Send(p *sim.Proc, chunk []byte) error {
	return t.Conn.Write(p, chunk)
}

// Recv implements Stream.
func (t *TCPStream) Recv(p *sim.Proc, idle time.Duration) ([]byte, error) {
	t.Conn.SetTimeout(idle)
	return t.Conn.Read(p, 0)
}
