package rterm

import (
	"testing"
	"time"

	"repro/internal/ethersim"
	"repro/internal/inet"
	"repro/internal/pfdev"
	"repro/internal/pup"
	"repro/internal/sim"
	"repro/internal/vtime"
)

// session runs one Telnet-style session over the given transport and
// display rate, returning the achieved chars/sec.
func session(t *testing.T, proto string, link ethersim.LinkType, cps, chars int) float64 {
	t.Helper()
	s := sim.New(vtime.DefaultCosts())
	net := ethersim.New(s, link)
	server, user := s.NewHost("server"), s.NewHost("user")
	nicS := net.Attach(server, 1)
	nicU := net.Attach(user, 2)

	d := &Display{CPS: cps}
	var rate float64

	switch proto {
	case "bsp":
		devS := pfdev.Attach(nicS, nil, pfdev.Options{})
		devU := pfdev.Attach(nicU, nil, pfdev.Options{})
		cfg := pup.DefaultBSPConfig()
		cfg.SegSize = 64
		userAddr := pup.PortAddr{Net: 1, Host: 2, Socket: 0x200}
		s.Spawn(user, "display", func(p *sim.Proc) {
			sock, err := pup.Open(p, devU, userAddr, 10)
			if err != nil {
				t.Error(err)
				return
			}
			rate = View(p, NewBSPUserStream(sock, cfg), d, chars, 2*time.Second)
		})
		s.Spawn(server, "printer", func(p *sim.Proc) {
			sock, err := pup.Open(p, devS, pup.PortAddr{Net: 1, Host: 1, Socket: 0x100}, 10)
			if err != nil {
				t.Error(err)
				return
			}
			p.Sleep(5 * time.Millisecond)
			Serve(p, NewBSPServerStream(sock, userAddr, cfg), chars+64, DefaultServerConfig())
		})
	case "tcp":
		stS := inet.NewStack(nicS, 0x0A000001)
		stU := inet.NewStack(nicU, 0x0A000002)
		stS.AddARP(stU.Addr(), nicU.Addr())
		stU.AddARP(stS.Addr(), nicS.Addr())
		stS.StandaloneHandler()
		stU.StandaloneHandler()
		cfg := inet.DefaultTCPConfig()
		cfg.MSS = 256
		s.Spawn(user, "display", func(p *sim.Proc) {
			l, err := stU.TCPListen(p, 23, cfg)
			if err != nil {
				t.Error(err)
				return
			}
			c, err := l.Accept(p, 2*time.Second)
			if err != nil {
				t.Error(err)
				return
			}
			rate = View(p, &TCPStream{Conn: c}, d, chars, 2*time.Second)
		})
		s.Spawn(server, "printer", func(p *sim.Proc) {
			p.Sleep(5 * time.Millisecond)
			c, err := stS.TCPDial(p, stU.Addr(), 23, 4000, cfg)
			if err != nil {
				t.Error(err)
				return
			}
			Serve(p, &TCPStream{Conn: c}, chars+256, DefaultServerConfig())
			c.Close(p)
		})
	}
	s.Run(time.Minute)
	return rate
}

func TestDisplayLimitedSession(t *testing.T) {
	// On a slow terminal both protocols are display-limited: the
	// achieved rate sits just under the terminal's 960 cps.
	for _, proto := range []string{"bsp", "tcp"} {
		rate := session(t, proto, ethersim.Ether3Mb, 960, 2000)
		if rate < 0.8*960 || rate > 960 {
			t.Errorf("%s terminal rate = %.0f, want ~960", proto, rate)
		}
	}
}

func TestFastDisplaySession(t *testing.T) {
	// On the fast workstation display, protocol costs show: rates
	// stay below the display maximum but well above the terminal.
	for _, proto := range []string{"bsp", "tcp"} {
		rate := session(t, proto, ethersim.Ether10Mb, 3350, 3000)
		if rate <= 960 || rate > 3350 {
			t.Errorf("%s workstation rate = %.0f, want (960, 3350]", proto, rate)
		}
	}
}

func TestDisplayAccounting(t *testing.T) {
	s := sim.New(vtime.Costs{})
	h := s.NewHost("h")
	d := &Display{CPS: 1000}
	s.Spawn(h, "draw", func(p *sim.Proc) {
		d.Draw(p, make([]byte, 100)) // 100 ms
		d.Draw(p, make([]byte, 100))
	})
	s.Run(0)
	if d.Shown != 200 {
		t.Fatalf("shown = %d", d.Shown)
	}
	// 200 chars over 200 ms = 1000 cps.
	if r := d.Rate(); r < 999 || r > 1001 {
		t.Fatalf("rate = %.1f", r)
	}
	if (&Display{}).Rate() != 0 {
		t.Fatal("empty display rate should be 0")
	}
}
