// Package shm is the shared-memory subsystem the paper could not
// have: simulated memory segments shared between a user process and
// the kernel of one host.  §2 and §6.5.1 blame much of user-level
// demultiplexing's penalty on the two extra data copies forced by the
// fact that "Unix does not support memory sharing"; §7 lists reducing
// copy cost as the remaining speedup once filters are compiled.  This
// package builds the counterfactual so the §6 tables can be re-run
// with copies elided and the copy tax measured directly.
//
// The cost model preserves the paper's accounting discipline:
//
//   - establishing a mapping charges virtual time once, at setup
//     (vtime.Costs.MapCost), never per packet;
//   - payload bytes delivered through a segment charge zero copy time
//     but are counted (Counters.BytesMapped, the sys.mapped_bytes
//     trace counter) so bytes-mapped and bytes-copied stay directly
//     comparable;
//   - the kernel still pays a small per-descriptor handling cost
//     (vtime.Costs.RingDesc) on ring operations, because validating a
//     descriptor is work even when moving the data is not.
//
// Segments are registered with a per-host Registry, are owned by one
// consumer at a time (Attach/Detach — a hostile process cannot alias
// another port's segment), and expose only bounds-checked views
// (Slice), so kernel code that honors the Desc validation rules can
// never be steered outside the segment.
package shm

import (
	"errors"
	"fmt"

	"repro/internal/sim"
)

// Errors returned by segment operations.
var (
	ErrSize     = errors.New("shm: segment size must be positive")
	ErrBusy     = errors.New("shm: segment already attached")
	ErrNotOwner = errors.New("shm: detach by non-owner")
	ErrBounds   = errors.New("shm: reference outside segment bounds")
	ErrUnmapped = errors.New("shm: segment is unmapped")
)

// Registry holds the segments registered with one host's kernel.
type Registry struct {
	host   *sim.Host
	segs   []*Segment
	nextID int
}

// NewRegistry creates a segment registry for host h.
func NewRegistry(h *sim.Host) *Registry { return &Registry{host: h} }

// Host returns the host whose kernel the registry belongs to.
func (r *Registry) Host() *sim.Host { return r.host }

// Segments returns the live (mapped) segments in creation order.
func (r *Registry) Segments() []*Segment {
	live := make([]*Segment, 0, len(r.segs))
	for _, s := range r.segs {
		if s.mapped {
			live = append(live, s)
		}
	}
	return live
}

// Segment is one shared-memory region: backing bytes visible to both
// the owning process and the simulated kernel of its host.
type Segment struct {
	reg    *Registry
	id     int
	name   string
	buf    []byte
	mapped bool

	// attached is the single consumer (a pfdev ring port, a demux
	// arena) currently bound to the segment; nil when free.
	attached any

	// Stats is the segment's traffic accounting.
	Stats SegStats
}

// SegStats counts payload bytes moved through a segment in each
// direction (kernel deposits in, process deposits out).
type SegStats struct {
	BytesIn  uint64 `json:"bytes_in"`  // deposited by the kernel (receive path)
	BytesOut uint64 `json:"bytes_out"` // deposited by the process (transmit path)
}

// Map registers a size-byte segment shared between the calling process
// and the kernel, charging the one-time mapping cost: one system call
// plus MapCost(size) of kernel page-table work.  Process context.
func (r *Registry) Map(p *sim.Proc, name string, size int) (*Segment, error) {
	p.Syscall("shm")
	if size <= 0 {
		return nil, ErrSize
	}
	p.ConsumeKernel("shm", p.Sim().Costs().MapCost(size))
	s := &Segment{reg: r, id: r.nextID, name: name, buf: make([]byte, size), mapped: true}
	r.nextID++
	r.segs = append(r.segs, s)
	return s, nil
}

// Consumer is the optional interface of attach owners (a pfdev ring
// port) that must hear when the process unmaps the segment under
// them, so they can drop their mapping instead of serving stale views
// with skewed accounting.
type Consumer interface {
	SegmentUnmapped(*Segment)
}

// Unmap tears the mapping down; an attached consumer is notified (if
// it implements Consumer) and detached first.  Views obtained earlier
// become dead (Slice fails).  Process context; charges one system
// call.
func (s *Segment) Unmap(p *sim.Proc) {
	p.Syscall("shm")
	if c, ok := s.attached.(Consumer); ok {
		c.SegmentUnmapped(s)
	}
	s.attached = nil
	s.mapped = false
	s.buf = nil
}

// ID returns the segment's registry-unique id.
func (s *Segment) ID() int { return s.id }

// Name returns the segment's debugging name.
func (s *Segment) Name() string { return s.name }

// Size returns the segment length in bytes (0 once unmapped).
func (s *Segment) Size() int { return len(s.buf) }

// Host returns the host whose kernel the segment is registered with.
func (s *Segment) Host() *sim.Host { return s.reg.host }

// Mapped reports whether the segment is still mapped.
func (s *Segment) Mapped() bool { return s.mapped }

// Attach binds the segment to one consumer.  A segment already
// attached elsewhere refuses (ErrBusy): this is the aliasing guard —
// two ports can never share one segment, so a hostile descriptor can
// at worst reference the attacker's own memory.
func (s *Segment) Attach(owner any) error {
	if !s.mapped {
		return ErrUnmapped
	}
	if s.attached != nil && s.attached != owner {
		return ErrBusy
	}
	s.attached = owner
	return nil
}

// Detach releases the segment if owner holds it.
func (s *Segment) Detach(owner any) error {
	if s.attached != owner {
		return ErrNotOwner
	}
	s.attached = nil
	return nil
}

// Attached returns the current consumer, or nil.
func (s *Segment) Attached() any { return s.attached }

// Slice returns a bounds-checked view of [off, off+n).  The arithmetic
// is done in 64 bits so hostile 32-bit values cannot wrap.
func (s *Segment) Slice(off, n uint32) ([]byte, error) {
	if !s.mapped {
		return nil, ErrUnmapped
	}
	end := uint64(off) + uint64(n)
	if end > uint64(len(s.buf)) {
		return nil, fmt.Errorf("%w: [%d,%d) of %d-byte segment", ErrBounds, off, end, len(s.buf))
	}
	return s.buf[off:end:end], nil
}

// Bytes returns the whole backing store (the process's own view of its
// mapping); nil once unmapped.
func (s *Segment) Bytes() []byte { return s.buf }
