package shm

import (
	"errors"
	"testing"

	"repro/internal/sim"
	"repro/internal/vtime"
)

func TestMapChargesOnceAtSetup(t *testing.T) {
	costs := vtime.DefaultCosts()
	s := sim.New(costs)
	h := s.NewHost("h")
	reg := NewRegistry(h)

	var seg *Segment
	s.Spawn(h, "proc", func(p *sim.Proc) {
		var err error
		seg, err = reg.Map(p, "test", 8192)
		if err != nil {
			t.Errorf("Map: %v", err)
			return
		}
		// Delivering bytes through the segment charges nothing and
		// counts them as mapped.
		before := p.Now()
		p.Mapped("test", 4096)
		if p.Now() != before {
			t.Errorf("Mapped charged virtual time: %v", p.Now()-before)
		}
	})
	s.Run(0)

	if seg == nil || seg.Size() != 8192 {
		t.Fatalf("segment not mapped: %+v", seg)
	}
	if got, want := h.Counters.Syscalls, uint64(1); got != want {
		t.Errorf("syscalls = %d, want %d", got, want)
	}
	// The "shm" category holds the syscall trap plus the one-time
	// mapping cost; nothing else.
	if got, want := h.KernelTime["shm"], costs.Syscall+costs.MapCost(8192); got != want {
		t.Errorf("shm kernel time = %v, want %v", got, want)
	}
	if got, want := h.Counters.BytesMapped, uint64(4096); got != want {
		t.Errorf("BytesMapped = %d, want %d", got, want)
	}
	if h.Counters.BytesCopied != 0 {
		t.Errorf("BytesCopied = %d, want 0", h.Counters.BytesCopied)
	}
}

func TestMapRejectsBadSize(t *testing.T) {
	s := sim.New(vtime.Costs{})
	h := s.NewHost("h")
	reg := NewRegistry(h)
	s.Spawn(h, "proc", func(p *sim.Proc) {
		if _, err := reg.Map(p, "bad", 0); !errors.Is(err, ErrSize) {
			t.Errorf("Map(0) = %v, want ErrSize", err)
		}
		if _, err := reg.Map(p, "bad", -4); !errors.Is(err, ErrSize) {
			t.Errorf("Map(-4) = %v, want ErrSize", err)
		}
	})
	s.Run(0)
}

func TestAttachExcludesSecondOwner(t *testing.T) {
	s := sim.New(vtime.Costs{})
	h := s.NewHost("h")
	reg := NewRegistry(h)
	s.Spawn(h, "proc", func(p *sim.Proc) {
		seg, err := reg.Map(p, "seg", 1024)
		if err != nil {
			t.Errorf("Map: %v", err)
			return
		}
		ownerA, ownerB := new(int), new(int)
		if err := seg.Attach(ownerA); err != nil {
			t.Errorf("first Attach: %v", err)
		}
		if err := seg.Attach(ownerA); err != nil {
			t.Errorf("re-Attach by owner: %v", err)
		}
		if err := seg.Attach(ownerB); !errors.Is(err, ErrBusy) {
			t.Errorf("Attach by second owner = %v, want ErrBusy", err)
		}
		if err := seg.Detach(ownerB); !errors.Is(err, ErrNotOwner) {
			t.Errorf("Detach by non-owner = %v, want ErrNotOwner", err)
		}
		if err := seg.Detach(ownerA); err != nil {
			t.Errorf("Detach by owner: %v", err)
		}
		if err := seg.Attach(ownerB); err != nil {
			t.Errorf("Attach after Detach: %v", err)
		}
		seg.Unmap(p)
		if err := seg.Attach(ownerB); !errors.Is(err, ErrUnmapped) {
			t.Errorf("Attach after Unmap = %v, want ErrUnmapped", err)
		}
		if len(reg.Segments()) != 0 {
			t.Errorf("unmapped segment still listed live")
		}
	})
	s.Run(0)
}

func TestSliceBounds(t *testing.T) {
	s := sim.New(vtime.Costs{})
	h := s.NewHost("h")
	reg := NewRegistry(h)
	s.Spawn(h, "proc", func(p *sim.Proc) {
		seg, err := reg.Map(p, "seg", 100)
		if err != nil {
			t.Errorf("Map: %v", err)
			return
		}
		if v, err := seg.Slice(90, 10); err != nil || len(v) != 10 {
			t.Errorf("Slice(90,10) = (%d bytes, %v)", len(v), err)
		}
		if _, err := seg.Slice(90, 11); !errors.Is(err, ErrBounds) {
			t.Errorf("Slice(90,11) = %v, want ErrBounds", err)
		}
		// 32-bit wrap attempt: off+n overflows uint32.
		if _, err := seg.Slice(0xFFFFFFFF, 2); !errors.Is(err, ErrBounds) {
			t.Errorf("wrapping Slice = %v, want ErrBounds", err)
		}
		// A view must not be able to grow back into the segment.
		v, _ := seg.Slice(0, 10)
		if cap(v) != 10 {
			t.Errorf("Slice cap = %d, want 10 (three-index slice)", cap(v))
		}
	})
	s.Run(0)
}

func TestDescRoundTrip(t *testing.T) {
	d := Desc{Off: 4096, Len: 1500, Flags: FlagWrap}
	wire := d.Encode(nil)
	if len(wire) != DescSize {
		t.Fatalf("encoded length %d, want %d", len(wire), DescSize)
	}
	got, err := DecodeDesc(wire)
	if err != nil {
		t.Fatalf("DecodeDesc: %v", err)
	}
	if got != d {
		t.Fatalf("round trip changed descriptor: %+v vs %+v", got, d)
	}
}

func TestDecodeDescsRejectsPartial(t *testing.T) {
	d := Desc{Off: 0, Len: 64}
	block := d.Encode(d.Encode(nil))
	descs, err := DecodeDescs(block)
	if err != nil || len(descs) != 2 {
		t.Fatalf("DecodeDescs(valid) = (%d, %v)", len(descs), err)
	}
	if _, err := DecodeDescs(block[:len(block)-1]); !errors.Is(err, ErrDescShort) {
		t.Errorf("truncated block = %v, want ErrDescShort", err)
	}
}

func TestCheckBounds(t *testing.T) {
	cases := []struct {
		d       Desc
		seg, mf int
		wantErr error
	}{
		{Desc{Off: 0, Len: 100}, 4096, 1500, nil},
		{Desc{Off: 3996, Len: 100}, 4096, 1500, nil},
		{Desc{Off: 3997, Len: 100}, 4096, 1500, ErrBounds},
		{Desc{Off: 0, Len: 0}, 4096, 1500, ErrDescEmpty},
		{Desc{Off: 0, Len: 1501}, 4096, 1500, ErrDescFrame},
		{Desc{Off: 0xFFFFFFF0, Len: 0x20}, 4096, 0, ErrBounds}, // 64-bit sum, no wrap
	}
	for i, c := range cases {
		err := c.d.CheckBounds(c.seg, c.mf)
		if (c.wantErr == nil) != (err == nil) || (err != nil && !errors.Is(err, c.wantErr)) {
			t.Errorf("case %d: CheckBounds(%+v) = %v, want %v", i, c.d, err, c.wantErr)
		}
	}
}

// TestMapCostScales pins the shape of the mapping cost: linear in
// size, and amortizable — mapping 64 KB once costs less than copying
// it twice at the paper's 1 ms/KB.
func TestMapCostScales(t *testing.T) {
	c := vtime.DefaultCosts()
	small, big := c.MapCost(4096), c.MapCost(65536)
	if big <= small {
		t.Errorf("MapCost not increasing: %v vs %v", small, big)
	}
	copyTwice := 2 * c.Copy(65536)
	if big >= copyTwice {
		t.Errorf("mapping 64KB (%v) should be cheaper than two copies (%v)", big, copyTwice)
	}
}
