package shm

import (
	"bytes"
	"testing"
)

// Native fuzz target for the ring-descriptor wire format, in the
// style of internal/pup/fuzz_test.go.  Descriptors come from user
// memory, so the kernel-side parser faces arbitrary bytes from a
// possibly hostile process; the obligations are: never panic, never
// accept a descriptor that escapes the segment, and parse
// canonically (whatever decodes re-encodes to the same bytes).
func FuzzDesc(f *testing.F) {
	f.Add(Desc{Off: 0, Len: 64}.Encode(nil))
	f.Add(Desc{Off: 4096, Len: 1500, Flags: FlagWrap}.Encode(nil))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, DescSize))
	f.Add(bytes.Repeat([]byte{0xFF}, 3*DescSize))
	f.Add(append(Desc{Off: 10, Len: 20}.Encode(nil), 0x01)) // trailing partial

	const segSize, maxFrame = 4096, 1500

	f.Fuzz(func(t *testing.T, b []byte) {
		descs, err := DecodeDescs(b) // must not panic
		if err != nil {
			return
		}
		if len(b)%DescSize != 0 {
			t.Fatalf("accepted a %d-byte block with a partial descriptor", len(b))
		}
		var re []byte
		for i, d := range descs {
			// Canonical: decoded descriptors re-encode bit-identically.
			re = d.Encode(re)
			if err := d.CheckBounds(segSize, maxFrame); err != nil {
				continue
			}
			// Anything that validates must be honored by Slice —
			// i.e. validation implies the kernel's view stays inside
			// the segment.
			if uint64(d.Off)+uint64(d.Len) > segSize {
				t.Fatalf("descriptor %d validated but escapes: %+v", i, d)
			}
			if d.Len == 0 || d.Len > maxFrame {
				t.Fatalf("descriptor %d validated with bad length: %+v", i, d)
			}
		}
		if !bytes.Equal(re, b) {
			t.Fatalf("re-encode changed the block: %x vs %x", re, b)
		}
	})
}

// TestValidatedDescNeverEscapesSegment sweeps the edges CheckBounds
// must hold: every (off, len) pair near the segment boundary either
// fails validation or yields an in-bounds Slice.
func TestValidatedDescNeverEscapesSegment(t *testing.T) {
	seg := &Segment{buf: make([]byte, 256), mapped: true}
	for _, off := range []uint32{0, 1, 128, 255, 256, 257, 0xFFFFFFFF} {
		for _, n := range []uint32{0, 1, 128, 255, 256, 257, 0xFFFFFFFF} {
			d := Desc{Off: off, Len: n}
			if err := d.CheckBounds(seg.Size(), 0); err != nil {
				continue
			}
			v, err := seg.Slice(d.Off, d.Len)
			if err != nil {
				t.Fatalf("validated desc %+v rejected by Slice: %v", d, err)
			}
			if len(v) != int(n) {
				t.Fatalf("desc %+v: got %d-byte view", d, len(v))
			}
		}
	}
}
