package shm

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// This file defines the ring-descriptor wire format shared between
// user processes and the simulated kernel.  A descriptor names one
// frame inside a segment by offset and length; user processes write
// descriptor blocks into their segment and hand them to the kernel
// (pfdev ring transmit), and the kernel writes them back on the
// receive ring.  Because descriptors come from user memory they are
// hostile input: the kernel must parse and bounds-check them the way
// it checks filter programs, and the fuzz target in fuzz_test.go holds
// the parser to that.

// DescSize is the encoded size of one descriptor in bytes.
const DescSize = 12

// Descriptor flag bits.  Bits outside FlagMask are reserved and must
// be zero; the kernel rejects descriptors that set them.
const (
	// FlagWrap marks the descriptor that wraps the ring (bookkeeping
	// hint only; the kernel recomputes wrapping itself).
	FlagWrap uint16 = 1 << 0

	// FlagMask covers every defined flag.
	FlagMask = FlagWrap
)

// Desc is one ring descriptor: a frame at [Off, Off+Len) within the
// attached segment.
//
// Wire layout (big-endian, DescSize bytes):
//
//	bytes 0..3  Off   uint32
//	bytes 4..7  Len   uint32
//	bytes 8..9  Flags uint16
//	bytes 10..11 zero (reserved)
type Desc struct {
	Off   uint32
	Len   uint32
	Flags uint16
}

// Errors returned by descriptor parsing and validation.
var (
	ErrDescShort    = errors.New("shm: descriptor block truncated")
	ErrDescReserved = errors.New("shm: descriptor sets reserved bits")
	ErrDescEmpty    = errors.New("shm: descriptor length is zero")
	ErrDescFrame    = errors.New("shm: descriptor exceeds maximum frame size")
)

// Encode appends the descriptor's wire form to b.
func (d Desc) Encode(b []byte) []byte {
	var w [DescSize]byte
	binary.BigEndian.PutUint32(w[0:], d.Off)
	binary.BigEndian.PutUint32(w[4:], d.Len)
	binary.BigEndian.PutUint16(w[8:], d.Flags)
	return append(b, w[:]...)
}

// DecodeDesc parses one descriptor from the first DescSize bytes of b.
func DecodeDesc(b []byte) (Desc, error) {
	if len(b) < DescSize {
		return Desc{}, ErrDescShort
	}
	d := Desc{
		Off:   binary.BigEndian.Uint32(b[0:]),
		Len:   binary.BigEndian.Uint32(b[4:]),
		Flags: binary.BigEndian.Uint16(b[8:]),
	}
	if b[10] != 0 || b[11] != 0 || d.Flags&^FlagMask != 0 {
		return Desc{}, ErrDescReserved
	}
	return d, nil
}

// DecodeDescs parses a whole descriptor block: a concatenation of
// DescSize-byte descriptors with no trailing partial entry.
func DecodeDescs(b []byte) ([]Desc, error) {
	if len(b)%DescSize != 0 {
		return nil, ErrDescShort
	}
	descs := make([]Desc, 0, len(b)/DescSize)
	for off := 0; off < len(b); off += DescSize {
		d, err := DecodeDesc(b[off:])
		if err != nil {
			return nil, fmt.Errorf("descriptor %d: %w", off/DescSize, err)
		}
		descs = append(descs, d)
	}
	return descs, nil
}

// CheckBounds validates the descriptor against a segment of segSize
// bytes and a link maximum frame of maxFrame bytes.  The arithmetic is
// 64-bit so Off+Len cannot wrap.  This is the kernel's only defense
// between hostile user memory and its own address space, which is why
// the fuzz target exercises it directly.
func (d Desc) CheckBounds(segSize, maxFrame int) error {
	if d.Len == 0 {
		return ErrDescEmpty
	}
	if maxFrame > 0 && uint64(d.Len) > uint64(maxFrame) {
		return fmt.Errorf("%w: %d > %d", ErrDescFrame, d.Len, maxFrame)
	}
	if end := uint64(d.Off) + uint64(d.Len); end > uint64(segSize) {
		return fmt.Errorf("%w: [%d,%d) of %d-byte segment", ErrBounds, d.Off, end, segSize)
	}
	return nil
}
