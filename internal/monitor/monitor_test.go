package monitor

import (
	"strings"
	"testing"
	"time"

	"repro/internal/ethersim"
	"repro/internal/pfdev"
	"repro/internal/pup"
	"repro/internal/sim"
	"repro/internal/vmtp"
	"repro/internal/vtime"
)

func TestDecodePup(t *testing.T) {
	pkt := pup.Packet{
		Type: pup.TypeEchoMe, ID: 7,
		Dst: pup.PortAddr{Net: 1, Host: 2, Socket: 35},
		Src: pup.PortAddr{Net: 1, Host: 1, Socket: 99},
	}
	payload, _ := pkt.Marshal()
	frame := ethersim.Ether3Mb.Encode(2, 1, ethersim.EtherTypePup3Mb, payload)
	rec := Decode(ethersim.Ether3Mb, frame)
	if rec.Proto != "pup" || !strings.Contains(rec.Summary, "echoMe") {
		t.Fatalf("rec = %+v", rec)
	}
	if rec.Src != 1 || rec.Dst != 2 {
		t.Fatalf("addrs = %v > %v", rec.Src, rec.Dst)
	}
	if !strings.Contains(rec.Summary, "1#2#35") {
		t.Fatalf("summary = %q", rec.Summary)
	}
}

func TestDecodeBSPAndVMTP(t *testing.T) {
	bsp := pup.Packet{Type: pup.TypeBSPData, ID: 9,
		Dst: pup.PortAddr{Socket: 1}, Data: []byte("xy")}
	payload, _ := bsp.Marshal()
	rec := Decode(ethersim.Ether3Mb,
		ethersim.Ether3Mb.Encode(2, 1, ethersim.EtherTypePup3Mb, payload))
	if rec.Proto != "bsp" || !strings.Contains(rec.Summary, "data seq 9") {
		t.Fatalf("bsp rec = %+v", rec)
	}

	v := vmtp.Marshal(vmtp.Header{DstPort: 500, TransID: 3,
		Kind: vmtp.KindResponse, Index: 1, Count: 4}, []byte("abc"))
	rec = Decode(ethersim.Ether10Mb,
		ethersim.Ether10Mb.Encode(2, 1, ethersim.EtherTypeVMTP, v))
	if rec.Proto != "vmtp" || !strings.Contains(rec.Summary, "response trans 3") ||
		!strings.Contains(rec.Summary, "pkt 2/4") {
		t.Fatalf("vmtp rec = %+v", rec)
	}
}

func TestDecodeIPForms(t *testing.T) {
	// Hand-rolled UDP datagram.
	udp := make([]byte, 28)
	udp[0] = 0x45
	udp[2], udp[3] = 0, 28
	udp[9] = 17
	udp[12], udp[16] = 10, 11
	udp[20], udp[21] = 0x04, 0x00 // src port 1024
	udp[22], udp[23] = 0x00, 0x35 // dst port 53
	rec := Decode(ethersim.Ether10Mb,
		ethersim.Ether10Mb.Encode(2, 1, ethersim.EtherTypeIP, udp))
	if rec.Proto != "ip/udp" || !strings.Contains(rec.Summary, ":53") {
		t.Fatalf("udp rec = %+v", rec)
	}

	tcp := make([]byte, 40)
	tcp[0] = 0x45
	tcp[3] = 40
	tcp[9] = 6
	tcp[32] = 5 << 4 // data offset
	tcp[33] = 0x12   // SYN|ACK
	rec = Decode(ethersim.Ether10Mb,
		ethersim.Ether10Mb.Encode(2, 1, ethersim.EtherTypeIP, tcp))
	if rec.Proto != "ip/tcp" || !strings.Contains(rec.Summary, "S.") {
		t.Fatalf("tcp rec = %+v", rec)
	}

	rec = Decode(ethersim.Ether10Mb,
		ethersim.Ether10Mb.Encode(2, 1, ethersim.EtherTypeIP, []byte{1, 2}))
	if rec.Summary != "truncated IP" {
		t.Fatalf("short rec = %+v", rec)
	}
}

func TestDecodeUnknownAndTruncated(t *testing.T) {
	rec := Decode(ethersim.Ether10Mb, []byte{1, 2, 3})
	if rec.Summary != "truncated frame" {
		t.Fatalf("rec = %+v", rec)
	}
	rec = Decode(ethersim.Ether3Mb,
		ethersim.Ether3Mb.Encode(2, 1, 0x4242, []byte{1}))
	if rec.Proto != "ether" || !strings.Contains(rec.Summary, "0x4242") {
		t.Fatalf("rec = %+v", rec)
	}
	rec = Decode(ethersim.Ether3Mb,
		ethersim.Ether3Mb.Encode(2, 1, ethersim.EtherTypeARP, make([]byte, 28)))
	if rec.Proto != "arp" {
		t.Fatalf("rec = %+v", rec)
	}
}

func TestMonitorDoesNotDisturbTraffic(t *testing.T) {
	// A monitor on the receiving host must see the packets AND the
	// real consumer must still get them (§3.2).
	s := sim.New(vtime.DefaultCosts())
	net := ethersim.New(s, ethersim.Ether3Mb)
	ha, hb := s.NewHost("src"), s.NewHost("dst")
	na := net.Attach(ha, 1)
	db := pfdev.Attach(net.Attach(hb, 2), nil, pfdev.Options{})

	m := New(db)
	consumerGot := 0
	s.Spawn(hb, "monitor", func(p *sim.Proc) { m.Run(p, 60*time.Millisecond) })
	s.Spawn(hb, "consumer", func(p *sim.Proc) {
		sock, err := pup.Open(p, db, pup.PortAddr{Net: 1, Host: 2, Socket: 35}, 10)
		if err != nil {
			t.Error(err)
			return
		}
		sock.SetTimeout(p, 60*time.Millisecond)
		for {
			if _, err := sock.Recv(p); err != nil {
				return
			}
			consumerGot++
		}
	})
	s.Spawn(ha, "src", func(p *sim.Proc) {
		sock, _ := pup.Open(p, pfdev.Attach(na, nil, pfdev.Options{}),
			pup.PortAddr{Net: 1, Host: 1, Socket: 1}, 10)
		p.Sleep(10 * time.Millisecond)
		for i := 0; i < 4; i++ {
			sock.Send(p, &pup.Packet{Type: 3, ID: uint32(i),
				Dst: pup.PortAddr{Net: 1, Host: 2, Socket: 35}})
			p.Sleep(2 * time.Millisecond)
		}
	})
	s.Run(0)
	if consumerGot != 4 {
		t.Fatalf("consumer got %d packets", consumerGot)
	}
	if m.Stats.Packets != 4 || m.Stats.ByProto["pup"] != 4 {
		t.Fatalf("monitor stats = %+v", m.Stats)
	}
	if len(m.Records) != 4 {
		t.Fatalf("records = %d", len(m.Records))
	}
	if m.Records[0].Stamp == 0 {
		t.Error("records not timestamped")
	}
	rep := m.Report()
	if !strings.Contains(rep, "4 packets") || !strings.Contains(rep, "pup") {
		t.Fatalf("report = %q", rep)
	}
	if s := m.Records[0].String(); !strings.Contains(s, "pup") {
		t.Fatalf("record string = %q", s)
	}
}

func TestMonitorKeepBound(t *testing.T) {
	m := New(nil) // ingest directly; no device needed
	m.Keep = 2
	frame := ethersim.Ether3Mb.Encode(2, 1, 0x4242, nil)
	for i := 0; i < 5; i++ {
		m.ingest(pfdev.Packet{Data: frame, Stamp: time.Duration(i)})
	}
	if len(m.Records) != 2 || m.Stats.Packets != 5 {
		t.Fatalf("records=%d stats=%d", len(m.Records), m.Stats.Packets)
	}
}
