package monitor

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/ethersim"
	"repro/internal/pfdev"
)

func TestTraceRoundTrip(t *testing.T) {
	frames := []pfdev.Packet{
		{Stamp: 5 * time.Millisecond,
			Data: ethersim.Ether3Mb.Encode(2, 1, ethersim.EtherTypePup3Mb, []byte{1, 2, 3})},
		{Stamp: 9 * time.Millisecond,
			Data: ethersim.Ether3Mb.Encode(0xFF, 1, ethersim.EtherTypeARP, make([]byte, 22))},
		{Stamp: 12 * time.Millisecond, Data: []byte{0xDE, 0xAD}},
	}
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf, ethersim.Ether3Mb)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frames {
		if err := tw.Write(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	if tw.Count() != len(frames) {
		t.Fatalf("count = %d", tw.Count())
	}

	tr, err := NewTraceReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Link != ethersim.Ether3Mb {
		t.Fatalf("link = %v", tr.Link)
	}
	for i, want := range frames {
		got, err := tr.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got.Stamp != want.Stamp || !bytes.Equal(got.Data, want.Data) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	if _, err := tr.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestTraceRoundTripProperty(t *testing.T) {
	f := func(stamps []int64, payloads [][]byte) bool {
		var buf bytes.Buffer
		tw, err := NewTraceWriter(&buf, ethersim.Ether10Mb)
		if err != nil {
			return false
		}
		n := len(stamps)
		if len(payloads) < n {
			n = len(payloads)
		}
		var in []pfdev.Packet
		for i := 0; i < n; i++ {
			data := payloads[i]
			if len(data) > MaxTraceFrame {
				data = data[:MaxTraceFrame]
			}
			st := stamps[i]
			if st < 0 {
				st = -st
			}
			pkt := pfdev.Packet{Stamp: time.Duration(st), Data: data}
			if tw.Write(pkt) != nil {
				return false
			}
			in = append(in, pkt)
		}
		tw.Flush()
		tr, err := NewTraceReader(&buf)
		if err != nil {
			return false
		}
		for _, want := range in {
			got, err := tr.Next()
			if err != nil || got.Stamp != want.Stamp || !bytes.Equal(got.Data, want.Data) {
				return false
			}
		}
		_, err = tr.Next()
		return err == io.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceReaderRejectsGarbage(t *testing.T) {
	if _, err := NewTraceReader(bytes.NewReader([]byte("not a trace"))); err != ErrTraceMagic {
		t.Errorf("magic: %v", err)
	}
	if _, err := NewTraceReader(bytes.NewReader(nil)); err != ErrTraceMagic {
		t.Errorf("empty: %v", err)
	}

	// Wrong version.
	var buf bytes.Buffer
	buf.WriteString("PFTR")
	binary.Write(&buf, binary.BigEndian, uint16(99))
	binary.Write(&buf, binary.BigEndian, uint16(0))
	if _, err := NewTraceReader(&buf); err != ErrTraceVersion {
		t.Errorf("version: %v", err)
	}

	// Absurd record length.
	buf.Reset()
	tw, _ := NewTraceWriter(&buf, ethersim.Ether3Mb)
	tw.Write(pfdev.Packet{Data: []byte{1}})
	tw.Flush()
	raw := buf.Bytes()
	binary.BigEndian.PutUint32(raw[16:], 1<<30) // corrupt the length field
	tr, err := NewTraceReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Next(); err != ErrTraceCorrupt {
		t.Errorf("corrupt length: %v", err)
	}

	// Truncated frame body.
	buf.Reset()
	tw, _ = NewTraceWriter(&buf, ethersim.Ether3Mb)
	tw.Write(pfdev.Packet{Data: make([]byte, 100)})
	tw.Flush()
	tr, _ = NewTraceReader(bytes.NewReader(buf.Bytes()[:40]))
	if _, err := tr.Next(); err != ErrTraceCorrupt {
		t.Errorf("truncated: %v", err)
	}
}

func TestMonitorSaveLoadTrace(t *testing.T) {
	// An online monitor with KeepRaw saves a trace; an offline
	// monitor loads it and reproduces the statistics.
	m := New(nil)
	m.KeepRaw = true
	m.link = ethersim.Ether3Mb
	pupFrame := ethersim.Ether3Mb.Encode(2, 1, ethersim.EtherTypePup3Mb, mkPupPayload())
	arpFrame := ethersim.Ether3Mb.Encode(0xFF, 1, ethersim.EtherTypeARP, make([]byte, 22))
	m.ingest(pfdev.Packet{Stamp: time.Millisecond, Data: pupFrame})
	m.ingest(pfdev.Packet{Stamp: 2 * time.Millisecond, Data: arpFrame})

	var buf bytes.Buffer
	if err := m.SaveTrace(&buf); err != nil {
		t.Fatal(err)
	}

	offline := New(nil)
	n, err := offline.LoadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || offline.Stats.Packets != 2 {
		t.Fatalf("loaded %d packets, stats %d", n, offline.Stats.Packets)
	}
	if offline.Stats.ByProto["pup"] != 1 || offline.Stats.ByProto["arp"] != 1 {
		t.Fatalf("protos = %v", offline.Stats.ByProto)
	}
	if offline.Records[0].Stamp != time.Millisecond {
		t.Fatal("stamps lost in round trip")
	}
}

func mkPupPayload() []byte {
	p := make([]byte, 22)
	p[1] = 22 // PupLength
	p[3] = 1  // type
	// Checksum field NoChecksum.
	p[20], p[21] = 0xFF, 0xFF
	return p
}
