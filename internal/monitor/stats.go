package monitor

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/ethersim"
)

// Analysis computes the derived views a 1987 network manager stared
// at: who talks to whom, what sizes flow, how bursty the segment is.
// "One of us has been using the packet filter ... as the basis for a
// variety of experimental network monitoring tools" (§5.4); these are
// those tools' table views, derived offline from the capture.
type Analysis struct {
	// Conversations counts packets per (src, dst) pair.
	Conversations map[[2]ethersim.Addr]int
	// SizeHistogram buckets frame sizes: <64, <128, <256, <512,
	// <1024, >=1024 bytes.
	SizeHistogram [6]int
	// TopTalkers lists senders by descending packet count.
	TopTalkers []Talker
	// MeanInterarrival is the average gap between stamped packets
	// (zero when fewer than two packets carry timestamps).
	MeanInterarrival time.Duration
	// PeakBurst is the largest number of packets within any 10 ms
	// window of the capture.
	PeakBurst int
}

// Talker is one row of the top-talkers table.
type Talker struct {
	Host    ethersim.Addr
	Packets int
}

// Analyze derives the analysis views from the recorded trace lines.
// It uses Records, so set Keep high enough (or zero) to retain the
// packets of interest.
func (m *Monitor) Analyze() Analysis {
	a := Analysis{Conversations: make(map[[2]ethersim.Addr]int)}
	counts := make(map[ethersim.Addr]int)

	var stamps []time.Duration
	for _, rec := range m.Records {
		a.Conversations[[2]ethersim.Addr{rec.Src, rec.Dst}]++
		counts[rec.Src]++
		a.SizeHistogram[sizeBucket(rec.Len)]++
		if rec.Stamp > 0 {
			stamps = append(stamps, rec.Stamp)
		}
	}

	for host, n := range counts {
		a.TopTalkers = append(a.TopTalkers, Talker{Host: host, Packets: n})
	}
	sort.Slice(a.TopTalkers, func(i, j int) bool {
		if a.TopTalkers[i].Packets != a.TopTalkers[j].Packets {
			return a.TopTalkers[i].Packets > a.TopTalkers[j].Packets
		}
		return a.TopTalkers[i].Host < a.TopTalkers[j].Host
	})

	sort.Slice(stamps, func(i, j int) bool { return stamps[i] < stamps[j] })
	if len(stamps) >= 2 {
		a.MeanInterarrival = (stamps[len(stamps)-1] - stamps[0]) /
			time.Duration(len(stamps)-1)
	}
	a.PeakBurst = peakBurst(stamps, 10*time.Millisecond)
	return a
}

func sizeBucket(n int) int {
	switch {
	case n < 64:
		return 0
	case n < 128:
		return 1
	case n < 256:
		return 2
	case n < 512:
		return 3
	case n < 1024:
		return 4
	default:
		return 5
	}
}

// peakBurst slides a window over sorted stamps and returns the maximum
// packet count inside it.
func peakBurst(stamps []time.Duration, window time.Duration) int {
	best, lo := 0, 0
	for hi := range stamps {
		for stamps[hi]-stamps[lo] > window {
			lo++
		}
		if n := hi - lo + 1; n > best {
			best = n
		}
	}
	return best
}

// String renders the analysis as the §5.4-style tables.
func (a Analysis) String() string {
	var b strings.Builder
	b.WriteString("top talkers:\n")
	for i, t := range a.TopTalkers {
		if i >= 5 {
			break
		}
		fmt.Fprintf(&b, "  %02x  %d packets\n", uint64(t.Host), t.Packets)
	}
	b.WriteString("frame sizes:\n")
	labels := []string{"<64", "<128", "<256", "<512", "<1024", ">=1024"}
	for i, n := range a.SizeHistogram {
		if n > 0 {
			fmt.Fprintf(&b, "  %-6s %d\n", labels[i], n)
		}
	}
	if a.MeanInterarrival > 0 {
		fmt.Fprintf(&b, "mean interarrival: %.2f mSec\n",
			float64(a.MeanInterarrival)/float64(time.Millisecond))
	}
	if a.PeakBurst > 0 {
		fmt.Fprintf(&b, "peak burst: %d packets / 10 mSec\n", a.PeakBurst)
	}
	return b.String()
}
