package monitor

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/ethersim"
	"repro/internal/pfdev"
	"repro/internal/sim"
	"repro/internal/vtime"
)

func ingestFrame(m *Monitor, stamp time.Duration, src, dst ethersim.Addr, size int) {
	payload := make([]byte, size-ethersim.Ether3Mb.HeaderLen())
	frame := ethersim.Ether3Mb.Encode(dst, src, 0x4242, payload)
	m.ingest(pfdev.Packet{Stamp: stamp, Data: frame})
}

func TestAnalyze(t *testing.T) {
	m := New(nil)
	m.link = ethersim.Ether3Mb
	// Host 1 sends 3 packets to 2; host 2 replies once; host 3 one
	// big frame.  Stamps: burst of 3 in 4ms, stragglers later.
	ingestFrame(m, 1*time.Millisecond, 1, 2, 60)
	ingestFrame(m, 3*time.Millisecond, 1, 2, 130)
	ingestFrame(m, 5*time.Millisecond, 1, 2, 300)
	ingestFrame(m, 40*time.Millisecond, 2, 1, 60)
	ingestFrame(m, 80*time.Millisecond, 3, 2, 580)

	a := m.Analyze()
	if a.Conversations[[2]ethersim.Addr{1, 2}] != 3 {
		t.Errorf("conversations = %v", a.Conversations)
	}
	if len(a.TopTalkers) != 3 || a.TopTalkers[0].Host != 1 || a.TopTalkers[0].Packets != 3 {
		t.Errorf("top talkers = %v", a.TopTalkers)
	}
	// Sizes: 60, 60 -> <64; 130 -> <256; 300 -> <512; 580 -> <1024.
	if a.SizeHistogram[0] != 2 || a.SizeHistogram[2] != 1 ||
		a.SizeHistogram[3] != 1 || a.SizeHistogram[4] != 1 {
		t.Errorf("histogram = %v", a.SizeHistogram)
	}
	// Stamps span 79ms over 4 gaps.
	if a.MeanInterarrival != 79*time.Millisecond/4 {
		t.Errorf("mean interarrival = %v", a.MeanInterarrival)
	}
	if a.PeakBurst != 3 {
		t.Errorf("peak burst = %d, want 3 (the 1/3/5 ms cluster)", a.PeakBurst)
	}

	s := a.String()
	for _, want := range []string{"top talkers", "frame sizes", "peak burst: 3"} {
		if !strings.Contains(s, want) {
			t.Errorf("analysis output missing %q:\n%s", want, s)
		}
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	a := New(nil).Analyze()
	if len(a.TopTalkers) != 0 || a.PeakBurst != 0 || a.MeanInterarrival != 0 {
		t.Errorf("non-zero analysis of empty capture: %+v", a)
	}
}

func TestSizeBuckets(t *testing.T) {
	cases := map[int]int{0: 0, 63: 0, 64: 1, 127: 1, 128: 2, 255: 2,
		256: 3, 511: 3, 512: 4, 1023: 4, 1024: 5, 9999: 5}
	for n, want := range cases {
		if got := sizeBucket(n); got != want {
			t.Errorf("sizeBucket(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestReplayPreservesContentAndTiming(t *testing.T) {
	// Capture a small exchange, replay it onto a fresh network, and
	// capture the replay: same frames, same relative spacing.
	s := sim.New(vtime.DefaultCosts())
	net := ethersim.New(s, ethersim.Ether3Mb)
	src := s.NewHost("src")
	watch := s.NewHost("watch")
	nicSrc := net.Attach(src, 1)
	nicW := net.Attach(watch, 3)
	nicW.Promiscuous = true
	devW := pfdev.Attach(nicW, nil, pfdev.Options{})

	m := New(devW)
	m.KeepRaw = true
	s.Spawn(watch, "mon", func(p *sim.Proc) { m.Run(p, 50*time.Millisecond) })
	s.Spawn(src, "traffic", func(p *sim.Proc) {
		p.Sleep(5 * time.Millisecond)
		for i := 0; i < 4; i++ {
			nicSrc.Transmit(ethersim.Ether3Mb.Encode(2, 1, 0x4242, []byte{byte(i), 0}))
			p.Sleep(time.Duration(3+i) * time.Millisecond)
		}
	})
	s.Run(0)
	if m.Stats.Packets != 4 {
		t.Fatalf("captured %d packets", m.Stats.Packets)
	}
	var buf bytes.Buffer
	if err := m.SaveTrace(&buf); err != nil {
		t.Fatal(err)
	}

	// Second universe: replay the trace, capture it again.
	s2 := sim.New(vtime.DefaultCosts())
	net2 := ethersim.New(s2, ethersim.Ether3Mb)
	src2 := s2.NewHost("replayer")
	watch2 := s2.NewHost("watch2")
	nic2 := net2.Attach(src2, 1)
	nicW2 := net2.Attach(watch2, 3)
	nicW2.Promiscuous = true
	devW2 := pfdev.Attach(nicW2, nil, pfdev.Options{})
	m2 := New(devW2)
	var replayed int
	s2.Spawn(watch2, "mon", func(p *sim.Proc) { m2.Run(p, 50*time.Millisecond) })
	s2.Spawn(src2, "replay", func(p *sim.Proc) {
		n, err := Replay(p, nic2, bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Error(err)
		}
		replayed = n
	})
	s2.Run(0)
	if replayed != 4 || m2.Stats.Packets != 4 {
		t.Fatalf("replayed=%d recaptured=%d", replayed, m2.Stats.Packets)
	}
	// Relative spacing preserved within simulation jitter.
	d1 := m.Records[3].Stamp - m.Records[0].Stamp
	d2 := m2.Records[3].Stamp - m2.Records[0].Stamp
	diff := d1 - d2
	if diff < 0 {
		diff = -diff
	}
	if diff > time.Millisecond {
		t.Fatalf("spacing drifted: original %v, replay %v", d1, d2)
	}
}
