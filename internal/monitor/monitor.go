// Package monitor is the integrated network monitor of §5.4: a
// packet-filter application that captures and decodes the packets
// flowing on an Ethernet, the ancestor of tcpdump.  "A network monitor
// closely integrated with a general-purpose operating system, running
// on a workstation, has several important advantages over a dedicated
// monitor" — all the tools of the host are available, and "a user can
// write new monitoring programs to display data in novel ways, or to
// monitor new or unusual protocols."
//
// The monitor binds a high-priority accept-everything filter with the
// copy-all option set, so the processes being monitored still receive
// their traffic undisturbed (§3.2), and asks the kernel to timestamp
// each packet (§3.3).
package monitor

import (
	"encoding/binary"
	"fmt"
	"strings"
	"time"

	"repro/internal/ethersim"
	"repro/internal/filter"
	"repro/internal/pfdev"
	"repro/internal/pup"
	"repro/internal/shm"
	"repro/internal/sim"
	"repro/internal/vmtp"
)

// Record is one captured, decoded packet.
type Record struct {
	Stamp    time.Duration
	Len      int
	Src, Dst ethersim.Addr
	Proto    string // "pup", "bsp", "ip/udp", "ip/tcp", "arp", "rarp", "vmtp", "ether"
	Summary  string // one-line decoded form
}

// String renders the record like a tcpdump line.
func (r Record) String() string {
	return fmt.Sprintf("%10.3fms %3dB %02x > %02x %-7s %s",
		float64(r.Stamp)/float64(time.Millisecond), r.Len,
		uint64(r.Src), uint64(r.Dst), r.Proto, r.Summary)
}

// Stats aggregates a capture.
type Stats struct {
	Packets int
	Bytes   int
	ByProto map[string]int
	ByHost  map[ethersim.Addr]int // packets sent, by source
	Drops   uint64                // kernel-reported queue overflows
}

// Monitor captures traffic from one packet-filter device.
type Monitor struct {
	dev  *pfdev.Device
	link ethersim.LinkType

	Records []Record
	Stats   Stats
	// Keep bounds the trace length (0 = unlimited); statistics keep
	// accumulating after the trace fills, like a real monitor whose
	// screen scrolls.
	Keep int
	// Filter, when non-empty, replaces the accept-everything capture
	// program — "a user can write new monitoring programs ... to
	// monitor new or unusual protocols" — typically compiled from an
	// expression by package fexpr.
	Filter filter.Program
	// KeepRaw retains the raw frames so the capture can be written
	// to a trace file with SaveTrace.
	KeepRaw bool
	// Ring captures through a mapped shared-memory ring of this many
	// slots: the kernel deposits frames in place and the monitor
	// reaps descriptors, which is how a capture keeps up with a busy
	// segment without paying a copy per packet.  Zero keeps the
	// copying ReadBatch path.
	Ring int
	raw  []pfdev.Packet
}

// New creates a monitor on dev.  A nil device yields an offline
// monitor that can only ingest pre-captured packets (a trace reader).
func New(dev *pfdev.Device) *Monitor {
	m := &Monitor{
		dev: dev,
		Stats: Stats{
			ByProto: make(map[string]int),
			ByHost:  make(map[ethersim.Addr]int),
		},
	}
	if dev != nil {
		m.link = dev.NIC().Network().Link()
	}
	return m
}

// Run captures packets until none arrive for idle.  Batch reads keep
// up with busy networks ("sufficient performance to record all packets
// flowing on a moderately busy Ethernet (with rare lapses)", §5.4).
func (m *Monitor) Run(p *sim.Proc, idle time.Duration) error {
	port := m.dev.Open(p)
	defer port.Close(p)
	prog := m.Filter
	if len(prog) == 0 {
		prog = filter.NewBuilder().AcceptAll().MustProgram()
	}
	f := filter.Filter{
		Priority: 255, // first rights to every packet...
		Program:  prog,
	}
	if err := port.SetFilter(p, f); err != nil {
		return err
	}
	port.SetCopyAll(p, true) // ...without diverting anyone's traffic
	port.SetStamp(p, true)
	port.SetQueueLimit(p, 128)
	port.SetTimeout(p, idle)
	if m.Ring > 0 {
		reg := shm.NewRegistry(m.dev.Host())
		seg, err := reg.Map(p, "monitor-ring", port.RingLayoutSize(m.Ring))
		if err != nil {
			return err
		}
		if err := port.MapRing(p, seg, m.Ring); err != nil {
			return err
		}
	}
	for {
		batch, err := port.ReapBatch(p) // = ReadBatch when no ring is mapped
		if err != nil {
			return nil
		}
		for _, pkt := range batch {
			m.ingest(pkt)
		}
	}
}

func (m *Monitor) ingest(pkt pfdev.Packet) {
	if m.KeepRaw {
		// Ring-delivered Data is a slot view the kernel will reuse;
		// saved traces need their own copy.
		pkt.Data = append([]byte(nil), pkt.Data...)
		m.raw = append(m.raw, pkt)
	}
	rec := Decode(m.link, pkt.Data)
	rec.Stamp = pkt.Stamp
	m.Stats.Packets++
	m.Stats.Bytes += rec.Len
	m.Stats.ByProto[rec.Proto]++
	m.Stats.ByHost[rec.Src]++
	m.Stats.Drops = pkt.Drops
	if m.Keep == 0 || len(m.Records) < m.Keep {
		m.Records = append(m.Records, rec)
	}
}

// Decode parses one frame into a Record; unknown protocols decode as
// raw Ethernet.
func Decode(link ethersim.LinkType, frame []byte) Record {
	rec := Record{Len: len(frame), Proto: "ether", Summary: "undecoded"}
	dst, src, etherType, payload, err := link.Decode(frame)
	if err != nil {
		rec.Summary = "truncated frame"
		return rec
	}
	rec.Src, rec.Dst = src, dst

	switch {
	case etherType == ethersim.EtherTypePup3Mb && link == ethersim.Ether3Mb,
		etherType == ethersim.EtherTypePup && link == ethersim.Ether10Mb:
		decodePup(&rec, payload)
	case etherType == ethersim.EtherTypeIP:
		decodeIP(&rec, payload)
	case etherType == ethersim.EtherTypeARP:
		rec.Proto = "arp"
		rec.Summary = arpSummary(payload, link)
	case etherType == ethersim.EtherTypeRARP:
		rec.Proto = "rarp"
		rec.Summary = arpSummary(payload, link)
	case etherType == ethersim.EtherTypeVMTP:
		decodeVMTP(&rec, payload)
	default:
		rec.Summary = fmt.Sprintf("type 0x%04x, %d bytes", etherType, len(payload))
	}
	return rec
}

func decodePup(rec *Record, payload []byte) {
	rec.Proto = "pup"
	pkt, err := pup.Unmarshal(payload)
	if err != nil {
		rec.Summary = "malformed pup: " + err.Error()
		return
	}
	name := fmt.Sprintf("type %d", pkt.Type)
	switch pkt.Type {
	case pup.TypeEchoMe:
		name = "echoMe"
	case pup.TypeImAnEcho:
		name = "imAnEcho"
	case pup.TypeBSPData:
		rec.Proto = "bsp"
		name = fmt.Sprintf("data seq %d", pkt.ID)
	case pup.TypeBSPAck:
		rec.Proto = "bsp"
		name = fmt.Sprintf("ack %d", pkt.ID)
	case pup.TypeBSPEnd:
		rec.Proto = "bsp"
		name = "end"
	case pup.TypeBSPEndOK:
		rec.Proto = "bsp"
		name = "endOK"
	case pup.TypeEFTPData:
		rec.Proto = "eftp"
		name = fmt.Sprintf("block %d", pkt.ID)
	case pup.TypeEFTPAck:
		rec.Proto = "eftp"
		name = fmt.Sprintf("ack %d", pkt.ID)
	case pup.TypeEFTPEnd:
		rec.Proto = "eftp"
		name = "end"
	case pup.TypeEFTPAbort:
		rec.Proto = "eftp"
		name = fmt.Sprintf("abort code %d", pkt.ID)
	}
	rec.Summary = fmt.Sprintf("%s > %s %s, %d data bytes",
		pkt.Src, pkt.Dst, name, len(pkt.Data))
}

func decodeIP(rec *Record, payload []byte) {
	rec.Proto = "ip"
	if len(payload) < 20 {
		rec.Summary = "truncated IP"
		return
	}
	proto := payload[9]
	src := binary.BigEndian.Uint32(payload[12:])
	dst := binary.BigEndian.Uint32(payload[16:])
	ihl := int(payload[0]&0x0F) * 4
	seg := payload
	if ihl < len(payload) {
		seg = payload[ihl:]
	}
	switch {
	case proto == 1 && len(seg) >= 8:
		rec.Proto = "ip/icmp"
		kind := "type " + fmt.Sprint(seg[0])
		switch seg[0] {
		case 8:
			kind = "echo request"
		case 0:
			kind = "echo reply"
		}
		rec.Summary = fmt.Sprintf("%s > %s icmp %s, %d data bytes",
			ipStr(src), ipStr(dst), kind, len(seg)-8)
	case proto == 17 && len(seg) >= 8:
		rec.Proto = "ip/udp"
		rec.Summary = fmt.Sprintf("%s:%d > %s:%d udp %d bytes",
			ipStr(src), binary.BigEndian.Uint16(seg[0:]),
			ipStr(dst), binary.BigEndian.Uint16(seg[2:]),
			len(seg)-8)
	case proto == 6 && len(seg) >= 20:
		rec.Proto = "ip/tcp"
		flags := tcpFlags(seg[13])
		rec.Summary = fmt.Sprintf("%s:%d > %s:%d tcp %s seq %d ack %d, %d data bytes",
			ipStr(src), binary.BigEndian.Uint16(seg[0:]),
			ipStr(dst), binary.BigEndian.Uint16(seg[2:]),
			flags,
			binary.BigEndian.Uint32(seg[4:]),
			binary.BigEndian.Uint32(seg[8:]),
			len(seg)-int(seg[12]>>4)*4)
	default:
		rec.Summary = fmt.Sprintf("%s > %s proto %d", ipStr(src), ipStr(dst), proto)
	}
}

func decodeVMTP(rec *Record, payload []byte) {
	rec.Proto = "vmtp"
	h, data, err := vmtp.Unmarshal(payload)
	if err != nil {
		rec.Summary = "malformed vmtp"
		return
	}
	kind := "request"
	if h.Kind == vmtp.KindResponse {
		kind = "response"
	}
	rec.Summary = fmt.Sprintf("%s trans %d port %d pkt %d/%d, %d bytes",
		kind, h.TransID, h.DstPort, h.Index+1, h.Count, len(data))
}

func arpSummary(payload []byte, link ethersim.LinkType) string {
	hlen := link.AddrLen()
	if len(payload) < 8+2*hlen+8 {
		return "truncated"
	}
	op := binary.BigEndian.Uint16(payload[6:])
	names := map[uint16]string{1: "who-has", 2: "is-at", 3: "rev-request", 4: "rev-reply"}
	name := names[op]
	if name == "" {
		name = fmt.Sprintf("op %d", op)
	}
	return name
}

func ipStr(a uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", a>>24, byte(a>>16), byte(a>>8), byte(a))
}

func tcpFlags(f byte) string {
	var out []string
	for _, fl := range []struct {
		bit  byte
		name string
	}{{0x02, "S"}, {0x10, "."}, {0x01, "F"}, {0x04, "R"}} {
		if f&fl.bit != 0 {
			out = append(out, fl.name)
		}
	}
	if len(out) == 0 {
		return "-"
	}
	return strings.Join(out, "")
}

// Report renders capture statistics as text.
func (m *Monitor) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d packets, %d bytes", m.Stats.Packets, m.Stats.Bytes)
	if m.Stats.Drops > 0 {
		fmt.Fprintf(&b, " (%d lost to queue overflow)", m.Stats.Drops)
	}
	b.WriteByte('\n')
	for _, proto := range sortedKeys(m.Stats.ByProto) {
		fmt.Fprintf(&b, "  %-7s %6d\n", proto, m.Stats.ByProto[proto])
	}
	return b.String()
}

func sortedKeys(mp map[string]int) []string {
	keys := make([]string, 0, len(mp))
	for k := range mp {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j-1] > keys[j]; j-- {
			keys[j-1], keys[j] = keys[j], keys[j-1]
		}
	}
	return keys
}
