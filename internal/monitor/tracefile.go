package monitor

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/ethersim"
	"repro/internal/pfdev"
	"repro/internal/sim"
)

// Trace files let a capture be saved and analyzed offline — the §5.4
// advantage of an integrated monitor: "All the tools of the
// workstation are available for manipulating and analyzing packet
// traces."  The format is a minimal pcap analog:
//
//	magic   "PFTR"           4 bytes
//	version uint16           currently 1
//	link    uint16           0 = 3 Mb experimental, 1 = 10 Mb
//	then per packet:
//	stamp   int64            virtual nanoseconds since simulation start
//	length  uint32           frame bytes that follow
//	frame   [length]byte     complete frame including data-link header
//
// All integers are big-endian, like everything else on this wire.

const (
	traceMagic   = "PFTR"
	traceVersion = 1
	// MaxTraceFrame bounds a record so a corrupt length field cannot
	// cause a huge allocation.
	MaxTraceFrame = 1 << 16
)

// Trace-file errors.
var (
	ErrTraceMagic   = errors.New("monitor: not a trace file")
	ErrTraceVersion = errors.New("monitor: unsupported trace version")
	ErrTraceCorrupt = errors.New("monitor: corrupt trace record")
)

// TraceWriter streams captured packets to an io.Writer.
type TraceWriter struct {
	w   *bufio.Writer
	n   int
	err error
}

// NewTraceWriter writes the file header and returns the writer.
func NewTraceWriter(w io.Writer, link ethersim.LinkType) (*TraceWriter, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return nil, err
	}
	var hdr [4]byte
	binary.BigEndian.PutUint16(hdr[0:], traceVersion)
	binary.BigEndian.PutUint16(hdr[2:], uint16(link))
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &TraceWriter{w: bw}, nil
}

// Write appends one captured packet.
func (t *TraceWriter) Write(pkt pfdev.Packet) error {
	if t.err != nil {
		return t.err
	}
	if len(pkt.Data) > MaxTraceFrame {
		return fmt.Errorf("monitor: frame of %d bytes exceeds trace limit", len(pkt.Data))
	}
	var hdr [12]byte
	binary.BigEndian.PutUint64(hdr[0:], uint64(pkt.Stamp))
	binary.BigEndian.PutUint32(hdr[8:], uint32(len(pkt.Data)))
	if _, err := t.w.Write(hdr[:]); err != nil {
		t.err = err
		return err
	}
	if _, err := t.w.Write(pkt.Data); err != nil {
		t.err = err
		return err
	}
	t.n++
	return nil
}

// Count returns the number of packets written.
func (t *TraceWriter) Count() int { return t.n }

// Flush drains buffered records to the underlying writer.
func (t *TraceWriter) Flush() error {
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// TraceReader reads a trace file.
type TraceReader struct {
	r    *bufio.Reader
	Link ethersim.LinkType
}

// NewTraceReader validates the header and returns a reader.
func NewTraceReader(r io.Reader) (*TraceReader, error) {
	br := bufio.NewReader(r)
	hdr := make([]byte, 8)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, ErrTraceMagic
	}
	if string(hdr[:4]) != traceMagic {
		return nil, ErrTraceMagic
	}
	if binary.BigEndian.Uint16(hdr[4:]) != traceVersion {
		return nil, ErrTraceVersion
	}
	link := ethersim.LinkType(binary.BigEndian.Uint16(hdr[6:]))
	if link != ethersim.Ether3Mb && link != ethersim.Ether10Mb {
		return nil, ErrTraceCorrupt
	}
	return &TraceReader{r: br, Link: link}, nil
}

// Next returns the next packet, or io.EOF at the end of the trace.
func (t *TraceReader) Next() (pfdev.Packet, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(t.r, hdr[:]); err != nil {
		if err == io.EOF {
			return pfdev.Packet{}, io.EOF
		}
		return pfdev.Packet{}, ErrTraceCorrupt
	}
	n := binary.BigEndian.Uint32(hdr[8:])
	if n > MaxTraceFrame {
		return pfdev.Packet{}, ErrTraceCorrupt
	}
	frame := make([]byte, n)
	if _, err := io.ReadFull(t.r, frame); err != nil {
		return pfdev.Packet{}, ErrTraceCorrupt
	}
	return pfdev.Packet{
		Stamp: time.Duration(binary.BigEndian.Uint64(hdr[0:])),
		Data:  frame,
	}, nil
}

// SaveTrace writes a monitor's raw capture to w.  The monitor must
// have been run with KeepRaw enabled so frames are retained.
func (m *Monitor) SaveTrace(w io.Writer) error {
	tw, err := NewTraceWriter(w, m.link)
	if err != nil {
		return err
	}
	for _, pkt := range m.raw {
		if err := tw.Write(pkt); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// Replay retransmits a saved trace onto a live network with the
// original inter-packet spacing, from the calling process's host — a
// captured workload becomes a reproducible traffic generator.
func Replay(p *sim.Proc, nic *ethersim.NIC, r io.Reader) (int, error) {
	tr, err := NewTraceReader(r)
	if err != nil {
		return 0, err
	}
	n := 0
	start := p.Now()
	for {
		pkt, err := tr.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		// Stamps are offsets from the replay's start, so the
		// capture's lead-in and spacing are both reproduced.
		if due := start + pkt.Stamp; due > p.Now() {
			p.Sleep(due - p.Now())
		}
		if err := nic.Transmit(pkt.Data); err == nil {
			n++
		}
	}
}

// LoadTrace ingests a saved trace into an offline monitor (decode,
// statistics, trace lines), returning the packet count.
func (m *Monitor) LoadTrace(r io.Reader) (int, error) {
	tr, err := NewTraceReader(r)
	if err != nil {
		return 0, err
	}
	m.link = tr.Link
	n := 0
	for {
		pkt, err := tr.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		m.ingest(pkt)
		n++
	}
}
