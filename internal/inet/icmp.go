package inet

import (
	"encoding/binary"
	"time"

	"repro/internal/sim"
)

// ICMP echo — ping — the kernel stack's own liveness probe.  Echo
// requests are answered entirely inside the receiving kernel (no
// process is involved), the way 4.3BSD answered pings; the pinging
// process blocks in one "system call" until the reply or a timeout.

// ProtoICMP is the IP protocol number for ICMP.
const ProtoICMP = 1

// ICMP message types used here.
const (
	icmpEchoReply   = 0
	icmpEchoRequest = 8
)

type pingKey struct {
	id, seq uint16
}

type pingWait struct {
	q    *sim.WaitQ
	done bool
	rtt  time.Duration
	sent time.Duration
}

// Ping sends an ICMP echo request with n payload bytes to dst and
// waits for the reply, returning the round-trip time.
func (st *Stack) Ping(p *sim.Proc, dst Addr, n int, timeout time.Duration) (time.Duration, error) {
	p.Syscall("icmp")
	p.CopyIn("icmp", n)

	st.pingSeq++
	key := pingKey{id: st.pingID, seq: st.pingSeq}
	w := &pingWait{q: st.host.Sim().NewWaitQ(), sent: st.host.Clock().Now()}
	if st.pings == nil {
		st.pings = make(map[pingKey]*pingWait)
	}
	st.pings[key] = w
	defer delete(st.pings, key)

	msg := marshalICMP(icmpEchoRequest, key.id, key.seq, make([]byte, n))
	st.sendIP(IPHdr{Proto: ProtoICMP, Dst: dst}, msg, len(msg))

	if !p.Wait(w.q, timeout) && !w.done {
		return 0, ErrTimeout
	}
	return w.rtt, nil
}

func marshalICMP(typ uint8, id, seq uint16, data []byte) []byte {
	msg := make([]byte, 8+len(data))
	msg[0] = typ
	binary.BigEndian.PutUint16(msg[4:], id)
	binary.BigEndian.PutUint16(msg[6:], seq)
	copy(msg[8:], data)
	binary.BigEndian.PutUint16(msg[2:], InternetChecksum(msg))
	return msg
}

// inputICMP runs in kernel context after IP input cost was charged.
func (st *Stack) inputICMP(h IPHdr, seg []byte) {
	if len(seg) < 8 || InternetChecksum(seg) != 0 {
		return
	}
	id := binary.BigEndian.Uint16(seg[4:])
	seq := binary.BigEndian.Uint16(seg[6:])
	switch seg[0] {
	case icmpEchoRequest:
		// Answered by the kernel with no process involvement.
		st.host.RunKernel("icmp", st.host.Costs().IPInput/2, func() {
			reply := marshalICMP(icmpEchoReply, id, seq, seg[8:])
			st.sendIP(IPHdr{Proto: ProtoICMP, Dst: h.Src}, reply, len(reply))
		})
	case icmpEchoReply:
		w := st.pings[pingKey{id: id, seq: seq}]
		if w == nil || w.done {
			return
		}
		w.done = true
		w.rtt = st.host.Clock().Now() - w.sent
		w.q.WakeAll(st.host)
	}
}
