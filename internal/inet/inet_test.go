package inet

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/ethersim"
	"repro/internal/sim"
	"repro/internal/vtime"
)

func TestInternetChecksum(t *testing.T) {
	// RFC 1071's worked example.
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := InternetChecksum(b); got != ^uint16(0xddf2) {
		t.Fatalf("checksum = %04x, want %04x", got, ^uint16(0xddf2))
	}
	// Verifying a block with its checksum included yields zero.
	hdr := MarshalIP(IPHdr{Proto: ProtoUDP, TTL: 9, Src: 1, Dst: 2}, nil)
	if InternetChecksum(hdr[:IPHeaderLen]) != 0 {
		t.Fatal("self-verification failed")
	}
}

func TestIPRoundTrip(t *testing.T) {
	payload := []byte{1, 2, 3, 4, 5}
	pkt := MarshalIP(IPHdr{Proto: ProtoTCP, TTL: 30, Src: 0x0A000001, Dst: 0x0A000002}, payload)
	h, got, err := UnmarshalIP(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if h.Proto != ProtoTCP || h.Src != 0x0A000001 || h.Dst != 0x0A000002 || h.TTL != 30 {
		t.Fatalf("header = %+v", h)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload mismatch")
	}

	// Corruption is caught by the header checksum.
	pkt[15] ^= 0x40
	if _, _, err := UnmarshalIP(pkt); err != ErrChecksum {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := UnmarshalIP(pkt[:10]); err != ErrShort {
		t.Fatal("short accepted")
	}
	bad := append([]byte(nil), MarshalIP(IPHdr{Proto: 1}, nil)...)
	bad[0] = 0x65 // version 6
	if _, _, err := UnmarshalIP(bad); err != ErrVersion {
		t.Fatal("version accepted")
	}
}

func TestIPMarshalProperty(t *testing.T) {
	f := func(proto, ttl uint8, src, dst uint32, payload []byte) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		pkt := MarshalIP(IPHdr{Proto: proto, TTL: ttl, Src: Addr(src), Dst: Addr(dst)}, payload)
		h, got, err := UnmarshalIP(pkt)
		return err == nil && h.Proto == proto && h.Src == Addr(src) &&
			h.Dst == Addr(dst) && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// inetRig wires two hosts with kernel stacks on a 10 Mb Ethernet.
type inetRig struct {
	s      *sim.Sim
	net    *ethersim.Network
	ha, hb *sim.Host
	sa, sb *Stack
}

func newInetRig(seedARP bool) *inetRig {
	s := sim.New(vtime.DefaultCosts())
	net := ethersim.New(s, ethersim.Ether10Mb)
	ha, hb := s.NewHost("a"), s.NewHost("b")
	na := net.Attach(ha, 0x11)
	nb := net.Attach(hb, 0x22)
	sa, sb := NewStack(na, 0x0A000001), NewStack(nb, 0x0A000002)
	sa.StandaloneHandler()
	sb.StandaloneHandler()
	if seedARP {
		sa.AddARP(sb.Addr(), nb.Addr())
		sb.AddARP(sa.Addr(), na.Addr())
	}
	return &inetRig{s: s, net: net, ha: ha, hb: hb, sa: sa, sb: sb}
}

func TestUDPDelivery(t *testing.T) {
	r := newInetRig(true)
	var got Datagram
	var recvErr error
	r.s.Spawn(r.hb, "server", func(p *sim.Proc) {
		u, err := r.sb.UDPBind(p, 53)
		if err != nil {
			t.Error(err)
			return
		}
		u.SetTimeout(100 * time.Millisecond)
		got, recvErr = u.Recv(p)
	})
	r.s.Spawn(r.ha, "client", func(p *sim.Proc) {
		u, _ := r.sa.UDPBind(p, 1024)
		p.Sleep(time.Millisecond)
		u.Send(p, r.sb.Addr(), 53, []byte("query"))
	})
	r.s.Run(0)
	if recvErr != nil {
		t.Fatal(recvErr)
	}
	if string(got.Data) != "query" || got.Src != r.sa.Addr() || got.SrcPort != 1024 {
		t.Fatalf("got %+v", got)
	}
}

func TestUDPARPResolution(t *testing.T) {
	// Without a seeded ARP cache the first datagram triggers a
	// request/reply exchange and still arrives.
	r := newInetRig(false)
	var gotData []byte
	r.s.Spawn(r.hb, "server", func(p *sim.Proc) {
		u, _ := r.sb.UDPBind(p, 9)
		u.SetTimeout(200 * time.Millisecond)
		if d, err := u.Recv(p); err == nil {
			gotData = d.Data
		}
	})
	r.s.Spawn(r.ha, "client", func(p *sim.Proc) {
		u, _ := r.sa.UDPBind(p, 1025)
		p.Sleep(time.Millisecond)
		u.Send(p, r.sb.Addr(), 9, []byte("hi"))
	})
	r.s.Run(0)
	if string(gotData) != "hi" {
		t.Fatalf("got %q", gotData)
	}
	if r.sb.ARPIn == 0 || r.sa.ARPIn == 0 {
		t.Fatal("no ARP traffic observed")
	}
}

func TestUDPPortInUseAndClose(t *testing.T) {
	r := newInetRig(true)
	r.s.Spawn(r.ha, "p", func(p *sim.Proc) {
		u, err := r.sa.UDPBind(p, 7)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := r.sa.UDPBind(p, 7); err != ErrPortInUse {
			t.Errorf("err = %v", err)
		}
		u.Close(p)
		if _, err := r.sa.UDPBind(p, 7); err != nil {
			t.Errorf("rebind after close: %v", err)
		}
	})
	r.s.Run(0)
}

func TestTCPConnectTransferClose(t *testing.T) {
	r := newInetRig(true)
	data := make([]byte, 50_000)
	for i := range data {
		data[i] = byte(i / 3)
	}
	var received bytes.Buffer
	var acceptErr, dialErr error
	r.s.Spawn(r.hb, "server", func(p *sim.Proc) {
		l, _ := r.sb.TCPListen(p, 80, DefaultTCPConfig())
		c, err := l.Accept(p, time.Second)
		if err != nil {
			acceptErr = err
			return
		}
		c.SetTimeout(time.Second)
		for {
			chunk, err := c.Read(p, 0)
			if err == io.EOF {
				return
			}
			if err != nil {
				acceptErr = err
				return
			}
			received.Write(chunk)
		}
	})
	r.s.Spawn(r.ha, "client", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		c, err := r.sa.TCPDial(p, r.sb.Addr(), 80, 2000, DefaultTCPConfig())
		if err != nil {
			dialErr = err
			return
		}
		if err := c.Write(p, data); err != nil {
			dialErr = err
			return
		}
		dialErr = c.Close(p)
	})
	r.s.Run(0)
	if acceptErr != nil || dialErr != nil {
		t.Fatalf("accept=%v dial=%v", acceptErr, dialErr)
	}
	if !bytes.Equal(received.Bytes(), data) {
		t.Fatalf("stream corrupted: got %d want %d bytes", received.Len(), len(data))
	}
}

func TestTCPBidirectional(t *testing.T) {
	r := newInetRig(true)
	var reply []byte
	r.s.Spawn(r.hb, "server", func(p *sim.Proc) {
		l, _ := r.sb.TCPListen(p, 7, DefaultTCPConfig())
		c, err := l.Accept(p, time.Second)
		if err != nil {
			t.Error(err)
			return
		}
		c.SetTimeout(time.Second)
		msg, err := c.Read(p, 0)
		if err != nil {
			t.Error(err)
			return
		}
		c.Write(p, bytes.ToUpper(msg))
	})
	r.s.Spawn(r.ha, "client", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		c, err := r.sa.TCPDial(p, r.sb.Addr(), 7, 2001, DefaultTCPConfig())
		if err != nil {
			t.Error(err)
			return
		}
		c.SetTimeout(time.Second)
		c.Write(p, []byte("hello"))
		reply, _ = c.Read(p, 0)
	})
	r.s.Run(0)
	if string(reply) != "HELLO" {
		t.Fatalf("reply = %q", reply)
	}
}

func TestTCPRetransmission(t *testing.T) {
	r := newInetRig(true)
	// Drop every 9th frame; go-back-N must recover.
	r.net.DropEvery = 9
	data := make([]byte, 20_000)
	for i := range data {
		data[i] = byte(i)
	}
	var received bytes.Buffer
	var retrans uint64
	r.s.Spawn(r.hb, "server", func(p *sim.Proc) {
		l, _ := r.sb.TCPListen(p, 80, DefaultTCPConfig())
		c, err := l.Accept(p, 5*time.Second)
		if err != nil {
			t.Error(err)
			return
		}
		c.SetTimeout(2 * time.Second)
		for {
			chunk, err := c.Read(p, 0)
			if err != nil {
				return
			}
			received.Write(chunk)
		}
	})
	r.s.Spawn(r.ha, "client", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		c, err := r.sa.TCPDial(p, r.sb.Addr(), 80, 2000, DefaultTCPConfig())
		if err != nil {
			t.Error(err)
			return
		}
		c.Write(p, data)
		c.Close(p)
		retrans = c.Retransmits
	})
	r.s.Run(0)
	if !bytes.Equal(received.Bytes(), data) {
		t.Fatalf("stream corrupted under loss: got %d want %d", received.Len(), len(data))
	}
	if retrans == 0 {
		t.Error("expected retransmissions")
	}
}

func TestTCPDialRefused(t *testing.T) {
	r := newInetRig(true)
	var err error
	r.s.Spawn(r.ha, "client", func(p *sim.Proc) {
		_, err = r.sa.TCPDial(p, r.sb.Addr(), 81, 2000,
			TCPConfig{RTO: 5 * time.Millisecond})
	})
	r.s.Run(0)
	if err != ErrConnRefused {
		t.Fatalf("err = %v", err)
	}
}

func TestTCPSmallMSS(t *testing.T) {
	// Forcing small segments doubles the packets on the wire
	// (table 6-6: "if TCP is forced to use the smaller packet size,
	// its performance is cut in half").
	run := func(mss int) uint64 {
		r := newInetRig(true)
		cfg := DefaultTCPConfig()
		cfg.MSS = mss
		data := make([]byte, 30_000)
		r.s.Spawn(r.hb, "server", func(p *sim.Proc) {
			l, _ := r.sb.TCPListen(p, 80, cfg)
			c, err := l.Accept(p, time.Second)
			if err != nil {
				return
			}
			c.SetTimeout(time.Second)
			for {
				if _, err := c.Read(p, 0); err != nil {
					return
				}
			}
		})
		r.s.Spawn(r.ha, "client", func(p *sim.Proc) {
			p.Sleep(time.Millisecond)
			c, err := r.sa.TCPDial(p, r.sb.Addr(), 80, 2000, cfg)
			if err != nil {
				return
			}
			c.Write(p, data)
			c.Close(p)
		})
		r.s.Run(0)
		return r.net.FramesOnWire
	}
	big, small := run(1024), run(512)
	if small <= big {
		t.Fatalf("small MSS did not increase frames: %d vs %d", small, big)
	}
}

func TestClaimLeavesOtherTypes(t *testing.T) {
	r := newInetRig(true)
	frame := ethersim.Ether10Mb.Encode(0x22, 0x11, ethersim.EtherTypePup, []byte{1, 2})
	if r.sb.Claim(frame) {
		t.Fatal("stack claimed a Pup frame")
	}
	arp := ethersim.Ether10Mb.Encode(0x22, 0x11, ethersim.EtherTypeARP, make([]byte, 28))
	if !r.sb.Claim(arp) {
		t.Fatal("stack did not claim ARP")
	}
}

func TestPing(t *testing.T) {
	r := newInetRig(true)
	var rtt time.Duration
	var err error
	r.s.Spawn(r.ha, "ping", func(p *sim.Proc) {
		rtt, err = r.sa.Ping(p, r.sb.Addr(), 56, 100*time.Millisecond)
	})
	r.s.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if rtt <= 0 || rtt > 20*time.Millisecond {
		t.Fatalf("rtt = %v", rtt)
	}
	// The reply came from the kernel: host B never ran a process.
	if r.hb.UserTime != 0 {
		t.Fatalf("host B consumed %v of user CPU answering a ping", r.hb.UserTime)
	}
}

func TestPingTimeout(t *testing.T) {
	r := newInetRig(true)
	var err error
	r.s.Spawn(r.ha, "ping", func(p *sim.Proc) {
		// 10.0.0.99 does not exist (but is in no ARP cache either;
		// seed it so the request goes out and dies silently).
		r.sa.AddARP(0x0A000063, 0x63)
		_, err = r.sa.Ping(p, 0x0A000063, 8, 20*time.Millisecond)
	})
	r.s.Run(0)
	if err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestPingConcurrent(t *testing.T) {
	// Two outstanding pings from one host resolve independently.
	r := newInetRig(true)
	var rtts [2]time.Duration
	for i := 0; i < 2; i++ {
		i := i
		r.s.Spawn(r.ha, "ping", func(p *sim.Proc) {
			p.Sleep(time.Duration(i) * time.Millisecond)
			rtts[i], _ = r.sa.Ping(p, r.sb.Addr(), 128*i, 100*time.Millisecond)
		})
	}
	r.s.Run(0)
	if rtts[0] <= 0 || rtts[1] <= 0 {
		t.Fatalf("rtts = %v", rtts)
	}
}
