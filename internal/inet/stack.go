package inet

import (
	"encoding/binary"
	"time"

	"repro/internal/ethersim"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Stack is one host's kernel-resident protocol stack.  It satisfies
// pfdev.KernelProtocol so the packet filter device can hand it frames
// first.
type Stack struct {
	host *sim.Host
	nic  *ethersim.NIC
	addr Addr

	arp     map[Addr]ethersim.Addr
	arpWait map[Addr][][]byte // packets queued awaiting resolution

	udp map[uint16]*UDPSocket
	tcp map[tcpKey]*TCPConn
	lst map[uint16]*TCPListener

	pings   map[pingKey]*pingWait
	pingID  uint16
	pingSeq uint16

	// Counters of kernel protocol activity.
	IPIn, IPOut, ARPIn uint64
}

// NewStack creates a stack on nic with the given IP address.  It does
// not take over the NIC handler: attach a pfdev.Device with this stack
// as its KernelProtocol (figure 3-3), or call Claim directly from a
// custom handler.
func NewStack(nic *ethersim.NIC, addr Addr) *Stack {
	return &Stack{
		host: nic.Host(), nic: nic, addr: addr,
		pingID:  uint16(addr), // distinct per host; good enough for a sim
		arp:     make(map[Addr]ethersim.Addr),
		arpWait: make(map[Addr][][]byte),
		udp:     make(map[uint16]*UDPSocket),
		tcp:     make(map[tcpKey]*TCPConn),
		lst:     make(map[uint16]*TCPListener),
	}
}

// StandaloneHandler installs the stack directly as the NIC handler for
// hosts with no packet filter (the "vanilla 4.3BSD" of figure 3-2).
func (st *Stack) StandaloneHandler() {
	st.nic.Handler = func(frame []byte) { st.Claim(frame) }
}

// Addr returns the stack's IP address.
func (st *Stack) Addr() Addr { return st.addr }

// Host returns the host the stack runs on.
func (st *Stack) Host() *sim.Host { return st.host }

// AddARP seeds the ARP cache (benchmarks pre-seed it to avoid
// resolution noise).
func (st *Stack) AddARP(ip Addr, hw ethersim.Addr) { st.arp[ip] = hw }

// Claim implements pfdev.KernelProtocol: IP and ARP frames are
// consumed by the kernel stack, everything else is left to the packet
// filter.
func (st *Stack) Claim(frame []byte) bool {
	link := st.nic.Network().Link()
	_, _, etherType, payload, err := link.Decode(frame)
	if err != nil {
		return false
	}
	switch etherType {
	case ethersim.EtherTypeIP:
		st.inputIP(payload, st.host.Sim().Tracer().SpanClaimTake())
		return true
	case ethersim.EtherTypeARP:
		st.inputARP(payload, st.host.Sim().Tracer().SpanClaimTake())
		return true
	}
	return false
}

// inputIP processes a received IP packet in kernel context.  The span
// (if any) terminates here: either as a typed drop or as a kernel
// delivery — protocol handlers above never re-terminate it.
func (st *Stack) inputIP(payload []byte, span uint64) {
	costs := st.host.Costs()
	tr := st.host.Sim().Tracer()
	now := st.host.Clock().Now()
	h, seg, err := UnmarshalIP(payload)
	if err != nil || h.Dst != st.addr {
		tr.SpanDrop(span, now, st.host.Name(), trace.DropInet)
		st.host.RunKernel("ip", costs.IPInput, nil)
		return
	}
	if h.TTL == 0 {
		tr.SpanDrop(span, now, st.host.Name(), trace.DropTTL)
		st.host.RunKernel("ip", costs.IPInput, nil)
		return
	}
	tr.SpanKernelDelivered(span, now, st.host.Name(), "ip")
	st.IPIn++
	if tr != nil {
		tr.Proto(now, st.host.Name(), "ip_in")
	}
	switch h.Proto {
	case ProtoUDP:
		st.host.RunKernel("ip", costs.IPInput, func() {
			st.inputUDP(h, seg)
		})
	case ProtoTCP:
		st.host.RunKernel("ip", costs.IPInput, func() {
			st.inputTCP(h, seg)
		})
	case ProtoICMP:
		st.host.RunKernel("ip", costs.IPInput, func() {
			st.inputICMP(h, seg)
		})
	default:
		st.host.RunKernel("ip", costs.IPInput, nil)
	}
}

// sendIP charges kernel output costs and transmits an IP packet,
// resolving the next hop with ARP if needed.
func (st *Stack) sendIP(h IPHdr, seg []byte, checksumBytes int) {
	costs := st.host.Costs()
	h.Src = st.addr
	if h.TTL == 0 {
		h.TTL = 30
	}
	pkt := MarshalIP(h, seg)
	cost := costs.IPOutput + costs.DriverSend + costs.Checksum(checksumBytes)
	st.IPOut++
	if tr := st.host.Sim().Tracer(); tr != nil {
		tr.Proto(st.host.Clock().Now(), st.host.Name(), "ip_out")
	}
	st.host.RunKernel("ip", cost, func() {
		st.transmitResolved(h.Dst, pkt)
	})
}

func (st *Stack) transmitResolved(dst Addr, pkt []byte) {
	link := st.nic.Network().Link()
	if hw, ok := st.arp[dst]; ok {
		st.nic.Transmit(link.Encode(hw, st.nic.Addr(), ethersim.EtherTypeIP, pkt))
		return
	}
	// Queue behind an ARP request.
	st.arpWait[dst] = append(st.arpWait[dst], pkt)
	if len(st.arpWait[dst]) == 1 {
		st.sendARP(arpRequest, dst, 0)
	}
}

// --- ARP -------------------------------------------------------------------

// ARP opcodes (RFC 826; RARP reuses the format with opcodes 3/4, see
// package rarp).
const (
	arpRequest = 1
	arpReply   = 2
)

// arpPacket is the Ethernet/IPv4 ARP layout used by both this stack
// and package rarp.
func marshalARP(op uint16, senderHW ethersim.Addr, senderIP Addr, targetHW ethersim.Addr, targetIP Addr, link ethersim.LinkType) []byte {
	hlen := link.AddrLen()
	b := make([]byte, 8+2*hlen+8)
	binary.BigEndian.PutUint16(b[0:], 1) // hardware: Ethernet
	binary.BigEndian.PutUint16(b[2:], uint16(ethersim.EtherTypeIP))
	b[4] = byte(hlen)
	b[5] = 4
	binary.BigEndian.PutUint16(b[6:], op)
	off := 8
	putHW := func(a ethersim.Addr) {
		for i := hlen - 1; i >= 0; i-- {
			b[off+i] = byte(a)
			a >>= 8
		}
		off += hlen
	}
	putIP := func(a Addr) {
		binary.BigEndian.PutUint32(b[off:], uint32(a))
		off += 4
	}
	putHW(senderHW)
	putIP(senderIP)
	putHW(targetHW)
	putIP(targetIP)
	return b
}

func unmarshalARP(b []byte, link ethersim.LinkType) (op uint16, senderHW ethersim.Addr, senderIP Addr, targetHW ethersim.Addr, targetIP Addr, ok bool) {
	hlen := link.AddrLen()
	if len(b) < 8+2*hlen+8 || int(b[4]) != hlen || b[5] != 4 {
		return 0, 0, 0, 0, 0, false
	}
	op = binary.BigEndian.Uint16(b[6:])
	off := 8
	getHW := func() ethersim.Addr {
		var a ethersim.Addr
		for i := 0; i < hlen; i++ {
			a = a<<8 | ethersim.Addr(b[off+i])
		}
		off += hlen
		return a
	}
	getIP := func() Addr {
		a := Addr(binary.BigEndian.Uint32(b[off:]))
		off += 4
		return a
	}
	senderHW = getHW()
	senderIP = getIP()
	targetHW = getHW()
	targetIP = getIP()
	return op, senderHW, senderIP, targetHW, targetIP, true
}

func (st *Stack) sendARP(op uint16, target Addr, targetHW ethersim.Addr) {
	link := st.nic.Network().Link()
	pkt := marshalARP(op, st.nic.Addr(), st.addr, targetHW, target, link)
	dst := targetHW
	if op == arpRequest {
		dst = link.BroadcastAddr()
	}
	st.host.RunKernel("arp", 100*time.Microsecond, func() {
		st.nic.Transmit(link.Encode(dst, st.nic.Addr(), ethersim.EtherTypeARP, pkt))
	})
}

func (st *Stack) inputARP(payload []byte, span uint64) {
	st.ARPIn++
	tr := st.host.Sim().Tracer()
	if tr != nil {
		tr.Proto(st.host.Clock().Now(), st.host.Name(), "arp_in")
	}
	link := st.nic.Network().Link()
	costs := st.host.Costs()
	op, senderHW, senderIP, _, targetIP, ok := unmarshalARP(payload, link)
	if !ok {
		tr.SpanDrop(span, st.host.Clock().Now(), st.host.Name(), trace.DropInet)
		return
	}
	tr.SpanKernelDelivered(span, st.host.Clock().Now(), st.host.Name(), "arp")
	st.host.RunKernel("arp", costs.IPInput/3, func() {
		// Opportunistically learn the sender.
		st.arp[senderIP] = senderHW
		switch op {
		case arpRequest:
			if targetIP == st.addr {
				st.sendARP(arpReply, senderIP, senderHW)
			}
		case arpReply:
			// Flush packets that waited on this resolution.
			for _, pkt := range st.arpWait[senderIP] {
				st.transmitResolved(senderIP, pkt)
			}
			delete(st.arpWait, senderIP)
		}
	})
}
