package inet

import (
	"bytes"
	"testing"
)

// Native fuzz target for IP header parsing: arbitrary bytes must never
// panic, and whatever parses must obey the header invariants the rest
// of the stack relies on.

func FuzzUnmarshalIP(f *testing.F) {
	valid := MarshalIP(IPHdr{TTL: 64, Proto: ProtoUDP, Src: 0x0A000001, Dst: 0x0A000002},
		[]byte("payload"))
	f.Add(valid)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x45}, IPHeaderLen))
	f.Add([]byte{0x4F, 0, 0, 60}) // IHL claims 60 bytes, packet has 4

	f.Fuzz(func(t *testing.T, b []byte) {
		h, payload, err := UnmarshalIP(b) // must not panic
		if err != nil {
			return
		}
		ihl := int(b[0]&0x0F) * 4
		if h.TotalLen < ihl || h.TotalLen > len(b) {
			t.Fatalf("accepted inconsistent TotalLen %d (ihl %d, buf %d)", h.TotalLen, ihl, len(b))
		}
		if len(payload) != h.TotalLen-ihl {
			t.Fatalf("payload %d bytes, header promises %d", len(payload), h.TotalLen-ihl)
		}
	})
}

// TestIPHeaderBitFlipAlwaysCaught pins the checksum's guarantee for
// the fault injector: any single bit flip within the IP header makes
// UnmarshalIP fail — the ones'-complement sum has no single-bit blind
// spot.
func TestIPHeaderBitFlipAlwaysCaught(t *testing.T) {
	wire := MarshalIP(IPHdr{TTL: 64, Proto: ProtoTCP, Src: 0x0A000001, Dst: 0x0A000002},
		bytes.Repeat([]byte{0x55}, 40))
	if _, _, err := UnmarshalIP(wire); err != nil {
		t.Fatal(err)
	}
	for bit := 0; bit < IPHeaderLen*8; bit++ {
		flipped := append([]byte(nil), wire...)
		flipped[bit/8] ^= 1 << (bit % 8)
		if _, _, err := UnmarshalIP(flipped); err == nil {
			t.Fatalf("header bit flip at %d (byte %d) survived UnmarshalIP", bit, bit/8)
		}
	}
}
