package inet

import (
	"encoding/binary"
	"errors"
	"io"
	"time"

	"repro/internal/sim"
)

// TCP in this stack is a compact but real byte-stream protocol:
// three-way handshake, cumulative acknowledgements, go-back-N
// retransmission, FIN teardown, and full data checksumming ("note that
// TCP checksums all data", §6.3).  Segments default to 1024 data
// bytes, making a 10 Mb Ethernet frame of 1078 bytes — the size §6.4
// reports for 4.3BSD TCP — and can be forced smaller for the table 6-6
// packet-size correction experiment.

// DefaultMSS reproduces 4.3BSD's 1078-byte TCP packets:
// 1024 + 20 (TCP) + 20 (IP) + 14 (Ethernet) = 1078.
const DefaultMSS = 1024

// TCPConfig tunes a connection.
type TCPConfig struct {
	MSS    int           // data bytes per segment
	Window int           // segments in flight
	RTO    time.Duration // retransmission timeout
}

// DefaultTCPConfig returns the configuration used by benchmarks.
func DefaultTCPConfig() TCPConfig {
	return TCPConfig{MSS: DefaultMSS, Window: 4, RTO: 100 * time.Millisecond}
}

func (c *TCPConfig) sanitize() {
	if c.MSS <= 0 {
		c.MSS = DefaultMSS
	}
	if c.Window <= 0 {
		c.Window = 4
	}
	if c.RTO <= 0 {
		c.RTO = 100 * time.Millisecond
	}
}

// TCP flag bits.
const (
	flagFIN = 0x01
	flagSYN = 0x02
	flagRST = 0x04
	flagACK = 0x10
)

// Connection states.
const (
	stClosed = iota
	stSynSent
	stSynRcvd
	stEstablished
	stFinWait // our FIN sent, awaiting its ack
	stDone
)

type tcpKey struct {
	remote     Addr
	remotePort uint16
	localPort  uint16
}

// TCPConn is one kernel-resident TCP connection.
type TCPConn struct {
	stack *Stack
	key   tcpKey
	cfg   TCPConfig
	state int

	// Send side.  sndBuf holds bytes from seq sndBase on (acked
	// bytes are trimmed); sndNxt is the next seq to transmit.
	sndBuf   []byte
	sndBase  uint32
	sndNxt   uint32
	finSeq   uint32 // seq consumed by our FIN, valid in stFinWait
	closing  bool
	rtxArmed bool
	rtxGen   int
	sndLimit int
	timeout  time.Duration

	// Receive side.
	rcvBuf  []byte
	rcvNxt  uint32
	peerFIN bool

	readers, writers, waiters *sim.WaitQ

	// lst points back to the listener whose Accept should be
	// notified when the handshake completes (server side only).
	lst *TCPListener

	// Retransmits counts RTO firings.
	Retransmits uint64
}

// TCPListener accepts incoming connections on a port.
type TCPListener struct {
	stack   *Stack
	port    uint16
	cfg     TCPConfig
	backlog []*TCPConn
	accepts *sim.WaitQ
}

// Errors from TCP operations.
var (
	ErrConnRefused = errors.New("inet: connection refused or timed out")
	ErrConnClosed  = errors.New("inet: connection closed")
)

// TCPListen binds a listening port.  Process context.
func (st *Stack) TCPListen(p *sim.Proc, port uint16, cfg TCPConfig) (*TCPListener, error) {
	p.Syscall("tcp")
	cfg.sanitize()
	if _, busy := st.lst[port]; busy {
		return nil, ErrPortInUse
	}
	l := &TCPListener{stack: st, port: port, cfg: cfg, accepts: st.host.Sim().NewWaitQ()}
	st.lst[port] = l
	return l, nil
}

// Accept blocks until a connection completes the handshake.
func (l *TCPListener) Accept(p *sim.Proc, timeout time.Duration) (*TCPConn, error) {
	p.Syscall("tcp")
	for len(l.backlog) == 0 {
		if !p.Wait(l.accepts, timeout) {
			return nil, ErrTimeout
		}
	}
	c := l.backlog[0]
	l.backlog = l.backlog[1:]
	return c, nil
}

// TCPDial opens a connection; it blocks until established or refused.
func (st *Stack) TCPDial(p *sim.Proc, dst Addr, dstPort, localPort uint16, cfg TCPConfig) (*TCPConn, error) {
	p.Syscall("tcp")
	cfg.sanitize()
	c := st.newConn(tcpKey{remote: dst, remotePort: dstPort, localPort: localPort}, cfg)
	c.state = stSynSent
	c.sendSeg(flagSYN, 0, nil) // the SYN occupies sequence 0; data starts at 1
	c.armRTO()
	for try := 0; c.state != stEstablished; try++ {
		if try > 10 {
			c.state = stDone
			delete(st.tcp, c.key)
			return nil, ErrConnRefused
		}
		p.Wait(c.waiters, cfg.RTO)
	}
	return c, nil
}

func (st *Stack) newConn(key tcpKey, cfg TCPConfig) *TCPConn {
	s := st.host.Sim()
	c := &TCPConn{
		stack: st, key: key, cfg: cfg,
		sndBase: 1, sndNxt: 1, // ISS 0; data starts at 1 after SYN
		sndLimit: 4 * cfg.Window * cfg.MSS,
		readers:  s.NewWaitQ(), writers: s.NewWaitQ(), waiters: s.NewWaitQ(),
	}
	st.tcp[key] = c
	return c
}

// SetTimeout bounds blocking Reads (0 = forever).
func (c *TCPConn) SetTimeout(d time.Duration) { c.timeout = d }

// Write queues data on the connection, blocking while the send buffer
// is full; it returns once the data is accepted by the kernel (not
// necessarily acknowledged), like a 4.3BSD socket write.
func (c *TCPConn) Write(p *sim.Proc, data []byte) error {
	p.Syscall("tcp")
	p.CopyIn("tcp", len(data))
	for len(data) > 0 {
		if c.state >= stFinWait {
			return ErrConnClosed
		}
		room := c.sndLimit - len(c.sndBuf)
		if room <= 0 {
			p.Wait(c.writers, 0)
			continue
		}
		n := room
		if n > len(data) {
			n = len(data)
		}
		c.sndBuf = append(c.sndBuf, data[:n]...)
		data = data[n:]
		c.pump()
	}
	return nil
}

// Read returns up to max buffered bytes, blocking per the read
// timeout; io.EOF reports an orderly remote close.
func (c *TCPConn) Read(p *sim.Proc, max int) ([]byte, error) {
	p.Syscall("tcpread")
	for len(c.rcvBuf) == 0 {
		if c.peerFIN {
			return nil, io.EOF
		}
		if !p.Wait(c.readers, c.timeout) {
			return nil, ErrTimeout
		}
	}
	n := max
	if n <= 0 || n > len(c.rcvBuf) {
		n = len(c.rcvBuf)
	}
	out := append([]byte(nil), c.rcvBuf[:n]...)
	c.rcvBuf = c.rcvBuf[n:]
	p.CopyOut("tcpread", n)
	return out, nil
}

// Close sends FIN once queued data drains and waits for its
// acknowledgement.
func (c *TCPConn) Close(p *sim.Proc) error {
	p.Syscall("tcp")
	c.closing = true
	c.pump()
	for c.state != stDone {
		if !p.Wait(c.waiters, 5*time.Second) {
			break
		}
	}
	delete(c.stack.tcp, c.key)
	return nil
}

// State reports whether the connection is fully established.
func (c *TCPConn) Established() bool { return c.state == stEstablished }

// pump transmits whatever the window allows; any context.
func (c *TCPConn) pump() {
	if c.state != stEstablished && c.state != stFinWait {
		return
	}
	wnd := uint32(c.cfg.Window * c.cfg.MSS)
	for {
		offset := c.sndNxt - c.sndBase
		avail := uint32(len(c.sndBuf)) - offset
		if avail == 0 || c.sndNxt-c.sndBase >= wnd {
			break
		}
		n := uint32(c.cfg.MSS)
		if n > avail {
			n = avail
		}
		if c.sndNxt+n > c.sndBase+wnd {
			n = c.sndBase + wnd - c.sndNxt
		}
		if n == 0 {
			break
		}
		c.sendSeg(flagACK, c.sndNxt, c.sndBuf[offset:offset+n])
		c.sndNxt += n
		c.armRTO()
	}
	// All data sent and acknowledged: emit FIN if closing.
	if c.closing && c.state == stEstablished &&
		uint32(len(c.sndBuf)) == 0 && c.sndNxt == c.sndBase {
		c.finSeq = c.sndNxt
		c.sendSeg(flagFIN|flagACK, c.sndNxt, nil)
		c.sndNxt++
		c.state = stFinWait
		c.armRTO()
	}
}

// sendSeg marshals and transmits one segment in kernel context.
func (c *TCPConn) sendSeg(flags uint8, seq uint32, data []byte) {
	seg := make([]byte, TCPHeaderLen+len(data))
	binary.BigEndian.PutUint16(seg[0:], c.key.localPort)
	binary.BigEndian.PutUint16(seg[2:], c.key.remotePort)
	binary.BigEndian.PutUint32(seg[4:], seq)
	binary.BigEndian.PutUint32(seg[8:], c.rcvNxt)
	seg[12] = (TCPHeaderLen / 4) << 4
	seg[13] = flags
	binary.BigEndian.PutUint16(seg[14:], 0xFFFF) // advertised window (unused)
	copy(seg[TCPHeaderLen:], data)
	binary.BigEndian.PutUint16(seg[16:], pseudoChecksum(c.stack.addr, c.key.remote, ProtoTCP, seg))
	c.stack.sendIP(IPHdr{Proto: ProtoTCP, Dst: c.key.remote}, seg, len(seg))
}

// armRTO starts the retransmission timer unless one is already in
// flight.  Invariant: exactly one timer is pending iff rtxArmed, and
// only rtoFire clears it — acks restart the clock by bumping rtxGen,
// never by disarming, so the timer can't be lost or duplicated.
func (c *TCPConn) armRTO() {
	if c.rtxArmed {
		return
	}
	c.rtxArmed = true
	gen := c.rtxGen
	c.stack.host.Sim().After(c.cfg.RTO, func() { c.rtoFire(gen) })
}

func (c *TCPConn) rtoFire(gen int) {
	c.rtxArmed = false
	if c.state == stDone {
		return
	}
	outstanding := c.sndNxt != c.sndBase || c.state == stSynSent ||
		(c.state == stFinWait)
	if !outstanding {
		return
	}
	if gen != c.rtxGen {
		// An ack (or the handshake) restarted the clock while this
		// timer was in flight.  Unacknowledged data remains, so the
		// timer must live on — dropping it here would leave a stalled
		// window with no retransmission path at all.
		c.armRTO()
		return
	}
	c.Retransmits++
	switch c.state {
	case stSynSent:
		c.sendSeg(flagSYN, 0, nil)
	case stSynRcvd:
		c.sendSeg(flagSYN|flagACK, 0, nil)
	case stFinWait:
		// Resend pending data then FIN (go-back-N).
		c.goBackN()
		c.sendSeg(flagFIN|flagACK, c.finSeq, nil)
	default:
		c.goBackN()
	}
	c.armRTO()
}

func (c *TCPConn) goBackN() {
	offset := uint32(0)
	end := c.sndNxt - c.sndBase
	if c.state == stFinWait {
		end = c.finSeq - c.sndBase
	}
	for offset < end {
		n := uint32(c.cfg.MSS)
		if offset+n > end {
			n = end - offset
		}
		c.sendSeg(flagACK, c.sndBase+offset, c.sndBuf[offset:offset+n])
		offset += n
	}
}

// inputTCP runs in kernel context after IP input cost was charged.
func (st *Stack) inputTCP(h IPHdr, seg []byte) {
	costs := st.host.Costs()
	if len(seg) < TCPHeaderLen {
		return
	}
	cost := costs.TransportInput + costs.Checksum(len(seg))
	st.host.RunKernel("tcp", cost, func() {
		if pseudoChecksum(h.Src, h.Dst, ProtoTCP, seg) != 0 {
			return
		}
		srcPort := binary.BigEndian.Uint16(seg[0:])
		dstPort := binary.BigEndian.Uint16(seg[2:])
		seq := binary.BigEndian.Uint32(seg[4:])
		ack := binary.BigEndian.Uint32(seg[8:])
		dataOff := int(seg[12]>>4) * 4
		flags := seg[13]
		if dataOff < TCPHeaderLen || dataOff > len(seg) {
			return
		}
		data := seg[dataOff:]
		key := tcpKey{remote: h.Src, remotePort: srcPort, localPort: dstPort}

		c := st.tcp[key]
		if c == nil {
			// New connection?
			if flags&flagSYN != 0 && flags&flagACK == 0 {
				if l := st.lst[dstPort]; l != nil {
					c = st.newConn(key, l.cfg)
					c.state = stSynRcvd
					c.rcvNxt = seq + 1
					c.lst = l
					c.sendSeg(flagSYN|flagACK, 0, nil)
					c.armRTO()
				}
			}
			return
		}
		c.handle(flags, seq, ack, data)
	})
}

func (c *TCPConn) handle(flags uint8, seq, ack uint32, data []byte) {
	if flags&flagRST != 0 {
		c.state = stDone
		c.peerFIN = true
		c.wakeAll()
		return
	}

	switch c.state {
	case stSynSent:
		if flags&(flagSYN|flagACK) == flagSYN|flagACK && ack == c.sndNxt {
			c.rcvNxt = seq + 1
			c.state = stEstablished
			c.rtxGen++
			c.sendSeg(flagACK, c.sndNxt, nil)
			c.waiters.WakeAll(c.stack.host)
		}
		return
	case stSynRcvd:
		if flags&flagACK != 0 && ack == c.sndNxt {
			c.state = stEstablished
			c.rtxGen++
			if c.lst != nil {
				c.lst.backlog = append(c.lst.backlog, c)
				c.lst.accepts.WakeOne(c.stack.host)
			}
		}
		// Fall through: the ACK may carry data.
	}

	// Acknowledgement processing.
	if flags&flagACK != 0 {
		limit := c.sndNxt
		if ack > c.sndBase && ack <= limit {
			advance := ack - c.sndBase
			dataBytes := advance
			if c.state == stFinWait && ack == c.finSeq+1 {
				dataBytes-- // the FIN's sequence slot
			}
			if int(dataBytes) <= len(c.sndBuf) {
				c.sndBuf = c.sndBuf[dataBytes:]
			} else {
				c.sndBuf = nil
			}
			c.sndBase = ack
			c.rtxGen++ // restart timing from the new base
			if c.sndNxt != c.sndBase {
				c.armRTO()
			}
			c.writers.WakeAll(c.stack.host)
			if c.state == stFinWait && ack == c.finSeq+1 {
				c.state = stDone
				c.wakeAll()
				return
			}
			c.pump()
		}
	}

	// In-order data.
	if len(data) > 0 {
		if seq == c.rcvNxt {
			c.rcvBuf = append(c.rcvBuf, data...)
			c.rcvNxt += uint32(len(data))
			c.readers.WakeAll(c.stack.host)
		}
		// Ack whatever we have (cumulative; duplicates re-acked).
		c.sendSeg(flagACK, c.sndNxt, nil)
	}

	// Remote close.
	if flags&flagFIN != 0 && seq == c.rcvNxt {
		c.rcvNxt++
		c.peerFIN = true
		c.sendSeg(flagACK, c.sndNxt, nil)
		c.readers.WakeAll(c.stack.host)
	}
}

func (c *TCPConn) wakeAll() {
	c.readers.WakeAll(c.stack.host)
	c.writers.WakeAll(c.stack.host)
	c.waiters.WakeAll(c.stack.host)
}
