package inet

import (
	"encoding/binary"
	"errors"
	"time"

	"repro/internal/sim"
)

// UDPSocket is a kernel-resident UDP endpoint.  Received datagrams
// wait in a kernel buffer; the reading process pays one system call
// and one copy per datagram (or none of the protocol cost — that was
// charged to the kernel at interrupt time).
type UDPSocket struct {
	stack *Stack
	port  uint16

	queue    []Datagram
	limit    int
	readers  *sim.WaitQ
	timeout  time.Duration
	Dropped  uint64
	Checksum bool // compute/verify UDP checksums (4.3BSD could disable)
}

// Datagram is one received UDP datagram.
type Datagram struct {
	Src     Addr
	SrcPort uint16
	Data    []byte
}

// Errors from socket operations.
var (
	ErrPortInUse = errors.New("inet: UDP port in use")
	ErrTimeout   = errors.New("inet: read timed out")
)

// UDPBind allocates a UDP port.  Process context.
func (st *Stack) UDPBind(p *sim.Proc, port uint16) (*UDPSocket, error) {
	p.Syscall("udp")
	if _, busy := st.udp[port]; busy {
		return nil, ErrPortInUse
	}
	u := &UDPSocket{
		stack: st, port: port, limit: 32,
		readers: st.host.Sim().NewWaitQ(),
	}
	st.udp[port] = u
	return u, nil
}

// SetTimeout sets the receive timeout (0 = block forever).
func (u *UDPSocket) SetTimeout(d time.Duration) { u.timeout = d }

// Send transmits one datagram.  The process pays the system call and
// the copy into the kernel; IP output and (optional) checksumming are
// kernel work.
func (u *UDPSocket) Send(p *sim.Proc, dst Addr, dstPort uint16, data []byte) error {
	p.Syscall("udp")
	p.CopyIn("udp", len(data))
	seg := make([]byte, UDPHeaderLen+len(data))
	binary.BigEndian.PutUint16(seg[0:], u.port)
	binary.BigEndian.PutUint16(seg[2:], dstPort)
	binary.BigEndian.PutUint16(seg[4:], uint16(len(seg)))
	copy(seg[UDPHeaderLen:], data)
	ckBytes := 0
	if u.Checksum {
		ckBytes = len(seg)
		binary.BigEndian.PutUint16(seg[6:], pseudoChecksum(u.stack.addr, dst, ProtoUDP, seg))
	}
	u.stack.sendIP(IPHdr{Proto: ProtoUDP, Dst: dst}, seg, ckBytes)
	return nil
}

// Recv blocks for the next datagram per the socket timeout.  The read
// path is accounted separately ("udpread") from kernel protocol input.
func (u *UDPSocket) Recv(p *sim.Proc) (Datagram, error) {
	p.Syscall("udpread")
	for len(u.queue) == 0 {
		if !p.Wait(u.readers, u.timeout) {
			return Datagram{}, ErrTimeout
		}
	}
	d := u.queue[0]
	u.queue = u.queue[1:]
	p.CopyOut("udpread", len(d.Data))
	return d, nil
}

// Close releases the port.
func (u *UDPSocket) Close(p *sim.Proc) {
	p.Syscall("udp")
	delete(u.stack.udp, u.port)
	u.readers.WakeAll(u.stack.host)
}

// inputUDP runs in kernel context after IP input cost was charged.
func (st *Stack) inputUDP(h IPHdr, seg []byte) {
	costs := st.host.Costs()
	if len(seg) < UDPHeaderLen {
		return
	}
	dstPort := binary.BigEndian.Uint16(seg[2:])
	u := st.udp[dstPort]
	if u == nil {
		return
	}
	cost := costs.TransportInput
	if u.Checksum && binary.BigEndian.Uint16(seg[6:]) != 0 {
		cost += costs.Checksum(len(seg))
	}
	st.host.RunKernel("udp", cost, func() {
		if len(u.queue) >= u.limit {
			u.Dropped++
			return
		}
		u.queue = append(u.queue, Datagram{
			Src:     h.Src,
			SrcPort: binary.BigEndian.Uint16(seg[0:]),
			Data:    append([]byte(nil), seg[UDPHeaderLen:]...),
		})
		u.readers.WakeOne(st.host)
	})
}
