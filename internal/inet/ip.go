// Package inet is a miniature kernel-resident IP/UDP/TCP/ARP stack:
// the baseline the paper compares user-level protocols against.  It
// runs entirely inside the simulated kernel — protocol processing is
// charged as kernel CPU on the host, received data waits in kernel
// socket buffers, and user processes pay only the system call and the
// copy to cross the boundary.  This mirrors the 4.3BSD arrangement of
// the paper's figure 3-2, and coexists with the packet filter exactly
// as figure 3-3 shows: the stack claims IP and ARP frames, everything
// else falls through to the packet filter.
//
// The wire formats are the real ones (RFC 791/768/793 headers and the
// Internet checksum) so the packet filter's extended-instruction
// examples can parse genuine IP packets off the simulated wire.
package inet

import (
	"encoding/binary"
	"errors"
)

// Addr is an IPv4 address.
type Addr uint32

// IP protocol numbers used by the stack.
const (
	ProtoTCP = 6
	ProtoUDP = 17
)

// Header sizes.
const (
	IPHeaderLen  = 20
	UDPHeaderLen = 8
	TCPHeaderLen = 20
)

// IPHdr is a parsed IPv4 header (no options: the kernel stack never
// emits them; the filter extension tests build their own).
type IPHdr struct {
	TotalLen int
	TTL      uint8
	Proto    uint8
	Src, Dst Addr
}

// MarshalIP prepends an IP header to payload.
func MarshalIP(h IPHdr, payload []byte) []byte {
	b := make([]byte, IPHeaderLen+len(payload))
	b[0] = 0x45 // version 4, IHL 5
	total := IPHeaderLen + len(payload)
	binary.BigEndian.PutUint16(b[2:], uint16(total))
	b[8] = h.TTL
	b[9] = h.Proto
	binary.BigEndian.PutUint32(b[12:], uint32(h.Src))
	binary.BigEndian.PutUint32(b[16:], uint32(h.Dst))
	binary.BigEndian.PutUint16(b[10:], 0)
	binary.BigEndian.PutUint16(b[10:], InternetChecksum(b[:IPHeaderLen]))
	copy(b[IPHeaderLen:], payload)
	return b
}

// Errors from header parsing.
var (
	ErrShort    = errors.New("inet: truncated packet")
	ErrChecksum = errors.New("inet: bad checksum")
	ErrVersion  = errors.New("inet: not IPv4")
)

// UnmarshalIP parses and verifies an IPv4 header, returning the header
// and the payload (aliasing b).
func UnmarshalIP(b []byte) (IPHdr, []byte, error) {
	if len(b) < IPHeaderLen {
		return IPHdr{}, nil, ErrShort
	}
	if b[0]>>4 != 4 {
		return IPHdr{}, nil, ErrVersion
	}
	ihl := int(b[0]&0x0F) * 4
	if ihl < IPHeaderLen || len(b) < ihl {
		return IPHdr{}, nil, ErrShort
	}
	if InternetChecksum(b[:ihl]) != 0 {
		return IPHdr{}, nil, ErrChecksum
	}
	h := IPHdr{
		TotalLen: int(binary.BigEndian.Uint16(b[2:])),
		TTL:      b[8],
		Proto:    b[9],
		Src:      Addr(binary.BigEndian.Uint32(b[12:])),
		Dst:      Addr(binary.BigEndian.Uint32(b[16:])),
	}
	if h.TotalLen < ihl || h.TotalLen > len(b) {
		return IPHdr{}, nil, ErrShort
	}
	return h, b[ihl:h.TotalLen], nil
}

// InternetChecksum is the ones-complement sum of RFC 1071.  Verifying
// a block that includes its checksum field yields zero.
func InternetChecksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i:]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum > 0xFFFF {
		sum = (sum & 0xFFFF) + (sum >> 16)
	}
	return ^uint16(sum)
}

// pseudoChecksum computes the TCP/UDP checksum over the pseudo-header
// and segment.
func pseudoChecksum(src, dst Addr, proto uint8, seg []byte) uint16 {
	var ph [12]byte
	binary.BigEndian.PutUint32(ph[0:], uint32(src))
	binary.BigEndian.PutUint32(ph[4:], uint32(dst))
	ph[9] = proto
	binary.BigEndian.PutUint16(ph[10:], uint16(len(seg)))
	var sum uint32
	add := func(b []byte) {
		for i := 0; i+1 < len(b); i += 2 {
			sum += uint32(binary.BigEndian.Uint16(b[i:]))
		}
		if len(b)%2 == 1 {
			sum += uint32(b[len(b)-1]) << 8
		}
	}
	add(ph[:])
	add(seg)
	for sum > 0xFFFF {
		sum = (sum & 0xFFFF) + (sum >> 16)
	}
	return ^uint16(sum)
}
