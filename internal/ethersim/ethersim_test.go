package ethersim

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/vtime"
)

func newNet(t *testing.T, link LinkType) (*sim.Sim, *Network) {
	t.Helper()
	s := sim.New(vtime.Costs{DriverRecv: 100 * time.Microsecond})
	return s, New(s, link)
}

func TestEncodeDecode3Mb(t *testing.T) {
	payload := []byte{1, 2, 3, 4}
	frame := Ether3Mb.Encode(0x42, 0x17, EtherTypePup3Mb, payload)
	if len(frame) != 4+4 {
		t.Fatalf("frame len = %d", len(frame))
	}
	dst, src, typ, pl, err := Ether3Mb.Decode(frame)
	if err != nil || dst != 0x42 || src != 0x17 || typ != EtherTypePup3Mb {
		t.Fatalf("decode: %v %v %v %v", dst, src, typ, err)
	}
	if string(pl) != string(payload) {
		t.Fatalf("payload mismatch")
	}
}

func TestEncodeDecode10Mb(t *testing.T) {
	dstIn, srcIn := Addr(0xAABB_CCDD_EEFF), Addr(0x0102_0304_0506)
	frame := Ether10Mb.Encode(dstIn, srcIn, EtherTypeIP, []byte{9})
	if len(frame) != 15 {
		t.Fatalf("frame len = %d", len(frame))
	}
	dst, src, typ, pl, err := Ether10Mb.Decode(frame)
	if err != nil || dst != dstIn || src != srcIn || typ != EtherTypeIP || len(pl) != 1 {
		t.Fatalf("decode: %x %x %x %v", uint64(dst), uint64(src), typ, err)
	}
	if _, _, _, _, err := Ether10Mb.Decode(frame[:10]); err == nil {
		t.Fatal("truncated frame decoded")
	}
}

func TestLinkParameters(t *testing.T) {
	if Ether3Mb.HeaderWords() != 2 || Ether10Mb.HeaderWords() != 7 {
		t.Error("header words wrong")
	}
	if Ether3Mb.TypeWord() != 1 || Ether10Mb.TypeWord() != 6 {
		t.Error("type word wrong")
	}
	if Ether3Mb.BroadcastAddr() != Broadcast3Mb || Ether10Mb.BroadcastAddr() != Broadcast10Mb {
		t.Error("broadcast wrong")
	}
	if Ether3Mb.String() != "3Mb" || Ether10Mb.String() != "10Mb" {
		t.Error("string wrong")
	}
}

func TestUnicastDelivery(t *testing.T) {
	s, net := newNet(t, Ether10Mb)
	h1, h2, h3 := s.NewHost("a"), s.NewHost("b"), s.NewHost("c")
	n1 := net.Attach(h1, 1)
	n2 := net.Attach(h2, 2)
	n3 := net.Attach(h3, 3)

	var got2, got3 int
	n2.Handler = func(frame []byte) { got2++ }
	n3.Handler = func(frame []byte) { got3++ }

	frame := Ether10Mb.Encode(2, 1, EtherTypeIP, make([]byte, 100))
	if err := n1.Transmit(frame); err != nil {
		t.Fatal(err)
	}
	s.Run(0)
	if got2 != 1 || got3 != 0 {
		t.Fatalf("got2=%d got3=%d", got2, got3)
	}
	if h2.Counters.PacketsIn != 1 || h1.Counters.PacketsOut != 1 {
		t.Fatalf("counters: in=%d out=%d", h2.Counters.PacketsIn, h1.Counters.PacketsOut)
	}
}

func TestBroadcastAndPromiscuous(t *testing.T) {
	s, net := newNet(t, Ether3Mb)
	h1, h2, h3 := s.NewHost("a"), s.NewHost("b"), s.NewHost("c")
	n1 := net.Attach(h1, 1)
	n2 := net.Attach(h2, 2)
	n3 := net.Attach(h3, 3)
	n3.Promiscuous = true

	var got2, got3 int
	n2.Handler = func([]byte) { got2++ }
	n3.Handler = func([]byte) { got3++ }

	// Broadcast reaches everyone but the sender.
	n1.Transmit(Ether3Mb.Encode(Broadcast3Mb, 1, EtherTypePup3Mb, nil))
	// Unicast to h2 also reaches the promiscuous h3.
	n1.Transmit(Ether3Mb.Encode(2, 1, EtherTypePup3Mb, nil))
	s.Run(0)
	if got2 != 2 || got3 != 2 {
		t.Fatalf("got2=%d got3=%d", got2, got3)
	}
}

func TestTransmissionTimeAndSerialization(t *testing.T) {
	// Two 1250-byte frames at 10 Mb/s: 1 ms each, serialized on the
	// shared wire.
	s := sim.New(vtime.Costs{})
	net := New(s, Ether10Mb)
	h1, h2 := s.NewHost("a"), s.NewHost("b")
	n1 := net.Attach(h1, 1)
	n2 := net.Attach(h2, 2)
	var deliveries []time.Duration
	n2.Handler = func([]byte) { deliveries = append(deliveries, s.Now()) }

	frame := Ether10Mb.Encode(2, 1, EtherTypeIP, make([]byte, 1250-14))
	n1.Transmit(frame)
	n1.Transmit(frame)
	s.Run(0)
	if len(deliveries) != 2 {
		t.Fatalf("deliveries = %d", len(deliveries))
	}
	if deliveries[0] != time.Millisecond || deliveries[1] != 2*time.Millisecond {
		t.Fatalf("delivery times = %v", deliveries)
	}
	if net.FramesOnWire != 2 {
		t.Fatalf("frames on wire = %d", net.FramesOnWire)
	}
}

func Test3MbIsSlower(t *testing.T) {
	s := sim.New(vtime.Costs{})
	net := New(s, Ether3Mb)
	h1, h2 := s.NewHost("a"), s.NewHost("b")
	n1 := net.Attach(h1, 1)
	var at time.Duration
	net.Attach(h2, 2).Handler = func([]byte) { at = s.Now() }
	n1.Transmit(Ether3Mb.Encode(2, 1, EtherTypePup3Mb, make([]byte, 296)))
	s.Run(0)
	// 300 bytes at 3 Mb/s = 800 µs.
	if at != 800*time.Microsecond {
		t.Fatalf("delivered at %v, want 800µs", at)
	}
}

func TestOversizedAndRuntFrames(t *testing.T) {
	s, net := newNet(t, Ether10Mb)
	n1 := net.Attach(s.NewHost("a"), 1)
	if err := n1.Transmit(make([]byte, Ether10Mb.MaxFrame()+1)); err == nil {
		t.Error("oversized frame accepted")
	}
	if err := n1.Transmit(make([]byte, 3)); err == nil {
		t.Error("runt frame accepted")
	}
}

func TestInputQueueOverflow(t *testing.T) {
	s := sim.New(vtime.Costs{DriverRecv: 10 * time.Millisecond}) // slow kernel
	net := New(s, Ether10Mb)
	h1, h2 := s.NewHost("a"), s.NewHost("b")
	n1 := net.Attach(h1, 1)
	n2 := net.Attach(h2, 2)
	n2.QueueLimit = 2
	var got int
	n2.Handler = func([]byte) { got++ }

	frame := Ether10Mb.Encode(2, 1, EtherTypeIP, make([]byte, 50))
	for i := 0; i < 10; i++ {
		n1.Transmit(frame)
	}
	s.Run(0)
	if n2.Drops == 0 {
		t.Fatal("expected input-queue drops")
	}
	if got+int(n2.Drops) != 10 {
		t.Fatalf("got=%d drops=%d", got, n2.Drops)
	}
	if h2.Counters.PacketsDropped != n2.Drops {
		t.Fatalf("host drop counter mismatch")
	}
}
