package ethersim

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/vtime"
)

// TestSteerQueueContract pins the steering hash's three promises for
// both link types: the result is in range, deterministic, and a pure
// function of the (src, dst, type) tuple — the payload never matters,
// which is what keeps every frame of one flow on one queue.
func TestSteerQueueContract(t *testing.T) {
	for _, link := range []LinkType{Ether3Mb, Ether10Mb} {
		for src := Addr(1); src <= 32; src++ {
			a := link.Encode(2, src, EtherTypePup, []byte{1, 2, 3})
			b := link.Encode(2, src, EtherTypePup, make([]byte, 200))
			for _, n := range []int{1, 2, 3, 4, 8, 16} {
				q := link.SteerQueue(a, n)
				if q < 0 || q >= n {
					t.Fatalf("%v src %d: queue %d out of [0,%d)", link, src, q, n)
				}
				if link.SteerQueue(a, n) != q {
					t.Fatalf("%v src %d n %d: steering not deterministic", link, src, n)
				}
				if got := link.SteerQueue(b, n); got != q {
					t.Fatalf("%v src %d n %d: payload changed queue %d -> %d",
						link, src, n, q, got)
				}
			}
			if link.SteerQueue(a, 1) != 0 {
				t.Fatalf("single queue must always steer to 0")
			}
		}
	}
}

// TestSteerQueueShortFrame: frames too short to decode steer to queue
// 0 rather than panicking or scattering.
func TestSteerQueueShortFrame(t *testing.T) {
	for _, link := range []LinkType{Ether3Mb, Ether10Mb} {
		for l := 0; l < link.HeaderLen(); l++ {
			if q := link.SteerQueue(make([]byte, l), 8); q != 0 {
				t.Fatalf("%v: %d-byte frame steered to %d, want 0", link, l, q)
			}
		}
	}
}

// TestSteerQueueSpreads: the hash must actually distribute flows — 64
// sources over 4 queues with every queue used.  Deterministic, so a
// failure would mean the hash (not luck) is bad.
func TestSteerQueueSpreads(t *testing.T) {
	for _, link := range []LinkType{Ether3Mb, Ether10Mb} {
		const n = 4
		var hits [n]int
		for src := Addr(1); src <= 64; src++ {
			hits[link.SteerQueue(link.Encode(2, src, EtherTypePup, nil), n)]++
		}
		for q, c := range hits {
			if c == 0 {
				t.Errorf("%v: queue %d never chosen across 64 flows (%v)", link, q, hits)
			}
		}
	}
}

// FuzzSteering drives SteerQueue with arbitrary frame headers: for any
// input the hash must stay deterministic, in range for its queue
// count, and flow-pure — no two frames sharing a header prefix (the
// whole flow tuple) may land on different queues.
func FuzzSteering(f *testing.F) {
	f.Add([]byte{}, uint8(4))
	f.Add(Ether3Mb.Encode(2, 1, EtherTypePup3Mb, []byte{9}), uint8(2))
	f.Add(Ether10Mb.Encode(2, 7, EtherTypeIP, []byte{1, 2, 3}), uint8(8))
	f.Add(Ether10Mb.Encode(Broadcast10Mb, 0xFFFF, EtherTypeARP, nil), uint8(16))
	f.Fuzz(func(t *testing.T, data []byte, nRaw uint8) {
		n := int(nRaw%16) + 1
		for _, link := range []LinkType{Ether3Mb, Ether10Mb} {
			q := link.SteerQueue(data, n)
			if q < 0 || q >= n {
				t.Fatalf("%v: queue %d out of [0,%d)", link, q, n)
			}
			if got := link.SteerQueue(data, n); got != q {
				t.Fatalf("%v: steering not deterministic (%d then %d)", link, q, got)
			}
			if len(data) >= link.HeaderLen() {
				// Same flow tuple, different payload: same queue.
				twin := append(append([]byte(nil), data[:link.HeaderLen()]...), 0xAB, 0xCD)
				if got := link.SteerQueue(twin, n); got != q {
					t.Fatalf("%v: two frames of one flow steered to %d and %d", link, q, got)
				}
			}
		}
	})
}

// TestMultiQueueReceive drives a 4-queue NIC with eight flows and
// checks the demux end to end: per-queue receive counts must equal
// what SteerQueue predicts, per-flow delivery order must hold, every
// frame must be steered (counter), and the driver cost must appear
// under the per-queue KernelTime tags.
func TestMultiQueueReceive(t *testing.T) {
	s := sim.New(vtime.Costs{DriverRecv: 100 * time.Microsecond, Steer: 6 * time.Microsecond})
	net := New(s, Ether10Mb)
	ha, hb := s.NewHost("a"), s.NewHost("b")
	na := net.Attach(ha, 1)
	nb := net.Attach(hb, 2)
	nb.SetQueues(4)
	if nb.Queues() != 4 {
		t.Fatalf("Queues() = %d, want 4", nb.Queues())
	}

	// seq tracks per-flow sequence numbers as delivered.
	lastSeq := map[Addr]byte{}
	total := 0
	nb.Handler = func(frame []byte) {
		_, src, _, payload, err := Ether10Mb.Decode(frame)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if q := nb.RxQueue(); q != Ether10Mb.SteerQueue(frame, 4) {
			t.Fatalf("frame on queue %d, steering says %d", q, Ether10Mb.SteerQueue(frame, 4))
		}
		if payload[0] != lastSeq[src] {
			t.Fatalf("flow %d out of order: got seq %d, want %d", src, payload[0], lastSeq[src])
		}
		lastSeq[src]++
		total++
	}

	const flows, perFlow = 8, 5
	want := make([]uint64, 4)
	s.Spawn(ha, "send", func(p *sim.Proc) {
		for seq := byte(0); seq < perFlow; seq++ {
			for f := 0; f < flows; f++ {
				frame := Ether10Mb.Encode(2, Addr(10+f), EtherTypePup, []byte{seq})
				want[Ether10Mb.SteerQueue(frame, 4)]++
				if err := na.Transmit(frame); err != nil {
					t.Errorf("transmit: %v", err)
				}
			}
		}
	})
	s.Run(0)

	if total != flows*perFlow {
		t.Fatalf("delivered %d frames, want %d", total, flows*perFlow)
	}
	got := nb.QueueRx()
	busy := 0
	for q := range got {
		if got[q] != want[q] {
			t.Errorf("queue %d rx = %d, steering predicts %d", q, got[q], want[q])
		}
		if got[q] > 0 {
			busy++
		}
	}
	if busy < 3 {
		t.Errorf("only %d of 4 queues used across %d flows", busy, flows)
	}
	if hb.Counters.SteeredFrames != uint64(flows*perFlow) {
		t.Errorf("SteeredFrames = %d, want %d", hb.Counters.SteeredFrames, flows*perFlow)
	}
	for q := 0; q < 4; q++ {
		if got[q] > 0 && hb.KernelTime[tagFor(q)] == 0 {
			t.Errorf("no kernel time under %q despite %d frames", tagFor(q), got[q])
		}
	}
	// The per-frame driver charge on a lane is DriverRecv + Steer.
	wantTime := time.Duration(flows*perFlow) * (100 + 6) * time.Microsecond
	var sum time.Duration
	for q := 0; q < 4; q++ {
		sum += hb.KernelTime[tagFor(q)]
	}
	if sum != wantTime {
		t.Errorf("summed per-queue driver time = %v, want %v", sum, wantTime)
	}
}

func tagFor(q int) string {
	return [...]string{"driver.q0", "driver.q1", "driver.q2", "driver.q3"}[q]
}

// TestSingleQueueHasNoSteerCost: with one queue there is no steering —
// no Steer charge, no SteeredFrames, the plain "driver" tag.
func TestSingleQueueHasNoSteerCost(t *testing.T) {
	s := sim.New(vtime.Costs{DriverRecv: 100 * time.Microsecond, Steer: 6 * time.Microsecond})
	net := New(s, Ether10Mb)
	ha, hb := s.NewHost("a"), s.NewHost("b")
	na := net.Attach(ha, 1)
	nb := net.Attach(hb, 2)
	got := 0
	nb.Handler = func([]byte) { got++ }
	s.Spawn(ha, "send", func(p *sim.Proc) {
		na.Transmit(Ether10Mb.Encode(2, 1, EtherTypePup, []byte{1}))
	})
	s.Run(0)
	if got != 1 {
		t.Fatalf("delivered %d frames, want 1", got)
	}
	if hb.Counters.SteeredFrames != 0 {
		t.Errorf("SteeredFrames = %d on a single-queue NIC", hb.Counters.SteeredFrames)
	}
	if hb.KernelTime["driver"] != 100*time.Microsecond {
		t.Errorf("driver time = %v, want plain DriverRecv", hb.KernelTime["driver"])
	}
}
