package ethersim

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/vtime"
)

// dupThird duplicates wire frame 3 and leaves everything else alone.
type dupThird struct{}

func (dupThird) Frame(index uint64, frame []byte) Verdict {
	if index == 3 {
		v := NoFault
		v.Dup = true
		return v
	}
	return NoFault
}

// dropRig transmits n frames whose first payload byte is the 1-based
// wire index and returns the indices the receiver saw, in order.
func dropRig(t *testing.T, n int, cfg func(*Network)) ([]int, *Network) {
	t.Helper()
	s := sim.New(vtime.Costs{})
	net := New(s, Ether3Mb)
	tx := net.Attach(s.NewHost("a"), 1)
	var got []int
	net.Attach(s.NewHost("b"), 2).Handler = func(frame []byte) {
		_, _, _, payload, err := Ether3Mb.Decode(frame)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, int(payload[0]))
	}
	cfg(net)
	for i := 1; i <= n; i++ {
		tx.Transmit(Ether3Mb.Encode(2, 1, EtherTypePup3Mb, []byte{byte(i)}))
	}
	s.Run(0)
	return got, net
}

func eq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDropInjectionPinnedIndices pins exactly which wire-frame indices
// the folded DropEvery/DropFn/Injector path discards — loss injection
// is a schedule, not a probability.
func TestDropInjectionPinnedIndices(t *testing.T) {
	t.Run("DropEvery", func(t *testing.T) {
		got, net := dropRig(t, 10, func(n *Network) { n.DropEvery = 3 })
		if want := []int{1, 2, 4, 5, 7, 8, 10}; !eq(got, want) {
			t.Fatalf("delivered %v, want %v (frames 3, 6, 9 dropped)", got, want)
		}
		if net.Dropped != 3 {
			t.Fatalf("Dropped = %d, want 3", net.Dropped)
		}
	})

	t.Run("DropFn", func(t *testing.T) {
		got, net := dropRig(t, 10, func(n *Network) {
			n.DropFn = func(index uint64, _ []byte) bool { return index == 2 || index == 5 }
		})
		if want := []int{1, 3, 4, 6, 7, 8, 9, 10}; !eq(got, want) {
			t.Fatalf("delivered %v, want %v (frames 2, 5 dropped)", got, want)
		}
		if net.Dropped != 2 {
			t.Fatalf("Dropped = %d, want 2", net.Dropped)
		}
	})

	t.Run("injector verdict preempts the legacy wrappers", func(t *testing.T) {
		// The injector duplicates frame 3; because it issued a
		// verdict, DropEvery=3 is not consulted for that frame — it
		// still drops 6 and 9.
		got, net := dropRig(t, 10, func(n *Network) {
			n.DropEvery = 3
			n.SetInjector(dupThird{})
		})
		if want := []int{1, 2, 3, 3, 4, 5, 7, 8, 10}; !eq(got, want) {
			t.Fatalf("delivered %v, want %v (3 duplicated, 6 and 9 dropped)", got, want)
		}
		if net.Dropped != 2 {
			t.Fatalf("Dropped = %d, want 2", net.Dropped)
		}
	})
}
