package ethersim

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// TestCoalesceBurstsAtNIC exercises the interrupt-coalescing state
// machine at the interface level: back-to-back frames are handed to the
// BurstHandler in bursts no larger than the budget, in arrival order,
// and an isolated frame after an idle gap arrives alone (the NAPI
// "first interrupt" path).
func TestCoalesceBurstsAtNIC(t *testing.T) {
	s, net := newNet(t, Ether3Mb)
	ha, hb := s.NewHost("a"), s.NewHost("b")
	na := net.Attach(ha, 1)
	nb := net.Attach(hb, 2)

	const budget = 3
	nb.SetCoalesce(budget, 500*time.Microsecond)
	var bursts [][]byte // tag bytes per burst
	nb.BurstHandler = func(frames [][]byte) {
		tags := make([]byte, len(frames))
		for i, f := range frames {
			tags[i] = f[4]
		}
		bursts = append(bursts, tags)
	}

	s.Spawn(ha, "send", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		for i := 0; i < 7; i++ {
			// Back-to-back: the wire paces the frames, the receiving
			// driver (100µs per entry) falls behind, bursts form.
			na.Transmit(Ether3Mb.Encode(2, 1, EtherTypePup3Mb, []byte{byte(i)}))
		}
		// After an idle gap well past the moderation delay, one
		// isolated frame must come up alone and immediately.
		p.Sleep(20 * time.Millisecond)
		na.Transmit(Ether3Mb.Encode(2, 1, EtherTypePup3Mb, []byte{99}))
	})
	s.Run(0)

	var got []byte
	for _, b := range bursts {
		if len(b) == 0 || len(b) > budget {
			t.Errorf("burst of %d frames, budget %d", len(b), budget)
		}
		got = append(got, b...)
	}
	want := []byte{0, 1, 2, 3, 4, 5, 6, 99}
	if len(got) != len(want) {
		t.Fatalf("delivered tags %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("frames out of order: %v, want %v", got, want)
		}
	}
	if len(bursts) >= 8 {
		t.Errorf("%d bursts for 8 frames: nothing coalesced", len(bursts))
	}
	if last := bursts[len(bursts)-1]; len(last) != 1 || last[0] != 99 {
		t.Errorf("isolated frame arrived in burst %v, want [99]", last)
	}

	if hb.Counters.Bursts != uint64(len(bursts)) {
		t.Errorf("Bursts counter = %d, observed %d bursts", hb.Counters.Bursts, len(bursts))
	}
	if hb.Counters.CoalescedFrames != 8 {
		t.Errorf("CoalescedFrames = %d, want 8", hb.Counters.CoalescedFrames)
	}
	if s.Counters.Bursts != hb.Counters.Bursts ||
		s.Counters.CoalescedFrames != hb.Counters.CoalescedFrames {
		t.Error("global burst counters disagree with host counters")
	}
}

// TestCoalesceFallsBackToHandler checks that with coalescing on but no
// BurstHandler bound, the frames of a burst are fed to the per-frame
// Handler one by one, still under one driver entry.
func TestCoalesceFallsBackToHandler(t *testing.T) {
	s, net := newNet(t, Ether3Mb)
	ha, hb := s.NewHost("a"), s.NewHost("b")
	na := net.Attach(ha, 1)
	nb := net.Attach(hb, 2)
	nb.SetCoalesce(4, 0)
	var got []byte
	nb.Handler = func(frame []byte) { got = append(got, frame[4]) }

	s.Spawn(ha, "send", func(p *sim.Proc) {
		for i := 0; i < 6; i++ {
			na.Transmit(Ether3Mb.Encode(2, 1, EtherTypePup3Mb, []byte{byte(i)}))
		}
	})
	s.Run(0)

	if len(got) != 6 {
		t.Fatalf("delivered %d frames, want 6", len(got))
	}
	for i := range got {
		if got[i] != byte(i) {
			t.Fatalf("frames out of order: %v", got)
		}
	}
	if hb.Counters.Bursts == 0 || hb.Counters.Bursts >= 6 {
		t.Errorf("Bursts = %d, want batching (0 < bursts < 6)", hb.Counters.Bursts)
	}
	// One kernel entry per burst, not per frame.
	if hb.Counters.KernelEntries != hb.Counters.Bursts {
		t.Errorf("KernelEntries = %d, Bursts = %d; want one entry per burst",
			hb.Counters.KernelEntries, hb.Counters.Bursts)
	}
}
