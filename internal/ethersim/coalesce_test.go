package ethersim

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// TestCoalesceBurstsAtNIC exercises the interrupt-coalescing state
// machine at the interface level: back-to-back frames are handed to the
// BurstHandler in bursts no larger than the budget, in arrival order,
// and an isolated frame after an idle gap arrives alone (the NAPI
// "first interrupt" path).
func TestCoalesceBurstsAtNIC(t *testing.T) {
	s, net := newNet(t, Ether3Mb)
	ha, hb := s.NewHost("a"), s.NewHost("b")
	na := net.Attach(ha, 1)
	nb := net.Attach(hb, 2)

	const budget = 3
	nb.SetCoalesce(budget, 500*time.Microsecond)
	var bursts [][]byte // tag bytes per burst
	nb.BurstHandler = func(frames [][]byte) {
		tags := make([]byte, len(frames))
		for i, f := range frames {
			tags[i] = f[4]
		}
		bursts = append(bursts, tags)
	}

	s.Spawn(ha, "send", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		for i := 0; i < 7; i++ {
			// Back-to-back: the wire paces the frames, the receiving
			// driver (100µs per entry) falls behind, bursts form.
			na.Transmit(Ether3Mb.Encode(2, 1, EtherTypePup3Mb, []byte{byte(i)}))
		}
		// After an idle gap well past the moderation delay, one
		// isolated frame must come up alone and immediately.
		p.Sleep(20 * time.Millisecond)
		na.Transmit(Ether3Mb.Encode(2, 1, EtherTypePup3Mb, []byte{99}))
	})
	s.Run(0)

	var got []byte
	for _, b := range bursts {
		if len(b) == 0 || len(b) > budget {
			t.Errorf("burst of %d frames, budget %d", len(b), budget)
		}
		got = append(got, b...)
	}
	want := []byte{0, 1, 2, 3, 4, 5, 6, 99}
	if len(got) != len(want) {
		t.Fatalf("delivered tags %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("frames out of order: %v, want %v", got, want)
		}
	}
	if len(bursts) >= 8 {
		t.Errorf("%d bursts for 8 frames: nothing coalesced", len(bursts))
	}
	if last := bursts[len(bursts)-1]; len(last) != 1 || last[0] != 99 {
		t.Errorf("isolated frame arrived in burst %v, want [99]", last)
	}

	if hb.Counters.Bursts != uint64(len(bursts)) {
		t.Errorf("Bursts counter = %d, observed %d bursts", hb.Counters.Bursts, len(bursts))
	}
	if hb.Counters.CoalescedFrames != 8 {
		t.Errorf("CoalescedFrames = %d, want 8", hb.Counters.CoalescedFrames)
	}
	if s.Counters.Bursts != hb.Counters.Bursts ||
		s.Counters.CoalescedFrames != hb.Counters.CoalescedFrames {
		t.Error("global burst counters disagree with host counters")
	}
}

// TestCoalesceTimerClearedOnCrash is the regression test for the
// moderation-timer leak: a crash must clear every receive queue's
// coalescing state — buffered burst, poll flag AND the armed
// moderation timer.  A stale timer would fire after the crash and
// flush pre-crash frames into the restarted kernel (resurrecting
// frames the crash already accounted as DropCrash).  Exercised on a
// 4-queue NIC with two flows steered to different queues, so the
// per-queue clearing is what's under test.
func TestCoalesceTimerClearedOnCrash(t *testing.T) {
	s, net := newNet(t, Ether10Mb)
	ha, hb := s.NewHost("a"), s.NewHost("b")
	na := net.Attach(ha, 1)
	nb := net.Attach(hb, 2)
	nb.SetQueues(4)
	// Budget above the pre-crash backlog, long moderation delay: the
	// buffered frames can only ever surface via the timer.
	nb.SetCoalesce(4, 2*time.Millisecond)

	// Two sources steering to two different queues, so both queues
	// hold an armed timer at crash time.
	var srcs []Addr
	for src := Addr(10); len(srcs) < 2; src++ {
		f := Ether10Mb.Encode(2, src, EtherTypePup, nil)
		q := Ether10Mb.SteerQueue(f, 4)
		if len(srcs) == 0 || q != Ether10Mb.SteerQueue(
			Ether10Mb.Encode(2, srcs[0], EtherTypePup, nil), 4) {
			srcs = append(srcs, src)
		}
	}

	var got []byte
	nb.Handler = func(frame []byte) { got = append(got, frame[14]) }

	frame := func(src Addr, tag byte) []byte {
		return Ether10Mb.Encode(2, src, EtherTypePup, []byte{tag})
	}
	sendBurst := func(extra byte) {
		// Per flow: the first frame flushes immediately (the NAPI
		// "interrupt"); the next two arrive during that poll, buffer,
		// and wait on the moderation timer.
		for i, src := range srcs {
			for tag := byte(0); tag < 3; tag++ {
				na.Transmit(frame(src, byte(10*(i+1))+extra+tag))
			}
		}
	}
	s.Spawn(ha, "send", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		sendBurst(0)
	})
	// Crash after the first flush of each flow completed but before
	// the ~3.1ms moderation timers fire; restart and send a second
	// round of bursts while the stale timers (if leaked) are still
	// pending.
	s.After(2500*time.Microsecond, func() { hb.Crash() })
	s.After(2800*time.Microsecond, func() { hb.Restart() })
	s.Spawn(ha, "fresh", func(p *sim.Proc) {
		p.Sleep(2900 * time.Microsecond)
		sendBurst(7)
	})
	// Checkpoint between the stale timers' fire time (~3.1ms) and the
	// legitimate post-restart moderation deadline (~5.0ms): only the
	// head frame of each post-restart burst may have been delivered.
	// A leaked timer fails this two ways — it flushes the new burst
	// ~2ms early, and the pre-crash frames it would have carried must
	// stay dead (the crash accounted them DropCrash).
	s.After(4500*time.Microsecond, func() {
		want := []byte{10, 20, 17, 27}
		if len(got) != len(want) {
			t.Errorf("at 4.5ms delivered tags %v, want %v (stale moderation timer?)", got, want)
		}
	})
	s.Run(0)

	// End state: the pre-crash head frames, then the complete
	// post-restart bursts on the proper moderation schedule.  The
	// frames buffered at crash time (11, 12, 21, 22) died with the
	// kernel and never reappear.
	want := []byte{10, 20, 17, 27, 18, 19, 28, 29}
	if len(got) != len(want) {
		t.Fatalf("delivered tags %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivered tags %v, want %v", got, want)
		}
	}
}

// TestCrashClearsPerQueueCoalesceState is the white-box regression for
// the per-queue crash reset: a crash must clear EVERY receive queue's
// coalesce machine — buffered burst, poll flag, inflight count,
// pending count, span FIFO and, crucially, the armed moderation timer
// (a stale timer handle would also wedge pollDone's re-arming after
// restart).  The pre-crash probe proves timers really were armed, so
// the test cannot pass vacuously.
func TestCrashClearsPerQueueCoalesceState(t *testing.T) {
	s, net := newNet(t, Ether10Mb)
	ha, hb := s.NewHost("a"), s.NewHost("b")
	na := net.Attach(ha, 1)
	nb := net.Attach(hb, 2)
	nb.SetQueues(4)
	nb.SetCoalesce(4, 2*time.Millisecond)
	nb.Handler = func([]byte) {}

	s.Spawn(ha, "send", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		// Several flows, each parking buffered frames behind an armed
		// moderation timer on its queue.
		for _, src := range []Addr{10, 11, 12, 13} {
			for i := 0; i < 3; i++ {
				na.Transmit(Ether10Mb.Encode(2, src, EtherTypePup, []byte{byte(i)}))
			}
		}
	})
	crashAt := 2500 * time.Microsecond
	s.After(crashAt-time.Microsecond, func() {
		armed, buffered := 0, 0
		for _, q := range nb.queues {
			if q.flushTimer != nil {
				armed++
			}
			buffered += len(q.burst)
		}
		if armed == 0 || buffered == 0 {
			t.Fatalf("pre-crash: %d timers armed, %d frames buffered — scenario never built the state under test", armed, buffered)
		}
	})
	s.After(crashAt, func() { hb.Crash() })
	s.After(crashAt+time.Microsecond, func() {
		for i, q := range nb.queues {
			if q.flushTimer != nil {
				t.Errorf("queue %d: moderation timer survived the crash", i)
			}
			if len(q.burst) != 0 || len(q.burstSpans) != 0 {
				t.Errorf("queue %d: %d buffered frames survived the crash", i, len(q.burst))
			}
			if q.polling || q.inflight != 0 || q.pending != 0 {
				t.Errorf("queue %d: polling=%v inflight=%d pending=%d after crash, want all zero",
					i, q.polling, q.inflight, q.pending)
			}
			if len(q.rxPend)-q.rxHead != 0 {
				t.Errorf("queue %d: %d spans still pending after crash", i, len(q.rxPend)-q.rxHead)
			}
		}
	})
	s.Run(0)
}

// TestCoalesceFallsBackToHandler checks that with coalescing on but no
// BurstHandler bound, the frames of a burst are fed to the per-frame
// Handler one by one, still under one driver entry.
func TestCoalesceFallsBackToHandler(t *testing.T) {
	s, net := newNet(t, Ether3Mb)
	ha, hb := s.NewHost("a"), s.NewHost("b")
	na := net.Attach(ha, 1)
	nb := net.Attach(hb, 2)
	nb.SetCoalesce(4, 0)
	var got []byte
	nb.Handler = func(frame []byte) { got = append(got, frame[4]) }

	s.Spawn(ha, "send", func(p *sim.Proc) {
		for i := 0; i < 6; i++ {
			na.Transmit(Ether3Mb.Encode(2, 1, EtherTypePup3Mb, []byte{byte(i)}))
		}
	})
	s.Run(0)

	if len(got) != 6 {
		t.Fatalf("delivered %d frames, want 6", len(got))
	}
	for i := range got {
		if got[i] != byte(i) {
			t.Fatalf("frames out of order: %v", got)
		}
	}
	if hb.Counters.Bursts == 0 || hb.Counters.Bursts >= 6 {
		t.Errorf("Bursts = %d, want batching (0 < bursts < 6)", hb.Counters.Bursts)
	}
	// One kernel entry per burst, not per frame.
	if hb.Counters.KernelEntries != hb.Counters.Bursts {
		t.Errorf("KernelEntries = %d, Bursts = %d; want one entry per burst",
			hb.Counters.KernelEntries, hb.Counters.Bursts)
	}
}
