// Package ethersim simulates the two data links the paper measures
// on: the 3 Mbit/s Experimental Ethernet (4-byte data-link header, as
// in figure 3-7) and the 10 Mbit/s standard Ethernet (14-byte header).
//
// A Network is a shared half-duplex medium: one frame occupies the
// wire at a time for len*8/bandwidth of virtual time and is then
// delivered to every other attached interface; each interface accepts
// frames addressed to it or to the broadcast address (or everything,
// in promiscuous mode) and hands them to its host's kernel after the
// driver's receive cost.  Interfaces drop frames when their input
// queue overflows, which the packet filter reports to users ("a count
// of the number of packets lost due to queue overflows in the network
// interface and in the kernel", §3.3).
package ethersim

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"repro/internal/clock"
	"repro/internal/sim"
	"repro/internal/trace"
)

// LinkType selects the simulated data link.
type LinkType int

const (
	// Ether3Mb is the 3 Mbit/s Experimental Ethernet of Metcalfe &
	// Boggs: one-byte host addresses, a two-word header.
	Ether3Mb LinkType = iota
	// Ether10Mb is the standard 10 Mbit/s Ethernet: six-byte
	// addresses, a 14-byte header.
	Ether10Mb
)

// Addr is a data-link address, right-aligned in a uint64 (one
// significant byte on the 3 Mb net, six on the 10 Mb net).
type Addr uint64

// Broadcast addresses for each link type.
const (
	Broadcast3Mb  Addr = 0xFF
	Broadcast10Mb Addr = 0xFFFF_FFFF_FFFF
)

// Well-known Ethernet type codes used in this repository.  Pup3Mb is
// the 3 Mb code from the paper's listings; the others are the standard
// 10 Mb assignments (VMTP never had one — the paper's implementations
// predate the IP encapsulation — so we give it a private code).
const (
	EtherTypePup3Mb uint16 = 2
	EtherTypePup    uint16 = 0x0200
	EtherTypeIP     uint16 = 0x0800
	EtherTypeARP    uint16 = 0x0806
	EtherTypeRARP   uint16 = 0x8035
	EtherTypeVMTP   uint16 = 0x0700
)

// String returns "3Mb" or "10Mb".
func (l LinkType) String() string {
	if l == Ether3Mb {
		return "3Mb"
	}
	return "10Mb"
}

// HeaderLen returns the data-link header length in bytes (4 or 14).
func (l LinkType) HeaderLen() int {
	if l == Ether3Mb {
		return 4
	}
	return 14
}

// HeaderWords returns the header length in 16-bit filter words.
func (l LinkType) HeaderWords() int { return l.HeaderLen() / 2 }

// AddrLen returns the address length in bytes.
func (l LinkType) AddrLen() int {
	if l == Ether3Mb {
		return 1
	}
	return 6
}

// MaxFrame returns the maximum frame size in bytes including the
// header.
func (l LinkType) MaxFrame() int {
	if l == Ether3Mb {
		return 600
	}
	return 1514
}

// Bandwidth returns the link speed in bits per second.
func (l LinkType) Bandwidth() int64 {
	if l == Ether3Mb {
		return 3_000_000
	}
	return 10_000_000
}

// BroadcastAddr returns the all-stations address for the link.
func (l LinkType) BroadcastAddr() Addr {
	if l == Ether3Mb {
		return Broadcast3Mb
	}
	return Broadcast10Mb
}

// TypeWord returns the index of the 16-bit packet word holding the
// Ethernet type field (1 on the 3 Mb net, 6 on the 10 Mb net) — the
// word every demultiplexing filter tests first.
func (l LinkType) TypeWord() int {
	if l == Ether3Mb {
		return 1
	}
	return 6
}

// Encode builds a complete frame: data-link header plus payload.
func (l LinkType) Encode(dst, src Addr, etherType uint16, payload []byte) []byte {
	frame := make([]byte, l.HeaderLen()+len(payload))
	switch l {
	case Ether3Mb:
		frame[0] = byte(dst)
		frame[1] = byte(src)
		binary.BigEndian.PutUint16(frame[2:], etherType)
	default:
		putAddr6(frame[0:6], dst)
		putAddr6(frame[6:12], src)
		binary.BigEndian.PutUint16(frame[12:], etherType)
	}
	copy(frame[l.HeaderLen():], payload)
	return frame
}

// ErrTruncated reports a frame shorter than its data-link header.
var ErrTruncated = errors.New("ethersim: truncated frame")

// Decode splits a frame into its header fields and payload.  The
// payload aliases the frame.
func (l LinkType) Decode(frame []byte) (dst, src Addr, etherType uint16, payload []byte, err error) {
	if len(frame) < l.HeaderLen() {
		return 0, 0, 0, nil, ErrTruncated
	}
	switch l {
	case Ether3Mb:
		dst, src = Addr(frame[0]), Addr(frame[1])
		etherType = binary.BigEndian.Uint16(frame[2:])
	default:
		dst, src = addr6(frame[0:6]), addr6(frame[6:12])
		etherType = binary.BigEndian.Uint16(frame[12:])
	}
	return dst, src, etherType, frame[l.HeaderLen():], nil
}

func putAddr6(b []byte, a Addr) {
	b[0] = byte(a >> 40)
	b[1] = byte(a >> 32)
	b[2] = byte(a >> 24)
	b[3] = byte(a >> 16)
	b[4] = byte(a >> 8)
	b[5] = byte(a)
}

func addr6(b []byte) Addr {
	return Addr(b[0])<<40 | Addr(b[1])<<32 | Addr(b[2])<<24 |
		Addr(b[3])<<16 | Addr(b[4])<<8 | Addr(b[5])
}

// Network is one shared-medium Ethernet segment.
type Network struct {
	s    *sim.Sim
	link LinkType
	nics []*NIC

	wireBusy bool
	txq      []*txJob

	// FramesOnWire counts every frame that made it onto the medium.
	FramesOnWire uint64

	// DropEvery, when non-zero, silently discards every Nth frame
	// after transmission — deterministic loss injection for
	// exercising protocol retransmission paths ("Transmission is
	// unreliable if the data link is unreliable", §3).  It is a
	// thin compatibility wrapper over the Injector verdict path.
	DropEvery uint64
	// DropFn, when non-nil, is consulted per frame (1-based index
	// on the wire) for finer-grained loss injection.  Like
	// DropEvery it folds into the Injector verdict path.
	DropFn func(index uint64, frame []byte) bool
	// Dropped counts frames lost to injection (all sources:
	// DropEvery, DropFn and an attached Injector).
	Dropped uint64

	injector Injector
}

// Verdict is an Injector's decision about one frame.  The zero value
// with FlipBit == -1 (see NoFault) leaves the frame alone.  At most
// one fault field should be set per frame — the fault engine draws
// mutually exclusive outcomes so ledger and trace counters line up.
type Verdict struct {
	// Drop discards the frame after it occupied the wire.
	Drop bool
	// FlipBit, when >= 0, inverts that bit (frame[FlipBit/8] bit
	// 7-FlipBit%8) before delivery — payload corruption that the
	// transport checksums must catch.  -1 means no corruption.
	FlipBit int
	// Dup delivers the frame a second time, DupDelay after the
	// first delivery.
	Dup      bool
	DupDelay time.Duration
	// Delay postpones delivery by this much after the frame leaves
	// the wire (the wire itself frees on schedule) — queueing delay
	// in the interface, which reorders frames relative to later
	// undelayed traffic.
	Delay time.Duration
}

// NoFault is the verdict that leaves a frame untouched.
var NoFault = Verdict{FlipBit: -1}

// An Injector decides per wire frame (1-based index) which faults to
// apply.  It runs in event-loop context and must be deterministic.
type Injector interface {
	Frame(index uint64, frame []byte) Verdict
}

// SetInjector attaches (or, with nil, detaches) the fault injector.
func (n *Network) SetInjector(i Injector) { n.injector = i }

type txJob struct {
	frame []byte
	from  *NIC
	span  uint64 // provenance span stamped at transmit origin
}

// New creates a network segment of the given link type.
func New(s *sim.Sim, link LinkType) *Network {
	return &Network{s: s, link: link}
}

// Link returns the network's link type.
func (n *Network) Link() LinkType { return n.link }

// Sim returns the owning simulation.
func (n *Network) Sim() *sim.Sim { return n.s }

// NIC is one network interface attached to a host.  The kernel (other
// packages) sets Handler to receive frames in event-loop context after
// the driver cost has been charged.
type NIC struct {
	net  *Network
	host *sim.Host
	addr Addr

	// Handler receives each accepted frame.  It runs in event-loop
	// context and must not block; it may consume further kernel CPU
	// via host.RunKernel.
	Handler func(frame []byte)

	// BurstHandler, when set, receives coalesced receive bursts (see
	// SetCoalesce) instead of per-frame Handler calls.  With no
	// BurstHandler the frames of a burst are handed to Handler one by
	// one, still under a single driver entry.
	BurstHandler func(frames [][]byte)

	// Promiscuous makes the interface accept every frame.
	Promiscuous bool

	// QueueLimit bounds receive jobs pending on the host CPU, per
	// receive queue; beyond it frames are dropped and counted
	// ("queue overflows in the network interface").  Zero means
	// DefaultQueueLimit.
	QueueLimit int

	// Drops counts frames lost to input-queue overflow, summed
	// across queues.
	Drops uint64

	// Interrupt-coalescing configuration (SetCoalesce), shared by
	// every receive queue; each queue runs its own independent NAPI
	// state machine from it.
	coalesceMax   int
	coalesceDelay time.Duration

	// queues are the interface's receive queues.  A NIC starts with
	// exactly one; SetQueues grows it to an RSS-style multi-queue
	// interface whose flow-steering hash (SteerQueue) assigns each
	// frame to one queue, and whose queues run as parallel kernel
	// lanes on the host.  With one queue no steering happens and no
	// lane is used — the single-queue world is byte-identical to the
	// pre-multi-queue one.
	queues []*rxq

	// Side channel through which the receive handler learns the
	// current frame's provenance span and receive queue without
	// widening the Handler signatures.  Handlers run one at a time
	// in event-loop context, so one set of fields suffices even with
	// many queues.
	curSpan       uint64
	curBurstSpans []uint64
	curQueue      int
}

// rxq is one receive queue: its own pending ring, its own NAPI
// coalesce state machine, and its own span FIFO.  Queue 0 of a
// single-queue NIC behaves exactly like the pre-multi-queue NIC.
type rxq struct {
	nic *NIC
	idx int
	// lane is the host kernel lane this queue's driver work runs on:
	// -1 (the main CPU) for a single-queue NIC, the queue index for
	// a multi-queue one.
	lane int
	// tag is the KernelTime category for this queue's driver work:
	// "driver" on a single-queue NIC, "driver.qN" on multi-queue, so
	// pfstat's kernel profile breaks receive cost out per queue.
	tag string

	pending int

	// NAPI coalescing state: idle (interrupts unmasked) or polling
	// (frames accumulate in burst; budget or moderation timer
	// flushes).  All transitions ride the simulation event queue, so
	// coalesced runs stay deterministic.
	burst    [][]byte
	polling  bool
	inflight int // bursts handed to the kernel, not yet completed
	// flushTimer is the moderation timer, held through the dual-mode
	// clock interface.
	flushTimer clock.Timer

	// Provenance plumbing.  burstSpans mirrors burst; rxPend is the
	// FIFO of spans handed to kernel receive closures and not yet
	// consumed, so a crash (which clears the host's kernel queues)
	// can terminate exactly the spans buried in the lost closures.
	burstSpans []uint64
	rxPend     []uint64
	rxHead     int

	// rx counts frames accepted onto this queue (after steering,
	// before any overflow drop), so tests can prove steering really
	// spreads flows.
	rx uint64
}

// RxSpan returns the provenance span of the frame currently being
// handed to Handler (0 when untracked).  Valid only inside a Handler
// call.
func (nic *NIC) RxSpan() uint64 { return nic.curSpan }

// RxBurstSpans returns the spans of the burst currently being handed
// to BurstHandler, indexed like its frames.  Valid only inside a
// BurstHandler call.
func (nic *NIC) RxBurstSpans() []uint64 { return nic.curBurstSpans }

// RxQueue returns the receive queue of the frame (or burst) currently
// being handed to Handler/BurstHandler.  Valid only inside a handler
// call; 0 on a single-queue NIC.
func (nic *NIC) RxQueue() int { return nic.curQueue }

func (q *rxq) pushRx(span uint64) { q.rxPend = append(q.rxPend, span) }

// popRx consumes the queue's oldest pending receive span; each lane
// is a serial FIFO server, so within one queue closures retire in
// push order and the head is always the caller's own.
func (q *rxq) popRx() uint64 {
	if q.rxHead >= len(q.rxPend) {
		return 0
	}
	s := q.rxPend[q.rxHead]
	q.rxPend[q.rxHead] = 0
	q.rxHead++
	if q.rxHead == len(q.rxPend) {
		q.rxPend = q.rxPend[:0]
		q.rxHead = 0
	}
	return s
}

// DefaultQueueLimit is the input-queue bound used when a NIC does not
// set its own.
const DefaultQueueLimit = 32

// Attach adds an interface with the given address to the network.
func (n *Network) Attach(h *sim.Host, addr Addr) *NIC {
	nic := &NIC{net: n, host: h, addr: addr}
	nic.queues = []*rxq{{nic: nic, idx: 0, lane: -1, tag: "driver"}}
	n.nics = append(n.nics, nic)
	// Frames the interface had queued for the CPU die with the host:
	// the host clears its interrupt and lane queues on crash, so
	// every receive queue's pending count must reset with it — and so
	// must each queue's coalescing burst and moderation timer.
	h.OnCrash(func() {
		// Spans riding the lost kernel closures or buffered in the
		// coalescing bursts die with the kernel.
		tr := h.Sim().Tracer()
		now := h.Clock().Now()
		for _, q := range nic.queues {
			for i := q.rxHead; i < len(q.rxPend); i++ {
				tr.SpanDrop(q.rxPend[i], now, h.Name(), trace.DropCrash)
			}
			q.rxPend = q.rxPend[:0]
			q.rxHead = 0
			for _, s := range q.burstSpans {
				tr.SpanDrop(s, now, h.Name(), trace.DropCrash)
			}
			q.burstSpans = nil
			q.pending = 0
			q.burst = nil
			q.polling = false
			q.inflight = 0
			if q.flushTimer != nil {
				q.flushTimer.Stop()
				q.flushTimer = nil
			}
		}
	})
	return nic
}

// SetQueues grows the interface to n RSS-style receive queues (call
// before traffic flows; shrinking is not supported — queues model
// hardware rings fixed at bring-up).  Each queue gets its own pending
// ring, its own NAPI coalesce machine and its own host kernel lane;
// frames are assigned by the SteerQueue flow hash, so one flow always
// lands on one queue and stays in order.  With n <= 1 this is a no-op
// and the NIC remains the byte-identical single-queue interface.
func (nic *NIC) SetQueues(n int) {
	if n <= 1 || n <= len(nic.queues) {
		return
	}
	nic.host.SetKernelLanes(n)
	q0 := nic.queues[0]
	q0.lane, q0.tag = 0, "driver.q0"
	for len(nic.queues) < n {
		i := len(nic.queues)
		nic.queues = append(nic.queues, &rxq{
			nic: nic, idx: i, lane: i, tag: fmt.Sprintf("driver.q%d", i),
		})
	}
}

// Queues returns the number of receive queues (at least 1).
func (nic *NIC) Queues() int { return len(nic.queues) }

// LaneFor returns the host kernel lane that serves receive queue q:
// -1 (the main CPU) on a single-queue NIC.  Demux layers use it to
// run per-queue filter and delivery work on the same parallel kernel
// thread as the queue's driver.
func (nic *NIC) LaneFor(q int) int {
	if len(nic.queues) <= 1 {
		return -1
	}
	return q
}

// QueueRx returns per-queue counts of frames accepted onto each
// receive queue (after steering, before overflow drops).
func (nic *NIC) QueueRx() []uint64 {
	out := make([]uint64, len(nic.queues))
	for i, q := range nic.queues {
		out[i] = q.rx
	}
	return out
}

// SteerQueue is the RSS flow-steering hash: it maps a frame's
// (source, destination, ether-type) tuple to a receive queue in
// [0, n).  The hash is a pure function of the tuple — deterministic,
// stable for a fixed n, and identical for every frame of one flow,
// which is what preserves per-flow delivery order across parallel
// queues.  Frames too short to decode steer to queue 0.
func (l LinkType) SteerQueue(frame []byte, n int) int {
	if n <= 1 {
		return 0
	}
	dst, src, etherType, _, err := l.Decode(frame)
	if err != nil {
		return 0
	}
	return int(steerHash(uint64(src), uint64(dst), etherType) % uint64(n))
}

// steerHash mixes the flow tuple with FNV-1a over its 18 bytes.
func steerHash(src, dst uint64, etherType uint16) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64, bytes int) {
		for i := bytes - 1; i >= 0; i-- {
			h ^= (v >> (8 * i)) & 0xFF
			h *= prime
		}
	}
	mix(src, 8)
	mix(dst, 8)
	mix(uint64(etherType), 2)
	return h
}

// SetCoalesce configures interrupt coalescing: up to budget frames are
// delivered per kernel entry, and after a receive poll completes the
// interface holds further frames up to delay of virtual time hoping to
// fill another burst.  A budget of 0 or 1 disables coalescing and the
// interface behaves exactly as before (one driver entry per frame).
// With delay 0 bursts still form, but only from frames that arrive
// while a previous burst is being serviced (pure poll-mode batching,
// no added latency).
func (nic *NIC) SetCoalesce(budget int, delay time.Duration) {
	nic.coalesceMax = budget
	nic.coalesceDelay = delay
}

// Addr returns the interface's data-link address.
func (nic *NIC) Addr() Addr { return nic.addr }

// Host returns the attached host.
func (nic *NIC) Host() *sim.Host { return nic.host }

// Network returns the segment the interface is attached to.
func (nic *NIC) Network() *Network { return nic.net }

// Transmit queues a complete frame for transmission.  It may be called
// from any context; the frame is copied.  Oversized frames are
// rejected.
func (nic *NIC) Transmit(frame []byte) error {
	if len(frame) > nic.net.link.MaxFrame() {
		return fmt.Errorf("ethersim: frame of %d bytes exceeds %d-byte maximum",
			len(frame), nic.net.link.MaxFrame())
	}
	if len(frame) < nic.net.link.HeaderLen() {
		return ErrTruncated
	}
	tr := nic.net.s.Tracer()
	span := tr.SpanOrigin(nic.net.s.Now(), nic.host.Name())
	if nic.host.Down() {
		// A dead machine transmits nothing; in-flight kernel work
		// racing a crash loses its frame silently.
		tr.SpanDrop(span, nic.net.s.Now(), nic.host.Name(), trace.DropNICDown)
		return nil
	}
	nic.host.Counters.PacketsOut++
	nic.host.Sim().Counters.PacketsOut++
	nic.net.send(&txJob{frame: append([]byte(nil), frame...), from: nic, span: span})
	return nil
}

func (n *Network) send(job *txJob) {
	n.txq = append(n.txq, job)
	n.pumpWire()
}

func (n *Network) pumpWire() {
	if n.wireBusy || len(n.txq) == 0 {
		return
	}
	job := n.txq[0]
	n.txq = n.txq[1:]
	n.wireBusy = true
	n.FramesOnWire++
	idx := n.FramesOnWire

	// One verdict per frame: the injector's, then the legacy
	// DropEvery/DropFn wrappers folded into the same path.
	v := NoFault
	injected := false
	if n.injector != nil {
		v = n.injector.Frame(idx, job.frame)
		injected = v != NoFault
	}
	if !injected {
		if n.DropEvery > 0 && idx%n.DropEvery == 0 {
			v.Drop = true
		}
		if !v.Drop && n.DropFn != nil && n.DropFn(idx, job.frame) {
			v.Drop = true
		}
	}

	txTime := time.Duration(int64(len(job.frame)) * 8 * int64(time.Second) / n.link.Bandwidth())
	tr := n.s.Tracer()
	src := job.from.host.Name()
	if tr != nil {
		tr.WireTx(n.s.Now(), src, len(job.frame), txTime)
	}
	tr.SpanMark(job.span, trace.StageWire, n.s.Now())
	if v.Drop {
		n.Dropped++
		if tr != nil {
			tr.Drop(n.s.Now(), src, "wire")
			if injected {
				tr.Fault(n.s.Now(), src, "drop", idx)
			}
		}
		tr.SpanDrop(job.span, n.s.Now(), src, trace.DropWireFault)
	}
	if !v.Drop && v.FlipBit >= 0 && v.FlipBit < len(job.frame)*8 {
		job.frame[v.FlipBit/8] ^= 0x80 >> (v.FlipBit % 8)
		if tr != nil {
			tr.Fault(n.s.Now(), src, "corrupt", idx)
		}
		tr.SpanFlag(job.span, trace.FlagCorrupt)
	}
	var dupSpan uint64
	if !v.Drop && v.Dup {
		if tr != nil {
			tr.Fault(n.s.Now(), src, "dup", idx)
		}
		dupSpan = tr.SpanFork(job.span, n.s.Now(), src)
		tr.SpanFlag(dupSpan, trace.FlagDup)
	}
	if !v.Drop && v.Delay > 0 {
		if tr != nil {
			tr.Fault(n.s.Now(), src, "delay", idx)
		}
		tr.SpanFlag(job.span, trace.FlagDelayed)
	}
	n.s.After(txTime, func() {
		n.wireBusy = false
		if !v.Drop {
			if v.Delay > 0 {
				n.s.After(v.Delay, func() { n.deliver(job, job.span) })
			} else {
				n.deliver(job, job.span)
			}
			if v.Dup {
				n.s.After(v.Delay+v.DupDelay, func() { n.deliver(job, dupSpan) })
			}
		}
		n.pumpWire()
	})
}

// deliver hands the frame to every accepting interface.  The first
// recipient inherits the frame's span; extra broadcast/promiscuous
// recipients get forked child spans, and a frame nobody accepts
// terminates as DropNoReceiver.
func (n *Network) deliver(job *txJob, span uint64) {
	tr := n.s.Tracer()
	dst, _, _, _, err := n.link.Decode(job.frame)
	if err != nil {
		tr.SpanDrop(span, n.s.Now(), job.from.host.Name(), trace.DropNoReceiver)
		return
	}
	bcast := n.link.BroadcastAddr()
	delivered := false
	for _, nic := range n.nics {
		if nic == job.from {
			continue
		}
		if !nic.Promiscuous && dst != nic.addr && dst != bcast {
			continue
		}
		s := span
		if delivered {
			s = tr.SpanFork(span, n.s.Now(), nic.host.Name())
		}
		delivered = true
		nic.receive(job.frame, s)
	}
	if !delivered {
		tr.SpanDrop(span, n.s.Now(), job.from.host.Name(), trace.DropNoReceiver)
	}
}

func (nic *NIC) receive(frame []byte, span uint64) {
	if nic.host.Down() {
		// Frames addressed to a crashed host fall on the floor,
		// counted like any interface loss.
		nic.Drops++
		nic.host.Counters.PacketsDropped++
		nic.host.Sim().Counters.PacketsDropped++
		if tr := nic.host.Sim().Tracer(); tr != nil {
			tr.Drop(nic.host.Clock().Now(), nic.host.Name(), "nic")
		}
		nic.host.Sim().Tracer().SpanDrop(span, nic.host.Clock().Now(), nic.host.Name(), trace.DropNICDown)
		return
	}
	h := nic.host
	q := nic.queues[0]
	if len(nic.queues) > 1 {
		// RSS steering: the flow hash picks the queue, and the hash
		// cost is charged as part of that queue's driver entry.
		q = nic.queues[nic.net.link.SteerQueue(frame, len(nic.queues))]
		h.Counters.SteeredFrames++
		h.Sim().Counters.SteeredFrames++
	}
	limit := nic.QueueLimit
	if limit == 0 {
		limit = DefaultQueueLimit
	}
	if q.pending >= limit {
		nic.Drops++
		h.Counters.PacketsDropped++
		h.Sim().Counters.PacketsDropped++
		if tr := h.Sim().Tracer(); tr != nil {
			tr.Drop(h.Clock().Now(), h.Name(), "nic")
		}
		h.Sim().Tracer().SpanDrop(span, h.Clock().Now(), h.Name(), trace.DropNICQueue)
		return
	}
	q.pending++
	q.rx++
	own := append([]byte(nil), frame...)
	h.Counters.PacketsIn++
	h.Sim().Counters.PacketsIn++
	tr := h.Sim().Tracer()
	if tr != nil {
		tr.WireRx(h.Clock().Now(), h.Name(), len(frame))
	}
	tr.SpanMark(span, trace.StageNIC, h.Clock().Now())
	if nic.coalesceMax > 1 {
		q.coalesce(own, span)
		return
	}
	q.pushRx(span)
	cost := h.Costs().DriverRecv
	if q.lane >= 0 {
		cost += h.Costs().Steer
	}
	h.RunKernelOn(q.lane, q.tag, cost, func() {
		q.pending--
		sp := q.popRx()
		if nic.Handler != nil {
			nic.curSpan = sp
			nic.curQueue = q.idx
			nic.Handler(own)
			nic.curSpan = 0
			nic.curQueue = 0
		} else {
			h.Sim().Tracer().SpanDrop(sp, h.Clock().Now(), h.Name(), trace.DropUnclaimed)
		}
	})
}

// coalesce buffers an accepted frame under the queue's poll state
// machine.  The first frame after an idle period flushes immediately
// (the "interrupt"); while a poll is in progress or the moderation
// timer is armed, frames accumulate until the budget fills or the
// timer fires.
func (q *rxq) coalesce(frame []byte, span uint64) {
	nic := q.nic
	q.burst = append(q.burst, frame)
	q.burstSpans = append(q.burstSpans, span)
	nic.host.Sim().Tracer().SpanMark(span, trace.StageBurst, nic.host.Clock().Now())
	if !q.polling {
		q.polling = true
		q.flush()
		return
	}
	if len(q.burst) >= nic.coalesceMax {
		q.flush()
	}
}

// flush hands up to one budget's worth of the queue's buffered frames
// to the kernel in a single driver entry: DriverRecv for the entry
// itself plus DriverPoll per additional frame (plus the per-frame
// steering hash on a multi-queue NIC).
func (q *rxq) flush() {
	nic := q.nic
	if q.flushTimer != nil {
		q.flushTimer.Stop()
		q.flushTimer = nil
	}
	if len(q.burst) == 0 {
		return
	}
	n := len(q.burst)
	if n > nic.coalesceMax {
		n = nic.coalesceMax
	}
	frames := q.burst[:n:n]
	q.burst = q.burst[n:]
	spans := q.burstSpans[:n:n]
	q.burstSpans = q.burstSpans[n:]
	for _, s := range spans {
		q.pushRx(s)
	}

	h := nic.host
	h.Counters.Bursts++
	h.Sim().Counters.Bursts++
	h.Counters.CoalescedFrames += uint64(n)
	h.Sim().Counters.CoalescedFrames += uint64(n)
	if tr := h.Sim().Tracer(); tr != nil {
		tr.Burst(h.Clock().Now(), h.Name(), n, len(q.burst))
	}
	costs := h.Costs()
	cost := costs.DriverRecv + time.Duration(n-1)*costs.DriverPoll
	if q.lane >= 0 {
		cost += time.Duration(n) * costs.Steer
	}
	q.inflight++
	h.RunKernelOn(q.lane, q.tag, cost, func() {
		q.pending -= n
		q.inflight--
		for range spans {
			q.popRx()
		}
		switch {
		case nic.BurstHandler != nil:
			nic.curBurstSpans = spans
			nic.curSpan = spans[0]
			nic.curQueue = q.idx
			nic.BurstHandler(frames)
			nic.curBurstSpans = nil
			nic.curSpan = 0
			nic.curQueue = 0
		case nic.Handler != nil:
			nic.curQueue = q.idx
			for i, f := range frames {
				nic.curSpan = spans[i]
				nic.Handler(f)
			}
			nic.curSpan = 0
			nic.curQueue = 0
		default:
			tr := h.Sim().Tracer()
			for _, s := range spans {
				tr.SpanDrop(s, h.Clock().Now(), h.Name(), trace.DropUnclaimed)
			}
		}
		q.pollDone()
	})
}

// pollDone runs after a burst's kernel entry completes: a full buffer
// flushes again at once; otherwise the moderation timer is armed so a
// partial burst (or, with nothing buffered, the return to idle) waits
// out the coalesce delay.
func (q *rxq) pollDone() {
	nic := q.nic
	if len(q.burst) >= nic.coalesceMax {
		q.flush()
		return
	}
	if q.flushTimer != nil {
		return
	}
	q.flushTimer = nic.host.Clock().AfterFunc(nic.coalesceDelay, func() {
		q.flushTimer = nil
		if len(q.burst) > 0 {
			q.flush()
		} else if q.inflight == 0 {
			q.polling = false
		}
	})
}
