// Package ethersim simulates the two data links the paper measures
// on: the 3 Mbit/s Experimental Ethernet (4-byte data-link header, as
// in figure 3-7) and the 10 Mbit/s standard Ethernet (14-byte header).
//
// A Network is a shared half-duplex medium: one frame occupies the
// wire at a time for len*8/bandwidth of virtual time and is then
// delivered to every other attached interface; each interface accepts
// frames addressed to it or to the broadcast address (or everything,
// in promiscuous mode) and hands them to its host's kernel after the
// driver's receive cost.  Interfaces drop frames when their input
// queue overflows, which the packet filter reports to users ("a count
// of the number of packets lost due to queue overflows in the network
// interface and in the kernel", §3.3).
package ethersim

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"repro/internal/clock"
	"repro/internal/sim"
	"repro/internal/trace"
)

// LinkType selects the simulated data link.
type LinkType int

const (
	// Ether3Mb is the 3 Mbit/s Experimental Ethernet of Metcalfe &
	// Boggs: one-byte host addresses, a two-word header.
	Ether3Mb LinkType = iota
	// Ether10Mb is the standard 10 Mbit/s Ethernet: six-byte
	// addresses, a 14-byte header.
	Ether10Mb
)

// Addr is a data-link address, right-aligned in a uint64 (one
// significant byte on the 3 Mb net, six on the 10 Mb net).
type Addr uint64

// Broadcast addresses for each link type.
const (
	Broadcast3Mb  Addr = 0xFF
	Broadcast10Mb Addr = 0xFFFF_FFFF_FFFF
)

// Well-known Ethernet type codes used in this repository.  Pup3Mb is
// the 3 Mb code from the paper's listings; the others are the standard
// 10 Mb assignments (VMTP never had one — the paper's implementations
// predate the IP encapsulation — so we give it a private code).
const (
	EtherTypePup3Mb uint16 = 2
	EtherTypePup    uint16 = 0x0200
	EtherTypeIP     uint16 = 0x0800
	EtherTypeARP    uint16 = 0x0806
	EtherTypeRARP   uint16 = 0x8035
	EtherTypeVMTP   uint16 = 0x0700
)

// String returns "3Mb" or "10Mb".
func (l LinkType) String() string {
	if l == Ether3Mb {
		return "3Mb"
	}
	return "10Mb"
}

// HeaderLen returns the data-link header length in bytes (4 or 14).
func (l LinkType) HeaderLen() int {
	if l == Ether3Mb {
		return 4
	}
	return 14
}

// HeaderWords returns the header length in 16-bit filter words.
func (l LinkType) HeaderWords() int { return l.HeaderLen() / 2 }

// AddrLen returns the address length in bytes.
func (l LinkType) AddrLen() int {
	if l == Ether3Mb {
		return 1
	}
	return 6
}

// MaxFrame returns the maximum frame size in bytes including the
// header.
func (l LinkType) MaxFrame() int {
	if l == Ether3Mb {
		return 600
	}
	return 1514
}

// Bandwidth returns the link speed in bits per second.
func (l LinkType) Bandwidth() int64 {
	if l == Ether3Mb {
		return 3_000_000
	}
	return 10_000_000
}

// BroadcastAddr returns the all-stations address for the link.
func (l LinkType) BroadcastAddr() Addr {
	if l == Ether3Mb {
		return Broadcast3Mb
	}
	return Broadcast10Mb
}

// TypeWord returns the index of the 16-bit packet word holding the
// Ethernet type field (1 on the 3 Mb net, 6 on the 10 Mb net) — the
// word every demultiplexing filter tests first.
func (l LinkType) TypeWord() int {
	if l == Ether3Mb {
		return 1
	}
	return 6
}

// Encode builds a complete frame: data-link header plus payload.
func (l LinkType) Encode(dst, src Addr, etherType uint16, payload []byte) []byte {
	frame := make([]byte, l.HeaderLen()+len(payload))
	switch l {
	case Ether3Mb:
		frame[0] = byte(dst)
		frame[1] = byte(src)
		binary.BigEndian.PutUint16(frame[2:], etherType)
	default:
		putAddr6(frame[0:6], dst)
		putAddr6(frame[6:12], src)
		binary.BigEndian.PutUint16(frame[12:], etherType)
	}
	copy(frame[l.HeaderLen():], payload)
	return frame
}

// ErrTruncated reports a frame shorter than its data-link header.
var ErrTruncated = errors.New("ethersim: truncated frame")

// Decode splits a frame into its header fields and payload.  The
// payload aliases the frame.
func (l LinkType) Decode(frame []byte) (dst, src Addr, etherType uint16, payload []byte, err error) {
	if len(frame) < l.HeaderLen() {
		return 0, 0, 0, nil, ErrTruncated
	}
	switch l {
	case Ether3Mb:
		dst, src = Addr(frame[0]), Addr(frame[1])
		etherType = binary.BigEndian.Uint16(frame[2:])
	default:
		dst, src = addr6(frame[0:6]), addr6(frame[6:12])
		etherType = binary.BigEndian.Uint16(frame[12:])
	}
	return dst, src, etherType, frame[l.HeaderLen():], nil
}

func putAddr6(b []byte, a Addr) {
	b[0] = byte(a >> 40)
	b[1] = byte(a >> 32)
	b[2] = byte(a >> 24)
	b[3] = byte(a >> 16)
	b[4] = byte(a >> 8)
	b[5] = byte(a)
}

func addr6(b []byte) Addr {
	return Addr(b[0])<<40 | Addr(b[1])<<32 | Addr(b[2])<<24 |
		Addr(b[3])<<16 | Addr(b[4])<<8 | Addr(b[5])
}

// Network is one shared-medium Ethernet segment.
type Network struct {
	s    *sim.Sim
	link LinkType
	nics []*NIC

	wireBusy bool
	txq      []*txJob

	// FramesOnWire counts every frame that made it onto the medium.
	FramesOnWire uint64

	// DropEvery, when non-zero, silently discards every Nth frame
	// after transmission — deterministic loss injection for
	// exercising protocol retransmission paths ("Transmission is
	// unreliable if the data link is unreliable", §3).  It is a
	// thin compatibility wrapper over the Injector verdict path.
	DropEvery uint64
	// DropFn, when non-nil, is consulted per frame (1-based index
	// on the wire) for finer-grained loss injection.  Like
	// DropEvery it folds into the Injector verdict path.
	DropFn func(index uint64, frame []byte) bool
	// Dropped counts frames lost to injection (all sources:
	// DropEvery, DropFn and an attached Injector).
	Dropped uint64

	injector Injector
}

// Verdict is an Injector's decision about one frame.  The zero value
// with FlipBit == -1 (see NoFault) leaves the frame alone.  At most
// one fault field should be set per frame — the fault engine draws
// mutually exclusive outcomes so ledger and trace counters line up.
type Verdict struct {
	// Drop discards the frame after it occupied the wire.
	Drop bool
	// FlipBit, when >= 0, inverts that bit (frame[FlipBit/8] bit
	// 7-FlipBit%8) before delivery — payload corruption that the
	// transport checksums must catch.  -1 means no corruption.
	FlipBit int
	// Dup delivers the frame a second time, DupDelay after the
	// first delivery.
	Dup      bool
	DupDelay time.Duration
	// Delay postpones delivery by this much after the frame leaves
	// the wire (the wire itself frees on schedule) — queueing delay
	// in the interface, which reorders frames relative to later
	// undelayed traffic.
	Delay time.Duration
}

// NoFault is the verdict that leaves a frame untouched.
var NoFault = Verdict{FlipBit: -1}

// An Injector decides per wire frame (1-based index) which faults to
// apply.  It runs in event-loop context and must be deterministic.
type Injector interface {
	Frame(index uint64, frame []byte) Verdict
}

// SetInjector attaches (or, with nil, detaches) the fault injector.
func (n *Network) SetInjector(i Injector) { n.injector = i }

type txJob struct {
	frame []byte
	from  *NIC
	span  uint64 // provenance span stamped at transmit origin
}

// New creates a network segment of the given link type.
func New(s *sim.Sim, link LinkType) *Network {
	return &Network{s: s, link: link}
}

// Link returns the network's link type.
func (n *Network) Link() LinkType { return n.link }

// Sim returns the owning simulation.
func (n *Network) Sim() *sim.Sim { return n.s }

// NIC is one network interface attached to a host.  The kernel (other
// packages) sets Handler to receive frames in event-loop context after
// the driver cost has been charged.
type NIC struct {
	net  *Network
	host *sim.Host
	addr Addr

	// Handler receives each accepted frame.  It runs in event-loop
	// context and must not block; it may consume further kernel CPU
	// via host.RunKernel.
	Handler func(frame []byte)

	// BurstHandler, when set, receives coalesced receive bursts (see
	// SetCoalesce) instead of per-frame Handler calls.  With no
	// BurstHandler the frames of a burst are handed to Handler one by
	// one, still under a single driver entry.
	BurstHandler func(frames [][]byte)

	// Promiscuous makes the interface accept every frame.
	Promiscuous bool

	// QueueLimit bounds receive jobs pending on the host CPU;
	// beyond it frames are dropped and counted ("queue overflows in
	// the network interface").  Zero means DefaultQueueLimit.
	QueueLimit int
	pending    int

	// Drops counts frames lost to input-queue overflow.
	Drops uint64

	// Interrupt-coalescing state (SetCoalesce).  The interface is a
	// two-state NAPI-style machine: idle (interrupts unmasked — the
	// next frame is handed to the kernel immediately, so an isolated
	// packet pays no coalescing latency) and polling (frames
	// accumulate in burst; the budget or the moderation timer flushes
	// them in one driver entry).  All transitions ride the simulation
	// event queue, so coalesced runs stay deterministic.
	coalesceMax   int
	coalesceDelay time.Duration
	burst         [][]byte
	polling       bool
	inflight      int // bursts handed to RunKernel, not yet completed
	// flushTimer is the moderation timer, held through the dual-mode
	// clock interface: in simulation it rides the event queue, so
	// coalesced runs stay deterministic.
	flushTimer clock.Timer

	// Provenance plumbing.  burstSpans mirrors burst; rxPend is the
	// FIFO of spans handed to RunKernel receive closures and not yet
	// consumed, so a crash (which clears the host's interrupt queue)
	// can terminate exactly the spans buried in the lost closures.
	// curSpan/curBurstSpans are the side channel through which the
	// receive handler learns its frames' spans without widening the
	// Handler signatures.
	burstSpans    []uint64
	rxPend        []uint64
	rxHead        int
	curSpan       uint64
	curBurstSpans []uint64
}

// RxSpan returns the provenance span of the frame currently being
// handed to Handler (0 when untracked).  Valid only inside a Handler
// call.
func (nic *NIC) RxSpan() uint64 { return nic.curSpan }

// RxBurstSpans returns the spans of the burst currently being handed
// to BurstHandler, indexed like its frames.  Valid only inside a
// BurstHandler call.
func (nic *NIC) RxBurstSpans() []uint64 { return nic.curBurstSpans }

func (nic *NIC) pushRx(span uint64) { nic.rxPend = append(nic.rxPend, span) }

// popRx consumes the oldest pending receive span; receive closures
// retire in FIFO order, so the head is always the caller's own.
func (nic *NIC) popRx() uint64 {
	if nic.rxHead >= len(nic.rxPend) {
		return 0
	}
	s := nic.rxPend[nic.rxHead]
	nic.rxPend[nic.rxHead] = 0
	nic.rxHead++
	if nic.rxHead == len(nic.rxPend) {
		nic.rxPend = nic.rxPend[:0]
		nic.rxHead = 0
	}
	return s
}

// DefaultQueueLimit is the input-queue bound used when a NIC does not
// set its own.
const DefaultQueueLimit = 32

// Attach adds an interface with the given address to the network.
func (n *Network) Attach(h *sim.Host, addr Addr) *NIC {
	nic := &NIC{net: n, host: h, addr: addr}
	n.nics = append(n.nics, nic)
	// Frames the interface had queued for the CPU die with the host:
	// the host clears its interrupt queue on crash, so the pending
	// count must reset with it — and so must any coalescing burst
	// buffered in the interface and its moderation timer.
	h.OnCrash(func() {
		// Spans riding the lost interrupt-queue closures or buffered in
		// the coalescing burst die with the kernel.
		tr := h.Sim().Tracer()
		now := h.Clock().Now()
		for i := nic.rxHead; i < len(nic.rxPend); i++ {
			tr.SpanDrop(nic.rxPend[i], now, h.Name(), trace.DropCrash)
		}
		nic.rxPend = nic.rxPend[:0]
		nic.rxHead = 0
		for _, s := range nic.burstSpans {
			tr.SpanDrop(s, now, h.Name(), trace.DropCrash)
		}
		nic.burstSpans = nil
		nic.pending = 0
		nic.burst = nil
		nic.polling = false
		nic.inflight = 0
		if nic.flushTimer != nil {
			nic.flushTimer.Stop()
			nic.flushTimer = nil
		}
	})
	return nic
}

// SetCoalesce configures interrupt coalescing: up to budget frames are
// delivered per kernel entry, and after a receive poll completes the
// interface holds further frames up to delay of virtual time hoping to
// fill another burst.  A budget of 0 or 1 disables coalescing and the
// interface behaves exactly as before (one driver entry per frame).
// With delay 0 bursts still form, but only from frames that arrive
// while a previous burst is being serviced (pure poll-mode batching,
// no added latency).
func (nic *NIC) SetCoalesce(budget int, delay time.Duration) {
	nic.coalesceMax = budget
	nic.coalesceDelay = delay
}

// Addr returns the interface's data-link address.
func (nic *NIC) Addr() Addr { return nic.addr }

// Host returns the attached host.
func (nic *NIC) Host() *sim.Host { return nic.host }

// Network returns the segment the interface is attached to.
func (nic *NIC) Network() *Network { return nic.net }

// Transmit queues a complete frame for transmission.  It may be called
// from any context; the frame is copied.  Oversized frames are
// rejected.
func (nic *NIC) Transmit(frame []byte) error {
	if len(frame) > nic.net.link.MaxFrame() {
		return fmt.Errorf("ethersim: frame of %d bytes exceeds %d-byte maximum",
			len(frame), nic.net.link.MaxFrame())
	}
	if len(frame) < nic.net.link.HeaderLen() {
		return ErrTruncated
	}
	tr := nic.net.s.Tracer()
	span := tr.SpanOrigin(nic.net.s.Now(), nic.host.Name())
	if nic.host.Down() {
		// A dead machine transmits nothing; in-flight kernel work
		// racing a crash loses its frame silently.
		tr.SpanDrop(span, nic.net.s.Now(), nic.host.Name(), trace.DropNICDown)
		return nil
	}
	nic.host.Counters.PacketsOut++
	nic.host.Sim().Counters.PacketsOut++
	nic.net.send(&txJob{frame: append([]byte(nil), frame...), from: nic, span: span})
	return nil
}

func (n *Network) send(job *txJob) {
	n.txq = append(n.txq, job)
	n.pumpWire()
}

func (n *Network) pumpWire() {
	if n.wireBusy || len(n.txq) == 0 {
		return
	}
	job := n.txq[0]
	n.txq = n.txq[1:]
	n.wireBusy = true
	n.FramesOnWire++
	idx := n.FramesOnWire

	// One verdict per frame: the injector's, then the legacy
	// DropEvery/DropFn wrappers folded into the same path.
	v := NoFault
	injected := false
	if n.injector != nil {
		v = n.injector.Frame(idx, job.frame)
		injected = v != NoFault
	}
	if !injected {
		if n.DropEvery > 0 && idx%n.DropEvery == 0 {
			v.Drop = true
		}
		if !v.Drop && n.DropFn != nil && n.DropFn(idx, job.frame) {
			v.Drop = true
		}
	}

	txTime := time.Duration(int64(len(job.frame)) * 8 * int64(time.Second) / n.link.Bandwidth())
	tr := n.s.Tracer()
	src := job.from.host.Name()
	if tr != nil {
		tr.WireTx(n.s.Now(), src, len(job.frame), txTime)
	}
	tr.SpanMark(job.span, trace.StageWire, n.s.Now())
	if v.Drop {
		n.Dropped++
		if tr != nil {
			tr.Drop(n.s.Now(), src, "wire")
			if injected {
				tr.Fault(n.s.Now(), src, "drop", idx)
			}
		}
		tr.SpanDrop(job.span, n.s.Now(), src, trace.DropWireFault)
	}
	if !v.Drop && v.FlipBit >= 0 && v.FlipBit < len(job.frame)*8 {
		job.frame[v.FlipBit/8] ^= 0x80 >> (v.FlipBit % 8)
		if tr != nil {
			tr.Fault(n.s.Now(), src, "corrupt", idx)
		}
		tr.SpanFlag(job.span, trace.FlagCorrupt)
	}
	var dupSpan uint64
	if !v.Drop && v.Dup {
		if tr != nil {
			tr.Fault(n.s.Now(), src, "dup", idx)
		}
		dupSpan = tr.SpanFork(job.span, n.s.Now(), src)
		tr.SpanFlag(dupSpan, trace.FlagDup)
	}
	if !v.Drop && v.Delay > 0 {
		if tr != nil {
			tr.Fault(n.s.Now(), src, "delay", idx)
		}
		tr.SpanFlag(job.span, trace.FlagDelayed)
	}
	n.s.After(txTime, func() {
		n.wireBusy = false
		if !v.Drop {
			if v.Delay > 0 {
				n.s.After(v.Delay, func() { n.deliver(job, job.span) })
			} else {
				n.deliver(job, job.span)
			}
			if v.Dup {
				n.s.After(v.Delay+v.DupDelay, func() { n.deliver(job, dupSpan) })
			}
		}
		n.pumpWire()
	})
}

// deliver hands the frame to every accepting interface.  The first
// recipient inherits the frame's span; extra broadcast/promiscuous
// recipients get forked child spans, and a frame nobody accepts
// terminates as DropNoReceiver.
func (n *Network) deliver(job *txJob, span uint64) {
	tr := n.s.Tracer()
	dst, _, _, _, err := n.link.Decode(job.frame)
	if err != nil {
		tr.SpanDrop(span, n.s.Now(), job.from.host.Name(), trace.DropNoReceiver)
		return
	}
	bcast := n.link.BroadcastAddr()
	delivered := false
	for _, nic := range n.nics {
		if nic == job.from {
			continue
		}
		if !nic.Promiscuous && dst != nic.addr && dst != bcast {
			continue
		}
		s := span
		if delivered {
			s = tr.SpanFork(span, n.s.Now(), nic.host.Name())
		}
		delivered = true
		nic.receive(job.frame, s)
	}
	if !delivered {
		tr.SpanDrop(span, n.s.Now(), job.from.host.Name(), trace.DropNoReceiver)
	}
}

func (nic *NIC) receive(frame []byte, span uint64) {
	if nic.host.Down() {
		// Frames addressed to a crashed host fall on the floor,
		// counted like any interface loss.
		nic.Drops++
		nic.host.Counters.PacketsDropped++
		nic.host.Sim().Counters.PacketsDropped++
		if tr := nic.host.Sim().Tracer(); tr != nil {
			tr.Drop(nic.host.Clock().Now(), nic.host.Name(), "nic")
		}
		nic.host.Sim().Tracer().SpanDrop(span, nic.host.Clock().Now(), nic.host.Name(), trace.DropNICDown)
		return
	}
	limit := nic.QueueLimit
	if limit == 0 {
		limit = DefaultQueueLimit
	}
	if nic.pending >= limit {
		nic.Drops++
		nic.host.Counters.PacketsDropped++
		nic.host.Sim().Counters.PacketsDropped++
		if tr := nic.host.Sim().Tracer(); tr != nil {
			tr.Drop(nic.host.Clock().Now(), nic.host.Name(), "nic")
		}
		nic.host.Sim().Tracer().SpanDrop(span, nic.host.Clock().Now(), nic.host.Name(), trace.DropNICQueue)
		return
	}
	nic.pending++
	own := append([]byte(nil), frame...)
	h := nic.host
	h.Counters.PacketsIn++
	h.Sim().Counters.PacketsIn++
	tr := h.Sim().Tracer()
	if tr != nil {
		tr.WireRx(h.Clock().Now(), h.Name(), len(frame))
	}
	tr.SpanMark(span, trace.StageNIC, h.Clock().Now())
	if nic.coalesceMax > 1 {
		nic.coalesce(own, span)
		return
	}
	nic.pushRx(span)
	h.RunKernel("driver", h.Costs().DriverRecv, func() {
		nic.pending--
		sp := nic.popRx()
		if nic.Handler != nil {
			nic.curSpan = sp
			nic.Handler(own)
			nic.curSpan = 0
		} else {
			h.Sim().Tracer().SpanDrop(sp, h.Clock().Now(), h.Name(), trace.DropUnclaimed)
		}
	})
}

// coalesce buffers an accepted frame under the poll state machine.
// The first frame after an idle period flushes immediately (the
// "interrupt"); while a poll is in progress or the moderation timer is
// armed, frames accumulate until the budget fills or the timer fires.
func (nic *NIC) coalesce(frame []byte, span uint64) {
	nic.burst = append(nic.burst, frame)
	nic.burstSpans = append(nic.burstSpans, span)
	nic.host.Sim().Tracer().SpanMark(span, trace.StageBurst, nic.host.Clock().Now())
	if !nic.polling {
		nic.polling = true
		nic.flush()
		return
	}
	if len(nic.burst) >= nic.coalesceMax {
		nic.flush()
	}
}

// flush hands up to one budget's worth of buffered frames to the
// kernel in a single driver entry: DriverRecv for the entry itself
// plus DriverPoll per additional frame.
func (nic *NIC) flush() {
	if nic.flushTimer != nil {
		nic.flushTimer.Stop()
		nic.flushTimer = nil
	}
	if len(nic.burst) == 0 {
		return
	}
	n := len(nic.burst)
	if n > nic.coalesceMax {
		n = nic.coalesceMax
	}
	frames := nic.burst[:n:n]
	nic.burst = nic.burst[n:]
	spans := nic.burstSpans[:n:n]
	nic.burstSpans = nic.burstSpans[n:]
	for _, s := range spans {
		nic.pushRx(s)
	}

	h := nic.host
	h.Counters.Bursts++
	h.Sim().Counters.Bursts++
	h.Counters.CoalescedFrames += uint64(n)
	h.Sim().Counters.CoalescedFrames += uint64(n)
	if tr := h.Sim().Tracer(); tr != nil {
		tr.Burst(h.Clock().Now(), h.Name(), n, len(nic.burst))
	}
	costs := h.Costs()
	cost := costs.DriverRecv + time.Duration(n-1)*costs.DriverPoll
	nic.inflight++
	h.RunKernel("driver", cost, func() {
		nic.pending -= n
		nic.inflight--
		for range spans {
			nic.popRx()
		}
		switch {
		case nic.BurstHandler != nil:
			nic.curBurstSpans = spans
			nic.curSpan = spans[0]
			nic.BurstHandler(frames)
			nic.curBurstSpans = nil
			nic.curSpan = 0
		case nic.Handler != nil:
			for i, f := range frames {
				nic.curSpan = spans[i]
				nic.Handler(f)
			}
			nic.curSpan = 0
		default:
			tr := h.Sim().Tracer()
			for _, s := range spans {
				tr.SpanDrop(s, h.Clock().Now(), h.Name(), trace.DropUnclaimed)
			}
		}
		nic.pollDone()
	})
}

// pollDone runs after a burst's kernel entry completes: a full buffer
// flushes again at once; otherwise the moderation timer is armed so a
// partial burst (or, with nothing buffered, the return to idle) waits
// out the coalesce delay.
func (nic *NIC) pollDone() {
	if len(nic.burst) >= nic.coalesceMax {
		nic.flush()
		return
	}
	if nic.flushTimer != nil {
		return
	}
	nic.flushTimer = nic.host.Clock().AfterFunc(nic.coalesceDelay, func() {
		nic.flushTimer = nil
		if len(nic.burst) > 0 {
			nic.flush()
		} else if nic.inflight == 0 {
			nic.polling = false
		}
	})
}
