package vmtp

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/ethersim"
	"repro/internal/filter"
	"repro/internal/pfdev"
	"repro/internal/sim"
	"repro/internal/vtime"
)

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{DstPort: 0xAABBCCDD, TransID: 42, Kind: KindResponse,
		Index: 3, Count: 7, SrcPort: 0x11223344, Op: 9}
	data := []byte("segment")
	pkt := Marshal(h, data)
	if len(pkt) != HeaderLen+len(data) {
		t.Fatalf("len = %d", len(pkt))
	}
	got, gd, err := Unmarshal(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if got != h || !bytes.Equal(gd, data) {
		t.Fatalf("got %+v %q", got, gd)
	}
	if _, _, err := Unmarshal(pkt[:10]); err != ErrShort {
		t.Fatal("short accepted")
	}
}

func TestSegments(t *testing.T) {
	segs := Segments(make([]byte, 2*MaxSeg+1))
	if len(segs) != 3 || len(segs[2]) != 1 {
		t.Fatalf("segments: %d", len(segs))
	}
	if segs := Segments(nil); len(segs) != 1 {
		t.Fatal("empty message must be one segment")
	}
}

func TestPortFilterSelectivity(t *testing.T) {
	link := ethersim.Ether3Mb
	f := PortFilter(link, 10, 0x12345678)
	mk := func(port uint32, etherType uint16) []byte {
		return link.Encode(2, 1, etherType, Marshal(Header{DstPort: port}, nil))
	}
	if !filter.Run(f.Program, mk(0x12345678, ethersim.EtherTypeVMTP)).Accept {
		t.Error("own port rejected")
	}
	if filter.Run(f.Program, mk(0x12345679, ethersim.EtherTypeVMTP)).Accept {
		t.Error("wrong port accepted")
	}
	if filter.Run(f.Program, mk(0x12345678, ethersim.EtherTypeIP)).Accept {
		t.Error("wrong ether type accepted")
	}
}

// vmtpRig wires a client host and server host with packet-filter
// devices and kernel VMTP engines on a 10 Mb net.
type vmtpRig struct {
	s        *sim.Sim
	net      *ethersim.Network
	hc, hs   *sim.Host
	dc, ds   *pfdev.Device
	kc, ks   *KernelTransport
	hwC, hwS ethersim.Addr
}

func newVMTPRig() *vmtpRig {
	s := sim.New(vtime.DefaultCosts())
	net := ethersim.New(s, ethersim.Ether10Mb)
	hc, hs := s.NewHost("client"), s.NewHost("server")
	nc := net.Attach(hc, 0x0C)
	ns := net.Attach(hs, 0x05)
	kc := AttachKernel(nc, DefaultKernelConfig())
	ks := AttachKernel(ns, DefaultKernelConfig())
	return &vmtpRig{
		s: s, net: net, hc: hc, hs: hs,
		dc: pfdev.Attach(nc, kc, pfdev.Options{}),
		ds: pfdev.Attach(ns, ks, pfdev.Options{}),
		kc: kc, ks: ks,
		hwC: nc.Addr(), hwS: ns.Addr(),
	}
}

// echoHandler returns op-dependent test payloads.
func echoHandler(blob []byte) Handler {
	return func(op uint16, req []byte) []byte {
		switch op {
		case 0: // minimal: zero bytes
			return nil
		case 1: // echo
			return req
		default: // bulk read
			return blob
		}
	}
}

func TestUserLevelTransaction(t *testing.T) {
	for _, batch := range []bool{false, true} {
		r := newVMTPRig()
		blob := make([]byte, 3000)
		for i := range blob {
			blob[i] = byte(i * 13)
		}
		var resp, echo []byte
		var callErr error
		r.s.Spawn(r.hs, "server", func(p *sim.Proc) {
			cfg := DefaultUserConfig()
			cfg.Batch = batch
			ep, err := NewUserEndpoint(p, r.ds, 500, cfg)
			if err != nil {
				t.Error(err)
				return
			}
			ep.Serve(p, echoHandler(blob), 200*time.Millisecond)
		})
		r.s.Spawn(r.hc, "client", func(p *sim.Proc) {
			cfg := DefaultUserConfig()
			cfg.Batch = batch
			ep, err := NewUserEndpoint(p, r.dc, 600, cfg)
			if err != nil {
				t.Error(err)
				return
			}
			p.Sleep(5 * time.Millisecond)
			resp, callErr = ep.Call(p, r.hwS, 500, 2, nil)
			if callErr == nil {
				echo, callErr = ep.Call(p, r.hwS, 500, 1, []byte("marco"))
			}
		})
		r.s.Run(0)
		if callErr != nil {
			t.Fatalf("batch=%v: %v", batch, callErr)
		}
		if !bytes.Equal(resp, blob) {
			t.Fatalf("batch=%v: bulk response corrupted (%d bytes)", batch, len(resp))
		}
		if string(echo) != "marco" {
			t.Fatalf("batch=%v: echo = %q", batch, echo)
		}
	}
}

func TestUserLevelRetransmission(t *testing.T) {
	r := newVMTPRig()
	r.net.DropFn = func(i uint64, _ []byte) bool { return i == 1 } // lose first request
	var callErr error
	var retrans int
	r.s.Spawn(r.hs, "server", func(p *sim.Proc) {
		ep, _ := NewUserEndpoint(p, r.ds, 500, DefaultUserConfig())
		ep.Serve(p, echoHandler(nil), 400*time.Millisecond)
	})
	r.s.Spawn(r.hc, "client", func(p *sim.Proc) {
		cfg := DefaultUserConfig()
		cfg.RTO = 30 * time.Millisecond
		ep, _ := NewUserEndpoint(p, r.dc, 600, cfg)
		p.Sleep(5 * time.Millisecond)
		_, callErr = ep.Call(p, r.hwS, 500, 1, []byte("x"))
		retrans = ep.Retransmissions
	})
	r.s.Run(0)
	if callErr != nil {
		t.Fatal(callErr)
	}
	if retrans == 0 {
		t.Error("expected a retransmission")
	}
}

func TestKernelTransaction(t *testing.T) {
	r := newVMTPRig()
	blob := make([]byte, 5000)
	for i := range blob {
		blob[i] = byte(i * 31)
	}
	var resp []byte
	var callErr error
	r.s.Spawn(r.hs, "server", func(p *sim.Proc) {
		svc := r.ks.Register(p, 500)
		svc.Serve(p, echoHandler(blob), 200*time.Millisecond)
	})
	r.s.Spawn(r.hc, "client", func(p *sim.Proc) {
		p.Sleep(5 * time.Millisecond)
		resp, callErr = r.kc.Call(p, r.hwS, 500, 2, nil, 600)
	})
	r.s.Run(0)
	if callErr != nil {
		t.Fatal(callErr)
	}
	if !bytes.Equal(resp, blob) {
		t.Fatalf("bulk response corrupted (%d bytes)", len(resp))
	}
}

func TestKernelDuplicateReplayedWithoutServer(t *testing.T) {
	r := newVMTPRig()
	// Lose the whole first response group (frames 2..N); the client
	// retry must be answered by the kernel replay without a second
	// server wakeup.
	r.net.DropFn = func(i uint64, f []byte) bool { return i == 2 }
	served := 0
	var callErr error
	r.s.Spawn(r.hs, "server", func(p *sim.Proc) {
		svc := r.ks.Register(p, 500)
		served = svc.Serve(p, echoHandler(nil), 300*time.Millisecond)
	})
	r.s.Spawn(r.hc, "client", func(p *sim.Proc) {
		p.Sleep(5 * time.Millisecond)
		_, callErr = r.kc.Call(p, r.hwS, 500, 0, nil, 600)
	})
	r.s.Run(0)
	if callErr != nil {
		t.Fatal(callErr)
	}
	if served != 1 {
		t.Fatalf("server woken %d times, want 1", served)
	}
}

func TestKernelFewerDomainCrossingsThanUser(t *testing.T) {
	// Figure 2-3: for the same bulk transaction the kernel engine
	// must cross the kernel/user boundary far fewer times.
	blob := make([]byte, 8000) // 16 response packets

	runUser := func() uint64 {
		r := newVMTPRig()
		r.s.Spawn(r.hs, "server", func(p *sim.Proc) {
			ep, _ := NewUserEndpoint(p, r.ds, 500, DefaultUserConfig())
			ep.Serve(p, echoHandler(blob), 200*time.Millisecond)
		})
		var after vtime.Counters
		r.s.Spawn(r.hc, "client", func(p *sim.Proc) {
			ep, _ := NewUserEndpoint(p, r.dc, 600, DefaultUserConfig())
			p.Sleep(5 * time.Millisecond)
			before := r.hc.Counters
			ep.Call(p, r.hwS, 500, 2, nil)
			after = r.hc.Counters.Sub(before)
		})
		r.s.Run(0)
		return after.DomainCrossings
	}
	runKernel := func() uint64 {
		r := newVMTPRig()
		r.s.Spawn(r.hs, "server", func(p *sim.Proc) {
			svc := r.ks.Register(p, 500)
			svc.Serve(p, echoHandler(blob), 200*time.Millisecond)
		})
		var after vtime.Counters
		r.s.Spawn(r.hc, "client", func(p *sim.Proc) {
			p.Sleep(5 * time.Millisecond)
			before := r.hc.Counters
			r.kc.Call(p, r.hwS, 500, 2, nil, 600)
			after = r.hc.Counters.Sub(before)
		})
		r.s.Run(0)
		return after.DomainCrossings
	}
	u, k := runUser(), runKernel()
	if k*4 > u {
		t.Fatalf("kernel engine crossings %d not well below user %d", k, u)
	}
}
