// Package vmtp implements a VMTP-style transaction protocol (Cheriton,
// SIGCOMM '86): a client sends a request message and the server
// returns a response message, possibly segmented into a back-to-back
// packet group; the response acknowledges the request and the next
// request acknowledges the response.
//
// VMTP matters to the paper because it is "the only interesting
// protocol for which there is both a packet-filter based
// implementation and a kernel-resident implementation" (§6.3),
// providing the direct measurement of the cost of user-level
// implementation behind tables 6-2 through 6-5.  This package mirrors
// that arrangement with two interchangeable engines over the same wire
// format:
//
//   - UserClient/UserServer (user.go): every protocol packet crosses
//     the kernel/user boundary through a packet-filter port, with
//     optional received-packet batching;
//   - KernelTransport (kernel.go): the protocol machine lives in the
//     kernel, so overhead packets are confined there and a transaction
//     costs each process exactly one system call and one copy
//     (figure 2-3).
package vmtp

import (
	"encoding/binary"
	"errors"

	"repro/internal/ethersim"
	"repro/internal/filter"
)

// Wire format, carried directly over Ethernet type EtherTypeVMTP:
//
//	bytes 0-3   destination port (the demultiplexing key)
//	bytes 4-7   transaction identifier
//	byte  8     kind (request/response)
//	byte  9     flags (unused)
//	bytes 10-11 packet index within the message group
//	bytes 12-13 packet count of the message group
//	bytes 14-17 source port (where to send the reply)
//	bytes 18-19 operation code
//	bytes 20-   data
const HeaderLen = 20

// MaxSeg bounds the data bytes per packet so a VMTP packet fits the
// 3 Mb Ethernet's maximum frame alongside Pup traffic.
const MaxSeg = 512

// Message kinds.
const (
	KindRequest  uint8 = 1
	KindResponse uint8 = 2
)

// Header is the parsed packet header.
type Header struct {
	DstPort uint32
	TransID uint32
	Kind    uint8
	Index   uint16
	Count   uint16
	SrcPort uint32
	Op      uint16
}

// ErrShort reports a packet too short for the VMTP header.
var ErrShort = errors.New("vmtp: truncated packet")

// Marshal encodes a header and segment data into a VMTP packet.
func Marshal(h Header, data []byte) []byte {
	b := make([]byte, HeaderLen+len(data))
	binary.BigEndian.PutUint32(b[0:], h.DstPort)
	binary.BigEndian.PutUint32(b[4:], h.TransID)
	b[8] = h.Kind
	binary.BigEndian.PutUint16(b[10:], h.Index)
	binary.BigEndian.PutUint16(b[12:], h.Count)
	binary.BigEndian.PutUint32(b[14:], h.SrcPort)
	binary.BigEndian.PutUint16(b[18:], h.Op)
	copy(b[HeaderLen:], data)
	return b
}

// Unmarshal parses a VMTP packet; data aliases b.
func Unmarshal(b []byte) (Header, []byte, error) {
	if len(b) < HeaderLen {
		return Header{}, nil, ErrShort
	}
	return Header{
		DstPort: binary.BigEndian.Uint32(b[0:]),
		TransID: binary.BigEndian.Uint32(b[4:]),
		Kind:    b[8],
		Index:   binary.BigEndian.Uint16(b[10:]),
		Count:   binary.BigEndian.Uint16(b[12:]),
		SrcPort: binary.BigEndian.Uint32(b[14:]),
		Op:      binary.BigEndian.Uint16(b[18:]),
	}, b[HeaderLen:], nil
}

// PortFilter builds the packet-filter program selecting VMTP packets
// for one port: destination-port words first (most selective, with
// short-circuit exits), Ethernet type last — the figure 3-9 idiom.
func PortFilter(link ethersim.LinkType, priority uint8, port uint32) filter.Filter {
	hw := link.HeaderWords()
	prog := filter.NewBuilder().
		CANDWordEQ(hw+1, uint16(port)).   // port low word
		CANDWordEQ(hw, uint16(port>>16)). // port high word
		WordEQ(link.TypeWord(), ethersim.EtherTypeVMTP).
		MustProgram()
	return filter.Filter{Priority: priority, Program: prog}
}

// Segments splits a response message into group segments of at most
// MaxSeg bytes; an empty message is one empty segment.
func Segments(data []byte) [][]byte {
	if len(data) == 0 {
		return [][]byte{nil}
	}
	var segs [][]byte
	for len(data) > 0 {
		n := MaxSeg
		if n > len(data) {
			n = len(data)
		}
		segs = append(segs, data[:n])
		data = data[n:]
	}
	return segs
}
