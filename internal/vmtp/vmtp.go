// Package vmtp implements a VMTP-style transaction protocol (Cheriton,
// SIGCOMM '86): a client sends a request message and the server
// returns a response message, possibly segmented into a back-to-back
// packet group; the response acknowledges the request and the next
// request acknowledges the response.
//
// VMTP matters to the paper because it is "the only interesting
// protocol for which there is both a packet-filter based
// implementation and a kernel-resident implementation" (§6.3),
// providing the direct measurement of the cost of user-level
// implementation behind tables 6-2 through 6-5.  This package mirrors
// that arrangement with two interchangeable engines over the same wire
// format:
//
//   - UserClient/UserServer (user.go): every protocol packet crosses
//     the kernel/user boundary through a packet-filter port, with
//     optional received-packet batching;
//   - KernelTransport (kernel.go): the protocol machine lives in the
//     kernel, so overhead packets are confined there and a transaction
//     costs each process exactly one system call and one copy
//     (figure 2-3).
package vmtp

import (
	"encoding/binary"
	"errors"

	"repro/internal/ethersim"
	"repro/internal/filter"
)

// Wire format, carried directly over Ethernet type EtherTypeVMTP:
//
//	bytes 0-3   destination port (the demultiplexing key)
//	bytes 4-7   transaction identifier
//	byte  8     kind (request/response)
//	byte  9     flags (FlagChecksum)
//	bytes 10-11 packet index within the message group
//	bytes 12-13 packet count of the message group
//	bytes 14-17 source port (where to send the reply)
//	bytes 18-19 operation code
//	bytes 20-   data, optionally followed by a 2-byte checksum
//	            trailer when FlagChecksum is set
const HeaderLen = 20

// FlagChecksum marks a packet carrying the 16-bit ones'-complement
// checksum trailer over header and data.  The paper-era endpoints did
// not checksum; hostile-network runs turn it on so corruption is
// always caught rather than delivered.
const FlagChecksum uint8 = 0x01

// MaxSeg bounds the data bytes per packet so a VMTP packet fits the
// 3 Mb Ethernet's maximum frame alongside Pup traffic.
const MaxSeg = 512

// Message kinds.
const (
	KindRequest  uint8 = 1
	KindResponse uint8 = 2
)

// Header is the parsed packet header.
type Header struct {
	DstPort uint32
	TransID uint32
	Kind    uint8
	Flags   uint8
	Index   uint16
	Count   uint16
	SrcPort uint32
	Op      uint16
}

// Errors returned by Unmarshal.
var (
	// ErrShort reports a packet too short for the VMTP header.
	ErrShort = errors.New("vmtp: truncated packet")
	// ErrChecksum reports a checksummed packet whose trailer does
	// not match its contents.
	ErrChecksum = errors.New("vmtp: bad checksum")
)

// checksum is the 16-bit ones'-complement sum over b (odd trailing
// byte padded with zero), complemented — the classic internet sum.
func checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i:]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum > 0xFFFF {
		sum = sum&0xFFFF + sum>>16
	}
	return ^uint16(sum)
}

// Marshal encodes a header and segment data into a VMTP packet; with
// FlagChecksum set in h.Flags, a 2-byte checksum trailer over header
// and data is appended.
func Marshal(h Header, data []byte) []byte {
	n := HeaderLen + len(data)
	if h.Flags&FlagChecksum != 0 {
		n += 2
	}
	b := make([]byte, n)
	binary.BigEndian.PutUint32(b[0:], h.DstPort)
	binary.BigEndian.PutUint32(b[4:], h.TransID)
	b[8] = h.Kind
	b[9] = h.Flags
	binary.BigEndian.PutUint16(b[10:], h.Index)
	binary.BigEndian.PutUint16(b[12:], h.Count)
	binary.BigEndian.PutUint32(b[14:], h.SrcPort)
	binary.BigEndian.PutUint16(b[18:], h.Op)
	copy(b[HeaderLen:], data)
	if h.Flags&FlagChecksum != 0 {
		binary.BigEndian.PutUint16(b[n-2:], checksum(b[:n-2]))
	}
	return b
}

// Unmarshal parses a VMTP packet, verifying the checksum trailer when
// the packet carries one; data aliases b.
func Unmarshal(b []byte) (Header, []byte, error) {
	if len(b) < HeaderLen {
		return Header{}, nil, ErrShort
	}
	h := Header{
		DstPort: binary.BigEndian.Uint32(b[0:]),
		TransID: binary.BigEndian.Uint32(b[4:]),
		Kind:    b[8],
		Flags:   b[9],
		Index:   binary.BigEndian.Uint16(b[10:]),
		Count:   binary.BigEndian.Uint16(b[12:]),
		SrcPort: binary.BigEndian.Uint32(b[14:]),
		Op:      binary.BigEndian.Uint16(b[18:]),
	}
	data := b[HeaderLen:]
	if h.Flags&FlagChecksum != 0 {
		if len(b) < HeaderLen+2 {
			return Header{}, nil, ErrShort
		}
		if binary.BigEndian.Uint16(b[len(b)-2:]) != checksum(b[:len(b)-2]) {
			return Header{}, nil, ErrChecksum
		}
		data = b[HeaderLen : len(b)-2]
	}
	return h, data, nil
}

// PortFilter builds the packet-filter program selecting VMTP packets
// for one port: destination-port words first (most selective, with
// short-circuit exits), Ethernet type last — the figure 3-9 idiom.
func PortFilter(link ethersim.LinkType, priority uint8, port uint32) filter.Filter {
	hw := link.HeaderWords()
	prog := filter.NewBuilder().
		CANDWordEQ(hw+1, uint16(port)).   // port low word
		CANDWordEQ(hw, uint16(port>>16)). // port high word
		WordEQ(link.TypeWord(), ethersim.EtherTypeVMTP).
		MustProgram()
	return filter.Filter{Priority: priority, Program: prog}
}

// Segments splits a response message into group segments of at most
// MaxSeg bytes; an empty message is one empty segment.
func Segments(data []byte) [][]byte {
	if len(data) == 0 {
		return [][]byte{nil}
	}
	var segs [][]byte
	for len(data) > 0 {
		n := MaxSeg
		if n > len(data) {
			n = len(data)
		}
		segs = append(segs, data[:n])
		data = data[n:]
	}
	return segs
}
