package vmtp

import (
	"time"

	"repro/internal/ethersim"
	"repro/internal/sim"
)

// The kernel-resident VMTP engine.  The protocol machine — packet
// send/receive, message-group segmentation and reassembly, duplicate
// suppression — runs entirely in kernel context, so "a kernel-resident
// implementation confines these overhead packets to the kernel and
// greatly reduces domain crossing" (figure 2-3): a process pays one
// system call and one data copy per request and per response message,
// never per packet.

// KernelConfig tunes the kernel engine.
type KernelConfig struct {
	// RecvCost and SendCost are the kernel protocol processing
	// charged per packet received/sent, beyond driver costs.  The
	// defaults land kernel VMTP near the measured 4.3BSD numbers
	// (§6.1's 1.77 ms total receive cost, table 6-2's 7.44 ms
	// minimal transaction).
	RecvCost time.Duration
	SendCost time.Duration
	// RTO is the client retransmission timeout.
	RTO time.Duration
}

// DefaultKernelConfig returns the calibrated defaults.
func DefaultKernelConfig() KernelConfig {
	return KernelConfig{
		RecvCost: 650 * time.Microsecond,
		SendCost: 450 * time.Microsecond,
		RTO:      100 * time.Millisecond,
	}
}

// KernelTransport is one host's kernel-resident VMTP engine.  It
// implements pfdev.KernelProtocol so it can claim VMTP frames ahead of
// the packet filter (chain it with the inet stack via pfdev.Chain).
type KernelTransport struct {
	host *sim.Host
	nic  *ethersim.NIC
	link ethersim.LinkType
	cfg  KernelConfig

	nextID uint32
	calls  map[uint32]*kcall
	svcs   map[uint32]*KernelService
}

type kcall struct {
	id    uint32
	segs  map[uint16][]byte
	count uint16
	done  bool
	wait  *sim.WaitQ
}

// KernelService is a server port managed by the kernel; the server
// process blocks in GetRequest and answers with Respond.
type KernelService struct {
	kt   *KernelTransport
	port uint32

	queue   []kreq
	waiters *sim.WaitQ

	lastID   uint32
	lastFrom ethersim.Addr
	lastResp []byte
	lastPort uint32
}

type kreq struct {
	id      uint32
	op      uint16
	data    []byte
	from    ethersim.Addr
	srcPort uint32
}

// AttachKernel creates the kernel VMTP engine on a NIC.
func AttachKernel(nic *ethersim.NIC, cfg KernelConfig) *KernelTransport {
	if cfg.RecvCost == 0 && cfg.SendCost == 0 && cfg.RTO == 0 {
		cfg = DefaultKernelConfig()
	}
	if cfg.RTO <= 0 {
		cfg.RTO = 100 * time.Millisecond
	}
	return &KernelTransport{
		host: nic.Host(), nic: nic, link: nic.Network().Link(), cfg: cfg,
		calls: make(map[uint32]*kcall),
		svcs:  make(map[uint32]*KernelService),
	}
}

// Claim implements pfdev.KernelProtocol for VMTP frames.  Only
// traffic for kernel-registered ports and pending kernel calls is
// claimed; anything else falls through to the packet filter, so the
// kernel and user-level implementations coexist on one machine ("the
// packet filter coexists with kernel-resident protocol
// implementations", §6).
func (kt *KernelTransport) Claim(frame []byte) bool {
	_, src, etherType, payload, err := kt.link.Decode(frame)
	if err != nil || etherType != ethersim.EtherTypeVMTP {
		return false
	}
	h, data, err := Unmarshal(payload)
	if err != nil {
		return false
	}
	switch h.Kind {
	case KindResponse:
		if kt.calls[h.TransID] == nil {
			return false
		}
	case KindRequest:
		if kt.svcs[h.DstPort] == nil {
			return false
		}
	default:
		return false
	}
	own := append([]byte(nil), data...)
	kt.host.RunKernel("vmtp", kt.cfg.RecvCost, func() {
		kt.input(h, own, src)
	})
	return true
}

// input dispatches one packet in kernel context.
func (kt *KernelTransport) input(h Header, data []byte, from ethersim.Addr) {
	switch h.Kind {
	case KindResponse:
		c := kt.calls[h.TransID]
		if c == nil || c.done {
			return
		}
		if _, dup := c.segs[h.Index]; !dup {
			c.segs[h.Index] = data
		}
		c.count = h.Count
		if len(c.segs) == int(c.count) {
			c.done = true
			c.wait.WakeAll(kt.host)
		}
	case KindRequest:
		svc := kt.svcs[h.DstPort]
		if svc == nil {
			return
		}
		if h.TransID == svc.lastID && from == svc.lastFrom {
			// Duplicate of the last answered transaction: the
			// kernel replays the response without waking the
			// server ("duplicate packets" stay in the kernel).
			kt.sendGroup(from, svc.lastPort, svc.lastID, svc.lastResp)
			return
		}
		svc.queue = append(svc.queue, kreq{
			id: h.TransID, op: h.Op, data: data, from: from, srcPort: h.SrcPort,
		})
		svc.waiters.WakeOne(kt.host)
	}
}

// sendPacket transmits one VMTP packet from kernel context, charging
// the per-packet send cost.
func (kt *KernelTransport) sendPacket(dst ethersim.Addr, h Header, data []byte) {
	frame := kt.link.Encode(dst, kt.nic.Addr(), ethersim.EtherTypeVMTP, Marshal(h, data))
	kt.host.RunKernel("vmtp", kt.cfg.SendCost, func() {
		kt.nic.Transmit(frame)
	})
}

// sendGroup transmits a whole response message group.
func (kt *KernelTransport) sendGroup(dst ethersim.Addr, dstPort, id uint32, resp []byte) {
	segs := Segments(resp)
	for i, seg := range segs {
		kt.sendPacket(dst, Header{
			DstPort: dstPort, TransID: id, Kind: KindResponse,
			Index: uint16(i), Count: uint16(len(segs)),
		}, seg)
	}
}

// Call performs one transaction through the kernel engine: one system
// call and one copy in each direction, however many packets the
// response takes.
func (kt *KernelTransport) Call(p *sim.Proc, server ethersim.Addr, serverPort uint32, op uint16, req []byte, clientPort uint32) ([]byte, error) {
	p.Syscall("vmtp")
	p.CopyIn("vmtp", len(req))

	kt.nextID++
	id := kt.nextID
	c := &kcall{id: id, segs: make(map[uint16][]byte), wait: kt.host.Sim().NewWaitQ()}
	kt.calls[id] = c
	defer delete(kt.calls, id)

	h := Header{DstPort: serverPort, TransID: id, Kind: KindRequest, Count: 1, Op: op, SrcPort: clientPort}
	kt.sendPacket(server, h, req)

	for tries := 0; !c.done; tries++ {
		if tries >= 10 {
			return nil, ErrCallTimeout
		}
		if !p.Wait(c.wait, kt.cfg.RTO) && !c.done {
			// Kernel-driven retransmission would not wake the
			// process; the extra system call models the
			// timer-driven retry path.
			kt.sendPacket(server, h, req)
		}
	}
	out := make([]byte, 0, int(c.count)*MaxSeg)
	for i := uint16(0); i < c.count; i++ {
		out = append(out, c.segs[i]...)
	}
	p.CopyOut("vmtp", len(out))
	return out, nil
}

// Register creates a kernel-managed service port.  Process context.
func (kt *KernelTransport) Register(p *sim.Proc, port uint32) *KernelService {
	p.Syscall("vmtp")
	svc := &KernelService{kt: kt, port: port, waiters: kt.host.Sim().NewWaitQ()}
	kt.svcs[port] = svc
	return svc
}

// Request is one incoming transaction as seen by the server process.
type Request struct {
	ID      uint32
	Op      uint16
	Data    []byte
	From    ethersim.Addr
	SrcPort uint32
}

// GetRequest blocks for the next transaction (one syscall, one copy).
func (s *KernelService) GetRequest(p *sim.Proc, idle time.Duration) (Request, bool) {
	p.Syscall("vmtp")
	for len(s.queue) == 0 {
		if !p.Wait(s.waiters, idle) {
			return Request{}, false
		}
	}
	r := s.queue[0]
	s.queue = s.queue[1:]
	p.CopyOut("vmtp", len(r.data))
	return Request{ID: r.id, Op: r.op, Data: r.data, From: r.from, SrcPort: r.srcPort}, true
}

// Respond sends the response message (one syscall, one copy; the
// kernel segments it into the packet group).
func (s *KernelService) Respond(p *sim.Proc, req Request, resp []byte) {
	p.Syscall("vmtp")
	p.CopyIn("vmtp", len(resp))
	s.lastID, s.lastFrom, s.lastResp, s.lastPort = req.ID, req.From, resp, req.SrcPort
	s.kt.sendGroup(req.From, req.SrcPort, req.ID, resp)
}

// Serve runs a request loop until idle; it returns the count served.
func (s *KernelService) Serve(p *sim.Proc, handler Handler, idle time.Duration) int {
	served := 0
	for {
		req, ok := s.GetRequest(p, idle)
		if !ok {
			return served
		}
		s.Respond(p, req, handler(req.Op, req.Data))
		served++
	}
}
