package vmtp

import (
	"bytes"
	"testing"
)

// Native fuzz target for the VMTP wire format: arbitrary bytes must
// never panic Unmarshal, and checksummed packets must round-trip.

func FuzzVMTPUnmarshal(f *testing.F) {
	f.Add(Marshal(Header{DstPort: 800, TransID: 1, Kind: KindRequest,
		Count: 1, Op: 7, Flags: FlagChecksum}, []byte("req")))
	f.Add(Marshal(Header{DstPort: 800, TransID: 1, Kind: KindResponse, Count: 1}, nil))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, HeaderLen))

	f.Fuzz(func(t *testing.T, b []byte) {
		h, data, err := Unmarshal(b) // must not panic
		if err != nil {
			return
		}
		// Whatever parses must survive a marshal/unmarshal round trip.
		h2, data2, err := Unmarshal(Marshal(h, data))
		if err != nil {
			t.Fatalf("re-parse of re-marshaled packet failed: %v", err)
		}
		if h2 != h || !bytes.Equal(data2, data) {
			t.Fatalf("round trip changed the packet: %+v vs %+v", h, h2)
		}
	})
}

// TestVMTPBitFlipNeverSurvives mirrors the Pup bit-flip contract for
// checksummed VMTP packets.  The only flips that parse cleanly are the
// ones that clear FlagChecksum itself — those yield a visibly
// unchecksummed packet, which Checksummed endpoints discard (see
// UserEndpoint.recv).
func TestVMTPBitFlipNeverSurvives(t *testing.T) {
	data := make([]byte, 80)
	for i := range data {
		data[i] = byte(i * 5)
	}
	h := Header{DstPort: 800, TransID: 42, Kind: KindRequest, Count: 1,
		SrcPort: 801, Op: 3, Flags: FlagChecksum}
	wire := Marshal(h, data)
	for bit := 0; bit < len(wire)*8; bit++ {
		flipped := append([]byte(nil), wire...)
		flipped[bit/8] ^= 1 << (bit % 8)
		fh, _, err := Unmarshal(flipped)
		if err != nil {
			continue // caught by the checksum trailer
		}
		if fh.Flags&FlagChecksum == 0 {
			continue // flip cleared the flag: visibly unchecksummed, endpoints drop it
		}
		t.Fatalf("bit flip at %d (byte %d) survived Unmarshal", bit, bit/8)
	}
}
