package vmtp

import (
	"errors"
	"time"

	"repro/internal/backoff"
	"repro/internal/ethersim"
	"repro/internal/pfdev"
	"repro/internal/sim"
	"repro/internal/trace"
)

// The user-level VMTP engine: "the first implementation used the
// packet filter.  The user-level implementation allowed rapid
// development of the protocol specification through experimentation
// with easily-modified code" (§5.2).  Every packet of every message
// group crosses into user space through a packet-filter port.

// UserConfig tunes the user-level engine.
type UserConfig struct {
	// Batch enables received-packet batching (tables 6-4/6-9):
	// one read system call returns every queued packet.
	Batch bool
	// RTO is the client's initial retransmission timeout;
	// consecutive timeouts back off exponentially up to MaxRTO.
	RTO time.Duration
	// MaxRTO caps the backed-off timeout (default 8×RTO).
	MaxRTO time.Duration
	// PerPacketCPU is the user-mode protocol processing charged per
	// packet sent or received (header crunching, reassembly).
	PerPacketCPU time.Duration
	// Priority is the filter priority for the port.
	Priority uint8
	// Checksummed adds the FlagChecksum trailer to outgoing packets
	// and discards incoming packets that lack it or fail it — the
	// hostile-network mode where corruption must never reach the
	// application.
	Checksummed bool
}

// DefaultUserConfig returns the configuration used by the benchmarks.
// PerPacketCPU is calibrated from the paper's own measurements: the
// user-level VMTP moved bulk data at 112 KB/s, i.e. ~4.5 ms of total
// cost per 512-byte packet, of which the kernel path accounts for
// under 2 ms — the remainder is user-mode protocol processing.
func DefaultUserConfig() UserConfig {
	return UserConfig{RTO: 100 * time.Millisecond, PerPacketCPU: 2000 * time.Microsecond, Priority: 10}
}

// UserEndpoint is a user-level VMTP endpoint (client or server side)
// bound to a packet-filter port.
type UserEndpoint struct {
	Port *pfdev.Port
	dev  *pfdev.Device
	link ethersim.LinkType
	port uint32
	cfg  UserConfig

	nextID  uint32
	pending []pfdev.Packet

	// Retransmissions counts client request retries.
	Retransmissions int
	// Rebinds counts recoveries from a port lost to a host crash.
	Rebinds int
	// Stats accumulates the endpoint's accounting.
	Stats UserStats
}

// UserStats is the user-level endpoint's accounting block.
type UserStats struct {
	Calls           int // transactions attempted
	Attempts        int // request transmissions including retransmits
	Retransmissions int // timeouts that forced a retransmit
	ChecksumDrops   int // received packets discarded as corrupt/unchecksummed
}

// NewUserEndpoint opens a VMTP port on the device.  Process context.
func NewUserEndpoint(p *sim.Proc, dev *pfdev.Device, port uint32, cfg UserConfig) (*UserEndpoint, error) {
	if cfg.RTO <= 0 {
		cfg.RTO = 100 * time.Millisecond
	}
	if cfg.MaxRTO <= 0 {
		cfg.MaxRTO = 8 * cfg.RTO
	}
	pf := dev.Open(p)
	link := dev.NIC().Network().Link()
	if err := pf.SetFilter(p, PortFilter(link, cfg.Priority, port)); err != nil {
		return nil, err
	}
	pf.SetQueueLimit(p, 64)
	return &UserEndpoint{Port: pf, dev: dev, link: link, port: port, cfg: cfg}, nil
}

// ErrCallTimeout reports a transaction abandoned after retries.
var ErrCallTimeout = errors.New("vmtp: call timed out")

// reopen re-binds the endpoint's packet-filter port after a host
// crash closed it; queued packets died with the kernel and the caller
// must re-set its timeout.
func (e *UserEndpoint) reopen(p *sim.Proc) error {
	pf := e.dev.Open(p)
	if err := pf.SetFilter(p, PortFilter(e.link, e.cfg.Priority, e.port)); err != nil {
		pf.Close(p)
		return err
	}
	pf.SetQueueLimit(p, 64)
	e.Port = pf
	e.pending = nil
	e.Rebinds++
	return nil
}

// send transmits one VMTP packet.
func (e *UserEndpoint) send(p *sim.Proc, dstHW ethersim.Addr, h Header, data []byte) error {
	if e.cfg.PerPacketCPU > 0 {
		p.Consume(e.cfg.PerPacketCPU)
	}
	h.SrcPort = e.port
	if e.cfg.Checksummed {
		h.Flags |= FlagChecksum
	}
	frame := e.link.Encode(dstHW, e.dev.NIC().Addr(), ethersim.EtherTypeVMTP, Marshal(h, data))
	return e.Port.Write(p, frame)
}

// recv returns the next VMTP packet for this port, honouring batching.
func (e *UserEndpoint) recv(p *sim.Proc) (Header, []byte, ethersim.Addr, error) {
	for {
		var raw pfdev.Packet
		if len(e.pending) > 0 {
			raw = e.pending[0]
			e.pending = e.pending[1:]
		} else if e.cfg.Batch {
			batch, err := e.Port.ReadBatch(p)
			if err != nil {
				return Header{}, nil, 0, err
			}
			e.pending = batch
			continue
		} else {
			var err error
			raw, err = e.Port.Read(p)
			if err != nil {
				return Header{}, nil, 0, err
			}
		}
		if e.cfg.PerPacketCPU > 0 {
			p.Consume(e.cfg.PerPacketCPU)
		}
		_, src, _, payload, err := e.link.Decode(raw.Data)
		if err != nil {
			e.spanChecksumDrop(raw)
			continue
		}
		h, data, err := Unmarshal(payload)
		if err != nil {
			// Corruption surfaced as a checksum/format error: the
			// packet is dropped and end-to-end retransmission
			// recovers, exactly like a lost frame.
			e.Stats.ChecksumDrops++
			e.spanChecksumDrop(raw)
			continue
		}
		if e.cfg.Checksummed && h.Flags&FlagChecksum == 0 {
			// In checksummed deployments an unflagged packet is
			// corrupt by definition (a flip can clear the flag bit
			// itself); trusting it would let corruption through.
			e.Stats.ChecksumDrops++
			e.spanChecksumDrop(raw)
			continue
		}
		return h, data, src, nil
	}
}

// spanChecksumDrop records a user-level corruption discard in the drop
// taxonomy as a born-dead child of the delivered packet's span.
func (e *UserEndpoint) spanChecksumDrop(raw pfdev.Packet) {
	host := e.dev.Host()
	host.Sim().Tracer().SpanUserDrop(raw.Span(), host.Clock().Now(), host.Name(), trace.DropChecksum)
}

// Call performs one transaction: send the request, collect the
// response group, retransmitting the (idempotent) request on timeout.
func (e *UserEndpoint) Call(p *sim.Proc, server ethersim.Addr, serverPort uint32, op uint16, req []byte) ([]byte, error) {
	e.nextID++
	id := e.nextID
	e.Stats.Calls++
	pol := backoff.Policy{Base: e.cfg.RTO, Cap: e.cfg.MaxRTO}
	e.Port.SetTimeout(p, pol.Delay(0))

	h := Header{DstPort: serverPort, TransID: id, Kind: KindRequest, Count: 1, Op: op}
	// xmit sends the request, recovering from a port lost to a host
	// crash (Write fails with ErrClosed just like Read does when the
	// machine died mid-transaction) by re-binding and sending again.
	xmit := func(tries int) error {
		e.Stats.Attempts++
		err := e.send(p, server, h, req)
		if err == pfdev.ErrClosed {
			if err := e.reopen(p); err != nil {
				return err
			}
			e.Port.SetTimeout(p, pol.Delay(tries))
			err = e.send(p, server, h, req)
		}
		return err
	}
	if err := xmit(0); err != nil {
		return nil, err
	}

	segs := make(map[uint16][]byte)
	var count uint16
	for tries := 0; tries < 10; {
		rh, data, _, err := e.recv(p)
		if err == pfdev.ErrClosed {
			// Our kernel rebooted mid-transaction: re-bind the port
			// and retransmit the (idempotent) request.
			if err := e.reopen(p); err != nil {
				return nil, err
			}
			e.Port.SetTimeout(p, pol.Delay(tries))
			if err := xmit(tries); err != nil {
				return nil, err
			}
			continue
		}
		if err == pfdev.ErrTimeout {
			tries++
			e.Retransmissions++
			e.Stats.Retransmissions++
			e.Port.SetTimeout(p, pol.Delay(tries))
			if err := xmit(tries); err != nil {
				return nil, err
			}
			continue
		}
		if err != nil {
			return nil, err
		}
		if rh.Kind != KindResponse || rh.TransID != id {
			continue // stale response from an earlier transaction
		}
		if _, dup := segs[rh.Index]; !dup {
			segs[rh.Index] = append([]byte(nil), data...)
		}
		count = rh.Count
		if len(segs) == int(count) {
			out := make([]byte, 0, int(count)*MaxSeg)
			for i := uint16(0); i < count; i++ {
				out = append(out, segs[i]...)
			}
			return out, nil
		}
	}
	return nil, ErrCallTimeout
}

// Handler computes a response message for a request.
type Handler func(op uint16, req []byte) []byte

// Serve answers transactions until the idle timeout expires; it
// returns the number served.  Duplicate requests for the transaction
// just answered are replied to again (the response may have been
// lost).
func (e *UserEndpoint) Serve(p *sim.Proc, handler Handler, idle time.Duration) int {
	served := 0
	e.Port.SetTimeout(p, idle)
	var lastID uint32
	var lastFrom ethersim.Addr
	var lastResp []byte
	var lastPort uint32
	for {
		h, req, src, err := e.recv(p)
		if err == pfdev.ErrClosed {
			// A host crash closed the port under the server: re-bind
			// the filter and keep serving, like §5.1's long-running
			// services surviving a reboot.
			if e.reopen(p) != nil {
				return served
			}
			e.Port.SetTimeout(p, idle)
			continue
		}
		if err != nil {
			return served
		}
		if h.Kind != KindRequest {
			continue
		}
		if h.TransID == lastID && src == lastFrom {
			e.respond(p, src, lastPort, lastID, lastResp)
			continue
		}
		resp := handler(h.Op, req)
		e.respond(p, src, h.SrcPort, h.TransID, resp)
		lastID, lastFrom, lastResp, lastPort = h.TransID, src, resp, h.SrcPort
		served++
	}
}

func (e *UserEndpoint) respond(p *sim.Proc, dst ethersim.Addr, dstPort, id uint32, resp []byte) {
	segs := Segments(resp)
	for i, seg := range segs {
		h := Header{
			DstPort: dstPort, TransID: id, Kind: KindResponse,
			Index: uint16(i), Count: uint16(len(segs)),
		}
		if e.send(p, dst, h, seg) != nil {
			return
		}
	}
}

// Close releases the port.
func (e *UserEndpoint) Close(p *sim.Proc) { e.Port.Close(p) }
