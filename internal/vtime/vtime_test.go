package vtime

import (
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func TestDefaultCostsMatchPaperCalibration(t *testing.T) {
	c := DefaultCosts()
	// The constants the paper states directly.
	if c.CtxSwitch != 400*Microsecond {
		t.Errorf("CtxSwitch = %v, §6.5.2 says ~0.4 mSec", c.CtxSwitch)
	}
	if c.CopyPerKB != 1000*Microsecond {
		t.Errorf("CopyPerKB = %v, §6.5.2 says ~1 mSec/KB", c.CopyPerKB)
	}
	// "about 0.5 mSec of CPU time to transfer a short packet": a
	// 128-byte copy must land near that.
	short := c.Copy(128)
	if short < 400*Microsecond || short > 600*Microsecond {
		t.Errorf("Copy(128) = %v, want ~0.5 mSec", short)
	}
	// Table 6-10's slope: ~28.6 µs per filter instruction.
	if c.FilterInstr < 25*Microsecond || c.FilterInstr > 32*Microsecond {
		t.Errorf("FilterInstr = %v, want ~28.6 µSec", c.FilterInstr)
	}
	// §6.1: kernel IP input 0.49 mSec, full transport path 1.77.
	if c.IPInput != 490*Microsecond {
		t.Errorf("IPInput = %v", c.IPInput)
	}
	if got := c.IPInput + c.TransportInput; got != 1770*Microsecond {
		t.Errorf("IP+transport = %v, want 1.77 mSec", got)
	}
	// §7: microtime ~70 µs.
	if c.Timestamp != 70*Microsecond {
		t.Errorf("Timestamp = %v", c.Timestamp)
	}
}

// TestDefaultCostsPinnedExhaustively pins every field of the default
// cost model.  Every benchmark table and every golden trace hash is a
// function of these values, so a calibration drift anywhere must fail
// loudly here, with the paper's justification next to the number.  The
// reflect pass makes the table self-maintaining: adding a Costs field
// without pinning it (or pinning a field that no longer exists) fails.
func TestDefaultCostsPinnedExhaustively(t *testing.T) {
	want := map[string]time.Duration{
		"CtxSwitch":      400 * Microsecond,  // §6.5.2: ~0.4 mSec per process switch
		"Syscall":        150 * Microsecond,  // tuned: zero-instr batched recv = 1.9 mSec (t6-10)
		"CopyFixed":      370 * Microsecond,  // §6.5.2: short-packet transfer ~0.5 mSec incl. per-byte part
		"CopyPerKB":      1000 * Microsecond, // §6.5.2: copying ~1 mSec/KB
		"FilterInstr":    28 * Microsecond,   // table 6-10 slope ~28.6 µSec/instruction
		"FilterApply":    60 * Microsecond,   // §6.1: fixed share of 0.122 mSec/predicate
		"DriverRecv":     250 * Microsecond,  // driver interrupt service per frame
		"DriverSend":     200 * Microsecond,  // driver transmit path per frame
		"DriverPoll":     80 * Microsecond,   // marginal frame in a coalesced burst
		"PfInput":        550 * Microsecond,  // §6.1: pf module share of the 0.8 mSec fixed term
		"PfPoll":         180 * Microsecond,  // marginal pf cost per coalesced packet
		"IPInput":        490 * Microsecond,  // §6.1: kernel IP input 0.49 mSec
		"TransportInput": 1280 * Microsecond, // §6.1: IP+transport = 1.77 mSec
		"IPOutput":       600 * Microsecond,  // kernel IP output path
		"ChecksumPerKB":  450 * Microsecond,  // software checksum per KB
		"Pipe":           300 * Microsecond,  // pipe transfer per message
		"Timestamp":      70 * Microsecond,   // §7: microtime ~70 µSec
		"Wakeup":         50 * Microsecond,   // making a blocked process runnable
		"MapSetup":       500 * Microsecond,  // one-time shared-segment mapping
		"MapPerKB":       80 * Microsecond,   // per-KB page-table share of the mapping
		"RingDesc":       12 * Microsecond,   // ring descriptor publish/reap
		"Steer":          6 * Microsecond,    // RSS hash: a few header loads + mixes, « FilterInstr
		"XQDeliver":      35 * Microsecond,   // cross-queue port handoff between kernel threads
	}
	c := DefaultCosts()
	v := reflect.ValueOf(c)
	typ := v.Type()
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		w, ok := want[name]
		if !ok {
			t.Errorf("Costs field %s has no pinned default — add it to this table", name)
			continue
		}
		if got := v.Field(i).Interface().(time.Duration); got != w {
			t.Errorf("%s = %v, want %v", name, got, w)
		}
	}
	for name := range want {
		if _, ok := typ.FieldByName(name); !ok {
			t.Errorf("pinned field %s no longer exists in Costs", name)
		}
	}
}

func TestCopyScalesLinearly(t *testing.T) {
	c := DefaultCosts()
	if c.Copy(0) != c.CopyFixed {
		t.Error("Copy(0) != CopyFixed")
	}
	if got := c.Copy(2048) - c.Copy(1024); got != c.CopyPerKB {
		t.Errorf("per-KB increment = %v", got)
	}
	if c.Checksum(1024) != c.ChecksumPerKB {
		t.Errorf("Checksum(1KB) = %v", c.Checksum(1024))
	}
	if c.Checksum(0) != 0 {
		t.Error("Checksum(0) != 0")
	}
}

func TestZeroCostsChargeNothing(t *testing.T) {
	var c Costs
	if c.Copy(4096) != 0 || c.Checksum(4096) != 0 {
		t.Error("zero Costs charged time")
	}
}

func TestCountersAddSubInverse(t *testing.T) {
	f := func(a1, a2, b1, b2 uint64) bool {
		a := Counters{Syscalls: a1, Copies: a2, PacketsIn: a1 ^ a2}
		b := Counters{Syscalls: b1, Copies: b2, FilterInstrs: b1 & b2}
		sum := a
		sum.Add(b)
		return sum.Sub(b) == a && sum.Sub(a) == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestCountersRoundTripAllFields is the whole-struct generalization of
// the inverse property: for randomly generated counter sets, adding and
// then subtracting either operand recovers the other exactly, across
// every field at once (modular arithmetic makes this hold even at the
// uint64 extremes quick generates).
func TestCountersRoundTripAllFields(t *testing.T) {
	f := func(a, b Counters) bool {
		sum := a
		sum.Add(b)
		return sum.Sub(b) == a && sum.Sub(a) == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCountersSubAllFields(t *testing.T) {
	a := Counters{
		ContextSwitches: 10, Syscalls: 9, DomainCrossings: 8, Copies: 7,
		BytesCopied: 6, Wakeups: 5, PacketsIn: 4, PacketsOut: 3,
		FilterApplied: 2, FilterInstrs: 1, PacketsMatched: 11, PacketsDropped: 12,
	}
	z := a.Sub(a)
	if z != (Counters{}) {
		t.Fatalf("a-a = %+v", z)
	}
}

func TestUnitAliases(t *testing.T) {
	if Microsecond != time.Microsecond || Millisecond != time.Millisecond || Second != time.Second {
		t.Fatal("unit aliases drifted")
	}
}
