// Package vtime defines the virtual-time cost model used by the
// simulated kernel in this reproduction of "The Packet Filter: An
// Efficient Mechanism for User-level Network Code" (Mogul, Rashid &
// Accetta, SOSP 1987).
//
// The paper's evaluation ran on VAX-11/780 and MicroVAX-II processors
// under 4.2/4.3BSD.  We obviously cannot re-run on that hardware, so
// the simulator charges virtual time for each primitive operation
// (context switch, system call, kernel/user data copy, filter
// instruction, protocol-layer processing) using constants calibrated
// to the measurements the paper itself reports:
//
//   - a context switch costs about 0.4 ms (paper §6.5.2),
//   - moving a short packet between kernel and process costs about
//     0.5 ms, and copying costs about 1 ms per kilobyte (§6.5.2),
//   - one filter instruction costs about (2.5ms-1.9ms)/21 ≈ 28.6 µs
//     (table 6-10),
//   - receiving an average packet through the kernel IP layer costs
//     about 0.49 ms, and through IP+TCP/UDP about 1.77 ms (§6.1).
//
// Absolute values therefore track a mid-1980s VAX; what the benchmarks
// in this repository validate is the *shape* of the results (ratios,
// crossover points), which is hardware-independent.
package vtime

import "time"

// Convenience units for the millisecond-scale world of the paper.
const (
	Microsecond = time.Microsecond
	Millisecond = time.Millisecond
	Second      = time.Second
)

// Costs is the set of virtual-time cost constants used by the
// simulator.  A zero Costs charges nothing for anything, which is
// occasionally useful in unit tests; simulations normally start from
// DefaultCosts.
type Costs struct {
	// CtxSwitch is charged whenever the CPU of a simulated host
	// passes from one process to a different process (§6.5.2:
	// "about 0.4 mSec of CPU time to switch between processes").
	CtxSwitch time.Duration

	// Syscall is charged for every kernel entry+exit by a process
	// (read, write, ioctl, ...).  The paper does not report this
	// number directly; it is tuned so that a zero-instruction
	// batched packet-filter receive lands at table 6-10's
	// 1.9 ms/packet.
	Syscall time.Duration

	// CopyFixed and CopyPerKB model moving data between kernel and
	// user space: cost = CopyFixed + bytes * CopyPerKB / 1024.
	// §6.5.2: "about 0.5 mSec of CPU time to transfer a short packet
	// between the kernel and a process" and "data copying requires
	// about 1 mSec/Kbyte".
	CopyFixed time.Duration
	CopyPerKB time.Duration

	// FilterInstr is the cost of interpreting one packet-filter
	// instruction word (table 6-10).
	FilterInstr time.Duration

	// FilterApply is the fixed per-filter cost of starting the
	// interpreter on one filter (stack setup, bookkeeping).  §6.1
	// fits per-packet cost as 0.8 ms + 0.122 ms per predicate
	// tested; a "typical" predicate is a handful of instructions,
	// so the fixed part of the 0.122 ms is roughly half.
	FilterApply time.Duration

	// DriverRecv and DriverSend are the fixed network-interface
	// driver costs per received/transmitted frame (interrupt
	// service, buffer bookkeeping).
	DriverRecv time.Duration
	DriverSend time.Duration

	// DriverPoll is the marginal driver cost per additional frame in
	// a coalesced receive burst: the first frame of a burst pays the
	// full DriverRecv (interrupt service, register save/restore),
	// each further frame only the buffer handoff.  The paper has no
	// number for this — interrupt coalescing is the counterfactual
	// modern stacks answer §6's fixed-overhead problem with — so it
	// is set to the share of DriverRecv that is per-frame work rather
	// than per-interrupt work.
	DriverPoll time.Duration

	// PfInput is the fixed packet-filter-module cost per received
	// packet beyond filter evaluation: buffer bookkeeping, header
	// restoration (§7: "the packet filter may be spending a
	// significant amount of time to restore these headers"),
	// queueing and reader wakeup.  §6.1's fit has a fixed term of
	// 0.8 ms per packet, of which the driver cost above accounts
	// for the rest.
	PfInput time.Duration

	// PfPoll is the marginal packet-filter-module cost per
	// additional packet in a coalesced burst: buffer bookkeeping and
	// queueing without repeating the per-entry setup that PfInput
	// includes.  Like DriverPoll it is a counterfactual knob, set to
	// the non-fixed share of PfInput.
	PfPoll time.Duration

	// IPInput is the kernel IP-layer cost per received packet
	// (§6.1: "the IP layer processing ... about 0.49 mSec").
	IPInput time.Duration

	// TransportInput is the additional kernel TCP/UDP cost per
	// received packet above IP (§6.1: 1.77 ms total - 0.49 ms IP).
	TransportInput time.Duration

	// IPOutput is the kernel cost to send a datagram, including
	// route selection (§6.1: "it takes about 1 mSec to send a
	// datagram", with the packet filter having "a slight edge,
	// since it does not need to choose a route ... or compute a
	// checksum").
	IPOutput time.Duration

	// ChecksumPerKB is the cost of checksumming data (TCP
	// checksums all data; the measured VMTP and BSP variants do
	// not).
	ChecksumPerKB time.Duration

	// Pipe is the extra fixed cost of one pipe transfer beyond the
	// syscalls and copies it implies; 4.3BSD pipes were notoriously
	// slow ("much of this is attributable to the poor IPC
	// facilities in 4.3BSD", §6.3).
	Pipe time.Duration

	// Timestamp is the cost of the microtime() call used to stamp
	// received packets (§7: "on a VAX-11/780, this costs about 70
	// uSec").
	Timestamp time.Duration

	// Wakeup is the scheduler cost of waking a blocked process
	// (placing it on the run queue), separate from the context
	// switch itself.
	Wakeup time.Duration

	// MapSetup and MapPerKB model establishing a shared-memory
	// mapping between a process and the kernel: page-table setup
	// plus wiring the pages.  The paper laments that "Unix does not
	// support memory sharing" (§2); the shm subsystem is the
	// counterfactual, and its defining property is that this cost
	// is charged once at setup, not per packet.
	MapSetup time.Duration
	MapPerKB time.Duration

	// RingDesc is the kernel cost of handling one shared-memory
	// ring descriptor (validate bounds, advance the ring) on a
	// batched reap or transmit — the residual per-packet kernel
	// work once the data copy is elided.
	RingDesc time.Duration

	// Steer is the per-frame cost of computing the receive-side
	// flow-steering hash (src/dst/type tuple) that picks a NIC
	// queue.  The paper's §7 names "demultiplexing in parallel" as
	// future work; RSS hashing is the counterfactual mechanism, and
	// its defining property is that the hash is a few header loads
	// and mixes — far cheaper than one filter instruction.  Charged
	// only when a NIC is configured with more than one queue.
	Steer time.Duration

	// XQDeliver is the cross-queue port-delivery penalty: when a
	// port's packets last arrived via a different queue's demux
	// context, handing the new packet over costs extra kernel work
	// (the cache-line and lock handoff between parallel kernel
	// threads).  Per-flow steering makes this rare by construction —
	// one flow always lands on one queue — so the charge appears
	// only when distinct flows matched by one port straddle queues.
	XQDeliver time.Duration
}

// DefaultCosts returns the cost model calibrated to the paper's
// MicroVAX-II / VAX-11/780 measurements.  See the package comment and
// DESIGN.md for the calibration sources.
func DefaultCosts() Costs {
	return Costs{
		CtxSwitch:      400 * Microsecond,
		Syscall:        150 * Microsecond,
		CopyFixed:      370 * Microsecond,
		CopyPerKB:      1000 * Microsecond,
		FilterInstr:    28 * Microsecond,
		FilterApply:    60 * Microsecond,
		DriverRecv:     250 * Microsecond,
		DriverSend:     200 * Microsecond,
		DriverPoll:     80 * Microsecond,
		PfInput:        550 * Microsecond,
		PfPoll:         180 * Microsecond,
		IPInput:        490 * Microsecond,
		TransportInput: 1280 * Microsecond,
		IPOutput:       600 * Microsecond,
		ChecksumPerKB:  450 * Microsecond,
		Pipe:           300 * Microsecond,
		Timestamp:      70 * Microsecond,
		Wakeup:         50 * Microsecond,
		MapSetup:       500 * Microsecond,
		MapPerKB:       80 * Microsecond,
		RingDesc:       12 * Microsecond,
		Steer:          6 * Microsecond,
		XQDeliver:      35 * Microsecond,
	}
}

// MapCost returns the one-time virtual cost of establishing a
// shared-memory mapping of n bytes.
func (c Costs) MapCost(n int) time.Duration {
	return c.MapSetup + time.Duration(n)*c.MapPerKB/1024
}

// Copy returns the virtual cost of moving n bytes across the
// kernel/user boundary once.
func (c Costs) Copy(n int) time.Duration {
	return c.CopyFixed + time.Duration(n)*c.CopyPerKB/1024
}

// Checksum returns the virtual cost of checksumming n bytes.
func (c Costs) Checksum(n int) time.Duration {
	return time.Duration(n) * c.ChecksumPerKB / 1024
}

// Counters aggregates the event counts the paper reasons about.  The
// simulator updates one Counters per host plus a global one; the
// figure-2/figure-3 "experiments" in this repository are reproduced by
// reporting these counts for one delivered packet under each
// demultiplexing scheme.
type Counters struct {
	ContextSwitches uint64 // process-to-process switches
	Syscalls        uint64 // kernel entries from user processes
	DomainCrossings uint64 // user->kernel plus kernel->user transitions
	Copies          uint64 // kernel<->user data transfers
	BytesCopied     uint64 // payload bytes moved across the boundary
	BytesMapped     uint64 // payload bytes delivered in place via shared memory
	RingReaps       uint64 // batched ring harvests (one syscall each)
	Wakeups         uint64 // blocked processes made runnable
	KernelEntries   uint64 // interrupt-level kernel entries (RunKernel)
	Bursts          uint64 // coalesced receive bursts handed to the kernel
	CoalescedFrames uint64 // frames delivered inside those bursts
	SteeredFrames   uint64 // frames steered by the multi-queue RSS hash
	XQDeliveries    uint64 // port deliveries that crossed queue contexts

	PacketsIn      uint64 // frames received from the wire
	PacketsOut     uint64 // frames queued for transmission
	FilterApplied  uint64 // individual filters applied to packets
	FilterInstrs   uint64 // filter instruction words interpreted
	PacketsMatched uint64 // packets accepted by some filter
	PacketsDropped uint64 // packets dropped (no match or queue full)
}

// Add accumulates o into c.
func (c *Counters) Add(o Counters) {
	c.ContextSwitches += o.ContextSwitches
	c.Syscalls += o.Syscalls
	c.DomainCrossings += o.DomainCrossings
	c.Copies += o.Copies
	c.BytesCopied += o.BytesCopied
	c.BytesMapped += o.BytesMapped
	c.RingReaps += o.RingReaps
	c.Wakeups += o.Wakeups
	c.KernelEntries += o.KernelEntries
	c.Bursts += o.Bursts
	c.CoalescedFrames += o.CoalescedFrames
	c.SteeredFrames += o.SteeredFrames
	c.XQDeliveries += o.XQDeliveries
	c.PacketsIn += o.PacketsIn
	c.PacketsOut += o.PacketsOut
	c.FilterApplied += o.FilterApplied
	c.FilterInstrs += o.FilterInstrs
	c.PacketsMatched += o.PacketsMatched
	c.PacketsDropped += o.PacketsDropped
}

// Sub returns c minus o field-by-field; useful for measuring the delta
// across one benchmark phase.
func (c Counters) Sub(o Counters) Counters {
	return Counters{
		ContextSwitches: c.ContextSwitches - o.ContextSwitches,
		Syscalls:        c.Syscalls - o.Syscalls,
		DomainCrossings: c.DomainCrossings - o.DomainCrossings,
		Copies:          c.Copies - o.Copies,
		BytesCopied:     c.BytesCopied - o.BytesCopied,
		BytesMapped:     c.BytesMapped - o.BytesMapped,
		RingReaps:       c.RingReaps - o.RingReaps,
		Wakeups:         c.Wakeups - o.Wakeups,
		KernelEntries:   c.KernelEntries - o.KernelEntries,
		Bursts:          c.Bursts - o.Bursts,
		CoalescedFrames: c.CoalescedFrames - o.CoalescedFrames,
		SteeredFrames:   c.SteeredFrames - o.SteeredFrames,
		XQDeliveries:    c.XQDeliveries - o.XQDeliveries,
		PacketsIn:       c.PacketsIn - o.PacketsIn,
		PacketsOut:      c.PacketsOut - o.PacketsOut,
		FilterApplied:   c.FilterApplied - o.FilterApplied,
		FilterInstrs:    c.FilterInstrs - o.FilterInstrs,
		PacketsMatched:  c.PacketsMatched - o.PacketsMatched,
		PacketsDropped:  c.PacketsDropped - o.PacketsDropped,
	}
}
