package rarp

import (
	"testing"
	"time"

	"repro/internal/ethersim"
	"repro/internal/filter"
	"repro/internal/pfdev"
	"repro/internal/sim"
	"repro/internal/vtime"
)

func TestMarshalRoundTrip(t *testing.T) {
	for _, link := range []ethersim.LinkType{ethersim.Ether3Mb, ethersim.Ether10Mb} {
		in := Packet{
			Op:       OpReplyReverse,
			SenderHW: 0x42, SenderIP: 0x0A000001,
			TargetHW: 0x17, TargetIP: 0x0A000099,
		}
		out, err := Unmarshal(Marshal(in, link), link)
		if err != nil {
			t.Fatalf("%v: %v", link, err)
		}
		if out != in {
			t.Fatalf("%v: %+v vs %+v", link, out, in)
		}
		if _, err := Unmarshal(Marshal(in, link)[:8], link); err != ErrShort {
			t.Fatalf("%v: short accepted", link)
		}
	}
}

func TestResolveAgainstServer(t *testing.T) {
	s := sim.New(vtime.DefaultCosts())
	net := ethersim.New(s, ethersim.Ether10Mb)
	hs, hc := s.NewHost("server"), s.NewHost("diskless")
	ns := net.Attach(hs, 0x51)
	nc := net.Attach(hc, 0x99)
	ds := pfdev.Attach(ns, nil, pfdev.Options{})
	dc := pfdev.Attach(nc, nil, pfdev.Options{})

	table := map[ethersim.Addr]IPAddr{
		0x51: 0x0A000001,
		0x99: 0x0A000042,
	}
	srv := NewServer(ds, table)
	s.Spawn(hs, "rarpd", func(p *sim.Proc) { srv.Run(p, 100*time.Millisecond) })

	var ip IPAddr
	var err error
	s.Spawn(hc, "boot", func(p *sim.Proc) {
		p.Sleep(5 * time.Millisecond)
		ip, err = Resolve(p, dc, 20*time.Millisecond, 3)
	})
	s.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if ip != 0x0A000042 {
		t.Fatalf("ip = %08x", uint32(ip))
	}
	if srv.Served != 1 {
		t.Fatalf("served = %d", srv.Served)
	}
}

func TestResolveRetriesAndUnknown(t *testing.T) {
	s := sim.New(vtime.DefaultCosts())
	net := ethersim.New(s, ethersim.Ether10Mb)
	hs, hc, hx := s.NewHost("server"), s.NewHost("known"), s.NewHost("unknown")
	ns := net.Attach(hs, 0x51)
	nc := net.Attach(hc, 0x99)
	nx := net.Attach(hx, 0x77)
	ds := pfdev.Attach(ns, nil, pfdev.Options{})
	dc := pfdev.Attach(nc, nil, pfdev.Options{})
	dx := pfdev.Attach(nx, nil, pfdev.Options{})

	// Drop the first broadcast so the known client must retry.
	net.DropFn = func(i uint64, _ []byte) bool { return i == 1 }

	srv := NewServer(ds, map[ethersim.Addr]IPAddr{0x99: 0x0A000042})
	s.Spawn(hs, "rarpd", func(p *sim.Proc) { srv.Run(p, 200*time.Millisecond) })

	var okIP IPAddr
	var okErr, badErr error
	s.Spawn(hc, "known", func(p *sim.Proc) {
		p.Sleep(5 * time.Millisecond)
		okIP, okErr = Resolve(p, dc, 20*time.Millisecond, 5)
	})
	s.Spawn(hx, "unknown", func(p *sim.Proc) {
		p.Sleep(6 * time.Millisecond)
		_, badErr = Resolve(p, dx, 20*time.Millisecond, 1)
	})
	s.Run(0)
	if okErr != nil || okIP != 0x0A000042 {
		t.Fatalf("known: ip=%08x err=%v", uint32(okIP), okErr)
	}
	if badErr != ErrNoReply {
		t.Fatalf("unknown: err = %v, want ErrNoReply", badErr)
	}
	if srv.Unknown == 0 {
		t.Error("server did not count the unknown request")
	}
}

func TestRARPCoexistsWithKernelIP(t *testing.T) {
	// The whole point of §5.3: RARP runs at user level while the
	// kernel owns IP.  The filter must not steal IP frames.
	link := ethersim.Ether10Mb
	f := TypeFilter(link, 10)
	ipFrame := link.Encode(0x51, 0x99, ethersim.EtherTypeIP, make([]byte, 28))
	rarpFrame := link.Encode(0x51, 0x99, ethersim.EtherTypeRARP, make([]byte, 28))
	if filter.Run(f.Program, ipFrame).Accept {
		t.Error("RARP filter accepted an IP frame")
	}
	if !filter.Run(f.Program, rarpFrame).Accept {
		t.Error("RARP filter rejected a RARP frame")
	}
}
