// Package rarp implements the Reverse Address Resolution Protocol
// (RFC 903) as a user-level service over the packet filter — the
// paper's §5.3 case study: "With the packet filter, however, a RARP
// implementation was easy; the work was done in a few weeks by a
// student who had no experience with network programming, and who had
// no need to learn how to modify the Unix kernel."
//
// RARP's defining property is that it is a parallel layer to IP, not
// above it: a diskless workstation that does not yet know its IP
// address broadcasts a request carrying its hardware address, and a
// server replies with the IP address from its table.  Implementing it
// under 4.2BSD's kernel IP stack raised "questions of
// implementability" — with the packet filter it is just another
// Ethernet type to bind a filter for.
package rarp

import (
	"encoding/binary"
	"errors"
	"time"

	"repro/internal/backoff"
	"repro/internal/ethersim"
	"repro/internal/filter"
	"repro/internal/pfdev"
	"repro/internal/sim"
)

// RARP opcodes (the packet layout is ARP's, RFC 826).
const (
	OpRequestReverse = 3
	OpReplyReverse   = 4
)

// IPAddr is an IPv4 address (kept separate from package inet: RARP
// must not depend on the kernel IP stack, that is its whole point).
type IPAddr uint32

// Packet is a parsed RARP packet.
type Packet struct {
	Op       uint16
	SenderHW ethersim.Addr
	SenderIP IPAddr
	TargetHW ethersim.Addr
	TargetIP IPAddr
}

// ErrShort reports a truncated RARP packet.
var ErrShort = errors.New("rarp: truncated packet")

// Marshal encodes the packet for the given link type.
func Marshal(p Packet, link ethersim.LinkType) []byte {
	hlen := link.AddrLen()
	b := make([]byte, 8+2*hlen+8)
	binary.BigEndian.PutUint16(b[0:], 1) // hardware: Ethernet
	binary.BigEndian.PutUint16(b[2:], uint16(ethersim.EtherTypeIP))
	b[4] = byte(hlen)
	b[5] = 4
	binary.BigEndian.PutUint16(b[6:], p.Op)
	off := 8
	putHW := func(a ethersim.Addr) {
		for i := hlen - 1; i >= 0; i-- {
			b[off+i] = byte(a)
			a >>= 8
		}
		off += hlen
	}
	putIP := func(a IPAddr) {
		binary.BigEndian.PutUint32(b[off:], uint32(a))
		off += 4
	}
	putHW(p.SenderHW)
	putIP(p.SenderIP)
	putHW(p.TargetHW)
	putIP(p.TargetIP)
	return b
}

// Unmarshal decodes a RARP packet for the given link type.
func Unmarshal(b []byte, link ethersim.LinkType) (Packet, error) {
	hlen := link.AddrLen()
	if len(b) < 8+2*hlen+8 || int(b[4]) != hlen || b[5] != 4 {
		return Packet{}, ErrShort
	}
	var p Packet
	p.Op = binary.BigEndian.Uint16(b[6:])
	off := 8
	getHW := func() ethersim.Addr {
		var a ethersim.Addr
		for i := 0; i < hlen; i++ {
			a = a<<8 | ethersim.Addr(b[off+i])
		}
		off += hlen
		return a
	}
	p.SenderHW = getHW()
	p.SenderIP = IPAddr(binary.BigEndian.Uint32(b[off:]))
	off += 4
	p.TargetHW = getHW()
	p.TargetIP = IPAddr(binary.BigEndian.Uint32(b[off:]))
	return p, nil
}

// TypeFilter selects RARP frames: a single equality test on the
// Ethernet type word — so simple that it shows why a type-field-only
// demultiplexer (§2's "one simple mechanism") is insufficient in
// general but fine here.
func TypeFilter(link ethersim.LinkType, priority uint8) filter.Filter {
	return filter.Filter{
		Priority: priority,
		Program: filter.NewBuilder().
			WordEQ(link.TypeWord(), ethersim.EtherTypeRARP).
			MustProgram(),
	}
}

// Server answers RARP requests from a static table.
type Server struct {
	dev   *pfdev.Device
	link  ethersim.LinkType
	table map[ethersim.Addr]IPAddr
	// Served counts answered requests; Unknown counts requests for
	// unlisted hardware addresses (ignored, per RFC 903).
	Served, Unknown int
}

// NewServer creates a RARP server with the given hw→IP table.
func NewServer(dev *pfdev.Device, table map[ethersim.Addr]IPAddr) *Server {
	t := make(map[ethersim.Addr]IPAddr, len(table))
	for k, v := range table {
		t[k] = v
	}
	return &Server{dev: dev, link: dev.NIC().Network().Link(), table: t}
}

// Run serves requests until none arrive for idle.
func (s *Server) Run(p *sim.Proc, idle time.Duration) {
	port := s.dev.Open(p)
	defer port.Close(p)
	if err := port.SetFilter(p, TypeFilter(s.link, 20)); err != nil {
		return
	}
	port.SetTimeout(p, idle)
	myIP := s.table[s.dev.NIC().Addr()]
	for {
		raw, err := port.Read(p)
		if err != nil {
			return
		}
		_, src, _, payload, err := s.link.Decode(raw.Data)
		if err != nil {
			continue
		}
		req, err := Unmarshal(payload, s.link)
		if err != nil || req.Op != OpRequestReverse {
			continue
		}
		ip, ok := s.table[req.TargetHW]
		if !ok {
			s.Unknown++
			continue
		}
		reply := Packet{
			Op:       OpReplyReverse,
			SenderHW: s.dev.NIC().Addr(),
			SenderIP: myIP,
			TargetHW: req.TargetHW,
			TargetIP: ip,
		}
		frame := s.link.Encode(src, s.dev.NIC().Addr(), ethersim.EtherTypeRARP,
			Marshal(reply, s.link))
		if port.Write(p, frame) == nil {
			s.Served++
		}
	}
}

// Errors returned by Resolve.
var ErrNoReply = errors.New("rarp: no reply")

// ResolveStats reports how hard a resolution had to try.
type ResolveStats struct {
	Attempts int // broadcasts sent (1 on a quiet network)
}

// Resolve performs the client side: broadcast a reverse request for
// our own hardware address and wait for the reply, retrying with
// capped exponential backoff per RFC 903's suggestion.  This is what a
// diskless workstation runs first thing at boot.
func Resolve(p *sim.Proc, dev *pfdev.Device, timeout time.Duration, retries int) (IPAddr, error) {
	ip, _, err := ResolveWithStats(p, dev, timeout, retries)
	return ip, err
}

// ResolveWithStats is Resolve, also reporting attempt counts.
func ResolveWithStats(p *sim.Proc, dev *pfdev.Device, timeout time.Duration, retries int) (IPAddr, ResolveStats, error) {
	var st ResolveStats
	link := dev.NIC().Network().Link()
	port := dev.Open(p)
	defer port.Close(p)
	if err := port.SetFilter(p, TypeFilter(link, 10)); err != nil {
		return 0, st, err
	}
	self := dev.NIC().Addr()
	req := Packet{Op: OpRequestReverse, SenderHW: self, TargetHW: self}
	frame := link.Encode(link.BroadcastAddr(), self, ethersim.EtherTypeRARP,
		Marshal(req, link))

	pol := backoff.Policy{Base: timeout, Cap: 8 * timeout}
	for try := 0; try <= retries; try++ {
		port.SetTimeout(p, pol.Delay(try))
		if err := port.Write(p, frame); err != nil {
			return 0, st, err
		}
		st.Attempts++
		for {
			raw, err := port.Read(p)
			if err == pfdev.ErrTimeout {
				break
			}
			if err != nil {
				return 0, st, err
			}
			_, _, _, payload, err := link.Decode(raw.Data)
			if err != nil {
				continue
			}
			rep, err := Unmarshal(payload, link)
			if err != nil || rep.Op != OpReplyReverse || rep.TargetHW != self {
				continue
			}
			return rep.TargetIP, st, nil
		}
	}
	return 0, st, ErrNoReply
}
