// Package core re-exports the packet filter's public surface — the
// paper's primary contribution — so the repository layout mirrors the
// task structure (internal/core = the contribution, one package per
// substrate).  The implementation lives in internal/filter (the stack
// language and its evaluators) and internal/pfdev (the kernel-resident
// demultiplexing pseudodevice).
//
// Downstream code may import either this package or the two underlying
// ones; the aliases are exact.
package core

import (
	"repro/internal/filter"
	"repro/internal/pfdev"
)

// Filter-language types (see internal/filter).
type (
	Word            = filter.Word
	ValidateOptions = filter.ValidateOptions
	Op              = filter.Op
	Action          = filter.Action
	Program         = filter.Program
	Filter          = filter.Filter
	Builder         = filter.Builder
	Result          = filter.Result
	Env             = filter.Env
	Info            = filter.Info
	Prevalidated    = filter.Prevalidated
	Compiled        = filter.Compiled
	Table           = filter.Table
	PairPredicate   = filter.PairPredicate
	FieldTest       = filter.FieldTest
)

// Device types (see internal/pfdev).
type (
	Device  = pfdev.Device
	Port    = pfdev.Port
	Packet  = pfdev.Packet
	Options = pfdev.Options
	Status  = pfdev.Status
)

// Core constructors and entry points.
var (
	NewBuilder         = filter.NewBuilder
	NewExtendedBuilder = filter.NewExtendedBuilder
	Run                = filter.Run
	RunExt             = filter.RunExt
	Validate           = filter.Validate
	Prevalidate        = filter.Prevalidate
	Compile            = filter.Compile
	BuildTable         = filter.BuildTable
	Assemble           = filter.Assemble
	Attach             = pfdev.Attach
	Select             = pfdev.Select
	DstSocketFilter    = filter.DstSocketFilter
	Fig38PupTypeRange  = filter.Fig38PupTypeRange
	Fig39PupSocket     = filter.Fig39PupSocket
)
