package core

import (
	"testing"
	"time"

	"repro/internal/ethersim"
	"repro/internal/sim"
	"repro/internal/vtime"
)

// TestAliasesAreUsable drives the whole re-exported surface once: a
// downstream user should be able to work entirely through this
// package.
func TestAliasesAreUsable(t *testing.T) {
	prog, err := NewBuilder().CANDWordEQ(8, 35).WordEQ(1, 2).Program()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Validate(prog, ValidateOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Prevalidate(prog, ValidateOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(prog, ValidateOptions{}, Env{}); err != nil {
		t.Fatal(err)
	}
	if tbl := BuildTable([]Filter{{Priority: 1, Program: prog}}); tbl == nil {
		t.Fatal("nil table")
	}
	if _, err := Assemble("PUSHONE"); err != nil {
		t.Fatal(err)
	}
	if f := Fig39PupSocket(); len(f.Program) != 8 {
		t.Fatal("fig 3-9 alias broken")
	}
	if f := Fig38PupTypeRange(); len(f.Program) != 12 {
		t.Fatal("fig 3-8 alias broken")
	}
	if f := DstSocketFilter(3, 99); f.Priority != 3 {
		t.Fatal("DstSocketFilter alias broken")
	}
	pred := PairPredicate{FieldTest{Word: 0, Value: 0}}
	if !pred.Match([]byte{0, 0}) {
		t.Fatal("pair predicate alias broken")
	}
}

// TestDeviceThroughCore runs a delivery end to end using only core
// names for the filter/device layer.
func TestDeviceThroughCore(t *testing.T) {
	s := sim.New(vtime.DefaultCosts())
	net := ethersim.New(s, ethersim.Ether3Mb)
	ha, hb := s.NewHost("a"), s.NewHost("b")
	na := net.Attach(ha, 1)
	var dev *Device = Attach(net.Attach(hb, 2), nil, Options{})

	var got Packet
	var readErr error
	s.Spawn(hb, "recv", func(p *sim.Proc) {
		var port *Port = dev.Open(p)
		if err := port.SetFilter(p, Filter{Priority: 9,
			Program: NewBuilder().WordEQ(1, 0x4242).MustProgram()}); err != nil {
			t.Error(err)
			return
		}
		st := dev.Status(p)
		if st.LinkType != ethersim.Ether3Mb {
			t.Errorf("status = %+v", st)
		}
		got, readErr = port.Read(p)
	})
	s.Spawn(ha, "send", func(p *sim.Proc) {
		p.Sleep(2 * time.Millisecond)
		na.Transmit(ethersim.Ether3Mb.Encode(2, 1, 0x4242, []byte{1, 2, 3, 4}))
	})
	s.Run(0)
	if readErr != nil {
		t.Fatal(readErr)
	}
	if len(got.Data) != 8 {
		t.Fatalf("got %d bytes", len(got.Data))
	}
	if r := Run(NewBuilder().AcceptAll().MustProgram(), got.Data); !r.Accept {
		t.Fatal("core.Run broken")
	}
}
