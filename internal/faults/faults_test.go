package faults

import (
	"testing"
	"time"

	"repro/internal/ethersim"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// TestDrawIsPure pins the stateless RNG: draws are pure functions of
// (seed, stream, index), distinct across each argument, and u01 stays
// in [0, 1).
func TestDrawIsPure(t *testing.T) {
	if draw(1, 2, 3) != draw(1, 2, 3) {
		t.Fatal("draw is not deterministic")
	}
	if draw(1, 2, 3) == draw(2, 2, 3) ||
		draw(1, 2, 3) == draw(1, 3, 3) ||
		draw(1, 2, 3) == draw(1, 2, 4) {
		t.Fatal("draw does not separate seed/stream/index")
	}
	for i := uint64(0); i < 10000; i++ {
		r := u01(42, 0, i)
		if r < 0 || r >= 1 {
			t.Fatalf("u01 out of range: %v", r)
		}
	}
}

// chaosRig is a two-host wire with an engine attached, blasting a fixed
// number of frames so wire faults actually fire.
func chaosRig(seed uint64, plan Plan, frames int) (*sim.Sim, *Engine, *trace.Tracer) {
	s := sim.New(vtime.DefaultCosts())
	tr := trace.New()
	s.SetTracer(tr)
	net := ethersim.New(s, ethersim.Ether10Mb)
	a := s.NewHost("a")
	s.NewHost("b")
	nicA := net.Attach(a, 0x0A)
	net.Attach(s.Hosts()[1], 0x0B)

	eng := New(s, seed, plan)
	eng.AttachWire(net)

	frame := ethersim.Ether10Mb.Encode(0x0B, 0x0A, 0x0777, make([]byte, 200))
	for i := 0; i < frames; i++ {
		i := i
		s.At(time.Duration(i)*100*time.Microsecond, func() { nicA.Transmit(frame) })
	}
	return s, eng, tr
}

// TestLedgerMatchesTraceCounters is the core reconciliation invariant:
// the engine's Ledger and the registry's fault.<kind> counters are two
// views of the same injections and must agree exactly.
func TestLedgerMatchesTraceCounters(t *testing.T) {
	plan := Plan{Wire: Uniform(0.40)}
	plan.Hosts = []HostEvent{
		{Host: "a", At: 5 * time.Millisecond, Kind: Pause, Outage: 2 * time.Millisecond},
		{Host: "b", At: 10 * time.Millisecond, Kind: Crash, Outage: 3 * time.Millisecond},
	}
	s, eng, tr := chaosRig(7, plan, 400)
	for _, h := range s.Hosts() {
		eng.AttachHost(h)
	}
	s.Run(time.Second)

	if eng.Ledger.Total() == 0 {
		t.Fatal("no faults injected at 40% rate over 400 frames")
	}
	if eng.Ledger.Pauses != 1 || eng.Ledger.Crashes != 1 || eng.Ledger.Restarts != 1 {
		t.Fatalf("host events miscounted: %s", eng.Ledger.String())
	}
	snap := tr.Snapshot()
	for kind, want := range eng.Ledger.ByKind() {
		var got uint64
		for _, c := range snap.Counters {
			if c.Name == "fault."+kind {
				got += c.Value
			}
		}
		if got != want {
			t.Errorf("fault.%s: ledger %d vs registry %d", kind, want, got)
		}
	}
}

// TestSameSeedSamePlanIsBitIdentical reruns one chaotic schedule and
// requires identical ledgers and identical end times.
func TestSameSeedSamePlanIsBitIdentical(t *testing.T) {
	run := func() (Ledger, time.Duration) {
		s, eng, _ := chaosRig(99, Plan{Wire: Uniform(0.30)}, 300)
		end := s.Run(time.Second)
		return eng.Ledger, end
	}
	l1, e1 := run()
	l2, e2 := run()
	if l1 != l2 {
		t.Fatalf("ledgers differ:\n  %s\n  %s", l1.String(), l2.String())
	}
	if e1 != e2 {
		t.Fatalf("end times differ: %v vs %v", e1, e2)
	}
}

// TestDifferentSeedsDiffer guards against the seed being ignored.
func TestDifferentSeedsDiffer(t *testing.T) {
	s1, eng1, _ := chaosRig(1, Plan{Wire: Uniform(0.30)}, 300)
	s1.Run(time.Second)
	s2, eng2, _ := chaosRig(2, Plan{Wire: Uniform(0.30)}, 300)
	s2.Run(time.Second)
	if eng1.Ledger == eng2.Ledger {
		t.Fatal("different seeds produced identical ledgers (seed unused?)")
	}
}

// TestInjectionWindow pins Start/Stop: outside the window the wire is
// untouched.
func TestInjectionWindow(t *testing.T) {
	plan := Plan{Wire: Uniform(0.99)}
	plan.Wire.Start = 10 * time.Millisecond
	plan.Wire.Stop = 20 * time.Millisecond
	// Frames go out every 100µs for 40ms; only those inside [10ms,
	// 20ms) may be faulted.
	s, eng, _ := chaosRig(5, plan, 400)
	s.Run(time.Second)
	if eng.Ledger.Total() == 0 {
		t.Fatal("window produced no faults at 99% rate")
	}
	// Re-run with the window closed entirely.
	closed := plan
	closed.Wire.Start = 2 * time.Second
	s2, eng2, _ := chaosRig(5, closed, 400)
	s2.Run(time.Second)
	if eng2.Ledger.Total() != 0 {
		t.Fatalf("faults outside the injection window: %s", eng2.Ledger.String())
	}
}

// TestRatesAreAdditive checks the observed combined fault rate tracks
// the plan's Rate() because at most one fault applies per frame.
func TestRatesAreAdditive(t *testing.T) {
	const frames = 2000
	plan := Plan{Wire: Uniform(0.20)}
	s, eng, _ := chaosRig(1234, plan, frames)
	s.Run(time.Second)
	got := float64(eng.Ledger.Total()) / frames
	if got < 0.15 || got > 0.25 {
		t.Fatalf("combined fault rate %.3f far from planned %.2f", got, plan.Wire.Rate())
	}
}

// TestNamedPlans pins the built-in plan table.
func TestNamedPlans(t *testing.T) {
	for _, name := range PlanNames() {
		p, ok := Named(name)
		if !ok || p.Name != name {
			t.Errorf("Named(%q) = %+v, %v", name, p, ok)
		}
	}
	if _, ok := Named("no-such-plan"); ok {
		t.Error("unknown plan name accepted")
	}
}
