package faults

// Stateless deterministic randomness: every draw is a pure hash of
// (seed, stream, index), so a fault decision depends only on the plan
// seed, which knob is drawing (the stream) and the frame index — never
// on how many draws other streams have made.  That is what makes a run
// reproducible from (seed, plan) alone, and what keeps two networks in
// one simulation from perturbing each other's fault schedules.

const golden = 0x9e3779b97f4a7c15

// mix is the splitmix64 output permutation.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// draw hashes (seed, stream, index) to a uniform uint64.
func draw(seed, stream, index uint64) uint64 {
	return mix(mix(seed+stream*golden) + index*golden)
}

// u01 maps a draw to [0, 1) with 53 bits of precision.
func u01(seed, stream, index uint64) float64 {
	return float64(draw(seed, stream, index)>>11) / (1 << 53)
}
