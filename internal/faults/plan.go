package faults

import "time"

// WirePlan is the per-frame fault schedule for one network: each frame
// on the wire draws one uniform number and suffers at most one fault,
// so the rates are additive and (DropRate + CorruptRate + DupRate +
// DelayRate) is the combined fault rate.
type WirePlan struct {
	DropRate    float64 // frame discarded after occupying the wire
	CorruptRate float64 // one payload bit inverted (checksums must catch it)
	DupRate     float64 // frame delivered twice
	DelayRate   float64 // delivery postponed, reordering the frame

	// MaxDelay bounds injected delivery delay (default 2ms): delays
	// are drawn uniformly in (0, MaxDelay], long enough to reorder
	// several back-to-back frames but bounded so protocols converge.
	MaxDelay time.Duration
	// DupDelay separates a duplicate from its original (default
	// 500µs).
	DupDelay time.Duration

	// Start and Stop bound the injection window in virtual time;
	// Stop == 0 means no end.
	Start, Stop time.Duration
}

// Rate returns the combined per-frame fault probability.
func (w WirePlan) Rate() float64 {
	return w.DropRate + w.CorruptRate + w.DupRate + w.DelayRate
}

// Uniform is a wire plan with the combined fault rate split equally
// across drop, corrupt, duplicate and delay.
func Uniform(rate float64) WirePlan {
	return WirePlan{DropRate: rate / 4, CorruptRate: rate / 4, DupRate: rate / 4, DelayRate: rate / 4}
}

// HostFaultKind selects what happens to a host at a HostEvent.
type HostFaultKind int

const (
	// Pause stalls the host's CPU without losing state; its NIC
	// queue fills and overflows while it lasts.
	Pause HostFaultKind = iota
	// Crash takes the host down: interrupt work and packet-filter
	// ports are lost, and survivors must re-bind filters after the
	// restart.
	Crash
)

// String names the host fault kind.
func (k HostFaultKind) String() string {
	if k == Pause {
		return "pause"
	}
	return "crash"
}

// HostEvent schedules one lifecycle fault against a named host.
type HostEvent struct {
	Host   string
	At     time.Duration
	Kind   HostFaultKind
	Outage time.Duration // until Resume/Restart; 0 = never comes back
}

// Squeeze temporarily shrinks a host's receive queues: the NIC input
// queue and (through the device-wide cap) every packet-filter port
// queue — §6's "queue overflows in the network interface" made
// schedulable.
type Squeeze struct {
	Host     string
	At       time.Duration
	Duration time.Duration // 0 = permanent
	NICLimit int           // NIC input-queue bound while squeezed
	PortCap  int           // pf port-queue cap while squeezed (0 = leave alone)
}

// Plan is a complete, self-describing fault schedule.  The same
// (seed, plan) pair always reproduces the same run.
type Plan struct {
	Name     string
	Wire     WirePlan
	Hosts    []HostEvent
	Squeezes []Squeeze
}

// Named returns one of the built-in demonstration plans used by
// cmd/pfchaos.  The host names refer to pfchaos's topology (alpha,
// beta, charlie, diskless).
func Named(name string) (Plan, bool) {
	switch name {
	case "calm":
		return Plan{Name: "calm", Wire: Uniform(0.02)}, true
	case "lossy":
		return Plan{Name: "lossy", Wire: Uniform(0.20)}, true
	case "hostile":
		return Plan{
			Name: "hostile",
			Wire: Uniform(0.30),
			Squeezes: []Squeeze{
				{Host: "beta", At: 50 * time.Millisecond, Duration: 150 * time.Millisecond, NICLimit: 2, PortCap: 2},
			},
		}, true
	case "crashy":
		return Plan{
			Name: "crashy",
			Wire: Uniform(0.10),
			Hosts: []HostEvent{
				{Host: "beta", At: 60 * time.Millisecond, Kind: Pause, Outage: 40 * time.Millisecond},
				{Host: "charlie", At: 120 * time.Millisecond, Kind: Crash, Outage: 80 * time.Millisecond},
			},
		}, true
	}
	return Plan{}, false
}

// PlanNames lists the built-in plans.
func PlanNames() []string { return []string{"calm", "lossy", "hostile", "crashy"} }
