// Package faults is the deterministic fault-injection engine: a
// seeded Plan attaches to the existing simulation layers and perturbs
// them — frame drop, payload bit-flip corruption, duplication and
// bounded delay on the wire (ethersim), NIC and port-queue squeezes
// (pfdev), and host pause/crash/restart (sim).
//
// Every injected fault is a typed trace event (trace.KindFault),
// counted in the metrics registry as "fault.<kind>", and tallied in
// the engine's Ledger; a run is fully reproducible from (seed, plan)
// because every decision is a pure hash of the seed, the fault stream
// and the frame index (see rng.go) or an explicitly scheduled plan
// event.  cmd/pfchaos reconciles the Ledger against the registry to
// prove the two views agree exactly.
package faults

import (
	"fmt"
	"time"

	"repro/internal/ethersim"
	"repro/internal/pfdev"
	"repro/internal/sim"
)

// Fault-stream identifiers: each decision kind draws from its own
// stream so adding a draw to one knob never shifts another's schedule.
// Wire streams are additionally salted by attachment order, keeping
// multiple networks in one simulation independent.
const (
	streamVerdict uint64 = iota // which fault (if any) hits a frame
	streamBit                   // which payload bit a corruption flips
	streamDelay                 // how long an injected delay lasts
	wireStreams                 // streams consumed per attached wire
)

// Defaults for unset WirePlan bounds.
const (
	DefaultMaxDelay = 2 * time.Millisecond
	DefaultDupDelay = 500 * time.Microsecond
)

// Ledger tallies every fault the engine injected, by kind.  It is the
// injector-side view of the same counts the trace registry accumulates
// as "fault.<kind>" counters.
type Ledger struct {
	Drops    uint64 `json:"drops"`
	Corrupts uint64 `json:"corrupts"`
	Dups     uint64 `json:"dups"`
	Delays   uint64 `json:"delays"`
	Pauses   uint64 `json:"pauses"`
	Crashes  uint64 `json:"crashes"`
	Restarts uint64 `json:"restarts"`
	Squeezes uint64 `json:"squeezes"`
}

// Total sums the ledger.
func (l Ledger) Total() uint64 {
	return l.Drops + l.Corrupts + l.Dups + l.Delays +
		l.Pauses + l.Crashes + l.Restarts + l.Squeezes
}

// ByKind returns the ledger as kind-name → count, keyed exactly like
// the registry's "fault.<kind>" counters.
func (l Ledger) ByKind() map[string]uint64 {
	return map[string]uint64{
		"drop": l.Drops, "corrupt": l.Corrupts, "dup": l.Dups, "delay": l.Delays,
		"pause": l.Pauses, "crash": l.Crashes, "restart": l.Restarts, "squeeze": l.Squeezes,
	}
}

// String renders the ledger as a one-line summary.
func (l Ledger) String() string {
	return fmt.Sprintf("drop=%d corrupt=%d dup=%d delay=%d pause=%d crash=%d restart=%d squeeze=%d (total %d)",
		l.Drops, l.Corrupts, l.Dups, l.Delays, l.Pauses, l.Crashes, l.Restarts, l.Squeezes, l.Total())
}

// Engine executes one Plan against one simulation.  Attach it to the
// layers it should perturb with AttachWire, AttachHost and
// AttachQueues before running the simulation.
type Engine struct {
	s    *sim.Sim
	seed uint64
	plan Plan

	// Ledger counts every injected fault.
	Ledger Ledger

	wires uint64 // networks attached so far, for stream salting
}

// New creates an engine for (seed, plan) on the simulation.
func New(s *sim.Sim, seed uint64, plan Plan) *Engine {
	if plan.Wire.MaxDelay <= 0 {
		plan.Wire.MaxDelay = DefaultMaxDelay
	}
	if plan.Wire.DupDelay <= 0 {
		plan.Wire.DupDelay = DefaultDupDelay
	}
	return &Engine{s: s, seed: seed, plan: plan}
}

// Plan returns the engine's plan (with defaults filled in).
func (e *Engine) Plan() Plan { return e.plan }

// Seed returns the engine's seed.
func (e *Engine) Seed() uint64 { return e.seed }

// AttachWire installs the engine as the network's fault injector.
// Each attached network gets its own fault streams, in attachment
// order, so multi-network topologies stay deterministic.
func (e *Engine) AttachWire(n *ethersim.Network) {
	salt := e.wires * wireStreams
	e.wires++
	n.SetInjector(&wireInjector{e: e, salt: salt, hdrBits: n.Link().HeaderLen() * 8})
}

// wireInjector decides the fate of each frame on one network.
type wireInjector struct {
	e       *Engine
	salt    uint64
	hdrBits int
}

// Frame draws one verdict per frame.  At most one fault applies, so
// the plan's rates are additive; the ledger is bumped here, at
// decision time, and ethersim emits the matching trace event when it
// applies the verdict — the two always move together.
func (w *wireInjector) Frame(index uint64, frame []byte) ethersim.Verdict {
	v := ethersim.NoFault
	p := w.e.plan.Wire
	now := w.e.s.Now()
	if now < p.Start || (p.Stop > 0 && now >= p.Stop) {
		return v
	}
	r := u01(w.e.seed, streamVerdict+w.salt, index)
	switch {
	case r < p.DropRate:
		v.Drop = true
		w.e.Ledger.Drops++
	case r < p.DropRate+p.CorruptRate:
		// Flip a bit strictly past the data-link header, where the
		// transport checksums (Pup, IP, TCP, UDP, VMTP) cover it —
		// corruption must be *caught*, never survive by luck.  A
		// frame with no payload can't be corrupted detectably, so
		// it drops instead.
		bits := len(frame)*8 - w.hdrBits
		if bits <= 0 {
			v.Drop = true
			w.e.Ledger.Drops++
			break
		}
		v.FlipBit = w.hdrBits + int(draw(w.e.seed, streamBit+w.salt, index)%uint64(bits))
		w.e.Ledger.Corrupts++
	case r < p.DropRate+p.CorruptRate+p.DupRate:
		v.Dup = true
		v.DupDelay = p.DupDelay
		w.e.Ledger.Dups++
	case r < p.DropRate+p.CorruptRate+p.DupRate+p.DelayRate:
		v.Delay = time.Duration(1 + draw(w.e.seed, streamDelay+w.salt, index)%uint64(p.MaxDelay))
		w.e.Ledger.Delays++
	}
	return v
}

// AttachHost schedules the plan's lifecycle events (pause/resume,
// crash/restart) that name this host.
func (e *Engine) AttachHost(h *sim.Host) {
	name := h.Name()
	for _, ev := range e.plan.Hosts {
		if ev.Host != name {
			continue
		}
		ev := ev
		e.s.At(ev.At, func() {
			tr := e.s.Tracer()
			switch ev.Kind {
			case Pause:
				h.Pause()
				e.Ledger.Pauses++
				if tr != nil {
					tr.Fault(e.s.Now(), name, "pause", 0)
				}
				if ev.Outage > 0 {
					e.s.After(ev.Outage, h.Resume)
				}
			case Crash:
				h.Crash()
				e.Ledger.Crashes++
				if tr != nil {
					tr.Fault(e.s.Now(), name, "crash", 0)
				}
				if ev.Outage > 0 {
					e.s.After(ev.Outage, func() {
						h.Restart()
						e.Ledger.Restarts++
						if tr := e.s.Tracer(); tr != nil {
							tr.Fault(e.s.Now(), name, "restart", 0)
						}
					})
				}
			}
		})
	}
}

// AttachQueues schedules the plan's queue squeezes against the
// device's host: the NIC input-queue limit and the device-wide port
// cap shrink for the squeeze window, then restore.
func (e *Engine) AttachQueues(dev *pfdev.Device) {
	nic := dev.NIC()
	name := nic.Host().Name()
	for _, sq := range e.plan.Squeezes {
		if sq.Host != name {
			continue
		}
		sq := sq
		e.s.At(sq.At, func() {
			oldLimit := nic.QueueLimit
			nic.QueueLimit = sq.NICLimit
			if sq.PortCap > 0 {
				dev.SetQueueCap(sq.PortCap)
			}
			e.Ledger.Squeezes++
			if tr := e.s.Tracer(); tr != nil {
				tr.Fault(e.s.Now(), name, "squeeze", 0)
			}
			if sq.Duration > 0 {
				e.s.After(sq.Duration, func() {
					nic.QueueLimit = oldLimit
					dev.SetQueueCap(0)
				})
			}
		})
	}
}
