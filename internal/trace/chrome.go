package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Chrome trace-event export: renders a recorded event stream in the
// Trace Event Format consumed by Perfetto (ui.perfetto.dev) and
// chrome://tracing, so a simulated run's per-host CPU, syscall and
// wire activity opens as an interactive timeline.
//
// Mapping: each simulated host is a "process"; within it, kernel work
// gets one "thread" lane per accounting tag, each user process gets
// its own lane, and scheduler/wire/packet events appear as instants.
// Timestamps are virtual microseconds.

type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// laneIDs hands out stable pid/tid numbers and remembers the names so
// metadata events can label them.
type laneIDs struct {
	pids     map[string]int
	pidNames []string
	tids     map[[2]string]int // (host, lane) -> tid
	tidNames []struct {
		pid  int
		tid  int
		name string
	}
}

func (l *laneIDs) pid(host string) int {
	if id, ok := l.pids[host]; ok {
		return id
	}
	id := len(l.pidNames) + 1
	l.pids[host] = id
	l.pidNames = append(l.pidNames, host)
	return id
}

func (l *laneIDs) tid(host, lane string) int {
	k := [2]string{host, lane}
	if id, ok := l.tids[k]; ok {
		return id
	}
	id := len(l.tids) + 1
	l.tids[k] = id
	l.tidNames = append(l.tidNames, struct {
		pid  int
		tid  int
		name string
	}{l.pid(host), id, lane})
	return id
}

func usec(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// WriteChromeTrace writes events (normally Recorder.Events) as Chrome
// trace-event JSON.
func WriteChromeTrace(w io.Writer, events []Event) error {
	return WriteChromeTraceSpans(w, events, nil)
}

// WriteChromeTraceSpans writes events plus per-packet provenance spans
// (normally Spans.RecordsSnapshot).  Each span renders on its origin
// host's "spans" lane: one complete "X" slice per stage segment, and a
// terminal instant carrying the verdict, class and causal parent.
func WriteChromeTraceSpans(w io.Writer, events []Event, spans []SpanRecord) error {
	lanes := &laneIDs{pids: map[string]int{}, tids: map[[2]string]int{}}
	out := chromeFile{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	add := func(e chromeEvent) { out.TraceEvents = append(out.TraceEvents, e) }

	for _, e := range events {
		host := e.Host
		if host == "" {
			host = "?"
		}
		pid := lanes.pid(host)
		ts := usec(e.When)
		switch e.Kind {
		case KindKernelSlice:
			add(chromeEvent{Name: e.Tag, Cat: "kernel", Ph: "X", Ts: ts,
				Dur: usec(time.Duration(e.Value)), Pid: pid,
				Tid:  lanes.tid(host, "kernel:"+e.Tag),
				Args: map[string]any{"proc": e.Proc}})
		case KindUserSlice:
			add(chromeEvent{Name: e.Proc, Cat: "user", Ph: "X", Ts: ts,
				Dur: usec(time.Duration(e.Value)), Pid: pid,
				Tid: lanes.tid(host, "proc:"+e.Proc)})
		case KindSyscallEnter:
			add(chromeEvent{Name: "syscall:" + e.Tag, Cat: "syscall", Ph: "B", Ts: ts,
				Pid: pid, Tid: lanes.tid(host, "proc:"+e.Proc)})
		case KindSyscallExit:
			add(chromeEvent{Name: "syscall:" + e.Tag, Cat: "syscall", Ph: "E", Ts: ts,
				Pid: pid, Tid: lanes.tid(host, "proc:"+e.Proc)})
		case KindCtxSwitch:
			add(chromeEvent{Name: "ctxswitch", Cat: "sched", Ph: "X", Ts: ts,
				Dur: usec(time.Duration(e.Value)), Pid: pid,
				Tid:  lanes.tid(host, "sched"),
				Args: map[string]any{"to": e.Proc}})
		case KindWakeup:
			add(chromeEvent{Name: "wakeup", Cat: "sched", Ph: "i", Ts: ts,
				Pid: pid, Tid: lanes.tid(host, "sched")})
		case KindCopy:
			add(chromeEvent{Name: "copy", Cat: "syscall", Ph: "i", Ts: ts,
				Pid: pid, Tid: lanes.tid(host, "proc:"+e.Proc),
				Args: map[string]any{"bytes": e.Value, "tag": e.Tag}})
		case KindFilterEval:
			add(chromeEvent{Name: "filter", Cat: "pf", Ph: "i", Ts: ts,
				Pid: pid, Tid: lanes.tid(host, "pf"),
				Args: map[string]any{"port": e.Port, "instrs": e.Value, "accept": e.Aux == 1}})
		case KindEnqueue, KindDequeue:
			add(chromeEvent{Name: fmt.Sprintf("port%d depth", e.Port), Cat: "pf",
				Ph: "C", Ts: ts, Pid: pid, Tid: lanes.tid(host, "pf"),
				Args: map[string]any{"depth": e.Value}})
		case KindDrop:
			add(chromeEvent{Name: "drop:" + e.Tag, Cat: "pf", Ph: "i", Ts: ts,
				Pid: pid, Tid: lanes.tid(host, "pf")})
		case KindDeliver:
			add(chromeEvent{Name: "deliver", Cat: "pf", Ph: "i", Ts: ts,
				Pid: pid, Tid: lanes.tid(host, "pf"),
				Args: map[string]any{"port": e.Port,
					"latency_us": usec(time.Duration(e.Value))}})
		case KindWireTx:
			add(chromeEvent{Name: "tx", Cat: "wire", Ph: "X", Ts: ts,
				Dur: usec(time.Duration(e.Aux)), Pid: pid,
				Tid:  lanes.tid(host, "wire"),
				Args: map[string]any{"bytes": e.Value}})
		case KindWireRx:
			add(chromeEvent{Name: "rx", Cat: "wire", Ph: "i", Ts: ts,
				Pid: pid, Tid: lanes.tid(host, "wire"),
				Args: map[string]any{"bytes": e.Value}})
		case KindProto:
			add(chromeEvent{Name: e.Tag, Cat: "inet", Ph: "i", Ts: ts,
				Pid: pid, Tid: lanes.tid(host, "inet")})
		case KindFault:
			add(chromeEvent{Name: "fault:" + e.Tag, Cat: "faults", Ph: "i", Ts: ts,
				Pid: pid, Tid: lanes.tid(host, "faults"),
				Args: map[string]any{"index": e.Value}})
		}
	}

	for i := range spans {
		r := &spans[i]
		host := r.Origin
		if host == "" {
			host = "?"
		}
		pid := lanes.pid(host)
		tid := lanes.tid(host, "spans")
		for m := 0; m+1 < int(r.NMarks); m++ {
			from, to := r.Marks[m], r.Marks[m+1]
			add(chromeEvent{Name: fmt.Sprintf("span%d:%s", r.ID, from.Stage), Cat: "span",
				Ph: "X", Ts: usec(from.When), Dur: usec(to.When - from.When),
				Pid: pid, Tid: tid, Args: map[string]any{"span": r.ID}})
		}
		if r.Term != TermLive {
			args := map[string]any{"span": r.ID}
			if r.Parent != 0 {
				args["parent"] = r.Parent
			}
			if r.Class != "" {
				args["class"] = r.Class
			}
			if r.Port >= 0 {
				args["port"] = r.Port
			}
			add(chromeEvent{Name: "span:" + r.TermString(), Cat: "span", Ph: "i",
				Ts: usec(r.End), Pid: pid, Tid: tid, Args: args})
		}
	}

	// Metadata: name the process and thread lanes, and order threads
	// so kernel lanes come first.
	meta := []chromeEvent{}
	for i, name := range lanes.pidNames {
		meta = append(meta, chromeEvent{Name: "process_name", Ph: "M", Pid: i + 1,
			Args: map[string]any{"name": "host " + name}})
	}
	sort.Slice(lanes.tidNames, func(i, j int) bool {
		a, b := lanes.tidNames[i], lanes.tidNames[j]
		if a.pid != b.pid {
			return a.pid < b.pid
		}
		return a.name < b.name
	})
	for i, t := range lanes.tidNames {
		meta = append(meta, chromeEvent{Name: "thread_name", Ph: "M", Pid: t.pid, Tid: t.tid,
			Args: map[string]any{"name": t.name}})
		meta = append(meta, chromeEvent{Name: "thread_sort_index", Ph: "M", Pid: t.pid, Tid: t.tid,
			Args: map[string]any{"sort_index": i}})
	}
	out.TraceEvents = append(meta, out.TraceEvents...)

	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
