package trace

import "time"

// profiler attributes completed virtual CPU time to (host, category)
// pairs — the generalization of the gprof run behind the paper's §6.1
// kernel-time breakdown.  It is fed from the same accounting points
// that update sim.Host.KernelTime, so the two always agree exactly.
type profiler struct {
	kernel map[metricKey]time.Duration
	user   map[string]time.Duration
}

func (p *profiler) init() {
	p.kernel = make(map[metricKey]time.Duration)
	p.user = make(map[string]time.Duration)
}

func (p *profiler) addKernel(host, tag string, d time.Duration) {
	p.kernel[metricKey{host, tag}] += d
}

func (p *profiler) addUser(host string, d time.Duration) {
	p.user[host] += d
}

func (p *profiler) resetHost(host string) {
	for k := range p.kernel {
		if k.host == host {
			delete(p.kernel, k)
		}
	}
	delete(p.user, host)
}

// KernelCat is one kernel-time category of a host profile.
type KernelCat struct {
	Tag  string        `json:"tag"`
	Time time.Duration `json:"time"`
	Pct  float64       `json:"pct"` // share of the host's kernel time
}

// HostProfile is the §6.1-style CPU breakdown for one host.
type HostProfile struct {
	Host        string        `json:"host"`
	Kernel      []KernelCat   `json:"kernel"` // sorted by descending time
	KernelTotal time.Duration `json:"kernel_total"`
	User        time.Duration `json:"user"`
}

// Category returns the time attributed to tag (zero if absent).
func (hp HostProfile) Category(tag string) time.Duration {
	for _, c := range hp.Kernel {
		if c.Tag == tag {
			return c.Time
		}
	}
	return 0
}

// PFProfile is the derived packet-filter summary the paper reports in
// §6.1 for the mixed-traffic workload: per-packet cost, the share
// spent evaluating predicates, and predicates tested per packet.
type PFProfile struct {
	Host           string        `json:"host"`
	Packets        uint64        `json:"packets"`          // packets entering the pf input path
	PerPacket      time.Duration `json:"per_packet"`       // (pf + filter) kernel time / packet
	FilterFraction float64       `json:"filter_fraction"`  // share in predicate evaluation
	AvgPredicates  float64       `json:"avg_predicates"`   // filters applied / packet
	AvgInstrs      float64       `json:"avg_instructions"` // filter words interpreted / packet
}

// PF derives the §6.1 packet-filter summary for one host of a
// snapshot.  ok is false if the host saw no packet-filter traffic.
func (s *Snapshot) PF(host string) (PFProfile, bool) {
	var hp *HostProfile
	for i := range s.Profiles {
		if s.Profiles[i].Host == host {
			hp = &s.Profiles[i]
		}
	}
	if hp == nil {
		return PFProfile{}, false
	}
	packets := s.CounterValue(host, "pf.packets")
	if packets == 0 {
		return PFProfile{}, false
	}
	pf := hp.Category("pf")
	fl := hp.Category("filter")
	p := PFProfile{
		Host:      host,
		Packets:   packets,
		PerPacket: (pf + fl) / time.Duration(packets),
	}
	if pf+fl > 0 {
		p.FilterFraction = float64(fl) / float64(pf+fl)
	}
	p.AvgPredicates = float64(s.CounterValue(host, "pf.evals")) / float64(packets)
	p.AvgInstrs = float64(s.CounterValue(host, "pf.instrs")) / float64(packets)
	return p, true
}
