package trace

import (
	"testing"
	"time"
)

// TestHistogramEmpty: an empty histogram reports zeros everywhere
// rather than dividing by zero or scanning garbage buckets.
func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Mean() != 0 {
		t.Fatalf("Mean = %v, want 0", h.Mean())
	}
	for _, q := range []float64{0.001, 0.5, 0.99, 1.0} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("Quantile(%v) = %v, want 0", q, got)
		}
	}
	if h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("Min/Max = %v/%v", h.Min(), h.Max())
	}
}

// TestHistogramSingleObservation: with one sample every quantile and
// the mean collapse to that exact sample (the bucket upper edge is
// clamped to the true max).
func TestHistogramSingleObservation(t *testing.T) {
	for _, d := range []time.Duration{
		0,
		300 * time.Nanosecond, // sub-microsecond: bucket 0
		time.Microsecond,
		777 * time.Microsecond,
		3 * time.Second,
	} {
		var h Histogram
		h.Observe(d)
		if h.Count() != 1 {
			t.Fatalf("Count = %d", h.Count())
		}
		if h.Mean() != d {
			t.Fatalf("Mean(%v) = %v", d, h.Mean())
		}
		if h.Min() != d || h.Max() != d {
			t.Fatalf("Min/Max(%v) = %v/%v", d, h.Min(), h.Max())
		}
		for _, q := range []float64{0.01, 0.5, 0.99, 1.0} {
			if got := h.Quantile(q); got != d {
				t.Fatalf("Quantile(%v) of single %v = %v", q, d, got)
			}
		}
	}
}

// TestBucketOfBoundaries pins the bucket layout at the edges: bucket 0
// holds sub-microsecond samples, bucket i >= 1 holds [2^(i-1), 2^i) µs,
// and durations beyond the last bucket clamp instead of overflowing.
func TestBucketOfBoundaries(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{-time.Second, 0}, // negative clamps to zero
		{0, 0},
		{999 * time.Nanosecond, 0}, // still sub-µs
		{time.Microsecond, 1},      // [1, 2) µs
		{2*time.Microsecond - time.Nanosecond, 1},
		{2 * time.Microsecond, 2}, // [2, 4) µs
		{3 * time.Microsecond, 2},
		{4 * time.Microsecond, 3}, // exact powers open a new bucket
		{1024 * time.Microsecond, 11},
		{1 << 46 * time.Microsecond, histBuckets - 1}, // clamped at the top
		{1 << 62, histBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.d); got != c.want {
			t.Fatalf("bucketOf(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

// TestQuantileBucketEdges: the quantile of a two-point distribution
// lands on each bucket's upper edge, clamped into [min, max] so a p50
// can never undershoot the smallest sample or overshoot the largest.
func TestQuantileBucketEdges(t *testing.T) {
	var h Histogram
	h.Observe(10 * time.Microsecond)  // bucket 4: [8, 16) µs
	h.Observe(100 * time.Microsecond) // bucket 7: [64, 128) µs
	// Rank 1 falls in bucket 4, upper edge 16µs — inside [10µs, 100µs],
	// so no clamping.
	if got := h.Quantile(0.5); got != 16*time.Microsecond {
		t.Fatalf("p50 = %v, want 16µs", got)
	}
	// Rank 2 falls in bucket 7, upper edge 128µs — clamped to max.
	if got := h.Quantile(1.0); got != 100*time.Microsecond {
		t.Fatalf("p100 = %v, want exact max 100µs", got)
	}
	// A single bucket whose upper edge undershoots min is clamped up.
	var h2 Histogram
	h2.Observe(time.Microsecond + 500*time.Nanosecond) // bucket 1, ub 2µs
	if got := h2.Quantile(0.5); got != time.Microsecond+500*time.Nanosecond {
		t.Fatalf("clamped p50 = %v", got)
	}
}

// TestQuantileLowQ: a vanishing q still returns a real sample bound
// (rank floors at 1, never 0).
func TestQuantileLowQ(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(50 * time.Microsecond)
	}
	if got := h.Quantile(0.0001); got != 50*time.Microsecond {
		t.Fatalf("Quantile(0.0001) = %v, want 50µs", got)
	}
}

// TestHistogramMeanExact: the mean is computed from the exact sum, not
// from bucket midpoints.
func TestHistogramMeanExact(t *testing.T) {
	var h Histogram
	h.Observe(1 * time.Microsecond)
	h.Observe(2 * time.Microsecond)
	h.Observe(6 * time.Microsecond)
	if got := h.Mean(); got != 3*time.Microsecond {
		t.Fatalf("Mean = %v, want 3µs", got)
	}
}
