package trace

import (
	"fmt"
	"os"
	"strings"
	"testing"
)

// TestDropReasonNamesExhaustive pins that every DropReason renders as a
// real name: a reason added without a dropNames entry would show up as
// "unknown" (and as a bare number in older formats) in pfstat output
// and flight-recorder dumps.
func TestDropReasonNamesExhaustive(t *testing.T) {
	seen := make(map[string]bool, NumDropReasons)
	for r := DropReason(0); r < NumDropReasons; r++ {
		name := r.String()
		if name == "" || name == "unknown" {
			t.Errorf("DropReason(%d) has no String() name", r)
		}
		if seen[name] {
			t.Errorf("DropReason(%d) duplicates name %q", r, name)
		}
		seen[name] = true
		if got := dropCounterNames[r]; got != "span.drop."+name {
			t.Errorf("DropReason(%d): interned counter name %q, want %q", r, got, "span.drop."+name)
		}
	}
	if DropReason(NumDropReasons).String() != "unknown" {
		t.Errorf("out-of-range DropReason should render as unknown")
	}
}

// TestDropReasonsDocumented pins that every DropReason has a row in
// DESIGN.md's drop-taxonomy table, so the documentation cannot drift
// behind the code when a new reason is added.
func TestDropReasonsDocumented(t *testing.T) {
	doc, err := os.ReadFile("../../DESIGN.md")
	if err != nil {
		t.Fatalf("read DESIGN.md: %v", err)
	}
	text := string(doc)
	for r := DropReason(0); r < NumDropReasons; r++ {
		row := fmt.Sprintf("| `%s` |", r)
		if !strings.Contains(text, row) {
			t.Errorf("DESIGN.md has no drop-taxonomy table row %q for DropReason(%d)", row, r)
		}
	}
}
