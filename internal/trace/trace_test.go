package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	h := &Histogram{}
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatalf("empty histogram not zero: count=%d", h.Count())
	}
	samples := []time.Duration{
		500 * time.Nanosecond, // bucket 0
		time.Microsecond,
		3 * time.Microsecond,
		700 * time.Microsecond,
		2 * time.Millisecond,
		9 * time.Millisecond,
	}
	var sum time.Duration
	for _, d := range samples {
		h.Observe(d)
		sum += d
	}
	if h.Count() != uint64(len(samples)) {
		t.Fatalf("count = %d, want %d", h.Count(), len(samples))
	}
	if h.Min() != 500*time.Nanosecond || h.Max() != 9*time.Millisecond {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	if h.Mean() != sum/time.Duration(len(samples)) {
		t.Fatalf("mean = %v", h.Mean())
	}
	// Quantiles must be monotone, bounded by [min, max], and each
	// quantile must be an upper bound for at least ceil(q*n) samples.
	qs := []float64{0.1, 0.5, 0.9, 0.99, 1}
	var prev time.Duration
	for _, q := range qs {
		v := h.Quantile(q)
		if v < h.Min() || v > h.Max() {
			t.Fatalf("Quantile(%v) = %v outside [min,max]", q, v)
		}
		if v < prev {
			t.Fatalf("Quantile(%v) = %v < previous %v", q, v, prev)
		}
		prev = v
		rank := int(q * float64(len(samples)))
		if rank < 1 {
			rank = 1
		}
		covered := 0
		for _, d := range samples {
			if d <= v {
				covered++
			}
		}
		if covered < rank {
			t.Fatalf("Quantile(%v) = %v covers %d samples, want >= %d", q, v, covered, rank)
		}
	}
	if h.Quantile(1) != h.Max() {
		t.Fatalf("Quantile(1) = %v, want max %v", h.Quantile(1), h.Max())
	}
}

func TestHistogramSingleSample(t *testing.T) {
	h := &Histogram{}
	h.Observe(42 * time.Millisecond)
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 42*time.Millisecond {
			t.Fatalf("Quantile(%v) = %v, want 42ms", q, got)
		}
	}
}

func TestResetHostKeepsPointers(t *testing.T) {
	tr := New()
	c := tr.Counter("A", "pf.packets")
	g := tr.Gauge("A", "depth")
	h := tr.Histogram("A", "lat")
	c.Add(5)
	g.Set(3)
	h.Observe(time.Millisecond)
	tr.KernelTime("A", "pf", time.Second)
	tr.Counter("B", "pf.packets").Add(7)

	tr.ResetHost("A")

	if c.Value() != 0 || g.Value() != 0 || g.Max() != 0 || h.Count() != 0 {
		t.Fatalf("reset did not zero A metrics: c=%d g=%d/%d h=%d",
			c.Value(), g.Value(), g.Max(), h.Count())
	}
	// The cached pointers must still be the live registry entries.
	c.Add(2)
	if tr.Counter("A", "pf.packets") != c || c.Value() != 2 {
		t.Fatal("cached counter pointer detached from registry after reset")
	}
	if got := tr.Snapshot().CounterValue("B", "pf.packets"); got != 7 {
		t.Fatalf("reset of A touched B: %d", got)
	}
	for _, hp := range tr.Snapshot().Profiles {
		if hp.Host == "A" && hp.KernelTotal != 0 {
			t.Fatalf("reset did not clear A profile: %v", hp.KernelTotal)
		}
	}
}

func TestNilSinkMetricsOnly(t *testing.T) {
	tr := New()
	tr.CtxSwitch(0, "A", "p", 400*time.Microsecond)
	tr.FilterEval(0, "A", 1, 8, true)
	tr.Deliver(0, "A", 1, time.Millisecond)
	s := tr.Snapshot()
	if s.CounterValue("A", "sched.ctxswitch") != 1 ||
		s.CounterValue("A", "pf.evals") != 1 ||
		s.CounterValue("A", "pf.instrs") != 8 ||
		s.CounterValue("A", "pf.matched") != 1 ||
		s.CounterValue("A", "pf.delivered") != 1 {
		t.Fatalf("counters wrong without sink: %+v", s.Counters)
	}

	rec := &Recorder{}
	tr.SetSink(rec)
	tr.FilterEval(5*time.Millisecond, "A", 2, 4, false)
	if len(rec.Events) != 1 {
		t.Fatalf("got %d events, want 1", len(rec.Events))
	}
	want := Event{When: 5 * time.Millisecond, Kind: KindFilterEval, Host: "A", Port: 2, Value: 4}
	if rec.Events[0] != want {
		t.Fatalf("event = %+v, want %+v", rec.Events[0], want)
	}
}

func TestSnapshotPF(t *testing.T) {
	tr := New()
	// 100 packets: 250 predicate evaluations, 1000 instruction words.
	for i := 0; i < 100; i++ {
		tr.PacketIn(0, "B")
	}
	tr.Counter("B", "pf.evals").Add(250)
	tr.Counter("B", "pf.instrs").Add(1000)
	tr.KernelTime("B", "pf", 60*time.Millisecond)
	tr.KernelTime("B", "filter", 40*time.Millisecond)
	tr.KernelTime("B", "driver", 30*time.Millisecond)

	s := tr.Snapshot()
	pf, ok := s.PF("B")
	if !ok {
		t.Fatal("PF profile missing")
	}
	if pf.Packets != 100 {
		t.Fatalf("packets = %d", pf.Packets)
	}
	if pf.PerPacket != time.Millisecond {
		t.Fatalf("per-packet = %v, want 1ms", pf.PerPacket)
	}
	if pf.FilterFraction != 0.4 {
		t.Fatalf("filter fraction = %v, want 0.4", pf.FilterFraction)
	}
	if pf.AvgPredicates != 2.5 || pf.AvgInstrs != 10 {
		t.Fatalf("avg predicates/instrs = %v/%v", pf.AvgPredicates, pf.AvgInstrs)
	}
	if _, ok := s.PF("nosuch"); ok {
		t.Fatal("PF reported profile for unknown host")
	}

	// Kernel categories sorted by descending time.
	var hp *HostProfile
	for i := range s.Profiles {
		if s.Profiles[i].Host == "B" {
			hp = &s.Profiles[i]
		}
	}
	if hp == nil || len(hp.Kernel) != 3 {
		t.Fatalf("profile = %+v", hp)
	}
	if hp.Kernel[0].Tag != "pf" || hp.Kernel[1].Tag != "filter" || hp.Kernel[2].Tag != "driver" {
		t.Fatalf("kernel order = %v %v %v", hp.Kernel[0].Tag, hp.Kernel[1].Tag, hp.Kernel[2].Tag)
	}
}

func TestSnapshotExports(t *testing.T) {
	tr := New()
	tr.Deliver(time.Millisecond, "A", 1, 700*time.Microsecond)
	tr.Gauge("A", "pf.port1.depth").Set(4)
	tr.KernelTime("A", "pf", 10*time.Millisecond)
	tr.UserTime("A", 2*time.Millisecond)
	s := tr.Snapshot()

	raw, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if back.CounterValue("A", "pf.delivered") != 1 {
		t.Fatal("round-tripped snapshot lost counters")
	}

	text := s.Text()
	for _, want := range []string{"counters", "gauges", "latency histograms",
		"kernel profile, host A", "pf.delivery_latency", "pf.port1.depth"} {
		if !strings.Contains(text, want) {
			t.Fatalf("Text() missing %q:\n%s", want, text)
		}
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := New()
	rec := &Recorder{}
	tr.SetSink(rec)
	now := time.Duration(0)
	tr.CtxSwitch(now, "A", "reader", 400*time.Microsecond)
	tr.SyscallEnter(now, "A", "reader", "pfread")
	tr.KernelSlice(now, "A", "pf", "reader", 550*time.Microsecond)
	tr.SyscallExit(now+time.Millisecond, "A", "reader", "pfread")
	tr.UserSlice(now+time.Millisecond, "A", "reader", 200*time.Microsecond)
	tr.Copy(now, "A", "reader", "read", 128)
	tr.Wakeup(now, "A")
	tr.FilterEval(now, "A", 3, 12, true)
	tr.Enqueue(now, "A", 3, 1)
	tr.Dequeue(now, "A", 3, 0, 1)
	tr.Drop(now, "A", "queue")
	tr.Deliver(now, "A", 3, time.Millisecond)
	tr.WireTx(now, "B", 576, 460*time.Microsecond)
	tr.WireRx(now, "A", 576)
	tr.Proto(now, "A", "ip_in")

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, rec.Events); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("chrome trace is not valid JSON")
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
			Ts   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	// Every non-metadata event needs a phase; B/E must balance per tid.
	begins := map[int]int{}
	procs := 0
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "":
			t.Fatalf("event %q missing phase", e.Name)
		case "B":
			begins[e.Tid]++
		case "E":
			begins[e.Tid]--
			if begins[e.Tid] < 0 {
				t.Fatalf("unbalanced E on tid %d", e.Tid)
			}
		case "M":
			if e.Name == "process_name" {
				procs++
			}
		}
	}
	for tid, n := range begins {
		if n != 0 {
			t.Fatalf("tid %d has %d unmatched B events", tid, n)
		}
	}
	if procs != 2 {
		t.Fatalf("got %d process_name records, want 2 (hosts A and B)", procs)
	}
}

func TestKindString(t *testing.T) {
	if KindFilterEval.String() != "filter_eval" || KindWireTx.String() != "wire_tx" {
		t.Fatal("kind names wrong")
	}
	if Kind(200).String() != "unknown" {
		t.Fatal("out-of-range kind")
	}
}
