package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func spanTracer(cfg SpanConfig) (*Tracer, *Spans) {
	tr := New()
	sp := tr.EnableSpans(cfg)
	return tr, sp
}

// TestSpanNilSafety: every span API method must be a no-op on a nil
// tracer, on a tracer without spans, and with span id 0 — call sites
// carry no guards.
func TestSpanNilSafety(t *testing.T) {
	var nilTr *Tracer
	plain := New() // spans not enabled
	for _, tr := range []*Tracer{nilTr, plain} {
		if id := tr.SpanOrigin(0, "A"); id != 0 {
			t.Fatalf("SpanOrigin = %d, want 0", id)
		}
		if id := tr.LastSpan(); id != 0 {
			t.Fatalf("LastSpan = %d, want 0", id)
		}
		tr.SpanNextParent(7)
		tr.SpanFork(7, 0, "A")
		tr.SpanMark(7, StageNIC, 0)
		tr.SpanFlag(7, FlagCorrupt)
		tr.SpanPort(7, 3)
		tr.SpanClass(7, "pup")
		tr.SpanDrop(7, 0, "A", DropNoMatch)
		tr.SpanDelivered(7, 0, "A", 3)
		tr.SpanKernelDelivered(7, 0, "A", "ip")
		tr.SpanUserDrop(7, 0, "A", DropChecksum)
		tr.SpanClaimArm(7)
		if id := tr.SpanClaimTake(); id != 0 {
			t.Fatalf("SpanClaimTake = %d, want 0", id)
		}
		tr.SpanClaimSettle(0, "A", true)
		if sp := tr.Spans(); tr == nilTr && sp != nil {
			t.Fatal("nil tracer returned a span tracker")
		}
	}
	// Span id 0 (sampled out) must not perturb accounting.
	tr, sp := spanTracer(SpanConfig{})
	tr.SpanDrop(0, 0, "A", DropNoMatch)
	tr.SpanDelivered(0, 0, "A", 1)
	tr.SpanKernelDelivered(0, 0, "A", "ip")
	tr.SpanUserDrop(0, 0, "A", DropChecksum)
	if sp.Created != 0 || sp.Terminations() != 0 {
		t.Fatalf("span id 0 perturbed accounting: created=%d terms=%d", sp.Created, sp.Terminations())
	}
}

// TestSpanSamplingDeterministic: Sample=N keeps exactly every Nth root
// span by origin order, independent of anything else.
func TestSpanSamplingDeterministic(t *testing.T) {
	tr, sp := spanTracer(SpanConfig{Sample: 3})
	var kept []int
	for i := 0; i < 10; i++ {
		if id := tr.SpanOrigin(time.Duration(i), "A"); id != 0 {
			kept = append(kept, i)
			if tr.LastSpan() != id {
				t.Fatalf("LastSpan = %d, want %d", tr.LastSpan(), id)
			}
		} else if tr.LastSpan() != 0 {
			t.Fatalf("LastSpan = %d after sampled-out origin, want 0", tr.LastSpan())
		}
	}
	want := []int{0, 3, 6, 9}
	if len(kept) != len(want) {
		t.Fatalf("kept %v, want %v", kept, want)
	}
	for i := range want {
		if kept[i] != want[i] {
			t.Fatalf("kept %v, want %v", kept, want)
		}
	}
	if sp.Created != 4 {
		t.Fatalf("Created = %d, want 4", sp.Created)
	}
}

// TestSpanNextParentBypassesSampling: a forwarded re-transmit joins its
// parent's tree even when sampling would have skipped it.
func TestSpanNextParentBypassesSampling(t *testing.T) {
	tr, sp := spanTracer(SpanConfig{Sample: 1000})
	root := tr.SpanOrigin(0, "gw")
	if root == 0 {
		t.Fatal("first origin should be sampled in")
	}
	tr.SpanNextParent(root)
	child := tr.SpanOrigin(time.Microsecond, "gw")
	if child == 0 {
		t.Fatal("linked origin was sampled out")
	}
	r := sp.rec(child)
	if r == nil || r.Parent != root || r.Flags&FlagChild == 0 {
		t.Fatalf("child record = %+v, want parent=%d with FlagChild", r, root)
	}
	// The cell is one-shot: the next origin is a fresh root candidate.
	if id := tr.SpanOrigin(2*time.Microsecond, "gw"); id != 0 {
		r := sp.rec(id)
		if r.Parent != 0 {
			t.Fatalf("parent cell leaked into unrelated origin: %+v", r)
		}
	}
}

// TestSpanConservationAccounting: created == delivered + kernel +
// drops + live, and drops land in the right taxonomy slot and per-host
// counter.
func TestSpanConservationAccounting(t *testing.T) {
	tr, sp := spanTracer(SpanConfig{})
	a := tr.SpanOrigin(0, "A")
	b := tr.SpanOrigin(0, "A")
	c := tr.SpanOrigin(0, "A")
	d := tr.SpanOrigin(0, "A")
	tr.SpanMark(a, StageNIC, time.Microsecond)
	tr.SpanMark(a, StageDemux, 2*time.Microsecond)
	tr.SpanMark(a, StageFilter, 3*time.Microsecond)
	tr.SpanMark(a, StageQueue, 4*time.Microsecond)
	tr.SpanDelivered(a, 10*time.Microsecond, "B", 2)
	tr.SpanKernelDelivered(b, 5*time.Microsecond, "B", "ip")
	tr.SpanDrop(c, 6*time.Microsecond, "B", DropNoMatch)
	_ = d // stays live
	if sp.Created != 4 || sp.DeliveredUser != 1 || sp.DeliveredKernel != 1 {
		t.Fatalf("created=%d user=%d kernel=%d", sp.Created, sp.DeliveredUser, sp.DeliveredKernel)
	}
	if sp.Drops[DropNoMatch] != 1 || sp.TotalDrops() != 1 {
		t.Fatalf("drops = %v", sp.Drops)
	}
	if sp.Live() != 1 {
		t.Fatalf("Live = %d, want 1", sp.Live())
	}
	if got := tr.Counter("B", "span.drop.nomatch").Value(); got != 1 {
		t.Fatalf("span.drop.nomatch = %d, want 1", got)
	}
	if sp.Total().Count() != 1 {
		t.Fatalf("total histogram count = %d, want 1", sp.Total().Count())
	}
	r := sp.rec(a)
	if r.TermString() != "delivered" || r.Final != "B" || r.Port != 2 {
		t.Fatalf("delivered record = %+v", r)
	}
	if when, ok := r.MarkAt(StageRead); !ok || when != 10*time.Microsecond {
		t.Fatalf("StageRead mark = %v, %v", when, ok)
	}
	if reason, ok := sp.rec(c).Dropped(); !ok || reason != DropNoMatch {
		t.Fatalf("Dropped() = %v, %v", reason, ok)
	}
}

// TestSpanRingWrapEviction: creating more spans than the ring holds
// evicts the oldest records; evicting a live record counts in Wrapped,
// and aggregate accounting is unaffected by eviction.
func TestSpanRingWrapEviction(t *testing.T) {
	tr, sp := spanTracer(SpanConfig{Ring: 4})
	first := tr.SpanOrigin(0, "A") // will be evicted while live
	for i := 0; i < 4; i++ {
		id := tr.SpanOrigin(0, "A")
		tr.SpanDrop(id, 0, "A", DropNoMatch)
	}
	if sp.Wrapped != 1 {
		t.Fatalf("Wrapped = %d, want 1", sp.Wrapped)
	}
	if sp.rec(first) != nil {
		t.Fatal("evicted record still resolvable")
	}
	// Terminating an evicted span still updates aggregates, silently.
	tr.SpanDrop(first, 0, "A", DropCrash)
	if sp.Drops[DropCrash] != 1 {
		t.Fatalf("evicted drop not counted: %v", sp.Drops)
	}
	if sp.Created != 5 || sp.TotalDrops() != 5 || sp.Live() != 0 {
		t.Fatalf("created=%d drops=%d live=%d", sp.Created, sp.TotalDrops(), sp.Live())
	}
}

// TestSpanDoubleTermination: a second terminal verdict on the same
// span is rejected and counted, not double-booked.
func TestSpanDoubleTermination(t *testing.T) {
	tr, sp := spanTracer(SpanConfig{})
	id := tr.SpanOrigin(0, "A")
	tr.SpanDrop(id, 0, "A", DropNoMatch)
	tr.SpanDelivered(id, 0, "A", 1)
	tr.SpanDrop(id, 0, "A", DropCrash)
	tr.SpanKernelDelivered(id, 0, "A", "ip")
	if sp.DoubleTerm != 3 {
		t.Fatalf("DoubleTerm = %d, want 3", sp.DoubleTerm)
	}
	if sp.TotalDrops() != 1 || sp.DeliveredUser != 0 || sp.DeliveredKernel != 0 {
		t.Fatalf("double termination leaked into aggregates: %+v", sp.Drops)
	}
}

// TestSpanClaimHandoff covers the three kernel-claim outcomes: taken
// by a claim-aware stack, claimed but untaken (settled as generic
// kernel consumption), and unclaimed (the span stays with the filter
// path).
func TestSpanClaimHandoff(t *testing.T) {
	tr, sp := spanTracer(SpanConfig{})

	// Claim-aware: the stack takes the span and terminates it itself.
	a := tr.SpanOrigin(0, "A")
	tr.SpanClaimArm(a)
	if got := tr.SpanClaimTake(); got != a {
		t.Fatalf("SpanClaimTake = %d, want %d", got, a)
	}
	tr.SpanKernelDelivered(a, 0, "A", "ip")
	tr.SpanClaimSettle(0, "A", true)
	if sp.DeliveredKernel != 1 || sp.DoubleTerm != 0 {
		t.Fatalf("taken claim double-settled: kernel=%d dbl=%d", sp.DeliveredKernel, sp.DoubleTerm)
	}

	// Claim-unaware: claimed but never taken settles as "kproto".
	b := tr.SpanOrigin(0, "A")
	tr.SpanClaimArm(b)
	tr.SpanClaimSettle(time.Microsecond, "A", true)
	if sp.DeliveredKernel != 2 {
		t.Fatalf("untaken claim not settled: kernel=%d", sp.DeliveredKernel)
	}
	if r := sp.rec(b); r.Class != "kproto" {
		t.Fatalf("settled class = %q, want kproto", r.Class)
	}

	// Unclaimed: the span continues on the packet-filter path.
	c := tr.SpanOrigin(0, "A")
	tr.SpanClaimArm(c)
	tr.SpanClaimSettle(0, "A", false)
	if sp.Live() != 1 {
		t.Fatalf("unclaimed span terminated early: live=%d", sp.Live())
	}
	// A later take must not see the stale offer.
	if got := tr.SpanClaimTake(); got != 0 {
		t.Fatalf("stale claim offer survived settle: %d", got)
	}
	_ = c
}

// TestSpanUserDropChildConservation: a user-level verdict is a
// born-dead child — the parent's delivery and the child's drop each
// terminate once, and both are visible in the aggregates.
func TestSpanUserDropChildConservation(t *testing.T) {
	tr, sp := spanTracer(SpanConfig{})
	id := tr.SpanOrigin(0, "A")
	tr.SpanDelivered(id, time.Microsecond, "B", 1)
	tr.SpanUserDrop(id, 2*time.Microsecond, "B", DropChecksum)
	if sp.Created != 2 || sp.DeliveredUser != 1 || sp.Drops[DropChecksum] != 1 {
		t.Fatalf("created=%d user=%d drops=%v", sp.Created, sp.DeliveredUser, sp.Drops)
	}
	if sp.Live() != 0 {
		t.Fatalf("Live = %d, want 0", sp.Live())
	}
	var child *SpanRecord
	sp.VisitRecords(func(r *SpanRecord) {
		if r.Parent == id {
			child = r
		}
	})
	if child == nil || child.Flags&FlagChild == 0 {
		t.Fatalf("no child record for user drop: %+v", child)
	}
	if reason, ok := child.Dropped(); !ok || reason != DropChecksum {
		t.Fatalf("child verdict = %v, %v", reason, ok)
	}
}

// TestSpanFlagReconciliation: fault flags count toward the ledger
// reconciliation totals exactly once per flag call.
func TestSpanFlagReconciliation(t *testing.T) {
	tr, sp := spanTracer(SpanConfig{})
	id := tr.SpanOrigin(0, "A")
	tr.SpanFlag(id, FlagCorrupt)
	tr.SpanFlag(id, FlagDelayed)
	dup := tr.SpanFork(id, 0, "A")
	tr.SpanFlag(dup, FlagDup)
	if sp.FlaggedCorrupt != 1 || sp.FlaggedDup != 1 || sp.FlaggedDelayed != 1 {
		t.Fatalf("flags = %d/%d/%d", sp.FlaggedCorrupt, sp.FlaggedDup, sp.FlaggedDelayed)
	}
	r := sp.rec(id)
	if r.Flags&FlagCorrupt == 0 || r.Flags&FlagDelayed == 0 {
		t.Fatalf("record flags = %b", r.Flags)
	}
}

// TestSpanWatchdogDropRate: the SLO watchdog trips once when the drop
// rate breaches the configured ceiling, after MinSample terminations.
func TestSpanWatchdogDropRate(t *testing.T) {
	fired := 0
	tr, sp := spanTracer(SpanConfig{
		MaxDropRate: 0.01,
		MinSample:   1,
		OnAnomaly:   func(string) { fired++ },
	})
	for i := 0; i < 200; i++ {
		id := tr.SpanOrigin(0, "A")
		tr.SpanDrop(id, 0, "A", DropPortQueue)
	}
	tripped, why := sp.Tripped()
	if !tripped || !strings.Contains(why, "drop rate") {
		t.Fatalf("watchdog tripped=%v why=%q", tripped, why)
	}
	if fired != 1 {
		t.Fatalf("OnAnomaly fired %d times, want 1", fired)
	}
}

// TestSpanWatchdogP99: the latency watchdog trips on a p99 breach.
func TestSpanWatchdogP99(t *testing.T) {
	tr, sp := spanTracer(SpanConfig{
		P99:       time.Millisecond,
		MinSample: 1,
	})
	for i := 0; i < 200; i++ {
		id := tr.SpanOrigin(0, "A")
		tr.SpanDelivered(id, 50*time.Millisecond, "A", 1)
	}
	tripped, why := sp.Tripped()
	if !tripped || !strings.Contains(why, "p99") {
		t.Fatalf("watchdog tripped=%v why=%q", tripped, why)
	}
}

// TestSpanDump: the flight-recorder dump names the aggregates, the
// taxonomy, and each record's timeline.
func TestSpanDump(t *testing.T) {
	tr, sp := spanTracer(SpanConfig{})
	a := tr.SpanOrigin(0, "A")
	tr.SpanClass(a, "pup")
	tr.SpanMark(a, StageNIC, time.Microsecond)
	tr.SpanDrop(a, 2*time.Microsecond, "B", DropNoMatch)
	var buf bytes.Buffer
	sp.Dump(&buf)
	out := buf.String()
	for _, want := range []string{
		"1 spans created", "drop taxonomy", "nomatch",
		"class=pup", "drop:nomatch", "origin@0s", "nic@1µs", "A->B",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}

// fakeFailer simulates a failing test for DumpOnFailure.
type fakeFailer struct {
	name     string
	failed   bool
	cleanups []func()
}

func (f *fakeFailer) Failed() bool      { return f.failed }
func (f *fakeFailer) Name() string      { return f.name }
func (f *fakeFailer) Cleanup(fn func()) { f.cleanups = append(f.cleanups, fn) }
func (f *fakeFailer) runCleanups() {
	for _, fn := range f.cleanups {
		fn()
	}
}

// TestDumpOnFailure: a failed test leaves a flight-recorder dump in
// $FLIGHT_RECORDER_DIR; a passing one leaves nothing.
func TestDumpOnFailure(t *testing.T) {
	dir := t.TempDir()
	t.Setenv("FLIGHT_RECORDER_DIR", dir)

	tr, sp := spanTracer(SpanConfig{})
	id := tr.SpanOrigin(0, "A")
	tr.SpanDrop(id, 0, "A", DropCrash)

	pass := &fakeFailer{name: "TestPasses"}
	DumpOnFailure(pass, sp)
	pass.runCleanups()
	if _, err := os.Stat(filepath.Join(dir, "TestPasses.flight.txt")); !os.IsNotExist(err) {
		t.Fatal("passing test wrote a flight dump")
	}

	fail := &fakeFailer{name: "TestFails/sub case", failed: true}
	DumpOnFailure(fail, sp)
	fail.runCleanups()
	data, err := os.ReadFile(filepath.Join(dir, "TestFails_sub_case.flight.txt"))
	if err != nil {
		t.Fatalf("no flight dump: %v", err)
	}
	if !strings.Contains(string(data), "drop taxonomy") {
		t.Fatalf("dump content: %s", data)
	}
}

// TestDumpOnPanic: the deferred hook dumps the recorder and re-panics.
func TestDumpOnPanic(t *testing.T) {
	tr, sp := spanTracer(SpanConfig{})
	tr.SpanOrigin(0, "A")
	var buf bytes.Buffer
	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Error("panic was swallowed")
			}
		}()
		func() {
			defer DumpOnPanic(sp, &buf)()
			panic("boom")
		}()
	}()
	out := buf.String()
	if !strings.Contains(out, "panic: boom") || !strings.Contains(out, "flight recorder") {
		t.Fatalf("panic dump: %s", out)
	}
}

// TestStageAndReasonStrings pins the snake_case names the taxonomy
// counters and dumps are built from.
func TestStageAndReasonStrings(t *testing.T) {
	if StageOrigin.String() != "origin" || StageRead.String() != "read" {
		t.Fatal("stage names changed")
	}
	if Stage(200).String() != "unknown" || DropReason(200).String() != "unknown" {
		t.Fatal("out-of-range names should be unknown")
	}
	for r := DropReason(0); r < NumDropReasons; r++ {
		if r.String() == "" || r.String() == "unknown" {
			t.Fatalf("reason %d has no name", r)
		}
	}
}
