package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// decodeChrome re-parses exporter output the way chrome://tracing
// does: top-level object with a traceEvents array, every element an
// object with the mandatory ph/pid/ts fields.
func decodeChrome(t *testing.T, data []byte) []map[string]any {
	t.Helper()
	var top struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &top); err != nil {
		t.Fatalf("exporter emitted invalid JSON: %v\n%s", err, data)
	}
	if top.TraceEvents == nil {
		t.Fatalf("traceEvents is null, not an array — chrome://tracing rejects it:\n%s", data)
	}
	for i, ev := range top.TraceEvents {
		if _, ok := ev["ph"].(string); !ok {
			t.Fatalf("event %d missing ph: %v", i, ev)
		}
		if _, ok := ev["pid"].(float64); !ok {
			t.Fatalf("event %d missing pid: %v", i, ev)
		}
	}
	return top.TraceEvents
}

// TestChromeTraceEmptyStream: an empty recording still produces a
// valid, loadable JSON document (empty array, not null).
func TestChromeTraceEmptyStream(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	events := decodeChrome(t, buf.Bytes())
	if len(events) != 0 {
		t.Fatalf("empty stream produced %d events", len(events))
	}
}

// TestChromeTraceZeroDurationEvents: zero-length slices (a kernel
// charge of 0, an instantaneous wire tx) must stay legal complete
// events — dur omitted or zero, never negative or NaN.
func TestChromeTraceZeroDurationEvents(t *testing.T) {
	events := []Event{
		{Kind: KindKernelSlice, When: time.Millisecond, Host: "A", Tag: "ip", Value: 0},
		{Kind: KindUserSlice, When: time.Millisecond, Host: "A", Proc: "reader", Value: 0},
		{Kind: KindWireTx, When: 2 * time.Millisecond, Host: "A", Value: 64, Aux: 0},
		{Kind: KindCtxSwitch, When: 3 * time.Millisecond, Host: "A", Proc: "reader", Value: 0},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	out := decodeChrome(t, buf.Bytes())
	slices := 0
	for _, ev := range out {
		if ev["ph"] == "X" {
			slices++
			if d, ok := ev["dur"].(float64); ok && d < 0 {
				t.Fatalf("negative duration: %v", ev)
			}
		}
	}
	if slices != 4 {
		t.Fatalf("got %d complete events, want 4", slices)
	}
}

// TestChromeTraceSpanRecords: span records render as stage slices plus
// a terminal instant, and the whole document stays valid JSON.
func TestChromeTraceSpanRecords(t *testing.T) {
	tr, sp := New(), (*Spans)(nil)
	sp = tr.EnableSpans(SpanConfig{})
	root := tr.SpanOrigin(0, "A")
	tr.SpanClass(root, "pup")
	tr.SpanMark(root, StageNIC, 5*time.Microsecond)
	tr.SpanMark(root, StageDemux, 9*time.Microsecond)
	tr.SpanMark(root, StageQueue, 9*time.Microsecond) // zero-duration segment
	tr.SpanDelivered(root, 20*time.Microsecond, "B", 3)
	child := tr.SpanFork(root, 21*time.Microsecond, "B")
	tr.SpanDrop(child, 21*time.Microsecond, "B", DropChecksum)
	live := tr.SpanOrigin(30*time.Microsecond, "A") // no terminal instant
	_ = live

	var buf bytes.Buffer
	if err := WriteChromeTraceSpans(&buf, nil, sp.RecordsSnapshot()); err != nil {
		t.Fatal(err)
	}
	out := decodeChrome(t, buf.Bytes())

	var slices, instants int
	var sawDelivered, sawDrop bool
	for _, ev := range out {
		if ev["cat"] != "span" {
			continue
		}
		switch ev["ph"] {
		case "X":
			slices++
		case "i":
			instants++
			name := ev["name"].(string)
			if name == "span:delivered" {
				sawDelivered = true
				args := ev["args"].(map[string]any)
				if args["class"] != "pup" || args["port"] != float64(3) {
					t.Fatalf("delivered args = %v", args)
				}
			}
			if strings.HasPrefix(name, "span:drop:") {
				sawDrop = true
				args := ev["args"].(map[string]any)
				if args["parent"] != float64(root) {
					t.Fatalf("drop instant lost its parent link: %v", args)
				}
			}
		}
	}
	// Root span: origin->nic, nic->demux, demux->queue (0-length),
	// queue->read = 4 slices; child and live spans have single marks.
	if slices != 4 {
		t.Fatalf("got %d span slices, want 4", slices)
	}
	if instants != 2 || !sawDelivered || !sawDrop {
		t.Fatalf("instants=%d delivered=%v drop=%v", instants, sawDelivered, sawDrop)
	}
}
