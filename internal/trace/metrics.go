package trace

import (
	"math/bits"
	"time"
)

// metricKey scopes a metric name to one simulated host.
type metricKey struct{ host, name string }

// Counter is a monotonically increasing event count.
type Counter struct{ v uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Gauge is an instantaneous level (queue depth, window size) that also
// remembers its high-water mark.
type Gauge struct{ v, max int64 }

// Set records the current level.
func (g *Gauge) Set(v int64) {
	g.v = v
	if v > g.max {
		g.max = v
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v }

// Max returns the high-water mark.
func (g *Gauge) Max() int64 { return g.max }

// histBuckets is the number of log2-microsecond histogram buckets;
// bucket i holds observations in [2^(i-1), 2^i) µs (bucket 0 holds
// sub-microsecond observations), so 48 buckets span every virtual
// duration a simulation can produce.
const histBuckets = 48

// Histogram is a fixed-bucket virtual-time latency histogram.  Buckets
// are log2-spaced in microseconds, which is plenty of resolution for
// the millisecond-scale world of the paper while keeping snapshots
// deterministic and tiny.
type Histogram struct {
	buckets  [histBuckets]uint64
	count    uint64
	sum      time.Duration
	min, max time.Duration
}

func bucketOf(d time.Duration) int {
	if d < 0 {
		d = 0
	}
	i := bits.Len64(uint64(d / time.Microsecond))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// Observe adds one sample.
func (h *Histogram) Observe(d time.Duration) {
	h.buckets[bucketOf(d)]++
	if h.count == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.count++
	h.sum += d
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Min and Max return the exact extreme samples.
func (h *Histogram) Min() time.Duration { return h.min }
func (h *Histogram) Max() time.Duration { return h.max }

// Mean returns the exact average sample.
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1): the
// upper edge of the bucket containing it, clamped to the exact
// maximum.  Resolution is a factor of two, which is enough to place a
// latency on the millisecond scale the paper reasons at.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	rank := uint64(q * float64(h.count))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, n := range h.buckets {
		cum += n
		if cum >= rank {
			// Bucket i (i >= 1) holds samples in [2^(i-1), 2^i) µs;
			// bucket 0 holds sub-microsecond samples.
			ub := time.Microsecond
			if i > 0 {
				ub = time.Duration(1) << uint(i) * time.Microsecond
			}
			if ub > h.max {
				ub = h.max
			}
			if ub < h.min {
				ub = h.min
			}
			return ub
		}
	}
	return h.max
}

// zero resets the histogram in place.
func (h *Histogram) zero() { *h = Histogram{} }

// registry is the tracer's metric store.  Lookups allocate only on
// first use of a (host, name) pair; hot instrumentation sites cache
// the returned pointers.
type registry struct {
	counters   map[metricKey]*Counter
	gauges     map[metricKey]*Gauge
	histograms map[metricKey]*Histogram
}

func (r *registry) init() {
	r.counters = make(map[metricKey]*Counter)
	r.gauges = make(map[metricKey]*Gauge)
	r.histograms = make(map[metricKey]*Histogram)
}

func (r *registry) counter(host, name string) *Counter {
	k := metricKey{host, name}
	c := r.counters[k]
	if c == nil {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

func (r *registry) gauge(host, name string) *Gauge {
	k := metricKey{host, name}
	g := r.gauges[k]
	if g == nil {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

func (r *registry) histogram(host, name string) *Histogram {
	k := metricKey{host, name}
	h := r.histograms[k]
	if h == nil {
		h = &Histogram{}
		r.histograms[k] = h
	}
	return h
}

// resetHost zeroes every metric scoped to host in place, so cached
// pointers stay live.
func (r *registry) resetHost(host string) {
	for k, c := range r.counters {
		if k.host == host {
			c.v = 0
		}
	}
	for k, g := range r.gauges {
		if k.host == host {
			*g = Gauge{}
		}
	}
	for k, h := range r.histograms {
		if k.host == host {
			h.zero()
		}
	}
}
