package trace

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"
)

// CounterSnap is one counter in a snapshot.
type CounterSnap struct {
	Host  string `json:"host"`
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugeSnap is one gauge in a snapshot.
type GaugeSnap struct {
	Host  string `json:"host"`
	Name  string `json:"name"`
	Value int64  `json:"value"`
	Max   int64  `json:"max"`
}

// HistogramSnap is one histogram in a snapshot, with percentile
// summaries of the virtual-time distribution.
type HistogramSnap struct {
	Host  string        `json:"host"`
	Name  string        `json:"name"`
	Count uint64        `json:"count"`
	Min   time.Duration `json:"min"`
	Mean  time.Duration `json:"mean"`
	P50   time.Duration `json:"p50"`
	P90   time.Duration `json:"p90"`
	P99   time.Duration `json:"p99"`
	Max   time.Duration `json:"max"`
}

// Snapshot is a point-in-time, machine-readable export of everything
// the tracer knows: counters, gauges, latency histograms and the
// per-host kernel-time profile.  It marshals to the JSON format the
// -json flags of pfstat, pfbench and pfmon emit.  All orderings are
// deterministic (sorted by host, then name/tag).
type Snapshot struct {
	Counters   []CounterSnap   `json:"counters"`
	Gauges     []GaugeSnap     `json:"gauges,omitempty"`
	Histograms []HistogramSnap `json:"histograms,omitempty"`
	Profiles   []HostProfile   `json:"kernel_profile,omitempty"`
}

// Snapshot captures the tracer's current state.
func (t *Tracer) Snapshot() *Snapshot {
	s := &Snapshot{}
	for k, c := range t.reg.counters {
		if c.v != 0 {
			s.Counters = append(s.Counters, CounterSnap{Host: k.host, Name: k.name, Value: c.v})
		}
	}
	sort.Slice(s.Counters, func(i, j int) bool {
		a, b := s.Counters[i], s.Counters[j]
		if a.Host != b.Host {
			return a.Host < b.Host
		}
		return a.Name < b.Name
	})
	for k, g := range t.reg.gauges {
		s.Gauges = append(s.Gauges, GaugeSnap{Host: k.host, Name: k.name, Value: g.v, Max: g.max})
	}
	sort.Slice(s.Gauges, func(i, j int) bool {
		a, b := s.Gauges[i], s.Gauges[j]
		if a.Host != b.Host {
			return a.Host < b.Host
		}
		return a.Name < b.Name
	})
	for k, h := range t.reg.histograms {
		if h.count == 0 {
			continue
		}
		s.Histograms = append(s.Histograms, HistogramSnap{
			Host: k.host, Name: k.name, Count: h.count,
			Min: h.min, Mean: h.Mean(),
			P50: h.Quantile(0.50), P90: h.Quantile(0.90), P99: h.Quantile(0.99),
			Max: h.max,
		})
	}
	sort.Slice(s.Histograms, func(i, j int) bool {
		a, b := s.Histograms[i], s.Histograms[j]
		if a.Host != b.Host {
			return a.Host < b.Host
		}
		return a.Name < b.Name
	})

	hosts := map[string]*HostProfile{}
	hostOf := func(name string) *HostProfile {
		hp := hosts[name]
		if hp == nil {
			hp = &HostProfile{Host: name}
			hosts[name] = hp
		}
		return hp
	}
	for k, d := range t.prof.kernel {
		hp := hostOf(k.host)
		hp.Kernel = append(hp.Kernel, KernelCat{Tag: k.name, Time: d})
		hp.KernelTotal += d
	}
	for h, d := range t.prof.user {
		hostOf(h).User = d
	}
	for _, hp := range hosts {
		for i := range hp.Kernel {
			if hp.KernelTotal > 0 {
				hp.Kernel[i].Pct = float64(hp.Kernel[i].Time) / float64(hp.KernelTotal)
			}
		}
		sort.Slice(hp.Kernel, func(i, j int) bool {
			a, b := hp.Kernel[i], hp.Kernel[j]
			if a.Time != b.Time {
				return a.Time > b.Time
			}
			return a.Tag < b.Tag
		})
		s.Profiles = append(s.Profiles, *hp)
	}
	sort.Slice(s.Profiles, func(i, j int) bool { return s.Profiles[i].Host < s.Profiles[j].Host })
	return s
}

// CounterValue returns the snapshotted value of a counter (zero if
// absent).
func (s *Snapshot) CounterValue(host, name string) uint64 {
	for _, c := range s.Counters {
		if c.Host == host && c.Name == name {
			return c.Value
		}
	}
	return 0
}

// JSON marshals the snapshot with stable field order and indentation.
func (s *Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

func msf(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d)/float64(time.Millisecond))
}

// Text renders the snapshot as aligned tables: counters, queue gauges,
// latency percentiles and the per-host kernel-time profile.
func (s *Snapshot) Text() string {
	var b strings.Builder

	if len(s.Counters) > 0 {
		b.WriteString("counters\n")
		w := 0
		for _, c := range s.Counters {
			if n := len(c.Host) + 1 + len(c.Name); n > w {
				w = n
			}
		}
		for _, c := range s.Counters {
			fmt.Fprintf(&b, "  %-*s %12d\n", w, c.Host+"."+c.Name, c.Value)
		}
	}

	if len(s.Gauges) > 0 {
		b.WriteString("\ngauges (current / high-water)\n")
		for _, g := range s.Gauges {
			fmt.Fprintf(&b, "  %-32s %6d / %d\n", g.Host+"."+g.Name, g.Value, g.Max)
		}
	}

	if len(s.Histograms) > 0 {
		b.WriteString("\nlatency histograms (virtual mSec)\n")
		fmt.Fprintf(&b, "  %-32s %8s %9s %9s %9s %9s %9s %9s\n",
			"", "count", "min", "mean", "p50", "p90", "p99", "max")
		for _, h := range s.Histograms {
			fmt.Fprintf(&b, "  %-32s %8d %9s %9s %9s %9s %9s %9s\n",
				h.Host+"."+h.Name, h.Count, msf(h.Min), msf(h.Mean),
				msf(h.P50), msf(h.P90), msf(h.P99), msf(h.Max))
		}
	}

	for _, hp := range s.Profiles {
		fmt.Fprintf(&b, "\nkernel profile, host %s (total %s mSec kernel, %s mSec user)\n",
			hp.Host, msf(hp.KernelTotal), msf(hp.User))
		for _, c := range hp.Kernel {
			fmt.Fprintf(&b, "  %-12s %10s mSec  %5.1f%%\n", c.Tag, msf(c.Time), 100*c.Pct)
		}
		if pf, ok := s.PF(hp.Host); ok {
			fmt.Fprintf(&b, "  §6.1 summary: %d pf packets, %s mSec/packet, "+
				"%.0f%% evaluating predicates, %.1f predicates (%.1f instrs) per packet\n",
				pf.Packets, msf(pf.PerPacket), 100*pf.FilterFraction,
				pf.AvgPredicates, pf.AvgInstrs)
		}
	}
	return b.String()
}
