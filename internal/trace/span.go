package trace

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// Per-packet provenance: every sampled packet is stamped with a span
// at its transmit origin and carried through each stage of the receive
// path — wire transit, NIC queue, coalesced burst, kernel demux,
// filter evaluation, port enqueue, user read — so a run can answer
// "where did *this* packet spend its time, and where exactly do
// packets die under load?".  A span terminates exactly once: delivered
// to a user read, consumed by a kernel-resident protocol, or dead with
// a typed DropReason.  Span records live in a fixed-size ring (the
// flight recorder) with a flat encoding, so steady-state tracking
// allocates nothing and the recorder can be dumped on any anomaly.

// Stage is one boundary a packet crosses on its way from transmit
// origin to user delivery.
type Stage uint8

const (
	// StageOrigin: the frame was handed to the interface for
	// transmission (workload generator or protocol send).
	StageOrigin Stage = iota
	// StageWire: the frame started occupying the shared medium.
	StageWire
	// StageNIC: a receiving interface accepted the frame into its
	// input queue.
	StageNIC
	// StageBurst: the frame entered a coalescing burst buffer.
	StageBurst
	// StageDemux: the frame entered the packet-filter input path
	// (after any kernel-protocol claim).
	StageDemux
	// StageFilter: filter evaluation for the frame retired on the
	// host CPU.
	StageFilter
	// StageQueue: the frame was enqueued on an accepting port (or
	// deposited in its mapped ring).
	StageQueue
	// StageRead: a user read/reap returned the frame.
	StageRead

	numStages
)

var stageNames = [numStages]string{
	"origin", "wire", "nic", "burst", "demux", "filter", "queue", "read",
}

// String returns the stage's snake_case name.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// DropReason classifies every place a packet can die.  The taxonomy is
// rolled into per-host "span.drop.<reason>" counters and reconciled
// against the fault engine's ledger: an injected wire drop is the only
// way a span dies with DropWireFault, so the two counts match exactly.
type DropReason uint8

const (
	// DropWireFault: the fault injector (or a legacy DropEvery/DropFn
	// hook) discarded the frame after it occupied the wire.
	DropWireFault DropReason = iota
	// DropNoReceiver: no attached interface accepted the frame's
	// destination address.
	DropNoReceiver
	// DropNICDown: the host was down — at transmit (a dead machine
	// sends nothing) or at receive (frames for a crashed host fall on
	// the floor).
	DropNICDown
	// DropNICQueue: the interface input queue overflowed.
	DropNICQueue
	// DropNoMatch: no bound filter accepted the packet.
	DropNoMatch
	// DropPortQueue: the accepting port's input queue was full
	// (including a fault-engine queue squeeze).
	DropPortQueue
	// DropRingSlots: the accepting port's mapped ring had no free
	// receive slot (all queued or lent to a reaping process).
	DropRingSlots
	// DropCrash: the packet was in flight inside the kernel — NIC
	// pending work, a coalescing buffer, the pending-delivery queue or
	// a port queue — when the host crashed.
	DropCrash
	// DropPortClose: the packet was still queued when its port closed.
	DropPortClose
	// DropUnclaimed: a user-level consumer (demux dispatcher, a
	// handlerless interface) had no claimant for the packet.
	DropUnclaimed
	// DropChecksum: a transport checksum rejected the packet after
	// delivery (the fate of most corrupted frames).
	DropChecksum
	// DropInet: the kernel protocol stack discarded the packet
	// (parse failure or wrong destination address).
	DropInet
	// DropTTL: the packet arrived with an expired IP TTL.
	DropTTL
	// DropHops: a gateway refused to forward the packet (hop count
	// exceeded).
	DropHops
	// DropNoRoute: a gateway had no route for the packet.
	DropNoRoute
	// DropQuota: the packet matched no port while at least one
	// over-budget port's filter was skipped under quarantine — the
	// resource governor, not the filter set, decided its fate.
	DropQuota
	// DropAdmission: the overload admission controller shed the frame
	// at demux entry, before any filter cost was paid.
	DropAdmission

	// NumDropReasons sizes taxonomy arrays.
	NumDropReasons
)

var dropNames = [NumDropReasons]string{
	DropWireFault:  "wire_fault",
	DropNoReceiver: "no_receiver",
	DropNICDown:    "nic_down",
	DropNICQueue:   "nic_queue",
	DropNoMatch:    "nomatch",
	DropPortQueue:  "port_queue",
	DropRingSlots:  "ring_slots",
	DropCrash:      "crash",
	DropPortClose:  "port_close",
	DropUnclaimed:  "unclaimed",
	DropChecksum:   "checksum",
	DropInet:       "inet",
	DropTTL:        "ttl",
	DropHops:       "hops",
	DropNoRoute:    "no_route",
	DropQuota:      "quota",
	DropAdmission:  "admission",
}

// dropCounterNames pre-interns the per-host taxonomy counter names so
// recording a drop never concatenates strings on the hot path.
var dropCounterNames [NumDropReasons]string

func init() {
	for i := range dropCounterNames {
		dropCounterNames[i] = "span.drop." + dropNames[i]
	}
}

// String returns the reason's snake_case name.
func (r DropReason) String() string {
	if int(r) < len(dropNames) {
		return dropNames[r]
	}
	return "unknown"
}

// Span flags.
const (
	// FlagCorrupt: the fault injector flipped a bit in the frame.
	FlagCorrupt uint8 = 1 << iota
	// FlagDup: this span is the injected duplicate delivery of its
	// parent.
	FlagDup
	// FlagDelayed: the fault injector postponed the frame's delivery.
	FlagDelayed
	// FlagChild: the span was forked from a parent (duplicate,
	// extra broadcast recipient, gateway re-transmit hop, or a
	// born-dead user-level verdict).
	FlagChild
)

// Span terminal states (SpanRecord.Term).
const (
	// TermLive: the span has not terminated.
	TermLive uint8 = 0
	// TermUser: a user read/reap returned the packet.
	TermUser uint8 = 1
	// TermKernel: a kernel-resident protocol consumed the packet.
	TermKernel uint8 = 2
	// termDropBase + DropReason: the packet died.
	termDropBase uint8 = 3
)

// StageMark is one stage boundary crossing at a virtual time.
type StageMark struct {
	Stage Stage
	When  time.Duration
}

// maxMarks bounds the stage marks of one record (a packet crosses at
// most eight distinct stages).
const maxMarks = 10

// SpanRecord is the flat, fixed-size provenance record of one packet.
// Records are value types in a preallocated ring: tracking a packet in
// steady state allocates nothing.
type SpanRecord struct {
	ID     uint64
	Parent uint64 // 0 for a root span
	Origin string // host that transmitted the frame
	Final  string // host where the span terminated
	Class  string // workload class or protocol tag ("pup", "ip", ...)
	Port   int32  // delivering port id, -1 if none
	Term   uint8
	Flags  uint8
	NMarks uint8
	End    time.Duration // termination time (valid when Term != TermLive)
	Marks  [maxMarks]StageMark
}

// Dropped returns the drop reason when the span died.
func (r *SpanRecord) Dropped() (DropReason, bool) {
	if r.Term < termDropBase {
		return 0, false
	}
	return DropReason(r.Term - termDropBase), true
}

// MarkAt returns the virtual time the span crossed stage.
func (r *SpanRecord) MarkAt(s Stage) (time.Duration, bool) {
	for i := 0; i < int(r.NMarks); i++ {
		if r.Marks[i].Stage == s {
			return r.Marks[i].When, true
		}
	}
	return 0, false
}

// TermString renders the terminal state ("live", "delivered",
// "kernel", or "drop:<reason>").
func (r *SpanRecord) TermString() string {
	switch {
	case r.Term == TermLive:
		return "live"
	case r.Term == TermUser:
		return "delivered"
	case r.Term == TermKernel:
		return "kernel"
	default:
		return "drop:" + DropReason(r.Term-termDropBase).String()
	}
}

// SpanConfig configures span tracking.
type SpanConfig struct {
	// Sample keeps 1-in-N root spans, deterministic by origin order
	// (child spans inherit their parent's fate).  <= 1 tracks every
	// packet.
	Sample int
	// Ring is the flight-recorder capacity in records (default 4096).
	// A run that must prove conservation sizes it above its packet
	// count so no live span is evicted.
	Ring int
	// P99, when > 0, arms the SLO watchdog on the span.total p99.
	P99 time.Duration
	// MaxDropRate, when > 0, arms the watchdog on drops/created.
	MaxDropRate float64
	// MinSample is the number of terminations before the watchdog may
	// trip (default 256).
	MinSample uint64
	// OnAnomaly runs once, at the first watchdog breach.
	OnAnomaly func(reason string)
}

// Spans is the per-tracer span tracker and flight recorder.
type Spans struct {
	cfg  SpanConfig
	recs []SpanRecord

	nextID uint64
	seen   uint64 // root-span candidates, for sampling
	lastID uint64 // result of the most recent SpanOrigin (0 if unsampled)

	// Ambient hand-off state.  The simulation event loop runs one
	// goroutine at a time, so a single cell per hand-off suffices.
	txParent   uint64 // SpanNextParent: parent for the next SpanOrigin
	claimSpan  uint64 // SpanClaimArm/Take/Settle: span offered to the kernel stack
	claimArmed bool
	claimTaken bool

	// Aggregate accounting.  Conservation: Created == DeliveredUser +
	// DeliveredKernel + sum(Drops) + Live().
	Created         uint64
	DeliveredUser   uint64
	DeliveredKernel uint64
	Drops           [NumDropReasons]uint64

	// FlaggedCorrupt/Dup/Delayed reconcile against the fault ledger's
	// Corrupts/Dups/Delays counts (at sampling 1).
	FlaggedCorrupt uint64
	FlaggedDup     uint64
	FlaggedDelayed uint64

	// Wrapped counts still-live records evicted by ring wrap-around;
	// DoubleTerm counts terminations of already-terminated spans.
	// Both are zero in a healthy, adequately-sized run.
	Wrapped    uint64
	DoubleTerm uint64

	total Histogram // origin-to-read latency of user-delivered spans

	sinceCheck int
	tripped    bool
	anomaly    string
}

// Histogram names fed at span termination; per-host in the registry.
var stageHistNames = [...]string{
	"span.stage.wire",   // origin -> NIC accept
	"span.stage.nic",    // NIC accept -> demux entry
	"span.stage.filter", // demux entry -> filter retire
	"span.stage.pf",     // filter retire -> port enqueue
	"span.stage.queue",  // port enqueue -> user read
}

const histSpanTotal = "span.total"

// stageSegs pairs each stage histogram with its boundary marks; the
// last segment closes at the record's End.
var stageSegs = [...]struct{ from, to Stage }{
	{StageOrigin, StageNIC},
	{StageNIC, StageDemux},
	{StageDemux, StageFilter},
	{StageFilter, StageQueue},
	{StageQueue, StageRead},
}

// EnableSpans switches on span tracking and returns the tracker.
func (t *Tracer) EnableSpans(cfg SpanConfig) *Spans {
	if cfg.Sample < 1 {
		cfg.Sample = 1
	}
	if cfg.Ring <= 0 {
		cfg.Ring = 4096
	}
	if cfg.MinSample == 0 {
		cfg.MinSample = 256
	}
	sp := &Spans{cfg: cfg, recs: make([]SpanRecord, cfg.Ring)}
	t.spans = sp
	return sp
}

// Spans returns the span tracker, or nil when spans are not enabled.
func (t *Tracer) Spans() *Spans {
	if t == nil {
		return nil
	}
	return t.spans
}

// rec returns the live record for id, or nil if the ring has since
// evicted it (aggregate accounting still proceeds without a record).
func (sp *Spans) rec(id uint64) *SpanRecord {
	if id == 0 {
		return nil
	}
	r := &sp.recs[(id-1)%uint64(len(sp.recs))]
	if r.ID != id {
		return nil
	}
	return r
}

// create allocates the next span id and claims its ring slot.
func (sp *Spans) create(parent uint64, host string, flags uint8, now time.Duration) uint64 {
	sp.nextID++
	id := sp.nextID
	r := &sp.recs[(id-1)%uint64(len(sp.recs))]
	if r.ID != 0 && r.Term == TermLive {
		sp.Wrapped++
	}
	*r = SpanRecord{ID: id, Parent: parent, Origin: host, Port: -1, Flags: flags}
	r.Marks[0] = StageMark{StageOrigin, now}
	r.NMarks = 1
	sp.Created++
	return id
}

// Terminations returns how many spans have terminated.
func (sp *Spans) Terminations() uint64 {
	return sp.DeliveredUser + sp.DeliveredKernel + sp.TotalDrops()
}

// TotalDrops sums the drop taxonomy.
func (sp *Spans) TotalDrops() uint64 {
	var n uint64
	for _, d := range sp.Drops {
		n += d
	}
	return n
}

// Live returns how many created spans have not terminated.
func (sp *Spans) Live() uint64 { return sp.Created - sp.Terminations() }

// Tripped reports whether the SLO watchdog has fired, and why.
func (sp *Spans) Tripped() (bool, string) { return sp.tripped, sp.anomaly }

// Total exposes the origin-to-read latency histogram of delivered
// spans.
func (sp *Spans) Total() *Histogram { return &sp.total }

// --- Tracer span API -------------------------------------------------------
//
// Every method is safe on a nil Tracer and with span id 0 (an
// unsampled packet), so instrumentation sites need no guards; none of
// them allocates in steady state.

// SpanOrigin creates a root span for a frame entering transmission on
// host, applying sampling; it consumes any pending SpanNextParent
// linkage (a gateway re-transmit joins its parent's causal tree and
// bypasses sampling).  Returns 0 when the packet is not tracked.
func (t *Tracer) SpanOrigin(now time.Duration, host string) uint64 {
	if t == nil || t.spans == nil {
		return 0
	}
	sp := t.spans
	parent := sp.txParent
	sp.txParent = 0
	var flags uint8
	if parent == 0 {
		sp.seen++
		if sp.cfg.Sample > 1 && (sp.seen-1)%uint64(sp.cfg.Sample) != 0 {
			sp.lastID = 0
			return 0
		}
	} else {
		flags = FlagChild
	}
	id := sp.create(parent, host, flags, now)
	sp.lastID = id
	return id
}

// LastSpan returns the span created by the most recent SpanOrigin
// (0 if it was sampled out) — how the workload generator tags the
// class of the frame it just transmitted.
func (t *Tracer) LastSpan() uint64 {
	if t == nil || t.spans == nil {
		return 0
	}
	return t.spans.lastID
}

// SpanNextParent links the next SpanOrigin as a child of parent — a
// gateway calls it immediately before re-transmitting a forwarded
// packet.
func (t *Tracer) SpanNextParent(parent uint64) {
	if t == nil || t.spans == nil {
		return
	}
	t.spans.txParent = parent
}

// SpanFork creates a child span of parent on host: an injected
// duplicate, or an extra broadcast/promiscuous recipient.  Returns 0
// when the parent is untracked.
func (t *Tracer) SpanFork(parent uint64, now time.Duration, host string) uint64 {
	if t == nil || t.spans == nil || parent == 0 {
		return 0
	}
	return t.spans.create(parent, host, FlagChild, now)
}

// SpanMark stamps a stage boundary crossing.
func (t *Tracer) SpanMark(id uint64, s Stage, now time.Duration) {
	if t == nil || t.spans == nil {
		return
	}
	r := t.spans.rec(id)
	if r == nil || int(r.NMarks) >= maxMarks {
		return
	}
	r.Marks[r.NMarks] = StageMark{s, now}
	r.NMarks++
}

// SpanFlag sets a fault flag on the span and counts it for ledger
// reconciliation.
func (t *Tracer) SpanFlag(id uint64, flag uint8) {
	if t == nil || t.spans == nil || id == 0 {
		return
	}
	sp := t.spans
	switch flag {
	case FlagCorrupt:
		sp.FlaggedCorrupt++
	case FlagDup:
		sp.FlaggedDup++
	case FlagDelayed:
		sp.FlaggedDelayed++
	}
	if r := sp.rec(id); r != nil {
		r.Flags |= flag
	}
}

// SpanPort records the delivering port.
func (t *Tracer) SpanPort(id uint64, port int) {
	if t == nil || t.spans == nil {
		return
	}
	if r := t.spans.rec(id); r != nil {
		r.Port = int32(port)
	}
}

// SpanClass tags the span with its workload class or protocol name.
func (t *Tracer) SpanClass(id uint64, class string) {
	if t == nil || t.spans == nil {
		return
	}
	if r := t.spans.rec(id); r != nil {
		r.Class = class
	}
}

// SpanDrop terminates the span with a typed drop reason on host, and
// bumps the per-host taxonomy counter.
func (t *Tracer) SpanDrop(id uint64, now time.Duration, host string, reason DropReason) {
	if t == nil || t.spans == nil || id == 0 {
		return
	}
	sp := t.spans
	if r := sp.rec(id); r != nil {
		if r.Term != TermLive {
			sp.DoubleTerm++
			return
		}
		r.Term = termDropBase + uint8(reason)
		r.Final = host
		r.End = now
	}
	sp.Drops[reason]++
	t.reg.counter(host, dropCounterNames[reason]).Add(1)
	sp.onTerm()
}

// SpanDelivered terminates the span at a user read/reap on host via
// port, observing the per-stage latency breakdown.
func (t *Tracer) SpanDelivered(id uint64, now time.Duration, host string, port int) {
	if t == nil || t.spans == nil || id == 0 {
		return
	}
	sp := t.spans
	r := sp.rec(id)
	if r != nil && r.Term != TermLive {
		sp.DoubleTerm++
		return
	}
	sp.DeliveredUser++
	if r != nil {
		r.Term = TermUser
		r.Final = host
		r.End = now
		if r.Port < 0 && port >= 0 {
			r.Port = int32(port)
		}
		if int(r.NMarks) < maxMarks {
			r.Marks[r.NMarks] = StageMark{StageRead, now}
			r.NMarks++
		}
		t.observeStages(r, host)
	}
	sp.onTerm()
}

// SpanKernelDelivered terminates the span as consumed by a
// kernel-resident protocol (tag "ip", "arp", "kproto", ...).
func (t *Tracer) SpanKernelDelivered(id uint64, now time.Duration, host, tag string) {
	if t == nil || t.spans == nil || id == 0 {
		return
	}
	sp := t.spans
	if r := sp.rec(id); r != nil {
		if r.Term != TermLive {
			sp.DoubleTerm++
			return
		}
		r.Term = TermKernel
		r.Final = host
		r.End = now
		if r.Class == "" {
			r.Class = tag
		}
	}
	sp.DeliveredKernel++
	sp.onTerm()
}

// SpanUserDrop records a user-level verdict on a delivered packet — a
// checksum reject, an unclaimed demux frame, a gateway hop/route
// failure — as a born-dead child span, so the kernel delivery and the
// user outcome each terminate exactly once.
func (t *Tracer) SpanUserDrop(parent uint64, now time.Duration, host string, reason DropReason) {
	if t == nil || t.spans == nil || parent == 0 {
		return
	}
	id := t.spans.create(parent, host, FlagChild, now)
	t.SpanDrop(id, now, host, reason)
}

// observeStages folds the record's stage boundaries into the per-host
// segment histograms.  Segments with a missing boundary are skipped
// (kernel-claimed and forked spans do not cross every stage).
func (t *Tracer) observeStages(r *SpanRecord, host string) {
	var when [numStages]time.Duration
	var have [numStages]bool
	for i := 0; i < int(r.NMarks); i++ {
		m := r.Marks[i]
		if !have[m.Stage] {
			when[m.Stage], have[m.Stage] = m.When, true
		}
	}
	for i, seg := range stageSegs {
		if have[seg.from] && have[seg.to] {
			t.reg.histogram(host, stageHistNames[i]).Observe(when[seg.to] - when[seg.from])
		}
	}
	if have[StageOrigin] {
		t.spans.total.Observe(r.End - when[StageOrigin])
	}
}

// --- Claim hand-off --------------------------------------------------------
//
// The packet filter offers each frame to the kernel protocol chain
// before matching filters.  The device arms the ambient claim cell
// with the frame's span; a claim-aware stack (inet) takes the span
// and terminates it itself; settle terminates a claimed-but-untaken
// span generically, so claim-unaware kernel protocols (vmtp, rarp)
// still account for every packet they consume.

// SpanClaimArm offers the span to the kernel protocol chain.
func (t *Tracer) SpanClaimArm(id uint64) {
	if t == nil || t.spans == nil {
		return
	}
	sp := t.spans
	sp.claimSpan = id
	sp.claimArmed = true
	sp.claimTaken = false
}

// SpanClaimTake consumes the offered span (claim-aware stacks call it
// when they consume the frame).  Returns 0 when nothing was offered.
func (t *Tracer) SpanClaimTake() uint64 {
	if t == nil || t.spans == nil || !t.spans.claimArmed {
		return 0
	}
	t.spans.claimTaken = true
	return t.spans.claimSpan
}

// SpanClaimSettle closes the claim hand-off: a claimed frame whose
// span nobody took is terminated as generic kernel-protocol
// consumption.
func (t *Tracer) SpanClaimSettle(now time.Duration, host string, claimed bool) {
	if t == nil || t.spans == nil {
		return
	}
	sp := t.spans
	id, taken := sp.claimSpan, sp.claimTaken
	sp.claimSpan, sp.claimArmed, sp.claimTaken = 0, false, false
	if claimed && !taken {
		t.SpanKernelDelivered(id, now, host, "kproto")
	}
}

// --- SLO watchdog ----------------------------------------------------------

// onTerm ticks the watchdog; thresholds are checked every 64
// terminations to keep the hot path cheap.
func (sp *Spans) onTerm() {
	sp.sinceCheck++
	if sp.sinceCheck < 64 || sp.tripped {
		return
	}
	sp.sinceCheck = 0
	if sp.Terminations() < sp.cfg.MinSample {
		return
	}
	if sp.cfg.P99 > 0 && sp.total.Count() > 0 {
		if p99 := sp.total.Quantile(0.99); p99 > sp.cfg.P99 {
			sp.trip(fmt.Sprintf("p99 latency %v exceeds SLO %v", p99, sp.cfg.P99))
			return
		}
	}
	if sp.cfg.MaxDropRate > 0 && sp.Created > 0 {
		if rate := float64(sp.TotalDrops()) / float64(sp.Created); rate > sp.cfg.MaxDropRate {
			sp.trip(fmt.Sprintf("drop rate %.4f exceeds SLO %.4f", rate, sp.cfg.MaxDropRate))
		}
	}
}

func (sp *Spans) trip(reason string) {
	if sp.tripped {
		return
	}
	sp.tripped = true
	sp.anomaly = reason
	if sp.cfg.OnAnomaly != nil {
		sp.cfg.OnAnomaly(reason)
	}
}

// --- Flight recorder -------------------------------------------------------

// VisitRecords calls fn for every retained record, oldest first.
func (sp *Spans) VisitRecords(fn func(*SpanRecord)) {
	if sp.nextID == 0 {
		return
	}
	first := uint64(1)
	if sp.nextID > uint64(len(sp.recs)) {
		first = sp.nextID - uint64(len(sp.recs)) + 1
	}
	for id := first; id <= sp.nextID; id++ {
		if r := sp.rec(id); r != nil {
			fn(r)
		}
	}
}

// RecordsSnapshot copies the retained records, oldest first.
func (sp *Spans) RecordsSnapshot() []SpanRecord {
	var out []SpanRecord
	sp.VisitRecords(func(r *SpanRecord) { out = append(out, *r) })
	return out
}

// Dump writes the flight recorder in human-readable form: aggregate
// accounting, the drop taxonomy, and every retained span record with
// its stage timeline.
func (sp *Spans) Dump(w io.Writer) {
	fmt.Fprintf(w, "flight recorder: %d spans created, %d delivered, %d kernel, %d dropped, %d live\n",
		sp.Created, sp.DeliveredUser, sp.DeliveredKernel, sp.TotalDrops(), sp.Live())
	if sp.Wrapped > 0 || sp.DoubleTerm > 0 {
		fmt.Fprintf(w, "  WARNING: %d live spans evicted by ring wrap, %d double terminations\n",
			sp.Wrapped, sp.DoubleTerm)
	}
	if sp.tripped {
		fmt.Fprintf(w, "  watchdog tripped: %s\n", sp.anomaly)
	}
	fmt.Fprintf(w, "drop taxonomy\n")
	for i, n := range sp.Drops {
		if n > 0 {
			fmt.Fprintf(w, "  %-12s %8d\n", dropNames[i], n)
		}
	}
	fmt.Fprintf(w, "spans (most recent %d)\n", len(sp.recs))
	sp.VisitRecords(func(r *SpanRecord) {
		var b strings.Builder
		fmt.Fprintf(&b, "  #%-6d", r.ID)
		if r.Parent != 0 {
			fmt.Fprintf(&b, " parent=#%d", r.Parent)
		}
		fmt.Fprintf(&b, " %s", r.Origin)
		if r.Final != "" && r.Final != r.Origin {
			fmt.Fprintf(&b, "->%s", r.Final)
		}
		if r.Class != "" {
			fmt.Fprintf(&b, " class=%s", r.Class)
		}
		if r.Port >= 0 {
			fmt.Fprintf(&b, " port=%d", r.Port)
		}
		fmt.Fprintf(&b, " %s", r.TermString())
		if r.Flags&FlagCorrupt != 0 {
			b.WriteString(" corrupt")
		}
		if r.Flags&FlagDup != 0 {
			b.WriteString(" dup")
		}
		if r.Flags&FlagDelayed != 0 {
			b.WriteString(" delayed")
		}
		b.WriteString(" [")
		for i := 0; i < int(r.NMarks); i++ {
			if i > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%s@%v", r.Marks[i].Stage, r.Marks[i].When)
		}
		b.WriteString("]")
		if r.Term != TermLive {
			fmt.Fprintf(&b, " end@%v", r.End)
		}
		fmt.Fprintln(w, b.String())
	})
}

// failer is the slice of *testing.T the flight recorder needs, kept
// structural so this package does not import testing.
type failer interface {
	Failed() bool
	Name() string
	Cleanup(func())
}

// DumpOnFailure registers a test cleanup that writes the flight
// recorder to $FLIGHT_RECORDER_DIR (or the system temp directory) when
// the test fails — the dump CI uploads as a workflow artifact.
func DumpOnFailure(t failer, sp *Spans) {
	if sp == nil {
		return
	}
	t.Cleanup(func() {
		if !t.Failed() {
			return
		}
		dir := os.Getenv("FLIGHT_RECORDER_DIR")
		if dir == "" {
			dir = os.TempDir()
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return
		}
		name := strings.NewReplacer("/", "_", " ", "_").Replace(t.Name())
		f, err := os.Create(filepath.Join(dir, name+".flight.txt"))
		if err != nil {
			return
		}
		defer f.Close()
		sp.Dump(f)
	})
}

// DumpOnPanic returns a deferred recover hook that dumps the flight
// recorder to w before re-panicking — how the CLIs surface provenance
// on a crash.
func DumpOnPanic(sp *Spans, w io.Writer) func() {
	return func() {
		if r := recover(); r != nil {
			if sp != nil {
				fmt.Fprintf(w, "panic: %v — flight recorder dump follows\n", r)
				sp.Dump(w)
			}
			panic(r)
		}
	}
}
