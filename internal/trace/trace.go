// Package trace is the virtual-time observability layer of the
// simulated kernel: a typed event stream, a metrics registry and a
// kernel-time profiler, with text, JSON and Chrome-trace exporters.
//
// The paper's entire evaluation (§6) is observability — counting
// context switches, domain crossings, copies and filter instructions,
// and profiling where kernel time goes ("41% of this time is spent
// evaluating filter predicates", §6.1).  This package generalizes the
// one-off accounting in internal/bench so that *any* workload can be
// asked "where did the virtual time go?".
//
// Cost model:
//
//   - no Tracer attached to a simulation: zero cost — every
//     instrumentation site is a single nil check;
//   - Tracer attached, no Sink: metrics and the kernel profile
//     accumulate (counter bumps, no allocation per event);
//   - Sink attached (SetSink): every typed event is delivered too,
//     which is what the Chrome-trace export consumes.
//
// All quantities are virtual time from the simulation clock, so two
// identical runs produce bit-identical event streams and snapshots.
package trace

import "time"

// Kind identifies the type of one trace event.
type Kind uint8

const (
	// KindCtxSwitch: the CPU of Host passed to process Proc.
	// Value is the switch cost in nanoseconds of virtual time.
	KindCtxSwitch Kind = iota
	// KindSyscallEnter / KindSyscallExit bracket one kernel
	// entry+exit by Proc on Host; Tag is the kernel subsystem.
	KindSyscallEnter
	KindSyscallExit
	// KindCopy: Value bytes crossed the kernel/user boundary.
	KindCopy
	// KindWakeup: a blocked process on Host was made runnable.
	KindWakeup
	// KindKernelSlice: the Host CPU ran kernel work accounted under
	// Tag for Value nanoseconds (Proc set when the slice is the
	// kernel half of a system call).
	KindKernelSlice
	// KindUserSlice: Proc ran in user mode for Value nanoseconds.
	KindUserSlice
	// KindFilterEval: the packet filter applied the filter of Port
	// to a packet; Value is instruction words interpreted, Aux is 1
	// on accept.  Port is -1 for a merged decision-table walk.
	KindFilterEval
	// KindEnqueue: a packet was queued on Port; Value is the queue
	// depth after the operation.
	KindEnqueue
	// KindDequeue: a read drained packets from Port; Value is the
	// queue depth after, Aux the number of packets taken.
	KindDequeue
	// KindDrop: a packet was lost; Tag is the reason ("nomatch",
	// "queue", "nic", "wire").
	KindDrop
	// KindDeliver: a packet reached a user process via Port; Value
	// is the arrival-to-delivery latency in nanoseconds.
	KindDeliver
	// KindWireTx: Host began transmitting a Value-byte frame; Aux
	// is the wire occupancy time in nanoseconds.
	KindWireTx
	// KindWireRx: Host's interface accepted a Value-byte frame.
	KindWireRx
	// KindProto: a kernel-resident protocol event on Host; Tag is
	// "ip_in", "ip_out", "arp_in", ...
	KindProto
	// KindFault: the fault-injection engine perturbed the run; Tag
	// is the fault kind ("drop", "corrupt", "dup", "delay", "pause",
	// "crash", "restart", "squeeze"), Value the injector's frame
	// index (or 0 for host-lifecycle faults).
	KindFault
	// KindMapped: Value bytes were delivered to Proc in place
	// through a shared-memory mapping (no kernel/user copy).
	KindMapped
	// KindRingReap: one reap syscall harvested Aux packets totalling
	// Value bytes from the mapped ring of Port.
	KindRingReap
	// KindBurst: the interface handed a coalesced burst of Value
	// frames to the kernel under one driver entry on Host; Aux is the
	// number of frames still buffered behind it.
	KindBurst

	numKinds // sentinel
)

var kindNames = [numKinds]string{
	"ctxswitch", "syscall_enter", "syscall_exit", "copy", "wakeup",
	"kernel_slice", "user_slice", "filter_eval", "enqueue", "dequeue",
	"drop", "deliver", "wire_tx", "wire_rx", "proto", "fault",
	"mapped", "ring_reap", "burst",
}

// String returns the event kind's snake_case name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one typed trace event.  Which fields are meaningful depends
// on Kind (see the Kind constants).  Events are comparable, so two
// captured streams can be checked for bit-identity.
type Event struct {
	When  time.Duration `json:"ts"`
	Kind  Kind          `json:"kind"`
	Host  string        `json:"host,omitempty"`
	Proc  string        `json:"proc,omitempty"`
	Tag   string        `json:"tag,omitempty"`
	Port  int           `json:"port,omitempty"`
	Value int64         `json:"value,omitempty"`
	Aux   int64         `json:"aux,omitempty"`
}

// Sink receives every event of a traced run.
type Sink interface {
	Emit(Event)
}

// Recorder is a Sink that retains the whole event stream in order —
// the input to WriteChromeTrace and to determinism tests.
type Recorder struct {
	Events []Event
}

// Emit appends the event.
func (r *Recorder) Emit(e Event) { r.Events = append(r.Events, e) }

// Tracer is the per-simulation observability hub: it owns the metrics
// registry and kernel profile, and forwards typed events to an
// optional Sink.  Attach one to a simulation with sim.SetTracer.
type Tracer struct {
	sink  Sink
	reg   registry
	prof  profiler
	spans *Spans
}

// New creates a Tracer with metrics and profiling enabled and no
// event sink.
func New() *Tracer {
	t := &Tracer{}
	t.reg.init()
	t.prof.init()
	return t
}

// SetSink attaches (or, with nil, detaches) the event sink.
func (t *Tracer) SetSink(s Sink) { t.sink = s }

func (t *Tracer) emit(e Event) {
	if t.sink != nil {
		t.sink.Emit(e)
	}
}

// ResetHost zeroes every metric, histogram, gauge and profile entry
// scoped to the named host, in place — pointers obtained earlier from
// Counter/Gauge/Histogram remain valid.  Benchmarks call it (via
// Host.ResetAccounting) after warm-up.
func (t *Tracer) ResetHost(host string) {
	t.reg.resetHost(host)
	t.prof.resetHost(host)
}

// --- Instrumentation entry points ----------------------------------------
//
// Each helper updates the metrics registry and, when a sink is
// attached, emits one typed event.  They are called by the simulator
// and device packages, always behind a nil-Tracer check.

// CtxSwitch records the Host CPU passing to process proc at now, with
// the given virtual switch cost.
func (t *Tracer) CtxSwitch(now time.Duration, host, proc string, cost time.Duration) {
	t.reg.counter(host, "sched.ctxswitch").Add(1)
	t.emit(Event{When: now, Kind: KindCtxSwitch, Host: host, Proc: proc, Value: int64(cost)})
}

// SyscallEnter records a kernel entry by proc, under subsystem tag.
func (t *Tracer) SyscallEnter(now time.Duration, host, proc, tag string) {
	t.reg.counter(host, "sys.calls").Add(1)
	t.emit(Event{When: now, Kind: KindSyscallEnter, Host: host, Proc: proc, Tag: tag})
}

// SyscallExit records the matching kernel exit.
func (t *Tracer) SyscallExit(now time.Duration, host, proc, tag string) {
	t.emit(Event{When: now, Kind: KindSyscallExit, Host: host, Proc: proc, Tag: tag})
}

// Copy records n bytes moving across the kernel/user boundary.
func (t *Tracer) Copy(now time.Duration, host, proc, tag string, n int) {
	t.reg.counter(host, "sys.copies").Add(1)
	t.reg.counter(host, "sys.copy_bytes").Add(uint64(n))
	t.emit(Event{When: now, Kind: KindCopy, Host: host, Proc: proc, Tag: tag, Value: int64(n)})
}

// Wakeup records a blocked process being made runnable on host.
func (t *Tracer) Wakeup(now time.Duration, host string) {
	t.reg.counter(host, "sched.wakeups").Add(1)
	t.emit(Event{When: now, Kind: KindWakeup, Host: host})
}

// KernelSlice records the host CPU starting d of kernel work under
// tag (event stream only; time attribution happens via KernelTime when
// the slice completes, mirroring the host's own accounting).
func (t *Tracer) KernelSlice(now time.Duration, host, tag, proc string, d time.Duration) {
	t.emit(Event{When: now, Kind: KindKernelSlice, Host: host, Proc: proc, Tag: tag, Value: int64(d)})
}

// UserSlice records proc starting d of user-mode CPU.
func (t *Tracer) UserSlice(now time.Duration, host, proc string, d time.Duration) {
	t.emit(Event{When: now, Kind: KindUserSlice, Host: host, Proc: proc, Value: int64(d)})
}

// KernelTime attributes d of completed kernel CPU on host to the
// category tag — the profiler's input, fed from the same place that
// updates Host.KernelTime so the two always agree.
func (t *Tracer) KernelTime(host, tag string, d time.Duration) {
	t.prof.addKernel(host, tag, d)
}

// UserTime attributes d of completed user-mode CPU on host.
func (t *Tracer) UserTime(host string, d time.Duration) {
	t.prof.addUser(host, d)
}

// PacketIn records one received packet entering the packet-filter
// input path on host (after any kernel-resident protocol claim).
func (t *Tracer) PacketIn(now time.Duration, host string) {
	t.reg.counter(host, "pf.packets").Add(1)
}

// FilterEval records one filter application: instrs instruction words
// interpreted on behalf of port, accepting or rejecting the packet.
// port is -1 for a merged decision-table walk.
func (t *Tracer) FilterEval(now time.Duration, host string, port int, instrs int, accept bool) {
	t.reg.counter(host, "pf.evals").Add(1)
	t.reg.counter(host, "pf.instrs").Add(uint64(instrs))
	var aux int64
	if accept {
		t.reg.counter(host, "pf.matched").Add(1)
		aux = 1
	}
	t.emit(Event{When: now, Kind: KindFilterEval, Host: host, Port: port,
		Value: int64(instrs), Aux: aux})
}

// Enqueue records a packet queued on port, with the depth after.
func (t *Tracer) Enqueue(now time.Duration, host string, port, depth int) {
	t.reg.counter(host, "pf.enqueued").Add(1)
	t.emit(Event{When: now, Kind: KindEnqueue, Host: host, Port: port, Value: int64(depth)})
}

// Dequeue records a read draining n packets from port, with the depth
// after.
func (t *Tracer) Dequeue(now time.Duration, host string, port, depth, n int) {
	t.reg.counter(host, "pf.dequeued").Add(uint64(n))
	t.emit(Event{When: now, Kind: KindDequeue, Host: host, Port: port,
		Value: int64(depth), Aux: int64(n)})
}

// Drop records a lost packet; reason is "nomatch", "queue", "nic" or
// "wire".
func (t *Tracer) Drop(now time.Duration, host, reason string) {
	name, ok := legacyDropNames[reason]
	if !ok {
		name = "drop." + reason
	}
	t.reg.counter(host, name).Add(1)
	t.emit(Event{When: now, Kind: KindDrop, Host: host, Tag: reason})
}

// legacyDropNames interns the metric names of the known drop reasons
// so the hot receive path never concatenates strings.
var legacyDropNames = map[string]string{
	"wire":    "drop.wire",
	"nic":     "drop.nic",
	"queue":   "drop.queue",
	"nomatch": "drop.nomatch",
}

// Deliver records a packet reaching a user process via port,
// observing the arrival-to-delivery latency histogram.
func (t *Tracer) Deliver(now time.Duration, host string, port int, latency time.Duration) {
	t.reg.counter(host, "pf.delivered").Add(1)
	t.reg.histogram(host, "pf.delivery_latency").Observe(latency)
	t.emit(Event{When: now, Kind: KindDeliver, Host: host, Port: port, Value: int64(latency)})
}

// WireTx records host beginning to transmit an n-byte frame occupying
// the wire for txTime.
func (t *Tracer) WireTx(now time.Duration, host string, n int, txTime time.Duration) {
	t.reg.counter(host, "wire.tx").Add(1)
	t.reg.counter(host, "wire.tx_bytes").Add(uint64(n))
	t.emit(Event{When: now, Kind: KindWireTx, Host: host, Value: int64(n), Aux: int64(txTime)})
}

// WireRx records host's interface accepting an n-byte frame.
func (t *Tracer) WireRx(now time.Duration, host string, n int) {
	t.reg.counter(host, "wire.rx").Add(1)
	t.reg.counter(host, "wire.rx_bytes").Add(uint64(n))
	t.emit(Event{When: now, Kind: KindWireRx, Host: host, Value: int64(n)})
}

// Proto records a kernel-resident protocol event ("ip_in", "ip_out",
// "arp_in", ...).
func (t *Tracer) Proto(now time.Duration, host, what string) {
	t.reg.counter(host, "inet."+what).Add(1)
	t.emit(Event{When: now, Kind: KindProto, Host: host, Tag: what})
}

// Mapped records n bytes delivered to proc in place through a
// shared-memory mapping — the copies that did NOT happen.
func (t *Tracer) Mapped(now time.Duration, host, proc, tag string, n int) {
	t.reg.counter(host, "sys.mapped_bytes").Add(uint64(n))
	t.emit(Event{When: now, Kind: KindMapped, Host: host, Proc: proc, Tag: tag, Value: int64(n)})
}

// PortCopied attributes n kernel/user-copied bytes to the packet
// filter's delivery path (the per-port bytes_copied counters sum to
// this), so ring-vs-copy ablations can read the copy tax directly.
func (t *Tracer) PortCopied(host string, n int) {
	t.reg.counter(host, "pf.copied_bytes").Add(uint64(n))
}

// RingReap records one reap syscall harvesting n packets totalling
// bytes from the mapped ring of port.
func (t *Tracer) RingReap(now time.Duration, host string, port, n, bytes int) {
	t.reg.counter(host, "pf.ring_reaps").Add(1)
	t.reg.counter(host, "pf.mapped_bytes").Add(uint64(bytes))
	t.emit(Event{When: now, Kind: KindRingReap, Host: host, Port: port,
		Value: int64(bytes), Aux: int64(n)})
}

// Burst records the interface on host handing a coalesced burst of
// frames to the kernel in one driver entry; backlog is the number of
// frames still buffered behind it.
func (t *Tracer) Burst(now time.Duration, host string, frames, backlog int) {
	t.reg.counter(host, "nic.bursts").Add(1)
	t.reg.counter(host, "nic.coalesced").Add(uint64(frames))
	t.emit(Event{When: now, Kind: KindBurst, Host: host,
		Value: int64(frames), Aux: int64(backlog)})
}

// Fault records one injected fault of the given kind ("drop",
// "corrupt", "dup", "delay", "pause", "crash", "restart", "squeeze")
// against host; index is the wire-frame index for frame faults, 0 for
// host-lifecycle faults.  Every injection increments the host-scoped
// counter "fault.<kind>", which is what cmd/pfchaos reconciles against
// the injector's own ledger.
func (t *Tracer) Fault(now time.Duration, host, kind string, index uint64) {
	t.reg.counter(host, "fault."+kind).Add(1)
	t.emit(Event{When: now, Kind: KindFault, Host: host, Tag: kind, Value: int64(index)})
}

// --- Direct registry access ----------------------------------------------

// Counter returns (creating if needed) the named host-scoped counter.
func (t *Tracer) Counter(host, name string) *Counter { return t.reg.counter(host, name) }

// Gauge returns (creating if needed) the named host-scoped gauge.
func (t *Tracer) Gauge(host, name string) *Gauge { return t.reg.gauge(host, name) }

// Histogram returns (creating if needed) the named host-scoped
// virtual-time histogram.
func (t *Tracer) Histogram(host, name string) *Histogram { return t.reg.histogram(host, name) }
