package live

// The live device runs the identical resource governor as the
// simulated one (pfdev/gov.go): per-port token buckets priced by
// pfdev.GovBound, doubling-backoff quarantine, and high/low watermark
// admission control — but clocked by wall time, so Rate is instruction
// units per real second and quarantine windows are real durations.
// The algorithms are mirrored line for line; only the time source and
// the backlog definition differ (the live device has no virtual
// pending-delivery queue, so backlog is just the queued total).

import (
	"fmt"
	"time"

	"repro/internal/pfdev"
	"repro/internal/trace"
)

func spanDropName(port int, reason trace.DropReason) string {
	return fmt.Sprintf("pf.port%d.span_drop.%s", port, reason)
}

func depthGaugeName(port int) string {
	return fmt.Sprintf("pf.port%d.depth", port)
}

// govRefillNow lazily accrues tokens for the elapsed wall time.
func (port *Port) govRefillNow(now time.Duration, cfg *pfdev.GovConfig) {
	if now > port.govRefill {
		port.govTokens += cfg.Rate * (now - port.govRefill).Seconds()
		if b := float64(cfg.Burst); port.govTokens > b {
			port.govTokens = b
		}
		port.govRefill = now
	}
}

// govAdmit decides whether this port's filter may run against the
// current frame.
func (port *Port) govAdmit(now time.Duration, cfg *pfdev.GovConfig) bool {
	port.govRefillNow(now, cfg)
	if now < port.quarUntil {
		port.quarSkips++
		return false
	}
	if port.govTokens < float64(port.govBound) {
		port.govQuarantine(now, cfg)
		port.quarSkips++
		return false
	}
	return true
}

// govQuarantine starts (or extends) the port's penalty window.
func (port *Port) govQuarantine(now time.Duration, cfg *pfdev.GovConfig) {
	if port.quarPenalty == 0 || now-port.quarUntil > cfg.QuarantineCool {
		port.quarPenalty = cfg.QuarantineBase
	} else {
		port.quarPenalty *= 2
		if port.quarPenalty > cfg.QuarantineMax {
			port.quarPenalty = cfg.QuarantineMax
		}
	}
	port.quarUntil = now + port.quarPenalty
	port.quarantines++
}

// govCharge debits an admitted evaluation's actual cost.
func (port *Port) govCharge(units int) {
	port.govTokens -= float64(units)
	port.fuelSpent += uint64(units)
}

// backlog is the admission controller's load signal.  The live device
// enqueues synchronously (no deferred "pf" CPU charge), so the backlog
// is exactly the queued total.
func (d *Device) backlog() int { return d.queuedTotal }

// admitFrame updates the shed/accept hysteresis and reports whether a
// newly arrived frame may enter the demultiplexer.
func (d *Device) admitFrame() bool {
	g := &d.opt.Gov
	if !g.Enabled {
		return true
	}
	backlog := d.backlog()
	if d.shedding {
		if backlog <= g.AdmissionLow {
			d.shedding = false
		}
	} else if backlog >= g.AdmissionHigh {
		d.shedding = true
	}
	return !d.shedding
}

// shedFrame accounts one frame refused at demux entry.
func (d *Device) shedFrame(span uint64) {
	d.admissionSheds++
	d.kernelDrops++
	now := d.clk.Now()
	if d.tr != nil {
		d.tr.Drop(now, d.name, "admission")
	}
	d.tr.SpanDrop(span, now, d.name, trace.DropAdmission)
}
