package live

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ethersim"
	"repro/internal/pfdev"
	"repro/internal/pup"
)

// pupFlowFrame builds a hot-socket Pup frame from the given link-level
// source, so a pump cycling sources produces distinct flows that the
// RSS steering hash spreads across receive queues.
func pupFlowFrame(t *testing.T, link ethersim.LinkType, socket uint32, src ethersim.Addr) []byte {
	t.Helper()
	pkt := pup.Packet{Type: 1, ID: 42,
		Dst:  pup.PortAddr{Net: 1, Host: 2, Socket: socket},
		Src:  pup.PortAddr{Net: 1, Host: uint8(src), Socket: 0x9000},
		Data: make([]byte, 20)}
	payload, err := pkt.Marshal()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	etherType := ethersim.EtherTypePup3Mb
	if link == ethersim.Ether10Mb {
		etherType = ethersim.EtherTypePup
	}
	return link.Encode(2, src, etherType, payload)
}

// runLiveChurn hammers the live device from three sides at once — a
// frame pump, port churners rebinding and open/close-cycling decoys,
// and a reader draining the hot port — so the race detector can watch
// the incremental patch path and the snapshot match path share the
// table under real goroutine concurrency.  The hot port is never
// churned, so every pumped frame must arrive exactly once.  With
// queues > 1 the pump cycles eight flows so frames genuinely arrive on
// all receive queues while the churners race the per-queue workers.
func runLiveChurn(t *testing.T, queues int) {
	link := ethersim.Ether10Mb
	d := NewDevice(Options{Link: link, Mode: pfdev.EvalTable, Queues: queues})
	defer d.Close()
	hot := d.Open()
	if err := hot.SetFilter(pup.SocketFilter(link, 1, 0x50)); err != nil {
		t.Fatalf("setfilter hot: %v", err)
	}
	const frames = 400
	const flows = 8
	hot.SetQueueLimit(2 * frames)
	pump := make([][]byte, flows)
	for f := range pump {
		pump[f] = pupFlowFrame(t, link, 0x50, ethersim.Addr(1+f))
	}

	var wg sync.WaitGroup
	var churnEvents atomic.Uint64
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var p *Port
			for i := 0; i < 200; i++ {
				if p == nil {
					p = d.Open()
				}
				if err := p.SetFilter(pup.SocketFilter(link, 10, uint32(0x1000+c<<8+i%64))); err != nil {
					t.Errorf("churner %d setfilter: %v", c, err)
					return
				}
				if i%4 == 3 {
					p.Close()
					p = nil
				}
				churnEvents.Add(1)
			}
			if p != nil {
				p.Close()
			}
		}(c)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < frames; i++ {
			d.Input(pump[i%flows])
			if i%8 == 7 {
				// Pace the pump so matching genuinely overlaps the
				// churners instead of finishing before they schedule.
				time.Sleep(50 * time.Microsecond)
			}
		}
	}()

	received := 0
	deadline := time.Now().Add(10 * time.Second)
	for received < frames && time.Now().Before(deadline) {
		batch, err := hot.ReadBatch(frames, 2*time.Second)
		if err != nil {
			break
		}
		received += len(batch)
	}
	wg.Wait()

	if received != frames {
		t.Errorf("received %d frames on the un-churned hot port, want %d", received, frames)
	}
	builds, patches := d.TableMaint()
	if patches == 0 {
		t.Errorf("no incremental patches recorded across %d churn events", churnEvents.Load())
	}
	// Steady churn must never fall back to from-scratch compiles: the
	// only build is the eager one at first bind.
	if builds != 1 {
		t.Errorf("table builds = %d, want exactly the initial bind-time build", builds)
	}

	if queues > 1 {
		// Every frame was delivered, so every frame was demuxed; the
		// per-queue receive counts must match the steering hash exactly
		// and the eight flows must genuinely spread across queues.
		counts := d.Counts()
		if counts.Queues != queues {
			t.Fatalf("Counts.Queues = %d, want %d", counts.Queues, queues)
		}
		expected := make([]uint64, queues)
		for i := 0; i < frames; i++ {
			expected[link.SteerQueue(pump[i%flows], queues)]++
		}
		busy := 0
		for q := range expected {
			if counts.QueueRx[q] != expected[q] {
				t.Errorf("queue %d received %d frames, steering says %d",
					q, counts.QueueRx[q], expected[q])
			}
			if counts.QueueRx[q] > 0 {
				busy++
			}
		}
		if busy < 2 {
			t.Errorf("only %d of %d queues saw traffic across %d flows", busy, queues, flows)
		}
	}
}

func TestLiveConcurrentChurn(t *testing.T)           { runLiveChurn(t, 1) }
func TestLiveConcurrentChurnMultiQueue(t *testing.T) { runLiveChurn(t, 4) }
