package live

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ethersim"
	"repro/internal/pfdev"
	"repro/internal/pup"
)

// TestLiveConcurrentChurn hammers the live device from three sides at
// once — a frame pump, port churners rebinding and open/close-cycling
// decoys, and a reader draining the hot port — so the race detector
// can watch the incremental patch path and the snapshot match path
// share the table under real goroutine concurrency.  The hot port is
// never churned, so every pumped frame must arrive exactly once.
func TestLiveConcurrentChurn(t *testing.T) {
	link := ethersim.Ether10Mb
	d := NewDevice(Options{Link: link, Mode: pfdev.EvalTable})
	hot := d.Open()
	if err := hot.SetFilter(pup.SocketFilter(link, 1, 0x50)); err != nil {
		t.Fatalf("setfilter hot: %v", err)
	}
	const frames = 400
	hot.SetQueueLimit(2 * frames)
	frame := pupFrame(t, link, 0x50)

	var wg sync.WaitGroup
	var churnEvents atomic.Uint64
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var p *Port
			for i := 0; i < 200; i++ {
				if p == nil {
					p = d.Open()
				}
				if err := p.SetFilter(pup.SocketFilter(link, 10, uint32(0x1000+c<<8+i%64))); err != nil {
					t.Errorf("churner %d setfilter: %v", c, err)
					return
				}
				if i%4 == 3 {
					p.Close()
					p = nil
				}
				churnEvents.Add(1)
			}
			if p != nil {
				p.Close()
			}
		}(c)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < frames; i++ {
			d.Input(frame)
			if i%8 == 7 {
				// Pace the pump so matching genuinely overlaps the
				// churners instead of finishing before they schedule.
				time.Sleep(50 * time.Microsecond)
			}
		}
	}()

	received := 0
	deadline := time.Now().Add(10 * time.Second)
	for received < frames && time.Now().Before(deadline) {
		batch, err := hot.ReadBatch(frames, 2*time.Second)
		if err != nil {
			break
		}
		received += len(batch)
	}
	wg.Wait()

	if received != frames {
		t.Errorf("received %d frames on the un-churned hot port, want %d", received, frames)
	}
	builds, patches := d.TableMaint()
	if patches == 0 {
		t.Errorf("no incremental patches recorded across %d churn events", churnEvents.Load())
	}
	// Steady churn must never fall back to from-scratch compiles: the
	// only build is the eager one at first bind.
	if builds != 1 {
		t.Errorf("table builds = %d, want exactly the initial bind-time build", builds)
	}
}
