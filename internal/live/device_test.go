package live

import (
	"testing"
	"time"

	"repro/internal/ethersim"
	"repro/internal/filter"
	"repro/internal/pfdev"
	"repro/internal/pup"
	"repro/internal/trace"
	"repro/internal/workload"
)

func pupFrame(t *testing.T, link ethersim.LinkType, socket uint32) []byte {
	t.Helper()
	pkt := pup.Packet{Type: 1, ID: 42,
		Dst:  pup.PortAddr{Net: 1, Host: 2, Socket: socket},
		Src:  pup.PortAddr{Net: 1, Host: 1, Socket: 0x9000},
		Data: make([]byte, 20)}
	payload, err := pkt.Marshal()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	etherType := ethersim.EtherTypePup3Mb
	if link == ethersim.Ether10Mb {
		etherType = ethersim.EtherTypePup
	}
	return link.Encode(2, 1, etherType, payload)
}

func TestLiveMatchAndRead(t *testing.T) {
	link := ethersim.Ether10Mb
	d := NewDevice(Options{Link: link})
	pa := d.Open()
	pb := d.Open()
	if err := pa.SetFilter(pup.SocketFilter(link, 10, 0x100)); err != nil {
		t.Fatalf("setfilter a: %v", err)
	}
	if err := pb.SetFilter(pup.SocketFilter(link, 10, 0x101)); err != nil {
		t.Fatalf("setfilter b: %v", err)
	}
	d.Input(pupFrame(t, link, 0x100))
	d.Input(pupFrame(t, link, 0x101))
	d.Input(pupFrame(t, link, 0x101))
	d.Input(pupFrame(t, link, 0x999)) // matches nobody

	if got, err := pa.ReadBatch(0, -1); err != nil || len(got) != 1 {
		t.Fatalf("port a: got %d packets, err %v", len(got), err)
	}
	if got, err := pb.ReadBatch(0, -1); err != nil || len(got) != 2 {
		t.Fatalf("port b: got %d packets, err %v", len(got), err)
	}
	if n := d.KernelDrops(); n != 1 {
		t.Fatalf("kernel drops = %d, want 1", n)
	}
	sa, sb := pa.Stats(), pb.Stats()
	if sa.Matched != 1 || sb.Matched != 2 {
		t.Fatalf("matched: a=%d b=%d, want 1/2", sa.Matched, sb.Matched)
	}
	if sa.FilterInstrs == 0 || sb.FilterInstrs == 0 {
		t.Fatal("filter instruction accounting missing")
	}
}

// A non-copy-all accept stops the scan; copy-all lets the frame fall
// through — the §3.2 rule, same as the simulated device.
func TestLiveCopyAll(t *testing.T) {
	link := ethersim.Ether10Mb
	d := NewDevice(Options{Link: link})
	mon := d.Open() // higher priority, copy-all monitor
	mon.SetCopyAll(true)
	if err := mon.SetFilter(filter.Filter{Priority: 200}); err != nil { // empty: accepts all
		t.Fatalf("monitor filter: %v", err)
	}
	user := d.Open()
	if err := user.SetFilter(pup.SocketFilter(link, 10, 0x100)); err != nil {
		t.Fatalf("user filter: %v", err)
	}
	d.Input(pupFrame(t, link, 0x100))
	if got, _ := mon.ReadBatch(0, -1); len(got) != 1 {
		t.Fatalf("monitor saw %d packets, want 1", len(got))
	}
	if got, _ := user.ReadBatch(0, -1); len(got) != 1 {
		t.Fatalf("user saw %d packets, want 1 (copy-all fall-through)", len(got))
	}
}

func TestLiveQueueOverflow(t *testing.T) {
	link := ethersim.Ether10Mb
	d := NewDevice(Options{Link: link})
	p := d.Open()
	p.SetQueueLimit(2)
	if err := p.SetFilter(pup.SocketFilter(link, 10, 0x100)); err != nil {
		t.Fatalf("setfilter: %v", err)
	}
	for i := 0; i < 5; i++ {
		d.Input(pupFrame(t, link, 0x100))
	}
	st := p.Stats()
	if st.Queued != 2 || st.Dropped != 3 {
		t.Fatalf("queued=%d dropped=%d, want 2/3", st.Queued, st.Dropped)
	}
	if st.Matched != 5 {
		t.Fatalf("matched=%d, want 5 (overflow still matched)", st.Matched)
	}
}

func TestLiveReadBlockingAndTimeout(t *testing.T) {
	link := ethersim.Ether10Mb
	d := NewDevice(Options{Link: link})
	p := d.Open()
	if err := p.SetFilter(pup.SocketFilter(link, 10, 0x100)); err != nil {
		t.Fatalf("setfilter: %v", err)
	}
	if _, err := p.Read(-1); err != ErrWouldBlock {
		t.Fatalf("non-blocking empty read: %v, want ErrWouldBlock", err)
	}
	if _, err := p.Read(5 * time.Millisecond); err != ErrTimeout {
		t.Fatalf("timed-out read: %v, want ErrTimeout", err)
	}
	// A blocked read is satisfied by a concurrent Input.
	got := make(chan error, 1)
	go func() {
		_, err := p.Read(5 * time.Second)
		got <- err
	}()
	d.Clock().AfterFunc(2*time.Millisecond, func() {
		d.Input(pupFrame(t, link, 0x100))
	})
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("blocked read: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked read never woke")
	}
	// Close wakes blocked readers with ErrClosed.
	go func() {
		_, err := p.Read(0)
		got <- err
	}()
	d.Clock().AfterFunc(2*time.Millisecond, p.Close)
	select {
	case err := <-got:
		if err != ErrClosed {
			t.Fatalf("read after close: %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("close never woke the blocked reader")
	}
}

// The wall-clock governor quarantines a port whose filter burns more
// than its bucket covers, and attributes the resulting no-match drops
// to DropQuota.
func TestLiveGovernorQuarantine(t *testing.T) {
	link := ethersim.Ether10Mb
	tr := trace.New()
	sp := tr.EnableSpans(trace.SpanConfig{Ring: 1 << 12})
	d := NewDevice(Options{Link: link, Tracer: tr,
		Gov: pfdev.GovConfig{
			Enabled: true,
			Rate:    1, // effectively no refill over the test's lifetime
			Burst:   64,
			// Wide windows so wall-time jitter cannot end the
			// quarantine mid-test.
			QuarantineBase: time.Minute,
			QuarantineMax:  time.Minute,
			QuarantineCool: time.Minute,
			AdmissionHigh:  1 << 20,
		}})
	hog := d.Open()
	if err := hog.SetFilter(filter.Filter{Priority: 10, Program: workload.BurnProgram()}); err != nil {
		t.Fatalf("hog filter: %v", err)
	}
	frame := pupFrame(t, link, 0x100)
	for i := 0; i < 50; i++ {
		d.Input(frame)
	}
	st := hog.Stats()
	if st.Quarantines == 0 || st.QuarantineSkips == 0 {
		t.Fatalf("hog not quarantined: %+v", st)
	}
	if sp.Drops[trace.DropQuota] == 0 {
		t.Fatalf("no DropQuota spans; taxonomy: %v", sp.Drops)
	}
	if sp.Created != 50 {
		t.Fatalf("spans created = %d, want 50", sp.Created)
	}
	if sp.Live() != 0 {
		t.Fatalf("%d spans live; all should have terminated", sp.Live())
	}
}
