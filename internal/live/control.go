package live

// The control socket: pfserve's user-space API, standing in for the
// /dev/pf character device the paper's processes open.  The protocol
// is JSON lines over TCP — one request object per line, one response
// per line — with the filter ioctl payload carried in the same binary
// layout filter.Filter.MarshalBinary defines (the on-the-wire/ioctl
// encoding the simulated device's SetFilter models).
//
// Ops:
//
//	{"op":"ping"}
//	{"op":"open","queue_limit":N,"copy_all":b,"stamp":b}      -> {"port":id}
//	{"op":"setfilter","port":id,"filter":<base64 binary>}
//	{"op":"read","port":id,"max":N,"timeout_ms":T}            -> {"packets":[...]}
//	{"op":"close","port":id}
//	{"op":"stats"}                                            -> {"stats":{...}}

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/filter"
	"repro/internal/pfdev"
	"repro/internal/trace"
)

// Request is one control-socket command.
type Request struct {
	Op         string `json:"op"`
	Port       int    `json:"port,omitempty"`
	QueueLimit int    `json:"queue_limit,omitempty"`
	CopyAll    bool   `json:"copy_all,omitempty"`
	Stamp      bool   `json:"stamp,omitempty"`
	Filter     []byte `json:"filter,omitempty"` // filter.Filter binary encoding
	Max        int    `json:"max,omitempty"`
	TimeoutMS  int64  `json:"timeout_ms,omitempty"` // 0 = non-blocking read
}

// Response is the reply to one Request.
type Response struct {
	OK      bool         `json:"ok"`
	Err     string       `json:"err,omitempty"`
	Port    int          `json:"port,omitempty"`
	Packets [][]byte     `json:"packets,omitempty"`
	Drops   uint64       `json:"drops,omitempty"` // port overflow drops up to the last packet
	Stats   *StatsReport `json:"stats,omitempty"`
}

// SpanSummary is the provenance roll-up exposed over the control
// socket: the flight recorder's aggregate accounting plus the drop
// taxonomy and the origin-to-read latency percentiles.
type SpanSummary struct {
	Created         uint64            `json:"created"`
	DeliveredUser   uint64            `json:"delivered_user"`
	DeliveredKernel uint64            `json:"delivered_kernel"`
	TotalDrops      uint64            `json:"total_drops"`
	Live            uint64            `json:"live"`
	Drops           map[string]uint64 `json:"drops,omitempty"`
	TotalMean       time.Duration     `json:"total_mean_ns"`
	TotalP50        time.Duration     `json:"total_p50_ns"`
	TotalP99        time.Duration     `json:"total_p99_ns"`
}

// StageLatency is one receive-path stage's latency summary.
type StageLatency struct {
	Stage string        `json:"stage"`
	Count uint64        `json:"count"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P99   time.Duration `json:"p99_ns"`
}

// StatsReport is the full statistics block served by the "stats" op.
type StatsReport struct {
	Ports  []pfdev.PortStats `json:"ports"`
	Gov    *pfdev.GovStats   `json:"gov,omitempty"`
	Device Counts            `json:"device"`
	Wire   *WireStats        `json:"wire,omitempty"`
	Spans  *SpanSummary      `json:"spans,omitempty"`
	Stages []StageLatency    `json:"stages,omitempty"`
}

// Server serves the control protocol for one live device.
type Server struct {
	dev  *Device
	wire *Wire
	ln   net.Listener

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	done  chan struct{}
}

// Serve starts accepting control connections on ln for dev.  wire may
// be nil (stats then omit the wire block).
func Serve(ln net.Listener, dev *Device, wire *Wire) *Server {
	s := &Server{dev: dev, wire: wire, ln: ln,
		conns: make(map[net.Conn]struct{}), done: make(chan struct{})}
	go s.acceptLoop()
	return s
}

// Addr returns the listener's address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops the accept loop and closes every live connection.
func (s *Server) Close() {
	s.ln.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	<-s.done
}

func (s *Server) acceptLoop() {
	defer close(s.done)
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	br := bufio.NewReaderSize(conn, 1<<20)
	bw := bufio.NewWriter(conn)
	dec := json.NewDecoder(br)
	enc := json.NewEncoder(bw)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return
		}
		resp := s.handle(req)
		if err := enc.Encode(resp); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

func fail(format string, args ...any) Response {
	return Response{Err: fmt.Sprintf(format, args...)}
}

func (s *Server) handle(req Request) Response {
	switch req.Op {
	case "ping":
		return Response{OK: true}

	case "open":
		port := s.dev.Open()
		if req.QueueLimit > 0 {
			port.SetQueueLimit(req.QueueLimit)
		}
		if req.CopyAll {
			port.SetCopyAll(true)
		}
		if req.Stamp {
			port.SetStamp(true)
		}
		return Response{OK: true, Port: port.ID()}

	case "setfilter":
		port := s.dev.Port(req.Port)
		if port == nil {
			return fail("no such port %d", req.Port)
		}
		var f filter.Filter
		if err := f.UnmarshalBinary(req.Filter); err != nil {
			return fail("bad filter: %v", err)
		}
		if err := port.SetFilter(f); err != nil {
			return fail("setfilter: %v", err)
		}
		return Response{OK: true, Port: port.ID()}

	case "read":
		port := s.dev.Port(req.Port)
		if port == nil {
			return fail("no such port %d", req.Port)
		}
		timeout := time.Duration(-1) // default non-blocking
		if req.TimeoutMS > 0 {
			timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		}
		pkts, err := port.ReadBatch(req.Max, timeout)
		switch err {
		case nil:
		case ErrTimeout, ErrWouldBlock:
			return Response{OK: true} // empty read, not an error
		default:
			return fail("read: %v", err)
		}
		resp := Response{OK: true, Port: port.ID(), Packets: make([][]byte, len(pkts))}
		for i, p := range pkts {
			resp.Packets[i] = p.Data
			resp.Drops = p.Drops
		}
		return resp

	case "close":
		port := s.dev.Port(req.Port)
		if port == nil {
			return fail("no such port %d", req.Port)
		}
		port.Close()
		return Response{OK: true}

	case "stats":
		return Response{OK: true, Stats: s.statsReport()}

	default:
		return fail("unknown op %q", req.Op)
	}
}

// statsReport assembles the full statistics block.
func (s *Server) statsReport() *StatsReport {
	rep := &StatsReport{
		Ports:  s.dev.PortStats(),
		Device: s.dev.Counts(),
	}
	if s.dev.opt.Gov.Enabled {
		gs := s.dev.GovStats()
		rep.Gov = &gs
	}
	if s.wire != nil {
		ws := s.wire.Stats()
		rep.Wire = &ws
	}
	// Span and histogram reads are serialized with packet processing
	// under the device mutex, the same exclusion the simulator's
	// single-threaded loop provides.
	s.dev.mu.Lock()
	defer s.dev.mu.Unlock()
	tr := s.dev.tr
	if tr == nil {
		return rep
	}
	if sp := tr.Spans(); sp != nil {
		sum := &SpanSummary{
			Created:         sp.Created,
			DeliveredUser:   sp.DeliveredUser,
			DeliveredKernel: sp.DeliveredKernel,
			TotalDrops:      sp.TotalDrops(),
			Live:            sp.Live(),
			Drops:           make(map[string]uint64),
		}
		for i, n := range sp.Drops {
			if n > 0 {
				sum.Drops[trace.DropReason(i).String()] = n
			}
		}
		h := sp.Total()
		sum.TotalMean, sum.TotalP50, sum.TotalP99 = h.Mean(), h.Quantile(0.50), h.Quantile(0.99)
		rep.Spans = sum
		// Stage breakdown: live spans originate at UDP receive, so
		// only the demux-onward segments carry signal.
		for _, st := range []struct{ label, hist string }{
			{"filter", "span.stage.filter"},
			{"pf", "span.stage.pf"},
			{"queue", "span.stage.queue"},
		} {
			h := tr.Histogram(s.dev.name, st.hist)
			rep.Stages = append(rep.Stages, StageLatency{
				Stage: st.label, Count: uint64(h.Count()),
				Mean: h.Mean(), P50: h.Quantile(0.50), P99: h.Quantile(0.99),
			})
		}
	}
	return rep
}

// Client is a control-socket client.
type Client struct {
	conn net.Conn
	dec  *json.Decoder
	enc  *json.Encoder
	bw   *bufio.Writer
	mu   sync.Mutex
}

// DefaultDialTimeout bounds DialControl: a pfserve that is absent or
// unreachable must come back as a prompt error, never a hung dial.
const DefaultDialTimeout = 5 * time.Second

// DialControl connects to a pfserve control socket, failing within
// DefaultDialTimeout when no server answers.
func DialControl(addr string) (*Client, error) {
	return DialControlTimeout(addr, DefaultDialTimeout)
}

// DialControlTimeout is DialControl with an explicit connect bound.
func DialControlTimeout(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("pfserve control socket %s: %w", addr, err)
	}
	bw := bufio.NewWriter(conn)
	return &Client{
		conn: conn,
		dec:  json.NewDecoder(bufio.NewReaderSize(conn, 1<<20)),
		enc:  json.NewEncoder(bw),
		bw:   bw,
	}, nil
}

// Close releases the connection.
func (c *Client) Close() { c.conn.Close() }

// connErr turns a transport failure into a one-line diagnosis: a bare
// io.EOF mid-protocol means the server went away, which deserves
// better than the two letters the decoder reports.
func connErr(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("control connection closed by pfserve (server gone?)")
	}
	return fmt.Errorf("control connection: %w", err)
}

// Do performs one request/response round trip.
func (c *Client) Do(req Request) (Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(req); err != nil {
		return Response{}, connErr(err)
	}
	if err := c.bw.Flush(); err != nil {
		return Response{}, connErr(err)
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return Response{}, connErr(err)
	}
	if resp.Err != "" {
		return resp, fmt.Errorf("pfserve: %s", resp.Err)
	}
	return resp, nil
}

// Ping checks liveness.
func (c *Client) Ping() error {
	_, err := c.Do(Request{Op: "ping"})
	return err
}

// Open opens a port and returns its id.
func (c *Client) Open(queueLimit int, copyAll, stamp bool) (int, error) {
	resp, err := c.Do(Request{Op: "open", QueueLimit: queueLimit, CopyAll: copyAll, Stamp: stamp})
	return resp.Port, err
}

// SetFilter binds a filter to a port.
func (c *Client) SetFilter(port int, f filter.Filter) error {
	raw, err := f.MarshalBinary()
	if err != nil {
		return err
	}
	_, err = c.Do(Request{Op: "setfilter", Port: port, Filter: raw})
	return err
}

// Read drains up to max packets from a port, waiting up to timeout
// (<= 0: return immediately).
func (c *Client) Read(port, max int, timeout time.Duration) ([][]byte, error) {
	resp, err := c.Do(Request{Op: "read", Port: port, Max: max,
		TimeoutMS: timeout.Milliseconds()})
	return resp.Packets, err
}

// Stats fetches the server's statistics block.
func (c *Client) Stats() (*StatsReport, error) {
	resp, err := c.Do(Request{Op: "stats"})
	if err != nil {
		return nil, err
	}
	if resp.Stats == nil {
		return nil, fmt.Errorf("pfserve: stats response missing body")
	}
	return resp.Stats, nil
}

// ClosePort closes a port on the server.
func (c *Client) ClosePort(port int) error {
	_, err := c.Do(Request{Op: "close", Port: port})
	return err
}
