package live

// The loopback-UDP wire: live mode's stand-in for ethersim's shared
// medium.  Each datagram carries exactly one data-link frame,
// verbatim — the same bytes ethersim would have put on the virtual
// wire, so the identical filter programs match on both.  UDP loopback
// gives the properties the simulated medium models for free: message
// boundaries, unreliable delivery under overload (socket-buffer
// overflow plays the NIC input-queue drop), and no connection state.

import (
	"net"
	"sync"
	"sync/atomic"
)

// maxDatagram bounds one received frame; both simulated link types are
// far below it.
const maxDatagram = 64 * 1024

// rxBuffer is the receive-side socket buffer request.  Loopback load
// tests push tens of thousands of datagrams through one socket; a
// deep buffer keeps the kernel from shedding bursts the reader would
// have drained microseconds later.
const rxBuffer = 4 << 20

// Wire is one end of the loopback-UDP medium: a bound socket whose
// receive loop hands every arriving frame to the device.
type Wire struct {
	conn    *net.UDPConn
	handler func(frame []byte)

	received atomic.Uint64 // frames handed to the handler
	rxBytes  atomic.Uint64

	closeOnce sync.Once
	done      chan struct{}
}

// WireStats is the wire's receive accounting.
type WireStats struct {
	Received uint64 `json:"received"`
	RxBytes  uint64 `json:"rx_bytes"`
}

// ListenWire binds a UDP socket on addr (e.g. "127.0.0.1:0") and
// starts the receive loop: each datagram is copied into a fresh buffer
// and passed to handler.  The handler runs on the receive goroutine;
// Device.Input serializes internally.
func ListenWire(addr string, handler func(frame []byte)) (*Wire, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, err
	}
	// Best effort: some kernels clamp the request, which only means
	// earlier overload drops, not incorrectness.
	_ = conn.SetReadBuffer(rxBuffer)
	w := &Wire{conn: conn, handler: handler, done: make(chan struct{})}
	go w.rxLoop()
	return w, nil
}

// Addr returns the wire's bound UDP address.
func (w *Wire) Addr() *net.UDPAddr { return w.conn.LocalAddr().(*net.UDPAddr) }

// Stats returns the wire's receive accounting.
func (w *Wire) Stats() WireStats {
	return WireStats{Received: w.received.Load(), RxBytes: w.rxBytes.Load()}
}

// Close shuts the socket down; the receive loop exits.
func (w *Wire) Close() {
	w.closeOnce.Do(func() {
		w.conn.Close()
		<-w.done
	})
}

// rxLoop drains the socket until Close.  Each frame is copied out of
// the reusable read buffer before crossing into the device, which
// retains delivered frames on port queues.
func (w *Wire) rxLoop() {
	defer close(w.done)
	buf := make([]byte, maxDatagram)
	for {
		n, _, err := w.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed (or fatally broken) socket ends the wire
		}
		if n == 0 {
			continue
		}
		frame := make([]byte, n)
		copy(frame, buf[:n])
		w.received.Add(1)
		w.rxBytes.Add(uint64(n))
		w.handler(frame)
	}
}

// Sender is the transmit end: a connected UDP socket frames are
// written to verbatim, one datagram per frame.
type Sender struct {
	conn *net.UDPConn

	// Sent counts frames written; SendErrs counts writes the kernel
	// refused (ENOBUFS under extreme overload).
	Sent     atomic.Uint64
	SendErrs atomic.Uint64
}

// DialWire connects a sender to a listening wire.
func DialWire(addr string) (*Sender, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialUDP("udp", nil, ua)
	if err != nil {
		return nil, err
	}
	_ = conn.SetWriteBuffer(rxBuffer)
	return &Sender{conn: conn}, nil
}

// Send transmits one frame as one datagram.
func (s *Sender) Send(frame []byte) error {
	_, err := s.conn.Write(frame)
	if err != nil {
		s.SendErrs.Add(1)
		return err
	}
	s.Sent.Add(1)
	return nil
}

// Close releases the sending socket.
func (s *Sender) Close() { s.conn.Close() }
