package live

import (
	"net"

	"repro/internal/trace"
)

// ServeConfig assembles one complete pfserve instance: device, wire,
// control socket.
type ServeConfig struct {
	// CtlAddr is the TCP control-socket address ("127.0.0.1:0" for an
	// ephemeral port).
	CtlAddr string
	// UDPAddr is the loopback wire address.
	UDPAddr string
	// Device options.  Options.Tracer is ignored; the instance builds
	// its own tracer so span tracking is always on.
	Opt Options
	// SpanRing sizes the flight recorder (default 1 << 15).  Size it
	// above the expected packet count when the run must prove
	// conservation with no live-span evictions.
	SpanRing int
}

// Instance is one running pfserve: the live device, its UDP wire and
// its control server.
type Instance struct {
	Dev    *Device
	Wire   *Wire
	Ctl    *Server
	Tracer *trace.Tracer
	Spans  *trace.Spans
}

// Start brings up a full instance.  On error nothing is left running.
func Start(cfg ServeConfig) (*Instance, error) {
	if cfg.SpanRing <= 0 {
		cfg.SpanRing = 1 << 15
	}
	tr := trace.New()
	sp := tr.EnableSpans(trace.SpanConfig{Ring: cfg.SpanRing})
	cfg.Opt.Tracer = tr
	dev := NewDevice(cfg.Opt)

	wire, err := ListenWire(cfg.UDPAddr, dev.Input)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", cfg.CtlAddr)
	if err != nil {
		wire.Close()
		return nil, err
	}
	ctl := Serve(ln, dev, wire)
	return &Instance{Dev: dev, Wire: wire, Ctl: ctl, Tracer: tr, Spans: sp}, nil
}

// CtlAddr returns the control socket's bound address.
func (in *Instance) CtlAddr() string { return in.Ctl.Addr().String() }

// UDPAddr returns the wire's bound address.
func (in *Instance) UDPAddr() string { return in.Wire.Addr().String() }

// Close shuts the instance down: wire first (no new frames), then the
// control server, then the device (waking any blocked readers).
func (in *Instance) Close() {
	in.Wire.Close()
	in.Dev.Close()
	in.Ctl.Close()
}
