package live

// End-to-end over real sockets: a full pfserve instance (device +
// loopback-UDP wire + control server) driven by the load driver, with
// every layer's counters reconciled exactly.  This is the in-process
// version of the CI smoke job.

import (
	"testing"
	"time"

	"repro/internal/ethersim"
	"repro/internal/pfdev"
)

func runLoopback(t *testing.T, cfg LoadConfig, opt Options) *LoadReport {
	t.Helper()
	inst, err := Start(ServeConfig{
		CtlAddr: "127.0.0.1:0",
		UDPAddr: "127.0.0.1:0",
		Opt:     opt,
	})
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer inst.Close()

	rep, err := RunLoad(inst.CtlAddr(), inst.UDPAddr(), cfg)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	for _, e := range rep.Errors {
		t.Errorf("reconciliation: %s", e)
	}
	if t.Failed() {
		t.Logf("report: sent=%d delivered=%d rate=%.0f pkt/s stats=%+v",
			rep.Sent, rep.Delivered, rep.Rate(), rep.Stats)
	}
	return rep
}

func TestLoopbackSmoke(t *testing.T) {
	link := ethersim.Ether10Mb
	rep := runLoopback(t,
		LoadConfig{Packets: 2000, Ports: 4, Seed: 1, Link: link},
		Options{Link: link})
	if rep.Delivered == 0 {
		t.Fatal("no packets delivered to readers")
	}
	// The paper mix is mostly non-Pup, so kernel drops must show up.
	if rep.Stats.Device.KernelDrops == 0 {
		t.Error("expected kernel drops from non-Pup traffic")
	}
	if len(rep.Stats.Stages) == 0 {
		t.Error("no per-stage latency histograms")
	}
}

// The heavy-tailed profile sends only Pup frames, so every packet must
// reach a reader: delivered == sent exactly, zero kernel drops.
func TestLoopbackHeavyTail(t *testing.T) {
	link := ethersim.Ether10Mb
	rep := runLoopback(t,
		LoadConfig{Packets: 2000, Ports: 4, Seed: 2, Link: link, Profile: "heavytail"},
		Options{Link: link})
	if rep.Delivered != rep.Sent {
		t.Errorf("heavytail: delivered %d of %d", rep.Delivered, rep.Sent)
	}
	if rep.Stats.Device.KernelDrops != 0 {
		t.Errorf("heavytail: %d kernel drops, want 0", rep.Stats.Device.KernelDrops)
	}
}

// Multi-queue table mode over the real wire: eight link-level flows
// spread across four receive queues, and the reconciliation (sent ==
// wire == spans created == delivered + typed drops) must stay exact —
// the queue workers may reorder across flows but never lose a frame.
func TestLoopbackMultiQueue(t *testing.T) {
	link := ethersim.Ether10Mb
	rep := runLoopback(t,
		LoadConfig{Packets: 2000, Ports: 4, Seed: 4, Link: link,
			Profile: "heavytail", Flows: 8},
		Options{Link: link, Mode: pfdev.EvalTable, Queues: 4})
	if rep.Delivered != rep.Sent {
		t.Errorf("multi-queue: delivered %d of %d", rep.Delivered, rep.Sent)
	}
	dc := rep.Stats.Device
	if dc.Queues != 4 {
		t.Fatalf("server reports %d queues, want 4", dc.Queues)
	}
	var busy, total = 0, uint64(0)
	for _, n := range dc.QueueRx {
		total += n
		if n > 0 {
			busy++
		}
	}
	if total != rep.Sent {
		t.Errorf("per-queue receive counts sum to %d, want %d", total, rep.Sent)
	}
	if busy < 2 {
		t.Errorf("only %d of 4 queues saw traffic across 8 flows", busy)
	}
}

// Table mode with the governor on, over the real wire.
func TestLoopbackTableWithGovernor(t *testing.T) {
	link := ethersim.Ether10Mb
	runLoopback(t,
		LoadConfig{Packets: 1500, Ports: 6, Seed: 3, Link: link},
		Options{Link: link, Mode: pfdev.EvalTable, Reorder: true,
			Gov: pfdev.GovConfig{Enabled: true}})
}

// Shutdown while readers are blocked must come back clean: no hangs,
// readers woken with a closed-device error.
func TestLoopbackCleanShutdown(t *testing.T) {
	link := ethersim.Ether10Mb
	inst, err := Start(ServeConfig{CtlAddr: "127.0.0.1:0", UDPAddr: "127.0.0.1:0",
		Opt: Options{Link: link}})
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	ctl, err := DialControl(inst.CtlAddr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	id, err := ctl.Open(0, false, false)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	done := make(chan struct{})
	go func() {
		// Long blocking read; Close must unblock it (empty result or
		// connection teardown both count — just don't hang).
		ctl.Read(id, 0, 10*time.Second)
		close(done)
	}()
	time.Sleep(20 * time.Millisecond)
	inst.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("blocked control read survived instance shutdown")
	}
	ctl.Close()
}
