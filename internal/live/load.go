package live

// The load driver behind `pfserve -selftest` and cmd/pfload: it
// exercises a running pfserve entirely from outside — ports opened and
// filters bound over the control socket, frames injected as loopback
// UDP datagrams, packets drained by concurrent control-socket readers
// — and then reconciles every layer's counters exactly.  The
// conservation argument is the PR-6 span invariant carried into live
// mode:
//
//	frames sent == wire received == spans created
//	created     == delivered-to-users + typed drops   (live == 0)
//	delivered   == frames the readers actually got
//
// UDP loopback is lossless in practice at the paced rates used here;
// if the kernel does shed (socket-buffer overflow under extreme
// contention), the reconciliation fails loudly rather than fudging.

import (
	"fmt"
	"time"

	"repro/internal/clock"
	"repro/internal/ethersim"
	"repro/internal/pup"
	"repro/internal/workload"
)

// LoadConfig parameterizes one load run.
type LoadConfig struct {
	// Packets is how many frames to inject (default 10000).
	Packets int
	// Ports is the receiving port population (default 8).
	Ports int
	// Seed feeds the deterministic traffic generator.
	Seed int64
	// Link is the frame geometry (must match the server's).
	Link ethersim.LinkType
	// Profile selects the generator: "mix" (the §6.1 composition —
	// non-Pup shares become kernel drops) or "heavytail"
	// (bounded-Pareto Pup flows; every frame matches some port).
	Profile string
	// Flows is how many distinct link-level source addresses the
	// injector cycles through (default 1).  The filters never look at
	// the link source, so the demux outcome is flow-count independent;
	// more flows let a multi-queue server (pfserve -queues) spread the
	// load across its receive queues.
	Flows int
	// PaceEvery/Pace: sleep Pace after every PaceEvery frames so the
	// loopback socket buffer never overflows (defaults 64 / 1ms).
	PaceEvery int
	Pace      time.Duration
	// QueueLimit is the per-port input-queue bound (default 4096).
	QueueLimit int
	// DrainTimeout bounds the post-send settling wait (default 30s).
	DrainTimeout time.Duration
}

func (cfg LoadConfig) withDefaults() LoadConfig {
	if cfg.Packets <= 0 {
		cfg.Packets = 10000
	}
	if cfg.Ports <= 0 {
		cfg.Ports = 8
	}
	if cfg.Profile == "" {
		cfg.Profile = "mix"
	}
	if cfg.Flows <= 0 {
		cfg.Flows = 1
	}
	if cfg.PaceEvery <= 0 {
		cfg.PaceEvery = 64
	}
	if cfg.Pace <= 0 {
		cfg.Pace = time.Millisecond
	}
	if cfg.QueueLimit <= 0 {
		cfg.QueueLimit = 4096
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 30 * time.Second
	}
	return cfg
}

// LoadReport is the outcome of one load run.
type LoadReport struct {
	Sent      uint64        // frames written to the wire
	Delivered uint64        // frames the control-socket readers drained
	PerPort   []uint64      // reader deliveries per port (port-list order)
	SendTime  time.Duration // wall time of the injection phase
	TotalTime time.Duration // injection + settle + drain
	Stats     *StatsReport  // the server's final statistics block
	Errors    []string      // reconciliation failures (empty on success)
}

// Rate returns the end-to-end packets/second over the whole run.
func (r *LoadReport) Rate() float64 {
	if r.TotalTime <= 0 {
		return 0
	}
	return float64(r.Sent) / r.TotalTime.Seconds()
}

// SendRate returns packets/second of the injection phase alone.
func (r *LoadReport) SendRate() float64 {
	if r.SendTime <= 0 {
		return 0
	}
	return float64(r.Sent) / r.SendTime.Seconds()
}

// sleep blocks for d on the given clock — the wall-clock-free way to
// pace inside internal/ (clock.Wall's AfterFunc is the only real-time
// primitive in play).
func sleep(clk clock.Clock, d time.Duration) {
	ch := make(chan struct{})
	clk.AfterFunc(d, func() { close(ch) })
	<-ch
}

// frameSource is either traffic generator, behind one method.
type frameSource interface {
	Frame(dst, src ethersim.Addr) []byte
}

// RunLoad drives a pfserve at ctlAddr/udpAddr with cfg and returns the
// reconciled report.  Transport or protocol failures return an error;
// counter mismatches come back in Report.Errors so the caller can
// print the full report before failing.
func RunLoad(ctlAddr, udpAddr string, cfg LoadConfig) (*LoadReport, error) {
	cfg = cfg.withDefaults()
	clk := clock.NewWall()
	rep := &LoadReport{PerPort: make([]uint64, cfg.Ports)}

	ctl, err := DialControl(ctlAddr)
	if err != nil {
		return nil, fmt.Errorf("control: %w", err)
	}
	defer ctl.Close()
	if err := ctl.Ping(); err != nil {
		return nil, fmt.Errorf("ping: %w", err)
	}

	// One port per socket, bound to the standard Pup socket-demux
	// filter — the same programs every simulated experiment binds.
	sockets := make([]uint32, cfg.Ports)
	portIDs := make([]int, cfg.Ports)
	for i := range sockets {
		sockets[i] = uint32(0x100 + i)
		id, err := ctl.Open(cfg.QueueLimit, false, false)
		if err != nil {
			return nil, fmt.Errorf("open port %d: %w", i, err)
		}
		portIDs[i] = id
		if err := ctl.SetFilter(id, pup.SocketFilter(cfg.Link, 10, sockets[i])); err != nil {
			return nil, fmt.Errorf("setfilter port %d: %w", i, err)
		}
	}

	// Concurrent readers, one control connection each, so reads on one
	// port never head-of-line block another.
	stop := make(chan struct{})
	readerDone := make(chan error, cfg.Ports)
	for i := range portIDs {
		go func(slot, id int) {
			rc, err := DialControl(ctlAddr)
			if err != nil {
				readerDone <- fmt.Errorf("reader %d dial: %w", slot, err)
				return
			}
			defer rc.Close()
			for {
				pkts, err := rc.Read(id, 0, 50*time.Millisecond)
				if err != nil {
					readerDone <- fmt.Errorf("reader %d: %w", slot, err)
					return
				}
				rep.PerPort[slot] += uint64(len(pkts))
				if len(pkts) == 0 {
					select {
					case <-stop:
						readerDone <- nil
						return
					default:
					}
				}
			}
		}(i, portIDs[i])
	}

	// Injection: frames go out as loopback UDP datagrams, verbatim.
	sender, err := DialWire(udpAddr)
	if err != nil {
		return nil, fmt.Errorf("wire: %w", err)
	}
	defer sender.Close()

	var src frameSource
	switch cfg.Profile {
	case "heavytail":
		src = workload.NewFlowGen(cfg.Seed, cfg.Link, sockets)
	default:
		gen := workload.NewGenerator(cfg.Seed, cfg.Link, workload.PaperMix(), sockets)
		gen.SocketBias = 0.4
		src = gen
	}

	start := clk.Now()
	for i := 0; i < cfg.Packets; i++ {
		if err := sender.Send(src.Frame(2, ethersim.Addr(1+i%cfg.Flows))); err != nil {
			return nil, fmt.Errorf("send %d: %w", i, err)
		}
		if (i+1)%cfg.PaceEvery == 0 {
			sleep(clk, cfg.Pace)
		}
	}
	rep.Sent = sender.Sent.Load()
	rep.SendTime = clk.Now() - start

	// Settle: wait until every injected frame is accounted for — spans
	// created match the send count and none is still live (readers are
	// draining concurrently).  A reader that fails mid-run (its control
	// connection died) aborts the wait immediately instead of sitting
	// out the drain timeout against a server that is already gone.
	deadline := clk.Now() + cfg.DrainTimeout
	for {
		select {
		case rerr := <-readerDone:
			if rerr != nil {
				close(stop)
				return nil, rerr
			}
		default:
		}
		st, err := ctl.Stats()
		if err != nil {
			close(stop)
			return nil, fmt.Errorf("stats: %w", err)
		}
		rep.Stats = st
		if st.Spans != nil && st.Spans.Created == rep.Sent && st.Spans.Live == 0 {
			break
		}
		if clk.Now() > deadline {
			rep.Errors = append(rep.Errors, fmt.Sprintf(
				"drain timeout: sent %d, spans created %d, live %d",
				rep.Sent, spansCreated(st), spansLive(st)))
			break
		}
		sleep(clk, 20*time.Millisecond)
	}

	close(stop)
	for range portIDs {
		if err := <-readerDone; err != nil {
			return nil, err
		}
	}
	// Readers have stopped; one final stats fetch after the last reads.
	st, err := ctl.Stats()
	if err != nil {
		return nil, fmt.Errorf("final stats: %w", err)
	}
	rep.Stats = st
	rep.TotalTime = clk.Now() - start
	for _, n := range rep.PerPort {
		rep.Delivered += n
	}
	rep.reconcile(cfg)
	return rep, nil
}

func spansCreated(st *StatsReport) uint64 {
	if st == nil || st.Spans == nil {
		return 0
	}
	return st.Spans.Created
}

func spansLive(st *StatsReport) uint64 {
	if st == nil || st.Spans == nil {
		return 0
	}
	return st.Spans.Live
}

// reconcile cross-checks every layer's counters exactly.
func (r *LoadReport) reconcile(cfg LoadConfig) {
	st := r.Stats
	fail := func(format string, args ...any) {
		r.Errors = append(r.Errors, fmt.Sprintf(format, args...))
	}
	if st == nil {
		fail("no statistics block")
		return
	}
	if uint64(cfg.Packets) != r.Sent {
		fail("sent %d of %d requested frames", r.Sent, cfg.Packets)
	}
	if st.Wire == nil {
		fail("no wire statistics")
	} else if st.Wire.Received != r.Sent {
		fail("UDP loss: sent %d, wire received %d", r.Sent, st.Wire.Received)
	}
	if st.Device.Received != r.Sent {
		fail("device received %d of %d frames", st.Device.Received, r.Sent)
	}
	if st.Spans == nil {
		fail("no span statistics")
		return
	}
	sp := st.Spans
	if sp.Created != r.Sent {
		fail("spans created %d != sent %d", sp.Created, r.Sent)
	}
	if sp.Live != 0 {
		fail("%d spans still live after drain", sp.Live)
	}
	if sp.DeliveredUser+sp.TotalDrops != sp.Created {
		fail("conservation broken: %d delivered + %d dropped != %d created",
			sp.DeliveredUser, sp.TotalDrops, sp.Created)
	}
	if r.Delivered != sp.DeliveredUser {
		fail("readers drained %d, spans say %d delivered", r.Delivered, sp.DeliveredUser)
	}
	var matched, portDrops uint64
	for _, ps := range st.Ports {
		matched += ps.Matched
		portDrops += ps.Dropped
	}
	if matched != r.Delivered+portDrops+uint64(st.Device.QueuedNow) {
		fail("port accounting: %d matched != %d delivered + %d overflow-dropped + %d queued",
			matched, r.Delivered, portDrops, st.Device.QueuedNow)
	}
	if sp.DeliveredUser+st.Device.KernelDrops+portDrops != sp.Created {
		fail("drop split: %d delivered + %d kernel drops + %d port drops != %d created",
			sp.DeliveredUser, st.Device.KernelDrops, portDrops, sp.Created)
	}
}
