package live

// Multi-queue receive: the live mirror of pfdev's per-queue demux
// contexts.  The simulated device models each RSS queue as a kernel
// lane — a parallel kernel thread charging virtual CPU; here each
// queue is a real goroutine draining a FIFO channel.  The steering
// contract is shared: ethersim.LinkType.SteerQueue hashes the flow
// tuple (src, dst, type) so one flow always lands on one queue, which
// one worker drains in order — per-flow delivery order is preserved by
// construction, with no cross-queue ordering promised (exactly the
// simulated semantics).
//
// Hand-off is a blocking send on a bounded channel.  A queue that
// falls behind exerts backpressure on the wire receive goroutine
// rather than shedding frames silently; every loss stays a *typed*
// loss (socket-buffer overflow on the wire, or an accounted device
// drop), which is what keeps RunLoad's exact conservation
// reconciliation — sent == wire received == spans created ==
// delivered + typed drops — valid at any queue count.

// mqDepth bounds one receive queue.  Deep enough to ride out
// scheduling hiccups at load-test rates, small enough that
// backpressure engages well before memory matters.
const mqDepth = 4096

// startQueues launches the per-queue workers when Options.Queues > 1.
// Called once from NewDevice; rxqs is immutable afterwards.
func (d *Device) startQueues() {
	n := d.opt.Queues
	if n <= 1 {
		return
	}
	d.rxqs = make([]chan []byte, n)
	d.qrx = make([]uint64, n)
	d.mqQuit = make(chan struct{})
	for q := range d.rxqs {
		d.rxqs[q] = make(chan []byte, mqDepth)
		d.mqWG.Add(1)
		go d.queueWorker(q)
	}
}

// queueWorker drains one receive queue in arrival order until the
// device closes.  Frames still buffered at close time are discarded,
// matching Input's contract on a closed device.
func (d *Device) queueWorker(q int) {
	defer d.mqWG.Done()
	for {
		select {
		case frame := <-d.rxqs[q]:
			d.input(frame, q)
		case <-d.mqQuit:
			return
		}
	}
}

// stopQueues terminates the workers and waits for them; pending sends
// in Input unblock on the same quit channel.  Called from Close with
// d.closed already set (so late worker iterations no-op).
func (d *Device) stopQueues() {
	if d.mqQuit == nil {
		return
	}
	close(d.mqQuit)
	d.mqWG.Wait()
}
