package live

import (
	"net"
	"strings"
	"testing"
	"time"
)

// refusedAddr returns an address nothing is listening on: bind an
// ephemeral port, then free it.
func refusedAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestDialControlRefused pins the absent-server contract: dialing a
// control socket nobody serves fails promptly with a one-line error
// naming the address — no hang, no panic.
func TestDialControlRefused(t *testing.T) {
	addr := refusedAddr(t)
	start := time.Now()
	c, err := DialControl(addr)
	if err == nil {
		c.Close()
		t.Fatal("DialControl to a refused port succeeded")
	}
	if elapsed := time.Since(start); elapsed > DefaultDialTimeout {
		t.Errorf("refused dial took %v, should fail within %v", elapsed, DefaultDialTimeout)
	}
	if !strings.Contains(err.Error(), addr) {
		t.Errorf("error %q does not name the address %s", err, addr)
	}
}

// TestClientServerGoneMidSession pins the mid-session contract: when
// the server drops the connection between requests, the client gets a
// clear "server gone" diagnosis instead of a bare io.EOF.
func TestClientServerGoneMidSession(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		conn.Close() // hang up without answering
	}()
	c, err := DialControl(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Ping()
	if err == nil {
		t.Fatal("ping against a hung-up server succeeded")
	}
	if !strings.Contains(err.Error(), "closed by pfserve") {
		t.Errorf("mid-session hangup surfaced as %q, want a closed-by-pfserve diagnosis", err)
	}
}

// TestRunLoadRefusedControl pins the load driver's absent-server
// behavior: a refused control socket is a prompt, typed error, not a
// drain-timeout hang.
func TestRunLoadRefusedControl(t *testing.T) {
	addr := refusedAddr(t)
	start := time.Now()
	_, err := RunLoad(addr, addr, LoadConfig{Packets: 1, Ports: 1})
	if err == nil {
		t.Fatal("RunLoad against a refused control socket succeeded")
	}
	if !strings.Contains(err.Error(), "control:") {
		t.Errorf("error %q does not identify the control-socket phase", err)
	}
	if elapsed := time.Since(start); elapsed > DefaultDialTimeout {
		t.Errorf("refused RunLoad took %v, should fail within the dial timeout", elapsed)
	}
}
