package live

// Mode equivalence: the live device must be the simulated device with
// the clock swapped out.  Feeding the identical filter set and packet
// sequence through both must produce identical verdicts, per-port
// counters and drop reasons — field by field, not timing.  This is the
// contract that makes live measurements comparable to simulated ones.

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/ethersim"
	"repro/internal/filter"
	"repro/internal/pfdev"
	"repro/internal/pup"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vtime"
	"repro/internal/workload"
)

// equivOutcome is everything both modes must agree on.
type equivOutcome struct {
	kernelDrops uint64
	created     uint64
	delivered   uint64
	drops       [trace.NumDropReasons]uint64
	ports       []portOutcome
}

type portOutcome struct {
	id      int
	matched uint64
	instrs  uint64
	dropped uint64
	frames  [][]byte // drained packet data, in queue order
}

const (
	equivPorts   = 4
	equivPackets = 300
	// Port 0's queue is squeezed so overflow drops are exercised on
	// both sides; the rest hold everything.
	equivSmallQueue = 5
)

func equivFrames(seed int64, link ethersim.LinkType, sockets []uint32) [][]byte {
	// 70% Pup across the socket population, 30% unclassifiable — the
	// latter exercise the no-match path (no ARP: broadcasts would pull
	// the source host's own NIC into the virtual run).
	gen := workload.NewGenerator(seed, link, workload.Mix{PctPF: 70}, sockets)
	gen.SocketBias = 0.4
	frames := make([][]byte, equivPackets)
	for i := range frames {
		frames[i] = gen.Frame(2, 1)
	}
	return frames
}

// runVirtual pushes the frame sequence through the full simulated
// stack: virtual Ethernet, NIC, pfdev.
func runVirtual(t *testing.T, mode pfdev.EvalMode, monitor bool,
	link ethersim.LinkType, sockets []uint32, frames [][]byte) equivOutcome {
	t.Helper()
	tr := trace.New()
	sp := tr.EnableSpans(trace.SpanConfig{Ring: 1 << 13})
	s := sim.New(vtime.DefaultCosts())
	s.SetTracer(tr)
	net := ethersim.New(s, link)
	src := s.NewHost("src")
	recv := s.NewHost("recv")
	nicSrc := net.Attach(src, 1)
	nicRecv := net.Attach(recv, 2)
	dev := pfdev.Attach(nicRecv, nil, pfdev.Options{Mode: mode, Reorder: true})

	var ports []*pfdev.Port
	s.Spawn(recv, "setup", func(p *sim.Proc) {
		for i, sock := range sockets {
			port := dev.Open(p)
			limit := len(frames) + 1
			if i == 0 {
				limit = equivSmallQueue
			}
			port.SetQueueLimit(p, limit)
			port.SetTimeout(p, -1)
			if err := port.SetFilter(p, pup.SocketFilter(link, 10, sock)); err != nil {
				t.Errorf("virtual setfilter %d: %v", i, err)
			}
			ports = append(ports, port)
		}
		if monitor {
			mon := dev.Open(p)
			mon.SetQueueLimit(p, len(frames)+1)
			mon.SetTimeout(p, -1)
			mon.SetCopyAll(p, true)
			if err := mon.SetFilter(p, filter.Filter{Priority: 200}); err != nil {
				t.Errorf("virtual monitor filter: %v", err)
			}
			ports = append(ports, mon)
		}
	})
	s.Run(0)

	s.Spawn(src, "drive", func(p *sim.Proc) {
		for _, f := range frames {
			nicSrc.Transmit(f)
			p.Sleep(4 * time.Millisecond)
		}
	})
	s.Run(0)

	out := equivOutcome{}
	s.Spawn(recv, "drain", func(p *sim.Proc) {
		for _, port := range ports {
			po := portOutcome{}
			for {
				pkts, err := port.ReadBatch(p)
				if err != nil {
					break
				}
				for _, pkt := range pkts {
					po.frames = append(po.frames, pkt.Data)
				}
			}
			st := port.Stats()
			po.id, po.matched, po.instrs, po.dropped = st.ID, st.Matched, st.FilterInstrs, st.Dropped
			out.ports = append(out.ports, po)
		}
	})
	s.Run(0)

	out.kernelDrops = dev.KernelDrops
	out.created = sp.Created
	out.delivered = sp.DeliveredUser
	out.drops = sp.Drops
	return out
}

// runLive pushes the identical frames through the live device.
func runLive(t *testing.T, mode pfdev.EvalMode, monitor bool,
	link ethersim.LinkType, sockets []uint32, frames [][]byte) equivOutcome {
	t.Helper()
	tr := trace.New()
	sp := tr.EnableSpans(trace.SpanConfig{Ring: 1 << 13})
	dev := NewDevice(Options{Link: link, Mode: mode, Reorder: true, Tracer: tr})

	var ports []*Port
	for i, sock := range sockets {
		port := dev.Open()
		limit := len(frames) + 1
		if i == 0 {
			limit = equivSmallQueue
		}
		port.SetQueueLimit(limit)
		if err := port.SetFilter(pup.SocketFilter(link, 10, sock)); err != nil {
			t.Fatalf("live setfilter %d: %v", i, err)
		}
		ports = append(ports, port)
	}
	if monitor {
		mon := dev.Open()
		mon.SetQueueLimit(len(frames) + 1)
		mon.SetCopyAll(true)
		if err := mon.SetFilter(filter.Filter{Priority: 200}); err != nil {
			t.Fatalf("live monitor filter: %v", err)
		}
		ports = append(ports, mon)
	}

	for _, f := range frames {
		dev.Input(f)
	}

	out := equivOutcome{}
	for _, port := range ports {
		po := portOutcome{}
		for {
			pkts, err := port.ReadBatch(0, -1)
			if err != nil {
				break
			}
			for _, pkt := range pkts {
				po.frames = append(po.frames, pkt.Data)
			}
		}
		st := port.Stats()
		po.id, po.matched, po.instrs, po.dropped = st.ID, st.Matched, st.FilterInstrs, st.Dropped
		out.ports = append(out.ports, po)
	}

	out.kernelDrops = dev.KernelDrops()
	out.created = sp.Created
	out.delivered = sp.DeliveredUser
	out.drops = sp.Drops
	return out
}

func TestModeEquivalence(t *testing.T) {
	link := ethersim.Ether10Mb
	sockets := make([]uint32, equivPorts)
	for i := range sockets {
		sockets[i] = uint32(0x100 + i)
	}
	for _, mode := range []pfdev.EvalMode{pfdev.EvalChecked, pfdev.EvalTable} {
		for _, monitor := range []bool{false, true} {
			name := fmt.Sprintf("mode=%d/monitor=%v", mode, monitor)
			t.Run(name, func(t *testing.T) {
				frames := equivFrames(99, link, sockets)
				v := runVirtual(t, mode, monitor, link, sockets, frames)
				l := runLive(t, mode, monitor, link, sockets, frames)

				if v.kernelDrops != l.kernelDrops {
					t.Errorf("kernel drops: virtual %d, live %d", v.kernelDrops, l.kernelDrops)
				}
				if v.created != l.created {
					t.Errorf("spans created: virtual %d, live %d", v.created, l.created)
				}
				if v.delivered != l.delivered {
					t.Errorf("spans delivered: virtual %d, live %d", v.delivered, l.delivered)
				}
				for r := range v.drops {
					if v.drops[r] != l.drops[r] {
						t.Errorf("drop %s: virtual %d, live %d",
							trace.DropReason(r), v.drops[r], l.drops[r])
					}
				}
				if len(v.ports) != len(l.ports) {
					t.Fatalf("port count: virtual %d, live %d", len(v.ports), len(l.ports))
				}
				for i := range v.ports {
					vp, lp := v.ports[i], l.ports[i]
					if vp.id != lp.id || vp.matched != lp.matched ||
						vp.instrs != lp.instrs || vp.dropped != lp.dropped {
						t.Errorf("port %d: virtual {matched %d instrs %d dropped %d}, live {matched %d instrs %d dropped %d}",
							vp.id, vp.matched, vp.instrs, vp.dropped,
							lp.matched, lp.instrs, lp.dropped)
					}
					if len(vp.frames) != len(lp.frames) {
						t.Errorf("port %d delivered %d frames virtual, %d live",
							vp.id, len(vp.frames), len(lp.frames))
						continue
					}
					for k := range vp.frames {
						if !bytes.Equal(vp.frames[k], lp.frames[k]) {
							t.Errorf("port %d frame %d differs between modes", vp.id, k)
							break
						}
					}
				}
			})
		}
	}
}
