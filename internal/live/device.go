// Package live hosts the packet-filter engine on real time and real
// goroutines: the same filter language, evaluation modes, priority
// scan, busy-first reordering, resource governor and provenance spans
// as the simulated device (package pfdev), driven by frames arriving
// from a loopback-UDP wire (wire.go) instead of the virtual Ethernet.
//
// The simulated device charges virtual CPU for every evaluation step
// so the paper's §6 numbers are reproducible; the live device skips
// the charging (wall time is measured, not modeled) but keeps every
// verdict, counter and drop reason identical — the mode-equivalence
// test pins that the two devices, given the same filter set and packet
// sequence, fill in the same pfdev.PortStats field by field.
//
// Concurrency model: one mutex serializes the whole device — the wire
// receive goroutine delivering frames, control-socket goroutines
// reading ports and stats, and timer callbacks.  That mirrors the
// original kernel driver (filter evaluation ran at splimp, reads under
// the kernel lock) and lets the trace/span subsystem, written for the
// single-threaded simulator, be reused unmodified.
package live

import (
	"errors"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/ethersim"
	"repro/internal/filter"
	"repro/internal/pfdev"
	"repro/internal/trace"
)

// Errors returned by port operations; they mirror pfdev's.
var (
	ErrTimeout    = errors.New("live: read timed out")
	ErrClosed     = errors.New("live: port closed")
	ErrWouldBlock = errors.New("live: no packet queued")
	ErrNoPort     = errors.New("live: no such port")
)

// Options configures a live Device.
type Options struct {
	// Link is the data link the carried frames belong to; it decides
	// header geometry for filter environments (PUSHHDRLEN) and the
	// socket-filter word offsets.  Default Ether10Mb.
	Link ethersim.LinkType
	// Mode selects the evaluation strategy, exactly as in pfdev.
	Mode pfdev.EvalMode
	// Reorder enables §3.2 busy-first reordering every ReorderEvery
	// packets (default 64).
	Reorder      bool
	ReorderEvery int
	// Extensions permits the §7 extended instructions.
	Extensions bool
	// Gov configures the resource governor; the zero value disables
	// it.  Quarantine windows and token refill run on the device
	// clock — wall seconds in live mode.
	Gov pfdev.GovConfig
	// FullRebuild disables incremental decision-table maintenance,
	// mirroring pfdev.Options.FullRebuild: every churn event discards
	// the table and the next match rebuilds it from scratch.
	FullRebuild bool
	// Clock is the device's time source.  Defaults to clock.NewWall();
	// tests may substitute any clock.Clock.
	Clock clock.Clock
	// Tracer, when non-nil, receives the same instrumentation the
	// simulated device emits (counters, spans, flight recorder).  All
	// tracer access is serialized under the device mutex.
	Tracer *trace.Tracer
	// Name is the host label used in trace attribution (default
	// "live").
	Name string
	// Queues selects the number of RSS-style receive queues.  Values
	// <= 1 keep the classic path: Input runs the whole demux inline on
	// the caller's goroutine.  With N > 1, Input steers each frame by
	// its flow tuple (ethersim.LinkType.SteerQueue — the same hash the
	// simulated NIC uses) onto one of N queue workers, the live mirror
	// of pfdev's per-queue kernel lanes.  One flow maps to one queue
	// and one worker drains each queue in FIFO order, so per-flow
	// arrival order is preserved by construction.  Queue hand-off uses
	// blocking sends: a backed-up queue exerts backpressure on the wire
	// receive loop instead of shedding silently, keeping the load
	// driver's exact frame reconciliation intact.
	Queues int
}

// Device is the live-mode packet-filter device.
type Device struct {
	mu   sync.Mutex
	clk  clock.Clock
	tr   *trace.Tracer
	name string
	opt  Options

	ports   []*Port // sorted: priority desc, busy-first within priority
	nextID  int
	pktSeen uint64

	// table is the published merged evaluator, maintained incrementally
	// exactly as in pfdev: churn patches it with Insert/Remove and
	// swaps the pointer under the mutex; a match snapshots the pointer
	// once and finishes on that consistent table even if a governor
	// transition patches mid-scan.
	table *filter.Table

	// Table-maintenance accounting, mirroring pfdev's (deterministic
	// filter.Table.Work units).
	tableBuilds  uint64
	tablePatches uint64
	tableWork    uint64

	queuedTotal    int
	shedding       bool
	admissionSheds uint64
	scanQuarSkip   bool

	received    uint64 // frames handed to Input
	kernelDrops uint64 // no-match / quota / admission drops

	treeScratch []*Port
	portScratch []*Port

	// Multi-queue receive state (mq.go).  rxqs is built once in
	// NewDevice and never mutated, so Input may read it without the
	// mutex; qrx counts frames demuxed per queue (under mu).
	rxqs   []chan []byte
	qrx    []uint64
	mqQuit chan struct{}
	mqWG   sync.WaitGroup

	closed bool
}

// NewDevice creates a live device.
func NewDevice(opt Options) *Device {
	if opt.ReorderEvery <= 0 {
		opt.ReorderEvery = 64
	}
	if opt.Clock == nil {
		opt.Clock = clock.NewWall()
	}
	if opt.Name == "" {
		opt.Name = "live"
	}
	opt.Gov = opt.Gov.WithDefaults()
	d := &Device{clk: opt.Clock, tr: opt.Tracer, name: opt.Name, opt: opt}
	d.startQueues()
	return d
}

// Queues returns the number of receive queues (1 when single-queue).
func (d *Device) Queues() int {
	if len(d.rxqs) > 1 {
		return len(d.rxqs)
	}
	return 1
}

// Clock returns the device's time source.
func (d *Device) Clock() clock.Clock { return d.clk }

// Tracer returns the device's tracer (may be nil).
func (d *Device) Tracer() *trace.Tracer { return d.tr }

// Name returns the trace host label.
func (d *Device) Name() string { return d.name }

// Link returns the data-link type the device was configured for.
func (d *Device) Link() ethersim.LinkType { return d.opt.Link }

// Packet is one received packet as returned by Read: the complete
// frame including the data-link header, plus the optional receive
// timestamp and the cumulative drop count, as in pfdev.Packet.
type Packet struct {
	Data  []byte
	Stamp time.Duration
	Drops uint64

	arrived time.Duration // when the frame entered Input
	qAt     time.Duration // when it was enqueued
	span    uint64
}

// Span returns the packet's provenance span id (0 when untracked).
func (pkt Packet) Span() uint64 { return pkt.span }

// Port is one open port on the live device.
type Port struct {
	dev *Device
	id  int

	priority uint8
	prog     filter.Program
	pv       *filter.Prevalidated
	compiled *filter.Compiled
	// fp and slot mirror pfdev's table-mode port state: the flat
	// compilation answers quarantine-exit transition packets, and slot
	// is the port's stable slot in the published table (-1 when not
	// resident).
	fp   *filter.FlatProg
	slot int

	queue      []Packet
	qhead      int
	queueLimit int
	maxQueued  int
	dropped    uint64

	copyAll bool
	stamp   bool
	closed  bool

	matches uint64
	instrs  uint64
	reads   uint64
	batches uint64
	batched uint64

	// Governor state, mirroring pfdev's port fields.
	govTokens   float64
	govRefill   time.Duration
	govBound    int
	quarUntil   time.Duration
	quarPenalty time.Duration
	tableActive bool
	fuelSpent   uint64
	quarantines uint64
	quarSkips   uint64

	qresSum time.Duration
	qresN   uint64

	spanDropCtrs [trace.NumDropReasons]*trace.Counter
	qGauge       *trace.Gauge

	readers *sync.Cond // on dev.mu; broadcast on enqueue/close/timeout
}

// DefaultQueueLimit matches pfdev's default per-port input queue bound.
const DefaultQueueLimit = pfdev.DefaultQueueLimit

// Open opens a new port on the device.
func (d *Device) Open() *Port {
	d.mu.Lock()
	defer d.mu.Unlock()
	port := &Port{
		dev:         d,
		id:          d.nextID,
		queueLimit:  DefaultQueueLimit,
		tableActive: true,
		slot:        -1,
	}
	port.readers = sync.NewCond(&d.mu)
	if g := d.opt.Gov; g.Enabled {
		// The bucket starts full at open time; rebinding a filter does
		// not refill it (same anti-laundering rule as pfdev).
		port.govTokens = float64(g.Burst)
		port.govRefill = d.clk.Now()
	}
	d.nextID++
	d.ports = append(d.ports, port)
	d.sortPorts()
	return port
}

// Port returns the open port with the given id, or nil.
func (d *Device) Port(id int) *Port {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, port := range d.ports {
		if port.id == id {
			return port
		}
	}
	return nil
}

// ID returns the port's device-unique id.
func (port *Port) ID() int { return port.id }

// SetFilter binds a filter to the port, validating or compiling it at
// bind time exactly as the simulated device's ioctl does.
func (port *Port) SetFilter(f filter.Filter) error {
	d := port.dev
	d.mu.Lock()
	defer d.mu.Unlock()
	if port.closed {
		return ErrClosed
	}
	opt := filter.ValidateOptions{Extensions: d.opt.Extensions}
	switch d.opt.Mode {
	case pfdev.EvalFast:
		pv, err := filter.Prevalidate(f.Program, opt)
		if err != nil {
			return err
		}
		pv.SetEnv(filter.Env{HeaderWords: d.opt.Link.HeaderWords()})
		port.pv = pv
	case pfdev.EvalCompiled:
		c, err := filter.Compile(f.Program, opt,
			filter.Env{HeaderWords: d.opt.Link.HeaderWords()})
		if err != nil {
			return err
		}
		port.compiled = c
	case pfdev.EvalTable:
		// Table-mode validation happens on insert; a failing program
		// matches nothing.  The flat compilation answers for
		// quarantine-exit transition packets, exactly as in pfdev.
		if fp, err := filter.CompileFlat(f.Program, filter.ValidateOptions{}, filter.Env{}); err == nil {
			port.fp = fp
		} else {
			port.fp = nil
		}
	default:
		// The checked interpreter accepts anything and fails per
		// packet.
	}
	d.tableRemovePort(port)
	port.prog = f.Program.Clone()
	port.priority = f.Priority
	if d.opt.Gov.Enabled {
		port.govBound = pfdev.GovBound(d.opt.Mode, port.prog, opt)
	}
	d.sortPorts()
	if !d.opt.Gov.Enabled || port.tableActive {
		d.tableInsertPort(port)
	}
	return nil
}

// SetQueueLimit sets the maximum per-port input queue length.
func (port *Port) SetQueueLimit(n int) {
	port.dev.mu.Lock()
	defer port.dev.mu.Unlock()
	if n < 1 {
		n = 1
	}
	port.queueLimit = n
}

// SetCopyAll requests that packets accepted by this port's filter also
// be submitted to lower-priority filters (§3.2).
func (port *Port) SetCopyAll(on bool) {
	port.dev.mu.Lock()
	defer port.dev.mu.Unlock()
	port.copyAll = on
}

// SetStamp enables receive timestamping.
func (port *Port) SetStamp(on bool) {
	port.dev.mu.Lock()
	defer port.dev.mu.Unlock()
	port.stamp = on
}

// eval applies the port's filter to a frame, with the identical
// per-mode instruction-unit scaling the simulated device charges.
func (port *Port) eval(frame []byte) (bool, int) {
	switch port.dev.opt.Mode {
	case pfdev.EvalFast:
		r := port.pv.Run(frame)
		return r.Accept, (r.Instrs*3 + 4) / 5
	case pfdev.EvalCompiled:
		ok := port.compiled.Run(frame)
		return ok, (port.compiled.Info().Instrs + 2) / 3
	default:
		var r filter.Result
		if port.dev.opt.Extensions {
			r = filter.RunExt(port.prog, frame,
				filter.Env{HeaderWords: port.dev.opt.Link.HeaderWords()})
		} else {
			r = filter.Run(port.prog, frame)
		}
		return r.Accept, r.Instrs
	}
}

// Input delivers one received frame to the device: governor admission,
// priority-ordered filter match, and enqueue on the accepting ports.
// The frame must not be modified by the caller afterwards (the wire
// receive loop hands over a fresh copy per datagram).  Safe from any
// goroutine.
//
// Single-queue devices demux inline; multi-queue devices steer the
// frame to its flow's queue worker (mq.go) and return once the
// hand-off lands, blocking — never dropping — when the queue is full.
func (d *Device) Input(frame []byte) {
	if len(d.rxqs) > 1 {
		q := d.opt.Link.SteerQueue(frame, len(d.rxqs))
		select {
		case d.rxqs[q] <- frame:
		case <-d.mqQuit:
		}
		return
	}
	d.input(frame, 0)
}

// input is the demux body: one frame, on one receive queue.
func (d *Device) input(frame []byte, queue int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return
	}
	if queue < len(d.qrx) {
		d.qrx[queue]++
	}
	now := d.clk.Now()
	// Live provenance begins at receive: the wire carries frames
	// verbatim, so there is no cross-process span hand-off and the
	// origin mark is the moment the frame left the UDP socket.
	span := d.tr.SpanOrigin(now, d.name)
	d.received++
	if !d.admitFrame() {
		d.shedFrame(span)
		return
	}
	if d.tr != nil {
		d.tr.PacketIn(now, d.name)
	}
	d.tr.SpanMark(span, trace.StageDemux, now)
	d.pktSeen++
	if d.opt.Reorder && d.pktSeen%uint64(d.opt.ReorderEvery) == 0 {
		d.reorder()
	}

	var ports []*Port
	if d.opt.Mode == pfdev.EvalTable {
		ports = d.tableMatch(frame, d.portScratch[:0])
	} else {
		ports = d.linearMatch(frame, d.portScratch[:0])
	}
	quarSkip := d.scanQuarSkip
	after := d.clk.Now()
	d.tr.SpanMark(span, trace.StageFilter, after)
	if len(ports) == 0 {
		d.kernelDrops++
		reason, label := trace.DropNoMatch, "nomatch"
		if quarSkip {
			reason, label = trace.DropQuota, "quota"
		}
		if d.tr != nil {
			d.tr.Drop(after, d.name, label)
		}
		d.tr.SpanDrop(span, after, d.name, reason)
		d.portScratch = ports[:0]
		return
	}
	for i, port := range ports {
		s := span
		if i > 0 {
			s = d.tr.SpanFork(span, after, d.name)
		}
		port.enqueue(frame, now, s)
	}
	d.portScratch = ports[:0]
}

// linearMatch mirrors pfdev's scan: priority order, governor
// admission, copy-all continuation, non-copy-all early stop.
func (d *Device) linearMatch(frame []byte, dst []*Port) []*Port {
	now := d.clk.Now()
	accepted := dst
	gov := d.opt.Gov.Enabled
	d.scanQuarSkip = false
	for _, port := range d.ports {
		if port.closed || port.prog == nil {
			continue
		}
		if gov && !port.govAdmit(now, &d.opt.Gov) {
			d.scanQuarSkip = true
			continue
		}
		accept, instrs := port.eval(frame)
		port.instrs += uint64(instrs)
		if gov {
			port.govCharge(instrs)
		}
		if d.tr != nil {
			d.tr.FilterEval(now, d.name, port.id, instrs, accept)
		}
		if !accept {
			continue
		}
		port.matches++
		accepted = append(accepted, port)
		if !port.copyAll {
			break
		}
	}
	return accepted
}

// tableMatch mirrors pfdev's v2 merged-decision-table path line for
// line: the table (snapshotted once per match) answers which filters
// accept, while the device drives the scan over d.ports in linear
// order, deciding governor admission as each port is reached, patching
// quarantine transitions into the published table, evaluating reached
// fallbacks lazily, and stopping at the first non-copy-all accept.
// Per-port accounting (instrs, fuel, FilterEval traces, edge shares)
// is identical to pfdev's, which is what keeps the mode-equivalence
// test pinning virtual vs live field by field.
func (d *Device) tableMatch(frame []byte, dst []*Port) []*Port {
	now := d.clk.Now()
	gov := d.opt.Gov.Enabled
	d.scanQuarSkip = false
	if d.table == nil {
		d.rebuildTable()
	}
	tbl := d.table // this match's immutable snapshot
	treeIdxs, edges := tbl.TreeMatch(frame)

	slotAccepted := func(slot int) bool {
		for _, i := range treeIdxs {
			if i == slot {
				return true
			}
		}
		return false
	}

	accepted, treeAccepts := dst, d.treeScratch[:0]
	for _, port := range d.ports {
		if port.closed || port.prog == nil {
			continue
		}
		slot := port.slot
		if gov {
			if !port.govAdmit(now, &d.opt.Gov) {
				d.scanQuarSkip = true
				if port.tableActive {
					port.tableActive = false
					d.tableRemovePort(port)
				}
				continue
			}
			if !port.tableActive {
				port.tableActive = true
				d.tableInsertPort(port)
			}
		}

		var accept bool
		ran := false
		instrs := 0
		switch {
		case slot >= 0:
			if fp := tbl.Fallback(slot); fp != nil {
				r := fp.Run(frame)
				accept, instrs, ran = r.Accept, r.Instrs, true
			} else {
				accept = slotAccepted(slot)
			}
		case port.fp != nil:
			r := port.fp.Run(frame)
			accept, instrs, ran = r.Accept, r.Instrs, true
		}
		if ran {
			port.instrs += uint64(instrs)
			if gov {
				port.govCharge(instrs)
			}
			if d.tr != nil {
				d.tr.FilterEval(now, d.name, port.id, instrs, accept)
			}
		} else if accept {
			treeAccepts = append(treeAccepts, port)
		}
		if !accept {
			continue
		}
		port.matches++
		accepted = append(accepted, port)
		if !port.copyAll {
			break
		}
	}

	switch {
	case len(treeAccepts) > 0:
		share := edges / len(treeAccepts)
		extra := edges % len(treeAccepts)
		for k, port := range treeAccepts {
			in := share
			if k < extra {
				in++
			}
			port.instrs += uint64(in)
			if gov {
				port.govCharge(in)
			}
			if d.tr != nil {
				d.tr.FilterEval(now, d.name, port.id, in, true)
			}
		}
	case edges > 0:
		if d.tr != nil {
			d.tr.FilterEval(now, d.name, -1, edges, false)
		}
	}
	d.treeScratch = treeAccepts[:0]
	return accepted
}

// rebuildTable compiles the full filter set from scratch — the cold
// path, as in pfdev.
func (d *Device) rebuildTable() {
	var filters []filter.Filter
	gov := d.opt.Gov.Enabled
	for _, port := range d.ports {
		port.slot = -1
	}
	var included []*Port
	for _, port := range d.ports {
		if port.closed || port.prog == nil || (gov && !port.tableActive) {
			continue
		}
		filters = append(filters, filter.Filter{Priority: port.priority, Program: port.prog})
		included = append(included, port)
	}
	d.table = filter.BuildTable(filters)
	for i, port := range included {
		port.slot = i
	}
	d.tableBuilds++
	d.tableWork += uint64(d.table.Work())
}

// tableInsertPort patches the port's filter into the published table,
// mirroring pfdev.
func (d *Device) tableInsertPort(port *Port) {
	if d.opt.Mode != pfdev.EvalTable || port.closed || port.prog == nil {
		return
	}
	if d.opt.FullRebuild {
		d.table = nil
		return
	}
	if d.table == nil {
		d.rebuildTable()
		return
	}
	before := d.table.Work()
	nt, slot := d.table.Insert(filter.Filter{Priority: port.priority, Program: port.prog})
	d.table = nt
	port.slot = slot
	d.tablePatches++
	d.tableWork += uint64(nt.Work() - before)
}

// tableRemovePort patches the port's filter out of the published
// table, mirroring pfdev.
func (d *Device) tableRemovePort(port *Port) {
	if d.opt.Mode != pfdev.EvalTable {
		return
	}
	if d.opt.FullRebuild {
		d.table = nil
		port.slot = -1
		return
	}
	if d.table == nil || port.slot < 0 {
		return
	}
	before := d.table.Work()
	d.table = d.table.Remove(port.slot)
	port.slot = -1
	d.tablePatches++
	d.tableWork += uint64(d.table.Work() - before)
}

// TableWork returns the cumulative decision-table construction work in
// deterministic filter.Table.Work units.
func (d *Device) TableWork() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.tableWork
}

// TableMaint reports the table-maintenance counters: from-scratch
// builds and incremental patches.
func (d *Device) TableMaint() (builds, patches uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.tableBuilds, d.tablePatches
}

// sortPorts re-sorts priority descending, stable within priorities.
// The v2 table is scan-order-free, so sorting leaves it untouched.
func (d *Device) sortPorts() {
	for i := 1; i < len(d.ports); i++ {
		for j := i; j > 0 && d.ports[j-1].priority < d.ports[j].priority; j-- {
			d.ports[j-1], d.ports[j] = d.ports[j], d.ports[j-1]
		}
	}
}

// reorder moves busier filters earlier within each equal-priority
// group (§3.2), identically to pfdev; the published table survives.
func (d *Device) reorder() {
	for i := 1; i < len(d.ports); i++ {
		for j := i; j > 0 &&
			d.ports[j-1].priority == d.ports[j].priority &&
			d.ports[j-1].matches < d.ports[j].matches; j-- {
			d.ports[j-1], d.ports[j] = d.ports[j], d.ports[j-1]
		}
	}
}

// qlen returns the input-queue depth.
func (port *Port) qlen() int { return len(port.queue) - port.qhead }

func (port *Port) queued() []Packet { return port.queue[port.qhead:] }

func (port *Port) popFront(n int) {
	for i := port.qhead; i < port.qhead+n; i++ {
		port.queue[i] = Packet{}
	}
	port.qhead += n
	port.dev.queuedTotal -= n
	switch {
	case port.qhead == len(port.queue):
		port.queue = port.queue[:0]
		port.qhead = 0
	case port.qhead >= 32 && 2*port.qhead >= len(port.queue):
		kept := copy(port.queue, port.queue[port.qhead:])
		for i := kept; i < len(port.queue); i++ {
			port.queue[i] = Packet{}
		}
		port.queue = port.queue[:kept]
		port.qhead = 0
	}
}

func (port *Port) spanDropCounter(tr *trace.Tracer, reason trace.DropReason) *trace.Counter {
	c := port.spanDropCtrs[reason]
	if c == nil {
		c = tr.Counter(port.dev.name, spanDropName(port.id, reason))
		port.spanDropCtrs[reason] = c
	}
	return c
}

func (port *Port) depthGauge(tr *trace.Tracer) *trace.Gauge {
	if port.qGauge == nil {
		port.qGauge = tr.Gauge(port.dev.name, depthGaugeName(port.id))
	}
	return port.qGauge
}

// enqueue adds a packet to the port queue (device lock held) and wakes
// blocked readers; overflow drops mirror pfdev's accounting.
func (port *Port) enqueue(frame []byte, arrived time.Duration, span uint64) bool {
	d := port.dev
	now := d.clk.Now()
	if port.qlen() >= port.queueLimit {
		port.dropped++
		if d.tr != nil {
			d.tr.Drop(now, d.name, "queue")
			if span != 0 {
				port.spanDropCounter(d.tr, trace.DropPortQueue).Add(1)
			}
		}
		d.tr.SpanDrop(span, now, d.name, trace.DropPortQueue)
		d.tr.SpanPort(span, port.id)
		return false
	}
	pkt := Packet{Data: frame, Drops: port.dropped, arrived: arrived, span: span, qAt: now}
	if port.stamp {
		pkt.Stamp = now
	}
	port.queue = append(port.queue, pkt)
	d.queuedTotal++
	if port.qlen() > port.maxQueued {
		port.maxQueued = port.qlen()
	}
	if d.tr != nil {
		port.depthGauge(d.tr).Set(int64(port.qlen()))
		d.tr.Enqueue(now, d.name, port.id, port.qlen())
	}
	d.tr.SpanMark(span, trace.StageQueue, now)
	d.tr.SpanPort(span, port.id)
	port.readers.Broadcast()
	return true
}

// wait blocks until the port has a queued packet, is closed, or the
// timeout elapses (0 blocks forever, < 0 never blocks).  Device lock
// held on entry and exit.  Timeouts ride the device clock so the wait
// logic itself stays wall-clock free.
func (port *Port) wait(timeout time.Duration) error {
	d := port.dev
	if port.qlen() > 0 {
		return nil
	}
	if port.closed {
		return ErrClosed
	}
	if timeout < 0 {
		return ErrWouldBlock
	}
	var expired bool
	var tm clock.Timer
	if timeout > 0 {
		tm = d.clk.AfterFunc(timeout, func() {
			d.mu.Lock()
			expired = true
			port.readers.Broadcast()
			d.mu.Unlock()
		})
		defer tm.Stop()
	}
	for port.qlen() == 0 && !port.closed && !expired {
		port.readers.Wait()
	}
	switch {
	case port.qlen() > 0:
		return nil
	case port.closed:
		return ErrClosed
	default:
		return ErrTimeout
	}
}

// Read returns the first queued packet, blocking up to timeout
// (0 = forever, negative = non-blocking).
func (port *Port) Read(timeout time.Duration) (Packet, error) {
	d := port.dev
	d.mu.Lock()
	defer d.mu.Unlock()
	if port.closed {
		return Packet{}, ErrClosed
	}
	if err := port.wait(timeout); err != nil {
		return Packet{}, err
	}
	pkt := port.queue[port.qhead]
	port.popFront(1)
	now := d.clk.Now()
	port.qresSum += now - pkt.qAt
	port.qresN++
	port.reads++
	if d.tr != nil {
		port.depthGauge(d.tr).Set(int64(port.qlen()))
		d.tr.Dequeue(now, d.name, port.id, port.qlen(), 1)
		d.tr.Deliver(now, d.name, port.id, now-pkt.arrived)
		d.tr.SpanDelivered(pkt.span, now, d.name, port.id)
	}
	return pkt, nil
}

// ReadBatch returns up to max queued packets (0 = all) in one call,
// blocking like Read when the queue is empty.
func (port *Port) ReadBatch(max int, timeout time.Duration) ([]Packet, error) {
	d := port.dev
	d.mu.Lock()
	defer d.mu.Unlock()
	if port.closed {
		return nil, ErrClosed
	}
	if err := port.wait(timeout); err != nil {
		return nil, err
	}
	n := port.qlen()
	if max > 0 && n > max {
		n = max
	}
	batch := make([]Packet, n)
	copy(batch, port.queued()[:n])
	port.popFront(n)
	now := d.clk.Now()
	for i := range batch {
		port.qresSum += now - batch[i].qAt
	}
	port.qresN += uint64(n)
	port.batches++
	port.batched += uint64(n)
	if d.tr != nil {
		port.depthGauge(d.tr).Set(int64(port.qlen()))
		d.tr.Dequeue(now, d.name, port.id, port.qlen(), n)
		for _, pkt := range batch {
			d.tr.Deliver(now, d.name, port.id, now-pkt.arrived)
			d.tr.SpanDelivered(pkt.span, now, d.name, port.id)
		}
	}
	return batch, nil
}

// Stats reports the port's statistics in the same block the simulated
// device fills; ring fields stay zero (live mode has no mapped rings).
func (port *Port) Stats() pfdev.PortStats {
	port.dev.mu.Lock()
	defer port.dev.mu.Unlock()
	return port.statsLocked()
}

func (port *Port) statsLocked() pfdev.PortStats {
	var res time.Duration
	if port.qresN > 0 {
		res = port.qresSum / time.Duration(port.qresN)
	}
	return pfdev.PortStats{
		ID:           port.id,
		Priority:     port.priority,
		Queued:       port.qlen(),
		MaxQueued:    port.maxQueued,
		Dropped:      port.dropped,
		Matched:      port.matches,
		FilterInstrs: port.instrs,
		Reads:        port.reads,
		BatchReads:   port.batches,
		BatchPackets: port.batched,

		FuelSpent:       port.fuelSpent,
		Quarantines:     port.quarantines,
		QuarantineSkips: port.quarSkips,
		AvgResidency:    res,
	}
}

// Close releases the port; blocked readers fail with ErrClosed and
// still-queued packets die as DropPortClose.
func (port *Port) Close() {
	d := port.dev
	d.mu.Lock()
	defer d.mu.Unlock()
	port.closeLocked()
}

func (port *Port) closeLocked() {
	if port.closed {
		return
	}
	d := port.dev
	port.closed = true
	d.queuedTotal -= port.qlen()
	now := d.clk.Now()
	for _, pkt := range port.queued() {
		d.tr.SpanDrop(pkt.span, now, d.name, trace.DropPortClose)
	}
	port.queue = nil
	port.qhead = 0
	port.readers.Broadcast()
	for i, q := range d.ports {
		if q == port {
			d.ports = append(d.ports[:i], d.ports[i+1:]...)
			break
		}
	}
	d.tableRemovePort(port)
}

// PortStats returns the statistics blocks of every open port in id
// order.
func (d *Device) PortStats() []pfdev.PortStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	stats := make([]pfdev.PortStats, 0, len(d.ports))
	for _, port := range d.ports {
		stats = append(stats, port.statsLocked())
	}
	for i := 1; i < len(stats); i++ {
		for j := i; j > 0 && stats[j-1].ID > stats[j].ID; j-- {
			stats[j-1], stats[j] = stats[j], stats[j-1]
		}
	}
	return stats
}

// GovStats reports the governor's device-wide statistics.
func (d *Device) GovStats() pfdev.GovStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	gs := pfdev.GovStats{
		Shedding:       d.shedding,
		Backlog:        d.backlog(),
		AdmissionSheds: d.admissionSheds,
	}
	for _, port := range d.ports {
		gs.Quarantines += port.quarantines
		gs.QuarantineSkips += port.quarSkips
		gs.FuelSpent += port.fuelSpent
	}
	return gs
}

// Counts is the device-level receive accounting.
type Counts struct {
	Received    uint64 `json:"received"`     // frames handed to Input
	KernelDrops uint64 `json:"kernel_drops"` // no-match / quota / admission
	QueuedNow   int    `json:"queued_now"`   // packets on port queues

	// Queues and QueueRx report the multi-queue demux spread; both are
	// zero/nil on a single-queue device.
	Queues  int      `json:"queues,omitempty"`
	QueueRx []uint64 `json:"queue_rx,omitempty"`
}

// Counts returns the device-level counters.
func (d *Device) Counts() Counts {
	d.mu.Lock()
	defer d.mu.Unlock()
	c := Counts{Received: d.received, KernelDrops: d.kernelDrops, QueuedNow: d.queuedTotal}
	if len(d.rxqs) > 1 {
		c.Queues = len(d.rxqs)
		c.QueueRx = append([]uint64(nil), d.qrx...)
	}
	return c
}

// KernelDrops returns the no-match/quota/admission drop count.
func (d *Device) KernelDrops() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.kernelDrops
}

// Close shuts the device: every port closes (waking its readers),
// further Input calls are discarded, and multi-queue workers stop.
func (d *Device) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	for len(d.ports) > 0 {
		d.ports[0].closeLocked()
	}
	d.mu.Unlock()
	d.stopQueues()
}
