package bench

import (
	"reflect"
	"strconv"
	"strings"
	"testing"
)

// mqSmoke shrinks the sweep for tests: the full queue sweep, a small
// packet count per cell.
func mqSmoke(t *testing.T, workers int) Table {
	t.Helper()
	oldCount, oldWorkers := MQCount, Workers
	MQCount, Workers = 48, workers
	defer func() { MQCount, Workers = oldCount, oldWorkers }()
	return ExpMq()
}

// TestExpMqParallelBitIdentical is the sweep's acceptance gate: the
// table produced by the parallel sweep is cell-for-cell identical to
// the sequential one.
func TestExpMqParallelBitIdentical(t *testing.T) {
	seq := mqSmoke(t, 1)
	par := mqSmoke(t, 4)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("exp-mq diverged between sequential and parallel sweeps:\n%v\nvs\n%v", seq, par)
	}
}

// TestExpMqShape pins the tentpole's acceptance ratio: on the 64-port
// multi-flow workload, per-packet kernel demux cost at 4 queues is at
// most 0.6x the single-queue cost, the cost curve never turns upward
// as queues are added, and the steering really spreads the flows.
func TestExpMqShape(t *testing.T) {
	tab := mqSmoke(t, 0)
	if got := []string{"1", "2", "4", "8"}; len(tab.Rows) != len(got) {
		t.Fatalf("want %d queue counts, got %d rows", len(got), len(tab.Rows))
	}
	msOf := func(cell string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(cell, " mSec"), 64)
		if err != nil {
			t.Fatalf("unparseable cell %q: %v", cell, err)
		}
		return v
	}
	costs := make(map[string]float64) // "queues/mode" -> mSec
	for _, row := range tab.Rows {
		costs[row[0]+"/linear"] = msOf(row[1])
		costs[row[0]+"/table"] = msOf(row[3])
		busy, _ := strconv.Atoi(row[7])
		queues, _ := strconv.Atoi(row[0])
		wantBusy := queues
		if wantBusy > 3 {
			wantBusy = 3 // hash spread, not perfection, is the claim
		}
		if busy < wantBusy {
			t.Errorf("%s queues: only %d busy, want >= %d — steering is not spreading",
				row[0], busy, wantBusy)
		}
	}
	// The headline acceptance ratio: 4 queues at <= 0.6x of 1 queue.
	if r := costs["4/linear"] / costs["1/linear"]; r > 0.6 {
		t.Errorf("linear demux at 4 queues = %.2fx the single-queue cost, want <= 0.6x", r)
	}
	// Adding queues must never make either evaluator slower.
	for _, mode := range []string{"linear", "table"} {
		prev := costs["1/"+mode]
		for _, q := range []string{"2", "4", "8"} {
			cur := costs[q+"/"+mode]
			if cur > prev*1.05 {
				t.Errorf("%s: cost rose from %.2f to %.2f mSec going to %s queues",
					mode, prev, cur, q)
			}
			prev = cur
		}
	}
}
