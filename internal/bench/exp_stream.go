package bench

import (
	"fmt"
	"time"

	"repro/internal/ethersim"
	"repro/internal/inet"
	"repro/internal/pup"
	"repro/internal/rterm"
	"repro/internal/sim"
)

// runTCPBulk transfers size bytes through the kernel TCP stack and
// returns the receiver-side rate in KB/s.
func runTCPBulk(link ethersim.LinkType, mss, size int) float64 {
	r := newRig(rigOptions{link: link, inet: true})
	cfg := inet.DefaultTCPConfig()
	cfg.MSS = mss

	var out float64
	r.s.Spawn(r.hB, "server", func(p *sim.Proc) {
		l, err := r.stackB.TCPListen(p, 80, cfg)
		if err != nil {
			return
		}
		c, err := l.Accept(p, 5*time.Second)
		if err != nil {
			return
		}
		c.SetTimeout(5 * time.Second)
		t0 := p.Now()
		got := 0
		for got < size {
			chunk, err := c.Read(p, 0)
			if err != nil {
				return
			}
			got += len(chunk)
		}
		out = rate(got, p.Now()-t0)
	})
	r.s.Spawn(r.hA, "client", func(p *sim.Proc) {
		p.Sleep(2 * time.Millisecond)
		c, err := r.stackA.TCPDial(p, r.stackB.Addr(), 80, 2000, cfg)
		if err != nil {
			return
		}
		data := make([]byte, 16*1024)
		for sent := 0; sent < size; sent += len(data) {
			if c.Write(p, data) != nil {
				return
			}
		}
		c.Close(p)
	})
	r.s.Run(2 * time.Minute)
	return out
}

// runBSPBulk transfers size bytes through the user-level BSP
// implementation and returns the receiver-side rate in KB/s.
func runBSPBulk(link ethersim.LinkType, segSize, size int) float64 {
	r := newRig(rigOptions{link: link})
	cfg := pup.DefaultBSPConfig()
	cfg.SegSize = segSize

	srvAddr := pup.PortAddr{Net: 1, Host: 2, Socket: 0x200}
	cliAddr := pup.PortAddr{Net: 1, Host: 1, Socket: 0x100}
	var out float64

	r.s.Spawn(r.hB, "recv", func(p *sim.Proc) {
		sock, err := pup.Open(p, r.devB, srvAddr, 10)
		if err != nil {
			return
		}
		sock.Batch = true
		rcv := pup.NewBSPReceiver(sock, cfg)
		got := 0
		var t0 time.Duration
		for {
			seg, err := rcv.Receive(p, time.Second)
			if err != nil {
				return
			}
			if got == 0 {
				t0 = p.Now()
			}
			got += len(seg)
			if got >= size {
				out = rate(got, p.Now()-t0)
				return
			}
		}
	})
	r.s.Spawn(r.hA, "send", func(p *sim.Proc) {
		sock, err := pup.Open(p, r.devA, cliAddr, 10)
		if err != nil {
			return
		}
		sock.Batch = true
		p.Sleep(5 * time.Millisecond)
		snd := pup.NewBSPSender(sock, srvAddr, cfg)
		data := make([]byte, 16*1024)
		for sent := 0; sent < size+16*1024; sent += len(data) {
			if snd.Send(p, data) != nil {
				return
			}
		}
	})
	r.s.Run(2 * time.Minute)
	return out
}

// Table66Stream reproduces table 6-6: BSP (user level, 568-byte
// packets) against kernel TCP (1078-byte packets), with the
// packet-size correction the paper applies.
func Table66Stream() Table {
	const size = 192 * 1024
	t := Table{
		ID:      "t6-6",
		Title:   "Relative performance of stream protocol implementations",
		Columns: []string{"Implementation", "Rate"},
		Notes: []string{
			"paper: packet filter BSP 38, Unix kernel TCP 222 KB/s (~6x); TCP forced to small packets is cut in half, leaving ~3x attributable to user-level implementation",
		},
	}
	bsp := runBSPBulk(ethersim.Ether10Mb, 0, size) // default 546-byte segments
	tcp := runTCPBulk(ethersim.Ether10Mb, 1024, size)
	tcpSmall := runTCPBulk(ethersim.Ether10Mb, 512, size)
	t.Rows = append(t.Rows,
		[]string{"Packet filter BSP", fmt.Sprintf("%.0f Kbytes/sec", bsp)},
		[]string{"Unix kernel TCP", fmt.Sprintf("%.0f Kbytes/sec", tcp)},
		[]string{"Unix kernel TCP (forced 512-byte segments)", fmt.Sprintf("%.0f Kbytes/sec", tcpSmall)})
	return t
}

// displayRates for table 6-7: an MC68010 workstation display and a
// 9600-baud terminal.
const (
	workstationCPS = 3350
	terminalCPS    = 960
)

// runTelnet measures a remote-terminal character stream via package
// rterm: the server prints characters, the client displays them at the
// sink's rate.  proto is "bsp" or "tcp".  Returns chars/sec delivered.
func runTelnet(link ethersim.LinkType, proto string, displayCPS int) float64 {
	const chars = 4000
	r := newRig(rigOptions{link: link, inet: proto == "tcp"})
	d := &rterm.Display{CPS: displayCPS}
	var out float64

	if proto == "tcp" {
		cfg := inet.DefaultTCPConfig()
		cfg.MSS = 256 // character traffic; segments stay small anyway
		r.s.Spawn(r.hB, "user", func(p *sim.Proc) {
			l, _ := r.stackB.TCPListen(p, 23, cfg)
			c, err := l.Accept(p, 5*time.Second)
			if err != nil {
				return
			}
			out = rterm.View(p, &rterm.TCPStream{Conn: c}, d, chars, 5*time.Second)
		})
		r.s.Spawn(r.hA, "server", func(p *sim.Proc) {
			p.Sleep(2 * time.Millisecond)
			c, err := r.stackA.TCPDial(p, r.stackB.Addr(), 23, 2000, cfg)
			if err != nil {
				return
			}
			rterm.Serve(p, &rterm.TCPStream{Conn: c}, chars+256, rterm.DefaultServerConfig())
			c.Close(p)
		})
	} else {
		cfg := pup.DefaultBSPConfig()
		cfg.SegSize = 64
		srvAddr := pup.PortAddr{Net: 1, Host: 2, Socket: 0x200}
		r.s.Spawn(r.hB, "user", func(p *sim.Proc) {
			sock, _ := pup.Open(p, r.devB, srvAddr, 10)
			out = rterm.View(p, rterm.NewBSPUserStream(sock, cfg), d, chars, 5*time.Second)
		})
		r.s.Spawn(r.hA, "server", func(p *sim.Proc) {
			sock, _ := pup.Open(p, r.devA, pup.PortAddr{Net: 1, Host: 1, Socket: 0x100}, 10)
			p.Sleep(5 * time.Millisecond)
			rterm.Serve(p, rterm.NewBSPServerStream(sock, srvAddr, cfg),
				chars+64, rterm.DefaultServerConfig())
		})
	}
	r.s.Run(2 * time.Minute)
	return out
}

// Table67Telnet reproduces table 6-7: Telnet output rates for BSP and
// TCP on both network speeds and both display sinks.
func Table67Telnet() Table {
	t := Table{
		ID:      "t6-7",
		Title:   "Relative performance of Telnet",
		Columns: []string{"Telnet protocol", "Network", "Display", "Output rate (chars/sec)"},
		Notes: []string{
			"paper: 10Mb/workstation BSP 1635 vs TCP 1757; 3Mb/terminal BSP 878 vs TCP 933",
			"shape: output rates are display-limited; BSP and TCP differ only slightly",
		},
	}
	type cfg struct {
		link ethersim.LinkType
		cps  int
		name string
	}
	for _, c := range []cfg{
		{ethersim.Ether10Mb, workstationCPS, "workstation"},
		{ethersim.Ether3Mb, terminalCPS, "9600-baud terminal"},
	} {
		for _, proto := range []string{"bsp", "tcp"} {
			got := runTelnet(c.link, proto, c.cps)
			name := "Pup/BSP"
			if proto == "tcp" {
				name = "IP/TCP"
			}
			t.Rows = append(t.Rows, []string{
				name, c.link.String(), c.name, fmt.Sprintf("%.0f", got),
			})
		}
	}
	return t
}
