package bench

import (
	"reflect"
	"strconv"
	"strings"
	"testing"
)

// stormSmoke shrinks the sweep for tests: full hostile counts, small
// victim packet count per cell.
func stormSmoke(t *testing.T, workers int) Table {
	t.Helper()
	oldCount, oldWorkers := StormCount, Workers
	StormCount, Workers = 12, workers
	defer func() { StormCount, Workers = oldCount, oldWorkers }()
	return ExpStorm()
}

// TestExpStormParallelBitIdentical is the sweep's acceptance gate: the
// table produced by the parallel sweep is cell-for-cell identical to
// the sequential one.
func TestExpStormParallelBitIdentical(t *testing.T) {
	seq := stormSmoke(t, 1)
	par := stormSmoke(t, 4)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("exp-storm diverged between sequential and parallel sweeps:\n%v\nvs\n%v", seq, par)
	}
}

// TestExpStormGracefulDegradation pins the claim the experiment exists
// to make: under a saturating adversarial filter population the
// governed victim keeps >= 5x the ungoverned goodput, while with no
// hostile ports the governor costs nothing.
func TestExpStormGracefulDegradation(t *testing.T) {
	tab := stormSmoke(t, 0)
	if len(tab.Rows) != len(stormHostiles) {
		t.Fatalf("want %d rows, got %d", len(stormHostiles), len(tab.Rows))
	}
	pktSec := func(cell string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(cell, " pkt/sec"), 64)
		if err != nil {
			t.Fatalf("unparseable cell %q: %v", cell, err)
		}
		return v
	}
	for _, row := range tab.Rows {
		hostile, _ := strconv.Atoi(row[0])
		off, on := pktSec(row[1]), pktSec(row[2])
		quarantines, _ := strconv.Atoi(row[6])
		switch {
		case hostile == 0:
			// Clean path: the governor must be invisible.
			if off <= 0 || on != off {
				t.Errorf("0 hostile ports: goodput off=%v on=%v, want identical", off, on)
			}
			if quarantines != 0 {
				t.Errorf("0 hostile ports: %d quarantines, want none", quarantines)
			}
		case hostile >= 8:
			// Saturation: governance must buy at least 5x.
			if on < 5*off {
				t.Errorf("%d hostile ports: governed goodput %.0f < 5x ungoverned %.0f",
					hostile, on, off)
			}
			fallthrough
		default:
			if quarantines == 0 {
				t.Errorf("%d hostile ports: governor never quarantined", hostile)
			}
			if on <= off {
				t.Errorf("%d hostile ports: governed goodput %.0f not above ungoverned %.0f",
					hostile, on, off)
			}
			// Fairness: every hostile port is billed a comparable share.
			parts := strings.SplitN(row[7], "/", 2)
			lo, _ := strconv.Atoi(parts[0])
			hi, _ := strconv.Atoi(parts[1])
			if lo <= 0 || hi > 4*lo {
				t.Errorf("%d hostile ports: fuel share lo=%d hi=%d, want within 4x", hostile, lo, hi)
			}
		}
	}
}
