package bench

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// parseMS extracts the millisecond value from a "12.34 mSec" cell.
func parseMS(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.Fields(cell)[0], 64)
	if err != nil {
		t.Fatalf("bad cell %q: %v", cell, err)
	}
	return v
}

// parseRate extracts the KB/s value from a "123 Kbytes/sec" cell.
func parseRate(t *testing.T, cell string) float64 { return parseMS(t, cell) }

// These tests assert the paper's *shapes*: who wins, by roughly what
// factor, and where crossovers fall.  They are the reproduction's
// regression suite — if a cost-model or protocol change breaks a
// paper claim, one of these fails.

func TestShapeTable62VMTPSmall(t *testing.T) {
	tb := Table62VMTPSmall()
	pf := parseMS(t, tb.Rows[0][1])
	kern := parseMS(t, tb.Rows[1][1])
	v := parseMS(t, tb.Rows[2][1])
	ratio := pf / kern
	if ratio < 1.5 || ratio > 3.5 {
		t.Errorf("pf/kernel RTT ratio = %.2f, paper ~2", ratio)
	}
	// "the Unix kernel implementation of VMTP is quite close to the
	// V kernel implementation"
	if v > kern*1.3 || kern > v*1.8 {
		t.Errorf("kernel %.2f vs V kernel %.2f not close", kern, v)
	}
}

func TestShapeTable63VMTPBulk(t *testing.T) {
	tb := Table63VMTPBulk()
	pf := parseRate(t, tb.Rows[0][1])
	kern := parseRate(t, tb.Rows[1][1])
	tcp := parseRate(t, tb.Rows[3][1])
	ratio := kern / pf
	if ratio < 1.7 || ratio > 4.5 {
		t.Errorf("kernel/pf bulk ratio = %.2f, paper ~3", ratio)
	}
	// TCP checksums all data: it lands below kernel VMTP but far
	// above user-level VMTP.
	if tcp <= pf {
		t.Errorf("TCP %.0f not above user-level VMTP %.0f", tcp, pf)
	}
	if tcp > kern*1.3 {
		t.Errorf("TCP %.0f unexpectedly above kernel VMTP %.0f", tcp, kern)
	}
}

func TestShapeTable64Batching(t *testing.T) {
	tb := Table64Batching()
	with := parseRate(t, tb.Rows[0][1])
	without := parseRate(t, tb.Rows[1][1])
	if with <= without {
		t.Errorf("batching did not help: %.0f vs %.0f KB/s", with, without)
	}
}

func TestShapeTable65UserDemux(t *testing.T) {
	tb := Table65UserDemux()
	kRTT, kRate := parseMS(t, tb.Rows[0][1]), parseRate(t, tb.Rows[0][2])
	uRTT, uRate := parseMS(t, tb.Rows[1][1]), parseRate(t, tb.Rows[1][2])
	// "user-level demultiplexing has a small cost (20% greater
	// latency) for short messages, but decreases bulk throughput by
	// more than a factor of four" — we accept a factor of >=1.7.
	if uRTT <= kRTT || uRTT > kRTT*1.6 {
		t.Errorf("RTT: user %.2f vs kernel %.2f, want slightly larger", uRTT, kRTT)
	}
	if kRate < uRate*1.7 {
		t.Errorf("bulk: kernel %.0f vs user %.0f, want large collapse", kRate, uRate)
	}
}

func TestShapeTable66Stream(t *testing.T) {
	tb := Table66Stream()
	bsp := parseRate(t, tb.Rows[0][1])
	tcp := parseRate(t, tb.Rows[1][1])
	tcpSmall := parseRate(t, tb.Rows[2][1])
	if tcp < bsp*2.5 {
		t.Errorf("TCP %.0f not well above BSP %.0f (paper ~6x)", tcp, bsp)
	}
	// "if TCP is forced to use the smaller packet size, its
	// performance is cut in half"
	if tcpSmall > tcp*0.75 || tcpSmall < tcp*0.3 {
		t.Errorf("small-packet TCP %.0f vs TCP %.0f, want roughly half", tcpSmall, tcp)
	}
	// After the correction, the remaining gap is the user-level
	// cost: small-packet TCP still beats BSP.
	if tcpSmall < bsp {
		t.Errorf("small-packet TCP %.0f below BSP %.0f", tcpSmall, bsp)
	}
}

func TestShapeTable67Telnet(t *testing.T) {
	tb := Table67Telnet()
	get := func(i int) float64 { return parseMS(t, tb.Rows[i][3]) }
	bsp10, tcp10 := get(0), get(1)
	bsp3, tcp3 := get(2), get(3)
	// Fast display: both land well below the display maximum but in
	// the same league as each other.
	if bsp10 > float64(workstationCPS) || tcp10 > float64(workstationCPS) {
		t.Errorf("10Mb rates exceed the display: %.0f/%.0f", bsp10, tcp10)
	}
	if bsp10 < tcp10*0.5 {
		t.Errorf("BSP %.0f much slower than TCP %.0f on fast display", bsp10, tcp10)
	}
	// Terminal: "These output rates are clearly limited by the
	// display terminal" — both near 960 cps, nearly equal.
	for _, v := range []float64{bsp3, tcp3} {
		if v < float64(terminalCPS)*0.85 || v > float64(terminalCPS) {
			t.Errorf("terminal rate %.0f not display-limited (~%d)", v, terminalCPS)
		}
	}
}

func TestShapeTable68And69(t *testing.T) {
	t8 := Table68RecvCost()
	for i, size := range []string{"128", "1500"} {
		k := parseMS(t, t8.Rows[i][1])
		u := parseMS(t, t8.Rows[i][2])
		if u < k*1.8 {
			t.Errorf("%sB: user %.2f not well above kernel %.2f", size, u, k)
		}
	}
	// Larger packets cost more (copying ~1 ms/KB).
	if a, b := parseMS(t, t8.Rows[0][1]), parseMS(t, t8.Rows[1][1]); b <= a {
		t.Errorf("1500B kernel cost %.2f not above 128B %.2f", b, a)
	}

	t9 := Table69RecvBatch()
	// Batching reduces the kernel-demux cost at both sizes.
	for i := range t9.Rows {
		if b, nb := parseMS(t, t9.Rows[i][1]), parseMS(t, t8.Rows[i][1]); b >= nb {
			t.Errorf("row %d: batching did not reduce kernel cost (%.2f vs %.2f)", i, b, nb)
		}
	}
}

func TestShapeTable610Linear(t *testing.T) {
	tb := Table610FilterLen()
	var xs, ys []float64
	for _, row := range tb.Rows {
		n, _ := strconv.Atoi(row[0])
		xs = append(xs, float64(n))
		ys = append(ys, parseMS(t, row[1]))
	}
	// Monotone increasing.
	for i := 1; i < len(ys); i++ {
		if ys[i] < ys[i-1] {
			t.Errorf("cost not monotone in filter length: %v", ys)
		}
	}
	// Slope near the FilterInstr constant (28 µs): paper's is
	// (2.5-1.9)/21 = 28.6 µs.
	_, slope := leastSquares(xs, ys)
	if slope < 0.015 || slope > 0.045 {
		t.Errorf("slope = %.4f mSec/instr, want ~0.028", slope)
	}
}

func TestShapeSec61(t *testing.T) {
	tb := Sec61Profile()
	pf := parseMS(t, tb.Rows[0][1])
	ipFull := parseMS(t, tb.Rows[3][1])
	ipOnly := parseMS(t, tb.Rows[4][1])
	// "the kernel-resident IP layer is about three times faster than
	// the packet filter at processing an average packet" (IP alone
	// vs pf), while the full IP+transport path costs more than pf.
	if pf < ipOnly*1.5 {
		t.Errorf("pf %.2f not well above bare IP %.2f", pf, ipOnly)
	}
	if pf > ipFull {
		t.Errorf("pf %.2f above full kernel transport %.2f", pf, ipFull)
	}
	// Predicate evaluation a large minority share (paper 41%).
	share := parseMS(t, strings.TrimSuffix(tb.Rows[1][1], "%")+" x")
	if share < 20 || share > 75 {
		t.Errorf("filter share = %.0f%%, paper 41%%", share)
	}
}

func TestShapeSec61Fit(t *testing.T) {
	tb := Sec61LinearFit()
	var xs, ys []float64
	for _, row := range tb.Rows {
		x, _ := strconv.ParseFloat(row[1], 64)
		y, _ := strconv.ParseFloat(row[2], 64)
		xs = append(xs, x)
		ys = append(ys, y)
	}
	a, b := leastSquares(xs, ys)
	if a < 0.3 || a > 1.5 {
		t.Errorf("intercept %.2f, paper 0.8", a)
	}
	if b < 0.05 || b > 0.25 {
		t.Errorf("slope %.3f, paper 0.122", b)
	}
}

func TestShapeSec65BreakEven(t *testing.T) {
	tb := Sec65BreakEven()
	demux := parseMS(t, tb.Rows[0][1])
	// With few filters, kernel filtering beats user demux; with
	// many plain filters it crosses over (paper: ~20 processes).
	firstPlain := parseMS(t, tb.Rows[0][2])
	lastPlain := parseMS(t, tb.Rows[len(tb.Rows)-1][2])
	if firstPlain >= demux {
		t.Errorf("1 filter (%.2f) already above demux (%.2f)", firstPlain, demux)
	}
	if lastPlain <= demux {
		t.Errorf("30 plain filters (%.2f) still below demux (%.2f): no crossover", lastPlain, demux)
	}
	// Short-circuit filters push the break-even further out: at
	// every row they cost no more than plain ones.
	for _, row := range tb.Rows[1:] {
		if sc, plain := parseMS(t, row[3]), parseMS(t, row[2]); sc > plain {
			t.Errorf("short-circuit (%.2f) above plain (%.2f) at %s filters", sc, plain, row[0])
		}
	}
}

func TestShapeFig21(t *testing.T) {
	tb := Fig21DemuxCounts()
	kSwitch := parseMS(t, tb.Rows[0][1])
	uSwitch := parseMS(t, tb.Rows[1][1])
	kSys := parseMS(t, tb.Rows[0][2])
	uSys := parseMS(t, tb.Rows[1][2])
	kCopy := parseMS(t, tb.Rows[0][3])
	uCopy := parseMS(t, tb.Rows[1][3])
	if uSwitch < kSwitch+0.9 {
		t.Errorf("demux switches %.1f vs kernel %.1f: want >=1 more per packet", uSwitch, kSwitch)
	}
	if uSys < kSys+1.9 {
		t.Errorf("demux syscalls %.1f vs kernel %.1f: want >=2 more", uSys, kSys)
	}
	if uCopy < kCopy+1.9 {
		t.Errorf("demux copies %.1f vs kernel %.1f: want 2 more", uCopy, kCopy)
	}
}

func TestShapeFig23(t *testing.T) {
	tb := Fig23DomainCrossings()
	user := parseMS(t, tb.Rows[0][1])
	kern := parseMS(t, tb.Rows[1][1])
	if kern*4 > user {
		t.Errorf("kernel crossings %.0f not far below user %.0f", kern, user)
	}
}

func TestShapeFig34(t *testing.T) {
	tb := Fig34Batching()
	noBatch := parseMS(t, tb.Rows[0][1])
	batch := parseMS(t, tb.Rows[1][1])
	if batch*2 > noBatch {
		t.Errorf("batched syscalls/packet %.2f not well below %.2f", batch, noBatch)
	}
}

func TestShapeTable61(t *testing.T) {
	tb := Table61Send()
	for i, size := range []string{"128", "1500"} {
		pf := parseMS(t, tb.Rows[i][1])
		udp := parseMS(t, tb.Rows[i][2])
		if pf >= udp {
			t.Errorf("%sB: pf send %.2f not below UDP %.2f", size, pf, udp)
		}
	}
	if small, big := parseMS(t, tb.Rows[0][1]), parseMS(t, tb.Rows[1][1]); big <= small {
		t.Errorf("send cost not growing with size: %.2f vs %.2f", small, big)
	}
}

func TestShapeAblations(t *testing.T) {
	ev := AblationEvalModes()
	checked := parseMS(t, ev.Rows[0][1])
	table := parseMS(t, ev.Rows[3][1])
	if table >= checked {
		t.Errorf("decision table (%.2f) not below checked interpretation (%.2f)", table, checked)
	}
	for i := 1; i < 3; i++ {
		if v := parseMS(t, ev.Rows[i][1]); v > checked*1.02 {
			t.Errorf("%s (%.2f) above checked (%.2f)", ev.Rows[i][0], v, checked)
		}
	}

	sc := AblationShortCircuit()
	if sc.Rows[1][1] != "2" {
		t.Errorf("short-circuit miss = %s instrs, want 2", sc.Rows[1][1])
	}
	plainMiss, _ := strconv.Atoi(sc.Rows[0][1])
	if plainMiss <= 2 {
		t.Errorf("plain miss = %d instrs, want the whole program", plainMiss)
	}

	pr := AblationPriorityOrder()
	uniform := parseMS(t, pr.Rows[0][1])
	prio := parseMS(t, pr.Rows[1][1])
	reord := parseMS(t, pr.Rows[2][1])
	if prio >= uniform || reord >= uniform {
		t.Errorf("ordering did not reduce filters applied: %.1f / %.1f vs %.1f",
			prio, reord, uniform)
	}
}

func TestShapeNITAndWriteBatch(t *testing.T) {
	nit := AblationNIT()
	pf := parseMS(t, nit.Rows[0][1])
	tap := parseMS(t, nit.Rows[1][1])
	if tap <= pf {
		t.Errorf("NIT-style tap (%.2f) not above packet filter (%.2f)", tap, pf)
	}

	wb := AblationWriteBatch()
	plain := parseMS(t, wb.Rows[0][1])
	batched := parseMS(t, wb.Rows[1][1])
	if batched >= plain {
		t.Errorf("write batching did not help: %.2f vs %.2f", batched, plain)
	}
	if wb.Rows[1][2] != "1" || wb.Rows[1][3] != "1" {
		t.Errorf("batched write used %s syscalls / %s copies", wb.Rows[1][2], wb.Rows[1][3])
	}
}

func TestShapeGateway(t *testing.T) {
	tb := AblationGateway()
	same := parseMS(t, tb.Rows[0][1])
	cross := parseMS(t, tb.Rows[1][1])
	if cross <= same {
		t.Errorf("gateway path (%.2f) not above direct path (%.2f)", cross, same)
	}
	if cross > 4*same {
		t.Errorf("gateway overhead implausibly high: %.2f vs %.2f", cross, same)
	}
}

func TestMarkdownRendering(t *testing.T) {
	tb := Table{ID: "x", Title: "demo", Columns: []string{"a", "b"},
		Rows: [][]string{{"1", "2"}}, Notes: []string{"n"}}
	md := tb.Markdown()
	for _, want := range []string{"### [x] demo", "| a | b |", "| 1 | 2 |", "> n"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestTableString(t *testing.T) {
	tb := Table{
		ID: "x", Title: "demo",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}},
		Notes:   []string{"n"},
	}
	s := tb.String()
	for _, want := range []string{"[x] demo", "a", "bb", "note: n"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
	if kbps(1024, time.Second) != "1 Kbytes/sec" {
		t.Errorf("kbps formatting: %s", kbps(1024, time.Second))
	}
	if kbps(1, 0) != "inf" {
		t.Error("kbps zero-elapsed")
	}
}

func TestAllRuns(t *testing.T) {
	tables := All()
	if len(tables) < 15 {
		t.Fatalf("only %d experiments", len(tables))
	}
	seen := map[string]bool{}
	for _, tb := range tables {
		if tb.ID == "" || len(tb.Rows) == 0 {
			t.Errorf("experiment %q has no rows", tb.Title)
		}
		if seen[tb.ID] {
			t.Errorf("duplicate experiment id %s", tb.ID)
		}
		seen[tb.ID] = true
	}
}

// The Experiments registry declares each table's id statically so
// callers can select one experiment without running the rest; a drift
// between a declared id and the id of the table the function actually
// builds would silently break that selection.
func TestExperimentIDsMatchTables(t *testing.T) {
	seen := make(map[string]bool)
	for _, e := range Experiments() {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		if got := e.Run().ID; got != e.ID {
			t.Errorf("experiment registered as %q builds table %q", e.ID, got)
		}
	}
}
