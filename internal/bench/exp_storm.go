package bench

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/ethersim"
	"repro/internal/filter"
	"repro/internal/parsim"
	"repro/internal/pfdev"
	"repro/internal/pup"
	"repro/internal/sim"
	"repro/internal/workload"
)

// StormCount is the victim packet count per exp-storm cell;
// cmd/pfbench -storm-n overrides it so CI can smoke-test cheaply.
var StormCount = 24

// stormHostiles is the sweep of hostile burn-port counts.  Each one
// binds the worst legal filter (MaxProgramLen instructions, always
// reject), so every frame on the wire — hit or miss — charges the
// kernel the full population's burn before the victim's cheap filter
// is even consulted.
var stormHostiles = []int{0, 2, 8}

// stormResult is one cell of the sweep.
type stormResult struct {
	received    int
	elapsed     time.Duration
	residency   time.Duration // victim queue residency (tail-latency proxy)
	quarantines uint64
	sheds       uint64
	fuelLo      uint64 // least / most fuel charged to a hostile port:
	fuelHi      uint64 // equal shares mean the governor is fair
}

// goodput is the victim's delivered frames per virtual second.
func (r stormResult) goodput() float64 {
	if r.elapsed <= 0 {
		return 0
	}
	return float64(r.received) / (float64(r.elapsed) / float64(time.Second))
}

// measureStorm delivers StormCount frames to a victim socket filter
// while nHostile max-length burn filters tax the interface and an
// equal stream of churn frames (matching nobody) doubles the scan
// load.  With the governor off the burn is paid on every frame; with
// it on, the hostile ports are quarantined and the victim's path
// clears.
func measureStorm(nHostile int, gov bool) stormResult {
	opts := pfdev.Options{}
	if gov {
		opts.Gov = pfdev.DefaultGovConfig()
	}
	r := newRig(rigOptions{link: ethersim.Ether3Mb, pf: opts})
	count := StormCount
	const victimSocket = 0x50
	r.nicB.QueueLimit = 8 * count

	var res stormResult
	var t0, t1 time.Duration
	hostiles := make([]*pfdev.Port, 0, nHostile)

	r.s.Spawn(r.hB, "victim", func(p *sim.Proc) {
		for i := 0; i < nHostile; i++ {
			hp := r.devB.Open(p)
			hp.SetFilter(p, filter.Filter{Priority: 20, Program: workload.BurnProgram()})
			hostiles = append(hostiles, hp)
		}
		port := r.devB.Open(p)
		port.SetFilter(p, pup.SocketFilter(ethersim.Ether3Mb, 10, victimSocket))
		port.SetQueueLimit(p, 4*count)
		// The worst ungoverned cell pays nHostile full burns per frame
		// on a saturated kernel; the timeout must outlive that.
		port.SetTimeout(p, 5*time.Second)
		for res.received < count {
			batch, err := port.ReadBatch(p)
			if err != nil {
				break
			}
			res.received += len(batch)
			t1 = p.Now()
		}
		vs := port.Stats()
		res.residency = vs.AvgResidency
		res.fuelLo, res.fuelHi = ^uint64(0), 0
		for _, hp := range hostiles {
			hs := hp.Stats()
			res.quarantines += hs.Quarantines
			if hs.FuelSpent < res.fuelLo {
				res.fuelLo = hs.FuelSpent
			}
			if hs.FuelSpent > res.fuelHi {
				res.fuelHi = hs.FuelSpent
			}
		}
		if len(hostiles) == 0 {
			res.fuelLo = 0
		}
		res.sheds = r.devB.GovStats(p).AdmissionSheds
	})
	r.s.Spawn(r.hA, "storm", func(p *sim.Proc) {
		p.Sleep(time.Duration(20+5*nHostile) * time.Millisecond)
		t0 = p.Now()
		r.hB.ResetAccounting()
		hit := pupFrame(1, victimSocket)
		for i := 0; i < count; i++ {
			r.nicA.Transmit(hit)
			p.Sleep(350 * time.Microsecond)
			// The churn half of the storm: a frame matching no filter,
			// so the whole scan is wasted work the governor must bill.
			r.nicA.Transmit(pupFrame(1, uint32(0x4000+i)))
			p.Sleep(350 * time.Microsecond)
		}
	})
	r.s.Run(120 * time.Second)

	if res.received > 0 {
		res.elapsed = t1 - t0
	}
	return res
}

// ExpStorm measures graceful degradation under adversarial load: a
// victim port's goodput and queue residency as hostile max-length burn
// filters join the interface, with the resource governor off and on.
// Ungoverned, the victim collapses with the hostile population;
// governed, quarantine caps each hostile port's burn at its token
// burst and the victim's service rate survives.
func ExpStorm() Table {
	t := Table{
		ID:    "exp-storm",
		Title: "Victim goodput under hostile burn filters, governor off vs on",
		Columns: []string{"Hostile ports", "off", "on", "ratio",
			"resid off", "resid on", "quarantines", "fuel lo/hi"},
		Notes: []string{
			"each hostile port binds the worst legal filter: 128 instructions, always reject, so every frame pays the full population's burn before the victim's filter runs",
			"half the storm is churn traffic matching no filter — pure scan load the governor must bill to the ports that caused it",
			"shape: ungoverned goodput falls with the hostile population; governed goodput stays near the clean-path rate once quarantine caps each offender at its burst",
			"fairness: fuel lo/hi are the least and most instruction units billed to any hostile port — near-equal shares mean no offender is favored",
			fmt.Sprintf("%d victim packets per cell; every cell is a deterministic universe, swept across the parsim pool", StormCount),
		},
	}
	type cellID struct {
		hostile int
		gov     bool
	}
	var cells []cellID
	for _, h := range stormHostiles {
		cells = append(cells, cellID{h, false}, cellID{h, true})
	}
	// Heaviest first: the ungoverned 8-hostile universe dominates the
	// sweep's wall clock.  The permutation is deterministic and results
	// are written back to sweep order, so the table is bit-identical at
	// any worker count.
	order := make([]int, len(cells))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ca, cb := cells[order[a]], cells[order[b]]
		if ca.gov != cb.gov {
			return !ca.gov
		}
		return ca.hostile > cb.hostile
	})
	permuted := parsim.Map(len(order), sweepWorkers(), func(i int) stormResult {
		return measureStorm(cells[order[i]].hostile, cells[order[i]].gov)
	})
	results := make([]stormResult, len(cells))
	for i, r := range permuted {
		results[order[i]] = r
	}
	for hi, h := range stormHostiles {
		off, on := results[2*hi], results[2*hi+1]
		ratio := "n/a"
		if off.goodput() > 0 {
			ratio = fmt.Sprintf("%.1fx", on.goodput()/off.goodput())
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", h),
			fmt.Sprintf("%.0f pkt/sec", off.goodput()),
			fmt.Sprintf("%.0f pkt/sec", on.goodput()),
			ratio,
			ms(off.residency), ms(on.residency),
			fmt.Sprintf("%d", on.quarantines),
			fmt.Sprintf("%d/%d", on.fuelLo, on.fuelHi),
		})
	}
	return t
}
