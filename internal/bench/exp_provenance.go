package bench

import (
	"bytes"
	"fmt"
	"strings"
	"time"

	"repro/internal/ethersim"
	"repro/internal/faults"
	"repro/internal/parsim"
	"repro/internal/pup"
	"repro/internal/sim"
	"repro/internal/trace"
)

// The provenance experiment: with span tracking at sampling 1, every
// frame of a checksummed BSP transfer is followed from its origin
// write through wire, NIC, demultiplexer, filter evaluation and port
// queue to the user read that retires it.  The table reports the mean
// residence in each stage, the p99 of the whole path, and the typed
// drop taxonomy — the same numbers the flight recorder dumps when the
// SLO watchdog trips, here regenerated per fault rate.

// provCell is one fault-rate universe's provenance summary.
type provCell struct {
	created, delivered uint64
	stages             [len(provStages)]time.Duration
	p99                time.Duration
	taxonomy           string
	ok                 bool
}

// provStages names the per-stage histograms in path order.
var provStages = [...]string{
	"span.stage.wire",
	"span.stage.nic",
	"span.stage.filter",
	"span.stage.pf",
	"span.stage.queue",
}

// usec formats a duration in microseconds.
func usec(d time.Duration) string {
	return fmt.Sprintf("%.1f uSec", float64(d)/float64(time.Microsecond))
}

// taxonomyString renders the non-zero drop counts, reason=count,
// in enum order.
func taxonomyString(sp *trace.Spans) string {
	var parts []string
	for i := 0; i < int(trace.NumDropReasons); i++ {
		if n := sp.Drops[i]; n > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", trace.DropReason(i), n))
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, " ")
}

// provenanceRun drives one checksummed BSP transfer over a faulted
// wire with full span tracking and summarizes the provenance stream.
func provenanceRun(rate float64) provCell {
	r := newRig(rigOptions{link: ethersim.Ether10Mb})
	tr := trace.New()
	sp := tr.EnableSpans(trace.SpanConfig{Ring: 1 << 14})
	r.s.SetTracer(tr)
	eng := faults.New(r.s, chaosSeed, faults.Plan{Name: "prov", Wire: faults.Uniform(rate)})
	eng.AttachWire(r.net)

	data := bytes.Repeat([]byte{0x42}, chaosBytes)
	dst := pup.PortAddr{Net: 1, Host: 2, Socket: 0x500}
	var c provCell

	r.s.Spawn(r.hB, "bsp-recv", func(p *sim.Proc) {
		sock, err := pup.Open(p, r.devB, dst, 10)
		if err != nil {
			return
		}
		sock.Checksummed = true
		rcv := pup.NewBSPReceiver(sock, pup.DefaultBSPConfig())
		var got bytes.Buffer
		for {
			seg, err := rcv.Receive(p, 5*time.Second)
			if err != nil {
				break
			}
			got.Write(seg)
		}
		c.ok = bytes.Equal(got.Bytes(), data)
	})
	r.s.Spawn(r.hA, "bsp-send", func(p *sim.Proc) {
		sock, err := pup.Open(p, r.devA, pup.PortAddr{Net: 1, Host: 1, Socket: 0x501}, 10)
		if err != nil {
			return
		}
		sock.Checksummed = true
		snd := pup.NewBSPSender(sock, dst, pup.DefaultBSPConfig())
		if snd.Send(p, data) != nil {
			return
		}
		snd.Close(p)
	})
	r.s.Run(120 * time.Second)

	c.created, c.delivered = sp.Created, sp.DeliveredUser
	// Stage residence and end-to-end latency accrue on the host whose
	// read retires the span; the sender's ACKs land on A, the data on B.
	for i, name := range provStages {
		hb, ha := tr.Histogram("B", name), tr.Histogram("A", name)
		n := hb.Count() + ha.Count()
		if n > 0 {
			c.stages[i] = (hb.Mean()*time.Duration(hb.Count()) +
				ha.Mean()*time.Duration(ha.Count())) / time.Duration(n)
		}
	}
	c.p99 = sp.Total().Quantile(0.99)
	c.taxonomy = taxonomyString(sp)
	return c
}

// ExpProvenance regenerates the per-stage latency breakdown and drop
// taxonomy of a BSP transfer as the wire degrades.
func ExpProvenance() Table {
	t := Table{
		ID:    "exp-provenance",
		Title: "Per-packet provenance: stage residence (mean) and drop taxonomy vs fault rate",
		Columns: []string{"Fault rate", "spans", "delivered",
			"wire", "nic", "filter", "pf", "queue", "total p99", "drops"},
		Notes: []string{
			"sampling 1-in-1: every frame of the transfer carries a span; stage boundaries are virtual times",
			"wire = origin->NIC accept, nic = NIC->demux, filter = demux->filter retire, pf = filter->enqueue, queue = enqueue->read",
			fmt.Sprintf("%d KB checksummed BSP transfer, faults split across drop/corrupt/dup/delay (seed %d)",
				chaosBytes/1024, chaosSeed),
			"every created span terminates as a delivery or a typed drop; the taxonomy column is the complete death census",
		},
	}
	rates := []float64{0, 0.10, 0.20, 0.30}
	cells := parsim.Map(len(rates), sweepWorkers(), func(i int) provCell {
		return provenanceRun(rates[i])
	})
	for i, rate := range rates {
		c := cells[i]
		row := []string{
			fmt.Sprintf("%.0f%%", rate*100),
			fmt.Sprintf("%d", c.created),
			fmt.Sprintf("%d", c.delivered),
		}
		for _, d := range c.stages {
			row = append(row, usec(d))
		}
		row = append(row, usec(c.p99), c.taxonomy)
		if !c.ok {
			row[2] = "FAILED"
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
