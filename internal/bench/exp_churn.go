package bench

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/ethersim"
	"repro/internal/parsim"
	"repro/internal/pfdev"
	"repro/internal/pup"
	"repro/internal/sim"
)

// ChurnCount is the packet count per exp-churn cell; cmd/pfbench
// -churn-n overrides it so CI can smoke-test the experiment cheaply.
var ChurnCount = 40

// churnPorts is the sweep of active port populations under churn.
var churnPorts = []int{64, 256, 1024}

// churnResult is one cell: steady traffic to a hot port while decoy
// ports are rebound and cycled, under either incremental table
// maintenance or the full-rebuild baseline.  The maintenance metrics
// are deltas from after the warm-up frame, so the cold initial
// compile (paid identically by both modes) is excluded.
type churnResult struct {
	received  int
	perPacket time.Duration
	worstLat  time.Duration // worst send-to-read latency (tail under stalls)
	builds    uint64
	patches   uint64
	work      uint64        // table-construction work units under churn
	stall     time.Duration // packet-path time lost to from-scratch compiles
}

// measureChurn binds nPorts tree-extractable socket filters at host B,
// paces ChurnCount frames at the hot port, and concurrently rebinds
// and open/close-cycles decoy ports between frames — one churn event
// per frame.  Under FullRebuild every event invalidates the table and
// the next frame pays a from-scratch compile on the packet path; under
// incremental maintenance each event is an O(depth) patch at
// setfilter/close time.
func measureChurn(nPorts int, full bool) churnResult {
	r := newRig(rigOptions{link: ethersim.Ether3Mb,
		pf: pfdev.Options{Mode: pfdev.EvalTable, FullRebuild: full}})
	count := ChurnCount
	const hotSocket = 0x50
	// The gap must dominate a churn event's syscall time (~5 virtual
	// mSec on the VAX-era cost model) so rebinds genuinely interleave
	// with arrivals instead of draining before or after the traffic.
	const gap = 15 * time.Millisecond
	r.nicB.QueueLimit = 4 * count

	var res churnResult
	var t0, t1 time.Duration
	sendAt := make([]time.Duration, count)

	// Binding nPorts filters takes syscall time proportional to the
	// population; the sender and churner poll this flag (the universe
	// is single-threaded, so the handoff is deterministic) instead of
	// guessing the setup duration.
	ready := false
	going := false // measurement window open: churn paces with traffic
	decoys := make([]*pfdev.Port, nPorts-1)
	r.s.Spawn(r.hB, "dest", func(p *sim.Proc) {
		for i := range decoys {
			decoys[i] = r.devB.Open(p)
			decoys[i].SetFilter(p, pup.SocketFilter(ethersim.Ether3Mb, 10, uint32(0x1000+i)))
		}
		hot := r.devB.Open(p)
		hot.SetFilter(p, pup.SocketFilter(ethersim.Ether3Mb, 1, hotSocket))
		hot.SetQueueLimit(p, 4*count)
		// Survive the worst cell: at 1024 ports under FullRebuild every
		// frame pays a whole-population recompile stall.
		hot.SetTimeout(p, 30*time.Second)
		ready = true
		// The warm-up frame pays the cold table compile in both modes;
		// measurement starts after it.
		if _, err := hot.Read(p); err != nil {
			return
		}
		for res.received < count {
			if _, err := hot.Read(p); err != nil {
				return
			}
			// Single-port delivery is FIFO, so the i-th read is frame i.
			if lat := p.Now() - sendAt[res.received]; lat > res.worstLat {
				res.worstLat = lat
			}
			res.received++
			t1 = p.Now()
		}
	})
	r.s.Spawn(r.hB, "churn", func(p *sim.Proc) {
		// One churn event per frame, phase-shifted into the inter-frame
		// gap: rebind a decoy to a fresh socket, and every fourth event
		// close it and open a replacement — the open/close/reorder mix
		// the incremental Insert/Remove path must absorb.
		for !going {
			p.Sleep(5 * time.Millisecond)
		}
		p.Sleep(gap / 2)
		for i := 0; i < count; i++ {
			k := i % len(decoys)
			if i%4 == 3 {
				decoys[k].Close(p)
				decoys[k] = r.devB.Open(p)
			}
			decoys[k].SetFilter(p, pup.SocketFilter(ethersim.Ether3Mb, 10, uint32(0x2000+i)))
			p.Sleep(gap / 2)
		}
	})
	var builds0, patches0, work0 uint64
	var stall0 time.Duration
	r.s.Spawn(r.hA, "src", func(p *sim.Proc) {
		for !ready {
			p.Sleep(10 * time.Millisecond)
		}
		frame := pupFrame(1, hotSocket)
		// Warm-up: the cold whole-population compile happens here, off
		// the books, in both modes.  The sleep outlasts its stall.
		r.nicA.Transmit(frame)
		p.Sleep(500 * time.Millisecond)
		t0 = p.Now()
		builds0, patches0 = r.devB.TableBuilds, r.devB.TablePatches
		work0, stall0 = r.devB.TableWork(), r.devB.TableStall()
		r.hB.ResetAccounting()
		going = true
		for i := 0; i < count; i++ {
			sendAt[i] = p.Now()
			r.nicA.Transmit(frame)
			p.Sleep(gap)
		}
	})
	r.s.Run(120 * time.Second)

	if res.received > 0 {
		res.perPacket = (t1 - t0) / time.Duration(res.received)
	}
	res.builds = r.devB.TableBuilds - builds0
	res.patches = r.devB.TablePatches - patches0
	res.work = r.devB.TableWork() - work0
	res.stall = r.devB.TableStall() - stall0
	return res
}

// ExpChurn measures filter-set churn: steady traffic while ports are
// rebound, closed and reopened, comparing incremental decision-table
// maintenance against the rebuild-from-scratch baseline.  The rebuild
// baseline pays a whole-population recompile on the packet path after
// every churn event — work that grows with the port count and lands as
// per-packet stalls and tail latency — while incremental maintenance
// patches the affected subtree at setfilter/close time.
func ExpChurn() Table {
	t := Table{
		ID:    "exp-churn",
		Title: "Filter-set churn: incremental table maintenance vs full rebuild (one churn event per frame)",
		Columns: []string{"Active ports",
			"incr/pkt", "incr worst lat", "incr stall", "incr work",
			"full/pkt", "full worst lat", "full stall", "full work", "work ratio"},
		Notes: []string{
			"every frame is preceded by a setfilter rebind (every fourth a close+reopen); 'work' is deterministic table-construction units (nodes built or copied + programs compiled); 'stall' is packet-path time lost to from-scratch compiles — the rebuild-stall metric",
			"shape: incremental maintenance never stalls — patches run at setfilter/close syscall time, so per-packet cost, tail latency and stall stay flat at every population",
			"shape: the baseline's stall and worst-case latency grow with the population; at scale each whole-population recompile serializes the host, churn events queue behind the packet path, and rebuilds coarsen (fewer, bigger) — so 'full work' understates the damage the stall column shows",
			fmt.Sprintf("%d packets per cell; every cell is a deterministic universe, swept across the parsim pool", ChurnCount),
		},
	}
	type cellID struct {
		ports int
		full  bool
	}
	var cells []cellID
	for _, ports := range churnPorts {
		cells = append(cells, cellID{ports, false}, cellID{ports, true})
	}
	// Heaviest populations first so the pool never idles behind a
	// late-started 1024-port universe; results return in sweep order.
	order := make([]int, len(cells))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return cells[order[a]].ports > cells[order[b]].ports
	})
	permuted := parsim.Map(len(order), sweepWorkers(), func(i int) churnResult {
		return measureChurn(cells[order[i]].ports, cells[order[i]].full)
	})
	results := make([]churnResult, len(cells))
	for i, r := range permuted {
		results[order[i]] = r
	}
	for pi, ports := range churnPorts {
		incr, full := results[2*pi], results[2*pi+1]
		row := func(r churnResult) []string {
			if r.received == 0 {
				return []string{"n/a", "n/a", "n/a", "n/a"}
			}
			return []string{ms(r.perPacket), ms(r.worstLat), ms(r.stall), fmt.Sprintf("%d", r.work)}
		}
		ratio := "n/a"
		if incr.work > 0 {
			ratio = fmt.Sprintf("%.1fx", float64(full.work)/float64(incr.work))
		}
		cells := []string{fmt.Sprintf("%d", ports)}
		cells = append(cells, row(incr)...)
		cells = append(cells, row(full)...)
		cells = append(cells, ratio)
		t.Rows = append(t.Rows, cells)
	}
	return t
}
