package bench

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/ethersim"
	"repro/internal/parsim"
	"repro/internal/pfdev"
	"repro/internal/pup"
	"repro/internal/sim"
)

// MQCount is the packet count per exp-mq cell; cmd/pfbench -mq-n
// overrides it so CI can smoke-test the experiment cheaply.
var MQCount = 96

// mqQueues is the receive-queue sweep.
var mqQueues = []int{1, 2, 4, 8}

// mqPorts/mqFlows size the workload: a 64-port population fed by 64
// link-level flows, one flow per port, so the steering hash has
// something to spread and every frame pays the full demux.
const (
	mqPorts = 64
	mqFlows = 64
)

// mqMode names one evaluator configuration of the sweep.
type mqMode struct {
	name     string
	mode     pfdev.EvalMode
	coalesce int // interrupt-coalescing budget (0 = off)
}

func mqModes() []mqMode {
	return []mqMode{
		{name: "linear", mode: pfdev.EvalChecked},
		{name: "table", mode: pfdev.EvalTable},
		{name: "linear+coal", mode: pfdev.EvalChecked, coalesce: 8},
		{name: "table+coal", mode: pfdev.EvalTable, coalesce: 8},
	}
}

// mqResult is one cell of the sweep.
type mqResult struct {
	perPacket time.Duration
	received  int
	busy      int     // queues that carried at least one frame
	maxShare  float64 // busiest queue's share of per-queue kernel time
}

// mqFrame builds a Pup frame to the given socket from the given
// link-level source — the source is what the steering hash keys on, so
// each (src, socket) pair is one flow bound for one port.
func mqFrame(src ethersim.Addr, socket uint32) []byte {
	pkt := pup.Packet{Type: 1,
		Dst: pup.PortAddr{Net: 1, Host: 2, Socket: socket}}
	payload, _ := pkt.Marshal()
	return ethersim.Ether3Mb.Encode(2, src, ethersim.EtherTypePup3Mb, payload)
}

// measureMQ binds mqPorts socket filters at host B with no readers
// attached (queued frames are the terminal state, so the measured time
// is demultiplexing and nothing else) and blasts MQCount frames
// back-to-back, round-robin over mqFlows link-level flows.  The wire
// outpaces the demux by well over an order of magnitude at this port
// count, so a backlog forms on every receive queue and the per-queue
// kernel lanes are what bound the drain time: elapsed/packet is the
// per-packet kernel demux cost, and it falls as queues are added.
func measureMQ(queues int, m mqMode) mqResult {
	opts := pfdev.Options{Mode: m.mode, Queues: queues, CoalesceBudget: m.coalesce}
	if m.coalesce > 0 {
		opts.CoalesceDelay = 2 * time.Millisecond
	}
	r := newRig(rigOptions{link: ethersim.Ether3Mb, pf: opts})
	count := MQCount
	r.nicB.QueueLimit = 4 * count

	frames := make([][]byte, mqFlows)
	for i := range frames {
		frames[i] = mqFrame(ethersim.Addr(100+i), uint32(0x1000+i))
	}

	var res mqResult
	var t0 time.Duration

	r.s.Spawn(r.hB, "dest", func(p *sim.Proc) {
		for i := 0; i < mqPorts; i++ {
			port := r.devB.Open(p)
			port.SetFilter(p, pup.SocketFilter(ethersim.Ether3Mb, 10, uint32(0x1000+i)))
			port.SetQueueLimit(p, 4*count)
		}
	})
	r.s.Spawn(r.hA, "src", func(p *sim.Proc) {
		// Binding the population is setup, not measurement.
		p.Sleep(time.Duration(60+3*mqPorts) * time.Millisecond)
		r.hB.ResetAccounting()
		t0 = p.Now()
		for i := 0; i < count; i++ {
			r.nicA.Transmit(frames[i%mqFlows])
		}
	})
	end := r.s.Run(60 * time.Second)

	for _, n := range r.nicB.QueueRx() {
		res.received += int(n)
	}
	if res.received == 0 {
		return res
	}
	res.perPacket = (end - t0) / time.Duration(res.received)

	// Per-queue spread, from the per-queue KernelTime tags.
	var total, max time.Duration
	for q, n := range r.nicB.QueueRx() {
		if n > 0 {
			res.busy++
		}
		qt := r.hB.KernelTime[fmt.Sprintf("driver.q%d", q)] +
			r.hB.KernelTime[fmt.Sprintf("filter.q%d", q)] +
			r.hB.KernelTime[fmt.Sprintf("pf.q%d", q)]
		total += qt
		if qt > max {
			max = qt
		}
	}
	if queues == 1 {
		res.busy, res.maxShare = 1, 1
	} else if total > 0 {
		res.maxShare = float64(max) / float64(total)
	}
	return res
}

// ExpMq measures RSS-style multi-queue receive: per-packet kernel
// demux cost as receive queues are added, under the linear priority
// scan and the merged decision table, with and without per-queue
// interrupt coalescing.  Both evaluators are compute-bound at this
// population — the wire outpaces them by an order of magnitude — so
// parallel demux lanes cut per-packet cost nearly in proportion to
// the busy-queue count, and coalescing's saved kernel entries compose
// with the parallelism instead of competing with it.
func ExpMq() Table {
	t := Table{
		ID:    "exp-mq",
		Title: "Multi-queue receive: per-packet kernel demux cost vs receive queues (64 ports, 64 flows)",
		Columns: []string{"Queues", "linear", "vs 1q", "table", "vs 1q",
			"linear+coal", "table+coal", "busy", "max share"},
		Notes: []string{
			"64 socket-filter ports, no readers: queued frames are the terminal state, so elapsed/packet is pure kernel demux",
			"64 link-level flows round-robin; the flow hash steers each flow to one queue, per-flow order holds by construction",
			"shape: both evaluators are compute-bound here, so per-packet cost falls nearly in proportion to the busy-queue count",
			"shape: at 4 queues the linear cost is <= 0.6x the single-queue cost — the acceptance ratio the shape test pins",
			"shape: coalescing shaves per-frame kernel entries on every queue; its savings compose with the parallel lanes",
			"busy/max-share columns describe the linear cell: queues that carried frames, and the busiest queue's share of per-queue kernel time",
			fmt.Sprintf("%d packets per cell; every cell is a deterministic universe, swept across the parsim pool", MQCount),
		},
	}
	modes := mqModes()
	type cellID struct {
		queues int
		mode   mqMode
	}
	var cells []cellID
	for _, q := range mqQueues {
		for _, m := range modes {
			cells = append(cells, cellID{q, m})
		}
	}
	// Dispatch the heaviest cells (fewest queues: the longest serial
	// drains) first; the permutation is deterministic and results are
	// written back to sweep order, so the table is bit-identical at any
	// worker count.
	order := make([]int, len(cells))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return cells[order[a]].queues < cells[order[b]].queues
	})
	permuted := parsim.Map(len(order), sweepWorkers(), func(i int) mqResult {
		return measureMQ(cells[order[i]].queues, cells[order[i]].mode)
	})
	results := make([]mqResult, len(cells))
	for i, r := range permuted {
		results[order[i]] = r
	}
	base := make(map[string]time.Duration, len(modes))
	for mi, m := range modes {
		base[m.name] = results[mi].perPacket // queues == 1 row is first
	}
	ratio := func(r mqResult, mode string) string {
		if r.received == 0 || base[mode] <= 0 {
			return "n/a"
		}
		return fmt.Sprintf("%.2fx", float64(r.perPacket)/float64(base[mode]))
	}
	for qi, q := range mqQueues {
		byMode := make(map[string]mqResult, len(modes))
		for mi, m := range modes {
			byMode[m.name] = results[qi*len(modes)+mi]
		}
		cell := func(name string) string {
			r := byMode[name]
			if r.received == 0 {
				return "n/a"
			}
			return ms(r.perPacket)
		}
		lin := byMode["linear"]
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", q),
			cell("linear"), ratio(lin, "linear"),
			cell("table"), ratio(byMode["table"], "table"),
			cell("linear+coal"), cell("table+coal"),
			fmt.Sprintf("%d", lin.busy),
			fmt.Sprintf("%.2f", lin.maxShare),
		})
	}
	return t
}
