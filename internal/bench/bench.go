// Package bench regenerates every table and figure in the paper's
// evaluation (§2 figures, §3 figures, §6 tables) on the simulated
// substrate.  Each experiment is a function returning a Table whose
// rows mirror the paper's layout, annotated with the paper's published
// values so EXPERIMENTS.md can show paper-vs-measured side by side.
//
// Absolute times are virtual milliseconds from the calibrated VAX-era
// cost model (package vtime); the claims being validated are the
// *shapes*: who wins, by what factor, and where crossovers fall.
package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/ethersim"
	"repro/internal/inet"
	"repro/internal/parsim"
	"repro/internal/pfdev"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vmtp"
	"repro/internal/vtime"
)

// Tracer, when set, is attached to every experiment rig, so the whole
// benchmark suite can run under observation (cmd/pfbench -trace).
var Tracer *trace.Tracer

// Workers bounds how many simulation universes the benchmark sweeps
// run concurrently (cmd/pfbench -parallel); <= 0 selects GOMAXPROCS.
// Each sweep cell builds its own rig, so cells parallelize with
// bit-identical tables — results are collected in cell order.
var Workers int

// sweepWorkers resolves Workers for a sweep, forcing sequential
// execution when the shared Tracer is attached: rigs reuse host names,
// so concurrent traced universes would interleave their metrics.
func sweepWorkers() int {
	if Tracer != nil {
		return 1
	}
	return parsim.Workers(Workers)
}

// Table is one regenerated paper table or figure.
type Table struct {
	ID      string     `json:"id"`    // experiment id from DESIGN.md, e.g. "t6-2"
	Title   string     `json:"title"` // the paper's caption
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"` // shape commentary, paper values, caveats
}

// String renders the table as aligned text.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s] %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavored markdown.
func (t Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### [%s] %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n> %s\n", n)
	}
	return b.String()
}

// ms formats a duration as milliseconds with two decimals.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f mSec", float64(d)/float64(time.Millisecond))
}

// kbps formats a throughput in KB/s given bytes and elapsed time.
func kbps(bytes int, elapsed time.Duration) string {
	if elapsed <= 0 {
		return "inf"
	}
	return fmt.Sprintf("%.0f Kbytes/sec", rate(bytes, elapsed))
}

func rate(bytes int, elapsed time.Duration) float64 {
	return float64(bytes) / 1024 / (float64(elapsed) / float64(time.Second))
}

// vKernelCosts models the V kernel: a message-passing system with
// inexpensive processes and IPC, so its domain crossings and switches
// cost a fraction of 4.3BSD's.  Network and protocol work is
// unchanged.
func vKernelCosts() vtime.Costs {
	c := vtime.DefaultCosts()
	c.CtxSwitch /= 2
	c.Syscall /= 2
	c.Wakeup /= 2
	return c
}

// rig is a two-host network fixture: a traffic source/client host "A"
// and an instrumented receiver/server host "B".
type rig struct {
	s      *sim.Sim
	net    *ethersim.Network
	hA, hB *sim.Host
	nicA   *ethersim.NIC
	nicB   *ethersim.NIC
	devA   *pfdev.Device
	devB   *pfdev.Device
	stackA *inet.Stack
	stackB *inet.Stack
	vmtpA  *vmtp.KernelTransport
	vmtpB  *vmtp.KernelTransport
}

// rigOptions selects which kernel subsystems each host gets.
type rigOptions struct {
	link       ethersim.LinkType
	costs      vtime.Costs
	inet       bool // kernel IP/UDP/TCP stacks
	kernelVMTP bool // kernel VMTP engines
	pf         pfdev.Options
}

func newRig(o rigOptions) *rig {
	if o.costs == (vtime.Costs{}) {
		o.costs = vtime.DefaultCosts()
	}
	s := sim.New(o.costs)
	if Tracer != nil {
		s.SetTracer(Tracer)
	}
	net := ethersim.New(s, o.link)
	hA, hB := s.NewHost("A"), s.NewHost("B")
	r := &rig{
		s: s, net: net, hA: hA, hB: hB,
		nicA: net.Attach(hA, 1),
		nicB: net.Attach(hB, 2),
	}
	var kernA, kernB []pfdev.KernelProtocol
	if o.inet {
		r.stackA = inet.NewStack(r.nicA, 0x0A000001)
		r.stackB = inet.NewStack(r.nicB, 0x0A000002)
		r.stackA.AddARP(r.stackB.Addr(), r.nicB.Addr())
		r.stackB.AddARP(r.stackA.Addr(), r.nicA.Addr())
		kernA = append(kernA, r.stackA)
		kernB = append(kernB, r.stackB)
	}
	if o.kernelVMTP {
		r.vmtpA = vmtp.AttachKernel(r.nicA, vmtp.DefaultKernelConfig())
		r.vmtpB = vmtp.AttachKernel(r.nicB, vmtp.DefaultKernelConfig())
		kernA = append(kernA, r.vmtpA)
		kernB = append(kernB, r.vmtpB)
	}
	r.devA = pfdev.Attach(r.nicA, pfdev.Chain(kernA...), o.pf)
	r.devB = pfdev.Attach(r.nicB, pfdev.Chain(kernB...), o.pf)
	return r
}

// An Experiment pairs a table id with the function that regenerates
// it, so callers can run a single experiment without paying for (or —
// when tracing, since rigs reuse host names — polluting the metrics
// of) all the others.
type Experiment struct {
	ID  string
	Run func() Table
}

// Experiments lists every experiment in DESIGN.md order.
func Experiments() []Experiment {
	return []Experiment{
		{"fig2-1/2-2", Fig21DemuxCounts},
		{"fig2-3", Fig23DomainCrossings},
		{"fig3-4/3-5", Fig34Batching},
		{"t6-1", Table61Send},
		{"t6-2", Table62VMTPSmall},
		{"t6-3", Table63VMTPBulk},
		{"t6-4", Table64Batching},
		{"t6-5", Table65UserDemux},
		{"t6-6", Table66Stream},
		{"t6-7", Table67Telnet},
		{"t6-8", Table68RecvCost},
		{"t6-9", Table69RecvBatch},
		{"t6-10", Table610FilterLen},
		{"s6-1", Sec61Profile},
		{"s6-1-fit", Sec61LinearFit},
		{"s6-5-break", Sec65BreakEven},
		{"abl-eval", AblationEvalModes},
		{"abl-sc", AblationShortCircuit},
		{"abl-prio", AblationPriorityOrder},
		{"abl-nit", AblationNIT},
		{"abl-wbatch", AblationWriteBatch},
		{"abl-gw", AblationGateway},
		{"chaos", ChaosGoodput},
		{"exp-shm", ExpShm},
		{"exp-coalesce", ExpCoalesce},
		{"exp-scale", ExpScale},
		{"exp-provenance", ExpProvenance},
		{"exp-storm", ExpStorm},
		{"exp-churn", ExpChurn},
		{"exp-mq", ExpMq},
	}
}

// All runs every experiment in DESIGN.md order.  Experiments are
// independent (each builds its own rigs) and run across the parsim
// pool; tables come back in registry order, so the suite's output is
// byte-identical to a sequential run.
func All() []Table {
	exps := Experiments()
	return parsim.Map(len(exps), sweepWorkers(), func(i int) Table {
		return exps[i].Run()
	})
}
