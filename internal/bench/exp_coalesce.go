package bench

import (
	"fmt"
	"time"

	"repro/internal/parsim"
)

// CoalesceCount is the packet count per exp-coalesce measurement;
// cmd/pfbench -coalesce-n overrides it so CI can smoke-test the
// experiment cheaply.
var CoalesceCount = 64

// ExpCoalesce is the interrupt-coalescing ablation: the per-frame
// receive path (one driver entry, one filter pass, one packet-filter
// entry and one reader wakeup per packet) against NAPI-style batched
// receive at increasing poll budgets.  Traffic is paced at a 3 mSec
// gap — slower than the per-packet service time, the worst case for
// interrupt overhead, since every packet takes a full kernel entry and
// a wakeup of a blocked reader — and the moderation delay is scaled
// with the budget so bursts actually fill.  The last column re-runs
// each configuration with a single isolated packet: the NAPI
// first-interrupt path must deliver it at exactly the uncoalesced
// latency, so batching costs nothing when there is nothing to batch.
func ExpCoalesce() Table {
	t := Table{
		ID:    "exp-coalesce",
		Title: "Interrupt coalescing: batched receive vs per-frame kernel entries",
		Columns: []string{"Budget", "frames/burst", "kernel entries/pkt",
			"ctx switches/pkt", "wakeups/pkt", "per packet", "isolated latency"},
		Notes: []string{
			"counterfactual to §6: the fixed per-packet kernel costs the paper measures, amortized over receive bursts",
			"shape: kernel entries, switches and wakeups per packet fall roughly with the budget",
			"shape: elapsed time per packet rises with the moderation delay — at a paced workload coalescing trades delivery latency for kernel CPU, the classic NAPI bargain",
			"shape: the isolated-latency column is identical in every row — an idle interface flushes the first frame immediately",
		},
	}
	const gap = 3 * time.Millisecond
	budgets := []int{0, 2, 4, 8, 16}
	// Each (budget, paced|isolated) measurement is its own universe;
	// the sweep fans out across the parsim pool, rows stay in budget
	// order.
	results := parsim.Map(2*len(budgets), sweepWorkers(), func(i int) recvResult {
		budget := budgets[i/2]
		cfg := recvSetup{size: 128, count: CoalesceCount, gap: gap,
			coalesce: budget, coalesceDelay: 2 * gap * time.Duration(budget)}
		if i%2 == 1 {
			cfg.count = 1
		}
		return measureRecv(cfg)
	})
	for i, budget := range budgets {
		res, isoRes := results[2*i], results[2*i+1]
		if res.received == 0 || isoRes.received == 0 {
			t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", budget),
				"n/a", "n/a", "n/a", "n/a", "n/a", "n/a"})
			continue
		}
		name := "off"
		if budget > 1 {
			name = fmt.Sprintf("%d", budget)
		}
		perBurst := "-"
		if res.counters.Bursts > 0 {
			perBurst = fmt.Sprintf("%.1f",
				float64(res.counters.CoalescedFrames)/float64(res.counters.Bursts))
		}
		per := func(v uint64) string {
			return fmt.Sprintf("%.2f", float64(v)/float64(res.received))
		}
		t.Rows = append(t.Rows, []string{
			name, perBurst,
			per(res.counters.KernelEntries),
			per(res.counters.ContextSwitches),
			per(res.counters.Wakeups),
			ms(res.perPacket),
			ms(isoRes.perPacket),
		})
	}
	return t
}
