package bench

import (
	"fmt"
	"time"

	"repro/internal/ethersim"
	"repro/internal/filter"
	"repro/internal/pfdev"
	"repro/internal/pup"
	"repro/internal/sim"
	"repro/internal/workload"
)

// profileRun drives the §6.1 mixed traffic at a host with nPorts
// packet-filter ports (plus the kernel IP/ARP stack) and reports the
// packet-filter module's per-packet CPU cost and composition.
type profileResult struct {
	pfPackets      uint64
	perPacket      time.Duration // (pf + filter) kernel time per pf packet
	filterFraction float64       // share spent evaluating predicates
	avgPredicates  float64       // filters applied per pf packet
	ipPerPacket    time.Duration // kernel ip+udp time per IP packet
	ipOnly         time.Duration // ip-layer only
}

func runProfile(nPorts int, packets int, reorder bool, bias float64) profileResult {
	r := newRig(rigOptions{link: ethersim.Ether10Mb, inet: true,
		pf: pfdev.Options{Reorder: reorder}})

	sockets := make([]uint32, nPorts)
	for i := range sockets {
		sockets[i] = uint32(0x100 + i)
	}

	// One UDP sink so kernel IP traffic terminates somewhere real.
	r.s.Spawn(r.hB, "udp-sink", func(p *sim.Proc) {
		u, err := r.stackB.UDPBind(p, 1)
		if err != nil {
			return
		}
		u.SetTimeout(100 * time.Millisecond)
		for {
			if _, err := u.Recv(p); err != nil {
				return
			}
		}
	})

	// One reader process per packet-filter port, draining in batches.
	for i, sock := range sockets {
		sock := sock
		name := fmt.Sprintf("pup-%d", i)
		r.s.Spawn(r.hB, name, func(p *sim.Proc) {
			s, err := pup.Open(p, r.devB,
				pup.PortAddr{Net: 1, Host: 2, Socket: sock}, 10)
			if err != nil {
				return
			}
			s.Batch = true
			s.SetTimeout(p, 100*time.Millisecond)
			for {
				if _, err := s.Recv(p); err != nil {
					return
				}
			}
		})
	}

	gen := workload.NewGenerator(42, ethersim.Ether10Mb, workload.PaperMix(), sockets)
	gen.SocketBias = bias
	r.s.Spawn(r.hA, "traffic", func(p *sim.Proc) {
		p.Sleep(time.Duration(20+4*nPorts) * time.Millisecond) // setup time
		r.hB.ResetAccounting()
		gen.Drive(p, r.nicA, 2, packets, 4*time.Millisecond)
	})
	r.s.Run(5 * time.Minute)

	var res profileResult
	c := r.hB.Counters
	res.pfPackets = c.PacketsMatched + r.devB.KernelDrops
	if res.pfPackets > 0 {
		pf := r.hB.KernelTime["pf"]
		fl := r.hB.KernelTime["filter"]
		res.perPacket = (pf + fl) / time.Duration(res.pfPackets)
		if pf+fl > 0 {
			res.filterFraction = float64(fl) / float64(pf+fl)
		}
		res.avgPredicates = float64(c.FilterApplied) / float64(res.pfPackets)
	}
	if n := r.stackB.IPIn; n > 0 {
		res.ipOnly = r.hB.KernelTime["ip"] / time.Duration(n)
		res.ipPerPacket = (r.hB.KernelTime["ip"] + r.hB.KernelTime["udp"] +
			r.hB.KernelTime["tcp"]) / time.Duration(n)
	}
	return res
}

// Sec61Profile reproduces the §6.1 kernel-profiling numbers: average
// per-packet processing cost of the packet filter versus the
// kernel-resident IP path, and the predicate-evaluation share.
func Sec61Profile() Table {
	t := Table{
		ID:      "s6-1",
		Title:   "Kernel per-packet processing time (mixed 21% pf / 69% IP / 10% ARP traffic)",
		Columns: []string{"Quantity", "measured", "paper"},
		Notes: []string{
			"paper: pf 1.57 mSec/packet, 41% in predicate evaluation, 6.3 predicates tested/packet; kernel IP+transport 1.77 mSec, IP layer alone 0.49 mSec",
			"shape: pf per-packet cost below full kernel IP+transport cost but well above bare IP; a large minority of pf time goes to predicate evaluation",
		},
	}
	// 12 ports so the average predicates tested lands near the
	// paper's 6.3 (half the active ports, §6.1).
	res := runProfile(12, 800, true, 0.4)
	t.Rows = append(t.Rows,
		[]string{"packet filter per packet", ms(res.perPacket), "1.57 mSec"},
		[]string{"share evaluating predicates", fmt.Sprintf("%.0f%%", 100*res.filterFraction), "41%"},
		[]string{"predicates tested per packet", fmt.Sprintf("%.1f", res.avgPredicates), "6.3"},
		[]string{"kernel IP+transport per packet", ms(res.ipPerPacket), "1.77 mSec"},
		[]string{"kernel IP layer only", ms(res.ipOnly), "0.49 mSec"},
	)
	return t
}

// Sec61LinearFit reproduces §6.1's cost model: "we derived a crude
// estimate for the time to process a packet: 0.8 mSec + (0.122 *
// number of predicates tested) mSec", by sweeping the port population
// and regressing.
func Sec61LinearFit() Table {
	t := Table{
		ID:      "s6-1-fit",
		Title:   "Packet-filter cost vs predicates tested (linear fit)",
		Columns: []string{"ports", "predicates tested/packet", "pf mSec/packet"},
		Notes:   nil,
	}
	var xs, ys []float64
	for _, n := range []int{1, 4, 8, 16} {
		res := runProfile(n, 400, false, 0)
		xs = append(xs, res.avgPredicates)
		ys = append(ys, float64(res.perPacket)/float64(time.Millisecond))
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.1f", res.avgPredicates),
			fmt.Sprintf("%.2f", float64(res.perPacket)/float64(time.Millisecond)),
		})
	}
	a, b := leastSquares(xs, ys)
	t.Notes = append(t.Notes,
		fmt.Sprintf("fit: %.2f mSec + %.3f mSec per predicate tested", a, b),
		"paper: 0.8 mSec + 0.122 mSec per predicate tested",
		"shape: cost is linear in the number of predicates, with a small per-predicate slope")
	return t
}

func leastSquares(xs, ys []float64) (a, b float64) {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	b = (n*sxy - sx*sy) / (n*sxx - sx*sx)
	a = (sy - b*sx) / n
	return a, b
}

// Sec65BreakEven reproduces §6.5.3's break-even analysis: how many
// filters must be applied per packet before kernel filtering costs as
// much as user-level demultiplexing.  The measured traffic matches
// only the last-priority filter, so every prior filter is pure
// interpretation overhead.
func Sec65BreakEven() Table {
	t := Table{
		ID:    "s6-5-break",
		Title: "Break-even: kernel filtering vs user-level demultiplexing (128-byte packets, batching)",
		Columns: []string{"filters applied before match", "kernel demux", "plain filters",
			"short-circuit filters"},
		Notes: []string{
			"paper: with ~21-instruction plain filters the break-even is ~3 long filters; with short-circuit filters ~10 filters before acceptance (~20 active processes)",
			"'kernel demux' column: the user-level demultiplexer cost from table 6-9 for comparison",
		},
	}
	demuxCost := measureRecv(recvSetup{size: 128, batch: true, userProc: true}).perPacket

	// Plain (fig 3-8 style, no short-circuit): ~9 instructions that
	// never match (test a field against an impossible value).
	plainMiss := filter.NewBuilder().
		WordEQ(6, 0x7777). // ether type never matches
		WordEQ(7, 0x7777).
		And().
		WordEQ(8, 0x7777).
		And().MustProgram()
	// Short-circuit version: fails on the first CAND (2 instrs).
	scMiss := filter.NewBuilder().
		CANDWordEQ(6, 0x7777).
		CANDWordEQ(7, 0x7777).
		WordEQ(8, 0x7777).MustProgram()

	for _, n := range []int{1, 3, 10, 20, 30} {
		plain := measureFilterChain(n, plainMiss)
		sc := measureFilterChain(n, scMiss)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n), ms(demuxCost), ms(plain), ms(sc),
		})
	}
	return t
}

// measureFilterChain binds n-1 copies of miss (which never match)
// above one matching filter and measures per-packet receive cost.
func measureFilterChain(n int, miss filter.Program) time.Duration {
	r := newRig(rigOptions{link: ethersim.Ether10Mb})
	const count = 40
	received := 0
	var t0, t1 time.Duration

	r.s.Spawn(r.hB, "dest", func(p *sim.Proc) {
		// Bind the decoys at descending priorities above the
		// real filter.
		for i := 0; i < n-1; i++ {
			port := r.devB.Open(p)
			port.SetFilter(p, filter.Filter{Priority: uint8(200 - i), Program: miss})
		}
		port := r.devB.Open(p)
		port.SetFilter(p, typeFilter(ethersim.Ether10Mb, 10))
		port.SetQueueLimit(p, 4*count)
		port.SetTimeout(p, 300*time.Millisecond)
		for received < count {
			batch, err := port.ReadBatch(p)
			if err != nil {
				return
			}
			received += len(batch)
			t1 = p.Now()
		}
	})
	r.s.Spawn(r.hA, "src", func(p *sim.Proc) {
		p.Sleep(time.Duration(20+2*n) * time.Millisecond)
		t0 = p.Now()
		frame := ethersim.Ether10Mb.Encode(2, 1, testEtherType, make([]byte, 114))
		for i := 0; i < count; i++ {
			r.nicA.Transmit(frame)
			p.Sleep(500 * time.Microsecond)
		}
	})
	r.s.Run(5 * time.Second)
	if received == 0 {
		return 0
	}
	return (t1 - t0) / time.Duration(received)
}
