package bench

import (
	"fmt"
	"time"

	"repro/internal/demux"
	"repro/internal/ethersim"
	"repro/internal/filter"
	"repro/internal/pfdev"
	"repro/internal/shm"
	"repro/internal/sim"
	"repro/internal/vtime"
)

// testEtherType tags the synthetic measurement traffic.
const testEtherType = 0x0101

// typeFilter matches the measurement traffic (one field test — "it
// usually takes two or three filter instructions to test one packet
// field").
func typeFilter(link ethersim.LinkType, prio uint8) filter.Filter {
	return filter.Filter{
		Priority: prio,
		Program: filter.NewBuilder().
			WordEQ(link.TypeWord(), testEtherType).MustProgram(),
	}
}

// recvSetup parameterizes one receive-cost measurement.
type recvSetup struct {
	size     int           // total frame size in bytes
	count    int           // packets to measure over
	gap      time.Duration // sender inter-packet gap
	batch    bool          // batched port reads
	userProc bool          // demultiplex in a user process (fig. 2-1)
	ring     bool          // drain through a mapped shm ring (exp-shm)
	shared   bool          // demux forwards through a shared arena (exp-shm)
	prog     filter.Program
	mode     pfdev.EvalMode
	spinner  bool // an unrelated CPU-bound process shares host B

	coalesce      int           // interrupt-coalescing budget (exp-coalesce)
	coalesceDelay time.Duration // moderation timer
}

// recvResult reports per-packet receive cost and the receiver host's
// counters for the measured window.
type recvResult struct {
	perPacket time.Duration
	received  int
	counters  vtime.Counters
}

// measureRecv drives size-byte frames at host B and measures the
// steady-state elapsed time per received packet at the destination
// process, under kernel (packet filter) or user-process
// demultiplexing.
func measureRecv(cfg recvSetup) recvResult {
	r := newRig(rigOptions{link: ethersim.Ether10Mb})
	if cfg.prog == nil {
		cfg.prog = typeFilter(ethersim.Ether10Mb, 10).Program
	}
	if cfg.count == 0 {
		cfg.count = 60
	}
	if cfg.gap == 0 {
		cfg.gap = 500 * time.Microsecond
	}
	r.nicB.QueueLimit = 4 * cfg.count

	var res recvResult
	var t0, t1 time.Duration
	var c0 vtime.Counters

	// The clock runs from the first frame on the wire to the last
	// completed read, so a backlog drained in cheap batches cannot
	// fake a low per-packet cost.
	recordLast := func(p *sim.Proc) { t1 = p.Now() }

	if cfg.userProc {
		d := demux.New(r.devB, demux.Config{Batch: cfg.batch, Shared: cfg.shared, PipeCap: 4 * cfg.count})
		client := d.Register(func(frame []byte) bool {
			_, _, typ, _, err := ethersim.Ether10Mb.Decode(frame)
			return err == nil && typ == testEtherType
		})
		r.s.Spawn(r.hB, "demux", func(p *sim.Proc) {
			d.Run(p, filter.Filter{Priority: 10, Program: cfg.prog}, 300*time.Millisecond)
		})
		r.s.Spawn(r.hB, "dest", func(p *sim.Proc) {
			for res.received < cfg.count {
				client.Recv(p)
				res.received++
				recordLast(p)
			}
		})
	} else {
		r.devB = pfdev.Attach(r.nicB, nil, pfdev.Options{Mode: cfg.mode,
			CoalesceBudget: cfg.coalesce, CoalesceDelay: cfg.coalesceDelay})
		r.s.Spawn(r.hB, "dest", func(p *sim.Proc) {
			port := r.devB.Open(p)
			port.SetFilter(p, filter.Filter{Priority: 10, Program: cfg.prog})
			port.SetQueueLimit(p, 4*cfg.count)
			port.SetTimeout(p, 300*time.Millisecond)
			if cfg.ring {
				// Map the receive ring once, modestly sized (a bigger ring
				// costs more MapCost up front for backlog headroom this
				// paced workload never needs); unbatched ring mode reaps
				// one descriptor per syscall so it is comparable with
				// per-packet Read.
				slots := 64
				if s := 4 * cfg.count; s < slots {
					slots = s
				}
				reg := shm.NewRegistry(r.hB)
				seg, err := reg.Map(p, "bench-ring", port.RingLayoutSize(slots))
				if err != nil {
					return
				}
				if err := port.MapRing(p, seg, slots); err != nil {
					return
				}
				if !cfg.batch {
					port.SetBatchMax(p, 1)
				}
			}
			for res.received < cfg.count {
				if cfg.ring {
					batch, err := port.ReapBatch(p)
					if err != nil {
						return
					}
					res.received += len(batch)
				} else if cfg.batch {
					batch, err := port.ReadBatch(p)
					if err != nil {
						return
					}
					res.received += len(batch)
				} else {
					if _, err := port.Read(p); err != nil {
						return
					}
					res.received++
				}
				recordLast(p)
			}
		})
	}
	if cfg.spinner {
		r.s.Spawn(r.hB, "spinner", func(p *sim.Proc) {
			for i := 0; i < 100000; i++ {
				p.Consume(200 * time.Microsecond)
			}
		})
	}

	r.s.Spawn(r.hA, "src", func(p *sim.Proc) {
		setup := 10 * time.Millisecond // let host B finish its ioctls
		if cfg.ring || cfg.shared {
			// The one-time segment mapping (vtime MapCost) belongs to
			// setup, not to the per-packet window the clock measures.
			setup = 40 * time.Millisecond
		}
		p.Sleep(setup)
		t0 = p.Now()
		c0 = r.hB.Counters
		frame := ethersim.Ether10Mb.Encode(2, 1, testEtherType,
			make([]byte, cfg.size-ethersim.Ether10Mb.HeaderLen()))
		for i := 0; i < cfg.count; i++ {
			r.nicA.Transmit(frame)
			p.Sleep(cfg.gap)
		}
	})
	r.s.Run(2 * time.Second)

	if res.received > 0 {
		res.perPacket = (t1 - t0) / time.Duration(res.received)
	}
	res.counters = r.hB.Counters.Sub(c0)
	return res
}

// Table68RecvCost reproduces table 6-8: "Per-packet cost of user-level
// demultiplexing" (no batching).
func Table68RecvCost() Table {
	t := Table{
		ID:      "t6-8",
		Title:   "Per-packet cost of user-level demultiplexing",
		Columns: []string{"Packet size", "kernel demux", "user process"},
		Notes: []string{
			"paper: 128B 2.3 vs 5.0 mSec; 1500B 4.0 vs 9.0 mSec",
			"shape: user-process demultiplexing costs several extra copies/switches per packet, growing with size",
		},
	}
	for _, size := range []int{128, 1500} {
		gap := 500 * time.Microsecond
		if size == 1500 {
			gap = 1500 * time.Microsecond
		}
		k := measureRecv(recvSetup{size: size, gap: gap})
		u := measureRecv(recvSetup{size: size, gap: gap, userProc: true})
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d bytes", size), ms(k.perPacket), ms(u.perPacket),
		})
	}
	return t
}

// Table69RecvBatch reproduces table 6-9: the same measurement with
// received-packet batching.
func Table69RecvBatch() Table {
	t := Table{
		ID:      "t6-9",
		Title:   "Per-packet cost of user-level demultiplexing with received-packet batching",
		Columns: []string{"Packet size", "kernel demux", "user process"},
		Notes: []string{
			"paper: 128B 1.9 vs 2.4 mSec; 1500B 3.5 vs 5.9 mSec",
			"shape: batching narrows but does not close the gap",
		},
	}
	for _, size := range []int{128, 1500} {
		gap := 500 * time.Microsecond
		if size == 1500 {
			gap = 1500 * time.Microsecond
		}
		k := measureRecv(recvSetup{size: size, gap: gap, batch: true})
		u := measureRecv(recvSetup{size: size, gap: gap, batch: true, userProc: true})
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d bytes", size), ms(k.perPacket), ms(u.perPacket),
		})
	}
	return t
}

// lengthFilter builds an always-true program of exactly n instruction
// words: PUSHONE followed by alternating PUSHONE and OR words.
func lengthFilter(n int) filter.Program {
	if n == 0 {
		return filter.Program{} // the empty filter accepts everything
	}
	b := filter.NewBuilder().PushOne()
	for i := 1; i < n; i++ {
		if i%2 == 1 {
			b.PushOne()
		} else {
			b.Or()
		}
	}
	p := b.MustProgram()
	if len(p) != n {
		panic("lengthFilter: wrong length")
	}
	return p
}

// Table610FilterLen reproduces table 6-10: "Cost of interpreting
// packet filters" at lengths 0, 1, 9 and 21 instructions (batching
// enabled, 128-byte packets).
func Table610FilterLen() Table {
	t := Table{
		ID:      "t6-10",
		Title:   "Cost of interpreting packet filters",
		Columns: []string{"Filter length (instructions)", "Elapsed time per packet"},
		Notes: []string{
			"paper: 0/1/9/21 instructions cost 1.9/2.0/2.2/2.5 mSec",
			"shape: cost linear in filter length with a slope of ~30 µSec per instruction",
		},
	}
	for _, n := range []int{0, 1, 9, 21} {
		res := measureRecv(recvSetup{size: 128, batch: true, prog: lengthFilter(n)})
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n), ms(res.perPacket),
		})
	}
	return t
}

// Fig21DemuxCounts reproduces figures 2-1/2-2: the per-packet system
// call, context switch and copy counts under the two demultiplexing
// schemes, measured with paced traffic so the destination blocks for
// each packet (the paper's worst case).
func Fig21DemuxCounts() Table {
	t := Table{
		ID:    "fig2-1/2-2",
		Title: "Costs of demultiplexing in a user process vs in the kernel (per received packet)",
		Columns: []string{"Mechanism", "context switches", "system calls",
			"kernel/user copies"},
		Notes: []string{
			"paper (analytical, §6.5.1): user demux adds >=2 switches, >=2 syscalls and 2 copies per packet",
		},
	}
	for _, user := range []bool{false, true} {
		res := measureRecv(recvSetup{size: 128, gap: 5 * time.Millisecond,
			count: 20, userProc: user})
		name := "packet filter (kernel demux)"
		if user {
			name = "user-level demux process"
		}
		per := func(v uint64) string {
			return fmt.Sprintf("%.1f", float64(v)/float64(res.received))
		}
		t.Rows = append(t.Rows, []string{
			name, per(res.counters.ContextSwitches),
			per(res.counters.Syscalls), per(res.counters.Copies),
		})
	}
	return t
}

// Fig34Batching reproduces figures 3-4/3-5: system calls per packet
// without and with received-packet batching, for an 8-packet burst.
func Fig34Batching() Table {
	t := Table{
		ID:      "fig3-4/3-5",
		Title:   "Delivery without and with received-packet batching (8-packet burst)",
		Columns: []string{"Mode", "system calls per packet", "copies per packet"},
		Notes: []string{
			"shape: batching amortizes one system call and one copy over the whole burst",
		},
	}
	for _, batch := range []bool{false, true} {
		res := measureRecv(recvSetup{size: 128, gap: 100 * time.Microsecond,
			count: 8, batch: batch})
		name := "per-packet reads (fig 3-4)"
		if batch {
			name = "batched reads (fig 3-5)"
		}
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%.2f", float64(res.counters.Syscalls)/float64(res.received)),
			fmt.Sprintf("%.2f", float64(res.counters.Copies)/float64(res.received)),
		})
	}
	return t
}
