package bench

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/ethersim"
	"repro/internal/filter"
	"repro/internal/parsim"
	"repro/internal/pfdev"
	"repro/internal/pup"
	"repro/internal/shm"
	"repro/internal/sim"
)

// ScaleCount is the packet count per exp-scale cell; cmd/pfbench
// -scale-n overrides it so CI can smoke-test the experiment cheaply.
var ScaleCount = 48

// scalePorts is the sweep of active port counts.  The paper's largest
// measured population is a handful of filters; the sweep extends the
// §3.2/§7 scaling argument to three orders of magnitude.
var scalePorts = []int{2, 8, 32, 128, 512, 1024}

// scaleMode names one delivery configuration of the sweep.
type scaleMode struct {
	name     string
	mode     pfdev.EvalMode
	ring     bool // drain through a mapped shm ring
	coalesce int  // interrupt-coalescing budget (0 = off)
}

func scaleModes() []scaleMode {
	return []scaleMode{
		{name: "linear", mode: pfdev.EvalChecked},
		{name: "table", mode: pfdev.EvalTable},
		{name: "ring", mode: pfdev.EvalChecked, ring: true},
		{name: "coalesced", mode: pfdev.EvalChecked, coalesce: 8},
	}
}

// scaleResult is one cell of the sweep.
type scaleResult struct {
	perPacket time.Duration
	received  int
	scans     float64 // filters applied per received packet
}

// measureScale binds nPorts filters at host B — all but a handful are
// decision-table-extractable socket conjunctions, the rest are OR
// programs that force the linear fallback even in table mode — and
// paces traffic at the *last-scanned* conjunction port (lowest
// priority, so linear mode pays the full population on every frame).
// It reports steady-state elapsed time and filters scanned per
// received packet.
func measureScale(nPorts int, m scaleMode) scaleResult {
	opts := pfdev.Options{Mode: m.mode, CoalesceBudget: m.coalesce}
	if m.coalesce > 0 {
		opts.CoalesceDelay = 4 * time.Millisecond
	}
	r := newRig(rigOptions{link: ethersim.Ether3Mb, pf: opts})
	count := ScaleCount
	const hotSocket = 0x50
	nFallback := 4
	if nPorts < 8 {
		nFallback = nPorts / 2
	}
	nConj := nPorts - nFallback
	r.nicB.QueueLimit = 4 * count

	var res scaleResult
	var t0, t1 time.Duration

	r.s.Spawn(r.hB, "dest", func(p *sim.Proc) {
		// Cold conjunction ports: tree-extractable, never match.
		for i := 0; i < nConj-1; i++ {
			port := r.devB.Open(p)
			port.SetFilter(p, pup.SocketFilter(ethersim.Ether3Mb, 10, uint32(0x1000+i)))
		}
		// Fallback ports: OR programs the decision table cannot
		// extract, so they are scanned linearly for every frame in
		// both modes; their sockets never carry traffic.
		for i := 0; i < nFallback; i++ {
			a, b := uint16(0x9000+2*i), uint16(0x9000+2*i+1)
			port := r.devB.Open(p)
			port.SetFilter(p, filter.Filter{Priority: 10, Program: filter.NewBuilder().
				PushWord(8).PushLit(a).Op(filter.EQ).
				PushWord(8).PushLit(b).Op(filter.EQ).
				Or().MustProgram()})
		}
		// The hot port, at the lowest priority: linear mode scans the
		// entire population before reaching it.
		hot := r.devB.Open(p)
		hot.SetFilter(p, pup.SocketFilter(ethersim.Ether3Mb, 1, hotSocket))
		hot.SetQueueLimit(p, 4*count)
		// The timeout must survive the worst cell: at 1024 ports the
		// linear scan alone costs >100 mSec per frame, and the sender
		// does not start until the whole population is bound.
		hot.SetTimeout(p, 5*time.Second)
		if m.ring {
			slots := 64
			reg := shm.NewRegistry(r.hB)
			seg, err := reg.Map(p, "scale-ring", hot.RingLayoutSize(slots))
			if err != nil {
				return
			}
			if err := hot.MapRing(p, seg, slots); err != nil {
				return
			}
		}
		for res.received < count {
			if m.ring {
				batch, err := hot.ReapBatch(p)
				if err != nil {
					return
				}
				res.received += len(batch)
			} else {
				batch, err := hot.ReadBatch(p)
				if err != nil {
					return
				}
				res.received += len(batch)
			}
			t1 = p.Now()
		}
	})
	r.s.Spawn(r.hA, "src", func(p *sim.Proc) {
		// Binding nPorts filters is setup, not measurement; so is the
		// one-time ring mapping.
		p.Sleep(time.Duration(60+3*nPorts) * time.Millisecond)
		t0 = p.Now()
		r.hB.ResetAccounting()
		frame := pupFrame(1, hotSocket)
		for i := 0; i < count; i++ {
			r.nicA.Transmit(frame)
			p.Sleep(700 * time.Microsecond)
		}
	})
	r.s.Run(60 * time.Second)

	if res.received > 0 {
		res.perPacket = (t1 - t0) / time.Duration(res.received)
		res.scans = float64(r.hB.Counters.FilterApplied) / float64(res.received)
	}
	return res
}

// ExpScale extends §3.2/§7 to three orders of magnitude of active
// ports: per-packet demultiplexing cost as the population grows from 2
// to 1024, under the linear priority scan, the merged decision table,
// ring delivery and interrupt coalescing.  Linear cost must grow with
// the population; table cost must stay pinned to the (constant-size)
// fallback set plus one tree walk.
func ExpScale() Table {
	t := Table{
		ID:    "exp-scale",
		Title: "Demultiplexing cost vs active port population (traffic to the last-scanned port)",
		Columns: []string{"Active ports", "linear", "scans",
			"table", "scans", "ring", "coalesced"},
		Notes: []string{
			"all but 4 ports bind tree-extractable socket conjunctions; 4 bind OR fallbacks that stay on the linear path in every mode",
			"shape: linear scans/packet equals the population; the merged table counts as one application per packet (fallback work is charged in instructions), so its per-packet cost is flat",
			"shape: ring and coalesced modes shave copy and kernel-entry cost but still pay the linear filter scan — orthogonal savings",
			fmt.Sprintf("%d packets per cell; every cell is a deterministic universe, swept across the parsim pool", ScaleCount),
		},
	}
	modes := scaleModes()
	type cellID struct {
		ports int
		mode  scaleMode
	}
	var cells []cellID
	for _, ports := range scalePorts {
		for _, m := range modes {
			cells = append(cells, cellID{ports, m})
		}
	}
	// Dispatch the heaviest cells (largest populations) first so the
	// pool is never left waiting on a late-started 1024-port universe;
	// the permutation is deterministic and results are written back to
	// sweep order, so the table is bit-identical at any worker count.
	order := make([]int, len(cells))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return cells[order[a]].ports > cells[order[b]].ports
	})
	permuted := parsim.Map(len(order), sweepWorkers(), func(i int) scaleResult {
		return measureScale(cells[order[i]].ports, cells[order[i]].mode)
	})
	results := make([]scaleResult, len(cells))
	for i, r := range permuted {
		results[order[i]] = r
	}
	for pi, ports := range scalePorts {
		byMode := make(map[string]scaleResult, len(modes))
		for mi, m := range modes {
			byMode[m.name] = results[pi*len(modes)+mi]
		}
		cell := func(name string) (string, string) {
			r := byMode[name]
			if r.received == 0 {
				return "n/a", "n/a"
			}
			return ms(r.perPacket), fmt.Sprintf("%.1f", r.scans)
		}
		lin, linScans := cell("linear")
		tab, tabScans := cell("table")
		ring, _ := cell("ring")
		coal, _ := cell("coalesced")
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", ports), lin, linScans, tab, tabScans, ring, coal,
		})
	}
	return t
}
