package bench

import (
	"fmt"
	"time"

	"repro/internal/ethersim"
	"repro/internal/filter"
	"repro/internal/pfdev"
	"repro/internal/pup"
	"repro/internal/sim"
	"repro/internal/workload"
)

// AblationEvalModes compares the four evaluation strategies of §4/§7
// on the same 20-filter receive workload: checked interpretation
// (production), prevalidated interpretation, closure compilation, and
// the merged decision table.  Virtual costs use the calibrated
// relative speeds; bench_test.go measures the real nanosecond ratios.
func AblationEvalModes() Table {
	t := Table{
		ID:      "abl-eval",
		Title:   "Ablation: filter evaluation strategies (20 active filters, traffic to the last)",
		Columns: []string{"Strategy", "elapsed per packet"},
		Notes: []string{
			"§7: prevalidation removes per-instruction checks; compilation removes decode; the decision table makes cost independent of the filter population",
		},
	}
	for _, m := range []struct {
		mode pfdev.EvalMode
		name string
	}{
		{pfdev.EvalChecked, "checked interpreter (§4)"},
		{pfdev.EvalFast, "prevalidated interpreter (§7)"},
		{pfdev.EvalCompiled, "compiled to closures (§7)"},
		{pfdev.EvalTable, "merged decision table (§7)"},
	} {
		per := measureEvalMode(m.mode, 20)
		t.Rows = append(t.Rows, []string{m.name, ms(per)})
	}
	return t
}

// measureEvalMode: 20 socket filters bound, traffic to the last-bound
// socket, measuring per-packet receive cost.
func measureEvalMode(mode pfdev.EvalMode, nPorts int) time.Duration {
	r := newRig(rigOptions{link: ethersim.Ether3Mb, pf: pfdev.Options{Mode: mode}})
	const count = 40
	received := 0
	var t0, t1 time.Duration

	r.s.Spawn(r.hB, "dest", func(p *sim.Proc) {
		var last *pfdev.Port
		for i := 0; i < nPorts; i++ {
			port := r.devB.Open(p)
			port.SetFilter(p, pup.SocketFilter(ethersim.Ether3Mb, 10, uint32(0x100+i)))
			port.SetQueueLimit(p, 4*count)
			last = port
		}
		last.SetTimeout(p, 300*time.Millisecond)
		for received < count {
			batch, err := last.ReadBatch(p)
			if err != nil {
				return
			}
			received += len(batch)
			t1 = p.Now()
		}
	})
	r.s.Spawn(r.hA, "src", func(p *sim.Proc) {
		p.Sleep(time.Duration(20+3*nPorts) * time.Millisecond)
		t0 = p.Now()
		pkt := pup.Packet{Type: 1,
			Dst: pup.PortAddr{Net: 1, Host: 2, Socket: uint32(0x100 + nPorts - 1)}}
		payload, _ := pkt.Marshal()
		frame := ethersim.Ether3Mb.Encode(2, 1, ethersim.EtherTypePup3Mb, payload)
		for i := 0; i < count; i++ {
			r.nicA.Transmit(frame)
			p.Sleep(700 * time.Microsecond)
		}
	})
	r.s.Run(5 * time.Second)
	if received == 0 {
		return 0
	}
	return (t1 - t0) / time.Duration(received)
}

// AblationShortCircuit compares figure 3-8's plain filter style with
// figure 3-9's short-circuit style on non-matching traffic — the case
// the operators were added for ("they would reduce the cost of
// interpreting filter predicates", §3.1).
func AblationShortCircuit() Table {
	t := Table{
		ID:      "abl-sc",
		Title:   "Ablation: short-circuit operators (instructions executed on a non-matching packet)",
		Columns: []string{"Filter style", "instrs on miss", "instrs on match"},
		Notes: []string{
			"fig 3-9 tests the most selective field first, so a miss costs 2 instructions instead of the full program",
		},
	}
	// Non-matching and matching Pup packets for both programs.
	miss := pupFrame(50, 36)
	match := pupFrame(50, 35)

	plain := filter.NewBuilder(). // fig 3-9's predicate without short-circuits
					WordEQ(8, 35).
					WordEQ(7, 0).And().
					WordEQ(1, 2).And().
					MustProgram()
	sc := filter.Fig39PupSocket().Program

	for _, f := range []struct {
		name string
		prog filter.Program
	}{{"plain (fig 3-8 style)", plain}, {"short-circuit (fig 3-9)", sc}} {
		rm := filter.Run(f.prog, miss)
		rh := filter.Run(f.prog, match)
		t.Rows = append(t.Rows, []string{f.name,
			fmt.Sprintf("%d", rm.Instrs), fmt.Sprintf("%d", rh.Instrs)})
	}
	// §7's other field-size conjecture: the 32-bit wide machine does
	// the socket in one comparison.
	wide := filter.WideSocketFilter(35)
	wm := filter.RunWide(wide, miss)
	wh := filter.RunWide(wide, match)
	t.Rows = append(t.Rows, []string{"32-bit wide machine (§7)",
		fmt.Sprintf("%d", wm.Instrs), fmt.Sprintf("%d", wh.Instrs)})
	return t
}

func pupFrame(pupType uint8, socket uint32) []byte {
	pkt := pup.Packet{Type: pupType,
		Dst: pup.PortAddr{Net: 1, Host: 2, Socket: socket}}
	payload, _ := pkt.Marshal()
	return ethersim.Ether3Mb.Encode(2, 1, ethersim.EtherTypePup3Mb, payload)
}

// AblationPriorityOrder measures §3.2's priority/busyness effect: with
// traffic concentrated on one port, placing its filter early (by
// priority or by automatic reordering) cuts the filters applied per
// packet.
func AblationPriorityOrder() Table {
	t := Table{
		ID:      "abl-prio",
		Title:   "Ablation: filter ordering (16 ports, 70% of traffic to one socket)",
		Columns: []string{"Ordering", "filters applied per packet", "filter instrs per packet"},
		Notes: []string{
			"§3.2: \"if priorities are assigned proportional to the likelihood that a filter will accept a packet, then the 'average' packet will match one of the first few filters\"",
		},
	}
	for _, cfg := range []struct {
		name    string
		reorder bool
		bias    bool // give the busy socket the highest priority
	}{
		{"uniform priorities, busy port last", false, false},
		{"busy port given highest priority", false, true},
		{"automatic busy-first reordering (§3.2)", true, false},
	} {
		applied, instrs := measureOrdering(cfg.reorder, cfg.bias)
		t.Rows = append(t.Rows, []string{cfg.name,
			fmt.Sprintf("%.1f", applied), fmt.Sprintf("%.1f", instrs)})
	}
	return t
}

func measureOrdering(reorder, bias bool) (appliedPerPkt, instrsPerPkt float64) {
	r := newRig(rigOptions{link: ethersim.Ether10Mb,
		pf: pfdev.Options{Reorder: reorder, ReorderEvery: 32}})
	const nPorts = 16
	const packets = 300

	sockets := make([]uint32, nPorts)
	for i := range sockets {
		sockets[i] = uint32(0x100 + i)
	}
	busy := sockets[nPorts-1] // bound last → tested last without help

	r.s.Spawn(r.hB, "ports", func(p *sim.Proc) {
		for i, sock := range sockets {
			prio := uint8(10)
			if bias && sock == busy {
				prio = 200
			}
			port := r.devB.Open(p)
			port.SetFilter(p, pup.SocketFilter(ethersim.Ether10Mb, prio, sock))
			port.SetQueueLimit(p, 2*packets)
			_ = i
		}
	})
	gen := workload.NewGenerator(7, ethersim.Ether10Mb, workload.Mix{PctPF: 100}, sockets)
	r.s.Spawn(r.hA, "traffic", func(p *sim.Proc) {
		p.Sleep(time.Duration(20+3*nPorts) * time.Millisecond)
		r.hB.ResetAccounting()
		for i := 0; i < packets; i++ {
			sock := busy
			if gen.SentPF%10 >= 7 { // 30% background spread
				sock = sockets[i%nPorts]
			}
			pkt := pup.Packet{Type: 1, Dst: pup.PortAddr{Net: 1, Host: 2, Socket: sock}}
			payload, _ := pkt.Marshal()
			r.nicA.Transmit(ethersim.Ether10Mb.Encode(2, 1, ethersim.EtherTypePup, payload))
			gen.SentPF++
			p.Sleep(4 * time.Millisecond)
		}
	})
	r.s.Run(5 * time.Minute)
	c := r.hB.Counters
	seen := c.PacketsMatched + r.devB.KernelDrops
	if seen == 0 {
		return 0, 0
	}
	return float64(c.FilterApplied) / float64(seen),
		float64(c.FilterInstrs) / float64(seen)
}
