package bench

import (
	"fmt"
	"time"

	"repro/internal/ethersim"
	"repro/internal/filter"
	"repro/internal/sim"
)

// Table61Send reproduces table 6-1: the cost of sending packets via
// the packet filter versus via (unchecksummed) UDP.  The packet filter
// "has a slight edge, since it does not need to choose a route for the
// datagram or compute a checksum."
func Table61Send() Table {
	t := Table{
		ID:      "t6-1",
		Title:   "Cost of sending packets",
		Columns: []string{"Total packet size", "via packet filter", "via UDP"},
		Notes: []string{
			"paper: 128B 1.9 vs 3.1 mSec; 1500B 3.6 vs 4.9 mSec",
			"shape: pf send is cheaper at both sizes; both grow ~linearly with size (copy cost)",
		},
	}
	for _, size := range []int{128, 1500} {
		pf := measureSendPF(size)
		udp := measureSendUDP(size)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d bytes", size), ms(pf), ms(udp),
		})
	}
	return t
}

// measureSendPF times a loop of packet-filter writes: one syscall, one
// copy-in, driver queuing — "control returns to the user once the
// packet is queued for transmission."
func measureSendPF(size int) time.Duration {
	r := newRig(rigOptions{link: ethersim.Ether10Mb})
	const count = 50
	var per time.Duration
	r.s.Spawn(r.hA, "sender", func(p *sim.Proc) {
		port := r.devA.Open(p)
		port.SetFilter(p, filter.Filter{Priority: 1,
			Program: filter.NewBuilder().RejectAll().MustProgram()})
		frame := ethersim.Ether10Mb.Encode(2, 1, testEtherType,
			make([]byte, size-ethersim.Ether10Mb.HeaderLen()))
		port.Write(p, frame) // warm-up
		t0 := p.Now()
		for i := 0; i < count; i++ {
			port.Write(p, frame)
		}
		per = (p.Now() - t0) / count
	})
	r.s.Run(10 * time.Second)
	return per
}

// measureSendUDP times the same loop through the kernel UDP/IP path.
func measureSendUDP(size int) time.Duration {
	r := newRig(rigOptions{link: ethersim.Ether10Mb, inet: true})
	const count = 50
	// Subtract the headers so the total frame size matches.
	payload := size - ethersim.Ether10Mb.HeaderLen() - 20 - 8
	var per time.Duration
	r.s.Spawn(r.hA, "sender", func(p *sim.Proc) {
		u, err := r.stackA.UDPBind(p, 1024)
		if err != nil {
			return
		}
		data := make([]byte, payload)
		u.Send(p, r.stackB.Addr(), 9, data) // warm-up
		t0 := p.Now()
		for i := 0; i < count; i++ {
			u.Send(p, r.stackB.Addr(), 9, data)
		}
		per = (p.Now() - t0) / count
	})
	r.s.Run(10 * time.Second)
	return per
}
