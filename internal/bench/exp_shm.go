package bench

import (
	"fmt"
	"time"

	"repro/internal/parsim"
	"repro/internal/vtime"
)

// ShmCount is the packet count per exp-shm measurement; cmd/pfbench
// -shm-n overrides it so CI can smoke-test the experiment cheaply.
var ShmCount = 60

// chargedCopy computes the virtual time a measurement window spent on
// kernel/user boundary copies, from the counter deltas and the cost
// model: Copies fixed charges plus the per-byte charge on BytesCopied.
func chargedCopy(c vtime.Counters, costs vtime.Costs) time.Duration {
	return time.Duration(c.Copies)*costs.CopyFixed +
		time.Duration(c.BytesCopied)*costs.CopyPerKB/1024
}

// ExpShm is the copy ablation the shm subsystem exists for: the §6
// receive measurements re-run with the kernel/user copies elided by
// shared-memory rings.  Four delivery paths per packet size —
// {copying, ring} × {per-packet, batched} — plus the table 6-8 user
// demultiplexer with its pipes replaced by a shared forwarding arena.
// The "copy cost/pkt" column is the charged boundary-copy time per
// received packet; the ring rows must show it collapsing while
// "mapped B/pkt" absorbs the payload.
func ExpShm() Table {
	t := Table{
		ID:    "exp-shm",
		Title: "Copy ablation: shared-memory rings vs copying delivery",
		Columns: []string{"Path", "Packet size", "per packet",
			"copies/pkt", "copy cost/pkt", "mapped B/pkt"},
		Notes: []string{
			"counterfactual to tables 6-8/6-9: §2 blames user-level demux costs on copies 'since Unix does not support memory sharing'",
			"shape: ring rows keep the syscall and wakeup costs but shed the per-byte copy charge; the win grows with packet size",
			"mapping is charged once at setup (vtime MapCost), not per packet; descriptors still cost RingDesc each",
		},
	}
	costs := vtime.DefaultCosts()
	type cell struct {
		name string
		size int
		cfg  recvSetup
	}
	var cells []cell
	add := func(name string, size int, cfg recvSetup) {
		cfg.size = size
		cfg.count = ShmCount
		cfg.gap = 500 * time.Microsecond
		if size >= 1500 {
			cfg.gap = 1500 * time.Microsecond
		}
		cells = append(cells, cell{name, size, cfg})
	}
	for _, size := range []int{128, 1500} {
		add("copy/read", size, recvSetup{})
		add("copy/batch", size, recvSetup{batch: true})
		add("ring/reap-1", size, recvSetup{ring: true})
		add("ring/batch", size, recvSetup{ring: true, batch: true})
	}
	// The table 6-8 user-level demultiplexer, pipes vs shared arena.
	add("demux/pipes", 1500, recvSetup{userProc: true, batch: true})
	add("demux/shm", 1500, recvSetup{userProc: true, shared: true})

	// One universe per delivery path; measured across the parsim pool,
	// rows assembled in path order.
	results := parsim.Map(len(cells), sweepWorkers(), func(i int) recvResult {
		return measureRecv(cells[i].cfg)
	})
	for i, c := range cells {
		res := results[i]
		if res.received == 0 {
			t.Rows = append(t.Rows, []string{c.name, fmt.Sprintf("%d bytes", c.size),
				"n/a", "n/a", "n/a", "n/a"})
			continue
		}
		n := time.Duration(res.received)
		t.Rows = append(t.Rows, []string{
			c.name,
			fmt.Sprintf("%d bytes", c.size),
			ms(res.perPacket),
			fmt.Sprintf("%.2f", float64(res.counters.Copies)/float64(res.received)),
			fmt.Sprintf("%.0f µSec", float64(chargedCopy(res.counters, costs)/n)/float64(time.Microsecond)),
			fmt.Sprintf("%.0f", float64(res.counters.BytesMapped)/float64(res.received)),
		})
	}
	return t
}
