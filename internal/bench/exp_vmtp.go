package bench

import (
	"fmt"
	"time"

	"repro/internal/demux"
	"repro/internal/ethersim"
	"repro/internal/filter"
	"repro/internal/sim"
	"repro/internal/vmtp"
	"repro/internal/vtime"
)

const (
	vmtpServerPort = 500
	vmtpClientPort = 600
	bulkChunk      = 16 * 1024  // bytes per bulk transaction ("reading the same segment of a file")
	bulkTotal      = 512 * 1024 // "In each trial about 1 Mb was transferred" (bits)
	smallCalls     = 30
)

// vmtpEngine selects an implementation for the comparisons of §6.3.
type vmtpEngine int

const (
	engUser vmtpEngine = iota
	engUserNoBatch
	engKernel
	engVKernel // kernel engine under V-kernel cost constants
	engUserViaDemux
)

func (e vmtpEngine) String() string {
	switch e {
	case engUser:
		return "Packet filter"
	case engUserNoBatch:
		return "Packet filter (no batching)"
	case engKernel:
		return "Unix kernel"
	case engVKernel:
		return "V kernel"
	default:
		return "Packet filter + user demux"
	}
}

// vmtpRun measures one engine: the minimal-transaction round-trip time
// and the bulk-transfer rate.
type vmtpRun struct {
	rtt  time.Duration
	rate float64 // KB/s
}

func runVMTP(e vmtpEngine, doBulk bool) vmtpRun {
	costs := vtime.DefaultCosts()
	if e == engVKernel {
		costs = vKernelCosts()
	}
	r := newRig(rigOptions{link: ethersim.Ether10Mb, costs: costs,
		kernelVMTP: e == engKernel || e == engVKernel})

	blob := make([]byte, bulkChunk)
	handler := func(op uint16, req []byte) []byte {
		if op == 2 {
			return blob
		}
		return nil
	}

	var out vmtpRun
	done := false

	// Server.
	switch e {
	case engKernel, engVKernel:
		r.s.Spawn(r.hB, "server", func(p *sim.Proc) {
			svc := r.vmtpB.Register(p, vmtpServerPort)
			svc.Serve(p, handler, 500*time.Millisecond)
		})
	default:
		r.s.Spawn(r.hB, "server", func(p *sim.Proc) {
			cfg := vmtp.DefaultUserConfig()
			cfg.Batch = e != engUserNoBatch
			ep, err := vmtp.NewUserEndpoint(p, r.devB, vmtpServerPort, cfg)
			if err != nil {
				return
			}
			ep.Serve(p, handler, 500*time.Millisecond)
		})
	}

	// Client: a warm-up call, then the timed small calls, then bulk.
	measure := func(p *sim.Proc, call func() error) {
		call() // warm-up
		t0 := p.Now()
		for i := 0; i < smallCalls; i++ {
			if call() != nil {
				return
			}
		}
		out.rtt = (p.Now() - t0) / smallCalls
		done = true
	}
	measureBulk := func(p *sim.Proc, call func() (int, error)) {
		t0 := p.Now()
		total := 0
		for total < bulkTotal {
			n, err := call()
			if err != nil || n == 0 {
				return
			}
			total += n
		}
		out.rate = rate(total, p.Now()-t0)
	}

	switch e {
	case engKernel, engVKernel:
		r.s.Spawn(r.hA, "client", func(p *sim.Proc) {
			p.Sleep(5 * time.Millisecond)
			measure(p, func() error {
				_, err := r.vmtpA.Call(p, r.nicB.Addr(), vmtpServerPort, 0, nil, vmtpClientPort)
				return err
			})
			if doBulk {
				measureBulk(p, func() (int, error) {
					resp, err := r.vmtpA.Call(p, r.nicB.Addr(), vmtpServerPort, 2, nil, vmtpClientPort)
					return len(resp), err
				})
			}
		})
	case engUserViaDemux:
		runVMTPViaDemux(r, &out, doBulk)
	default:
		r.s.Spawn(r.hA, "client", func(p *sim.Proc) {
			cfg := vmtp.DefaultUserConfig()
			cfg.Batch = e != engUserNoBatch
			ep, err := vmtp.NewUserEndpoint(p, r.devA, vmtpClientPort, cfg)
			if err != nil {
				return
			}
			p.Sleep(5 * time.Millisecond)
			measure(p, func() error {
				_, err := ep.Call(p, r.nicB.Addr(), vmtpServerPort, 0, nil)
				return err
			})
			if doBulk {
				measureBulk(p, func() (int, error) {
					resp, err := ep.Call(p, r.nicB.Addr(), vmtpServerPort, 2, nil)
					return len(resp), err
				})
			}
		})
	}

	r.s.Run(30 * time.Second)
	_ = done
	return out
}

// runVMTPViaDemux simulates table 6-5's configuration: "using an extra
// process to receive packets, which are then passed to the actual VMTP
// process via a Unix pipe.  (In this case, the server process was not
// modified.)"
func runVMTPViaDemux(r *rig, out *vmtpRun, doBulk bool) {
	d := demux.New(r.devA, demux.Config{PipeCap: 128})
	client := d.Register(func(frame []byte) bool {
		_, _, typ, payload, err := ethersim.Ether10Mb.Decode(frame)
		if err != nil || typ != ethersim.EtherTypeVMTP {
			return false
		}
		h, _, err := vmtp.Unmarshal(payload)
		return err == nil && h.DstPort == vmtpClientPort
	})
	r.s.Spawn(r.hA, "demux", func(p *sim.Proc) {
		d.Run(p, vmtp.PortFilter(ethersim.Ether10Mb, 50, vmtpClientPort),
			500*time.Millisecond)
	})

	r.s.Spawn(r.hA, "client", func(p *sim.Proc) {
		// The client keeps a send-only packet-filter port; receives
		// come through the demultiplexer's pipe.
		port := r.devA.Open(p)
		port.SetFilter(p, filter.Filter{Priority: 1,
			Program: filter.NewBuilder().RejectAll().MustProgram()})

		nextID := uint32(0)
		perPkt := vmtp.DefaultUserConfig().PerPacketCPU
		call := func(op uint16) (int, error) {
			nextID++
			h := vmtp.Header{DstPort: vmtpServerPort, TransID: nextID,
				Kind: vmtp.KindRequest, Count: 1, Op: op, SrcPort: vmtpClientPort}
			p.Consume(perPkt)
			frame := ethersim.Ether10Mb.Encode(r.nicB.Addr(), r.nicA.Addr(),
				ethersim.EtherTypeVMTP, vmtp.Marshal(h, nil))
			if err := port.Write(p, frame); err != nil {
				return 0, err
			}
			segs := make(map[uint16][]byte)
			var count uint16 = 0xFFFF
			total := 0
			for len(segs) == 0 || len(segs) < int(count) {
				raw := client.Recv(p)
				p.Consume(perPkt)
				_, _, _, payload, err := ethersim.Ether10Mb.Decode(raw)
				if err != nil {
					continue
				}
				rh, data, err := vmtp.Unmarshal(payload)
				if err != nil || rh.Kind != vmtp.KindResponse || rh.TransID != nextID {
					continue
				}
				if _, dup := segs[rh.Index]; !dup {
					segs[rh.Index] = data
					total += len(data)
				}
				count = rh.Count
			}
			return total, nil
		}

		p.Sleep(5 * time.Millisecond)
		call(0) // warm-up
		t0 := p.Now()
		for i := 0; i < smallCalls; i++ {
			call(0)
		}
		out.rtt = (p.Now() - t0) / smallCalls
		if doBulk {
			t0 = p.Now()
			total := 0
			for total < bulkTotal {
				n, err := call(2)
				if err != nil || n == 0 {
					return
				}
				total += n
			}
			out.rate = rate(total, p.Now()-t0)
		}
	})
	// Server side runs the standard user-level endpoint; the caller
	// spawned it already.
}

// Table62VMTPSmall reproduces table 6-2: minimal VMTP transactions.
func Table62VMTPSmall() Table {
	t := Table{
		ID:      "t6-2",
		Title:   "Relative performance of VMTP for small messages",
		Columns: []string{"VMTP implementation", "elapsed time/operation"},
		Notes: []string{
			"paper: packet filter 14.7, Unix kernel 7.44, V kernel 7.32 mSec",
			"shape: user-level implementation costs ~2x the kernel implementations, which are close to each other",
		},
	}
	for _, e := range []vmtpEngine{engUser, engKernel, engVKernel} {
		res := runVMTP(e, false)
		t.Rows = append(t.Rows, []string{e.String(), ms(res.rtt)})
	}
	return t
}

// Table63VMTPBulk reproduces table 6-3: bulk data transfer.
func Table63VMTPBulk() Table {
	t := Table{
		ID:      "t6-3",
		Title:   "Relative performance of VMTP for bulk data transfer",
		Columns: []string{"Implementation", "Rate"},
		Notes: []string{
			"paper: pf VMTP 112, Unix kernel VMTP 336, V kernel VMTP 278, Unix kernel TCP 222 KB/s",
			"shape: kernel implementations ~3x the user-level rate; TCP (which checksums) lands between",
		},
	}
	for _, e := range []vmtpEngine{engUser, engKernel, engVKernel} {
		res := runVMTP(e, true)
		name := e.String() + " VMTP"
		if e == engUser {
			name = "Packet filter VMTP"
		}
		t.Rows = append(t.Rows, []string{name, fmt.Sprintf("%.0f Kbytes/sec", res.rate)})
	}
	tcp := runTCPBulk(ethersim.Ether10Mb, 1024, 256*1024)
	t.Rows = append(t.Rows, []string{"Unix kernel TCP", fmt.Sprintf("%.0f Kbytes/sec", tcp)})
	return t
}

// Table64Batching reproduces table 6-4: the effect of received-packet
// batching on user-level VMTP bulk throughput.
func Table64Batching() Table {
	t := Table{
		ID:      "t6-4",
		Title:   "Effect of received-packet batching on performance",
		Columns: []string{"Batching", "Rate"},
		Notes: []string{
			"paper: 112 vs 64 KB/s (+75%)",
			"shape: batching buys a large fraction of throughput back",
		},
	}
	with := runVMTP(engUser, true)
	without := runVMTP(engUserNoBatch, true)
	t.Rows = append(t.Rows,
		[]string{"Yes", fmt.Sprintf("%.0f Kbytes/sec", with.rate)},
		[]string{"No", fmt.Sprintf("%.0f Kbytes/sec", without.rate)})
	return t
}

// Table65UserDemux reproduces table 6-5: VMTP through an extra
// user-level demultiplexing process.
func Table65UserDemux() Table {
	t := Table{
		ID:      "t6-5",
		Title:   "Effect of user-level demultiplexing on performance",
		Columns: []string{"Demultiplexing done in", "Elapsed/minimal op", "Bulk rate"},
		Notes: []string{
			"paper: kernel 14.72 mSec / 112 KB/s; user process 18.08 mSec / 25 KB/s",
			"shape: small extra latency for short messages, large bulk-throughput collapse",
		},
	}
	k := runVMTP(engUser, true)
	u := runVMTP(engUserViaDemux, true)
	t.Rows = append(t.Rows,
		[]string{"Kernel", ms(k.rtt), fmt.Sprintf("%.0f Kbytes/sec", k.rate)},
		[]string{"User process", ms(u.rtt), fmt.Sprintf("%.0f Kbytes/sec", u.rate)})
	return t
}

// Fig23DomainCrossings reproduces figure 2-3: kernel-resident
// protocols confine overhead packets to the kernel.
func Fig23DomainCrossings() Table {
	t := Table{
		ID:      "fig2-3",
		Title:   "Kernel-resident protocols reduce domain crossing (one 16KB VMTP transaction)",
		Columns: []string{"Implementation", "domain crossings at client", "syscalls", "copies"},
		Notes: []string{
			"shape: the kernel engine crosses per message; the user engine per packet",
		},
	}
	for _, e := range []vmtpEngine{engUser, engKernel} {
		costs := vtime.DefaultCosts()
		r := newRig(rigOptions{link: ethersim.Ether10Mb, costs: costs,
			kernelVMTP: e == engKernel})
		blob := make([]byte, bulkChunk)
		handler := func(op uint16, req []byte) []byte { return blob }
		var delta vtime.Counters
		if e == engKernel {
			r.s.Spawn(r.hB, "server", func(p *sim.Proc) {
				svc := r.vmtpB.Register(p, vmtpServerPort)
				svc.Serve(p, handler, 300*time.Millisecond)
			})
			r.s.Spawn(r.hA, "client", func(p *sim.Proc) {
				p.Sleep(5 * time.Millisecond)
				before := r.hA.Counters
				r.vmtpA.Call(p, r.nicB.Addr(), vmtpServerPort, 2, nil, vmtpClientPort)
				delta = r.hA.Counters.Sub(before)
			})
		} else {
			r.s.Spawn(r.hB, "server", func(p *sim.Proc) {
				ep, _ := vmtp.NewUserEndpoint(p, r.devB, vmtpServerPort, vmtp.DefaultUserConfig())
				ep.Serve(p, handler, 300*time.Millisecond)
			})
			r.s.Spawn(r.hA, "client", func(p *sim.Proc) {
				ep, _ := vmtp.NewUserEndpoint(p, r.devA, vmtpClientPort, vmtp.DefaultUserConfig())
				p.Sleep(5 * time.Millisecond)
				before := r.hA.Counters
				ep.Call(p, r.nicB.Addr(), vmtpServerPort, 2, nil)
				delta = r.hA.Counters.Sub(before)
			})
		}
		r.s.Run(5 * time.Second)
		name := "user-level (packet filter)"
		if e == engKernel {
			name = "kernel-resident"
		}
		t.Rows = append(t.Rows, []string{name,
			fmt.Sprintf("%d", delta.DomainCrossings),
			fmt.Sprintf("%d", delta.Syscalls),
			fmt.Sprintf("%d", delta.Copies)})
	}
	return t
}
