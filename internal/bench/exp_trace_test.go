package bench

import (
	"testing"

	"repro/internal/trace"
)

// TestTracedProfileMatchesExperiment checks the tentpole parity
// guarantee: the trace-derived §6.1 profile reports exactly the same
// kernel-time split as the experiment's own accounting, because both
// are fed from the same completion points in the simulator.
func TestTracedProfileMatchesExperiment(t *testing.T) {
	tr := trace.New()
	Tracer = tr
	defer func() { Tracer = nil }()

	res := runProfile(12, 800, true, 0.4)
	if res.pfPackets == 0 {
		t.Fatal("profile workload saw no packet-filter traffic")
	}

	pf, ok := tr.Snapshot().PF("B")
	if !ok {
		t.Fatal("trace snapshot has no packet-filter profile for host B")
	}
	if pf.Packets != res.pfPackets {
		t.Errorf("packets: trace %d, experiment %d", pf.Packets, res.pfPackets)
	}
	if pf.PerPacket != res.perPacket {
		t.Errorf("per-packet: trace %v, experiment %v", pf.PerPacket, res.perPacket)
	}
	if pf.FilterFraction != res.filterFraction {
		t.Errorf("filter fraction: trace %v, experiment %v",
			pf.FilterFraction, res.filterFraction)
	}
	if pf.AvgPredicates != res.avgPredicates {
		t.Errorf("avg predicates: trace %v, experiment %v",
			pf.AvgPredicates, res.avgPredicates)
	}
}
