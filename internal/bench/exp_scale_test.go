package bench

import (
	"reflect"
	"strconv"
	"strings"
	"testing"
)

// scaleSmoke shrinks the sweep for tests: full port counts, tiny
// packet count per cell.
func scaleSmoke(t *testing.T, workers int) Table {
	t.Helper()
	oldCount, oldWorkers := ScaleCount, Workers
	ScaleCount, Workers = 6, workers
	defer func() { ScaleCount, Workers = oldCount, oldWorkers }()
	return ExpScale()
}

// TestExpScaleParallelBitIdentical is the sweep's acceptance gate: the
// table produced by the parallel sweep is cell-for-cell identical to
// the sequential one.
func TestExpScaleParallelBitIdentical(t *testing.T) {
	seq := scaleSmoke(t, 1)
	par := scaleSmoke(t, 4)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("exp-scale diverged between sequential and parallel sweeps:\n%v\nvs\n%v", seq, par)
	}
}

// TestExpScaleShape pins the curve the experiment exists to show:
// linear cost and scans grow with the port population while the
// decision-table cost stays flat, across >= 6 port counts up to 1024.
func TestExpScaleShape(t *testing.T) {
	tab := scaleSmoke(t, 0)
	if len(tab.Rows) < 6 {
		t.Fatalf("want >= 6 port counts, got %d", len(tab.Rows))
	}
	if got := tab.Rows[len(tab.Rows)-1][0]; got != "1024" {
		t.Fatalf("largest population = %s, want 1024", got)
	}
	msOf := func(cell string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(cell, " mSec"), 64)
		if err != nil {
			t.Fatalf("unparseable cell %q: %v", cell, err)
		}
		return v
	}
	var prevLinear float64
	var firstTable, lastTable float64
	for i, row := range tab.Rows {
		ports, _ := strconv.Atoi(row[0])
		linear, scans, table := msOf(row[1]), row[2], msOf(row[3])
		if i > 0 && linear <= prevLinear {
			t.Errorf("%s ports: linear cost %.2f did not grow (prev %.2f)", row[0], linear, prevLinear)
		}
		prevLinear = linear
		if want := strconv.Itoa(ports) + ".0"; scans != want {
			t.Errorf("%s ports: linear scans/pkt = %s, want %s", row[0], scans, want)
		}
		if i == 0 {
			firstTable = table
		}
		lastTable = table
	}
	// Flat within 2x while the population grows 512x.
	if lastTable > 2*firstTable {
		t.Errorf("table cost not flat: %.2f mSec at %s ports vs %.2f at %s",
			lastTable, tab.Rows[len(tab.Rows)-1][0], firstTable, tab.Rows[0][0])
	}
}
