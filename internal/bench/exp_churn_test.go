package bench

import (
	"testing"
	"time"
)

// TestChurnShape pins the claims the churn experiment exists to make,
// at the largest population: incremental maintenance keeps rebuild
// stalls off the packet path entirely, while the full-rebuild baseline
// pays a whole-population recompile per churn event.
func TestChurnShape(t *testing.T) {
	incr := measureChurn(1024, false)
	full := measureChurn(1024, true)

	if incr.received != ChurnCount || full.received != ChurnCount {
		t.Fatalf("lost frames: incr=%d full=%d want %d",
			incr.received, full.received, ChurnCount)
	}
	// The acceptance metric: incremental is at least 5x better than
	// full rebuild on packet-path stall time (in fact it never stalls —
	// patches happen at setfilter/close syscall time).
	if full.stall <= 0 {
		t.Fatalf("full-rebuild baseline shows no rebuild stall (%v)", full.stall)
	}
	if 5*incr.stall > full.stall {
		t.Errorf("incremental stall %v not ≥5x better than full-rebuild stall %v",
			incr.stall, full.stall)
	}
	if incr.stall != 0 {
		t.Errorf("incremental maintenance stalled the packet path: %v", incr.stall)
	}
	// Per-packet cost must be no worse than the rebuild baseline, and
	// tail latency strictly better (rebuilds land on the hot path).
	if incr.perPacket > full.perPacket {
		t.Errorf("incremental per-packet %v worse than full-rebuild %v",
			incr.perPacket, full.perPacket)
	}
	if incr.worstLat >= full.worstLat {
		t.Errorf("incremental worst latency %v not better than full-rebuild %v",
			incr.worstLat, full.worstLat)
	}
	if incr.worstLat > 5*time.Millisecond {
		t.Errorf("incremental worst latency %v should stay at steady-state delivery cost", incr.worstLat)
	}
	// Mechanism check: incremental churn is all patches and no rebuilds;
	// the baseline is all rebuilds and no patches.
	if incr.builds != 0 || incr.patches == 0 {
		t.Errorf("incremental: builds=%d patches=%d, want 0 builds and >0 patches",
			incr.builds, incr.patches)
	}
	if full.builds == 0 || full.patches != 0 {
		t.Errorf("full rebuild: builds=%d patches=%d, want >0 builds and 0 patches",
			full.builds, full.patches)
	}
	if full.work <= incr.work {
		t.Errorf("full-rebuild work %d not greater than incremental work %d",
			full.work, incr.work)
	}
}

// TestChurnParsimIdentity renders the whole exp-churn table at one and
// at four parsim workers: every cell is its own deterministic universe,
// so the sweep must be byte-identical regardless of pool width.
func TestChurnParsimIdentity(t *testing.T) {
	oldWorkers, oldCount := Workers, ChurnCount
	defer func() { Workers, ChurnCount = oldWorkers, oldCount }()
	ChurnCount = 8

	Workers = 1
	seq := ExpChurn().String()
	Workers = 4
	par := ExpChurn().String()
	if seq != par {
		t.Errorf("exp-churn not byte-identical across worker counts:\n-- workers=1 --\n%s\n-- workers=4 --\n%s", seq, par)
	}
}
