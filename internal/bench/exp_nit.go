package bench

import (
	"fmt"
	"time"

	"repro/internal/demux"
	"repro/internal/ethersim"
	"repro/internal/filter"
	"repro/internal/pup"
	"repro/internal/sim"
)

// AblationNIT contrasts the packet filter with a NIT-style tap.  §5.4
// notes that Sun's Network Interface Tap "is similar to the packet
// filter but only allows filtering on a single packet field!" — so a
// host running eight Pup streams either demultiplexes all eight in the
// kernel (packet filter) or takes every Pup packet through one
// type-field tap and sub-demultiplexes by socket in a user process,
// paying figure 2-1's pipe costs.
func AblationNIT() Table {
	t := Table{
		ID:      "abl-nit",
		Title:   "Ablation: arbitrary predicates vs a single-field tap (8 Pup streams)",
		Columns: []string{"Demultiplexer", "elapsed per packet"},
		Notes: []string{
			"a single-field (NIT-style) tap cannot separate sockets, forcing a user-level sub-demultiplexer; " +
				"the packet filter's arbitrary predicates keep the whole job in the kernel",
		},
	}
	pf := measureNIT(false)
	nit := measureNIT(true)
	t.Rows = append(t.Rows,
		[]string{"packet filter (per-socket kernel filters)", ms(pf)},
		[]string{"NIT-style tap + user sub-demux", ms(nit)})
	return t
}

// measureNIT drives Pup traffic round-robin over 8 sockets and
// measures per-packet delivery cost to the destination processes.
func measureNIT(nitStyle bool) time.Duration {
	r := newRig(rigOptions{link: ethersim.Ether3Mb})
	const nSockets = 8
	const count = 64
	received := 0
	var t0, t1 time.Duration
	bump := func(p *sim.Proc) {
		received++
		t1 = p.Now()
	}

	if nitStyle {
		// One type-field tap; a user process sub-demultiplexes by
		// socket and forwards through pipes.
		d := demux.New(r.devB, demux.Config{Batch: true, PipeCap: 2 * count,
			DecisionCPU: 30 * time.Microsecond})
		for i := 0; i < nSockets; i++ {
			sock := uint32(0x100 + i)
			client := d.Register(func(frame []byte) bool {
				_, _, _, payload, err := ethersim.Ether3Mb.Decode(frame)
				if err != nil {
					return false
				}
				pkt, err := pup.Unmarshal(payload)
				return err == nil && pkt.Dst.Socket == sock
			})
			r.s.Spawn(r.hB, fmt.Sprintf("dst-%d", i), func(p *sim.Proc) {
				for {
					client.Recv(p)
					bump(p)
				}
			})
		}
		// The tap's one allowed field: the Ethernet type word.
		tap := filter.Filter{Priority: 10,
			Program: filter.NewBuilder().
				WordEQ(ethersim.Ether3Mb.TypeWord(), ethersim.EtherTypePup3Mb).
				MustProgram()}
		r.s.Spawn(r.hB, "nit-demux", func(p *sim.Proc) {
			d.Run(p, tap, 300*time.Millisecond)
		})
	} else {
		for i := 0; i < nSockets; i++ {
			sock := uint32(0x100 + i)
			r.s.Spawn(r.hB, fmt.Sprintf("dst-%d", i), func(p *sim.Proc) {
				s, err := pup.Open(p, r.devB,
					pup.PortAddr{Net: 1, Host: 2, Socket: sock}, 10)
				if err != nil {
					return
				}
				s.Batch = true
				s.SetTimeout(p, 300*time.Millisecond)
				for {
					if _, err := s.Recv(p); err != nil {
						return
					}
					bump(p)
				}
			})
		}
	}

	r.s.Spawn(r.hA, "src", func(p *sim.Proc) {
		p.Sleep(40 * time.Millisecond)
		t0 = p.Now()
		for i := 0; i < count; i++ {
			pkt := pup.Packet{Type: 1,
				Dst: pup.PortAddr{Net: 1, Host: 2, Socket: uint32(0x100 + i%nSockets)}}
			payload, _ := pkt.Marshal()
			r.nicA.Transmit(ethersim.Ether3Mb.Encode(2, 1, ethersim.EtherTypePup3Mb, payload))
			p.Sleep(2 * time.Millisecond)
		}
	})
	r.s.Run(3 * time.Second)
	if received == 0 {
		return 0
	}
	return (t1 - t0) / time.Duration(received)
}

// AblationWriteBatch measures §7's write-batching proposal: sending 32
// small packets one write at a time versus one batched write.
func AblationWriteBatch() Table {
	t := Table{
		ID:      "abl-wbatch",
		Title:   "Ablation: write batching (32 x 128-byte sends)",
		Columns: []string{"Mode", "elapsed per packet", "syscalls", "copies"},
		Notes: []string{
			"§7: \"a write-batching option (to send several packets in one system call) might also improve performance\"",
		},
	}
	for _, batched := range []bool{false, true} {
		per, sys, copies := measureWriteBatch(batched)
		name := "per-packet writes"
		if batched {
			name = "one batched write"
		}
		t.Rows = append(t.Rows, []string{name, ms(per),
			fmt.Sprintf("%d", sys), fmt.Sprintf("%d", copies)})
	}
	return t
}

func measureWriteBatch(batched bool) (per time.Duration, syscalls, copies uint64) {
	r := newRig(rigOptions{link: ethersim.Ether10Mb})
	const count = 32
	frame := ethersim.Ether10Mb.Encode(2, 1, testEtherType, make([]byte, 114))
	var elapsed time.Duration
	var c0 = r.hA.Counters
	r.s.Spawn(r.hA, "sender", func(p *sim.Proc) {
		port := r.devA.Open(p)
		port.SetFilter(p, filter.Filter{Priority: 1,
			Program: filter.NewBuilder().RejectAll().MustProgram()})
		c0 = r.hA.Counters
		t0 := p.Now()
		if batched {
			frames := make([][]byte, count)
			for i := range frames {
				frames[i] = frame
			}
			port.WriteBatch(p, frames)
		} else {
			for i := 0; i < count; i++ {
				port.Write(p, frame)
			}
		}
		elapsed = p.Now() - t0
	})
	r.s.Run(2 * time.Second)
	d := r.hA.Counters.Sub(c0)
	return elapsed / count, d.Syscalls, d.Copies
}
