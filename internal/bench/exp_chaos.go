package bench

import (
	"bytes"
	"fmt"
	"time"

	"repro/internal/ethersim"
	"repro/internal/faults"
	"repro/internal/inet"
	"repro/internal/parsim"
	"repro/internal/pup"
	"repro/internal/sim"
)

// The chaos experiment: goodput and retransmission cost of a bulk
// transfer as the wire degrades from clean to 30% combined faults
// (drop + corrupt + dup + delay in equal parts), comparing the
// user-level packet-filter path (checksummed BSP) against the
// kernel-resident path (TCP).  The paper's efficiency argument (§6) is
// about the *clean* path; this row shows how much of the pf-vs-kernel
// gap survives when both protocols spend their time retransmitting —
// the fault machinery is deterministic, so the numbers reproduce
// exactly.

// chaosBytes is the payload both protocols carry per cell.
const chaosBytes = 16 * 1024

// chaosSeed fixes the fault schedule; the experiment is a function of
// (seed, rate) like every faults.Engine run.
const chaosSeed = 42

// chaosBSP runs a checksummed BSP transfer A->B over a faulted wire,
// returning elapsed virtual time and retransmissions.
func chaosBSP(rate float64) (time.Duration, int, bool) {
	r := newRig(rigOptions{link: ethersim.Ether10Mb})
	eng := faults.New(r.s, chaosSeed, faults.Plan{Name: "bench", Wire: faults.Uniform(rate)})
	eng.AttachWire(r.net)

	data := bytes.Repeat([]byte{0x42}, chaosBytes)
	dst := pup.PortAddr{Net: 1, Host: 2, Socket: 0x500}
	var start, end time.Duration
	var retrans int
	ok := false

	r.s.Spawn(r.hB, "bsp-recv", func(p *sim.Proc) {
		sock, err := pup.Open(p, r.devB, dst, 10)
		if err != nil {
			return
		}
		sock.Checksummed = true
		rcv := pup.NewBSPReceiver(sock, pup.DefaultBSPConfig())
		var got bytes.Buffer
		for {
			seg, err := rcv.Receive(p, 5*time.Second)
			if err != nil {
				break
			}
			got.Write(seg)
		}
		ok = bytes.Equal(got.Bytes(), data)
		end = p.Now()
	})
	r.s.Spawn(r.hA, "bsp-send", func(p *sim.Proc) {
		sock, err := pup.Open(p, r.devA, pup.PortAddr{Net: 1, Host: 1, Socket: 0x501}, 10)
		if err != nil {
			return
		}
		sock.Checksummed = true
		snd := pup.NewBSPSender(sock, dst, pup.DefaultBSPConfig())
		start = p.Now()
		if snd.Send(p, data) != nil {
			return
		}
		snd.Close(p)
		retrans = snd.Stats.Retransmissions
	})
	r.s.Run(120 * time.Second)
	return end - start, retrans, ok
}

// chaosTCP runs the same payload A->B through the kernel TCP stack
// over an identically faulted wire.
func chaosTCP(rate float64) (time.Duration, int, bool) {
	r := newRig(rigOptions{link: ethersim.Ether10Mb, inet: true})
	eng := faults.New(r.s, chaosSeed, faults.Plan{Name: "bench", Wire: faults.Uniform(rate)})
	eng.AttachWire(r.net)

	data := bytes.Repeat([]byte{0x42}, chaosBytes)
	var start, end time.Duration
	var retrans int
	ok := false

	r.s.Spawn(r.hB, "tcpd", func(p *sim.Proc) {
		l, err := r.stackB.TCPListen(p, 80, inet.DefaultTCPConfig())
		if err != nil {
			return
		}
		c, err := l.Accept(p, 10*time.Second)
		if err != nil {
			return
		}
		c.SetTimeout(10 * time.Second)
		var got bytes.Buffer
		for got.Len() < len(data) {
			chunk, err := c.Read(p, 0)
			if err != nil {
				break
			}
			got.Write(chunk)
		}
		ok = bytes.Equal(got.Bytes(), data)
		end = p.Now()
	})
	r.s.Spawn(r.hA, "tcp-client", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		c, err := r.stackA.TCPDial(p, r.stackB.Addr(), 80, 4000, inet.DefaultTCPConfig())
		if err != nil {
			return
		}
		start = p.Now()
		c.Write(p, data)
		c.Close(p)
		retrans = int(c.Retransmits)
	})
	r.s.Run(120 * time.Second)
	return end - start, retrans, ok
}

// ChaosGoodput regenerates the chaos row: goodput and retransmissions
// versus combined fault rate for pf-BSP and kernel TCP.
func ChaosGoodput() Table {
	t := Table{
		ID:    "chaos",
		Title: "Goodput under hostile networks: user-level BSP (packet filter) vs kernel TCP",
		Columns: []string{"Fault rate", "pf-BSP goodput", "pf-BSP retrans",
			"kernel-TCP goodput", "kernel-TCP retrans"},
		Notes: []string{
			fmt.Sprintf("%d KB transfer; faults split equally across drop/corrupt/dup/delay (seed %d)",
				chaosBytes/1024, chaosSeed),
			"corrupted frames are caught by the Pup/TCP checksums and recovered by retransmission",
			"deterministic: every cell reproduces bit-identically from (seed, rate)",
		},
	}
	rates := []float64{0, 0.05, 0.10, 0.20, 0.30}
	// Each (rate, protocol) cell is its own simulation universe; the
	// sweep fans out across the parsim pool and rows are assembled in
	// rate order, so the table is identical at any worker count.
	type cell struct {
		d  time.Duration
		r  int
		ok bool
	}
	cells := parsim.Map(2*len(rates), sweepWorkers(), func(i int) cell {
		var c cell
		if i%2 == 0 {
			c.d, c.r, c.ok = chaosBSP(rates[i/2])
		} else {
			c.d, c.r, c.ok = chaosTCP(rates[i/2])
		}
		return c
	})
	for i, rate := range rates {
		bsp, tcp := cells[2*i], cells[2*i+1]
		bspT, bspR, bspOK := bsp.d, bsp.r, bsp.ok
		tcpT, tcpR, tcpOK := tcp.d, tcp.r, tcp.ok
		bspG, tcpG := kbps(chaosBytes, bspT), kbps(chaosBytes, tcpT)
		if !bspOK {
			bspG = "FAILED"
		}
		if !tcpOK {
			tcpG = "FAILED"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f%%", rate*100),
			bspG, fmt.Sprintf("%d", bspR),
			tcpG, fmt.Sprintf("%d", tcpR),
		})
	}
	return t
}
