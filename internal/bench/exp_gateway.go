package bench

import (
	"time"

	"repro/internal/ethersim"
	"repro/internal/pfdev"
	"repro/internal/pup"
	"repro/internal/sim"
	"repro/internal/vtime"
)

// AblationGateway measures the cost of Pup internetwork routing
// through a user-level gateway: the echo round-trip on one segment
// versus across two segments.  The delta is two traversals of a
// gateway whose forwarding path is receive-through-the-packet-filter,
// user-level decision, retransmit — a direct application of the
// paper's cost model to a routing daemon.
func AblationGateway() Table {
	t := Table{
		ID:      "abl-gw",
		Title:   "Ablation: user-level internetwork routing (Pup echo RTT)",
		Columns: []string{"Path", "round trip"},
		Notes: []string{
			"the cross-network delta is two user-level gateway traversals (4 extra packet-filter deliveries per round trip)",
		},
	}
	same := gatewayEcho(false)
	cross := gatewayEcho(true)
	t.Rows = append(t.Rows,
		[]string{"same segment", ms(same)},
		[]string{"across a gateway", ms(cross)})
	return t
}

// gatewayEcho measures an echo RTT either within net 1 or from net 1
// to net 2 through a gateway.
func gatewayEcho(cross bool) time.Duration {
	s := sim.New(vtime.DefaultCosts())
	net1 := ethersim.New(s, ethersim.Ether10Mb)
	net2 := ethersim.New(s, ethersim.Ether10Mb)
	client := s.NewHost("client")
	server := s.NewHost("server")
	gwHost := s.NewHost("gw")

	devClient := pfdev.Attach(net1.Attach(client, 0x0A), nil, pfdev.Options{})
	serverNet := net1
	serverNetNum := uint8(1)
	if cross {
		serverNet = net2
		serverNetNum = 2
	}
	devServer := pfdev.Attach(serverNet.Attach(server, 0x0B), nil, pfdev.Options{})

	gw := pup.NewGateway(
		pup.GatewayPort{Dev: pfdev.Attach(net1.Attach(gwHost, 0x7E), nil, pfdev.Options{}), Net: 1},
		pup.GatewayPort{Dev: pfdev.Attach(net2.Attach(gwHost, 0x7F), nil, pfdev.Options{}), Net: 2},
	)
	s.Spawn(gwHost, "gw", func(p *sim.Proc) { gw.Run(p, 200*time.Millisecond) })

	serverAddr := pup.PortAddr{Net: serverNetNum, Host: 0x0B, Socket: 0x30}
	s.Spawn(server, "echod", func(p *sim.Proc) {
		sock, err := pup.Open(p, devServer, serverAddr, 10)
		if err != nil {
			return
		}
		sock.Gateway = 0x7F
		sock.EchoServer(p, 150*time.Millisecond)
	})

	var rtt time.Duration
	s.Spawn(client, "client", func(p *sim.Proc) {
		sock, err := pup.Open(p, devClient, pup.PortAddr{Net: 1, Host: 0x0A, Socket: 0x99}, 10)
		if err != nil {
			return
		}
		sock.Gateway = 0x7E
		p.Sleep(15 * time.Millisecond)
		sock.Echo(p, serverAddr, []byte("x"), 80*time.Millisecond, 2) // warm-up
		const calls = 20
		t0 := p.Now()
		for i := 0; i < calls; i++ {
			sock.Echo(p, serverAddr, []byte("x"), 80*time.Millisecond, 2)
		}
		rtt = (p.Now() - t0) / calls
	})
	s.Run(5 * time.Second)
	return rtt
}
