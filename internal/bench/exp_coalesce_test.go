package bench

import (
	"reflect"
	"testing"
	"time"
)

// TestCoalesceAmortizesKernelEntries pins the tentpole's acceptance
// criterion at the bench workload: with a poll budget of 4 at the
// paced burst workload, kernel entries and context switches per packet
// drop at least 2x against the uncoalesced path, while a single
// isolated packet is delivered at exactly the uncoalesced latency.
func TestCoalesceAmortizesKernelEntries(t *testing.T) {
	const gap = 3 * time.Millisecond
	base := recvSetup{size: 128, count: 32, gap: gap}
	coal := base
	coal.coalesce = 4
	coal.coalesceDelay = 2 * gap * 4

	plain := measureRecv(base)
	batched := measureRecv(coal)
	if plain.received != batched.received || plain.received == 0 {
		t.Fatalf("unequal counts: plain=%d coalesced=%d", plain.received, batched.received)
	}
	if batched.counters.Bursts == 0 {
		t.Fatal("coalesced run formed no bursts")
	}
	if 2*batched.counters.KernelEntries > plain.counters.KernelEntries {
		t.Errorf("kernel entries did not drop 2x: %d coalesced vs %d plain",
			batched.counters.KernelEntries, plain.counters.KernelEntries)
	}
	if 2*batched.counters.ContextSwitches > plain.counters.ContextSwitches {
		t.Errorf("context switches did not drop 2x: %d coalesced vs %d plain",
			batched.counters.ContextSwitches, plain.counters.ContextSwitches)
	}

	basIso, coalIso := base, coal
	basIso.count, coalIso.count = 1, 1
	pi, ci := measureRecv(basIso), measureRecv(coalIso)
	if pi.received != 1 || ci.received != 1 {
		t.Fatalf("isolated runs received %d/%d packets", pi.received, ci.received)
	}
	if pi.perPacket != ci.perPacket {
		t.Errorf("isolated latency changed: %v coalesced vs %v plain", ci.perPacket, pi.perPacket)
	}
}

// TestExpCoalesceDeterministic pins bit-identical reproduction of the
// whole ablation table.
func TestExpCoalesceDeterministic(t *testing.T) {
	old := CoalesceCount
	CoalesceCount = 12
	defer func() { CoalesceCount = old }()
	a, b := ExpCoalesce(), ExpCoalesce()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two exp-coalesce runs differ:\n%v\nvs\n%v", a, b)
	}
	if len(a.Rows) != 5 {
		t.Fatalf("expected 5 rows, got %d", len(a.Rows))
	}
	for _, row := range a.Rows {
		if row[2] == "n/a" {
			t.Errorf("row %v received nothing", row)
		}
	}
	// Every row's isolated-latency cell must be identical to the
	// uncoalesced baseline's.
	for _, row := range a.Rows[1:] {
		if row[6] != a.Rows[0][6] {
			t.Errorf("isolated latency diverged: budget %s row says %s, baseline %s",
				row[0], row[6], a.Rows[0][6])
		}
	}
}
