package bench

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/vtime"
)

// TestRingReducesChargedCopyTime pins the acceptance criterion of the
// shm subsystem: at equal packet counts, the ring path spends strictly
// less charged copy time per received packet than the copying path —
// at both table 6-8 packet sizes, batched and unbatched.
func TestRingReducesChargedCopyTime(t *testing.T) {
	costs := vtime.DefaultCosts()
	for _, size := range []int{128, 1500} {
		for _, batch := range []bool{false, true} {
			base := recvSetup{size: size, count: 24, batch: batch}
			ringCfg := base
			ringCfg.ring = true
			cp := measureRecv(base)
			rg := measureRecv(ringCfg)
			if cp.received != rg.received || cp.received == 0 {
				t.Fatalf("size %d batch %v: unequal counts copy=%d ring=%d",
					size, batch, cp.received, rg.received)
			}
			cpCost := chargedCopy(cp.counters, costs) / time.Duration(cp.received)
			rgCost := chargedCopy(rg.counters, costs) / time.Duration(rg.received)
			if rgCost >= cpCost {
				t.Errorf("size %d batch %v: ring copy cost %v/pkt not below copying %v/pkt",
					size, batch, rgCost, cpCost)
			}
			if rg.counters.BytesMapped == 0 || rg.counters.RingReaps == 0 {
				t.Errorf("size %d batch %v: ring path idle: %+v", size, batch, rg.counters)
			}
			if perPkt := rg.counters.BytesMapped / uint64(rg.received); perPkt < uint64(size) {
				t.Errorf("size %d batch %v: mapped %d B/pkt, want >= frame size", size, batch, perPkt)
			}
		}
	}
}

// TestExpShmDeterministic pins bit-identical reproduction: the whole
// experiment run twice yields the same table, cell for cell.
func TestExpShmDeterministic(t *testing.T) {
	old := ShmCount
	ShmCount = 12
	defer func() { ShmCount = old }()
	a, b := ExpShm(), ExpShm()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two exp-shm runs differ:\n%v\nvs\n%v", a, b)
	}
	if len(a.Rows) != 10 {
		t.Fatalf("expected 10 rows, got %d", len(a.Rows))
	}
	for _, row := range a.Rows {
		if row[2] == "n/a" {
			t.Errorf("row %v received nothing", row)
		}
	}
}
