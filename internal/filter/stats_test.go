package filter

import (
	"strings"
	"testing"
)

func TestMixOf(t *testing.T) {
	// PUSHWORD+3, PUSHLIT|CAND <lit>, PUSHWORD+5, PUSHLIT|EQ <lit>
	p := Program{
		MkInstr(PushWord(3), NOP),
		MkInstr(PUSHLIT, CAND), 0x1234,
		MkInstr(PushWord(5), NOP),
		MkInstr(PUSHLIT, EQ), 0x5678,
	}
	m := MixOf(p)
	if m.Words != 6 || m.Instrs != 4 {
		t.Fatalf("words/instrs = %d/%d, want 6/4", m.Words, m.Instrs)
	}
	if m.Actions["PUSHLIT"] != 2 || m.Actions["PUSHWORD+3"] != 1 || m.Actions["PUSHWORD+5"] != 1 {
		t.Fatalf("actions = %v", m.Actions)
	}
	if m.Ops["CAND"] != 1 || m.Ops["EQ"] != 1 || len(m.Ops) != 2 {
		t.Fatalf("ops = %v", m.Ops)
	}
	if m.ShortCircuits != 1 || m.Comparisons != 1 {
		t.Fatalf("short-circuits/comparisons = %d/%d", m.ShortCircuits, m.Comparisons)
	}
	s := m.String()
	for _, want := range []string{"6 words", "4 instrs", "PUSHLIT:2", "CAND:1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
	// A literal operand that happens to encode like an instruction
	// must not be classified.
	if MixOf(Program{MkInstr(PUSHLIT, NOP), MkInstr(PushWord(9), EQ)}).Instrs != 1 {
		t.Fatal("operand word was classified as an instruction")
	}
}
