package filter

import (
	"math/rand"
	"testing"
)

// churnFilter draws a filter from the shapes the table cares about:
// tree-compatible conjunctions, fallback programs, accept/reject-all,
// and the occasional invalid program (which must match nothing).
func churnFilter(r *rand.Rand) Filter {
	pri := uint8(r.Intn(4))
	switch r.Intn(8) {
	case 0:
		return Filter{Program: NewBuilder().AcceptAll().MustProgram(), Priority: pri}
	case 1:
		return Filter{Program: NewBuilder().RejectAll().MustProgram(), Priority: pri}
	case 2: // fallback shape: a range test the extractor rejects
		return Filter{Program: NewBuilder().
			PushWord(8).PushLit(uint16(r.Intn(64))).Op(GT).MustProgram(), Priority: pri}
	case 3: // invalid: stack underflow
		return Filter{Program: Program{MkInstr(NOPUSH, AND)}, Priority: pri}
	default: // tree shape: 1-3 word equality conjunction
		b := NewBuilder().WordEQ(1, PupEtherType)
		n := 1 + r.Intn(2)
		for i := 0; i < n; i++ {
			b = b.WordEQ(7+r.Intn(2), uint16(r.Intn(4))).And()
		}
		return Filter{Program: b.MustProgram(), Priority: pri}
	}
}

// TestTableIncremental drives a long random open/close churn through
// Insert/Remove and pins, after every step, that the patched table
// matches packets identically (accept set, order, edges, fallback
// runs) to a table built from scratch over the same slot layout — and
// that both agree with running every live program through the checked
// interpreter.
func TestTableIncremental(t *testing.T) {
	r := rand.New(rand.NewSource(271828))
	tbl := BuildTable(nil)
	// ref mirrors the slot layout the incremental table maintains.
	var ref []Filter
	live := make(map[int]bool)

	pkt := func() []byte {
		b := make([]byte, 2*(2+r.Intn(10)))
		r.Read(b)
		if r.Intn(2) == 0 { // bias toward matchable PUP frames
			b[2], b[3] = 0, byte(PupEtherType)
			if len(b) >= 18 {
				b[14], b[15] = 0, byte(r.Intn(4))
				b[16], b[17] = 0, byte(r.Intn(4))
			}
		}
		return b
	}

	check := func(step int) {
		// The patched table must match identically to a from-scratch
		// build over the same slot layout (dead slots modeled as
		// invalid programs, which match nothing).  Tree SHAPE may
		// differ — node word choices depend on build history — so
		// Edges is not compared, only verdicts and fallback runs.
		fresh := BuildTable(ref)
		p := pkt()
		got, want := tbl.MatchStats(p), fresh.MatchStats(p)
		if len(got.Idxs) != len(want.Idxs) {
			t.Fatalf("step %d: incremental %v != fresh %v", step, got.Idxs, want.Idxs)
		}
		for i := range got.Idxs {
			if got.Idxs[i] != want.Idxs[i] {
				t.Fatalf("step %d: incremental %v != fresh %v", step, got.Idxs, want.Idxs)
			}
		}
		if len(got.Linear) != len(want.Linear) {
			t.Fatalf("step %d: %d fallback runs != %d", step, len(got.Linear), len(want.Linear))
		}
		for i := range got.Linear {
			if got.Linear[i] != want.Linear[i] {
				t.Fatalf("step %d: fallback run %d: %+v != %+v", step, i, got.Linear[i], want.Linear[i])
			}
		}
		// And both must agree with the interpreter on every live slot.
		for slot, f := range ref {
			if !live[slot] {
				continue
			}
			wantAcc := false
			if _, err := Validate(f.Program, ValidateOptions{}); err == nil {
				wantAcc = Run(f.Program, p).Accept
			}
			gotAcc := false
			for _, idx := range got.Idxs {
				if idx == slot {
					gotAcc = true
				}
			}
			if gotAcc != wantAcc {
				t.Fatalf("step %d slot %d: table says %v, interpreter says %v (prog %v pkt %v)",
					step, slot, gotAcc, wantAcc, f.Program, p)
			}
		}
	}

	for step := 0; step < 600; step++ {
		if len(live) == 0 || r.Intn(3) > 0 {
			f := churnFilter(r)
			var slot int
			before := tbl.Work()
			tbl, slot = tbl.Insert(f)
			if w := tbl.Work() - before; w <= 0 {
				t.Fatalf("step %d: insert charged no work", step)
			}
			if slot == len(ref) {
				ref = append(ref, f)
			} else {
				ref[slot] = f
			}
			live[slot] = true
		} else {
			slots := make([]int, 0, len(live))
			for s := range live {
				slots = append(slots, s)
			}
			// map order is random but we need determinism for the
			// pinned seed: pick the smallest of three draws.
			slot := len(ref)
			for s := range live {
				if s < slot {
					slot = s
				}
			}
			_ = slots
			tbl = tbl.Remove(slot)
			// A dead slot matches nothing; model it in the reference
			// layout as an invalid program (Filter{} would be the
			// empty program, which accepts everything).
			ref[slot] = Filter{Program: Program{MkInstr(NOPUSH, AND)}}
			delete(live, slot)
			if tbl.Live(slot) {
				t.Fatalf("step %d: slot %d still live after Remove", step, slot)
			}
		}
		if step%7 == 0 {
			check(step)
		}
	}

	// Patch cost must be path-proportional: with ~hundreds of live
	// filters, one insert+remove pair must cost far less than a full
	// rebuild of the same population.
	full := BuildTable(ref).Work()
	before := tbl.Work()
	t2, slot := tbl.Insert(churnFilter(r))
	t2 = t2.Remove(slot)
	patch := t2.Work() - before
	if patch*5 > full {
		t.Fatalf("patch work %d not <5x cheaper than full rebuild %d", patch, full)
	}
}

// TestTableRemoveDeadSlot pins that removing an unassigned or already
// dead slot is a harmless no-op clone.
func TestTableRemoveDeadSlot(t *testing.T) {
	tbl := BuildTable([]Filter{DstSocketFilter(10, 35)})
	t2 := tbl.Remove(0)
	t3 := t2.Remove(0)
	t4 := t3.Remove(99)
	pkt := make([]byte, 32)
	pkt[3] = byte(PupEtherType)
	pkt[17] = 35
	if got := tbl.Match(pkt); len(got) != 1 || got[0] != 0 {
		t.Fatalf("original table lost its filter: %v", got)
	}
	for i, tt := range []*Table{t2, t3, t4} {
		if got := tt.Match(pkt); len(got) != 0 {
			t.Fatalf("table %d still matches after remove: %v", i, got)
		}
	}
}

// TestTableSlotReuse pins that a freed slot is reused by the next
// insert and that the recycled slot matches its new filter only.
func TestTableSlotReuse(t *testing.T) {
	tbl := BuildTable([]Filter{DstSocketFilter(10, 35), DstSocketFilter(10, 36)})
	tbl = tbl.Remove(0)
	tbl, slot := tbl.Insert(DstSocketFilter(10, 37))
	if slot != 0 {
		t.Fatalf("freed slot not reused: got %d", slot)
	}
	mk := func(lo byte) []byte {
		pkt := make([]byte, 32)
		pkt[3] = byte(PupEtherType)
		pkt[17] = lo
		return pkt
	}
	if got := tbl.Match(mk(37)); len(got) != 1 || got[0] != 0 {
		t.Fatalf("recycled slot 0 does not match socket 37: %v", got)
	}
	if got := tbl.Match(mk(35)); len(got) != 0 {
		t.Fatalf("removed filter still matches: %v", got)
	}
	if got := tbl.Match(mk(36)); len(got) != 1 || got[0] != 1 {
		t.Fatalf("slot 1 disturbed: %v", got)
	}
}
