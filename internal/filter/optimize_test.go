package filter

import (
	"math/rand"
	"testing"
)

func TestOptimizeNarrowsLiterals(t *testing.T) {
	// PUSHLIT 0 / 1 / FFFF / FF00 / 00FF become the wired constants.
	p := NewBuilder().
		PushLit(0).PushLit(1).Op(OR).
		PushLit(0xFFFF).Op(AND).
		PushLit(0xFF00).Op(OR).
		PushLit(0x00FF).Op(OR).
		MustProgram()
	q := Optimize(p, ValidateOptions{})
	if len(q) >= len(p) {
		t.Fatalf("no shrink: %d -> %d words", len(p), len(q))
	}
	for pc := 0; pc < len(q); pc++ {
		if q[pc].Action() == PUSHLIT {
			t.Fatalf("PUSHLIT of a wired constant survived:\n%s", q)
		}
		if q[pc].Action().HasOperand() {
			pc++
		}
	}
}

func TestOptimizeFusesPushOp(t *testing.T) {
	// "PUSHWORD+1 / EQ-with-lit" written as three separate words
	// fuses down to the paper's two-word idiom.
	p := Program{
		MkInstr(PushWord(1), NOP),
		MkInstr(PUSHLIT, NOP), 2,
		MkInstr(NOPUSH, EQ),
	}
	q := Optimize(p, ValidateOptions{})
	want := Program{
		MkInstr(PushWord(1), NOP),
		MkInstr(PUSHLIT, EQ), 2,
	}
	if !q.Equal(want) {
		t.Fatalf("got:\n%s\nwant:\n%s", q, want)
	}
}

func TestOptimizePreservesPaperExamples(t *testing.T) {
	// The paper's listings are already in fused form: optimization
	// must leave them semantically intact (and not longer).
	for _, f := range []Filter{Fig38PupTypeRange(), Fig39PupSocket()} {
		q := Optimize(f.Program, ValidateOptions{})
		if len(q) > len(f.Program) {
			t.Fatalf("optimizer grew a program: %d -> %d", len(f.Program), len(q))
		}
		for _, pt := range []uint8{0, 1, 50, 100, 101} {
			pkt := pupPacket(pt, 35)
			if Run(f.Program, pkt).Accept != Run(q, pkt).Accept {
				t.Fatalf("semantics changed for PupType %d", pt)
			}
		}
	}
}

func TestOptimizeInvalidUnchanged(t *testing.T) {
	bad := Program{MkInstr(NOPUSH, EQ)}
	if !Optimize(bad, ValidateOptions{}).Equal(bad) {
		t.Fatal("invalid program modified")
	}
}

// TestOptimizeEquivalence: over random valid programs and packets, the
// optimized program accepts exactly the same packets.
func TestOptimizeEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for i := 0; i < 2000; i++ {
		p := genProgram(r, 1+r.Intn(12))
		q := Optimize(p, ValidateOptions{})
		if _, err := Validate(q, ValidateOptions{}); err != nil {
			t.Fatalf("optimizer produced invalid program: %v\nfrom:\n%s\nto:\n%s", err, p, q)
		}
		if len(q) > len(p) {
			t.Fatalf("optimizer grew program %d -> %d", len(p), len(q))
		}
		for j := 0; j < 8; j++ {
			pkt := genPacket(r)
			a := Run(p, pkt).Accept
			b := Run(q, pkt).Accept
			if a != b {
				t.Fatalf("divergence (orig=%v opt=%v) on %d-byte packet\norig:\n%s\nopt:\n%s",
					a, b, len(pkt), p, q)
			}
		}
	}
}

func TestOptimizeShrinksGeneratedCode(t *testing.T) {
	// The expression-compiler style "push, push, op" sequences are
	// the optimizer's bread and butter.
	verbose := NewBuilder().
		PushWord(1).PushLit(2).Op(EQ).
		PushWord(3).PushLit(0).Op(GT).
		Op(AND).
		MustProgram()
	q := Optimize(verbose, ValidateOptions{})
	if len(q) >= len(verbose) {
		t.Fatalf("no shrink: %d -> %d\n%s", len(verbose), len(q), q)
	}
}
