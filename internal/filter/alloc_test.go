package filter

import (
	"encoding/binary"
	"testing"
)

// allocPkt builds a raw packet whose words satisfy DstSocketFilter's
// conjunction for the given socket: word 1 = PupEtherType, words 7/8 =
// the socket halves.
func allocPkt(socket uint32) []byte {
	pkt := make([]byte, 64)
	binary.BigEndian.PutUint16(pkt[2:], PupEtherType)
	binary.BigEndian.PutUint16(pkt[14:], uint16(socket>>16))
	binary.BigEndian.PutUint16(pkt[16:], uint16(socket))
	return pkt
}

// allocFilters is a small mixed population: tree-extractable
// conjunctions plus an OR fallback, so Table.Match exercises both the
// tree walk and the linear fallback path.
func allocFilters() []Filter {
	fs := []Filter{
		DstSocketFilter(10, 35),
		DstSocketFilter(10, 36),
		DstSocketFilter(10, 37),
	}
	fs = append(fs, Filter{Priority: 5, Program: NewBuilder().
		PushWord(8).PushLit(40).Op(EQ).
		PushWord(8).PushLit(41).Op(EQ).
		Or().MustProgram()})
	return fs
}

// TestFilterHotPathsAllocationFree pins the per-packet filter paths at
// zero heap allocations in steady state: the checked interpreter, the
// compiled closures, and the merged decision table, on both accepting
// and rejecting packets.
func TestFilterHotPathsAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc pins only run without -race")
	}
	prog := DstSocketFilter(10, 35).Program
	hit, miss := allocPkt(35), allocPkt(99)

	if a := testing.AllocsPerRun(200, func() {
		Run(prog, hit)
		Run(prog, miss)
	}); a != 0 {
		t.Errorf("filter.Run allocates %.1f/run, want 0", a)
	}

	c, err := Compile(prog, ValidateOptions{}, Env{})
	if err != nil {
		t.Fatal(err)
	}
	// One warm run lets the cstate pool reach steady state.
	c.Run(hit)
	if a := testing.AllocsPerRun(200, func() {
		c.Run(hit)
		c.Run(miss)
	}); a != 0 {
		t.Errorf("Compiled.Run allocates %.1f/run, want 0", a)
	}

	tbl := BuildTable(allocFilters())
	tbl.Match(hit) // warm the scratch slices
	tbl.Match(miss)
	if a := testing.AllocsPerRun(200, func() {
		tbl.Match(hit)
		tbl.Match(miss)
	}); a != 0 {
		t.Errorf("Table.Match allocates %.1f/run, want 0", a)
	}
}

func BenchmarkFilterRun(b *testing.B) {
	prog := DstSocketFilter(10, 35).Program
	pkt := allocPkt(35)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Run(prog, pkt)
	}
}

func BenchmarkCompiledRun(b *testing.B) {
	c, err := Compile(DstSocketFilter(10, 35).Program, ValidateOptions{}, Env{})
	if err != nil {
		b.Fatal(err)
	}
	pkt := allocPkt(35)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Run(pkt)
	}
}

func BenchmarkTableMatch(b *testing.B) {
	tbl := BuildTable(allocFilters())
	pkt := allocPkt(35)
	tbl.Match(pkt)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl.Match(pkt)
	}
}
