package filter

import (
	"errors"
	"strings"
	"testing"
)

func TestValidateAcceptsPaperExamples(t *testing.T) {
	for _, f := range []Filter{Fig38PupTypeRange(), Fig39PupSocket()} {
		info, err := Validate(f.Program, ValidateOptions{})
		if err != nil {
			t.Fatalf("paper example rejected: %v", err)
		}
		if info.MaxStack < 1 || info.MaxStack > StackDepth {
			t.Errorf("MaxStack = %d out of range", info.MaxStack)
		}
	}
}

func TestValidateInfo(t *testing.T) {
	f := Fig38PupTypeRange()
	info, err := Validate(f.Program, ValidateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if info.MaxWord != 3 {
		t.Errorf("MaxWord = %d, want 3", info.MaxWord)
	}
	if info.Instrs != 10 {
		t.Errorf("Instrs = %d, want 10 (12 words - 2 literals)", info.Instrs)
	}
	if info.UsesIndirect {
		t.Error("UsesIndirect = true for a base-language program")
	}
	// Figure 3-8 peaks at four words: two pending booleans plus the
	// word-3 push and its mask, just before the AND collapses them.
	if info.MaxStack != 4 {
		t.Errorf("MaxStack = %d, want 4", info.MaxStack)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		p    Program
		err  error
	}{
		{"nopush ends empty", Program{MkInstr(NOPUSH, NOP)}, ErrEmptyStack},
		{"op consumes all", Program{MkInstr(PUSHONE, NOP), MkInstr(PUSHONE, AND), MkInstr(NOPUSH, AND)}, ErrUnderflow},
		{"missing literal", Program{MkInstr(PUSHLIT, NOP)}, ErrMissingOper},
		{"missing byte index", Program{MkInstr(PUSHBYTE, NOP)}, ErrMissingOper},
		{"underflow", Program{MkInstr(NOPUSH, EQ)}, ErrUnderflow},
		{"pushind on empty", Program{MkInstr(PUSHIND, NOP)}, ErrUnderflow},
		{"bad action", Program{MkInstr(Action(13), NOP)}, ErrBadAction},
		{"bad op", Program{MkInstr(PUSHONE, NOP), MkInstr(PUSHONE, Op(40))}, ErrBadOp},
		{"extension op gated", Program{MkInstr(PUSHONE, NOP), MkInstr(PUSHONE, ADD)}, ErrBadOp},
	}
	ext := ValidateOptions{Extensions: true}
	for _, c := range cases {
		opt := ValidateOptions{}
		if c.name == "missing byte index" || c.name == "pushind on empty" {
			opt = ext
		}
		if _, err := Validate(c.p, opt); !errors.Is(err, c.err) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.err)
		}
	}

	long := make(Program, MaxProgramLen+1)
	for i := range long {
		long[i] = MkInstr(PUSHONE, NOP)
	}
	if _, err := Validate(long, ValidateOptions{}); !errors.Is(err, ErrTooLong) {
		t.Errorf("too long: err = %v", err)
	}

	deep := make(Program, StackDepth+1)
	for i := range deep {
		deep[i] = MkInstr(PUSHONE, NOP)
	}
	if _, err := Validate(deep, ValidateOptions{}); !errors.Is(err, ErrStackOverflow) {
		t.Errorf("overflow: err = %v", err)
	}
}

func TestValidateExtensionGate(t *testing.T) {
	p := Program{MkInstr(PUSHPKTLEN, NOP)}
	if _, err := Validate(p, ValidateOptions{}); err == nil {
		t.Error("extended action accepted without Extensions")
	}
	if _, err := Validate(p, ValidateOptions{Extensions: true}); err != nil {
		t.Errorf("extended action rejected with Extensions: %v", err)
	}
}

func TestMustValidatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustValidate did not panic on an invalid program")
		}
	}()
	MustValidate(Program{MkInstr(NOPUSH, EQ)}, ValidateOptions{})
}

func TestFilterMarshalRoundTrip(t *testing.T) {
	f := Fig39PupSocket()
	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 2+2*len(f.Program) {
		t.Fatalf("encoded length = %d", len(data))
	}
	var g Filter
	if err := g.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if g.Priority != f.Priority || !g.Program.Equal(f.Program) {
		t.Error("round trip mismatch")
	}

	if err := g.UnmarshalBinary(nil); err == nil {
		t.Error("nil unmarshal accepted")
	}
	if err := g.UnmarshalBinary(data[:len(data)-1]); err == nil {
		t.Error("truncated unmarshal accepted")
	}
}

func TestProgramString(t *testing.T) {
	s := Fig39PupSocket().Program.String()
	for _, want := range []string{"PUSHWORD+8", "PUSHLIT|CAND, 35", "PUSHZERO|CAND", "PUSHLIT|EQ, 2"} {
		if !strings.Contains(s, want) {
			t.Errorf("disassembly missing %q:\n%s", want, s)
		}
	}
}

func TestProgramCloneEqual(t *testing.T) {
	p := Fig38PupTypeRange().Program
	q := p.Clone()
	if !p.Equal(q) {
		t.Fatal("clone not equal")
	}
	q[0] = MkInstr(PUSHONE, NOP)
	if p.Equal(q) {
		t.Fatal("mutating clone affected original comparison")
	}
	if p[0] == q[0] {
		t.Fatal("clone shares storage")
	}
	if p.Equal(p[:len(p)-1]) {
		t.Fatal("prefix compared equal")
	}
}
