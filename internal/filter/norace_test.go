//go:build !race

package filter

// raceEnabled gates allocation assertions; see race_test.go.
const raceEnabled = false
