//go:build race

package filter

// raceEnabled gates allocation assertions: the race detector's
// instrumentation allocates, so AllocsPerRun checks are meaningless
// under -race.
const raceEnabled = true
