package filter

import (
	"errors"
	"testing"
)

func TestWideSocketFilter(t *testing.T) {
	p := WideSocketFilter(0x0001_0023)
	r := RunWide(p, pupPacket(5, 0x0001_0023))
	if r.Err != nil || !r.Accept {
		t.Fatalf("accept=%v err=%v", r.Accept, r.Err)
	}
	if r.Instrs != 4 {
		t.Fatalf("instrs = %d, want 4 (vs 6 on the 16-bit machine)", r.Instrs)
	}
	if RunWide(p, pupPacket(5, 0x0001_0024)).Accept {
		t.Fatal("wrong socket accepted")
	}
	// Miss exits on the single CAND after 2 instructions.
	if r := RunWide(p, pupPacket(5, 0x0001_0024)); r.Instrs != 2 {
		t.Fatalf("miss instrs = %d, want 2", r.Instrs)
	}
	// The 16-bit equivalent agrees on acceptance across sockets.
	narrow := DstSocketFilter(10, 0x0001_0023).Program
	for _, sock := range []uint32{0x0001_0023, 0x0023, 0x0001_0024, 0} {
		pkt := pupPacket(5, sock)
		if RunWide(p, pkt).Accept != Run(narrow, pkt).Accept {
			t.Fatalf("wide and narrow disagree on socket %08x", sock)
		}
	}
}

func TestWideSemantics(t *testing.T) {
	// 32-bit comparisons: values above 0xFFFF compare correctly.
	p := WideProgram{
		MkInstr(PUSHLONG, NOP), 0,
		MkInstr(PUSHLONGLIT, GT), 0x0001, 0x0000,
	}
	if r := RunWide(p, words(0x0001, 0x0001)); !r.Accept || r.Err != nil {
		t.Fatalf("0x10001 > 0x10000: accept=%v err=%v", r.Accept, r.Err)
	}
	if RunWide(p, words(0x0000, 0xFFFF)).Accept {
		t.Fatal("0xFFFF > 0x10000 accepted")
	}
	// PUSHWORD zero-extends into 32 bits.
	p = WideProgram{
		MkInstr(PushWord(0), NOP),
		MkInstr(PUSHLONGLIT, EQ), 0, 0xBEEF,
	}
	if !RunWide(p, words(0xBEEF)).Accept {
		t.Fatal("zero-extension broken")
	}
}

func TestWideErrors(t *testing.T) {
	cases := []struct {
		p   WideProgram
		err error
	}{
		{WideProgram{MkInstr(PUSHLONG, NOP)}, ErrMissingOper},
		{WideProgram{MkInstr(PUSHLONGLIT, NOP), 1}, ErrMissingOper},
		{WideProgram{MkInstr(PUSHLONG, NOP), 50}, ErrWordIndex}, // beyond packet
		{WideProgram{MkInstr(NOPUSH, EQ)}, ErrUnderflow},
		{WideProgram{MkInstr(Action(13), NOP)}, ErrBadAction},
		{WideProgram{MkInstr(PUSHONE, NOP), MkInstr(PUSHONE, ADD)}, ErrBadOp}, // no arith in wide machine
		{WideProgram{MkInstr(NOPUSH, NOP)}, ErrEmptyStack},
	}
	for i, c := range cases {
		r := RunWide(c.p, words(1, 2, 3))
		if r.Accept || !errors.Is(r.Err, c.err) {
			t.Errorf("case %d: accept=%v err=%v want %v", i, r.Accept, r.Err, c.err)
		}
	}
	// Empty wide program accepts.
	if !RunWide(WideProgram{}, nil).Accept {
		t.Error("empty wide program rejected")
	}
	// PUSHLONG needs TWO readable words.
	p := WideProgram{MkInstr(PUSHLONG, NOP), 0}
	if r := RunWide(p, []byte{1, 2}); !errors.Is(r.Err, ErrWordIndex) {
		t.Errorf("half-readable long: %v", r.Err)
	}
}

func TestWideInstructionSavings(t *testing.T) {
	// The §7 conjecture quantified: accepted packets cost 4 vs 6
	// instructions; the common miss costs 2 on both machines.
	wide := WideSocketFilter(35)
	narrow := Fig39PupSocket().Program
	hit := pupPacket(1, 35)
	wi, ni := RunWide(wide, hit).Instrs, Run(narrow, hit).Instrs
	if wi >= ni {
		t.Fatalf("wide machine not cheaper on hit: %d vs %d", wi, ni)
	}
}
