package filter

import (
	"bytes"
	"errors"
	"testing"
)

// Native fuzz targets.  `go test` runs the seed corpus as ordinary
// tests; `go test -fuzz=FuzzRun ./internal/filter` explores further.
// The properties mirror the kernel's obligations: arbitrary programs
// and packets must never panic the interpreter, and the §7 fast paths
// must agree with checked interpretation whenever the program is
// valid.

func FuzzRun(f *testing.F) {
	fig38, _ := Fig38PupTypeRange().Program.Clone(), 0
	seed := make([]byte, 2*len(fig38))
	for i, w := range fig38 {
		seed[2*i] = byte(w >> 8)
		seed[2*i+1] = byte(w)
	}
	f.Add(seed, []byte{0x01, 0x02, 0x00, 0x02, 0x00, 0x1A})
	f.Add([]byte{}, []byte{})
	f.Add([]byte{0x00, 0x41}, []byte{1, 2, 3}) // bare EQ: underflow

	f.Fuzz(func(t *testing.T, progBytes, pkt []byte) {
		prog := make(Program, len(progBytes)/2)
		for i := range prog {
			prog[i] = Word(uint16(progBytes[2*i])<<8 | uint16(progBytes[2*i+1]))
		}
		checked := Run(prog, pkt)              // must not panic
		RunExt(prog, pkt, Env{HeaderWords: 2}) // must not panic
		if checked.Err != nil && checked.Accept {
			// Errors must reject: "or an error is detected, it
			// returns" — never deliver on a faulted evaluation.
			t.Fatalf("evaluation errored (%v) yet accepted the packet", checked.Err)
		}

		// When the program validates, the fast paths must agree.
		if _, err := Validate(prog, ValidateOptions{}); err == nil {
			pv, err := Prevalidate(prog, ValidateOptions{})
			if err != nil {
				t.Fatalf("Validate ok but Prevalidate failed: %v", err)
			}
			if got := pv.Run(pkt); got.Accept != checked.Accept {
				t.Fatalf("fast path diverges: %v vs %v", got.Accept, checked.Accept)
			}
			c, err := Compile(prog, ValidateOptions{}, Env{})
			if err != nil {
				t.Fatalf("Validate ok but Compile failed: %v", err)
			}
			if got := c.Run(pkt); got != checked.Accept {
				t.Fatalf("compiled diverges: %v vs %v", got, checked.Accept)
			}
			opt := Optimize(prog, ValidateOptions{})
			if got := Run(opt, pkt); got.Accept != checked.Accept {
				t.Fatalf("optimizer diverges: %v vs %v", got.Accept, checked.Accept)
			}
		}
	})
}

// FuzzAdversarial drives randomized hostile programs through the whole
// defensive contract at once: Validate must never admit a program the
// interpreter faults on structurally, WorstInstrs must dominate every
// execution, a fuel budget must be respected to the instruction, and
// the merged decision table must agree with linear evaluation verdict
// for verdict.  This is the property the resource governor's admission
// arithmetic rests on.
func FuzzAdversarial(f *testing.F) {
	worst := MaxInstrsProgram()
	seed := make([]byte, 2*len(worst))
	for i, w := range worst {
		seed[2*i] = byte(w >> 8)
		seed[2*i+1] = byte(w)
	}
	f.Add(seed, []byte{0x01, 0x02, 0x00, 0x02, 0x00, 0x1A}, uint8(4))
	fig39 := Fig39PupSocket().Program
	seed39 := make([]byte, 2*len(fig39))
	for i, w := range fig39 {
		seed39[2*i] = byte(w >> 8)
		seed39[2*i+1] = byte(w)
	}
	f.Add(seed39, []byte{0, 2, 0, 0, 0, 7, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 35}, uint8(2))
	f.Add([]byte{0x04, 0x00, 0x00, 0x4B}, []byte{}, uint8(0)) // PUSHONE; PUSHZERO|CAND

	f.Fuzz(func(t *testing.T, progBytes, pkt []byte, fuelSeed uint8) {
		prog := make(Program, len(progBytes)/2)
		for i := range prog {
			prog[i] = Word(uint16(progBytes[2*i])<<8 | uint16(progBytes[2*i+1]))
		}
		info, err := Validate(prog, ValidateOptions{})
		if err != nil {
			// Invalid programs must still never panic the checked
			// interpreter (the kernel refuses them at bind, but a
			// fuzzer does not get to assume that).
			Run(prog, pkt)
			return
		}
		if info.WorstInstrs > info.Instrs || (len(prog) > 0 && info.WorstInstrs <= 0) {
			t.Fatalf("WorstInstrs %d out of range (Instrs %d)", info.WorstInstrs, info.Instrs)
		}

		checked := Run(prog, pkt)
		if checked.Instrs > info.WorstInstrs {
			t.Fatalf("executed %d instrs > WorstInstrs %d", checked.Instrs, info.WorstInstrs)
		}

		// Fuel must be respected exactly, and a covering budget must
		// not change the verdict.
		fuel := int(fuelSeed) % (info.Instrs + 2)
		fueled := RunFuel(prog, pkt, fuel)
		if fueled.Instrs > fuel {
			t.Fatalf("fuel %d: executed %d instrs", fuel, fueled.Instrs)
		}
		if errors.Is(fueled.Err, ErrFuel) && fueled.Accept {
			t.Fatalf("fuel-exhausted run accepted the packet")
		}
		full := RunFuel(prog, pkt, info.WorstInstrs)
		if full.Accept != checked.Accept || full.Instrs != checked.Instrs ||
			(full.Err == nil) != (checked.Err == nil) {
			t.Fatalf("covering fuel changed the result: %+v vs %+v", full, checked)
		}
		pv, err := Prevalidate(prog, ValidateOptions{})
		if err != nil {
			t.Fatalf("Validate ok but Prevalidate failed: %v", err)
		}
		if got := pv.RunFuel(pkt, fuel); got.Instrs > info.WorstInstrs {
			t.Fatalf("pv.RunFuel(%d) executed %d instrs", fuel, got.Instrs)
		}

		// One-filter decision table must reach the same verdict as
		// linear checked evaluation, fueled or not.
		tbl := BuildTable([]Filter{{Priority: 1, Program: prog}})
		matched := len(tbl.Match(pkt)) > 0
		if matched != checked.Accept {
			t.Fatalf("table verdict %v diverges from linear %v\n%s", matched, checked.Accept, prog)
		}
		tw := tbl.WorstInstrs()
		res, err := tbl.MatchFuel(pkt, tw)
		if err != nil {
			t.Fatalf("covered MatchFuel refused: %v", err)
		}
		if (len(res.Idxs) > 0) != matched {
			t.Fatalf("fueled table verdict diverges from unfueled")
		}
	})
}

func FuzzAssemble(f *testing.F) {
	f.Add("PUSHWORD+8 PUSHLIT|CAND 35\nPUSHWORD+1 PUSHLIT|EQ 2")
	f.Add("PUSHONE")
	f.Add("# comment only")
	f.Add("PUSHBYTE 14 PUSHIND PUSHPKTLEN OR")

	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Assemble(src) // must not panic
		if err != nil {
			return
		}
		// Whatever assembles must disassemble and re-assemble to
		// the identical program.
		back, err := Assemble(prog.String())
		if err != nil {
			t.Fatalf("disassembly does not re-assemble: %v\n%s", err, prog)
		}
		if !back.Equal(prog) {
			t.Fatalf("round trip changed the program:\n%s\nvs\n%s", prog, back)
		}
	})
}

func FuzzFilterMarshal(f *testing.F) {
	data, _ := Fig39PupSocket().MarshalBinary()
	f.Add(data)
	f.Add([]byte{})
	f.Add([]byte{10, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		var flt Filter
		if err := flt.UnmarshalBinary(data); err != nil {
			return
		}
		out, err := flt.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal of unmarshaled filter failed: %v", err)
		}
		// The canonical prefix must round-trip.
		if !bytes.Equal(out, data[:len(out)]) {
			t.Fatalf("round trip changed bytes: %x vs %x", out, data[:len(out)])
		}
	})
}
