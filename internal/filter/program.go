package filter

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
)

// Limits of the virtual machine.  StackDepth matches the original
// implementation's 16-word evaluation stack; MaxProgramLen is generous
// compared with the original's 40 words so that the §7 extensions and
// the decision-table experiments have room, but still small enough
// that a hostile filter cannot consume unbounded kernel time.
const (
	StackDepth    = 16
	MaxProgramLen = 128
)

// A Program is a sequence of instruction words (with interleaved
// literal operands) for the packet-filter stack machine.  Programs are
// normally built with a Builder or parsed with Assemble; a Program
// built by hand should be checked with Validate before use.
type Program []Word

// A Filter associates a Program with the demultiplexing priority used
// by the packet-filter device (§3.2): filters are applied in order of
// decreasing priority, and a packet goes to the highest-priority
// filter that accepts it.
type Filter struct {
	Priority uint8
	Program  Program
}

// Validation and interpretation errors.
var (
	ErrTooLong       = errors.New("filter: program exceeds MaxProgramLen")
	ErrStackOverflow = errors.New("filter: stack overflow")
	ErrUnderflow     = errors.New("filter: stack underflow")
	ErrMissingOper   = errors.New("filter: PUSHLIT/PUSHBYTE missing operand word")
	ErrBadAction     = errors.New("filter: invalid stack action")
	ErrBadOp         = errors.New("filter: invalid binary operator")
	ErrExtension     = errors.New("filter: extended instruction without Extensions enabled")
	ErrWordIndex     = errors.New("filter: packet word index out of range")
	ErrEmptyStack    = errors.New("filter: program ends with empty stack")
)

// ValidateOptions controls static validation.
type ValidateOptions struct {
	// Extensions permits the §7 extended actions and operators
	// (PUSHIND, PUSHBYTE, PUSHHDRLEN, PUSHPKTLEN, arithmetic).
	Extensions bool
}

// Info is the result of successful static validation: everything the
// fast interpreter needs to skip per-instruction checks (§7: "Since
// the filter language does not include branching instructions, all
// these tests can be performed ahead of time (except for
// indirect-push instructions)").
type Info struct {
	// MaxStack is the deepest stack the program can reach.
	MaxStack int
	// MaxWord is the highest packet word index referenced by a
	// constant PUSHWORD, or -1 if none.  Packets shorter than
	// 2*(MaxWord+1) bytes are rejected up front by the fast
	// interpreter rather than checked per instruction.
	MaxWord int
	// MaxByte is the highest packet byte referenced by a constant
	// PUSHBYTE, or -1 if none.
	MaxByte int
	// UsesIndirect reports whether the program contains PUSHIND,
	// whose packet access cannot be bounds-checked statically.
	UsesIndirect bool
	// Instrs is the number of instruction words (excluding literal
	// operands); the simulator charges virtual time per
	// instruction actually executed, and Instrs bounds that.
	Instrs int
	// WorstInstrs is the worst-case number of instruction words any
	// single evaluation can execute — the bound the resource governor
	// charges against a port's budget before running the filter.  It
	// equals Instrs unless constant propagation proves a short-circuit
	// operator always terminates the program early (its two operands
	// are statically-known constants whose comparison forces the
	// exit), in which case the tail past that instruction can never
	// run on any packet.  WorstInstrs <= Instrs always, and actual
	// executed instructions never exceed WorstInstrs.
	WorstInstrs int
}

// Validate statically checks p: action and operator validity, operand
// presence, stack depth never exceeding StackDepth or underflowing,
// and in-range word indexes.  Because the language has no branches,
// stack motion is exact, not approximate.  On success it returns the
// Info summary used by the fast interpreter and compiler.
//
// The empty program is valid and accepts every packet, matching the
// original driver (table 6-10 measures a "0 instruction" filter); a
// non-empty program must leave a result on the stack.
func Validate(p Program, opt ValidateOptions) (Info, error) {
	info := Info{MaxWord: -1, MaxByte: -1}
	if len(p) == 0 {
		return info, nil
	}
	if len(p) > MaxProgramLen {
		return info, fmt.Errorf("%w: %d words", ErrTooLong, len(p))
	}
	depth := 0
	// Constant propagation for the worst-case executed-path bound:
	// stack slots whose value is the same on every packet are tracked,
	// and a short-circuit operator over two known constants whose
	// comparison forces the early exit caps WorstInstrs there — the
	// instruction words past it are validated but can never run.
	var known [StackDepth]bool
	var kval [StackDepth]uint16
	worstCapped := false
	for pc := 0; pc < len(p); pc++ {
		w := p[pc]
		a, op := w.Action(), w.Op()
		if !a.Valid(opt.Extensions) {
			return info, fmt.Errorf("%w: word %d (%v)", ErrBadAction, pc, uint16(a))
		}
		if !op.Valid(opt.Extensions) {
			return info, fmt.Errorf("%w: word %d (%v)", ErrBadOp, pc, uint16(op))
		}
		if (a.IsExtended() || op.IsExtended()) && !opt.Extensions {
			return info, fmt.Errorf("%w: word %d", ErrExtension, pc)
		}
		info.Instrs++
		if !worstCapped {
			info.WorstInstrs++
		}

		// Stack action.
		switch {
		case a == NOPUSH:
			// nothing
		case a == PUSHIND:
			// Pops an index, pushes a word: net zero, but
			// requires one word on the stack.
			if depth < 1 {
				return info, fmt.Errorf("%w: PUSHIND at word %d", ErrUnderflow, pc)
			}
			info.UsesIndirect = true
			known[depth-1] = false
		case a.HasOperand():
			pc++
			if pc >= len(p) {
				return info, fmt.Errorf("%w: at word %d", ErrMissingOper, pc-1)
			}
			if depth < StackDepth {
				if a == PUSHBYTE {
					known[depth] = false
				} else { // PUSHLIT
					known[depth], kval[depth] = true, uint16(p[pc])
				}
			}
			if a == PUSHBYTE && int(p[pc]) > info.MaxByte {
				info.MaxByte = int(p[pc])
			}
			depth++
		case a >= PUSHWORD:
			n := int(a - PUSHWORD)
			if n > MaxWordIndex {
				return info, fmt.Errorf("%w: word %d index %d", ErrWordIndex, pc, n)
			}
			if n > info.MaxWord {
				info.MaxWord = n
			}
			if depth < StackDepth {
				known[depth] = false
			}
			depth++
		default: // PUSHZERO..PUSH00FF, PUSHHDRLEN, PUSHPKTLEN
			if depth < StackDepth {
				switch a {
				case PUSHZERO:
					known[depth], kval[depth] = true, 0
				case PUSHONE:
					known[depth], kval[depth] = true, 1
				case PUSHFFFF:
					known[depth], kval[depth] = true, 0xFFFF
				case PUSHFF00:
					known[depth], kval[depth] = true, 0xFF00
				case PUSH00FF:
					known[depth], kval[depth] = true, 0x00FF
				default: // PUSHHDRLEN, PUSHPKTLEN: per-packet values
					known[depth] = false
				}
			}
			depth++
		}
		if depth > StackDepth {
			return info, fmt.Errorf("%w: word %d", ErrStackOverflow, pc)
		}
		if depth > info.MaxStack {
			info.MaxStack = depth
		}

		// Binary operator.
		if op != NOP {
			if depth < 2 {
				return info, fmt.Errorf("%w: %v at word %d", ErrUnderflow, op, pc)
			}
			t1k, t1 := known[depth-1], kval[depth-1]
			t2k, t2 := known[depth-2], kval[depth-2]
			both := t1k && t2k
			depth-- // pop two, push one
			resK, resV := false, uint16(0)
			switch op {
			case EQ:
				resK, resV = both, b2w(both && t2 == t1)
			case NEQ:
				resK, resV = both, b2w(both && t2 != t1)
			case LT:
				resK, resV = both, b2w(both && t2 < t1)
			case LE:
				resK, resV = both, b2w(both && t2 <= t1)
			case GT:
				resK, resV = both, b2w(both && t2 > t1)
			case GE:
				resK, resV = both, b2w(both && t2 >= t1)
			case AND:
				resK, resV = both, t2&t1
			case OR:
				resK, resV = both, t2|t1
			case XOR:
				resK, resV = both, t2^t1
			case ADD:
				resK, resV = both, t2+t1
			case SUB:
				resK, resV = both, t2-t1
			case MUL:
				resK, resV = both, t2*t1
			case LSH:
				resK, resV = both, t2<<(t1&15)
			case RSH:
				resK, resV = both, t2>>(t1&15)
			case COR:
				if both && t2 == t1 {
					worstCapped = true
				}
				resK, resV = true, 0 // COR pushes FALSE when it continues
			case CAND:
				if both && t2 != t1 {
					worstCapped = true
				}
				resK, resV = true, 1 // CAND pushes TRUE when it continues
			case CNOR:
				if both && t2 == t1 {
					worstCapped = true
				}
				resK, resV = true, 0
			case CNAND:
				if both && t2 != t1 {
					worstCapped = true
				}
				resK, resV = true, 1
			}
			known[depth-1], kval[depth-1] = resK, resV
		}
	}
	if depth == 0 {
		return info, ErrEmptyStack
	}
	return info, nil
}

// MustValidate is Validate for programs known correct at authoring
// time; it panics on error.
func MustValidate(p Program, opt ValidateOptions) Info {
	info, err := Validate(p, opt)
	if err != nil {
		panic(err)
	}
	return info
}

// String disassembles the program in the style of the paper's
// listings: one instruction per line, literals attached.
func (p Program) String() string {
	var b strings.Builder
	for pc := 0; pc < len(p); pc++ {
		w := p[pc]
		fmt.Fprintf(&b, "%s", w.String())
		if w.Action().HasOperand() && pc+1 < len(p) {
			pc++
			fmt.Fprintf(&b, ", %d", uint16(p[pc]))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Clone returns a copy of p that shares no storage with it.
func (p Program) Clone() Program {
	q := make(Program, len(p))
	copy(q, p)
	return q
}

// Equal reports whether two programs are word-for-word identical.
func (p Program) Equal(q Program) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// MarshalBinary encodes the filter in the on-the-wire/ioctl layout
// used by the original driver's struct enfilter: a priority byte, a
// length byte (in words), then the instruction words in network byte
// order.
func (f Filter) MarshalBinary() ([]byte, error) {
	if len(f.Program) > MaxProgramLen {
		return nil, ErrTooLong
	}
	out := make([]byte, 2+2*len(f.Program))
	out[0] = f.Priority
	out[1] = byte(len(f.Program))
	for i, w := range f.Program {
		binary.BigEndian.PutUint16(out[2+2*i:], uint16(w))
	}
	return out, nil
}

// UnmarshalBinary decodes the layout produced by MarshalBinary.
func (f *Filter) UnmarshalBinary(data []byte) error {
	if len(data) < 2 {
		return errors.New("filter: truncated enfilter header")
	}
	n := int(data[1])
	if len(data) < 2+2*n {
		return errors.New("filter: truncated enfilter body")
	}
	f.Priority = data[0]
	f.Program = make(Program, n)
	for i := 0; i < n; i++ {
		f.Program[i] = Word(binary.BigEndian.Uint16(data[2+2*i:]))
	}
	return nil
}

// PacketWord returns 16-bit word n of pkt in network byte order and
// whether the packet is long enough to contain it.
func PacketWord(pkt []byte, n int) (uint16, bool) {
	if n < 0 || 2*n+1 >= len(pkt) {
		return 0, false
	}
	return binary.BigEndian.Uint16(pkt[2*n:]), true
}
