package filter

import (
	"errors"
	"testing"
)

// words builds a packet from 16-bit big-endian words.
func words(ws ...uint16) []byte {
	pkt := make([]byte, 2*len(ws))
	for i, w := range ws {
		pkt[2*i] = byte(w >> 8)
		pkt[2*i+1] = byte(w)
	}
	return pkt
}

// pupPacket builds a minimal 3Mb-Ethernet Pup packet (figure 3-7
// layout): word 1 = EtherType, word 3 low byte = PupType, words 7-8 =
// DstSocket.
func pupPacket(pupType uint8, dstSocket uint32) []byte {
	ws := make([]uint16, 13)
	ws[0] = 0x0102 // EtherDst | EtherSrc
	ws[1] = PupEtherType
	ws[2] = 26 // PupLength
	ws[3] = uint16(pupType)
	ws[6] = 0x0105 // DstNet | DstHost
	ws[7] = uint16(dstSocket >> 16)
	ws[8] = uint16(dstSocket)
	return words(ws...)
}

func mustAccept(t *testing.T, p Program, pkt []byte) {
	t.Helper()
	r := Run(p, pkt)
	if r.Err != nil {
		t.Fatalf("unexpected error: %v\nprogram:\n%s", r.Err, p)
	}
	if !r.Accept {
		t.Fatalf("expected accept\nprogram:\n%s", p)
	}
}

func mustReject(t *testing.T, p Program, pkt []byte) {
	t.Helper()
	if r := Run(p, pkt); r.Accept {
		t.Fatalf("expected reject\nprogram:\n%s", p)
	}
}

func TestPushConstants(t *testing.T) {
	pkt := words(0xDEAD)
	cases := []struct {
		action Action
		want   uint16
	}{
		{PUSHZERO, 0},
		{PUSHONE, 1},
		{PUSHFFFF, 0xFFFF},
		{PUSHFF00, 0xFF00},
		{PUSH00FF, 0x00FF},
	}
	for _, c := range cases {
		p := Program{MkInstr(c.action, NOP), MkInstr(PUSHLIT, EQ), Word(c.want)}
		mustAccept(t, p, pkt)
		p = Program{MkInstr(c.action, NOP), MkInstr(PUSHLIT, NEQ), Word(c.want)}
		mustReject(t, p, pkt)
	}
}

func TestPushWordBigEndian(t *testing.T) {
	pkt := []byte{0x12, 0x34, 0xAB, 0xCD}
	mustAccept(t, NewBuilder().WordEQ(0, 0x1234).MustProgram(), pkt)
	mustAccept(t, NewBuilder().WordEQ(1, 0xABCD).MustProgram(), pkt)
	mustReject(t, NewBuilder().WordEQ(0, 0x3412).MustProgram(), pkt)
}

func TestComparisonOps(t *testing.T) {
	// Each case evaluates (t2 op t1) with t2 pushed first.
	cases := []struct {
		t2, t1 uint16
		op     Op
		want   bool
	}{
		{5, 5, EQ, true}, {5, 6, EQ, false},
		{5, 6, NEQ, true}, {5, 5, NEQ, false},
		{4, 5, LT, true}, {5, 5, LT, false}, {6, 5, LT, false},
		{5, 5, LE, true}, {4, 5, LE, true}, {6, 5, LE, false},
		{6, 5, GT, true}, {5, 5, GT, false},
		{5, 5, GE, true}, {6, 5, GE, true}, {4, 5, GE, false},
		// Comparisons are unsigned 16-bit.
		{0x8000, 1, GT, true},
		{1, 0xFFFF, LT, true},
	}
	for _, c := range cases {
		p := NewBuilder().PushLit(c.t2).LitOp(c.op, c.t1).MustProgram()
		r := Run(p, nil)
		if r.Err != nil {
			t.Fatalf("%d %v %d: %v", c.t2, c.op, c.t1, r.Err)
		}
		if r.Accept != c.want {
			t.Errorf("%d %v %d = %v, want %v", c.t2, c.op, c.t1, r.Accept, c.want)
		}
	}
}

func TestBitwiseOps(t *testing.T) {
	cases := []struct {
		t2, t1 uint16
		op     Op
		want   uint16
	}{
		{0xFF0F, 0x00FF, AND, 0x000F},
		{0xF000, 0x000F, OR, 0xF00F},
		{0xFFFF, 0x0F0F, XOR, 0xF0F0},
	}
	for _, c := range cases {
		p := NewBuilder().PushLit(c.t2).LitOp(c.op, c.t1).LitOp(EQ, c.want).MustProgram()
		mustAccept(t, p, nil)
	}
	// Bitwise AND of two non-zero values can still be FALSE (zero):
	// the paper's logical interpretation is "non-zero is TRUE".
	p := NewBuilder().PushLit(0xF0).LitOp(AND, 0x0F).MustProgram()
	mustReject(t, p, nil)
}

func TestShortCircuitSemantics(t *testing.T) {
	pkt := words(7)
	// COR: accept immediately when equal; program text after the
	// COR must not execute.
	p := Program{
		MkInstr(PushWord(0), NOP), MkInstr(PUSHLIT, COR), 7,
		MkInstr(PUSHZERO, NOP), // would reject if executed
	}
	r := Run(p, pkt)
	if !r.Accept || r.Instrs != 2 {
		t.Fatalf("COR: accept=%v instrs=%d, want true/2", r.Accept, r.Instrs)
	}
	// COR not taken: pushes FALSE and continues.
	p = Program{
		MkInstr(PushWord(0), NOP), MkInstr(PUSHLIT, COR), 8,
		MkInstr(PUSHONE, OR), // FALSE OR TRUE = TRUE
	}
	mustAccept(t, p, pkt)

	// CAND: reject immediately when not equal.
	p = Program{
		MkInstr(PushWord(0), NOP), MkInstr(PUSHLIT, CAND), 8,
		MkInstr(PUSHONE, NOP),
	}
	r = Run(p, pkt)
	if r.Accept || r.Instrs != 2 {
		t.Fatalf("CAND: accept=%v instrs=%d, want false/2", r.Accept, r.Instrs)
	}
	// CAND taken: pushes TRUE and continues.
	p = Program{
		MkInstr(PushWord(0), NOP), MkInstr(PUSHLIT, CAND), 7,
	}
	mustAccept(t, p, pkt)

	// CNOR: reject immediately when equal; else push FALSE.
	p = Program{MkInstr(PushWord(0), NOP), MkInstr(PUSHLIT, CNOR), 7}
	mustReject(t, p, pkt)
	p = Program{
		MkInstr(PushWord(0), NOP), MkInstr(PUSHLIT, CNOR), 8,
		MkInstr(PUSHONE, OR),
	}
	mustAccept(t, p, pkt)

	// CNAND: accept immediately when not equal; else push TRUE.
	p = Program{MkInstr(PushWord(0), NOP), MkInstr(PUSHLIT, CNAND), 8}
	mustAccept(t, p, pkt)
	p = Program{MkInstr(PushWord(0), NOP), MkInstr(PUSHLIT, CNAND), 7}
	mustAccept(t, p, pkt) // falls off end with TRUE on stack
}

func TestFig38PupTypeRange(t *testing.T) {
	f := Fig38PupTypeRange()
	if len(f.Program) != 12 {
		t.Fatalf("figure 3-8 program is %d words, paper says 12", len(f.Program))
	}
	cases := []struct {
		pupType uint8
		want    bool
	}{
		{0, false}, {1, true}, {50, true}, {100, true}, {101, false}, {255, false},
	}
	for _, c := range cases {
		pkt := pupPacket(c.pupType, 99)
		if got := Run(f.Program, pkt).Accept; got != c.want {
			t.Errorf("PupType %d: accept=%v, want %v", c.pupType, got, c.want)
		}
	}
	// Non-Pup packets rejected regardless of the type byte.
	pkt := pupPacket(50, 99)
	pkt[2], pkt[3] = 0x08, 0x00 // overwrite EtherType
	mustReject(t, f.Program, pkt)
}

func TestFig39PupSocket(t *testing.T) {
	f := Fig39PupSocket()
	if len(f.Program) != 8 {
		t.Fatalf("figure 3-9 program is %d words, paper says 8", len(f.Program))
	}
	mustAccept(t, f.Program, pupPacket(1, 35))
	mustReject(t, f.Program, pupPacket(1, 36))
	mustReject(t, f.Program, pupPacket(1, 35|1<<16))
	pkt := pupPacket(1, 35)
	pkt[2], pkt[3] = 0x08, 0x00
	mustReject(t, f.Program, pkt)

	// The short-circuit exit must fire on the first (most
	// selective) test: a wrong socket costs only 2 instructions.
	if r := Run(f.Program, pupPacket(1, 36)); r.Instrs != 2 {
		t.Errorf("wrong-socket packet executed %d instrs, want 2", r.Instrs)
	}
	// An accepted packet runs the whole 6-instruction program.
	if r := Run(f.Program, pupPacket(1, 35)); r.Instrs != 6 {
		t.Errorf("accepted packet executed %d instrs, want 6", r.Instrs)
	}
}

func TestDstSocketFilter(t *testing.T) {
	f := DstSocketFilter(5, 0x0001_0023)
	mustAccept(t, f.Program, pupPacket(4, 0x0001_0023))
	mustReject(t, f.Program, pupPacket(4, 0x0023))
	mustReject(t, f.Program, pupPacket(4, 0x0001_0024))
	if f.Priority != 5 {
		t.Errorf("priority = %d, want 5", f.Priority)
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		p    Program
		pkt  []byte
		err  error
	}{
		{"word out of range", Program{MkInstr(PushWord(10), NOP)}, words(1, 2), ErrWordIndex},
		{"odd trailing byte inaccessible", Program{MkInstr(PushWord(1), NOP)}, []byte{1, 2, 3}, ErrWordIndex},
		{"missing literal", Program{MkInstr(PUSHLIT, NOP)}, nil, ErrMissingOper},
		{"underflow", Program{MkInstr(PUSHONE, AND)}, nil, ErrUnderflow},
		{"empty stack at end", Program{MkInstr(NOPUSH, NOP)}, nil, ErrEmptyStack},
		{"extension disabled", Program{MkInstr(PUSHPKTLEN, NOP)}, nil, ErrExtension},
		{"bad action", Program{MkInstr(Action(7), NOP)}, nil, ErrBadAction},
		{"bad op", Program{MkInstr(PUSHONE, NOP), MkInstr(PUSHONE, Op(63))}, nil, ErrBadOp},
	}
	for _, c := range cases {
		r := Run(c.p, c.pkt)
		if r.Accept {
			t.Errorf("%s: accepted", c.name)
		}
		if !errors.Is(r.Err, c.err) {
			t.Errorf("%s: err = %v, want %v", c.name, r.Err, c.err)
		}
	}
	// Stack overflow: 17 pushes.
	var p Program
	for i := 0; i < StackDepth+1; i++ {
		p = append(p, MkInstr(PUSHONE, NOP))
	}
	if r := Run(p, nil); !errors.Is(r.Err, ErrStackOverflow) {
		t.Errorf("overflow: err = %v, want ErrStackOverflow", r.Err)
	}
}

func TestExtendedInstructions(t *testing.T) {
	pkt := words(0x0003, 0xAAAA, 0xBBBB, 0xCCCC)

	// PUSHIND: use word 0 (=3) as an index.
	p := NewExtendedBuilder().PushWord(0).PushInd().LitOp(EQ, 0xCCCC).MustProgram()
	r := RunExt(p, pkt, Env{})
	if r.Err != nil || !r.Accept {
		t.Fatalf("PUSHIND: accept=%v err=%v", r.Accept, r.Err)
	}
	// PUSHIND out of range rejects.
	p = NewExtendedBuilder().PushLit(99).PushInd().MustProgram()
	if r := RunExt(p, pkt, Env{}); r.Accept || !errors.Is(r.Err, ErrWordIndex) {
		t.Fatalf("PUSHIND OOB: accept=%v err=%v", r.Accept, r.Err)
	}

	// PUSHBYTE.
	p = NewExtendedBuilder().PushByte(3).LitOp(EQ, 0xAA).MustProgram()
	if r := RunExt(p, pkt, Env{}); !r.Accept {
		t.Error("PUSHBYTE: expected accept")
	}
	p = NewExtendedBuilder().PushByte(100).MustProgram()
	if r := RunExt(p, pkt, Env{}); r.Accept || !errors.Is(r.Err, ErrWordIndex) {
		t.Errorf("PUSHBYTE OOB: accept=%v err=%v", r.Accept, r.Err)
	}

	// PUSHPKTLEN / PUSHHDRLEN.
	p = NewExtendedBuilder().PushPktLen().LitOp(EQ, uint16(len(pkt))).MustProgram()
	if r := RunExt(p, pkt, Env{}); !r.Accept {
		t.Error("PUSHPKTLEN: expected accept")
	}
	p = NewExtendedBuilder().PushHdrLen().LitOp(EQ, 7).MustProgram()
	if r := RunExt(p, pkt, Env{HeaderWords: 7}); !r.Accept {
		t.Error("PUSHHDRLEN: expected accept")
	}

	// Arithmetic, with 16-bit wraparound.
	arith := []struct {
		t2, t1 uint16
		op     Op
		want   uint16
	}{
		{3, 4, ADD, 7},
		{0xFFFF, 2, ADD, 1},
		{10, 3, SUB, 7},
		{0, 1, SUB, 0xFFFF},
		{300, 300, MUL, 0x5F90},
		{1, 4, LSH, 16},
		{0x8000, 15, RSH, 1},
	}
	for _, c := range arith {
		p := NewExtendedBuilder().PushLit(c.t2).LitOp(c.op, c.t1).LitOp(EQ, c.want).MustProgram()
		if r := RunExt(p, nil, Env{}); r.Err != nil || !r.Accept {
			t.Errorf("%d %v %d != %d (err=%v)", c.t2, c.op, c.t1, c.want, r.Err)
		}
	}
}

// TestVariableOffsetIPFilter demonstrates §7's motivating case for the
// extensions: finding a TCP port behind a variable-length IP header.
func TestVariableOffsetIPFilter(t *testing.T) {
	// Synthetic 10Mb Ethernet + IP packet: 14-byte Ethernet header
	// (7 words), then IP whose IHL is in the low nibble of byte 14.
	mkIP := func(ihl int, srcPort uint16) []byte {
		ipLen := 4 * ihl
		pkt := make([]byte, 14+ipLen+4)
		pkt[12], pkt[13] = 0x08, 0x00 // EtherType IP
		pkt[14] = 0x40 | byte(ihl)    // version 4, header length
		pkt[14+ipLen] = byte(srcPort >> 8)
		pkt[14+ipLen+1] = byte(srcPort)
		return pkt
	}
	// Filter: TCP source port == 0x1234, however long the IP
	// header is: word index = 7 (ether) + 2*IHL, then PUSHIND.
	p := NewExtendedBuilder().
		PushByte(14).LitOp(AND, 0x0F). // IHL in 32-bit units
		LitOp(MUL, 2).                 // ... in 16-bit words
		LitOp(ADD, 7).                 // skip the Ethernet header
		PushInd().
		LitOp(EQ, 0x1234).
		MustProgram()
	for _, ihl := range []int{5, 6, 8, 15} {
		if r := RunExt(p, mkIP(ihl, 0x1234), Env{}); !r.Accept || r.Err != nil {
			t.Errorf("IHL %d: accept=%v err=%v", ihl, r.Accept, r.Err)
		}
		if r := RunExt(p, mkIP(ihl, 0x4321), Env{}); r.Accept {
			t.Errorf("IHL %d: accepted wrong port", ihl)
		}
	}
}

func TestInstrsCounting(t *testing.T) {
	f := Fig38PupTypeRange()
	r := Run(f.Program, pupPacket(50, 1))
	// 12 words minus 2 literals = 10 instructions, no short circuit.
	if r.Instrs != 10 {
		t.Errorf("instrs = %d, want 10", r.Instrs)
	}
}

func TestAcceptAllRejectAll(t *testing.T) {
	all := NewBuilder().AcceptAll().MustProgram()
	none := NewBuilder().RejectAll().MustProgram()
	for _, pkt := range [][]byte{nil, {}, words(1), pupPacket(3, 9)} {
		mustAccept(t, all, pkt)
		mustReject(t, none, pkt)
	}
}
