package filter

import (
	"errors"
	"testing"
)

// pupFrameForSocket builds a 3 Mb-header Pup-ish packet whose words 1,
// 7 and 8 satisfy (or not) the paper's example filters.
func fuelTestPacket(etherType, sockHi, sockLo, pupType uint16) []byte {
	pkt := make([]byte, 40)
	put := func(word int, v uint16) {
		pkt[2*word] = byte(v >> 8)
		pkt[2*word+1] = byte(v)
	}
	put(1, etherType)
	put(3, pupType)
	put(7, sockHi)
	put(8, sockLo)
	return pkt
}

// TestWorstInstrsPaperPrograms pins the worst-case executed-path bound
// on the paper's figure 3-8 and 3-9 listings: neither program contains
// a short circuit whose outcome is statically known (every CAND in
// fig. 3-9 compares a packet word against a constant), so the bound is
// the full instruction count.
func TestWorstInstrsPaperPrograms(t *testing.T) {
	cases := []struct {
		name        string
		prog        Program
		instrs      int
		worstInstrs int
	}{
		{"fig3-8", Fig38PupTypeRange().Program, 10, 10},
		{"fig3-9", Fig39PupSocket().Program, 6, 6},
	}
	for _, tc := range cases {
		info := MustValidate(tc.prog, ValidateOptions{})
		if info.Instrs != tc.instrs {
			t.Errorf("%s: Instrs = %d, want %d", tc.name, info.Instrs, tc.instrs)
		}
		if info.WorstInstrs != tc.worstInstrs {
			t.Errorf("%s: WorstInstrs = %d, want %d", tc.name, info.WorstInstrs, tc.worstInstrs)
		}
		// The bound must dominate the executed count on accepting,
		// rejecting and short (erroring) packets alike.
		for _, pkt := range [][]byte{
			fuelTestPacket(2, 0, 35, 50), // accepted by both programs
			fuelTestPacket(9, 1, 2, 200), // rejected
			make([]byte, 4),              // too short: word accesses fail
			nil,
		} {
			r := Run(tc.prog, pkt)
			if r.Instrs > info.WorstInstrs {
				t.Errorf("%s: executed %d instrs > WorstInstrs %d", tc.name, r.Instrs, info.WorstInstrs)
			}
		}
	}
}

// TestWorstInstrsConstantShortCircuit checks that constant propagation
// tightens the bound when a short-circuit operator provably fires: the
// tail past it is validated but can never execute.
func TestWorstInstrsConstantShortCircuit(t *testing.T) {
	cases := []struct {
		name   string
		prog   Program
		worst  int
		accept bool
	}{
		{
			// PUSHONE; PUSHZERO|CAND: 1 != 0 always exits FALSE at
			// instruction 2; the packet-word tail never runs.
			"cand-always-false",
			Program{
				MkInstr(PUSHONE, NOP), MkInstr(PUSHZERO, CAND),
				MkInstr(PushWord(0), NOP), MkInstr(PUSHONE, OR),
			},
			2, false,
		},
		{
			// PUSHONE; PUSHONE|COR: 1 == 1 always exits TRUE.
			"cor-always-true",
			Program{
				MkInstr(PUSHONE, NOP), MkInstr(PUSHONE, COR),
				MkInstr(PushWord(0), NOP), MkInstr(PushWord(1), OR),
				MkInstr(PushWord(2), AND),
			},
			2, true,
		},
		{
			// The constant feeding the short circuit is itself computed:
			// 2+3=5, 5 != 7 -> CAND exits FALSE.
			"arith-fed-cand",
			Program{
				MkInstr(PUSHLIT, NOP), 2,
				MkInstr(PUSHLIT, ADD), 3,
				MkInstr(PUSHLIT, CAND), 7,
				MkInstr(PushWord(0), NOP), MkInstr(PUSHONE, OR),
			},
			3, false,
		},
	}
	for _, tc := range cases {
		opt := ValidateOptions{Extensions: true}
		info := MustValidate(tc.prog, opt)
		if info.WorstInstrs != tc.worst {
			t.Errorf("%s: WorstInstrs = %d, want %d (Instrs %d)",
				tc.name, info.WorstInstrs, tc.worst, info.Instrs)
		}
		if info.WorstInstrs > info.Instrs {
			t.Errorf("%s: WorstInstrs %d exceeds Instrs %d", tc.name, info.WorstInstrs, info.Instrs)
		}
		r := RunExt(tc.prog, make([]byte, 64), Env{})
		if r.Err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, r.Err)
		}
		if r.Accept != tc.accept {
			t.Errorf("%s: accept = %v, want %v", tc.name, r.Accept, tc.accept)
		}
		if r.Instrs != tc.worst {
			t.Errorf("%s: executed %d instrs, want exactly the bound %d", tc.name, r.Instrs, tc.worst)
		}
	}
}

// TestRunFuel checks the metered interpreter: a budget covering the
// execution is invisible, an insufficient one stops evaluation with
// ErrFuel after exactly fuel instruction words.
func TestRunFuel(t *testing.T) {
	prog := Fig38PupTypeRange().Program
	pkt := fuelTestPacket(2, 0, 35, 50)
	full := Run(prog, pkt)
	if !full.Accept || full.Err != nil {
		t.Fatalf("baseline run: %+v", full)
	}

	got := RunFuel(prog, pkt, full.Instrs)
	if got != full {
		t.Errorf("fuel == executed: got %+v, want %+v", got, full)
	}
	for fuel := 0; fuel < full.Instrs; fuel++ {
		r := RunFuel(prog, pkt, fuel)
		if !errors.Is(r.Err, ErrFuel) {
			t.Fatalf("fuel %d: err = %v, want ErrFuel", fuel, r.Err)
		}
		if r.Accept {
			t.Fatalf("fuel %d: exhausted run must reject", fuel)
		}
		if r.Instrs != fuel {
			t.Fatalf("fuel %d: executed %d instrs", fuel, r.Instrs)
		}
	}
}

// TestPrevalidatedAndCompiledFuel checks the budget discipline of the
// fast strategies: covered budgets behave identically to the unfueled
// paths, under-budget calls are metered (prevalidated) or refused
// (compiled, table).
func TestPrevalidatedAndCompiledFuel(t *testing.T) {
	prog := Fig39PupSocket().Program
	info := MustValidate(prog, ValidateOptions{})
	pv, err := Prevalidate(prog, ValidateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(prog, ValidateOptions{}, Env{})
	if err != nil {
		t.Fatal(err)
	}
	for _, pkt := range [][]byte{
		fuelTestPacket(2, 0, 35, 7),
		fuelTestPacket(2, 1, 35, 7),
		fuelTestPacket(3, 0, 36, 7),
		make([]byte, 6),
	} {
		want := Run(prog, pkt)
		if got := pv.RunFuel(pkt, info.WorstInstrs); got.Accept != want.Accept {
			t.Errorf("pv.RunFuel(covered): accept %v, want %v", got.Accept, want.Accept)
		}
		starved := pv.RunFuel(pkt, 1)
		if starved.Accept || starved.Instrs > 1 {
			t.Errorf("pv.RunFuel(1) must reject after at most 1 instr, got %+v", starved)
		}
		ok, err := c.RunFuel(pkt, info.WorstInstrs)
		if err != nil || ok != want.Accept {
			t.Errorf("compiled.RunFuel(covered) = (%v, %v), want (%v, nil)", ok, err, want.Accept)
		}
		if _, err := c.RunFuel(pkt, info.WorstInstrs-1); !errors.Is(err, ErrFuel) {
			t.Errorf("compiled.RunFuel(starved) err = %v, want ErrFuel", err)
		}
	}
}

// TestTableMatchFuel checks the merged table's admission bound: the
// static worst case dominates the work of every match, a covered call
// is identical to MatchStats, and a starved call refuses to run.
func TestTableMatchFuel(t *testing.T) {
	filters := []Filter{
		Fig39PupSocket(),
		DstSocketFilter(9, 0x1234),
		{Priority: 5, Program: Fig38PupTypeRange().Program}, // linear fallback (range test)
	}
	tbl := BuildTable(filters)
	worst := tbl.WorstInstrs()
	if worst <= 0 {
		t.Fatalf("WorstInstrs = %d", worst)
	}
	for _, pkt := range [][]byte{
		fuelTestPacket(2, 0, 35, 7),
		fuelTestPacket(2, 0, 0x1234, 7),
		fuelTestPacket(9, 9, 9, 9),
		make([]byte, 2),
	} {
		want := tbl.MatchStats(pkt)
		if got := want.Edges; got > worst {
			t.Errorf("match did %d edges > worst bound %d", got, worst)
		}
		totalWork := want.Edges
		for _, le := range want.Linear {
			totalWork += le.Instrs
		}
		if totalWork > worst {
			t.Errorf("match work %d > worst bound %d", totalWork, worst)
		}
		res, err := tbl.MatchFuel(pkt, worst)
		if err != nil {
			t.Fatalf("covered MatchFuel: %v", err)
		}
		if len(res.Idxs) != len(want.Idxs) {
			t.Errorf("covered MatchFuel diverged: %v vs %v", res.Idxs, want.Idxs)
		}
		if _, err := tbl.MatchFuel(pkt, worst-1); !errors.Is(err, ErrFuel) {
			t.Errorf("starved MatchFuel err = %v, want ErrFuel", err)
		}
	}
}
