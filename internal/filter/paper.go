package filter

// The two example filters from the paper, §3.1.  Both operate on Pup
// packets carried on the 3 Mbit/s Experimental Ethernet, whose
// data-link header is two 16-bit words with the packet type in word 1
// (figure 3-7); the Pup type is the low byte of word 3 and the Pup
// destination socket is words 7 (high) and 8 (low).
//
// They double as conformance tests: the test suite checks them against
// hand-constructed Pup packets, and the ablation benchmarks compare
// their interpreted, prevalidated and compiled costs.

// PupEtherType is the 3 Mb Ethernet type code for Pup used in the
// paper's listings.
const PupEtherType = 2

// Fig38PupTypeRange is the figure 3-8 example: "This filter accepts
// all Pup packets with Pup Types between 1 and 100."
//
//	struct enfilter f = {
//	    10, 12,                     /* priority and length */
//	    PUSHWORD+1, PUSHLIT|EQ, 2,  /* packet type == PUP */
//	    PUSHWORD+3, PUSH00FF|AND,   /* mask low byte */
//	    PUSHZERO|GT,                /* PupType > 0 */
//	    PUSHWORD+3, PUSH00FF|AND,   /* mask low byte */
//	    PUSHLIT|LE, 100,            /* PupType <= 100 */
//	    AND,                        /* 0 < PupType <= 100 */
//	    AND                         /* && packet type == PUP */
//	};
func Fig38PupTypeRange() Filter {
	return Filter{
		Priority: 10,
		Program: Program{
			MkInstr(PushWord(1), NOP), MkInstr(PUSHLIT, EQ), 2,
			MkInstr(PushWord(3), NOP), MkInstr(PUSH00FF, AND),
			MkInstr(PUSHZERO, GT),
			MkInstr(PushWord(3), NOP), MkInstr(PUSH00FF, AND),
			MkInstr(PUSHLIT, LE), 100,
			MkInstr(NOPUSH, AND),
			MkInstr(NOPUSH, AND),
		},
	}
}

// Fig39PupSocket is the figure 3-9 example: "This filter accepts Pup
// packets with a Pup DstSocket field of 35", using short-circuit
// operations and testing the most selective field first.
//
//	struct enfilter f = {
//	    10, 8,                        /* priority and length */
//	    PUSHWORD+8, PUSHLIT|CAND, 35, /* low word of socket == 35 */
//	    PUSHWORD+7, PUSHZERO|CAND,    /* high word of socket == 0 */
//	    PUSHWORD+1, PUSHLIT|EQ, 2     /* packet type == Pup */
//	};
func Fig39PupSocket() Filter {
	return Filter{
		Priority: 10,
		Program: Program{
			MkInstr(PushWord(8), NOP), MkInstr(PUSHLIT, CAND), 35,
			MkInstr(PushWord(7), NOP), MkInstr(PUSHZERO, CAND),
			MkInstr(PushWord(1), NOP), MkInstr(PUSHLIT, EQ), 2,
		},
	}
}

// DstSocketFilter returns the figure 3-9 style filter for an
// arbitrary 32-bit Pup destination socket, the idiom every user-level
// Pup implementation in §5.1 binds per communication stream.
func DstSocketFilter(priority uint8, socket uint32) Filter {
	return Filter{
		Priority: priority,
		Program: NewBuilder().
			CANDWordEQ(8, uint16(socket)).     // low word first: most selective
			CANDWordEQ(7, uint16(socket>>16)). // then high word
			WordEQ(1, PupEtherType).           // then packet type
			MustProgram(),
	}
}
