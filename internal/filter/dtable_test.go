package filter

import (
	"math/rand"
	"testing"
)

func TestExtractFig39(t *testing.T) {
	ex, ok := Extract(Fig39PupSocket().Program)
	if !ok {
		t.Fatal("figure 3-9 should be table-compatible")
	}
	conds := ex.Conds
	if ex.MinWords != 9 {
		t.Errorf("MinWords = %d, want 9 (words 1, 7 and 8 accessed)", ex.MinWords)
	}
	want := map[Cond]bool{
		{Word: 8, Value: 35}: true,
		{Word: 7, Value: 0}:  true,
		{Word: 1, Value: 2}:  true,
	}
	if len(conds) != len(want) {
		t.Fatalf("got %d conds: %v", len(conds), conds)
	}
	for _, c := range conds {
		if !want[c] {
			t.Errorf("unexpected cond %+v", c)
		}
	}
}

func TestExtractFig38NotCompatible(t *testing.T) {
	// Figure 3-8 contains a range test (GT/LE) and masks, which the
	// decision table cannot express; it must fall back to linear.
	if _, ok := Extract(Fig38PupTypeRange().Program); ok {
		t.Fatal("figure 3-8 should not be table-compatible")
	}
}

func TestExtractForms(t *testing.T) {
	// EQ/AND tree.
	p := NewBuilder().WordEQ(1, 2).WordEQ(3, 4).And().MustProgram()
	ex, ok := Extract(p)
	if !ok || len(ex.Conds) != 2 {
		t.Fatalf("EQ/AND tree: ok=%v ex=%+v", ok, ex)
	}
	// Constant accept-all.
	ex, ok = Extract(NewBuilder().AcceptAll().MustProgram())
	if !ok || len(ex.Conds) != 0 || ex.MinWords != 0 {
		t.Fatalf("accept-all: ok=%v ex=%+v", ok, ex)
	}
	// Reject-all is left to the linear path.
	if _, ok := Extract(NewBuilder().RejectAll().MustProgram()); ok {
		t.Fatal("reject-all should not extract")
	}
	// Duplicate conditions dedupe.
	p = NewBuilder().WordEQ(1, 2).WordEQ(1, 2).And().MustProgram()
	ex, ok = Extract(p)
	if !ok || len(ex.Conds) != 1 {
		t.Fatalf("dedupe: ok=%v ex=%+v", ok, ex)
	}
	// A dead word access still constrains packet length: checked
	// interpretation faults on short packets, so the table must too.
	p = Program{MkInstr(PushWord(9), NOP), MkInstr(PUSHONE, NOP)}
	ex, ok = Extract(p)
	if !ok || ex.MinWords != 10 {
		t.Fatalf("dead access: ok=%v ex=%+v", ok, ex)
	}
	// The empty program extracts as accept-all (table 6-10's
	// zero-instruction filter).
	ex, ok = Extract(Program{})
	if !ok || len(ex.Conds) != 0 {
		t.Fatalf("empty program: ok=%v ex=%+v", ok, ex)
	}
}

// mkEqFilter builds a filter testing the given (word,value) pairs with
// the fig 3-9 idiom.
func mkEqFilter(prio uint8, conds ...Cond) Filter {
	b := NewBuilder()
	for i, c := range conds {
		if i < len(conds)-1 {
			b.CANDWordEQ(c.Word, c.Value)
		} else {
			b.WordEQ(c.Word, c.Value)
		}
	}
	if len(conds) == 0 {
		b.AcceptAll()
	}
	return Filter{Priority: prio, Program: b.MustProgram()}
}

func TestTableMatchBasic(t *testing.T) {
	filters := []Filter{
		mkEqFilter(10, Cond{1, 2}, Cond{8, 35}),
		mkEqFilter(10, Cond{1, 2}, Cond{8, 36}),
		mkEqFilter(5, Cond{1, 2}),       // any Pup packet, low priority
		mkEqFilter(20, Cond{1, 0x0800}), // "IP" packets, high priority
		Fig38PupTypeRange(),             // falls back to linear
	}
	tbl := BuildTable(filters)

	pkt := pupPacket(50, 35)
	got := tbl.Match(pkt)
	// Expect: fig38 (prio 10, idx 4), socket-35 (prio 10, idx 0),
	// any-pup (prio 5, idx 2).  Priority order, ties by index.
	want := []int{0, 4, 2}
	if len(got) != len(want) {
		t.Fatalf("match = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("match = %v, want %v", got, want)
		}
	}
	if best := tbl.MatchBest(pkt); best != 0 {
		t.Errorf("MatchBest = %d, want 0", best)
	}
	if best := tbl.MatchBest([]byte{0, 0}); best != -1 {
		t.Errorf("MatchBest on nothing = %d, want -1", best)
	}
}

func TestTableContradiction(t *testing.T) {
	// w1==2 AND w1==3 can never match; the table must not blow up.
	p := NewBuilder().WordEQ(1, 2).WordEQ(1, 3).And().MustProgram()
	tbl := BuildTable([]Filter{{Priority: 1, Program: p}})
	if m := tbl.Match(pupPacket(1, 1)); len(m) != 0 {
		t.Errorf("contradictory filter matched: %v", m)
	}
}

func TestTableInvalidProgramMatchesNothing(t *testing.T) {
	bad := Program{MkInstr(NOPUSH, EQ)} // underflows: invalid
	tbl := BuildTable([]Filter{{Priority: 1, Program: bad}})
	if m := tbl.Match(pupPacket(1, 1)); len(m) != 0 {
		t.Errorf("invalid filter matched: %v", m)
	}
	// The empty program, by contrast, matches everything.
	tbl = BuildTable([]Filter{{Priority: 1, Program: Program{}}})
	if m := tbl.Match(pupPacket(1, 1)); len(m) != 1 {
		t.Errorf("empty filter match = %v", m)
	}
}

// TestTableEquivalence: the merged table must match exactly the same
// filters as linear application of every program, over random filter
// populations and packets.
func TestTableEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		nf := 1 + r.Intn(12)
		filters := make([]Filter, 0, nf)
		for i := 0; i < nf; i++ {
			if r.Intn(4) == 0 {
				// A random stack program, usually not
				// table-compatible.
				filters = append(filters, Filter{
					Priority: uint8(r.Intn(4)),
					Program:  genProgram(r, 1+r.Intn(8)),
				})
				continue
			}
			var conds []Cond
			for k := r.Intn(4); k > 0; k-- {
				conds = append(conds, Cond{Word: r.Intn(6), Value: uint16(r.Intn(3))})
			}
			filters = append(filters, mkEqFilter(uint8(r.Intn(4)), conds...))
		}
		tbl := BuildTable(filters)
		for j := 0; j < 16; j++ {
			pkt := genPacket(r)
			got := tbl.Match(pkt)
			var want []int
			for i, f := range filters {
				if Run(f.Program, pkt).Accept {
					want = append(want, i)
				}
			}
			// Same set?
			if len(got) != len(want) {
				t.Fatalf("trial %d: table=%v linear=%v", trial, got, want)
			}
			inGot := make(map[int]bool, len(got))
			for _, i := range got {
				inGot[i] = true
			}
			for _, i := range want {
				if !inGot[i] {
					t.Fatalf("trial %d: table=%v linear=%v", trial, got, want)
				}
			}
			// Priority-sorted?
			for k := 1; k < len(got); k++ {
				if filters[got[k-1]].Priority < filters[got[k]].Priority {
					t.Fatalf("trial %d: results not priority-sorted: %v", trial, got)
				}
			}
		}
	}
}

func TestPairPredicate(t *testing.T) {
	pred := PairPredicate{
		{Word: 1, Value: 2},
		{Word: 3, Mask: 0x00FF, Value: 50},
	}
	if !pred.Match(pupPacket(50, 1)) {
		t.Error("expected match")
	}
	if pred.Match(pupPacket(51, 1)) {
		t.Error("wrong PupType matched")
	}
	if pred.Match([]byte{0, 2}) {
		t.Error("short packet matched")
	}
	if !(PairPredicate{}).Match(nil) {
		t.Error("empty predicate must accept everything")
	}

	// Translation to the stack language agrees with direct matching.
	prog := pred.Program()
	for _, pt := range []uint8{49, 50, 51} {
		pkt := pupPacket(pt, 9)
		if got, want := Run(prog, pkt).Accept, pred.Match(pkt); got != want {
			t.Errorf("PupType %d: program=%v pairs=%v", pt, got, want)
		}
	}
	if prog := (PairPredicate{}).Program(); !Run(prog, nil).Accept {
		t.Error("empty predicate program must accept")
	}
}

func TestPairPredicateProgramEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 500; trial++ {
		var pred PairPredicate
		for k := r.Intn(5); k > 0; k-- {
			ft := FieldTest{Word: r.Intn(6), Value: uint16(r.Intn(3))}
			if r.Intn(2) == 0 {
				ft.Mask = 0x00FF
				ft.Value &= ft.Mask
			}
			pred = append(pred, ft)
		}
		prog := pred.Program()
		for j := 0; j < 8; j++ {
			pkt := genPacket(r)
			if got, want := Run(prog, pkt).Accept, pred.Match(pkt); got != want {
				t.Fatalf("pred %+v pkt %v: program=%v pairs=%v", pred, pkt, got, want)
			}
		}
	}
}
