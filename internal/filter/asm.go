package filter

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses the textual form of a filter program, the same form
// Program.String produces and the paper's listings use.  One
// instruction per line (or comma/whitespace-separated):
//
//	PUSHWORD+1
//	PUSHLIT|EQ 2      # packet type == PUP
//	PUSHWORD+3
//	PUSH00FF|AND      // mask low byte
//	PUSHZERO|GT
//
// Instruction syntax is ACTION, OP, or ACTION|OP; PUSHLIT and PUSHBYTE
// consume the next numeric token as their operand.  Numbers may be
// decimal or 0x-prefixed hex.  Comments run from '#' or '//' to end of
// line.  Mnemonics are case-insensitive.
func Assemble(src string) (Program, error) {
	var prog Program
	for lineNo, line := range strings.Split(src, "\n") {
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		line = strings.ReplaceAll(line, ",", " ")
		toks := strings.Fields(line)
		for i := 0; i < len(toks); i++ {
			tok := toks[i]
			if isNumber(tok) {
				return nil, fmt.Errorf("filter: line %d: unexpected operand %q", lineNo+1, tok)
			}
			w, needOperand, err := parseInstr(tok)
			if err != nil {
				return nil, fmt.Errorf("filter: line %d: %v", lineNo+1, err)
			}
			prog = append(prog, w)
			if needOperand {
				i++
				if i >= len(toks) {
					return nil, fmt.Errorf("filter: line %d: %s missing operand", lineNo+1, tok)
				}
				v, err := parseNum(toks[i])
				if err != nil {
					return nil, fmt.Errorf("filter: line %d: %v", lineNo+1, err)
				}
				prog = append(prog, Word(v))
			}
		}
	}
	if len(prog) == 0 {
		return nil, fmt.Errorf("filter: empty program")
	}
	return prog, nil
}

// parseInstr parses "ACTION", "OP" or "ACTION|OP".
func parseInstr(tok string) (w Word, needOperand bool, err error) {
	up := strings.ToUpper(tok)
	action := NOPUSH
	op := NOP
	parts := strings.SplitN(up, "|", 2)

	parsePart := func(s string) error {
		if a, ok := parseAction(s); ok {
			if action != NOPUSH {
				return fmt.Errorf("two stack actions in %q", tok)
			}
			action = a
			return nil
		}
		if o, ok := parseOp(s); ok {
			if op != NOP {
				return fmt.Errorf("two operators in %q", tok)
			}
			op = o
			return nil
		}
		return fmt.Errorf("unknown mnemonic %q", s)
	}
	for _, p := range parts {
		if err := parsePart(strings.TrimSpace(p)); err != nil {
			return 0, false, err
		}
	}
	return MkInstr(action, op), action.HasOperand(), nil
}

func parseAction(s string) (Action, bool) {
	switch s {
	case "NOPUSH":
		return NOPUSH, true
	case "PUSHLIT":
		return PUSHLIT, true
	case "PUSHZERO":
		return PUSHZERO, true
	case "PUSHONE":
		return PUSHONE, true
	case "PUSHFFFF":
		return PUSHFFFF, true
	case "PUSHFF00":
		return PUSHFF00, true
	case "PUSH00FF":
		return PUSH00FF, true
	case "PUSHIND":
		return PUSHIND, true
	case "PUSHHDRLEN":
		return PUSHHDRLEN, true
	case "PUSHPKTLEN":
		return PUSHPKTLEN, true
	case "PUSHBYTE":
		return PUSHBYTE, true
	}
	if rest, ok := strings.CutPrefix(s, "PUSHWORD+"); ok {
		n, err := parseNum(rest)
		if err != nil || int(n) > MaxWordIndex {
			return 0, false
		}
		return PushWord(int(n)), true
	}
	if s == "PUSHWORD" {
		return PushWord(0), true
	}
	return 0, false
}

func parseOp(s string) (Op, bool) {
	for op := NOP; op < numOps; op++ {
		if opNames[op] == s {
			return op, true
		}
	}
	return 0, false
}

func isNumber(s string) bool {
	_, err := parseNum(s)
	return err == nil
}

func parseNum(s string) (uint16, error) {
	v, err := strconv.ParseUint(strings.TrimPrefix(strings.ToLower(s), "0x"), func() int {
		if strings.HasPrefix(strings.ToLower(s), "0x") {
			return 16
		}
		return 10
	}(), 16)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	return uint16(v), nil
}
