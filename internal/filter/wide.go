package filter

// The wide (32-bit) evaluation mode explores the rest of §7's field
// size remark: "The current filter mechanism deals with 16-bit
// values, requiring multiple filter instructions to load packet fields
// that are wider or narrower.  It is possible that direct support for
// other field sizes would improve filter-evaluation efficiency."
//
// PUSHBYTE (wide.go's companion in the extended 16-bit machine) covers
// narrower; WideProgram covers wider: a variant machine whose stack
// cells are 32 bits and which adds a long-push action, so a Pup
// destination socket is one instruction and one comparison instead of
// the two-word CAND chain of figure 3-9.  The ablation benchmarks
// count the instruction savings.

// PUSHLONG pushes packet words n and n+1 as one 32-bit big-endian
// value; the word index n is the following operand word.  Valid only
// on the wide machine.
const PUSHLONG Action = 11

// A WideProgram is a program for the 32-bit variant machine.  The
// instruction encoding is identical to Program except:
//
//   - stack cells hold 32-bit values; PUSHWORD and PUSHBYTE
//     zero-extend,
//   - PUSHLONG, followed by an operand word holding the word index,
//     pushes two packet words as one 32-bit value,
//   - PUSHLIT's operand is still one 16-bit word (use PUSHLONGLIT—
//     PUSHLIT with two operand words—for 32-bit literals).
//
// The variant exists for measurement; the production device speaks the
// 16-bit language of the paper.
type WideProgram []Word

// PUSHLONGLIT pushes a 32-bit literal from the following two operand
// words (high word first).
const PUSHLONGLIT Action = 7

// WideResult mirrors Result for the wide machine.
type WideResult struct {
	Accept bool
	Instrs int
	Err    error
}

// RunWide evaluates a wide program against a packet.  Errors reject,
// as in the 16-bit machine.
func RunWide(p WideProgram, pkt []byte) WideResult {
	if len(p) == 0 {
		return WideResult{Accept: true}
	}
	var stack [StackDepth]uint32
	sp := 0
	res := WideResult{}
	fail := func(err error) WideResult {
		res.Err = err
		res.Accept = false
		return res
	}

	for pc := 0; pc < len(p); pc++ {
		w := p[pc]
		a, op := w.Action(), w.Op()
		res.Instrs++

		var push uint32
		doPush := true
		switch {
		case a == NOPUSH:
			doPush = false
		case a == PUSHLIT:
			pc++
			if pc >= len(p) {
				return fail(ErrMissingOper)
			}
			push = uint32(p[pc])
		case a == PUSHLONGLIT:
			pc += 2
			if pc >= len(p) {
				return fail(ErrMissingOper)
			}
			push = uint32(p[pc-1])<<16 | uint32(p[pc])
		case a == PUSHZERO:
			push = 0
		case a == PUSHONE:
			push = 1
		case a == PUSHFFFF:
			push = 0xFFFF
		case a == PUSHFF00:
			push = 0xFF00
		case a == PUSH00FF:
			push = 0x00FF
		case a == PUSHLONG:
			pc++
			if pc >= len(p) {
				return fail(ErrMissingOper)
			}
			n := int(p[pc])
			hi, ok1 := PacketWord(pkt, n)
			lo, ok2 := PacketWord(pkt, n+1)
			if !ok1 || !ok2 {
				return fail(ErrWordIndex)
			}
			push = uint32(hi)<<16 | uint32(lo)
		case a >= PUSHWORD:
			v, ok := PacketWord(pkt, int(a-PUSHWORD))
			if !ok {
				return fail(ErrWordIndex)
			}
			push = uint32(v)
		default:
			return fail(ErrBadAction)
		}
		if doPush {
			if sp >= StackDepth {
				return fail(ErrStackOverflow)
			}
			stack[sp] = push
			sp++
		}

		if op == NOP {
			continue
		}
		if sp < 2 {
			return fail(ErrUnderflow)
		}
		t1 := stack[sp-1]
		t2 := stack[sp-2]
		sp -= 2
		var r uint32
		switch op {
		case EQ:
			r = b2w32(t2 == t1)
		case NEQ:
			r = b2w32(t2 != t1)
		case LT:
			r = b2w32(t2 < t1)
		case LE:
			r = b2w32(t2 <= t1)
		case GT:
			r = b2w32(t2 > t1)
		case GE:
			r = b2w32(t2 >= t1)
		case AND:
			r = t2 & t1
		case OR:
			r = t2 | t1
		case XOR:
			r = t2 ^ t1
		case COR:
			if t1 == t2 {
				res.Accept = true
				return res
			}
			r = 0
		case CAND:
			if t1 != t2 {
				return res
			}
			r = 1
		case CNOR:
			if t1 == t2 {
				return res
			}
			r = 0
		case CNAND:
			if t1 != t2 {
				res.Accept = true
				return res
			}
			r = 1
		default:
			return fail(ErrBadOp)
		}
		stack[sp] = r
		sp++
	}
	if sp == 0 {
		return fail(ErrEmptyStack)
	}
	res.Accept = stack[sp-1] != 0
	return res
}

func b2w32(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// WideSocketFilter is figure 3-9 on the wide machine: the Pup
// destination socket becomes a single 32-bit comparison.
//
//	PUSHLONG 7  PUSHLONGLIT|CAND socket
//	PUSHWORD+1  PUSHLIT|EQ 2
//
// 4 instructions versus the 16-bit machine's 6 — the efficiency §7
// conjectured.
func WideSocketFilter(socket uint32) WideProgram {
	return WideProgram{
		MkInstr(PUSHLONG, NOP), 7,
		MkInstr(PUSHLONGLIT, CAND), Word(socket >> 16), Word(socket),
		MkInstr(PushWord(1), NOP),
		MkInstr(PUSHLIT, EQ), 2,
	}
}
