package filter

import "testing"

// TestMatchStatsAccounting pins the cost detail MatchStats adds to
// Match: the decision-tree walk reports its real path depth in Edges,
// every linear fallback reports its interpreter run, and the Idxs are
// the plain Match result.
func TestMatchStatsAccounting(t *testing.T) {
	filters := []Filter{
		mkEqFilter(10, Cond{1, 2}, Cond{8, 35}), // tree entry
		mkEqFilter(10, Cond{1, 2}, Cond{8, 36}), // tree entry, other socket
		Fig38PupTypeRange(),                     // range test: linear fallback
	}
	tbl := BuildTable(filters)

	pkt := pupPacket(50, 35)
	res := tbl.MatchStats(pkt)

	if len(res.Idxs) == 0 {
		t.Fatal("packet matched nothing")
	}
	match := tbl.Match(pkt)
	if len(match) != len(res.Idxs) {
		t.Fatalf("MatchStats.Idxs = %v, Match = %v", res.Idxs, match)
	}
	for i := range match {
		if match[i] != res.Idxs[i] {
			t.Fatalf("MatchStats.Idxs = %v, Match = %v", res.Idxs, match)
		}
	}

	// The walk examined at least the two tested words (1 and 8), so
	// the charged path depth is the real work, not a constant.
	if res.Edges < 2 {
		t.Errorf("Edges = %d, want the real path depth (>= 2)", res.Edges)
	}

	if len(res.Linear) != 1 || res.Linear[0].Idx != 2 {
		t.Fatalf("Linear = %+v, want one entry for filter 2", res.Linear)
	}
	le := res.Linear[0]
	r := Run(filters[2].Program, pkt)
	if le.Accept != r.Accept || le.Instrs != r.Instrs {
		t.Errorf("fallback eval = %+v, interpreter says accept=%v instrs=%d",
			le, r.Accept, r.Instrs)
	}
	if le.Instrs == 0 {
		t.Error("fallback charged zero instructions")
	}

	// A packet missing every tree entry still pays for the tree words
	// the walk examined (the fallback range filter may accept it; only
	// the tree entries 0 and 1 must miss).
	miss := tbl.MatchStats(pupPacket(50, 99))
	if miss.Edges == 0 {
		t.Error("miss charged zero edges despite examining tree words")
	}
	for _, idx := range miss.Idxs {
		if idx == 0 || idx == 1 {
			t.Errorf("socket-99 packet matched tree entry %d", idx)
		}
	}
}
