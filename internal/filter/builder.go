package filter

import "fmt"

// Builder constructs filter programs at run time.  The paper notes
// that "In normal use, the filters are not directly constructed by the
// programmer, but are 'compiled' at run time by a library procedure";
// Builder is that library procedure.  Methods append instructions and
// return the builder, so programs read like the paper's listings:
//
//	prog, err := filter.NewBuilder().
//		PushWord(1).PushLit(2).Op(filter.EQ). // packet type == PUP
//		PushWord(3).Push00FF().Op(filter.AND). // mask low byte
//		PushZero().Op(filter.GT).              // PupType > 0
//		Program()
//
// Errors (index out of range, stack misuse, over-long program) are
// accumulated and reported once by Program, so call chains need no
// intermediate checks.
type Builder struct {
	prog Program
	opt  ValidateOptions
	err  error
}

// NewBuilder returns an empty Builder for the base language.
func NewBuilder() *Builder { return &Builder{} }

// NewExtendedBuilder returns a Builder that accepts the §7 extended
// instructions.
func NewExtendedBuilder() *Builder {
	return &Builder{opt: ValidateOptions{Extensions: true}}
}

func (b *Builder) fail(format string, args ...any) *Builder {
	if b.err == nil {
		b.err = fmt.Errorf(format, args...)
	}
	return b
}

func (b *Builder) emit(w ...Word) *Builder {
	if b.err != nil {
		return b
	}
	if len(b.prog)+len(w) > MaxProgramLen {
		return b.fail("filter: program exceeds %d words", MaxProgramLen)
	}
	b.prog = append(b.prog, w...)
	return b
}

// Raw appends pre-assembled instruction words verbatim.
func (b *Builder) Raw(w ...Word) *Builder { return b.emit(w...) }

// PushWord appends an instruction pushing packet word n.
func (b *Builder) PushWord(n int) *Builder {
	if n < 0 || n > MaxWordIndex {
		return b.fail("filter: word index %d out of range", n)
	}
	return b.emit(MkInstr(PushWord(n), NOP))
}

// PushLit appends an instruction pushing the 16-bit literal v.
func (b *Builder) PushLit(v uint16) *Builder {
	return b.emit(MkInstr(PUSHLIT, NOP), Word(v))
}

// PushZero appends PUSHZERO.
func (b *Builder) PushZero() *Builder { return b.emit(MkInstr(PUSHZERO, NOP)) }

// PushOne appends PUSHONE.
func (b *Builder) PushOne() *Builder { return b.emit(MkInstr(PUSHONE, NOP)) }

// PushFFFF appends PUSHFFFF.
func (b *Builder) PushFFFF() *Builder { return b.emit(MkInstr(PUSHFFFF, NOP)) }

// PushFF00 appends PUSHFF00.
func (b *Builder) PushFF00() *Builder { return b.emit(MkInstr(PUSHFF00, NOP)) }

// Push00FF appends PUSH00FF.
func (b *Builder) Push00FF() *Builder { return b.emit(MkInstr(PUSH00FF, NOP)) }

// PushInd appends the extended indirect-push action.
func (b *Builder) PushInd() *Builder {
	b.requireExt("PUSHIND")
	return b.emit(MkInstr(PUSHIND, NOP))
}

// PushByte appends the extended byte-push action for packet byte n.
func (b *Builder) PushByte(n int) *Builder {
	b.requireExt("PUSHBYTE")
	if n < 0 || n > 0xFFFF {
		return b.fail("filter: byte index %d out of range", n)
	}
	return b.emit(MkInstr(PUSHBYTE, NOP), Word(n))
}

// PushHdrLen appends the extended header-length push.
func (b *Builder) PushHdrLen() *Builder {
	b.requireExt("PUSHHDRLEN")
	return b.emit(MkInstr(PUSHHDRLEN, NOP))
}

// PushPktLen appends the extended packet-length push.
func (b *Builder) PushPktLen() *Builder {
	b.requireExt("PUSHPKTLEN")
	return b.emit(MkInstr(PUSHPKTLEN, NOP))
}

func (b *Builder) requireExt(what string) {
	if !b.opt.Extensions && b.err == nil {
		b.err = fmt.Errorf("filter: %s requires an extended builder", what)
	}
}

// Op appends a bare binary operator (NOPUSH action).
func (b *Builder) Op(op Op) *Builder {
	if op.IsExtended() {
		b.requireExt(op.String())
	}
	return b.emit(MkInstr(NOPUSH, op))
}

// LitOp appends the fused "PUSHLIT|op, v" form from the paper's
// listings: push literal v, then apply op.
func (b *Builder) LitOp(op Op, v uint16) *Builder {
	if op.IsExtended() {
		b.requireExt(op.String())
	}
	return b.emit(MkInstr(PUSHLIT, op), Word(v))
}

// WordOp appends "PUSHWORD+n | op": push packet word n, then apply op.
func (b *Builder) WordOp(op Op, n int) *Builder {
	if n < 0 || n > MaxWordIndex {
		return b.fail("filter: word index %d out of range", n)
	}
	return b.emit(MkInstr(PushWord(n), op))
}

// --- Higher-level helpers -------------------------------------------------

// WordEQ appends instructions testing packet word n == v, leaving the
// boolean on the stack (three program words).
func (b *Builder) WordEQ(n int, v uint16) *Builder {
	return b.PushWord(n).LitOp(EQ, v)
}

// WordMaskEQ tests (packet word n AND mask) == v.
func (b *Builder) WordMaskEQ(n int, mask, v uint16) *Builder {
	return b.PushWord(n).LitOp(AND, mask).LitOp(EQ, v)
}

// CANDWordEQ appends a short-circuit equality test on word n: if the
// word differs from v the whole filter rejects immediately (figure
// 3-9's idiom).
func (b *Builder) CANDWordEQ(n int, v uint16) *Builder {
	return b.PushWord(n).LitOp(CAND, v)
}

// CORWordEQ appends a short-circuit test accepting immediately when
// word n equals v.
func (b *Builder) CORWordEQ(n int, v uint16) *Builder {
	return b.PushWord(n).LitOp(COR, v)
}

// And appends a bare AND, combining the top two boolean results.
func (b *Builder) And() *Builder { return b.Op(AND) }

// Or appends a bare OR.
func (b *Builder) Or() *Builder { return b.Op(OR) }

// AcceptAll arranges for the program to accept every packet (a single
// PUSHONE); useful for monitors.  It is only valid as the whole
// program.
func (b *Builder) AcceptAll() *Builder { return b.PushOne() }

// RejectAll arranges for the program to reject every packet.
func (b *Builder) RejectAll() *Builder { return b.PushZero() }

// Len returns the number of program words emitted so far.
func (b *Builder) Len() int { return len(b.prog) }

// Err returns the first accumulated error, if any.
func (b *Builder) Err() error { return b.err }

// Program finalizes the builder, validates the program and returns
// it.  The builder remains usable; further instructions extend the
// same program.
func (b *Builder) Program() (Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	p := b.prog.Clone()
	if _, err := Validate(p, b.opt); err != nil {
		return nil, err
	}
	return p, nil
}

// MustProgram is Program for statically known-correct filters; it
// panics on error.
func (b *Builder) MustProgram() Program {
	p, err := b.Program()
	if err != nil {
		panic(err)
	}
	return p
}

// Filter finalizes the builder into a Filter at the given priority.
func (b *Builder) Filter(priority uint8) (Filter, error) {
	p, err := b.Program()
	if err != nil {
		return Filter{}, err
	}
	return Filter{Priority: priority, Program: p}, nil
}
