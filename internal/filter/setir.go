package filter

// This file is the v2 compilation strategy for §7's "compile the set
// of active filters" proposal: a flat, register-based intermediate
// representation.  The stack language has no branches, so the stack
// depth at every program point is a compile-time constant; each stack
// slot therefore becomes a virtual register and every instruction is
// compiled to at most two fixed-size flat instructions (one for the
// push action, one for the binary operator) with all decoding,
// constants and register numbers resolved ahead of time.  The
// per-packet loop is a single switch over a contiguous instruction
// array — no closure chain, no indirect calls, no evaluation-state
// pool (the register file lives on the caller's stack).
//
// Acceptance and the executed-instruction count are bit-for-bit
// identical to the checked interpreter: each flat instruction carries
// the number of source instruction words it retires, out-of-range
// packet accesses reject at exactly the same source word, and the
// short-circuit operators terminate with exactly the same counts.
// The equivalence fuzzer in setir_fuzz_test.go pins all of this.

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// FlatOp is a flat-IR opcode.
type FlatOp uint8

const (
	FNop  FlatOp = iota // retire source words with no effect
	FLit                // reg[Dst] = Val
	FWord               // reg[Dst] = packet word Val (reject if out of range)
	FByte               // reg[Dst] = packet byte Val (reject if out of range)
	FInd                // reg[Dst] = packet word reg[A] (reject if out of range)
	FHdr                // reg[Dst] = env.HeaderWords
	FPkt                // reg[Dst] = len(pkt)
	FBin                // reg[Dst] = reg[A] <Sub> reg[B]
	FCond               // short-circuit <Sub> on reg[A], reg[B]; may terminate
	FRet                // accept = reg[A] != 0
	flatOpEnd
)

// FlatInstr is one fixed-size flat instruction.  Cost is the number of
// source instruction words this instruction retires (so executed-cost
// accounting matches the interpreter exactly); Pc is the source word
// index, kept for diagnostics.
type FlatInstr struct {
	Op   FlatOp
	Sub  Op // binary operator for FBin / FCond
	Dst  uint8
	A, B uint8
	Cost uint8
	Pc   uint8
	Val  uint16
}

// FlatProg is one filter program compiled to flat register code.
// Construct with CompileFlat; evaluate with Run.  Safe for concurrent
// use: evaluation state lives entirely on the caller's stack.
type FlatProg struct {
	code []FlatInstr
	info Info
	prog Program
	env  Env
	ext  bool
}

// CompileFlat validates p and compiles it to flat register code.  env
// is bound at compile time, exactly as Compile binds it.
func CompileFlat(p Program, opt ValidateOptions, env Env) (*FlatProg, error) {
	info, err := Validate(p, opt)
	if err != nil {
		return nil, err
	}
	f := &FlatProg{info: info, prog: p.Clone(), env: env, ext: opt.Extensions}

	depth := 0 // static stack depth before the current instruction
	for pc := 0; pc < len(p); pc++ {
		w := p[pc]
		a, op := w.Action(), w.Op()
		srcPC := pc
		emitted := false
		emit := func(in FlatInstr) {
			in.Pc = uint8(srcPC)
			if !emitted {
				in.Cost = 1 // the interpreter counts each source word once
				emitted = true
			}
			f.code = append(f.code, in)
		}

		switch {
		case a == NOPUSH:
			// no push
		case a == PUSHLIT:
			pc++
			emit(FlatInstr{Op: FLit, Dst: uint8(depth), Val: uint16(p[pc])})
			depth++
		case a == PUSHZERO:
			emit(FlatInstr{Op: FLit, Dst: uint8(depth), Val: 0})
			depth++
		case a == PUSHONE:
			emit(FlatInstr{Op: FLit, Dst: uint8(depth), Val: 1})
			depth++
		case a == PUSHFFFF:
			emit(FlatInstr{Op: FLit, Dst: uint8(depth), Val: 0xFFFF})
			depth++
		case a == PUSHFF00:
			emit(FlatInstr{Op: FLit, Dst: uint8(depth), Val: 0xFF00})
			depth++
		case a == PUSH00FF:
			emit(FlatInstr{Op: FLit, Dst: uint8(depth), Val: 0x00FF})
			depth++
		case a == PUSHIND:
			// Pops the index, pushes the word: net depth unchanged.
			emit(FlatInstr{Op: FInd, Dst: uint8(depth - 1), A: uint8(depth - 1)})
		case a == PUSHHDRLEN:
			emit(FlatInstr{Op: FLit, Dst: uint8(depth), Val: uint16(env.HeaderWords)})
			depth++
		case a == PUSHPKTLEN:
			emit(FlatInstr{Op: FPkt, Dst: uint8(depth)})
			depth++
		case a == PUSHBYTE:
			pc++
			emit(FlatInstr{Op: FByte, Dst: uint8(depth), Val: uint16(p[pc])})
			depth++
		default: // PUSHWORD+n
			emit(FlatInstr{Op: FWord, Dst: uint8(depth), Val: uint16(a - PUSHWORD)})
			depth++
		}

		if op == NOP {
			if !emitted {
				emit(FlatInstr{Op: FNop})
			}
			continue
		}
		// reg[depth-2] is t2, reg[depth-1] is t1; the result replaces t2.
		in := FlatInstr{Sub: op, Dst: uint8(depth - 2), A: uint8(depth - 2), B: uint8(depth - 1)}
		switch op {
		case COR, CAND, CNOR, CNAND:
			in.Op = FCond
		default:
			in.Op = FBin
		}
		emit(in)
		depth--
	}
	if len(p) > 0 {
		f.code = append(f.code, FlatInstr{Op: FRet, A: uint8(depth - 1), Pc: uint8(len(p) - 1)})
	}
	return f, nil
}

// Info returns the static summary computed at compile time.
func (f *FlatProg) Info() Info { return f.info }

// Program returns the source program.
func (f *FlatProg) Program() Program { return f.prog }

// Code returns the compiled instruction array (shared, do not modify).
func (f *FlatProg) Code() []FlatInstr { return f.code }

// SetEnv is a no-op accessor for interface parity with Prevalidated;
// the environment is bound at compile time (recompile to change it).
func (f *FlatProg) SetEnv(env Env) { f.env = env }

// Run evaluates the flat program against pkt.  Acceptance and Instrs
// are identical to Run/Prevalidated.Run on the same program.
func (f *FlatProg) Run(pkt []byte) Result {
	var reg [StackDepth]uint16
	res := Result{}
	if len(f.code) == 0 {
		res.Accept = true // the empty filter accepts everything
		return res
	}
	for i := range f.code {
		in := &f.code[i]
		res.Instrs += int(in.Cost)
		switch in.Op {
		case FNop:
		case FLit:
			reg[in.Dst] = in.Val
		case FWord:
			v, ok := PacketWord(pkt, int(in.Val))
			if !ok {
				res.Err = fmt.Errorf("word %d: %w", in.Pc, ErrWordIndex)
				return res
			}
			reg[in.Dst] = v
		case FByte:
			if int(in.Val) >= len(pkt) {
				res.Err = fmt.Errorf("word %d: %w", in.Pc, ErrWordIndex)
				return res
			}
			reg[in.Dst] = uint16(pkt[in.Val])
		case FInd:
			v, ok := PacketWord(pkt, int(reg[in.A]))
			if !ok {
				res.Err = fmt.Errorf("word %d: %w", in.Pc, ErrWordIndex)
				return res
			}
			reg[in.Dst] = v
		case FPkt:
			reg[in.Dst] = uint16(len(pkt))
		case FBin:
			t2, t1 := reg[in.A], reg[in.B]
			var r uint16
			switch in.Sub {
			case EQ:
				r = b2w(t2 == t1)
			case NEQ:
				r = b2w(t2 != t1)
			case LT:
				r = b2w(t2 < t1)
			case LE:
				r = b2w(t2 <= t1)
			case GT:
				r = b2w(t2 > t1)
			case GE:
				r = b2w(t2 >= t1)
			case AND:
				r = t2 & t1
			case OR:
				r = t2 | t1
			case XOR:
				r = t2 ^ t1
			case ADD:
				r = t2 + t1
			case SUB:
				r = t2 - t1
			case MUL:
				r = t2 * t1
			case LSH:
				r = t2 << (t1 & 15)
			case RSH:
				r = t2 >> (t1 & 15)
			}
			reg[in.Dst] = r
		case FCond:
			t2, t1 := reg[in.A], reg[in.B]
			switch in.Sub {
			case COR:
				if t1 == t2 {
					res.Accept = true
					return res
				}
				reg[in.Dst] = 0
			case CAND:
				if t1 != t2 {
					return res
				}
				reg[in.Dst] = 1
			case CNOR:
				if t1 == t2 {
					return res
				}
				reg[in.Dst] = 0
			case CNAND:
				if t1 != t2 {
					res.Accept = true
					return res
				}
				reg[in.Dst] = 1
			}
		case FRet:
			res.Accept = reg[in.A] != 0
			return res
		}
	}
	return res
}

// flatMagic heads the flat-IR binary encoding.
var flatMagic = [4]byte{'P', 'F', 'I', 'R'}

const flatVersion = 1

var (
	// ErrFlatEncoding reports a malformed flat-IR binary image.
	ErrFlatEncoding = errors.New("filter: malformed flat-IR encoding")
)

// MarshalBinary encodes the flat program: magic, version, flags, the
// static Info summary, the source program (MarshalBinary word format
// without the priority byte) and the instruction array.  The encoding
// round-trips exactly: UnmarshalFlat(enc).MarshalBinary() == enc.
func (f *FlatProg) MarshalBinary() ([]byte, error) {
	if len(f.prog) > MaxProgramLen {
		return nil, ErrTooLong
	}
	if len(f.code) > 2*MaxProgramLen+1 {
		return nil, ErrFlatEncoding
	}
	buf := make([]byte, 0, 16+2*len(f.prog)+10*len(f.code))
	buf = append(buf, flatMagic[:]...)
	buf = append(buf, flatVersion)
	var flags byte
	if f.ext {
		flags |= 1
	}
	buf = append(buf, flags)
	for _, v := range []int{f.info.MaxStack, f.info.MaxWord, f.info.MaxByte, f.info.Instrs, f.info.WorstInstrs} {
		buf = binary.BigEndian.AppendUint16(buf, uint16(v))
	}
	if f.info.UsesIndirect {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(f.env.HeaderWords))
	buf = append(buf, byte(len(f.prog)))
	for _, w := range f.prog {
		buf = binary.BigEndian.AppendUint16(buf, uint16(w))
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(f.code)))
	for _, in := range f.code {
		buf = append(buf, byte(in.Op), byte(in.Sub), in.Dst, in.A, in.B, in.Cost, in.Pc)
		buf = binary.BigEndian.AppendUint16(buf, in.Val)
	}
	return buf, nil
}

// UnmarshalFlat decodes a flat-IR image produced by MarshalBinary,
// validating every structural invariant (register indices, opcode
// ranges, lengths) so that arbitrary input can never panic the
// evaluator.
func UnmarshalFlat(data []byte) (*FlatProg, error) {
	r := data
	take := func(n int) ([]byte, bool) {
		if len(r) < n {
			return nil, false
		}
		b := r[:n]
		r = r[n:]
		return b, true
	}
	hdr, ok := take(6)
	if !ok || [4]byte(hdr[:4]) != flatMagic || hdr[4] != flatVersion {
		return nil, ErrFlatEncoding
	}
	f := &FlatProg{ext: hdr[5]&1 != 0}
	if hdr[5]&^byte(1) != 0 {
		return nil, ErrFlatEncoding
	}
	ib, ok := take(13)
	if !ok {
		return nil, ErrFlatEncoding
	}
	f.info.MaxStack = int(binary.BigEndian.Uint16(ib[0:]))
	f.info.MaxWord = int(binary.BigEndian.Uint16(ib[2:]))
	f.info.MaxByte = int(binary.BigEndian.Uint16(ib[4:]))
	f.info.Instrs = int(binary.BigEndian.Uint16(ib[6:]))
	f.info.WorstInstrs = int(binary.BigEndian.Uint16(ib[8:]))
	switch ib[10] {
	case 0:
	case 1:
		f.info.UsesIndirect = true
	default:
		return nil, ErrFlatEncoding
	}
	f.env.HeaderWords = int(binary.BigEndian.Uint16(ib[11:]))
	nb, ok := take(1)
	if !ok || int(nb[0]) > MaxProgramLen {
		return nil, ErrFlatEncoding
	}
	np := int(nb[0])
	pb, ok := take(2 * np)
	if !ok {
		return nil, ErrFlatEncoding
	}
	f.prog = make(Program, np)
	for i := range f.prog {
		f.prog[i] = Word(binary.BigEndian.Uint16(pb[2*i:]))
	}
	cb, ok := take(2)
	if !ok {
		return nil, ErrFlatEncoding
	}
	nc := int(binary.BigEndian.Uint16(cb))
	if nc > 2*MaxProgramLen+1 {
		return nil, ErrFlatEncoding
	}
	f.code = make([]FlatInstr, nc)
	for i := range f.code {
		b, ok := take(9)
		if !ok {
			return nil, ErrFlatEncoding
		}
		in := FlatInstr{
			Op: FlatOp(b[0]), Sub: Op(b[1]), Dst: b[2], A: b[3], B: b[4],
			Cost: b[5], Pc: b[6], Val: binary.BigEndian.Uint16(b[7:]),
		}
		if in.Op >= flatOpEnd {
			return nil, ErrFlatEncoding
		}
		if int(in.Dst) >= StackDepth || int(in.A) >= StackDepth || int(in.B) >= StackDepth {
			return nil, ErrFlatEncoding
		}
		switch in.Op {
		case FBin:
			switch in.Sub {
			case EQ, NEQ, LT, LE, GT, GE, AND, OR, XOR, ADD, SUB, MUL, LSH, RSH:
			default:
				return nil, ErrFlatEncoding
			}
		case FCond:
			switch in.Sub {
			case COR, CAND, CNOR, CNAND:
			default:
				return nil, ErrFlatEncoding
			}
		default:
			if in.Sub != 0 {
				return nil, ErrFlatEncoding
			}
		}
		f.code[i] = in
	}
	if len(r) != 0 {
		return nil, ErrFlatEncoding
	}
	return f, nil
}
