package filter

// This file implements the last of §7's proposed improvements:
// "Finally, with a redesigned filter language it might be possible to
// compile the set of active filters into a decision table, which
// should provide the best possible performance."
//
// Most real filters are conjunctions of equality tests on packet words
// (the paper's figures 3-8 and 3-9 are a mask-and-range filter and a
// pure equality conjunction respectively).  Extract analyses a program
// and, when it is such a conjunction, returns the set of
// (word, value) conditions; BuildTable merges the extracted filters of
// a whole port set into one decision tree that tests each packet word
// at most once per path.  Filters that do not fit the shape (ranges,
// masks, indirection) fall back to linear prevalidated interpretation,
// so Table.Match is always exactly equivalent to applying every filter
// in priority order — a property the test suite checks with
// testing/quick.

// Cond is one equality condition: packet word Word must equal Value.
type Cond struct {
	Word  int
	Value uint16
}

// Extracted is the decision-table form of a program: the packet is
// accepted iff it contains at least MinWords whole 16-bit words and
// every condition holds.  MinWords captures word accesses that do not
// surface as conditions (a push consumed by a short-circuit operator
// that would fault on a truncated packet), keeping table evaluation
// exactly equivalent to the interpreter, which rejects a packet the
// moment any access runs past its end.
type Extracted struct {
	Conds    []Cond
	MinWords int
}

// Extract attempts to reduce a base-language program to a conjunction
// of equality conditions.  The supported shapes cover the dominant
// idioms:
//
//   - short-circuit chains:  PUSHWORD+n  PUSHLIT|CAND v   (fig. 3-9)
//   - equality trees:        PUSHWORD+n  PUSHLIT|EQ v  ... AND
//   - constant programs:     PUSHONE / PUSHZERO
//
// ok reports success.  Contradictory conjunctions (w==1 AND w==2) are
// still returned; the table simply never matches them.
func Extract(p Program) (ex Extracted, ok bool) {
	if _, err := Validate(p, ValidateOptions{}); err != nil {
		return Extracted{}, false
	}
	if len(p) == 0 {
		return Extracted{}, true // empty filter: accepts everything
	}

	// Abstract values for symbolic execution.
	type kind int
	const (
		aConst kind = iota // a known 16-bit constant
		aWord              // the value of one packet word
		aConj              // boolean: 1 iff a set of conditions holds
	)
	type aval struct {
		k     kind
		c     uint16 // for aConst
		w     int    // for aWord
		conds []Cond // for aConj
	}

	var stack []aval
	var global []Cond // conditions asserted by CAND terminators
	minWords := 0     // every accessed word must exist in the packet

	pop2 := func() (t2, t1 aval) {
		t1 = stack[len(stack)-1]
		t2 = stack[len(stack)-2]
		stack = stack[:len(stack)-2]
		return
	}
	// eqCond turns (t2 op t1) with op∈{EQ,CAND} into a condition if
	// one side is a packet word and the other a constant.
	eqCond := func(t2, t1 aval) (Cond, bool) {
		switch {
		case t2.k == aWord && t1.k == aConst:
			return Cond{Word: t2.w, Value: t1.c}, true
		case t2.k == aConst && t1.k == aWord:
			return Cond{Word: t1.w, Value: t2.c}, true
		}
		return Cond{}, false
	}

	for pc := 0; pc < len(p); pc++ {
		w := p[pc]
		a, op := w.Action(), w.Op()

		switch {
		case a == NOPUSH:
		case a == PUSHLIT:
			pc++
			stack = append(stack, aval{k: aConst, c: uint16(p[pc])})
		case a == PUSHZERO:
			stack = append(stack, aval{k: aConst, c: 0})
		case a == PUSHONE:
			stack = append(stack, aval{k: aConst, c: 1})
		case a == PUSHFFFF:
			stack = append(stack, aval{k: aConst, c: 0xFFFF})
		case a == PUSHFF00:
			stack = append(stack, aval{k: aConst, c: 0xFF00})
		case a == PUSH00FF:
			stack = append(stack, aval{k: aConst, c: 0x00FF})
		case a >= PUSHWORD:
			n := int(a - PUSHWORD)
			if n+1 > minWords {
				minWords = n + 1
			}
			stack = append(stack, aval{k: aWord, w: n})
		default:
			return Extracted{}, false // extended action: not table-compatible
		}

		if op == NOP {
			continue
		}
		t2, t1 := pop2()
		switch op {
		case EQ:
			c, isEq := eqCond(t2, t1)
			if !isEq {
				return Extracted{}, false
			}
			stack = append(stack, aval{k: aConj, conds: []Cond{c}})
		case CAND:
			c, isEq := eqCond(t2, t1)
			if !isEq {
				return Extracted{}, false
			}
			global = append(global, c)
			// CAND pushes TRUE when it continues.
			stack = append(stack, aval{k: aConj})
		case AND:
			if t2.k != aConj || t1.k != aConj {
				return Extracted{}, false
			}
			stack = append(stack, aval{k: aConj, conds: append(append([]Cond{}, t2.conds...), t1.conds...)})
		default:
			return Extracted{}, false
		}
	}

	top := stack[len(stack)-1]
	var conds []Cond
	switch top.k {
	case aConj:
		conds = append(global, top.conds...)
	case aConst:
		if top.c == 0 {
			return Extracted{}, false // reject-all: leave to linear path
		}
		conds = global
	default: // aWord: acceptance depends on a raw field value
		return Extracted{}, false
	}
	return Extracted{Conds: dedupe(conds), MinWords: minWords}, true
}

func dedupe(conds []Cond) []Cond {
	seen := make(map[Cond]bool, len(conds))
	out := conds[:0]
	for _, c := range conds {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

// Table is a merged evaluator for a set of filters.  Filters whose
// programs reduce to equality conjunctions are compiled into one
// decision tree; the rest are applied linearly with prevalidated
// interpreters.  Filters that fail even validation match nothing.
type Table struct {
	filters []Filter
	root    *tnode
	linear  []tlinear // filters outside the table shape
	scratch []int
	lin     []LinearEval
	edges   int // tree nodes whose word was examined on the last walk
}

type tlinear struct {
	idx int
	pv  *Prevalidated
}

type tnode struct {
	word     int // packet word tested at this node; -1 for leaf-only
	branches map[uint16]*tnode
	wildcard *tnode    // entries that do not test this word
	accepts  []taccept // filters fully satisfied at this node
}

// taccept records an accepting filter and the packet length its
// program requires (Extracted.MinWords).
type taccept struct {
	idx      int
	minWords int
}

type tentry struct {
	idx      int
	minWords int
	conds    []Cond
}

// BuildTable compiles the filter set.  The returned table matches
// exactly the same (packet, filter) pairs as running every program
// with Run.
func BuildTable(filters []Filter) *Table {
	t := &Table{filters: append([]Filter(nil), filters...)}
	var entries []tentry
	for i, f := range filters {
		if ex, ok := Extract(f.Program); ok {
			entries = append(entries, tentry{idx: i, minWords: ex.MinWords, conds: ex.Conds})
			continue
		}
		pv, err := Prevalidate(f.Program, ValidateOptions{})
		if err != nil {
			continue // invalid program: matches nothing
		}
		t.linear = append(t.linear, tlinear{idx: i, pv: pv})
	}
	t.root = buildNode(entries)
	return t
}

// buildNode recursively partitions entries by the most commonly tested
// remaining packet word.
func buildNode(entries []tentry) *tnode {
	if len(entries) == 0 {
		return nil
	}
	n := &tnode{word: -1}

	// Entries with no remaining conditions accept here.
	var rest []tentry
	for _, e := range entries {
		if len(e.conds) == 0 {
			n.accepts = append(n.accepts, taccept{idx: e.idx, minWords: e.minWords})
		} else {
			rest = append(rest, e)
		}
	}
	if len(rest) == 0 {
		return n
	}

	// Pick the word tested by the most entries (ties: lowest word,
	// so headers are tested before payloads, which mirrors how
	// programmers order tests by selectivity in figure 3-9).
	count := make(map[int]int)
	for _, e := range rest {
		seen := make(map[int]bool)
		for _, c := range e.conds {
			if !seen[c.Word] {
				seen[c.Word] = true
				count[c.Word]++
			}
		}
	}
	best, bestN := -1, 0
	for w, k := range count {
		if k > bestN || (k == bestN && w < best) {
			best, bestN = w, k
		}
	}
	n.word = best

	byValue := make(map[uint16][]tentry)
	var wild []tentry
	for _, e := range rest {
		val, tests := uint16(0), false
		var remaining []Cond
		for _, c := range e.conds {
			if c.Word == best {
				if tests && c.Value != val {
					// Contradiction (w==a AND w==b):
					// this entry can never match.
					remaining = nil
					tests = false
					goto next
				}
				val, tests = c.Value, true
			} else {
				remaining = append(remaining, c)
			}
		}
		if tests {
			byValue[val] = append(byValue[val], tentry{idx: e.idx, minWords: e.minWords, conds: remaining})
		} else {
			wild = append(wild, e)
		}
	next:
	}
	if len(byValue) > 0 {
		n.branches = make(map[uint16]*tnode, len(byValue))
		for v, es := range byValue {
			n.branches[v] = buildNode(es)
		}
	}
	n.wildcard = buildNode(wild)
	return n
}

// LinearEval reports one fallback interpreter run performed during a
// table match: which filter, how many instruction words it executed,
// and whether it accepted.
type LinearEval struct {
	Idx    int
	Instrs int
	Accept bool
}

// MatchResult is a table match plus its evaluation-cost detail: the
// decision-tree path depth (Edges, one per tree node whose packet word
// was examined) and the per-filter interpreter runs of the linear
// fallbacks.  The total work of the match is Edges plus the sum of the
// fallback Instrs.
type MatchResult struct {
	Idxs   []int
	Edges  int
	Linear []LinearEval
}

// Match returns the indices of all filters accepting pkt, sorted by
// decreasing priority (ties by ascending index, matching the "order of
// application is unspecified" rule deterministically).
func (t *Table) Match(pkt []byte) []int {
	return t.MatchStats(pkt).Idxs
}

// MatchStats is Match plus cost accounting.  The returned slices are
// reused by the next call.
func (t *Table) MatchStats(pkt []byte) MatchResult {
	t.scratch = t.scratch[:0]
	t.lin = t.lin[:0]
	t.edges = 0
	t.walk(t.root, pkt)
	for _, l := range t.linear {
		r := l.pv.Run(pkt)
		if r.Accept {
			t.scratch = append(t.scratch, l.idx)
		}
		t.lin = append(t.lin, LinearEval{Idx: l.idx, Instrs: r.Instrs, Accept: r.Accept})
	}
	out := t.scratch
	// Insertion sort in place (decreasing priority, ties by ascending
	// index): sort.Slice's interface conversion allocates, and this
	// path runs once per received packet.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			pp, pc := t.filters[out[j-1]].Priority, t.filters[out[j]].Priority
			if pp > pc || (pp == pc && out[j-1] < out[j]) {
				break
			}
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return MatchResult{Idxs: out, Edges: t.edges, Linear: t.lin}
}

// MatchBest returns the highest-priority accepting filter index, or -1.
func (t *Table) MatchBest(pkt []byte) int {
	m := t.Match(pkt)
	if len(m) == 0 {
		return -1
	}
	return m[0]
}

func (t *Table) walk(n *tnode, pkt []byte) {
	for n != nil {
		for _, a := range n.accepts {
			if len(pkt) >= 2*a.minWords {
				t.scratch = append(t.scratch, a.idx)
			}
		}
		if n.word < 0 {
			return
		}
		t.edges++
		if n.branches != nil {
			if v, ok := PacketWord(pkt, n.word); ok {
				if b := n.branches[v]; b != nil {
					t.walk(b, pkt)
				}
			}
		}
		n = n.wildcard
	}
}
