package filter

// This file implements the last of §7's proposed improvements:
// "Finally, with a redesigned filter language it might be possible to
// compile the set of active filters into a decision table, which
// should provide the best possible performance."
//
// Most real filters are conjunctions of equality tests on packet words
// (the paper's figures 3-8 and 3-9 are a mask-and-range filter and a
// pure equality conjunction respectively).  Extract analyses a program
// and, when it is such a conjunction, returns the set of
// (word, value) conditions; BuildTable merges the extracted filters of
// a whole port set into one decision tree that tests each packet word
// at most once per path — the common-prefix factoring of the v2 set
// compiler, with each node's branch map providing indexed dispatch on
// the §3.1 pair-predicate demux key fields.  Filters that do not fit
// the shape (ranges, masks, indirection) fall back to flat register
// code (setir.go), so Table.Match is always exactly equivalent to
// applying every filter in priority order.
//
// v2 makes the table maintainable under churn: filters occupy stable
// slots, and Insert/Remove return a NEW table that shares every
// untouched subtree with the old one (copy-on-write along the affected
// path only).  A published table is immutable with respect to its
// filter set, which is what lets the devices swap table pointers
// atomically while in-flight matches finish on the old one.  The
// cumulative construction work (nodes built or copied, programs
// extracted or compiled) is tracked in deterministic units so the
// churn benchmark can compare incremental maintenance against full
// rebuilds without touching a wall clock.

// Cond is one equality condition: packet word Word must equal Value.
type Cond struct {
	Word  int
	Value uint16
}

// Extracted is the decision-table form of a program: the packet is
// accepted iff it contains at least MinWords whole 16-bit words and
// every condition holds.  MinWords captures word accesses that do not
// surface as conditions (a push consumed by a short-circuit operator
// that would fault on a truncated packet), keeping table evaluation
// exactly equivalent to the interpreter, which rejects a packet the
// moment any access runs past its end.
type Extracted struct {
	Conds    []Cond
	MinWords int
}

// Extract attempts to reduce a base-language program to a conjunction
// of equality conditions.  The supported shapes cover the dominant
// idioms:
//
//   - short-circuit chains:  PUSHWORD+n  PUSHLIT|CAND v   (fig. 3-9)
//   - equality trees:        PUSHWORD+n  PUSHLIT|EQ v  ... AND
//   - constant programs:     PUSHONE / PUSHZERO
//
// ok reports success.  Contradictory conjunctions (w==1 AND w==2) are
// still returned; the table simply never matches them.
func Extract(p Program) (ex Extracted, ok bool) {
	if _, err := Validate(p, ValidateOptions{}); err != nil {
		return Extracted{}, false
	}
	if len(p) == 0 {
		return Extracted{}, true // empty filter: accepts everything
	}

	// Abstract values for symbolic execution.
	type kind int
	const (
		aConst kind = iota // a known 16-bit constant
		aWord              // the value of one packet word
		aConj              // boolean: 1 iff a set of conditions holds
	)
	type aval struct {
		k     kind
		c     uint16 // for aConst
		w     int    // for aWord
		conds []Cond // for aConj
	}

	var stack []aval
	var global []Cond // conditions asserted by CAND terminators
	minWords := 0     // every accessed word must exist in the packet

	pop2 := func() (t2, t1 aval) {
		t1 = stack[len(stack)-1]
		t2 = stack[len(stack)-2]
		stack = stack[:len(stack)-2]
		return
	}
	// eqCond turns (t2 op t1) with op∈{EQ,CAND} into a condition if
	// one side is a packet word and the other a constant.
	eqCond := func(t2, t1 aval) (Cond, bool) {
		switch {
		case t2.k == aWord && t1.k == aConst:
			return Cond{Word: t2.w, Value: t1.c}, true
		case t2.k == aConst && t1.k == aWord:
			return Cond{Word: t1.w, Value: t2.c}, true
		}
		return Cond{}, false
	}

	for pc := 0; pc < len(p); pc++ {
		w := p[pc]
		a, op := w.Action(), w.Op()

		switch {
		case a == NOPUSH:
		case a == PUSHLIT:
			pc++
			stack = append(stack, aval{k: aConst, c: uint16(p[pc])})
		case a == PUSHZERO:
			stack = append(stack, aval{k: aConst, c: 0})
		case a == PUSHONE:
			stack = append(stack, aval{k: aConst, c: 1})
		case a == PUSHFFFF:
			stack = append(stack, aval{k: aConst, c: 0xFFFF})
		case a == PUSHFF00:
			stack = append(stack, aval{k: aConst, c: 0xFF00})
		case a == PUSH00FF:
			stack = append(stack, aval{k: aConst, c: 0x00FF})
		case a >= PUSHWORD:
			n := int(a - PUSHWORD)
			if n+1 > minWords {
				minWords = n + 1
			}
			stack = append(stack, aval{k: aWord, w: n})
		default:
			return Extracted{}, false // extended action: not table-compatible
		}

		if op == NOP {
			continue
		}
		t2, t1 := pop2()
		switch op {
		case EQ:
			c, isEq := eqCond(t2, t1)
			if !isEq {
				return Extracted{}, false
			}
			stack = append(stack, aval{k: aConj, conds: []Cond{c}})
		case CAND:
			c, isEq := eqCond(t2, t1)
			if !isEq {
				return Extracted{}, false
			}
			global = append(global, c)
			// CAND pushes TRUE when it continues.
			stack = append(stack, aval{k: aConj})
		case AND:
			if t2.k != aConj || t1.k != aConj {
				return Extracted{}, false
			}
			stack = append(stack, aval{k: aConj, conds: append(append([]Cond{}, t2.conds...), t1.conds...)})
		default:
			return Extracted{}, false
		}
	}

	top := stack[len(stack)-1]
	var conds []Cond
	switch top.k {
	case aConj:
		conds = append(global, top.conds...)
	case aConst:
		if top.c == 0 {
			return Extracted{}, false // reject-all: leave to linear path
		}
		conds = global
	default: // aWord: acceptance depends on a raw field value
		return Extracted{}, false
	}
	return Extracted{Conds: dedupe(conds), MinWords: minWords}, true
}

func dedupe(conds []Cond) []Cond {
	seen := make(map[Cond]bool, len(conds))
	out := conds[:0]
	for _, c := range conds {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

// contradictory reports whether the conjunction contains two different
// required values for the same word — an entry that can never match.
func contradictory(conds []Cond) bool {
	for i, a := range conds {
		for _, b := range conds[i+1:] {
			if a.Word == b.Word && a.Value != b.Value {
				return true
			}
		}
	}
	return false
}

// slotKind records how one slot participates in the table.
type slotKind uint8

const (
	slotDead     slotKind = iota // removed or never assigned
	slotTree                     // extracted conjunction, in the decision tree
	slotFallback                 // flat register code, evaluated linearly
	slotInert                    // invalid or contradictory: matches nothing
)

// slotState is the per-slot maintenance record: everything Remove
// needs to patch a filter back out of the structure it was inserted
// into.
type slotState struct {
	kind     slotKind
	conds    []Cond // tree slots: the extracted conjunction
	minWords int
	fp       *FlatProg // fallback slots: the compiled program
}

// Table is a merged evaluator for a set of filters.  Filters whose
// programs reduce to equality conjunctions are compiled into one
// decision tree; the rest are compiled to flat register code and
// applied linearly.  Filters that fail even validation match nothing.
//
// A Table's filter set is immutable: Insert and Remove return a new
// Table sharing all untouched subtrees.  The per-match scratch buffers
// are not shared between tables and make a single Table value safe
// only for serialized matching (the devices guarantee this).
type Table struct {
	filters []Filter    // by slot; dead slots have a nil Program
	slots   []slotState // by slot
	free    []int       // dead slots available for reuse
	root    *tnode
	linear  []tlinear // fallback slots, ascending slot order
	scratch []int
	lin     []LinearEval
	edges   int
	work    int // cumulative deterministic construction work
}

type tlinear struct {
	idx int
	fp  *FlatProg
}

type tnode struct {
	word     int // packet word tested at this node; -1 for leaf-only
	branches map[uint16]*tnode
	wildcard *tnode    // entries that do not test this word
	accepts  []taccept // filters fully satisfied at this node
}

// taccept records an accepting filter and the packet length its
// program requires (Extracted.MinWords).
type taccept struct {
	idx      int
	minWords int
}

type tentry struct {
	idx      int
	minWords int
	conds    []Cond
}

// workNode is the deterministic cost of constructing one tree node
// with the given branch fanout: every branch is placed by evaluating
// entry conditions.
func workNode(fanout int) int { return 1 + fanout }

// workClone is the deterministic cost of copy-on-write-copying an
// existing node: the branch map is a straight pointer copy, an order
// of magnitude cheaper per entry than constructing the branches, so a
// patched path through a high-fanout node stays far cheaper than
// rebuilding it.
func workClone(fanout int) int { return 1 + fanout/16 }

// workCompile is the deterministic cost of extracting/compiling one
// program into the table.
const workCompile = 4

// BuildTable compiles the filter set from scratch.  The returned table
// matches exactly the same (packet, filter) pairs as running every
// program with Run.  Slot i holds filters[i].
func BuildTable(filters []Filter) *Table {
	t := &Table{filters: append([]Filter(nil), filters...)}
	t.slots = make([]slotState, len(filters))
	var entries []tentry
	for i, f := range filters {
		st := t.compileSlot(f)
		t.slots[i] = st
		switch st.kind {
		case slotTree:
			entries = append(entries, tentry{idx: i, minWords: st.minWords, conds: st.conds})
		case slotFallback:
			t.linear = append(t.linear, tlinear{idx: i, fp: st.fp})
		}
	}
	t.root = buildNode(entries, &t.work)
	return t
}

// compileSlot classifies and compiles one filter program, charging
// work units.
func (t *Table) compileSlot(f Filter) slotState {
	t.work += workCompile
	if ex, ok := Extract(f.Program); ok {
		if contradictory(ex.Conds) {
			return slotState{kind: slotInert}
		}
		return slotState{kind: slotTree, conds: ex.Conds, minWords: ex.MinWords}
	}
	fp, err := CompileFlat(f.Program, ValidateOptions{}, Env{})
	if err != nil {
		return slotState{kind: slotInert} // invalid program: matches nothing
	}
	return slotState{kind: slotFallback, fp: fp}
}

// buildNode recursively partitions entries by the most commonly tested
// remaining packet word.
func buildNode(entries []tentry, wk *int) *tnode {
	if len(entries) == 0 {
		return nil
	}
	n := &tnode{word: -1}

	// Entries with no remaining conditions accept here.
	var rest []tentry
	for _, e := range entries {
		if len(e.conds) == 0 {
			n.accepts = append(n.accepts, taccept{idx: e.idx, minWords: e.minWords})
		} else {
			rest = append(rest, e)
		}
	}
	if len(rest) == 0 {
		*wk += workNode(0)
		return n
	}

	// Pick the word tested by the most entries (ties: lowest word,
	// so headers are tested before payloads, which mirrors how
	// programmers order tests by selectivity in figure 3-9).
	count := make(map[int]int)
	for _, e := range rest {
		seen := make(map[int]bool)
		for _, c := range e.conds {
			if !seen[c.Word] {
				seen[c.Word] = true
				count[c.Word]++
			}
		}
	}
	best, bestN := -1, 0
	for w, k := range count {
		if k > bestN || (k == bestN && w < best) {
			best, bestN = w, k
		}
	}
	n.word = best

	byValue := make(map[uint16][]tentry)
	var wild []tentry
	for _, e := range rest {
		val, tests := uint16(0), false
		var remaining []Cond
		for _, c := range e.conds {
			if c.Word == best {
				if tests && c.Value != val {
					// Contradiction (w==a AND w==b):
					// this entry can never match.
					remaining = nil
					tests = false
					goto next
				}
				val, tests = c.Value, true
			} else {
				remaining = append(remaining, c)
			}
		}
		if tests {
			byValue[val] = append(byValue[val], tentry{idx: e.idx, minWords: e.minWords, conds: remaining})
		} else {
			wild = append(wild, e)
		}
	next:
	}
	if len(byValue) > 0 {
		n.branches = make(map[uint16]*tnode, len(byValue))
		for v, es := range byValue {
			n.branches[v] = buildNode(es, wk)
		}
	}
	n.wildcard = buildNode(wild, wk)
	*wk += workNode(len(n.branches))
	return n
}

// clone copies one node so its accepts and branch map can be modified
// without touching the shared original.  Subtrees are shared.
func (n *tnode) clone(wk *int) *tnode {
	c := &tnode{word: n.word, wildcard: n.wildcard}
	if len(n.accepts) > 0 {
		c.accepts = append(make([]taccept, 0, len(n.accepts)), n.accepts...)
	}
	if n.branches != nil {
		c.branches = make(map[uint16]*tnode, len(n.branches))
		for v, b := range n.branches {
			c.branches[v] = b
		}
	}
	*wk += workClone(len(n.branches))
	return c
}

// shallowClone copies the slot bookkeeping so the new table can be
// patched; the decision tree is shared until insert/remove copies the
// affected path.
func (t *Table) shallowClone() *Table {
	nt := &Table{
		filters: append([]Filter(nil), t.filters...),
		slots:   append([]slotState(nil), t.slots...),
		free:    append([]int(nil), t.free...),
		root:    t.root,
		linear:  append([]tlinear(nil), t.linear...),
		work:    t.work,
	}
	return nt
}

// Insert returns a new table containing f in a fresh slot, sharing
// every untouched subtree with the receiver, plus the assigned slot.
// Construction work is proportional to the affected path, not the
// filter population.
func (t *Table) Insert(f Filter) (*Table, int) {
	nt := t.shallowClone()
	var slot int
	if n := len(nt.free); n > 0 {
		slot = nt.free[n-1]
		nt.free = nt.free[:n-1]
		nt.filters[slot] = f
	} else {
		slot = len(nt.filters)
		nt.filters = append(nt.filters, f)
		nt.slots = append(nt.slots, slotState{})
	}
	st := nt.compileSlot(f)
	nt.slots[slot] = st
	switch st.kind {
	case slotTree:
		nt.root = insertEntry(nt.root, tentry{idx: slot, minWords: st.minWords, conds: st.conds}, &nt.work)
	case slotFallback:
		// Keep the fallback list in ascending slot order so the
		// evaluation order is deterministic and independent of
		// insertion history.
		at := len(nt.linear)
		for i, l := range nt.linear {
			if l.idx > slot {
				at = i
				break
			}
		}
		nt.linear = append(nt.linear, tlinear{})
		copy(nt.linear[at+1:], nt.linear[at:])
		nt.linear[at] = tlinear{idx: slot, fp: st.fp}
	}
	return nt, slot
}

// insertEntry adds one extracted entry to the tree, copying only the
// nodes along its path.
func insertEntry(n *tnode, e tentry, wk *int) *tnode {
	if n == nil {
		return buildNode([]tentry{e}, wk)
	}
	c := n.clone(wk)
	if len(e.conds) == 0 {
		c.accepts = append(c.accepts, taccept{idx: e.idx, minWords: e.minWords})
		return c
	}
	if c.word < 0 {
		// Leaf-only node: it must now test a word.  Mirror buildNode's
		// choice for a single entry: the lowest remaining word.
		best := e.conds[0].Word
		for _, cd := range e.conds {
			if cd.Word < best {
				best = cd.Word
			}
		}
		c.word = best
	}
	val, tests := uint16(0), false
	var remaining []Cond
	for _, cd := range e.conds {
		if cd.Word == c.word {
			val, tests = cd.Value, true
		} else {
			remaining = append(remaining, cd)
		}
	}
	if tests {
		if c.branches == nil {
			c.branches = make(map[uint16]*tnode, 1)
		}
		c.branches[val] = insertEntry(c.branches[val], tentry{idx: e.idx, minWords: e.minWords, conds: remaining}, wk)
	} else {
		c.wildcard = insertEntry(c.wildcard, e, wk)
	}
	return c
}

// Remove returns a new table without the filter in the given slot,
// sharing every untouched subtree with the receiver.  Removing a dead
// slot is a no-op clone.
func (t *Table) Remove(slot int) *Table {
	nt := t.shallowClone()
	if slot < 0 || slot >= len(nt.slots) {
		return nt
	}
	st := nt.slots[slot]
	switch st.kind {
	case slotTree:
		nt.root = removeEntry(nt.root, slot, st.conds, &nt.work)
	case slotFallback:
		for i, l := range nt.linear {
			if l.idx == slot {
				nt.linear = append(nt.linear[:i:i], nt.linear[i+1:]...)
				break
			}
		}
	case slotDead:
		return nt
	}
	nt.filters[slot] = Filter{}
	nt.slots[slot] = slotState{kind: slotDead}
	nt.free = append(nt.free, slot)
	return nt
}

// removeEntry deletes one entry along its deterministic path, copying
// the touched nodes and pruning any that become empty.
func removeEntry(n *tnode, slot int, conds []Cond, wk *int) *tnode {
	if n == nil {
		return nil
	}
	c := n.clone(wk)
	if len(conds) == 0 {
		for i, a := range c.accepts {
			if a.idx == slot {
				c.accepts = append(c.accepts[:i:i], c.accepts[i+1:]...)
				break
			}
		}
		return pruneNode(c)
	}
	val, tests := uint16(0), false
	var remaining []Cond
	for _, cd := range conds {
		if cd.Word == c.word {
			val, tests = cd.Value, true
		} else {
			remaining = append(remaining, cd)
		}
	}
	if tests {
		if b := c.branches[val]; b != nil {
			nb := removeEntry(b, slot, remaining, wk)
			if nb == nil {
				delete(c.branches, val)
				if len(c.branches) == 0 {
					c.branches = nil
				}
			} else {
				c.branches[val] = nb
			}
		}
	} else {
		c.wildcard = removeEntry(c.wildcard, slot, conds, wk)
	}
	return pruneNode(c)
}

// pruneNode drops a node that no longer holds or routes anything.
func pruneNode(n *tnode) *tnode {
	if len(n.accepts) == 0 && len(n.branches) == 0 && n.wildcard == nil {
		return nil
	}
	return n
}

// Slots returns the slot-array length (live and dead slots included).
func (t *Table) Slots() int { return len(t.filters) }

// Live reports whether the slot currently holds a filter.
func (t *Table) Live(slot int) bool {
	return slot >= 0 && slot < len(t.slots) && t.slots[slot].kind != slotDead
}

// Fallback returns the flat code evaluated linearly for the slot, or
// nil if the slot is tree-resident, inert or dead.
func (t *Table) Fallback(slot int) *FlatProg {
	if slot < 0 || slot >= len(t.slots) {
		return nil
	}
	return t.slots[slot].fp
}

// Work returns the cumulative deterministic construction work (nodes
// built or copied, programs compiled) accumulated by this table and
// every ancestor it was patched from.  The difference across one
// Insert/Remove (or one BuildTable) is that operation's cost in
// stall-free units.
func (t *Table) Work() int { return t.work }

// LinearEval reports one fallback interpreter run performed during a
// table match: which filter, how many instruction words it executed,
// and whether it accepted.
type LinearEval struct {
	Idx    int
	Instrs int
	Accept bool
}

// MatchResult is a table match plus its evaluation-cost detail: the
// decision-tree path depth (Edges, one per tree node whose packet word
// was examined) and the per-filter interpreter runs of the linear
// fallbacks.  The total work of the match is Edges plus the sum of the
// fallback Instrs.
type MatchResult struct {
	Idxs   []int
	Edges  int
	Linear []LinearEval
}

// TreeMatch reports the tree-resident slots accepting pkt (unsorted)
// and the walk's path depth.  The returned slice is reused by the next
// TreeMatch or MatchStats call.  Fallback slots are not consulted —
// the caller drives those itself via Fallback, which is how the
// devices evaluate fallbacks lazily in scan order.
func (t *Table) TreeMatch(pkt []byte) ([]int, int) {
	t.scratch = t.scratch[:0]
	t.edges = 0
	t.walk(t.root, pkt)
	return t.scratch, t.edges
}

// Match returns the indices of all filters accepting pkt, sorted by
// decreasing priority (ties by ascending index, matching the "order of
// application is unspecified" rule deterministically).
func (t *Table) Match(pkt []byte) []int {
	return t.MatchStats(pkt).Idxs
}

// MatchStats is Match plus cost accounting.  The returned slices are
// reused by the next call.
func (t *Table) MatchStats(pkt []byte) MatchResult {
	t.scratch = t.scratch[:0]
	t.lin = t.lin[:0]
	t.edges = 0
	t.walk(t.root, pkt)
	for _, l := range t.linear {
		r := l.fp.Run(pkt)
		if r.Accept {
			t.scratch = append(t.scratch, l.idx)
		}
		t.lin = append(t.lin, LinearEval{Idx: l.idx, Instrs: r.Instrs, Accept: r.Accept})
	}
	out := t.scratch
	// Insertion sort in place (decreasing priority, ties by ascending
	// index): sort.Slice's interface conversion allocates, and this
	// path runs once per received packet.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			pp, pc := t.filters[out[j-1]].Priority, t.filters[out[j]].Priority
			if pp > pc || (pp == pc && out[j-1] < out[j]) {
				break
			}
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return MatchResult{Idxs: out, Edges: t.edges, Linear: t.lin}
}

// MatchBest returns the highest-priority accepting filter index, or -1.
func (t *Table) MatchBest(pkt []byte) int {
	m := t.Match(pkt)
	if len(m) == 0 {
		return -1
	}
	return m[0]
}

func (t *Table) walk(n *tnode, pkt []byte) {
	for n != nil {
		for _, a := range n.accepts {
			if len(pkt) >= 2*a.minWords {
				t.scratch = append(t.scratch, a.idx)
			}
		}
		if n.word < 0 {
			return
		}
		t.edges++
		if n.branches != nil {
			if v, ok := PacketWord(pkt, n.word); ok {
				if b := n.branches[v]; b != nil {
					t.walk(b, pkt)
				}
			}
		}
		n = n.wildcard
	}
}
