package filter

import (
	"bytes"
	"math/rand"
	"testing"
)

// randProgWords draws an arbitrary word sequence — mostly invalid
// programs, which is the point: CompileFlat must agree with Validate
// about what is compilable, and the compiled code must agree with the
// interpreter on everything that is.
func randProgWords(r *rand.Rand) Program {
	n := r.Intn(24)
	p := make(Program, n)
	for i := range p {
		p[i] = Word(r.Uint32())
	}
	return p
}

// randPacket draws a packet, biased toward short ones so truncation
// behavior is exercised.
func randPacket(r *rand.Rand) []byte {
	n := r.Intn(40)
	b := make([]byte, n)
	r.Read(b)
	return b
}

// TestFlatMatchesInterpreter pins verdict and executed-instruction
// parity between the flat register code and the checked interpreter
// across random programs and packets, with and without extensions.
func TestFlatMatchesInterpreter(t *testing.T) {
	r := rand.New(rand.NewSource(991))
	env := Env{HeaderWords: 2}
	compiled := 0
	for trial := 0; trial < 20000; trial++ {
		p := randProgWords(r)
		ext := trial%2 == 1
		opt := ValidateOptions{Extensions: ext}
		fp, err := CompileFlat(p, opt, env)
		if _, verr := Validate(p, opt); (verr == nil) != (err == nil) {
			t.Fatalf("trial %d: Validate err %v, CompileFlat err %v", trial, verr, err)
		}
		if err != nil {
			continue
		}
		compiled++
		for k := 0; k < 4; k++ {
			pkt := randPacket(r)
			var want Result
			if ext {
				want = RunExt(p, pkt, env)
			} else {
				want = Run(p, pkt)
			}
			got := fp.Run(pkt)
			if got.Accept != want.Accept || got.Instrs != want.Instrs {
				t.Fatalf("trial %d: flat (accept=%v instrs=%d) != interp (accept=%v instrs=%d)\nprog: %v\npkt: %v",
					trial, got.Accept, got.Instrs, want.Accept, want.Instrs, p, pkt)
			}
			if (got.Err == nil) != (want.Err == nil) {
				t.Fatalf("trial %d: flat err %v, interp err %v", trial, got.Err, want.Err)
			}
		}
	}
	if compiled < 100 {
		t.Fatalf("only %d random programs compiled; generator too weak", compiled)
	}
}

// TestFlatMatchesPrevalidated pins parity against the fast path on the
// canonical filters, where both evaluators take their fast lanes.
func TestFlatMatchesPrevalidated(t *testing.T) {
	progs := []Program{
		DstSocketFilter(10, 35).Program,
		NewBuilder().WordEQ(7, 0).WordEQ(8, 35).And().MustProgram(),
		NewBuilder().CANDWordEQ(1, PupEtherType).CANDWordEQ(8, 35).PushOne().MustProgram(),
		NewBuilder().AcceptAll().MustProgram(),
		NewBuilder().RejectAll().MustProgram(),
	}
	r := rand.New(rand.NewSource(7))
	for pi, p := range progs {
		pv, err := Prevalidate(p, ValidateOptions{})
		if err != nil {
			t.Fatalf("prog %d: %v", pi, err)
		}
		fp, err := CompileFlat(p, ValidateOptions{}, Env{})
		if err != nil {
			t.Fatalf("prog %d: %v", pi, err)
		}
		for k := 0; k < 200; k++ {
			pkt := randPacket(r)
			want, got := pv.Run(pkt), fp.Run(pkt)
			if got.Accept != want.Accept || got.Instrs != want.Instrs {
				t.Fatalf("prog %d pkt %v: flat (%v,%d) != prevalidated (%v,%d)",
					pi, pkt, got.Accept, got.Instrs, want.Accept, want.Instrs)
			}
		}
	}
}

// TestFlatRoundTrip pins the binary encoding: marshal → unmarshal →
// marshal is byte-identical and the decoded program evaluates
// identically.
func TestFlatRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	n := 0
	for trial := 0; trial < 5000 && n < 500; trial++ {
		p := randProgWords(r)
		fp, err := CompileFlat(p, ValidateOptions{}, Env{})
		if err != nil {
			continue
		}
		n++
		enc, err := fp.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		dec, err := UnmarshalFlat(enc)
		if err != nil {
			t.Fatalf("unmarshal: %v\nimage: %v", err, enc)
		}
		enc2, err := dec.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("round trip not byte-identical:\n%v\n%v", enc, enc2)
		}
		pkt := randPacket(r)
		a, b := fp.Run(pkt), dec.Run(pkt)
		if a.Accept != b.Accept || a.Instrs != b.Instrs {
			t.Fatalf("decoded program diverges: (%v,%d) vs (%v,%d)", a.Accept, a.Instrs, b.Accept, b.Instrs)
		}
	}
	if n < 100 {
		t.Fatalf("only %d programs exercised", n)
	}
}

// FuzzFlatRoundTrip feeds arbitrary bytes to the decoder: it must
// never panic, and anything it accepts must re-encode byte-identically
// and evaluate without panicking.
func FuzzFlatRoundTrip(f *testing.F) {
	for _, p := range []Program{
		DstSocketFilter(10, 35).Program,
		NewBuilder().AcceptAll().MustProgram(),
		NewBuilder().WordEQ(1, PupEtherType).WordEQ(8, 35).And().MustProgram(),
	} {
		fp, err := CompileFlat(p, ValidateOptions{}, Env{})
		if err != nil {
			f.Fatal(err)
		}
		enc, err := fp.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc, []byte{0, 1, 2, 3})
	}
	f.Fuzz(func(t *testing.T, image, pkt []byte) {
		fp, err := UnmarshalFlat(image)
		if err != nil {
			return
		}
		fp.Run(pkt)
		enc, err := fp.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted image does not re-marshal: %v", err)
		}
		if !bytes.Equal(enc, image) {
			t.Fatalf("accepted image not canonical:\n in: %v\nout: %v", image, enc)
		}
	})
}

// FuzzFlatEquivalence compiles arbitrary word sequences and, when they
// validate, pins flat-vs-interpreter verdict and count parity.
func FuzzFlatEquivalence(f *testing.F) {
	f.Add([]byte{0x01, 0x02, 0x03, 0x04}, []byte{0, 35})
	f.Fuzz(func(t *testing.T, raw, pkt []byte) {
		if len(raw) > 2*MaxProgramLen {
			return
		}
		p := make(Program, len(raw)/2)
		for i := range p {
			p[i] = Word(uint16(raw[2*i])<<8 | uint16(raw[2*i+1]))
		}
		fp, err := CompileFlat(p, ValidateOptions{}, Env{})
		if err != nil {
			return
		}
		want := Run(p, pkt)
		got := fp.Run(pkt)
		if got.Accept != want.Accept || got.Instrs != want.Instrs {
			t.Fatalf("flat (%v,%d) != interp (%v,%d)\nprog: %v\npkt: %v",
				got.Accept, got.Instrs, want.Accept, want.Instrs, p, pkt)
		}
	})
}
