package filter

import "fmt"

// Env supplies the per-packet context needed by the extended stack
// actions.  The zero Env is correct for the base language.
type Env struct {
	// HeaderWords is the data-link header length in 16-bit words
	// (2 on the 3 Mb experimental Ethernet, 7 on the 10 Mb
	// Ethernet), pushed by PUSHHDRLEN.
	HeaderWords int
}

// Result reports the outcome of applying one filter program to one
// packet.
type Result struct {
	// Accept is the predicate value: true if the packet should be
	// delivered to this filter's port.
	Accept bool
	// Instrs is the number of instruction words actually executed,
	// which short-circuit operators make less than len(program).
	// The simulator charges virtual CPU time per executed word.
	Instrs int
	// Err is non-nil if evaluation stopped on a malformed
	// instruction, stack misuse or out-of-range packet access; the
	// packet is rejected in that case, matching the original
	// driver ("or an error is detected, it returns").
	Err error
}

// Run applies a base-language program to a packet with full
// per-instruction checking, exactly as the production interpreter of
// §4 does: "it must be carefully coded since its inner loop is quite
// busy.  It simply iterates through the 'instruction words' of a
// filter (there are no branch instructions), evaluating the filter
// predicate using a small stack."
func Run(p Program, pkt []byte) Result {
	return run(p, pkt, Env{}, false, len(p))
}

// RunExt is Run with the §7 extended instructions permitted.
func RunExt(p Program, pkt []byte, env Env) Result {
	return run(p, pkt, env, true, len(p))
}

// run interprets p with full checking and a hard budget of fuel
// executed instruction words.  The plain entry points pass len(p),
// which no execution can exceed, so the budget check never fires for
// them.
func run(p Program, pkt []byte, env Env, ext bool, fuel int) Result {
	if len(p) == 0 {
		// The empty filter accepts everything (table 6-10's
		// zero-instruction baseline).
		return Result{Accept: true}
	}
	var stack [StackDepth]uint16
	sp := 0 // number of words on the stack
	res := Result{}

	fail := func(pc int, err error) Result {
		res.Err = fmt.Errorf("word %d: %w", pc, err)
		res.Accept = false
		return res
	}

	for pc := 0; pc < len(p); pc++ {
		w := p[pc]
		a, op := w.Action(), w.Op()
		if res.Instrs >= fuel {
			res.Err = fmt.Errorf("word %d: %w", pc, ErrFuel)
			return res
		}
		res.Instrs++

		// Stack action first (figure 3-6).
		var push uint16
		doPush := true
		switch {
		case a == NOPUSH:
			doPush = false
		case a == PUSHLIT:
			pc++
			if pc >= len(p) {
				return fail(pc-1, ErrMissingOper)
			}
			push = uint16(p[pc])
		case a == PUSHZERO:
			push = 0
		case a == PUSHONE:
			push = 1
		case a == PUSHFFFF:
			push = 0xFFFF
		case a == PUSHFF00:
			push = 0xFF00
		case a == PUSH00FF:
			push = 0x00FF
		case a == PUSHIND:
			if !ext {
				return fail(pc, ErrExtension)
			}
			if sp < 1 {
				return fail(pc, ErrUnderflow)
			}
			sp--
			v, ok := PacketWord(pkt, int(stack[sp]))
			if !ok {
				return fail(pc, ErrWordIndex)
			}
			push = v
		case a == PUSHHDRLEN:
			if !ext {
				return fail(pc, ErrExtension)
			}
			push = uint16(env.HeaderWords)
		case a == PUSHPKTLEN:
			if !ext {
				return fail(pc, ErrExtension)
			}
			push = uint16(len(pkt))
		case a == PUSHBYTE:
			if !ext {
				return fail(pc, ErrExtension)
			}
			pc++
			if pc >= len(p) {
				return fail(pc-1, ErrMissingOper)
			}
			n := int(p[pc])
			if n >= len(pkt) {
				return fail(pc-1, ErrWordIndex)
			}
			push = uint16(pkt[n])
		case a >= PUSHWORD:
			v, ok := PacketWord(pkt, int(a-PUSHWORD))
			if !ok {
				return fail(pc, ErrWordIndex)
			}
			push = v
		default:
			return fail(pc, ErrBadAction)
		}
		if doPush {
			if sp >= StackDepth {
				return fail(pc, ErrStackOverflow)
			}
			stack[sp] = push
			sp++
		}

		// Binary operation second.
		if op == NOP {
			continue
		}
		if !op.Valid(ext) {
			return fail(pc, ErrBadOp)
		}
		if sp < 2 {
			return fail(pc, ErrUnderflow)
		}
		t1 := stack[sp-1] // original top of stack
		t2 := stack[sp-2]
		sp -= 2
		var r uint16
		switch op {
		case EQ:
			r = b2w(t2 == t1)
		case NEQ:
			r = b2w(t2 != t1)
		case LT:
			r = b2w(t2 < t1)
		case LE:
			r = b2w(t2 <= t1)
		case GT:
			r = b2w(t2 > t1)
		case GE:
			r = b2w(t2 >= t1)
		case AND:
			r = t2 & t1
		case OR:
			r = t2 | t1
		case XOR:
			r = t2 ^ t1
		case COR:
			if t1 == t2 {
				res.Accept = true
				return res
			}
			r = 0
		case CAND:
			if t1 != t2 {
				res.Accept = false
				return res
			}
			r = 1
		case CNOR:
			if t1 == t2 {
				res.Accept = false
				return res
			}
			r = 0
		case CNAND:
			if t1 != t2 {
				res.Accept = true
				return res
			}
			r = 1
		case ADD:
			r = t2 + t1
		case SUB:
			r = t2 - t1
		case MUL:
			r = t2 * t1
		case LSH:
			r = t2 << (t1 & 15)
		case RSH:
			r = t2 >> (t1 & 15)
		default:
			return fail(pc, ErrBadOp)
		}
		stack[sp] = r
		sp++
	}

	if sp == 0 {
		return fail(len(p), ErrEmptyStack)
	}
	res.Accept = stack[sp-1] != 0
	return res
}

func b2w(b bool) uint16 {
	if b {
		return 1
	}
	return 0
}

// Prevalidated wraps a program whose static checks have already
// passed, so the per-packet inner loop can omit the action/operator
// validity, operand-presence, stack-depth and constant-index checks.
// This is the first of §7's proposed speedups.  Construct with
// Prevalidate.
type Prevalidated struct {
	prog Program
	info Info
	env  Env
	ext  bool
}

// Prevalidate validates p once and returns a fast evaluator for it.
func Prevalidate(p Program, opt ValidateOptions) (*Prevalidated, error) {
	info, err := Validate(p, opt)
	if err != nil {
		return nil, err
	}
	return &Prevalidated{prog: p.Clone(), info: info, ext: opt.Extensions}, nil
}

// SetEnv sets the per-device environment used by extended actions.
func (v *Prevalidated) SetEnv(env Env) { v.env = env }

// Info returns the static summary computed at validation time.
func (v *Prevalidated) Info() Info { return v.info }

// Program returns the underlying program.
func (v *Prevalidated) Program() Program { return v.prog }

// Run evaluates the prevalidated program against pkt.  Packets too
// short for the program's constant accesses take the fully checked
// path so that acceptance is bit-for-bit identical to Run; packets of
// normal length run with no per-instruction checking.
func (v *Prevalidated) Run(pkt []byte) Result {
	if len(v.prog) == 0 {
		return Result{Accept: true}
	}
	if 2*(v.info.MaxWord+1) > len(pkt) || v.info.MaxByte >= len(pkt) {
		return run(v.prog, pkt, v.env, v.ext, len(v.prog))
	}
	var stack [StackDepth]uint16
	sp := 0
	res := Result{}
	p := v.prog

	for pc := 0; pc < len(p); pc++ {
		w := p[pc]
		a, op := w.Action(), w.Op()
		res.Instrs++

		switch {
		case a == NOPUSH:
			// nothing
		case a == PUSHLIT:
			pc++
			stack[sp] = uint16(p[pc])
			sp++
		case a == PUSHZERO:
			stack[sp] = 0
			sp++
		case a == PUSHONE:
			stack[sp] = 1
			sp++
		case a == PUSHFFFF:
			stack[sp] = 0xFFFF
			sp++
		case a == PUSHFF00:
			stack[sp] = 0xFF00
			sp++
		case a == PUSH00FF:
			stack[sp] = 0x00FF
			sp++
		case a == PUSHIND:
			// The only access not checkable ahead of time (§7).
			v2, ok := PacketWord(pkt, int(stack[sp-1]))
			if !ok {
				res.Err = fmt.Errorf("word %d: %w", pc, ErrWordIndex)
				return res
			}
			stack[sp-1] = v2
		case a == PUSHHDRLEN:
			stack[sp] = uint16(v.env.HeaderWords)
			sp++
		case a == PUSHPKTLEN:
			stack[sp] = uint16(len(pkt))
			sp++
		case a == PUSHBYTE:
			pc++
			stack[sp] = uint16(pkt[int(p[pc])])
			sp++
		default: // a >= PUSHWORD; validated
			n := int(a - PUSHWORD)
			stack[sp] = uint16(pkt[2*n])<<8 | uint16(pkt[2*n+1])
			sp++
		}

		if op == NOP {
			continue
		}
		t1 := stack[sp-1]
		t2 := stack[sp-2]
		sp -= 2
		var r uint16
		switch op {
		case EQ:
			r = b2w(t2 == t1)
		case NEQ:
			r = b2w(t2 != t1)
		case LT:
			r = b2w(t2 < t1)
		case LE:
			r = b2w(t2 <= t1)
		case GT:
			r = b2w(t2 > t1)
		case GE:
			r = b2w(t2 >= t1)
		case AND:
			r = t2 & t1
		case OR:
			r = t2 | t1
		case XOR:
			r = t2 ^ t1
		case COR:
			if t1 == t2 {
				res.Accept = true
				return res
			}
			r = 0
		case CAND:
			if t1 != t2 {
				return res
			}
			r = 1
		case CNOR:
			if t1 == t2 {
				return res
			}
			r = 0
		case CNAND:
			if t1 != t2 {
				res.Accept = true
				return res
			}
			r = 1
		case ADD:
			r = t2 + t1
		case SUB:
			r = t2 - t1
		case MUL:
			r = t2 * t1
		case LSH:
			r = t2 << (t1 & 15)
		case RSH:
			r = t2 >> (t1 & 15)
		}
		stack[sp] = r
		sp++
	}

	res.Accept = stack[sp-1] != 0
	return res
}
