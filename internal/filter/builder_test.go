package filter

import "testing"

func TestBuilderMatchesPaperListing(t *testing.T) {
	// Rebuilding figure 3-8 with the builder must produce the exact
	// word sequence of the hand-assembled listing.
	got := NewBuilder().
		PushWord(1).LitOp(EQ, 2).
		PushWord(3).Raw(MkInstr(PUSH00FF, AND)).
		Raw(MkInstr(PUSHZERO, GT)).
		PushWord(3).Raw(MkInstr(PUSH00FF, AND)).
		LitOp(LE, 100).
		And().And().
		MustProgram()
	if !got.Equal(Fig38PupTypeRange().Program) {
		t.Fatalf("builder output differs from listing:\n%s\nvs\n%s",
			got, Fig38PupTypeRange().Program)
	}
}

func TestBuilderErrorsAccumulate(t *testing.T) {
	b := NewBuilder().PushWord(-1).PushOne()
	if _, err := b.Program(); err == nil {
		t.Fatal("negative word index accepted")
	}
	if b.Err() == nil {
		t.Fatal("Err() lost the error")
	}

	if _, err := NewBuilder().PushWord(MaxWordIndex + 1).Program(); err == nil {
		t.Fatal("oversized word index accepted")
	}
	if _, err := NewBuilder().WordOp(EQ, MaxWordIndex+1).Program(); err == nil {
		t.Fatal("WordOp oversized index accepted")
	}

	// Invalid stack shapes are caught at Program() time.
	if _, err := NewBuilder().Op(AND).Program(); err == nil {
		t.Fatal("underflowing program accepted")
	}

	// Extended instructions require the extended builder.
	if _, err := NewBuilder().PushInd().PushOne().Program(); err == nil {
		t.Fatal("PUSHIND accepted by base builder")
	}
	if _, err := NewBuilder().PushByte(0).Program(); err == nil {
		t.Fatal("PUSHBYTE accepted by base builder")
	}
	if _, err := NewBuilder().PushHdrLen().Program(); err == nil {
		t.Fatal("PUSHHDRLEN accepted by base builder")
	}
	if _, err := NewBuilder().PushPktLen().Program(); err == nil {
		t.Fatal("PUSHPKTLEN accepted by base builder")
	}
	if _, err := NewBuilder().PushOne().LitOp(ADD, 1).Program(); err == nil {
		t.Fatal("ADD accepted by base builder")
	}
	if _, err := NewBuilder().PushByte(-1).Program(); err == nil {
		t.Fatal("negative byte index accepted")
	}

	// Over-long programs.
	b = NewBuilder()
	for i := 0; i <= MaxProgramLen; i++ {
		b.PushOne()
	}
	if _, err := b.Program(); err == nil {
		t.Fatal("over-long program accepted")
	}
}

func TestBuilderHelpers(t *testing.T) {
	pkt := pupPacket(7, 0x0005_0023)

	p := NewBuilder().WordMaskEQ(3, 0x00FF, 7).MustProgram()
	mustAccept(t, p, pkt)
	p = NewBuilder().WordMaskEQ(3, 0x00FF, 8).MustProgram()
	mustReject(t, p, pkt)

	p = NewBuilder().CORWordEQ(1, 2).PushZero().MustProgram()
	mustAccept(t, p, pkt) // COR exits early on the EtherType match

	p = NewBuilder().WordEQ(1, 2).WordEQ(7, 5).Or().MustProgram()
	mustAccept(t, p, pkt)

	if n := NewBuilder().PushLit(1).Len(); n != 2 {
		t.Errorf("Len after PushLit = %d, want 2", n)
	}
}

func TestBuilderFilter(t *testing.T) {
	f, err := NewBuilder().AcceptAll().Filter(42)
	if err != nil {
		t.Fatal(err)
	}
	if f.Priority != 42 || len(f.Program) != 1 {
		t.Errorf("unexpected filter %+v", f)
	}
	if f, err := NewBuilder().Filter(1); err != nil || len(f.Program) != 0 {
		t.Errorf("empty filter: %v (accept-all per table 6-10)", err)
	}
}

func TestMustProgramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustProgram did not panic")
		}
	}()
	NewBuilder().Op(AND).MustProgram()
}

func TestAssembleRoundTrip(t *testing.T) {
	for _, f := range []Filter{Fig38PupTypeRange(), Fig39PupSocket()} {
		text := f.Program.String()
		got, err := Assemble(text)
		if err != nil {
			t.Fatalf("assembling disassembly: %v\n%s", err, text)
		}
		if !got.Equal(f.Program) {
			t.Fatalf("round trip mismatch:\n%s\nvs\n%s", got, f.Program)
		}
	}
}

func TestAssembleSyntax(t *testing.T) {
	p, err := Assemble(`
		# figure 3-9, with comments and odd spacing
		pushword+8  PUSHLIT|cand , 35
		PUSHWORD+7  PUSHZERO|CAND   // high word
		PUSHWORD+1  PUSHLIT|EQ 0x2
	`)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(Fig39PupSocket().Program) {
		t.Fatalf("assembled program differs:\n%s", p)
	}

	bad := []string{
		"",                   // empty
		"FROB",               // unknown mnemonic
		"PUSHLIT",            // missing operand
		"PUSHLIT PUSHONE",    // operand is not a number
		"12",                 // bare operand
		"PUSHONE|PUSHZERO",   // two actions
		"EQ|NEQ",             // two operators
		"PUSHLIT|EQ 0x10000", // operand overflow
		"PUSHWORD+99999",     // index overflow
	}
	for _, src := range bad {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) succeeded", src)
		}
	}
}

func TestAssembleExtended(t *testing.T) {
	p, err := Assemble("PUSHBYTE 14 PUSH00FF|AND PUSHIND PUSHPKTLEN OR PUSHHDRLEN OR")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Validate(p, ValidateOptions{Extensions: true}); err != nil {
		t.Fatalf("extended program invalid: %v", err)
	}
	if _, err := Validate(p, ValidateOptions{}); err == nil {
		t.Fatal("extended program validated without Extensions")
	}
}

func TestWordStringForms(t *testing.T) {
	cases := []struct {
		w    Word
		want string
	}{
		{MkInstr(PushWord(3), NOP), "PUSHWORD+3"},
		{MkInstr(PUSHLIT, EQ), "PUSHLIT|EQ"},
		{MkInstr(NOPUSH, AND), "AND"},
		{MkInstr(NOPUSH, NOP), "NOP"},
		{MkInstr(PUSHZERO, CAND), "PUSHZERO|CAND"},
		{MkInstr(PUSHBYTE, NOP), "PUSHBYTE"},
	}
	for _, c := range cases {
		if got := c.w.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}
