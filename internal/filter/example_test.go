package filter_test

import (
	"fmt"

	"repro/internal/filter"
)

// ExampleBuilder reconstructs the paper's figure 3-9 filter and shows
// the short-circuit exit: a packet with the wrong socket is rejected
// after only two instructions.
func ExampleBuilder() {
	prog := filter.NewBuilder().
		CANDWordEQ(8, 35). // DstSocket low word, most selective first
		CANDWordEQ(7, 0).  // DstSocket high word
		WordEQ(1, 2).      // Ethernet type == Pup
		MustProgram()

	// A 3Mb-Ethernet Pup packet for socket 35 ... and one for 36.
	match := wordsPacket(0x0102, 2, 26, 1, 0, 0, 0x0105, 0, 35)
	miss := wordsPacket(0x0102, 2, 26, 1, 0, 0, 0x0105, 0, 36)

	r := filter.Run(prog, match)
	fmt.Printf("socket 35: accept=%v after %d instructions\n", r.Accept, r.Instrs)
	r = filter.Run(prog, miss)
	fmt.Printf("socket 36: accept=%v after %d instructions\n", r.Accept, r.Instrs)
	// Output:
	// socket 35: accept=true after 6 instructions
	// socket 36: accept=false after 2 instructions
}

// ExampleAssemble shows the textual program notation from the paper's
// listings.
func ExampleAssemble() {
	prog, err := filter.Assemble(`
		PUSHWORD+1  PUSHLIT|EQ 2   # packet type == PUP
	`)
	if err != nil {
		panic(err)
	}
	fmt.Print(prog.String())
	// Output:
	// PUSHWORD+1
	// PUSHLIT|EQ, 2
}

// ExampleOptimize shows the peephole pass narrowing literals and
// fusing push/operator pairs.
func ExampleOptimize() {
	verbose := filter.NewBuilder().
		PushWord(1).
		PushLit(0xFFFF). // a wired-in constant spelled the long way
		Op(filter.AND).
		PushLit(2).
		Op(filter.EQ).
		MustProgram()
	tight := filter.Optimize(verbose, filter.ValidateOptions{})
	fmt.Printf("%d words -> %d words\n", len(verbose), len(tight))
	fmt.Print(tight.String())
	// Output:
	// 7 words -> 4 words
	// PUSHWORD+1
	// PUSHFFFF|AND
	// PUSHLIT|EQ, 2
}

// ExampleBuildTable merges a set of filters into the §7 decision
// table: one tree walk replaces the priority-ordered linear scan.
func ExampleBuildTable() {
	filters := []filter.Filter{
		filter.DstSocketFilter(10, 35),
		filter.DstSocketFilter(10, 36),
		{Priority: 1, Program: filter.Program{}}, // catch-all monitor
	}
	tbl := filter.BuildTable(filters)
	pkt := wordsPacket(0x0102, 2, 26, 1, 0, 0, 0x0105, 0, 36)
	fmt.Println("matches, by priority:", tbl.Match(pkt))
	// Output:
	// matches, by priority: [1 2]
}

// wordsPacket builds a packet from big-endian 16-bit words.
func wordsPacket(ws ...uint16) []byte {
	pkt := make([]byte, 2*len(ws))
	for i, w := range ws {
		pkt[2*i] = byte(w >> 8)
		pkt[2*i+1] = byte(w)
	}
	return pkt
}
