package filter

import (
	"fmt"
	"sort"
	"strings"
)

// OpMix is a static instruction-mix analysis of a filter program: how
// many words it occupies, which stack actions and operators it uses,
// and how many of its operators can short-circuit.  The §3.1 design
// history turned on exactly this kind of census ("an analysis showed
// that they would reduce the cost of interpreting filter predicates"),
// and pfstat reports it per bound filter so the cost a trace attributes
// to predicate evaluation can be read against the programs that caused
// it.
//
// The analysis is static — it never touches the interpreter hot path,
// so observability of the instruction mix costs nothing per packet.
type OpMix struct {
	Words         int            `json:"words"`          // program length incl. literal operands
	Instrs        int            `json:"instrs"`         // instruction words (operands excluded)
	Actions       map[string]int `json:"actions"`        // mnemonic -> count (pushes only)
	Ops           map[string]int `json:"ops"`            // mnemonic -> count (NOP excluded)
	ShortCircuits int            `json:"short_circuits"` // COR/CAND/CNOR/CNAND operators
	Comparisons   int            `json:"comparisons"`    // EQ..GE operators
}

// MixOf computes the instruction mix of a program.  Literal operand
// words (following PUSHLIT/PUSHBYTE) are counted in Words but not
// classified; a truncated trailing operand is simply not there to
// classify, exactly as the checked interpreter treats it.
func MixOf(p Program) OpMix {
	m := OpMix{
		Words:   len(p),
		Actions: make(map[string]int),
		Ops:     make(map[string]int),
	}
	for i := 0; i < len(p); i++ {
		w := p[i]
		m.Instrs++
		a, op := w.Action(), w.Op()
		if a != NOPUSH {
			m.Actions[a.String()]++
		}
		if op != NOP {
			m.Ops[op.String()]++
		}
		if op.IsShortCircuit() {
			m.ShortCircuits++
		}
		if op.IsComparison() {
			m.Comparisons++
		}
		if a.HasOperand() {
			i++ // skip the literal operand word
		}
	}
	return m
}

// String renders the mix on one line, mnemonics sorted, e.g.
// "6 words, 4 instrs; actions PUSHLIT:2 PUSHWORD+1:1 ...; ops CAND:1 EQ:1".
func (m OpMix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d words, %d instrs", m.Words, m.Instrs)
	for _, part := range []struct {
		label string
		set   map[string]int
	}{{"actions", m.Actions}, {"ops", m.Ops}} {
		if len(part.set) == 0 {
			continue
		}
		names := make([]string, 0, len(part.set))
		for n := range part.set {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintf(&b, "; %s", part.label)
		for _, n := range names {
			fmt.Fprintf(&b, " %s:%d", n, part.set[n])
		}
	}
	return b.String()
}
