package filter

// This file implements the alternative predicate representation that
// §3.1 considers and rejects: "a predicate could be an array of
// (field-offset, expected-value) pairs, and the predicate would be
// satisfied if all the specified fields had the specified values.
// However, the additional flexibility of the stack language has often
// proved useful in constructing efficient filters."
//
// It is kept as a baseline for the ablation benchmarks: it is faster
// to evaluate than the stack language but cannot express ranges,
// masks other than per-field ones, or disjunctions.

// FieldTest is one (offset, mask, value) test: packet word Word,
// ANDed with Mask, must equal Value.  A zero Mask means 0xFFFF (whole
// word), so the zero value of a FieldTest slice literal stays terse.
type FieldTest struct {
	Word  int
	Mask  uint16
	Value uint16
}

// PairPredicate is a conjunction of FieldTests.  The empty predicate
// accepts every packet.
type PairPredicate []FieldTest

// Match reports whether every field test holds.  A test referencing a
// word beyond the packet fails, mirroring the stack interpreter's
// treatment of out-of-range accesses.
func (p PairPredicate) Match(pkt []byte) bool {
	for _, t := range p {
		v, ok := PacketWord(pkt, t.Word)
		if !ok {
			return false
		}
		m := t.Mask
		if m == 0 {
			m = 0xFFFF
		}
		if v&m != t.Value {
			return false
		}
	}
	return true
}

// Program translates the pair predicate into an equivalent
// stack-language program using the short-circuit idiom of figure 3-9,
// demonstrating that the stack language subsumes this representation.
func (p PairPredicate) Program() Program {
	if len(p) == 0 {
		return NewBuilder().AcceptAll().MustProgram()
	}
	b := NewBuilder()
	for i, t := range p {
		b.PushWord(t.Word)
		if t.Mask != 0 && t.Mask != 0xFFFF {
			b.LitOp(AND, t.Mask)
		}
		if i < len(p)-1 {
			b.LitOp(CAND, t.Value)
		} else {
			b.LitOp(EQ, t.Value)
		}
	}
	return b.MustProgram()
}
