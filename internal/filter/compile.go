package filter

// This file implements §7's second proposed speedup: "Even more speed
// could be gained by compiling filters into machine code, at the cost
// of greatly increased implementation complexity."  Earlier versions
// compiled each filter to a chain of closures ("threaded code": one
// indirect call per instruction).  The v2 backend compiles to the flat
// register-based IR in setir.go instead: all instruction decoding,
// constants and register numbers are resolved at compile time, and the
// per-packet loop is a single switch over a contiguous instruction
// array.  Dropping the closure chain also drops its pooled evaluation
// state — the register file lives on the caller's stack, so Run is
// allocation-free without a sync.Pool.
//
// Execution order is identical to the checked interpreter, so the two
// are behaviourally equivalent instruction for instruction, including
// which packets are rejected for out-of-range accesses — a property
// the test suite pins with seeded property tests and fuzzing.

// Compiled is a filter program compiled to flat register code.
// Construct with Compile; evaluate with Run.  A Compiled value is safe
// for concurrent use (the evaluation state lives on the caller's
// stack).
type Compiled struct {
	fp *FlatProg
}

// Compile validates p and compiles it.  env is bound at compile time
// (the extended header-length action is a per-device constant in the
// original driver, so binding it at compile time loses nothing).
func Compile(p Program, opt ValidateOptions, env Env) (*Compiled, error) {
	fp, err := CompileFlat(p, opt, env)
	if err != nil {
		return nil, err
	}
	return &Compiled{fp: fp}, nil
}

// Info returns the static summary computed when the program was
// compiled.
func (c *Compiled) Info() Info { return c.fp.Info() }

// Program returns the source program.
func (c *Compiled) Program() Program { return c.fp.Program() }

// Flat returns the underlying flat register code.
func (c *Compiled) Flat() *FlatProg { return c.fp }

// Run evaluates the compiled filter against pkt.
func (c *Compiled) Run(pkt []byte) bool {
	return c.fp.Run(pkt).Accept
}
