package filter

// This file implements §7's second proposed speedup: "Even more speed
// could be gained by compiling filters into machine code, at the cost
// of greatly increased implementation complexity."  In Go the honest
// analogue of compiling to machine code is compiling to a sequence of
// closures with all instruction decoding, constants and dispatch
// resolved at compile time ("threaded code"): the per-packet loop
// executes one indirect call per instruction and nothing else.
//
// Execution order is identical to the checked interpreter, so the two
// are behaviourally equivalent instruction for instruction, including
// which packets are rejected for out-of-range accesses — a property
// the test suite checks with testing/quick.

import "sync"

type cstate struct {
	stack [StackDepth]uint16
	sp    int
}

// step executes one compiled instruction.  It returns:
//
//	stepContinue  - proceed to the next step
//	stepAccept    - terminate the program accepting the packet
//	stepReject    - terminate rejecting (short-circuit or error)
type stepResult int8

const (
	stepContinue stepResult = iota
	stepAccept
	stepReject
)

type step func(pkt []byte, st *cstate) stepResult

// Compiled is a filter program compiled to threaded code.  Construct
// with Compile; evaluate with Run.  A Compiled value is safe for
// concurrent use (the evaluation state lives on the caller's stack).
type Compiled struct {
	steps []step
	info  Info
	prog  Program
}

// Compile validates p and compiles it.  env is bound at compile time
// (the extended header-length action is a per-device constant in the
// original driver, so binding it at compile time loses nothing).
func Compile(p Program, opt ValidateOptions, env Env) (*Compiled, error) {
	info, err := Validate(p, opt)
	if err != nil {
		return nil, err
	}
	c := &Compiled{info: info, prog: p.Clone()}
	for pc := 0; pc < len(p); pc++ {
		w := p[pc]
		a, op := w.Action(), w.Op()

		// Compile the stack action.
		switch {
		case a == NOPUSH:
			// no step needed
		case a == PUSHLIT:
			pc++
			v := uint16(p[pc])
			c.push(func(pkt []byte, st *cstate) uint16 { return v })
		case a == PUSHZERO:
			c.pushConst(0)
		case a == PUSHONE:
			c.pushConst(1)
		case a == PUSHFFFF:
			c.pushConst(0xFFFF)
		case a == PUSHFF00:
			c.pushConst(0xFF00)
		case a == PUSH00FF:
			c.pushConst(0x00FF)
		case a == PUSHIND:
			c.steps = append(c.steps, func(pkt []byte, st *cstate) stepResult {
				n := int(st.stack[st.sp-1])
				if 2*n+1 >= len(pkt) {
					return stepReject
				}
				st.stack[st.sp-1] = uint16(pkt[2*n])<<8 | uint16(pkt[2*n+1])
				return stepContinue
			})
		case a == PUSHHDRLEN:
			c.pushConst(uint16(env.HeaderWords))
		case a == PUSHPKTLEN:
			c.push(func(pkt []byte, st *cstate) uint16 { return uint16(len(pkt)) })
		case a == PUSHBYTE:
			pc++
			n := int(p[pc])
			c.steps = append(c.steps, func(pkt []byte, st *cstate) stepResult {
				if n >= len(pkt) {
					return stepReject
				}
				st.stack[st.sp] = uint16(pkt[n])
				st.sp++
				return stepContinue
			})
		default: // PUSHWORD+n
			n := int(a - PUSHWORD)
			c.steps = append(c.steps, func(pkt []byte, st *cstate) stepResult {
				if 2*n+1 >= len(pkt) {
					return stepReject
				}
				st.stack[st.sp] = uint16(pkt[2*n])<<8 | uint16(pkt[2*n+1])
				st.sp++
				return stepContinue
			})
		}

		// Compile the binary operator.
		if op == NOP {
			continue
		}
		c.binop(op)
	}
	return c, nil
}

// push appends a step pushing the value produced by f.
func (c *Compiled) push(f func(pkt []byte, st *cstate) uint16) {
	c.steps = append(c.steps, func(pkt []byte, st *cstate) stepResult {
		st.stack[st.sp] = f(pkt, st)
		st.sp++
		return stepContinue
	})
}

func (c *Compiled) pushConst(v uint16) {
	c.steps = append(c.steps, func(pkt []byte, st *cstate) stepResult {
		st.stack[st.sp] = v
		st.sp++
		return stepContinue
	})
}

// binop appends a step applying op to the top two stack words.
func (c *Compiled) binop(op Op) {
	type binFn func(t2, t1 uint16) uint16
	arith := func(f binFn) step {
		return func(pkt []byte, st *cstate) stepResult {
			t1 := st.stack[st.sp-1]
			t2 := st.stack[st.sp-2]
			st.sp--
			st.stack[st.sp-1] = f(t2, t1)
			return stepContinue
		}
	}
	var s step
	switch op {
	case EQ:
		s = arith(func(t2, t1 uint16) uint16 { return b2w(t2 == t1) })
	case NEQ:
		s = arith(func(t2, t1 uint16) uint16 { return b2w(t2 != t1) })
	case LT:
		s = arith(func(t2, t1 uint16) uint16 { return b2w(t2 < t1) })
	case LE:
		s = arith(func(t2, t1 uint16) uint16 { return b2w(t2 <= t1) })
	case GT:
		s = arith(func(t2, t1 uint16) uint16 { return b2w(t2 > t1) })
	case GE:
		s = arith(func(t2, t1 uint16) uint16 { return b2w(t2 >= t1) })
	case AND:
		s = arith(func(t2, t1 uint16) uint16 { return t2 & t1 })
	case OR:
		s = arith(func(t2, t1 uint16) uint16 { return t2 | t1 })
	case XOR:
		s = arith(func(t2, t1 uint16) uint16 { return t2 ^ t1 })
	case ADD:
		s = arith(func(t2, t1 uint16) uint16 { return t2 + t1 })
	case SUB:
		s = arith(func(t2, t1 uint16) uint16 { return t2 - t1 })
	case MUL:
		s = arith(func(t2, t1 uint16) uint16 { return t2 * t1 })
	case LSH:
		s = arith(func(t2, t1 uint16) uint16 { return t2 << (t1 & 15) })
	case RSH:
		s = arith(func(t2, t1 uint16) uint16 { return t2 >> (t1 & 15) })
	case COR:
		s = func(pkt []byte, st *cstate) stepResult {
			t1 := st.stack[st.sp-1]
			t2 := st.stack[st.sp-2]
			st.sp--
			if t1 == t2 {
				return stepAccept
			}
			st.stack[st.sp-1] = 0
			return stepContinue
		}
	case CAND:
		s = func(pkt []byte, st *cstate) stepResult {
			t1 := st.stack[st.sp-1]
			t2 := st.stack[st.sp-2]
			st.sp--
			if t1 != t2 {
				return stepReject
			}
			st.stack[st.sp-1] = 1
			return stepContinue
		}
	case CNOR:
		s = func(pkt []byte, st *cstate) stepResult {
			t1 := st.stack[st.sp-1]
			t2 := st.stack[st.sp-2]
			st.sp--
			if t1 == t2 {
				return stepReject
			}
			st.stack[st.sp-1] = 0
			return stepContinue
		}
	case CNAND:
		s = func(pkt []byte, st *cstate) stepResult {
			t1 := st.stack[st.sp-1]
			t2 := st.stack[st.sp-2]
			st.sp--
			if t1 != t2 {
				return stepAccept
			}
			st.stack[st.sp-1] = 1
			return stepContinue
		}
	}
	c.steps = append(c.steps, s)
}

// Info returns the static summary computed when the program was
// compiled.
func (c *Compiled) Info() Info { return c.info }

// Program returns the source program.
func (c *Compiled) Program() Program { return c.prog }

// cstatePool recycles evaluation stacks across Run calls.  The state
// escapes through the indirect step calls, so a stack-allocated one
// would cost a heap allocation per packet; pooling keeps Run
// allocation-free while remaining safe for concurrent use.
var cstatePool = sync.Pool{New: func() any { return new(cstate) }}

// Run evaluates the compiled filter against pkt.
func (c *Compiled) Run(pkt []byte) bool {
	if len(c.steps) == 0 {
		return true // the empty filter accepts everything
	}
	st := cstatePool.Get().(*cstate)
	st.sp = 0
	accept, done := false, false
	for _, s := range c.steps {
		if r := s(pkt, st); r != stepContinue {
			accept, done = r == stepAccept, true
			break
		}
	}
	if !done {
		accept = st.stack[st.sp-1] != 0
	}
	cstatePool.Put(st)
	return accept
}
