// Package filter implements the CMU/Stanford packet-filter language
// described in §3.1 of "The Packet Filter: An Efficient Mechanism for
// User-level Network Code" (Mogul, Rashid & Accetta, SOSP 1987), along
// with every evaluation strategy the paper describes or proposes:
//
//   - a fully checked interpreter (§4, the production implementation),
//   - a pre-validated interpreter that hoists the per-instruction
//     validity, stack and bounds checks out of the inner loop (§7:
//     "all these tests can be performed ahead of time"),
//   - compilation of a filter into a native Go closure, the analogue
//     of §7's "compiling filters into machine code",
//   - a decision-table evaluator that merges a whole set of active
//     filters (§7: "compile the set of active filters into a decision
//     table, which should provide the best possible performance"),
//   - the (field-offset, expected-value) pair-predicate alternative
//     that §3.1 considers and rejects, kept here as a baseline,
//   - the §7 language extensions: an indirect push operator,
//     arithmetic operators, and byte-sized field access.
//
// A filter is a program over a small stack machine.  Each 16-bit
// instruction word has two fields: a stack action, which may push a
// word of the received packet or a constant, and a binary operator,
// which pops the top two words and pushes a result.  There are no
// branches.  A packet is accepted if, when the program ends (or a
// short-circuit operator fires), the top of stack is non-zero.
//
// Packets are viewed as arrays of 16-bit words in network byte order:
// word n of a packet is bytes 2n and 2n+1, big-endian, counted from
// the start of the data-link header.
package filter

import "fmt"

// Word is one 16-bit packet-filter instruction word (or literal
// operand).  The layout follows the original enet.h: the low OpBits
// bits hold the binary operator, the remaining high bits hold the
// stack action.  (The paper's figure 3-6 draws the operator field
// first; the split of 10 bits of action and 6 bits of operator is what
// lets PUSHWORD+n address packets hundreds of words long.)
type Word uint16

// Field widths of an instruction word.
const (
	OpBits     = 6  // low bits: binary operator
	ActionBits = 10 // high bits: stack action
	opMask     = 1<<OpBits - 1
)

// Op is a binary operator.  All operators except NOP pop the top two
// stack words (T1 = top, T2 = next) and push one result.  For the
// logical operators a value is TRUE iff it is non-zero.
type Op uint16

// Binary operators (§3.1, figure 3-6).  NOP is zero so that a plain
// push such as PushWord(3) encodes with an all-zero operator field.
const (
	NOP Op = iota // no effect on the stack

	EQ  // R := TRUE if T2 == T1, else FALSE
	NEQ // R := TRUE if T2 != T1
	LT  // R := TRUE if T2 <  T1
	LE  // R := TRUE if T2 <= T1
	GT  // R := TRUE if T2 >  T1
	GE  // R := TRUE if T2 >= T1
	AND // R := T2 AND T1 (bitwise)
	OR  // R := T2 OR T1
	XOR // R := T2 XOR T1

	// Short-circuit operators.  Each evaluates R := (T1 == T2) and
	// pushes R, but first may terminate the whole program:
	//
	//	COR    returns TRUE  immediately if R is TRUE
	//	CAND   returns FALSE immediately if R is FALSE
	//	CNOR   returns FALSE immediately if R is TRUE
	//	CNAND  returns TRUE  immediately if R is FALSE
	//
	// They were added "after an analysis showed that they would
	// reduce the cost of interpreting filter predicates" (§3.1).
	COR
	CAND
	CNOR
	CNAND

	// Extended arithmetic operators (§7: "arithmetic operators to
	// assist in addressing-unit conversions").  Only valid in
	// programs validated with Extensions enabled.
	ADD // R := T2 + T1 (mod 2^16)
	SUB // R := T2 - T1 (mod 2^16)
	MUL // R := T2 * T1 (mod 2^16)
	LSH // R := T2 << (T1 mod 16)
	RSH // R := T2 >> (T1 mod 16)

	numOps // sentinel; not a real operator
)

// Action is a stack action.  Actions other than NOPUSH push exactly
// one word; the action executes before the instruction's operator.
type Action uint16

// Stack actions (§3.1, figure 3-6).  PushWord(n) composes the
// PUSHWORD base with a word index; indices therefore occupy the
// remaining action-field space.
const (
	NOPUSH   Action = 0 // nothing is pushed
	PUSHLIT  Action = 1 // the following program word is pushed
	PUSHZERO Action = 2 // constant 0
	PUSHONE  Action = 3 // constant 1
	PUSHFFFF Action = 4 // constant 0xFFFF
	PUSHFF00 Action = 5 // constant 0xFF00
	PUSH00FF Action = 6 // constant 0x00FF

	// Extended actions (§7).  Only valid with Extensions enabled.

	// PUSHIND pops the top of stack and pushes the packet word it
	// indexes; this is §7's "indirect push" operator, needed for
	// protocols with variable-format headers (e.g. IP options).
	PUSHIND Action = 8
	// PUSHHDRLEN pushes the data-link header length in 16-bit
	// words, letting one filter work across link types.
	PUSHHDRLEN Action = 9
	// PUSHPKTLEN pushes the total packet length in bytes.
	PUSHPKTLEN Action = 10

	// PUSHBYTE pushes one packet byte, zero-extended to 16 bits
	// (§7: "direct support for other field sizes").  The byte index
	// is taken from the program word following the instruction,
	// exactly as PUSHLIT takes its literal; indexed byte access
	// does not fit in the action field, which PUSHWORD+n occupies.
	PUSHBYTE Action = 12

	// PUSHWORD pushes the nth 16-bit word of the packet; compose
	// with PushWord(n).  It is last because all larger action
	// values encode PUSHWORD+index.
	PUSHWORD Action = 16
)

// MaxWordIndex is the largest packet word index expressible by
// PUSHWORD+n within the 10-bit action field.  An Ethernet maximum
// frame (1514 bytes, 757 words) fits comfortably.
const MaxWordIndex = (1 << ActionBits) - 1 - int(PUSHWORD)

// MkInstr assembles an instruction word from a stack action and a
// binary operator.
func MkInstr(a Action, op Op) Word {
	return Word(a)<<OpBits | Word(op)&opMask
}

// PushWord returns the stack action that pushes packet word n.
// It panics if n is out of range; use the builder or validator for
// data-driven construction.
func PushWord(n int) Action {
	if n < 0 || n > MaxWordIndex {
		panic(fmt.Sprintf("filter: PUSHWORD index %d out of range [0,%d]", n, MaxWordIndex))
	}
	return PUSHWORD + Action(n)
}

// Action extracts the stack action field of an instruction word.
func (w Word) Action() Action { return Action(w >> OpBits) }

// Op extracts the binary operator field of an instruction word.
func (w Word) Op() Op { return Op(w & opMask) }

// IsShortCircuit reports whether op may terminate the program early.
func (op Op) IsShortCircuit() bool { return op >= COR && op <= CNAND }

// IsComparison reports whether op is one of the six ordering/equality
// comparisons.
func (op Op) IsComparison() bool { return op >= EQ && op <= GE }

// IsExtended reports whether op requires Extensions to be enabled.
func (op Op) IsExtended() bool { return op >= ADD && op < numOps }

// Valid reports whether op is a defined operator under the given
// extension setting.
func (op Op) Valid(extensions bool) bool {
	if op >= numOps {
		return false
	}
	return extensions || !op.IsExtended()
}

// IsExtended reports whether the action requires Extensions.
func (a Action) IsExtended() bool {
	return a == PUSHIND || a == PUSHHDRLEN || a == PUSHPKTLEN || a == PUSHBYTE
}

// HasOperand reports whether an instruction with this action consumes
// the following program word as an operand.
func (a Action) HasOperand() bool { return a == PUSHLIT || a == PUSHBYTE }

// Valid reports whether a is a defined stack action under the given
// extension setting.
func (a Action) Valid(extensions bool) bool {
	switch {
	case a <= PUSH00FF:
		return true
	case a >= PUSHWORD:
		return true // PUSHWORD+n for any representable n
	case a.IsExtended():
		return extensions
	default:
		return false
	}
}

var opNames = [...]string{
	NOP: "NOP", EQ: "EQ", NEQ: "NEQ", LT: "LT", LE: "LE", GT: "GT", GE: "GE",
	AND: "AND", OR: "OR", XOR: "XOR",
	COR: "COR", CAND: "CAND", CNOR: "CNOR", CNAND: "CNAND",
	ADD: "ADD", SUB: "SUB", MUL: "MUL", LSH: "LSH", RSH: "RSH",
}

// String returns the assembler mnemonic for op.
func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("OP(%d)", uint16(op))
}

// String returns the assembler mnemonic for a, using the
// "PUSHWORD+n" / "PUSHBYTE+n" forms for indexed pushes.
func (a Action) String() string {
	switch {
	case a == NOPUSH:
		return "NOPUSH"
	case a == PUSHLIT:
		return "PUSHLIT"
	case a == PUSHZERO:
		return "PUSHZERO"
	case a == PUSHONE:
		return "PUSHONE"
	case a == PUSHFFFF:
		return "PUSHFFFF"
	case a == PUSHFF00:
		return "PUSHFF00"
	case a == PUSH00FF:
		return "PUSH00FF"
	case a == PUSHIND:
		return "PUSHIND"
	case a == PUSHHDRLEN:
		return "PUSHHDRLEN"
	case a == PUSHPKTLEN:
		return "PUSHPKTLEN"
	case a == PUSHBYTE:
		return "PUSHBYTE"
	case a >= PUSHWORD:
		return fmt.Sprintf("PUSHWORD+%d", a-PUSHWORD)
	default:
		return fmt.Sprintf("ACTION(%d)", uint16(a))
	}
}

// String renders the instruction word in the style of the paper's
// listings, e.g. "PUSHWORD+1" or "PUSHLIT|EQ".
func (w Word) String() string {
	a, op := w.Action(), w.Op()
	if op == NOP && a != NOPUSH {
		return a.String()
	}
	if a == NOPUSH {
		return op.String()
	}
	return a.String() + "|" + op.String()
}
