package filter

// Fuel-limited evaluation: the runtime half of the defense §7 sketches
// against user predicates monopolizing the kernel.  Validate's
// WorstInstrs bound is the static half; these entry points enforce a
// hard budget of executed instruction words at run time, so even a
// caller that distrusts the static bound (a fuzzer, the adversarial
// workload searcher) can prove no evaluation exceeds its fuel.
//
// The budget discipline differs by evaluation strategy, mirroring
// where each strategy can afford a check:
//
//   - RunFuel (checked interpreter): a true per-instruction fuel
//     counter; evaluation stops mid-program with ErrFuel.
//   - Prevalidated.RunFuel: admitted whole-program when the budget
//     covers WorstInstrs (the common case — the fast inner loop stays
//     untouched); an under-budget call falls back to the metered
//     checked interpreter so the fuel is still enforced exactly.
//   - Compiled.RunFuel and Table.MatchFuel: admission control only —
//     a budget below the static worst case refuses to run at all.
//     Threading a counter through the compiled closures (or the tree
//     walk) would tax every step of the fastest paths to support a
//     case the governor handles by not running the filter.
//
// In every mode, an evaluation that runs to a verdict is bit-identical
// to its unfueled counterpart: fuel never changes an accept/reject
// decision, it only refuses or truncates evaluations that would
// overrun the budget.

import "errors"

// ErrFuel reports that an evaluation hit its executed-instruction
// budget (or that the budget did not cover the static worst case of a
// strategy that cannot meter instructions individually).
var ErrFuel = errors.New("filter: instruction budget exhausted")

// RunFuel applies a base-language program with full checking and a
// hard budget of fuel executed instruction words.  If the program
// would execute more, evaluation stops with Err wrapping ErrFuel, the
// packet is rejected, and Result.Instrs == fuel.
func RunFuel(p Program, pkt []byte, fuel int) Result {
	return run(p, pkt, Env{}, false, fuel)
}

// RunExtFuel is RunFuel with the §7 extended instructions permitted.
func RunExtFuel(p Program, pkt []byte, env Env, fuel int) Result {
	return run(p, pkt, env, true, fuel)
}

// RunFuel evaluates the prevalidated program under a fuel budget.
// When the budget covers the program's static worst case the fast
// unmetered path runs (it cannot exceed WorstInstrs); otherwise the
// evaluation takes the metered checked path, which stops with ErrFuel
// the moment the budget runs out.
func (v *Prevalidated) RunFuel(pkt []byte, fuel int) Result {
	if fuel >= v.info.WorstInstrs {
		return v.Run(pkt)
	}
	return run(v.prog, pkt, v.env, v.ext, fuel)
}

// RunFuel evaluates the compiled filter when fuel covers its static
// worst case, and refuses with ErrFuel otherwise.  Compiled execution
// is all-or-nothing: the flat code carries no metering branch, so
// admission is decided entirely by the WorstInstrs bound.
func (c *Compiled) RunFuel(pkt []byte, fuel int) (bool, error) {
	if fuel < c.fp.info.WorstInstrs {
		return false, ErrFuel
	}
	return c.Run(pkt), nil
}

// WorstInstrs bounds the work units (tree edges plus linear-fallback
// instruction words) of one Match call: every decision-tree node that
// tests a packet word, plus the static worst case of each fallback
// program.  No packet can make MatchStats report more total work.
func (t *Table) WorstInstrs() int {
	worst := countTestNodes(t.root)
	for _, l := range t.linear {
		worst += l.fp.Info().WorstInstrs
	}
	return worst
}

func countTestNodes(n *tnode) int {
	if n == nil {
		return 0
	}
	total := 0
	if n.word >= 0 {
		total = 1
	}
	for _, b := range n.branches {
		total += countTestNodes(b)
	}
	return total + countTestNodes(n.wildcard)
}

// MaxInstrsProgram returns a valid base-language program of the
// maximum permitted length whose every instruction word executes on
// every packet of at least one whole word: one PUSHWORD followed by a
// chain of PUSHWORD|OR steps, which no short-circuit can cut and no
// constant propagation can cap.  It is the canonical hostile filter —
// the most kernel time a single legal program can charge per packet —
// and the starting point for the adversarial workload searcher.
func MaxInstrsProgram() Program {
	p := make(Program, 0, MaxProgramLen)
	p = append(p, MkInstr(PushWord(0), NOP))
	for len(p) < MaxProgramLen {
		p = append(p, MkInstr(PushWord(0), OR))
	}
	return p
}

// MatchFuel runs MatchStats when fuel covers the table's static worst
// case, and refuses with ErrFuel otherwise.  Like compiled filters,
// the merged table is admitted whole: a walk cannot be abandoned
// halfway without losing the exact linear-equivalence property.
func (t *Table) MatchFuel(pkt []byte, fuel int) (MatchResult, error) {
	if fuel < t.WorstInstrs() {
		return MatchResult{}, ErrFuel
	}
	return t.MatchStats(pkt), nil
}
