package filter

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// genProgram builds a random but well-formed base-language program and
// a matching random packet source.  It tracks stack depth so generated
// programs always validate; short-circuit ops and every action/op kind
// appear.
func genProgram(r *rand.Rand, maxLen int) Program {
	var p Program
	depth := 0
	instrs := 0
	for instrs < maxLen {
		var a Action
		switch r.Intn(8) {
		case 0:
			a = PUSHLIT
		case 1:
			a = PUSHZERO
		case 2:
			a = PUSHONE
		case 3:
			a = PUSHFFFF
		case 4:
			a = PUSHFF00
		case 5:
			a = PUSH00FF
		default:
			a = PushWord(r.Intn(24)) // sometimes beyond short packets
		}
		op := NOP
		// Bias toward emitting operators when the stack allows.
		if depth+1 >= 2 && r.Intn(3) > 0 {
			op = Op(1 + r.Intn(int(CNAND))) // EQ..CNAND
		}
		if depth >= StackDepth {
			// Must consume: force an operator without a push.
			a = NOPUSH
			op = Op(1 + r.Intn(int(XOR)))
		}
		p = append(p, MkInstr(a, op))
		if a == PUSHLIT {
			p = append(p, Word(r.Intn(5))) // small literals collide with fields
		}
		if a != NOPUSH {
			depth++
		}
		if op != NOP {
			depth--
		}
		instrs++
	}
	// Ensure a non-empty final stack.
	if depth == 0 {
		p = append(p, MkInstr(PUSHONE, NOP))
	}
	return p
}

func genPacket(r *rand.Rand) []byte {
	n := r.Intn(64)
	pkt := make([]byte, n)
	for i := range pkt {
		pkt[i] = byte(r.Intn(5)) // small values to make comparisons collide
	}
	return pkt
}

// TestPrevalidatedEquivalence checks that the fast interpreter accepts
// exactly the packets the checked interpreter accepts, over random
// programs and packets including packets too short for the program.
func TestPrevalidatedEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		p := genProgram(r, 1+r.Intn(12))
		if _, err := Validate(p, ValidateOptions{}); err != nil {
			t.Fatalf("generator produced invalid program: %v\n%s", err, p)
		}
		pv, err := Prevalidate(p, ValidateOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 8; j++ {
			pkt := genPacket(r)
			want := Run(p, pkt)
			got := pv.Run(pkt)
			if want.Accept != got.Accept {
				t.Fatalf("accept mismatch (checked=%v fast=%v)\npkt len %d\n%s",
					want.Accept, got.Accept, len(pkt), p)
			}
		}
	}
}

// TestCompiledEquivalence checks the threaded-code compiler against
// the checked interpreter the same way.
func TestCompiledEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		p := genProgram(r, 1+r.Intn(12))
		c, err := Compile(p, ValidateOptions{}, Env{})
		if err != nil {
			t.Fatalf("compile: %v\n%s", err, p)
		}
		for j := 0; j < 8; j++ {
			pkt := genPacket(r)
			want := Run(p, pkt).Accept
			if got := c.Run(pkt); got != want {
				t.Fatalf("accept mismatch (checked=%v compiled=%v)\npkt len %d\n%s",
					want, got, len(pkt), p)
			}
		}
	}
}

// TestRunNeverPanics feeds arbitrary word soup to the checked
// interpreter: whatever a user binds to a port, the "kernel" must not
// crash (§2 lists kernel crashes as the cost of in-kernel protocol
// code; the interpreter is the part that faces untrusted input).
func TestRunNeverPanics(t *testing.T) {
	f := func(ws []uint16, pkt []byte) bool {
		p := make(Program, len(ws))
		for i, w := range ws {
			p[i] = Word(w)
		}
		Run(p, pkt)           // must not panic
		RunExt(p, pkt, Env{}) // must not panic
		Validate(p, ValidateOptions{Extensions: true})
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4000}); err != nil {
		t.Fatal(err)
	}
}

// TestValidatedProgramsRunCleanly: any program the validator accepts
// must execute without internal errors on packets long enough for its
// constant accesses (the validator's contract with the fast path).
func TestValidatedProgramsRunCleanly(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		p := genProgram(r, 1+r.Intn(12))
		info, err := Validate(p, ValidateOptions{})
		if err != nil {
			t.Fatalf("invalid generated program: %v", err)
		}
		pkt := make([]byte, 2*(info.MaxWord+1)+2)
		if res := Run(p, pkt); res.Err != nil {
			t.Fatalf("validated program errored on a long packet: %v\n%s", res.Err, p)
		}
	}
}

// TestPrevalidatedInstrsMatch checks the virtual-cost contract: both
// interpreters report the same executed-instruction count on packets
// that take the fast path.
func TestPrevalidatedInstrsMatch(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 500; i++ {
		p := genProgram(r, 1+r.Intn(12))
		pv, err := Prevalidate(p, ValidateOptions{})
		if err != nil {
			t.Fatal(err)
		}
		pkt := make([]byte, 64)
		for j := range pkt {
			pkt[j] = byte(r.Intn(5))
		}
		if a, b := Run(p, pkt).Instrs, pv.Run(pkt).Instrs; a != b {
			t.Fatalf("instr count mismatch: checked=%d fast=%d\n%s", a, b, p)
		}
	}
}
