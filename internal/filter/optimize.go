package filter

// Optimize performs semantics-preserving peephole rewrites on a filter
// program.  Every word saved matters in a driver whose "inner loop is
// quite busy" (§4): the rewrites shorten programs (fewer literal
// operands) and let short-circuit exits fire sooner.
//
//	PUSHLIT v  ->  PUSHZERO/PUSHONE/PUSHFFFF/PUSHFF00/PUSH00FF
//	               when v is one of the five wired-in constants,
//	               saving the operand word (the reason those stack
//	               actions exist, per figure 3-6);
//	bare push followed by a bare operator word -> one fused word
//	               (PUSHWORD+n, then NOPUSH|EQ  ->  PUSHWORD+n|EQ).
//
// The returned program accepts exactly the packets p accepts; the test
// suite checks this property on random programs.  Invalid programs are
// returned unchanged.
func Optimize(p Program, opt ValidateOptions) Program {
	if _, err := Validate(p, opt); err != nil {
		return p
	}
	out := make(Program, 0, len(p))

	// Pass 1: narrow PUSHLIT into constant stack actions.
	for pc := 0; pc < len(p); pc++ {
		w := p[pc]
		a, op := w.Action(), w.Op()
		if a == PUSHLIT && pc+1 < len(p) {
			if c, ok := constAction(uint16(p[pc+1])); ok {
				out = append(out, MkInstr(c, op))
				pc++
				continue
			}
		}
		out = append(out, w)
		if a.HasOperand() {
			pc++
			out = append(out, p[pc])
		}
	}

	// Pass 2: fuse a pure push with a following pure operator.
	fused := make(Program, 0, len(out))
	for pc := 0; pc < len(out); pc++ {
		w := out[pc]
		a, op := w.Action(), w.Op()
		operand := Word(0)
		hasOperand := a.HasOperand()
		if hasOperand {
			operand = out[pc+1]
		}
		// Look ahead: a push with no operator, followed by an
		// operator with no push, fuse into one word.  (The fused
		// word performs the push first, then the operator —
		// exactly the original two-word semantics.)  Works for
		// operand-carrying pushes too: "PUSHLIT, v, EQ" becomes
		// "PUSHLIT|EQ, v".
		nxtIdx := pc + 1
		if hasOperand {
			nxtIdx = pc + 2
		}
		if op == NOP && a != NOPUSH && nxtIdx < len(out) {
			nxt := out[nxtIdx]
			if nxt.Action() == NOPUSH && nxt.Op() != NOP {
				fused = append(fused, MkInstr(a, nxt.Op()))
				if hasOperand {
					fused = append(fused, operand)
					pc++
				}
				pc++
				continue
			}
		}
		fused = append(fused, w)
		if hasOperand {
			fused = append(fused, operand)
			pc++
		}
	}
	return fused
}

// constAction maps a literal value to the equivalent constant stack
// action, if one exists.
func constAction(v uint16) (Action, bool) {
	switch v {
	case 0:
		return PUSHZERO, true
	case 1:
		return PUSHONE, true
	case 0xFFFF:
		return PUSHFFFF, true
	case 0xFF00:
		return PUSHFF00, true
	case 0x00FF:
		return PUSH00FF, true
	}
	return 0, false
}
