package workload

// Adversarial workloads: the attacker's half of the resource-governance
// story.  The paper's only structural defense against a hostile user is
// the program-length cap, so the worst legal filter still charges the
// kernel MaxProgramLen instruction units for every frame on the wire —
// these helpers construct that filter (and the traffic patterns that
// weaponize it) so the storm experiments and the governor's tests can
// prove graceful degradation instead of assuming it.

import (
	"math/rand"
	"time"

	"repro/internal/ethersim"
	"repro/internal/filter"
	"repro/internal/pup"
	"repro/internal/sim"
)

// BurnProgram is the canonical hostile filter: filter.MaxInstrsProgram
// with an always-false tail, so every one of its MaxProgramLen
// instruction words executes on every packet and the packet still
// falls through to the next filter.  A port binding it taxes the whole
// interface's scan without ever consuming a frame — the worst case for
// everyone else, which is exactly what an adversary wants.
func BurnProgram() filter.Program {
	p := filter.MaxInstrsProgram()
	// Replace the final OR with AND-with-zero: the OR-chain's value is
	// discarded and the program always rejects.  Constant propagation
	// cannot cap it (one operand stays packet-dependent), so its
	// WorstInstrs equals its full length.
	p[len(p)-1] = filter.MkInstr(filter.PUSHZERO, filter.AND)
	return p
}

// SearchAdversarial hill-climbs over random mutations for the valid
// program executing the most instruction words against the sample
// packets, starting from a modest random program.  It returns the best
// program found and its total executed count.  The search is seeded
// and deterministic; with enough rounds it converges on full-length
// straight-line programs — empirical evidence that BurnProgram (which
// it can never beat, only meet) really is the worst case the language
// admits.
func SearchAdversarial(seed int64, rounds int, pkts [][]byte) (filter.Program, int) {
	rng := rand.New(rand.NewSource(seed))
	score := func(p filter.Program) int {
		if _, err := filter.Validate(p, filter.ValidateOptions{}); err != nil {
			return -1
		}
		total := 0
		for _, pkt := range pkts {
			total += filter.Run(p, pkt).Instrs
		}
		return total
	}
	best := filter.Program{filter.MkInstr(filter.PUSHONE, filter.NOP)}
	bestScore := score(best)
	for i := 0; i < rounds; i++ {
		cand := best.Clone()
		switch rng.Intn(3) {
		case 0: // grow: splice a push-and-combine pair somewhere
			if len(cand) < filter.MaxProgramLen {
				at := rng.Intn(len(cand) + 1)
				w := filter.MkInstr(filter.PushWord(rng.Intn(8)), filter.Op(rng.Intn(16)))
				cand = append(cand[:at], append(filter.Program{w}, cand[at:]...)...)
			}
		case 1: // mutate one word wholesale
			cand[rng.Intn(len(cand))] = filter.Word(rng.Uint32())
		default: // mutate just the operator nibble
			at := rng.Intn(len(cand))
			cand[at] = filter.MkInstr(cand[at].Action(), filter.Op(rng.Intn(16)))
		}
		if s := score(cand); s > bestScore {
			best, bestScore = cand, s
		}
	}
	return best, bestScore
}

// BroadcastStorm floods n broadcast Pup frames from nic, one every
// interval — every host on the wire demultiplexes every frame, so a
// single sender applies the whole segment's filter load.  Frames cycle
// destination sockets from the generator's population, making them
// near-misses for every bound filter (maximum scan work, no
// deliveries) unless a port really does own the socket.
func (g *Generator) BroadcastStorm(p *sim.Proc, nic *ethersim.NIC, n int, interval time.Duration) {
	tr := p.Sim().Tracer()
	bcast := g.link.BroadcastAddr()
	for i := 0; i < n; i++ {
		nic.Transmit(g.pupFrame(bcast, nic.Addr()))
		tr.SpanClass(tr.LastSpan(), "storm")
		p.Sleep(interval)
	}
}

// PortChurnFlood sends n Pup frames whose destination socket walks a
// churn window far outside the generator's socket population: every
// frame misses every bound filter after a full-length scan, and the
// constantly shifting socket defeats both the §3.2 busy-first
// reordering and any caching keyed on recent match outcomes.  It is
// the pattern that keeps a governor honest about charging the scan,
// not the match.
func (g *Generator) PortChurnFlood(p *sim.Proc, nic *ethersim.NIC, dst ethersim.Addr, n int, interval time.Duration) {
	tr := p.Sim().Tracer()
	for i := 0; i < n; i++ {
		pkt := pup.Packet{
			Type: 1,
			ID:   g.rng.Uint32(),
			Dst:  pup.PortAddr{Net: 1, Host: uint8(dst), Socket: 0x4_0000 + uint32(i%4096)},
			Src:  pup.PortAddr{Net: 1, Host: uint8(nic.Addr()), Socket: 0x9000},
			Data: make([]byte, 16),
		}
		payload, _ := pkt.Marshal()
		etherType := ethersim.EtherTypePup3Mb
		if g.link == ethersim.Ether10Mb {
			etherType = ethersim.EtherTypePup
		}
		nic.Transmit(g.link.Encode(dst, nic.Addr(), etherType, payload))
		tr.SpanClass(tr.LastSpan(), "churn")
		p.Sleep(interval)
	}
}
