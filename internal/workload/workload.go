// Package workload synthesizes the traffic the paper's §6.1 profiling
// ran under: a 28-hour timesharing trace in which "21% of these
// packets were processed by the packet filter; of the remainder, 69%
// were IP packets and 10% were ARP packets", with the packet-filter
// share spread over a population of active ports so that "the average
// packet is tested against 6.3 predicates".
//
// Generators are deterministic (seeded math/rand) so every benchmark
// run reproduces the same packet sequence.
package workload

import (
	"encoding/binary"
	"math/rand"
	"time"

	"repro/internal/ethersim"
	"repro/internal/pup"
	"repro/internal/sim"
)

// Mix is a traffic composition in percent; the remainder after PF+IP+ARP
// is emitted as unclassifiable frames (dropped by everyone).
type Mix struct {
	PctPF  int // Pup packets destined for packet-filter ports
	PctIP  int // UDP-over-IP packets for the kernel stack
	PctARP int // ARP requests
}

// PaperMix is §6.1's published composition.
func PaperMix() Mix { return Mix{PctPF: 21, PctIP: 69, PctARP: 10} }

// Generator emits a deterministic packet mix onto a network.
type Generator struct {
	rng  *rand.Rand
	mix  Mix
	link ethersim.LinkType

	// Sockets is the population of Pup destination sockets that
	// packet-filter traffic is spread over; the §6.1 experiment
	// binds one port per socket.
	Sockets []uint32
	// SocketBias skews traffic toward the first sockets when > 0,
	// giving the priority/reordering machinery something to
	// exploit (§3.2: priorities "proportional to the likelihood
	// that a filter will accept a packet").
	SocketBias float64

	// Sent counts per class.
	SentPF, SentIP, SentARP, SentOther int

	// LastClass names the class of the most recent Frame ("pup",
	// "ip", "arp", "other") — Drive tags each transmitted frame's
	// provenance span with it.
	LastClass string
}

// NewGenerator creates a deterministic generator.
func NewGenerator(seed int64, link ethersim.LinkType, mix Mix, sockets []uint32) *Generator {
	return &Generator{
		rng: rand.New(rand.NewSource(seed)), mix: mix, link: link,
		Sockets: sockets,
	}
}

// Frame produces the next frame addressed to dst (src is the sender's
// link address).
func (g *Generator) Frame(dst, src ethersim.Addr) []byte {
	roll := g.rng.Intn(100)
	switch {
	case roll < g.mix.PctPF:
		g.SentPF++
		g.LastClass = "pup"
		return g.pupFrame(dst, src)
	case roll < g.mix.PctPF+g.mix.PctIP:
		g.SentIP++
		g.LastClass = "ip"
		return g.ipFrame(dst, src)
	case roll < g.mix.PctPF+g.mix.PctIP+g.mix.PctARP:
		g.SentARP++
		g.LastClass = "arp"
		return g.arpFrame(src)
	default:
		g.SentOther++
		g.LastClass = "other"
		return g.link.Encode(dst, src, 0x9999, make([]byte, 46))
	}
}

// pickSocket selects a destination socket, optionally biased toward
// the front of the population.
func (g *Generator) pickSocket() uint32 {
	if len(g.Sockets) == 0 {
		return 0x100
	}
	if g.SocketBias <= 0 {
		return g.Sockets[g.rng.Intn(len(g.Sockets))]
	}
	// Geometric-ish bias: repeatedly prefer the earlier half.
	i := g.rng.Intn(len(g.Sockets))
	for i > 0 && g.rng.Float64() < g.SocketBias {
		i /= 2
	}
	return g.Sockets[i]
}

func (g *Generator) pupFrame(dst, src ethersim.Addr) []byte {
	pkt := pup.Packet{
		Type: uint8(1 + g.rng.Intn(60)),
		ID:   g.rng.Uint32(),
		Dst:  pup.PortAddr{Net: 1, Host: uint8(dst), Socket: g.pickSocket()},
		Src:  pup.PortAddr{Net: 1, Host: uint8(src), Socket: 0x9000},
		Data: make([]byte, 16+g.rng.Intn(100)),
	}
	payload, _ := pkt.Marshal()
	etherType := ethersim.EtherTypePup3Mb
	if g.link == ethersim.Ether10Mb {
		etherType = ethersim.EtherTypePup
	}
	return g.link.Encode(dst, src, etherType, payload)
}

func (g *Generator) ipFrame(dst, src ethersim.Addr) []byte {
	// A hand-rolled IP/UDP datagram (the generator plays "the rest
	// of the campus", not our own stack).
	data := make([]byte, 32+g.rng.Intn(200))
	seg := make([]byte, 8+len(data))
	binary.BigEndian.PutUint16(seg[0:], uint16(1024+g.rng.Intn(64)))
	binary.BigEndian.PutUint16(seg[2:], 1) // the well-known sink port
	binary.BigEndian.PutUint16(seg[4:], uint16(len(seg)))
	copy(seg[8:], data)
	ip := make([]byte, 20+len(seg))
	ip[0] = 0x45
	binary.BigEndian.PutUint16(ip[2:], uint16(len(ip)))
	ip[8] = 30
	ip[9] = 17
	binary.BigEndian.PutUint32(ip[12:], 0x0A000000|uint32(src))
	binary.BigEndian.PutUint32(ip[16:], 0x0A000000|uint32(dst))
	var sum uint32
	for i := 0; i < 20; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(ip[i:]))
	}
	for sum > 0xFFFF {
		sum = (sum & 0xFFFF) + (sum >> 16)
	}
	binary.BigEndian.PutUint16(ip[10:], ^uint16(sum))
	copy(ip[20:], seg)
	return g.link.Encode(dst, src, ethersim.EtherTypeIP, ip)
}

func (g *Generator) arpFrame(src ethersim.Addr) []byte {
	hlen := g.link.AddrLen()
	b := make([]byte, 8+2*hlen+8)
	binary.BigEndian.PutUint16(b[0:], 1)
	binary.BigEndian.PutUint16(b[2:], uint16(ethersim.EtherTypeIP))
	b[4] = byte(hlen)
	b[5] = 4
	binary.BigEndian.PutUint16(b[6:], 1) // request
	// Sender hardware address.
	a := src
	for i := hlen - 1; i >= 0; i-- {
		b[8+i] = byte(a)
		a >>= 8
	}
	binary.BigEndian.PutUint32(b[8+hlen:], 0x0A000000|uint32(src))
	binary.BigEndian.PutUint32(b[8+2*hlen+4:], 0x0A000000|uint32(g.rng.Intn(250)))
	return g.link.Encode(g.link.BroadcastAddr(), src, ethersim.EtherTypeARP, b)
}

// Drive transmits n frames from nic to dst, one every interval,
// blocking in the calling process.
func (g *Generator) Drive(p *sim.Proc, nic *ethersim.NIC, dst ethersim.Addr, n int, interval time.Duration) {
	tr := p.Sim().Tracer()
	for i := 0; i < n; i++ {
		nic.Transmit(g.Frame(dst, nic.Addr()))
		tr.SpanClass(tr.LastSpan(), g.LastClass)
		p.Sleep(interval)
	}
}
