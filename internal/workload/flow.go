package workload

// Heavy-tailed flow structure.  The paper's §6.1 mix describes the
// *composition* of a timesharing trace; real traffic additionally
// arrives as flows — bursts of packets between one endpoint pair —
// whose sizes are famously heavy-tailed: most flows are a few packets,
// while a small number of elephants carry most of the bytes.  FlowGen
// layers that structure over the Pup traffic class: it draws flow
// sizes from a bounded Pareto distribution and emits each flow's
// packets back to back to a single destination socket, so a receiving
// port population sees realistic hot-spot skew (a stress profile for
// busy-first reordering and the resource governor, and pfserve's
// heavytail self-test profile).

import (
	"math"
	"math/rand"

	"repro/internal/ethersim"
	"repro/internal/pup"
)

// FlowGen emits deterministic Pup traffic organized into heavy-tailed
// flows.
type FlowGen struct {
	rng  *rand.Rand
	link ethersim.LinkType

	// Sockets is the destination-socket population; each flow picks
	// one uniformly and sticks to it.
	Sockets []uint32

	// Alpha is the Pareto tail index.  1 < Alpha < 2 gives the
	// classic infinite-variance regime; default 1.2.
	Alpha float64
	// MinFlow and MaxFlow bound the packets per flow (defaults 1 and
	// 4096).  The upper bound keeps a single elephant from consuming
	// an entire test run.
	MinFlow, MaxFlow int

	// Flow state: remaining packets and destination of the current
	// flow.
	remaining int
	socket    uint32

	// Flows counts flows started; SentPF counts packets emitted;
	// LastFlowSize is the size drawn for the current flow.
	Flows        int
	SentPF       int
	LastFlowSize int
}

// NewFlowGen creates a deterministic heavy-tailed flow generator.
func NewFlowGen(seed int64, link ethersim.LinkType, sockets []uint32) *FlowGen {
	return &FlowGen{
		rng:     rand.New(rand.NewSource(seed)),
		link:    link,
		Sockets: sockets,
		Alpha:   1.2,
		MinFlow: 1,
		MaxFlow: 4096,
	}
}

// flowSize draws one flow size from the bounded Pareto via inverse
// CDF: x = L / (1 - U*(1 - (L/H)^a))^(1/a), truncated to [L, H].
func (fg *FlowGen) flowSize() int {
	l, h := float64(fg.MinFlow), float64(fg.MaxFlow)
	a := fg.Alpha
	u := fg.rng.Float64()
	x := l / math.Pow(1-u*(1-math.Pow(l/h, a)), 1/a)
	n := int(x)
	if n < fg.MinFlow {
		n = fg.MinFlow
	}
	if n > fg.MaxFlow {
		n = fg.MaxFlow
	}
	return n
}

// nextFlow starts a new flow: a freshly drawn size and destination.
func (fg *FlowGen) nextFlow() {
	fg.remaining = fg.flowSize()
	fg.LastFlowSize = fg.remaining
	if len(fg.Sockets) > 0 {
		fg.socket = fg.Sockets[fg.rng.Intn(len(fg.Sockets))]
	} else {
		fg.socket = 0x100
	}
	fg.Flows++
}

// Frame produces the next frame: the current flow's next packet, or
// the first packet of a new flow once the current one is exhausted.
func (fg *FlowGen) Frame(dst, src ethersim.Addr) []byte {
	if fg.remaining == 0 {
		fg.nextFlow()
	}
	fg.remaining--
	fg.SentPF++
	pkt := pup.Packet{
		Type: uint8(1 + fg.rng.Intn(60)),
		ID:   fg.rng.Uint32(),
		Dst:  pup.PortAddr{Net: 1, Host: uint8(dst), Socket: fg.socket},
		Src:  pup.PortAddr{Net: 1, Host: uint8(src), Socket: 0x9000},
		Data: make([]byte, 16+fg.rng.Intn(100)),
	}
	payload, _ := pkt.Marshal()
	etherType := ethersim.EtherTypePup3Mb
	if fg.link == ethersim.Ether10Mb {
		etherType = ethersim.EtherTypePup
	}
	return fg.link.Encode(dst, src, etherType, payload)
}
