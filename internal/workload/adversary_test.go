package workload

import (
	"testing"
	"time"

	"repro/internal/ethersim"
	"repro/internal/filter"
	"repro/internal/pfdev"
	"repro/internal/sim"
	"repro/internal/vtime"
)

// TestBurnProgram pins the hostile filter's contract: maximum length,
// no statically provable early exit, every instruction executing on a
// normal packet, and a reject verdict so the scan continues past it.
func TestBurnProgram(t *testing.T) {
	p := BurnProgram()
	info, err := filter.Validate(p, filter.ValidateOptions{})
	if err != nil {
		t.Fatalf("BurnProgram does not validate: %v", err)
	}
	if info.Instrs != filter.MaxProgramLen || info.WorstInstrs != filter.MaxProgramLen {
		t.Fatalf("Instrs=%d WorstInstrs=%d, want both %d",
			info.Instrs, info.WorstInstrs, filter.MaxProgramLen)
	}
	for _, pkt := range [][]byte{make([]byte, 64), {0xFF, 0xFF}, make([]byte, 600)} {
		r := filter.Run(p, pkt)
		if r.Err != nil {
			t.Fatalf("burn filter errored on %d-byte packet: %v", len(pkt), r.Err)
		}
		if r.Accept {
			t.Fatalf("burn filter accepted a packet; it must fall through")
		}
		if r.Instrs != filter.MaxProgramLen {
			t.Fatalf("executed %d instrs on %d-byte packet, want %d",
				r.Instrs, len(pkt), filter.MaxProgramLen)
		}
	}
}

// TestSearchAdversarial checks the hill-climber: deterministic for a
// seed, strictly better than its trivial starting point, and bounded
// by the language's ceiling that BurnProgram attains.
func TestSearchAdversarial(t *testing.T) {
	pkts := [][]byte{make([]byte, 64), make([]byte, 128)}
	for i := range pkts {
		for j := range pkts[i] {
			pkts[i][j] = byte(i + j)
		}
	}
	prog, score := SearchAdversarial(11, 4000, pkts)
	prog2, score2 := SearchAdversarial(11, 4000, pkts)
	if score != score2 || !prog.Equal(prog2) {
		t.Fatalf("search is not deterministic: %d vs %d", score, score2)
	}
	if score <= len(pkts) {
		t.Fatalf("search found nothing beyond the 1-instruction baseline: %d", score)
	}
	ceiling := filter.MaxProgramLen * len(pkts)
	if score > ceiling {
		t.Fatalf("score %d exceeds the language ceiling %d", score, ceiling)
	}
	if burn := BurnProgram(); score > len(pkts)*filter.MustValidate(burn, filter.ValidateOptions{}).WorstInstrs {
		t.Fatalf("search beat BurnProgram, which should be the worst case")
	}
	if _, err := filter.Validate(prog, filter.ValidateOptions{}); err != nil {
		t.Fatalf("search returned an invalid program: %v", err)
	}
}

// TestStormGenerators drives both hostile traffic patterns into a live
// device and checks their defining properties: broadcast-storm frames
// reach every other host on the wire, and port-churn frames make a
// bound socket filter do work without ever matching.
func TestStormGenerators(t *testing.T) {
	s := sim.New(vtime.DefaultCosts())
	net := ethersim.New(s, ethersim.Ether3Mb)
	ha, hb, hc := s.NewHost("atk"), s.NewHost("b"), s.NewHost("c")
	na := net.Attach(ha, 1)
	nb, nc := net.Attach(hb, 2), net.Attach(hc, 3)
	db, dc := pfdev.Attach(nb, nil, pfdev.Options{}), pfdev.Attach(nc, nil, pfdev.Options{})

	var pb, pc *pfdev.Port
	s.Spawn(hb, "openb", func(p *sim.Proc) {
		pb = db.Open(p)
		pb.SetFilter(p, filter.DstSocketFilter(10, 0x100))
	})
	s.Spawn(hc, "openc", func(p *sim.Proc) {
		pc = dc.Open(p)
		pc.SetFilter(p, filter.DstSocketFilter(10, 0x100))
	})
	s.Spawn(ha, "storm", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		g := NewGenerator(5, ethersim.Ether3Mb, Mix{PctPF: 100}, []uint32{0x100})
		g.BroadcastStorm(p, na, 20, 200*time.Microsecond)
		g.PortChurnFlood(p, na, 2, 30, 200*time.Microsecond)
	})
	s.Run(0)

	bs, cs := pb.Stats(), pc.Stats()
	if bs.Matched == 0 || cs.Matched == 0 {
		t.Fatalf("broadcast storm did not reach both hosts: b=%d c=%d matches",
			bs.Matched, cs.Matched)
	}
	// The churn flood was unicast to host b, and none of its 30 frames
	// may match the socket-0x100 filter — but each one costs a scan.
	if bs.Matched != 20 {
		t.Fatalf("churn frames matched the socket filter: %d matches, want the 20 storm hits", bs.Matched)
	}
	if bs.FilterInstrs == 0 {
		t.Fatalf("churn flood charged no filter work")
	}
}
