package workload

import (
	"testing"
	"time"

	"repro/internal/ethersim"
	"repro/internal/filter"
	"repro/internal/inet"
	"repro/internal/pfdev"
	"repro/internal/sim"
	"repro/internal/vtime"
)

func TestMixProportions(t *testing.T) {
	g := NewGenerator(1, ethersim.Ether10Mb, PaperMix(), []uint32{1, 2, 3})
	const n = 5000
	for i := 0; i < n; i++ {
		if f := g.Frame(2, 1); len(f) == 0 {
			t.Fatal("empty frame")
		}
	}
	within := func(got, wantPct, tolPct int) bool {
		want := n * wantPct / 100
		tol := n * tolPct / 100
		return got > want-tol && got < want+tol
	}
	if !within(g.SentPF, 21, 3) || !within(g.SentIP, 69, 3) || !within(g.SentARP, 10, 3) {
		t.Fatalf("mix: pf=%d ip=%d arp=%d other=%d",
			g.SentPF, g.SentIP, g.SentARP, g.SentOther)
	}
}

func TestDeterminism(t *testing.T) {
	g1 := NewGenerator(7, ethersim.Ether3Mb, PaperMix(), []uint32{5, 6})
	g2 := NewGenerator(7, ethersim.Ether3Mb, PaperMix(), []uint32{5, 6})
	for i := 0; i < 200; i++ {
		a, b := g1.Frame(2, 1), g2.Frame(2, 1)
		if len(a) != len(b) {
			t.Fatalf("frame %d: lengths differ", i)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("frame %d differs at byte %d", i, j)
			}
		}
	}
}

func TestSocketBiasSkewsTraffic(t *testing.T) {
	sockets := []uint32{1, 2, 3, 4, 5, 6, 7, 8}
	g := NewGenerator(3, ethersim.Ether3Mb, Mix{PctPF: 100}, sockets)
	g.SocketBias = 0.7
	counts := make(map[uint32]int)
	for i := 0; i < 2000; i++ {
		counts[g.pickSocket()]++
	}
	if counts[sockets[0]] <= counts[sockets[len(sockets)-1]] {
		t.Fatalf("bias ineffective: first=%d last=%d",
			counts[sockets[0]], counts[sockets[len(sockets)-1]])
	}
}

func TestGeneratedFramesParseEverywhere(t *testing.T) {
	// The generated mix must be consumable by the real kernel stack
	// and the packet filter without errors.
	s := sim.New(vtime.DefaultCosts())
	net := ethersim.New(s, ethersim.Ether10Mb)
	ha, hb := s.NewHost("src"), s.NewHost("dst")
	na := net.Attach(ha, 1)
	nb := net.Attach(hb, 2)
	stack := inet.NewStack(nb, 0x0A000002)
	dev := pfdev.Attach(nb, stack, pfdev.Options{})

	var pfGot int
	s.Spawn(hb, "pf", func(p *sim.Proc) {
		port := dev.Open(p)
		port.SetFilter(p, filter.Filter{Priority: 10,
			Program: filter.NewBuilder().
				WordEQ(ethersim.Ether10Mb.TypeWord(), ethersim.EtherTypePup).
				MustProgram()})
		port.SetTimeout(p, 100*time.Millisecond)
		port.SetQueueLimit(p, 1000)
		for {
			if _, err := port.Read(p); err != nil {
				return
			}
			pfGot++
		}
	})
	g := NewGenerator(11, ethersim.Ether10Mb, PaperMix(), []uint32{0x100})
	s.Spawn(ha, "src", func(p *sim.Proc) {
		p.Sleep(5 * time.Millisecond)
		g.Drive(p, na, 2, 200, 2*time.Millisecond)
	})
	s.Run(0)
	if g.SentPF > 0 && pfGot != g.SentPF {
		t.Fatalf("pf delivered %d of %d pup packets", pfGot, g.SentPF)
	}
	if g.SentIP > 0 && stack.IPIn == 0 {
		t.Fatal("kernel stack saw no IP")
	}
	if g.SentARP > 0 && stack.ARPIn == 0 {
		t.Fatal("kernel stack saw no ARP")
	}
}
