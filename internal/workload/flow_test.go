package workload

import (
	"sort"
	"testing"

	"repro/internal/ethersim"
)

// Flow sizes must be deterministic, bounded, and actually heavy-tailed:
// the sample maximum dwarfs the median and the top decile carries the
// majority of the packets.
func TestFlowGenHeavyTail(t *testing.T) {
	fg := NewFlowGen(7, ethersim.Ether10Mb, []uint32{0x100, 0x101})
	const flows = 20000
	sizes := make([]int, flows)
	total := 0
	for i := range sizes {
		sizes[i] = fg.flowSize()
		if sizes[i] < fg.MinFlow || sizes[i] > fg.MaxFlow {
			t.Fatalf("flow %d size %d outside [%d, %d]", i, sizes[i], fg.MinFlow, fg.MaxFlow)
		}
		total += sizes[i]
	}
	sorted := append([]int(nil), sizes...)
	sort.Ints(sorted)
	median := sorted[flows/2]
	max := sorted[flows-1]
	if median > 3 {
		t.Errorf("median flow size %d; Pareto(1.2) mass should sit at a few packets", median)
	}
	if max < 50*median+50 {
		t.Errorf("max flow %d vs median %d: tail not heavy", max, median)
	}
	// Top 10% of flows should carry over half the packets.
	top := 0
	for _, n := range sorted[flows-flows/10:] {
		top += n
	}
	if 2*top < total {
		t.Errorf("top decile carries %d of %d packets; tail too light", top, total)
	}
}

func TestFlowGenDeterministic(t *testing.T) {
	a := NewFlowGen(3, ethersim.Ether10Mb, []uint32{0x100, 0x101, 0x102})
	b := NewFlowGen(3, ethersim.Ether10Mb, []uint32{0x100, 0x101, 0x102})
	for i := 0; i < 500; i++ {
		fa := a.Frame(2, 1)
		fb := b.Frame(2, 1)
		if string(fa) != string(fb) {
			t.Fatalf("frame %d diverged between identically seeded generators", i)
		}
	}
	if a.Flows == 0 || a.Flows != b.Flows {
		t.Fatalf("flow counts diverged: %d vs %d", a.Flows, b.Flows)
	}
}

// Every frame of one flow goes to the same destination socket, and the
// generator moves on to a (usually different) socket for the next flow.
func TestFlowGenSticksToSocket(t *testing.T) {
	fg := NewFlowGen(11, ethersim.Ether10Mb, []uint32{0x100, 0x101, 0x102, 0x103})
	lastSock := uint32(0)
	changes := 0
	for i := 0; i < 2000; i++ {
		start := fg.remaining == 0 // next Frame call begins a new flow
		fg.Frame(2, 1)
		if start {
			if fg.socket != lastSock {
				changes++
			}
			lastSock = fg.socket
		} else if fg.socket != lastSock {
			t.Fatalf("frame %d switched socket mid-flow", i)
		}
	}
	if changes < 10 {
		t.Fatalf("only %d socket changes over 2000 frames; flows not rotating", changes)
	}
}
