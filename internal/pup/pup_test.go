package pup

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestMarshalRoundTrip(t *testing.T) {
	in := &Packet{
		HopCount: 3, Type: TypeEchoMe, ID: 0xDEADBEEF,
		Dst:  PortAddr{Net: 1, Host: 5, Socket: 0x00010023},
		Src:  PortAddr{Net: 1, Host: 2, Socket: 77},
		Data: []byte("hello pup"),
	}
	for _, ck := range []bool{false, true} {
		in.Checksummed = ck
		wire, err := in.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if len(wire) != HeaderLen+len(in.Data)+ChecksumLen {
			t.Fatalf("wire len = %d", len(wire))
		}
		out, err := Unmarshal(wire)
		if err != nil {
			t.Fatalf("checksummed=%v: %v", ck, err)
		}
		if out.Type != in.Type || out.ID != in.ID || out.Dst != in.Dst ||
			out.Src != in.Src || out.HopCount != in.HopCount {
			t.Fatalf("header mismatch: %+v vs %+v", out, in)
		}
		if !bytes.Equal(out.Data, in.Data) {
			t.Fatal("data mismatch")
		}
		if out.Checksummed != ck {
			t.Fatalf("checksummed = %v, want %v", out.Checksummed, ck)
		}
	}
}

func TestMarshalLimits(t *testing.T) {
	p := &Packet{Data: make([]byte, MaxData)}
	wire, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) != MaxPup || MaxPup != 568 {
		t.Fatalf("max pup = %d, paper says 568", len(wire))
	}
	p.Data = make([]byte, MaxData+1)
	if _, err := p.Marshal(); err != ErrTooLong {
		t.Fatalf("err = %v", err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(make([]byte, HeaderLen)); err != ErrTooShort {
		t.Errorf("short: %v", err)
	}
	p := &Packet{Data: []byte("x")}
	wire, _ := p.Marshal()
	wire[0], wire[1] = 0xFF, 0xFF // absurd length
	if _, err := Unmarshal(wire); err != ErrBadLength {
		t.Errorf("bad length: %v", err)
	}
	wire, _ = p.Marshal()
	wire[1] = 5 // shorter than a header
	if _, err := Unmarshal(wire); err != ErrBadLength {
		t.Errorf("tiny length: %v", err)
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	p := &Packet{Type: 9, ID: 42, Data: []byte("payload bytes"), Checksummed: true}
	wire, _ := p.Marshal()
	for i := 0; i < len(wire)-ChecksumLen; i++ {
		bad := append([]byte(nil), wire...)
		bad[i] ^= 0x01
		if _, err := Unmarshal(bad); err == nil {
			t.Fatalf("single-bit corruption at byte %d undetected", i)
		}
	}
}

func TestChecksumProperties(t *testing.T) {
	// The checksum never produces the NoChecksum sentinel, and it is
	// sensitive to word order (unlike a plain sum).
	f := func(data []byte) bool {
		return Checksum(data) != NoChecksum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	a := Checksum([]byte{1, 2, 3, 4})
	b := Checksum([]byte{3, 4, 1, 2})
	if a == b {
		t.Error("checksum insensitive to word order")
	}
}

func TestSegment(t *testing.T) {
	segs := segment(make([]byte, 1000), 400)
	if len(segs) != 3 || len(segs[0]) != 400 || len(segs[2]) != 200 {
		t.Fatalf("segments = %d", len(segs))
	}
	segs = segment(nil, 400)
	if len(segs) != 1 || segs[0] != nil {
		t.Fatal("empty data should yield one empty segment")
	}
}

func TestPortAddrString(t *testing.T) {
	a := PortAddr{Net: 4, Host: 12, Socket: 35}
	if a.String() != "4#12#35" {
		t.Fatalf("got %q", a.String())
	}
}
