package pup

import (
	"bytes"
	"testing"
)

// Native fuzz targets for the Pup wire format.  `go test` runs the
// seed corpus as ordinary tests; `go test -fuzz=FuzzPupUnmarshal`
// explores further.  The obligations mirror what the fault injector
// assumes: arbitrary bytes never panic the parser, and anything that
// parses obeys the format's invariants.

func FuzzPupUnmarshal(f *testing.F) {
	valid := &Packet{
		Type: TypeEchoMe, ID: 7,
		Dst:  PortAddr{Net: 1, Host: 2, Socket: 0x30},
		Src:  PortAddr{Net: 1, Host: 3, Socket: 0x31},
		Data: []byte("hello"), Checksummed: true,
	}
	vb, _ := valid.Marshal()
	f.Add(vb)
	valid.Checksummed = false
	vb2, _ := valid.Marshal()
	f.Add(vb2)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, HeaderLen+ChecksumLen))
	f.Add([]byte{0x00, 0x05, 1, 2, 3}) // length field lies

	f.Fuzz(func(t *testing.T, b []byte) {
		p, err := Unmarshal(b) // must not panic
		if err != nil {
			return
		}
		if len(p.Data) > MaxData {
			t.Fatalf("parsed %d data bytes, format maximum is %d", len(p.Data), MaxData)
		}
		// Whatever parses must re-marshal, and the re-marshaled form
		// must parse back to the same packet (canonicalization: the
		// input may carry trailing garbage past the length field).
		out, err := p.Marshal()
		if err != nil {
			t.Fatalf("re-marshal of parsed packet failed: %v", err)
		}
		q, err := Unmarshal(out)
		if err != nil {
			t.Fatalf("re-parse of re-marshaled packet failed: %v", err)
		}
		if q.Type != p.Type || q.ID != p.ID || q.Dst != p.Dst || q.Src != p.Src ||
			!bytes.Equal(q.Data, p.Data) || q.Checksummed != p.Checksummed {
			t.Fatalf("round trip changed the packet: %+v vs %+v", p, q)
		}
	})
}

// TestBitFlipNeverSurvivesChecksum is the fault injector's core
// contract: flip any single bit of a checksummed Pup and Unmarshal
// must reject it — corruption is caught by the checksum, never
// delivered by luck.  The one formal escape is a flip inside the
// checksum word itself that lands on the NoChecksum sentinel, turning
// the packet into an (intact) unchecksummed one; consumers running
// Checksummed close that hole by discarding unchecksummed packets.
func TestBitFlipNeverSurvivesChecksum(t *testing.T) {
	data := make([]byte, 100)
	for i := range data {
		data[i] = byte(i * 3)
	}
	orig := &Packet{
		Type: TypeBSPData, ID: 0xDEADBEEF,
		Dst:  PortAddr{Net: 1, Host: 2, Socket: 0x500},
		Src:  PortAddr{Net: 1, Host: 3, Socket: 0x501},
		Data: data, Checksummed: true,
	}
	wire, err := orig.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	sumOff := len(wire) - ChecksumLen
	for bit := 0; bit < len(wire)*8; bit++ {
		flipped := append([]byte(nil), wire...)
		flipped[bit/8] ^= 1 << (bit % 8)
		p, err := Unmarshal(flipped)
		if err != nil {
			continue // corruption surfaced as a parse/checksum error
		}
		if bit/8 >= sumOff && !p.Checksummed && bytes.Equal(p.Data, orig.Data) {
			// The flip rewrote the checksum word into the NoChecksum
			// sentinel; the content is intact and the packet is now
			// visibly unchecksummed, which Checksummed consumers drop.
			continue
		}
		t.Fatalf("bit flip at %d (byte %d) survived Unmarshal: %+v", bit, bit/8, p)
	}
}
