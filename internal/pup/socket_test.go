package pup

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/ethersim"
	"repro/internal/pfdev"
	"repro/internal/sim"
	"repro/internal/vtime"
)

// rig builds a two-host network with packet-filter devices, on either
// link type.
type rig struct {
	s      *sim.Sim
	net    *ethersim.Network
	ha, hb *sim.Host
	da, db *pfdev.Device
}

func newRig(link ethersim.LinkType) *rig {
	s := sim.New(vtime.DefaultCosts())
	net := ethersim.New(s, link)
	ha, hb := s.NewHost("a"), s.NewHost("b")
	return &rig{
		s: s, net: net, ha: ha, hb: hb,
		da: pfdev.Attach(net.Attach(ha, 1), nil, pfdev.Options{}),
		db: pfdev.Attach(net.Attach(hb, 2), nil, pfdev.Options{}),
	}
}

var (
	addrA = PortAddr{Net: 1, Host: 1, Socket: 0x100}
	addrB = PortAddr{Net: 1, Host: 2, Socket: 0x200}
)

func TestEchoOverBothLinks(t *testing.T) {
	for _, link := range []ethersim.LinkType{ethersim.Ether3Mb, ethersim.Ether10Mb} {
		r := newRig(link)
		var rtt time.Duration
		var echoErr error
		r.s.Spawn(r.hb, "server", func(p *sim.Proc) {
			sock, err := Open(p, r.db, addrB, 10)
			if err != nil {
				t.Error(err)
				return
			}
			sock.EchoServer(p, 100*time.Millisecond)
		})
		r.s.Spawn(r.ha, "client", func(p *sim.Proc) {
			sock, err := Open(p, r.da, addrA, 10)
			if err != nil {
				t.Error(err)
				return
			}
			p.Sleep(5 * time.Millisecond)
			rtt, echoErr = sock.Echo(p, addrB, []byte("ping"), 50*time.Millisecond, 3)
		})
		r.s.Run(0)
		if echoErr != nil {
			t.Fatalf("%v: echo: %v", link, echoErr)
		}
		if rtt <= 0 || rtt > 50*time.Millisecond {
			t.Fatalf("%v: rtt = %v", link, rtt)
		}
	}
}

func TestEchoRetryAfterLoss(t *testing.T) {
	r := newRig(ethersim.Ether3Mb)
	// Drop the first request frame only; the retry must succeed.
	r.net.DropFn = func(i uint64, _ []byte) bool { return i == 1 }
	var echoErr error
	r.s.Spawn(r.hb, "server", func(p *sim.Proc) {
		sock, _ := Open(p, r.db, addrB, 10)
		sock.EchoServer(p, 200*time.Millisecond)
	})
	r.s.Spawn(r.ha, "client", func(p *sim.Proc) {
		sock, _ := Open(p, r.da, addrA, 10)
		p.Sleep(5 * time.Millisecond)
		_, echoErr = sock.Echo(p, addrB, []byte("x"), 20*time.Millisecond, 5)
	})
	r.s.Run(0)
	if echoErr != nil {
		t.Fatalf("echo failed despite retries: %v", echoErr)
	}
	if r.net.Dropped == 0 {
		t.Fatal("loss injection inactive")
	}
}

func TestSocketDemultiplexing(t *testing.T) {
	// Two sockets on one host; each receives only its own traffic.
	r := newRig(ethersim.Ether3Mb)
	addrB2 := PortAddr{Net: 1, Host: 2, Socket: 0x300}
	var got1, got2 []byte
	r.s.Spawn(r.hb, "servers", func(p *sim.Proc) {
		s1, _ := Open(p, r.db, addrB, 10)
		s2, _ := Open(p, r.db, addrB2, 10)
		s1.SetTimeout(p, 100*time.Millisecond)
		s2.SetTimeout(p, 100*time.Millisecond)
		if pkt, err := s1.Recv(p); err == nil {
			got1 = pkt.Data
		}
		if pkt, err := s2.Recv(p); err == nil {
			got2 = pkt.Data
		}
	})
	r.s.Spawn(r.ha, "client", func(p *sim.Proc) {
		sock, _ := Open(p, r.da, addrA, 10)
		p.Sleep(5 * time.Millisecond)
		sock.Send(p, &Packet{Type: 1, Dst: addrB2, Data: []byte("to-2")})
		sock.Send(p, &Packet{Type: 1, Dst: addrB, Data: []byte("to-1")})
	})
	r.s.Run(0)
	if string(got1) != "to-1" || string(got2) != "to-2" {
		t.Fatalf("got1=%q got2=%q", got1, got2)
	}
}

func TestChecksummedSocketRejectsCorruption(t *testing.T) {
	// With checksums on, a corrupted Pup is dropped at Recv.
	p := &Packet{Type: 1, Dst: addrB, Src: addrA, Data: []byte("abc"), Checksummed: true}
	wire, _ := p.Marshal()
	wire[HeaderLen] ^= 0xFF
	if _, err := Unmarshal(wire); err != ErrBadChecksum {
		t.Fatalf("err = %v", err)
	}
}

func TestBSPTransfer(t *testing.T) {
	r := newRig(ethersim.Ether3Mb)
	data := make([]byte, 5000)
	for i := range data {
		data[i] = byte(i * 7)
	}
	var received bytes.Buffer
	var sendErr, recvErr error
	r.s.Spawn(r.hb, "recv", func(p *sim.Proc) {
		sock, _ := Open(p, r.db, addrB, 10)
		rcv := NewBSPReceiver(sock, DefaultBSPConfig())
		for {
			seg, err := rcv.Receive(p, 200*time.Millisecond)
			if err == ErrStreamClosed {
				return
			}
			if err != nil {
				recvErr = err
				return
			}
			received.Write(seg)
		}
	})
	r.s.Spawn(r.ha, "send", func(p *sim.Proc) {
		sock, _ := Open(p, r.da, addrA, 10)
		p.Sleep(5 * time.Millisecond)
		snd := NewBSPSender(sock, addrB, DefaultBSPConfig())
		if err := snd.Send(p, data); err != nil {
			sendErr = err
			return
		}
		sendErr = snd.Close(p)
	})
	r.s.Run(0)
	if sendErr != nil || recvErr != nil {
		t.Fatalf("send=%v recv=%v", sendErr, recvErr)
	}
	if !bytes.Equal(received.Bytes(), data) {
		t.Fatalf("data corrupted: got %d bytes want %d", received.Len(), len(data))
	}
}

func TestBSPTransferWithLoss(t *testing.T) {
	r := newRig(ethersim.Ether3Mb)
	r.net.DropEvery = 7
	data := make([]byte, 4000)
	for i := range data {
		data[i] = byte(i)
	}
	var received bytes.Buffer
	var sendErr error
	var retrans int
	r.s.Spawn(r.hb, "recv", func(p *sim.Proc) {
		sock, _ := Open(p, r.db, addrB, 10)
		rcv := NewBSPReceiver(sock, DefaultBSPConfig())
		for {
			seg, err := rcv.Receive(p, 2*time.Second)
			if err != nil {
				return
			}
			received.Write(seg)
		}
	})
	r.s.Spawn(r.ha, "send", func(p *sim.Proc) {
		sock, _ := Open(p, r.da, addrA, 10)
		p.Sleep(5 * time.Millisecond)
		snd := NewBSPSender(sock, addrB, DefaultBSPConfig())
		sendErr = snd.Send(p, data)
		if sendErr == nil {
			snd.Close(p)
		}
		retrans = snd.Retransmissions
	})
	r.s.Run(0)
	if sendErr != nil {
		t.Fatalf("send: %v", sendErr)
	}
	if !bytes.Equal(received.Bytes(), data) {
		t.Fatalf("data corrupted under loss: got %d want %d bytes", received.Len(), len(data))
	}
	if retrans == 0 {
		t.Error("expected retransmissions under loss")
	}
}

func TestBSPSmallSegments(t *testing.T) {
	// Forcing small segments (table 6-6's TCP comparison trick)
	// still delivers correctly, with more packets on the wire.
	r := newRig(ethersim.Ether3Mb)
	cfg := DefaultBSPConfig()
	cfg.SegSize = 100
	data := make([]byte, 1000)
	var got int
	r.s.Spawn(r.hb, "recv", func(p *sim.Proc) {
		sock, _ := Open(p, r.db, addrB, 10)
		rcv := NewBSPReceiver(sock, cfg)
		for {
			seg, err := rcv.Receive(p, 200*time.Millisecond)
			if err != nil {
				return
			}
			got += len(seg)
		}
	})
	r.s.Spawn(r.ha, "send", func(p *sim.Proc) {
		sock, _ := Open(p, r.da, addrA, 10)
		p.Sleep(5 * time.Millisecond)
		snd := NewBSPSender(sock, addrB, cfg)
		if err := snd.Send(p, data); err != nil {
			t.Error(err)
		}
		snd.Close(p)
	})
	r.s.Run(0)
	if got != 1000 {
		t.Fatalf("received %d bytes", got)
	}
	if r.net.FramesOnWire < 20 {
		t.Fatalf("frames = %d, expected at least 10 data + 10 acks", r.net.FramesOnWire)
	}
}

func TestBatchedSocketRecv(t *testing.T) {
	r := newRig(ethersim.Ether3Mb)
	var got int
	var syscallsBatched uint64
	r.s.Spawn(r.hb, "recv", func(p *sim.Proc) {
		sock, _ := Open(p, r.db, addrB, 10)
		sock.Batch = true
		sock.SetTimeout(p, 50*time.Millisecond)
		p.Sleep(30 * time.Millisecond) // let packets accumulate
		before := r.hb.Counters.Syscalls
		for {
			if _, err := sock.Recv(p); err != nil {
				break
			}
			got++
		}
		syscallsBatched = r.hb.Counters.Syscalls - before
	})
	r.s.Spawn(r.ha, "send", func(p *sim.Proc) {
		sock, _ := Open(p, r.da, addrA, 10)
		p.Sleep(5 * time.Millisecond)
		for i := 0; i < 6; i++ {
			sock.Send(p, &Packet{Type: 1, ID: uint32(i), Dst: addrB})
		}
	})
	r.s.Run(0)
	if got != 6 {
		t.Fatalf("received %d", got)
	}
	// One batched read drained all six packets; only the final
	// (timing-out) read adds more syscalls.
	if syscallsBatched > 3 {
		t.Fatalf("batched receive used %d syscalls for 6 packets", syscallsBatched)
	}
}
