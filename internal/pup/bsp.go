package pup

import (
	"errors"
	"time"

	"repro/internal/backoff"
	"repro/internal/pfdev"
	"repro/internal/sim"
)

// This file implements BSP, Pup's Byte Stream Protocol, as a
// user-level sliding-window protocol over Pup datagrams — the protocol
// behind table 6-6's file-transfer comparison against kernel TCP.
//
// Segments ride in TypeBSPData Pups whose ID field carries the
// sequence number; the receiver returns cumulative TypeBSPAck Pups
// whose ID is the next sequence number expected.  A TypeBSPEnd /
// TypeBSPEndOK exchange closes the stream.  Every data Pup is limited
// to MaxData bytes, so a BSP packet never exceeds 568 bytes (§6.4).

// BSPConfig tunes the stream protocol.
type BSPConfig struct {
	// Window is the number of unacknowledged segments in flight.
	Window int
	// RTO is the initial retransmission timeout; consecutive
	// timeouts back off exponentially (deterministic, jitter-free)
	// up to MaxRTO.
	RTO time.Duration
	// MaxRTO caps the backed-off timeout (default 8×RTO).
	MaxRTO time.Duration
	// SegSize caps the data bytes per segment (defaults to
	// MaxData; table 6-6's "forced small packet" variants shrink
	// it).
	SegSize int
	// PerSegmentCPU charges user-mode protocol processing per
	// segment sent or received, modelling the BSP implementation's
	// own work (sequence bookkeeping, buffer management).
	PerSegmentCPU time.Duration
}

// DefaultBSPConfig returns the configuration used by the benchmarks.
// The Stanford BSP moved bulk data at 38 KB/s on a MicroVAX-II (table
// 6-6), about 14 ms of end-to-end cost per 546-byte segment — one
// round trip per segment, i.e. effectively one segment in flight, with
// heavyweight user-mode processing.  Window and PerSegmentCPU are
// calibrated to that; the benches also sweep larger windows.
func DefaultBSPConfig() BSPConfig {
	return BSPConfig{
		Window:        1,
		RTO:           50 * time.Millisecond,
		SegSize:       MaxData,
		PerSegmentCPU: 1500 * time.Microsecond,
	}
}

// BSPSender transmits a byte stream to a remote BSP receiver.
type BSPSender struct {
	sock *Socket
	dst  PortAddr
	cfg  BSPConfig

	nextSeq  uint32 // next sequence number to send
	ackedSeq uint32 // all segments below this are acknowledged

	// Retransmissions counts timeouts; lossless simulations should
	// see zero.
	Retransmissions int
	// Stats accumulates the sender's per-stream accounting.
	Stats BSPStats
}

// BSPStats is the sender-side accounting block.
type BSPStats struct {
	Segments        int           // distinct data segments sent
	Attempts        int           // data transmissions including retransmits
	Timeouts        int           // ack waits that expired
	Retransmissions int           // = Timeouts for go-back-N; kept for symmetry
	MaxRTOReached   time.Duration // largest backed-off timeout actually used
}

// NewBSPSender creates a sender from an open socket to a destination
// port.
func NewBSPSender(sock *Socket, dst PortAddr, cfg BSPConfig) *BSPSender {
	if cfg.Window <= 0 {
		cfg.Window = 4
	}
	if cfg.SegSize <= 0 || cfg.SegSize > MaxData {
		cfg.SegSize = MaxData
	}
	if cfg.RTO <= 0 {
		cfg.RTO = 50 * time.Millisecond
	}
	if cfg.MaxRTO <= 0 {
		cfg.MaxRTO = 8 * cfg.RTO
	}
	return &BSPSender{sock: sock, dst: dst, cfg: cfg}
}

// rto returns the backed-off timeout for the given consecutive-stall
// count and records the high-water mark.
func (s *BSPSender) rto(stalls int) time.Duration {
	d := backoff.Policy{Base: s.cfg.RTO, Cap: s.cfg.MaxRTO}.Delay(stalls)
	if d > s.Stats.MaxRTOReached {
		s.Stats.MaxRTOReached = d
	}
	return d
}

// ErrStreamAborted reports too many consecutive retransmissions.
var ErrStreamAborted = errors.New("pup/bsp: too many retransmissions")

// Send reliably transmits data, blocking until every byte is
// acknowledged.
func (s *BSPSender) Send(p *sim.Proc, data []byte) error {
	segs := segment(data, s.cfg.SegSize)
	base := s.nextSeq
	window := make(map[uint32][]byte, s.cfg.Window)
	next := 0 // next unsent segment index
	stalls := 0

	for s.ackedSeq < base+uint32(len(segs)) {
		// Fill the window.
		for len(window) < s.cfg.Window && next < len(segs) {
			seq := base + uint32(next)
			if err := s.sendSeg(p, TypeBSPData, seq, segs[next]); err != nil {
				return err
			}
			s.Stats.Segments++
			window[seq] = segs[next]
			next++
		}
		// Await an ack, backing off while the stall persists.
		s.sock.SetTimeout(p, s.rto(stalls))
		pkt, err := s.sock.Recv(p)
		if err == pfdev.ErrTimeout {
			// Go-back-N: retransmit everything in flight.
			s.Retransmissions++
			s.Stats.Timeouts++
			s.Stats.Retransmissions++
			stalls++
			if stalls > 20 {
				return ErrStreamAborted
			}
			for seq := s.ackedSeq; seq < base+uint32(next); seq++ {
				if seg, ok := window[seq]; ok {
					if err := s.sendSeg(p, TypeBSPData, seq, seg); err != nil {
						return err
					}
				}
			}
			continue
		}
		if err != nil {
			return err
		}
		if pkt.Type != TypeBSPAck {
			continue
		}
		stalls = 0
		ack := pkt.ID // next expected by receiver
		for seq := s.ackedSeq; seq < ack; seq++ {
			delete(window, seq)
		}
		if ack > s.ackedSeq {
			s.ackedSeq = ack
		}
	}
	s.nextSeq = base + uint32(len(segs))
	return nil
}

// Close performs the End/EndOK handshake, backing off like Send.
// Every data segment was acknowledged before Close runs, so if the
// whole handshake is lost the receiver still has the complete stream;
// exhausting the retries is therefore success, not failure — the
// two-army problem at teardown has no better answer.
func (s *BSPSender) Close(p *sim.Proc) error {
	for try := 0; try < 20; try++ {
		if err := s.sendSeg(p, TypeBSPEnd, s.nextSeq, nil); err != nil {
			return err
		}
		s.sock.SetTimeout(p, s.rto(try))
		pkt, err := s.sock.Recv(p)
		if err == pfdev.ErrTimeout {
			s.Retransmissions++
			s.Stats.Timeouts++
			continue
		}
		if err != nil {
			return err
		}
		if pkt.Type == TypeBSPEndOK {
			return nil
		}
	}
	return nil
}

func (s *BSPSender) sendSeg(p *sim.Proc, typ uint8, seq uint32, data []byte) error {
	if s.cfg.PerSegmentCPU > 0 {
		p.Consume(s.cfg.PerSegmentCPU)
	}
	if typ == TypeBSPData {
		s.Stats.Attempts++
	}
	return s.sock.Send(p, &Packet{Type: typ, ID: seq, Dst: s.dst, Data: data})
}

func segment(data []byte, size int) [][]byte {
	if len(data) == 0 {
		return [][]byte{nil}
	}
	var segs [][]byte
	for len(data) > 0 {
		n := size
		if n > len(data) {
			n = len(data)
		}
		segs = append(segs, data[:n])
		data = data[n:]
	}
	return segs
}

// BSPReceiver accepts a byte stream.
type BSPReceiver struct {
	sock    *Socket
	cfg     BSPConfig
	nextSeq uint32
	// Delivered counts in-order segments returned to the caller;
	// Duplicates counts retransmitted or out-of-order segments that
	// were suppressed (re-acked and dropped) — the receive-side
	// duplicate suppression that keeps delivery exactly-once when
	// the wire duplicates or reorders frames.
	Delivered  int
	Duplicates int
}

// NewBSPReceiver creates a receiver on an open socket.
func NewBSPReceiver(sock *Socket, cfg BSPConfig) *BSPReceiver {
	if cfg.RTO <= 0 {
		cfg.RTO = 50 * time.Millisecond
	}
	return &BSPReceiver{sock: sock, cfg: cfg}
}

// ErrStreamClosed is returned by Receive after the End handshake.
var ErrStreamClosed = errors.New("pup/bsp: stream closed")

// Receive returns the next in-order segment of the stream, or
// ErrStreamClosed when the sender finishes.  idle bounds how long to
// wait for traffic.
func (r *BSPReceiver) Receive(p *sim.Proc, idle time.Duration) ([]byte, error) {
	r.sock.SetTimeout(p, idle)
	for {
		pkt, err := r.sock.Recv(p)
		if err != nil {
			return nil, err
		}
		if r.cfg.PerSegmentCPU > 0 {
			p.Consume(r.cfg.PerSegmentCPU)
		}
		switch pkt.Type {
		case TypeBSPData:
			if pkt.ID == r.nextSeq {
				r.nextSeq++
				r.Delivered++
				r.ack(p, pkt.Src)
				return pkt.Data, nil
			}
			// Duplicate or out-of-order: re-ack and drop.
			r.Duplicates++
			r.ack(p, pkt.Src)
		case TypeBSPEnd:
			r.sock.Send(p, &Packet{Type: TypeBSPEndOK, ID: pkt.ID, Dst: pkt.Src})
			return nil, ErrStreamClosed
		}
	}
}

func (r *BSPReceiver) ack(p *sim.Proc, to PortAddr) {
	r.sock.Send(p, &Packet{Type: TypeBSPAck, ID: r.nextSeq, Dst: to})
}
