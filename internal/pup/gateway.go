package pup

import (
	"time"

	"repro/internal/ethersim"
	"repro/internal/filter"
	"repro/internal/pfdev"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Pup is "an internetwork architecture" (Boggs et al.): Pups route
// between networks through gateways, identified by the Net byte of
// each port address.  In the spirit of §5.1 — everything above the
// data link implemented at user level — the gateway here is an
// ordinary process with one packet-filter port per attached network.
// It accepts Pups whose destination network differs from the network
// they arrived on, decrements the hop budget, and re-encapsulates them
// on the destination network.

// MaxHops bounds a Pup's gateway traversals; Pups that exceed it are
// dropped, which breaks routing loops.
const MaxHops = 15

// GatewayPort is one of the gateway's attachments: a packet-filter
// device on some network, with that network's Pup number and the
// link-layer addresses of hosts reachable on it (host number -> link
// address; Pup host bytes usually equal link addresses on an Ethernet,
// so a nil map means the identity).
type GatewayPort struct {
	Dev   *pfdev.Device
	Net   uint8
	Hosts map[uint8]ethersim.Addr
}

// Gateway forwards Pups between two or more networks.
type Gateway struct {
	ports []GatewayPort
	// Forwarded, DroppedHops and DroppedNoRoute count routing
	// outcomes.
	Forwarded, DroppedHops, DroppedNoRoute uint64
	// Recoveries counts route recoveries: the gateway's ports died
	// with a crashed kernel and were re-opened with filters re-bound.
	Recoveries uint64
}

// NewGateway creates a gateway over the given attachments.
func NewGateway(ports ...GatewayPort) *Gateway {
	return &Gateway{ports: ports}
}

// transitFilter accepts Pups that need forwarding: Pup packets whose
// destination network is NOT this port's own network.  The whole test
// runs in the kernel — the gateway process is only woken for packets
// it will actually forward (§2's argument applied to routing).
func transitFilter(link ethersim.LinkType, localNet uint8) filter.Filter {
	hw := link.HeaderWords()
	etherType := ethersim.EtherTypePup3Mb
	if link == ethersim.Ether10Mb {
		etherType = ethersim.EtherTypePup
	}
	// Pup DstNet is the high byte of Pup word 4 (bytes 8-9).
	prog := filter.NewBuilder().
		CANDWordEQ(link.TypeWord(), etherType). // must be a Pup
		PushWord(hw+4).PushFF00().Op(filter.AND).
		LitOp(filter.NEQ, uint16(localNet)<<8). // DstNet != ours
		MustProgram()
	return filter.Filter{Priority: 50, Program: prog}
}

// openPorts opens one transit port per attachment and binds its
// filter — called at startup and again for route recovery after the
// gateway's kernel crashes (which closes every port under it).
func (g *Gateway) openPorts(p *sim.Proc) ([]*pfdev.Port, error) {
	ports := make([]*pfdev.Port, len(g.ports))
	for i, gp := range g.ports {
		port := gp.Dev.Open(p)
		link := gp.Dev.NIC().Network().Link()
		if err := port.SetFilter(p, transitFilter(link, gp.Net)); err != nil {
			return nil, err
		}
		port.SetQueueLimit(p, 64)
		port.SetTimeout(p, -1) // non-blocking; select drives the loop
		ports[i] = port
	}
	return ports, nil
}

// Run forwards traffic until all attachments are idle for the given
// duration.  One process serves all attachments round-robin via
// select, like a small routing daemon.  A crash of the gateway's host
// closes its ports; Run then re-opens them and re-binds the transit
// filters, restoring the route (in-flight Pups are lost and left to
// end-to-end retransmission).
func (g *Gateway) Run(p *sim.Proc, idle time.Duration) error {
	ports, err := g.openPorts(p)
	if err != nil {
		return err
	}
	defer func() {
		for _, port := range ports {
			port.Close(p)
		}
	}()

	for {
		i := pfdev.Select(p, ports, idle)
		if i < 0 {
			return nil
		}
		raw, err := ports[i].Read(p)
		if err == pfdev.ErrClosed {
			// The kernel rebooted under us: every attachment's
			// port is gone.  Re-open and re-bind them all.
			fresh, rerr := g.openPorts(p)
			if rerr != nil {
				return rerr
			}
			copy(ports, fresh)
			g.Recoveries++
			continue
		}
		if err != nil {
			continue
		}
		g.forward(p, ports, i, raw)
	}
}

// forward routes one frame that arrived on attachment in.  Routing
// failures terminate a born-dead child of the delivered packet's span
// (DropHops, DropNoRoute); a successful forward links the re-encoded
// frame's new origin span to the inbound one, so a Pup's provenance
// chains across gateways.
func (g *Gateway) forward(p *sim.Proc, ports []*pfdev.Port, in int, raw pfdev.Packet) {
	inLink := g.ports[in].Dev.NIC().Network().Link()
	host := g.ports[in].Dev.Host()
	tr := host.Sim().Tracer()
	_, _, _, payload, err := inLink.Decode(raw.Data)
	if err != nil {
		tr.SpanUserDrop(raw.Span(), host.Clock().Now(), host.Name(), trace.DropChecksum)
		return
	}
	pkt, err := Unmarshal(payload)
	if err != nil {
		tr.SpanUserDrop(raw.Span(), host.Clock().Now(), host.Name(), trace.DropChecksum)
		return
	}
	if pkt.HopCount >= MaxHops {
		g.DroppedHops++
		tr.SpanUserDrop(raw.Span(), host.Clock().Now(), host.Name(), trace.DropHops)
		return
	}
	pkt.HopCount++

	out := -1
	for i, gp := range g.ports {
		if i != in && gp.Net == pkt.Dst.Net {
			out = i
			break
		}
	}
	if out < 0 {
		g.DroppedNoRoute++
		tr.SpanUserDrop(raw.Span(), host.Clock().Now(), host.Name(), trace.DropNoRoute)
		return
	}

	gp := g.ports[out]
	outLink := gp.Dev.NIC().Network().Link()
	dstHW := ethersim.Addr(pkt.Dst.Host)
	if gp.Hosts != nil {
		hw, ok := gp.Hosts[pkt.Dst.Host]
		if !ok {
			g.DroppedNoRoute++
			tr.SpanUserDrop(raw.Span(), host.Clock().Now(), host.Name(), trace.DropNoRoute)
			return
		}
		dstHW = hw
	}
	etherType := ethersim.EtherTypePup3Mb
	if outLink == ethersim.Ether10Mb {
		etherType = ethersim.EtherTypePup
	}
	wire, err := pkt.Marshal()
	if err != nil {
		return
	}
	outFrame := outLink.Encode(dstHW, gp.Dev.NIC().Addr(), etherType, wire)
	tr.SpanNextParent(raw.Span())
	if ports[out].Write(p, outFrame) == nil {
		g.Forwarded++
	}
}
