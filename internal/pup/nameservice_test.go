package pup

import (
	"testing"
	"time"

	"repro/internal/ethersim"
	"repro/internal/sim"
)

func TestNameLookup(t *testing.T) {
	for _, link := range []ethersim.LinkType{ethersim.Ether3Mb, ethersim.Ether10Mb} {
		r := newRig(link)
		printer := PortAddr{Net: 1, Host: 2, Socket: 0x777}
		ns := NewNameServer(r.db, PortAddr{Net: 1, Host: 2})
		if err := ns.Register("printer", printer); err != nil {
			t.Fatal(err)
		}
		r.s.Spawn(r.hb, "named", func(p *sim.Proc) { ns.Run(p, 150*time.Millisecond) })

		var got PortAddr
		var lookupErr, missErr error
		r.s.Spawn(r.ha, "client", func(p *sim.Proc) {
			sock, err := Open(p, r.da, addrA, 10)
			if err != nil {
				t.Error(err)
				return
			}
			p.Sleep(5 * time.Millisecond)
			got, lookupErr = LookupName(p, sock, "printer", 30*time.Millisecond, 3)
			_, missErr = LookupName(p, sock, "toaster", 30*time.Millisecond, 1)
		})
		r.s.Run(0)
		if lookupErr != nil {
			t.Fatalf("%v: lookup: %v", link, lookupErr)
		}
		if got != printer {
			t.Fatalf("%v: got %v, want %v", link, got, printer)
		}
		if missErr != ErrNameUnknown {
			t.Fatalf("%v: missing name err = %v", link, missErr)
		}
		if ns.Served != 1 || ns.Unknown == 0 {
			t.Fatalf("%v: served=%d unknown=%d", link, ns.Served, ns.Unknown)
		}
	}
}

func TestNameLookupRetriesOnLoss(t *testing.T) {
	r := newRig(ethersim.Ether3Mb)
	r.net.DropFn = func(i uint64, _ []byte) bool { return i == 1 }
	ns := NewNameServer(r.db, PortAddr{Net: 1, Host: 2})
	ns.Register("fileserver", PortAddr{Net: 1, Host: 2, Socket: 9})
	r.s.Spawn(r.hb, "named", func(p *sim.Proc) { ns.Run(p, 200*time.Millisecond) })

	var err error
	r.s.Spawn(r.ha, "client", func(p *sim.Proc) {
		sock, _ := Open(p, r.da, addrA, 10)
		p.Sleep(5 * time.Millisecond)
		_, err = LookupName(p, sock, "fileserver", 20*time.Millisecond, 4)
	})
	r.s.Run(0)
	if err != nil {
		t.Fatalf("lookup failed despite retries: %v", err)
	}
}

func TestNameLookupNoServer(t *testing.T) {
	r := newRig(ethersim.Ether3Mb)
	var err error
	r.s.Spawn(r.ha, "client", func(p *sim.Proc) {
		sock, _ := Open(p, r.da, addrA, 10)
		_, err = LookupName(p, sock, "anyone", 10*time.Millisecond, 1)
	})
	r.s.Run(0)
	if err != ErrNameTimeout {
		t.Fatalf("err = %v, want ErrNameTimeout", err)
	}
}

func TestNameTooLong(t *testing.T) {
	long := make([]byte, MaxNameLen+1)
	ns := NewNameServer(nil, PortAddr{})
	if err := ns.Register(string(long), PortAddr{}); err != ErrNameTooLong {
		t.Fatalf("register: %v", err)
	}
}

func TestNameIsRoundTrip(t *testing.T) {
	addr := PortAddr{Net: 3, Host: 9, Socket: 0xDEADBEEF}
	name, got, ok := unmarshalNameIs(marshalNameIs("laser", addr))
	if !ok || name != "laser" || got != addr {
		t.Fatalf("round trip: %v %v %v", name, got, ok)
	}
	if _, _, ok := unmarshalNameIs([]byte{1, 2}); ok {
		t.Fatal("short payload accepted")
	}
}
