package pup

import (
	"time"

	"repro/internal/ethersim"
	"repro/internal/filter"
	"repro/internal/pfdev"
	"repro/internal/shm"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Socket is a user-level Pup endpoint bound to a packet-filter port.
// Opening one binds the figure 3-9 style filter — destination socket
// tested first with short-circuit operators, then the Ethernet type —
// so "two processes implementing different communication streams under
// the same protocol ... specify slightly different predicates" (§3).
type Socket struct {
	Port  *pfdev.Port
	Local PortAddr
	dev   *pfdev.Device
	link  ethersim.LinkType
	// pending holds packets read in a batch but not yet consumed.
	pending []*Packet
	// Checksummed selects whether outgoing Pups carry checksums.
	Checksummed bool
	// Batch selects batched port reads (tables 6-4/6-9).
	Batch bool
	// Gateway, when non-zero, is the link address of the Pup
	// gateway used for destinations on other networks (Dst.Net !=
	// Local.Net).  On-net destinations always go direct.
	Gateway ethersim.Addr
	// Rebinds counts successful Reopen calls — recoveries from a
	// port lost to a host crash.
	Rebinds int

	priority uint8 // filter priority, kept for Reopen

	// ringSeg/ringSlots, when set by EnableRing, put the socket on
	// the zero-copy path: receives reap the port ring in batches and
	// sends go through the transmit arena.
	ringSeg   *shm.Segment
	ringSlots int
}

// SocketFilter builds the demultiplexing filter for a destination
// socket on the given link.  On the 3 Mb net it is exactly the paper's
// figure 3-9 (with the socket constant substituted); on the 10 Mb net,
// the socket words shift with the longer data-link header.
func SocketFilter(link ethersim.LinkType, priority uint8, socket uint32) filter.Filter {
	hw := link.HeaderWords()
	etherType := ethersim.EtherTypePup3Mb
	if link == ethersim.Ether10Mb {
		etherType = ethersim.EtherTypePup
	}
	// Word offsets of the Pup destination socket: Pup header starts
	// at word hw; DstSocket is Pup bytes 10..13 = words hw+5, hw+6.
	prog := filter.NewBuilder().
		CANDWordEQ(hw+6, uint16(socket)).     // low word: most selective
		CANDWordEQ(hw+5, uint16(socket>>16)). // high word
		WordEQ(link.TypeWord(), etherType).   // packet type == Pup
		MustProgram()
	return filter.Filter{Priority: priority, Program: prog}
}

// Open binds a Pup socket on dev.  Process context.
func Open(p *sim.Proc, dev *pfdev.Device, local PortAddr, priority uint8) (*Socket, error) {
	port := dev.Open(p)
	link := dev.NIC().Network().Link()
	if err := port.SetFilter(p, SocketFilter(link, priority, local.Socket)); err != nil {
		return nil, err
	}
	return &Socket{Port: port, Local: local, dev: dev, link: link, priority: priority}, nil
}

// Reopen re-opens the socket's packet-filter port and re-binds its
// demultiplexing filter — the recovery step after a host crash closes
// every port on the device.  Pending batched packets are discarded
// (they died with the kernel); the caller must re-set its timeout.
// A ring enabled with EnableRing is re-mapped onto the new port: the
// segment is user memory and survived the crash, only the kernel-side
// attachment was lost.
func (s *Socket) Reopen(p *sim.Proc) error {
	port := s.dev.Open(p)
	if err := port.SetFilter(p, SocketFilter(s.link, s.priority, s.Local.Socket)); err != nil {
		port.Close(p)
		return err
	}
	s.Port = port
	s.pending = nil
	s.Rebinds++
	if s.ringSeg != nil {
		if err := port.MapRing(p, s.ringSeg, s.ringSlots); err != nil {
			s.ringSeg, s.ringSlots = nil, 0 // fall back to the copying path
		}
	}
	return nil
}

// EnableRing maps a shared-memory segment onto the socket's port and
// switches the socket to the zero-copy delivery path: Recv reaps the
// receive ring in batches, Send stages frames in the transmit arena.
// One mapping charge here covers the socket's lifetime.
func (s *Socket) EnableRing(p *sim.Proc, slots int) error {
	reg := shm.NewRegistry(s.dev.Host())
	seg, err := reg.Map(p, "pup-ring", s.Port.RingLayoutSize(slots))
	if err != nil {
		return err
	}
	if err := s.Port.MapRing(p, seg, slots); err != nil {
		seg.Unmap(p)
		return err
	}
	s.ringSeg, s.ringSlots = seg, slots
	return nil
}

// etherType returns the Pup type code for the socket's link.
func (s *Socket) etherType() uint16 {
	if s.link == ethersim.Ether10Mb {
		return ethersim.EtherTypePup
	}
	return ethersim.EtherTypePup3Mb
}

// Send transmits one Pup to dst.  dstHostAddr is the data-link address
// of the destination host (Pup's routing tables are out of scope; on
// one Ethernet segment host numbers map directly to link addresses).
func (s *Socket) Send(p *sim.Proc, pkt *Packet) error {
	pkt.Src = s.Local
	pkt.Checksummed = s.Checksummed
	payload, err := pkt.Marshal()
	if err != nil {
		return err
	}
	// Route: on-net Pups go straight to the destination host;
	// internetwork Pups go to the gateway (pup.Gateway forwards
	// them, decrementing the hop budget).  Pup host 0 is the
	// broadcast convention: "any host on the destination network".
	linkDst := ethersim.Addr(pkt.Dst.Host)
	if pkt.Dst.Host == 0 {
		linkDst = s.link.BroadcastAddr()
	}
	if pkt.Dst.Net != s.Local.Net && s.Gateway != 0 {
		linkDst = s.Gateway
	}
	frame := s.link.Encode(linkDst, s.dev.NIC().Addr(), s.etherType(), payload)
	if s.ringSeg != nil && s.Port.RingMapped() {
		return s.Port.WriteRing(p, [][]byte{frame})
	}
	return s.Port.Write(p, frame)
}

// SetTimeout sets the receive timeout (0 blocks, negative is
// non-blocking).
func (s *Socket) SetTimeout(p *sim.Proc, d time.Duration) {
	s.Port.SetTimeout(p, d)
}

// Recv returns the next Pup addressed to this socket.  With Batch set,
// one system call drains the whole port queue and subsequent calls
// consume the remainder without kernel entries (figure 3-5).
func (s *Socket) Recv(p *sim.Proc) (*Packet, error) {
	for {
		if len(s.pending) > 0 {
			pkt := s.pending[0]
			s.pending = s.pending[1:]
			return pkt, nil
		}
		if s.ringSeg != nil && s.Port.RingMapped() {
			batch, err := s.Port.ReapBatch(p)
			if err != nil {
				return nil, err
			}
			for _, raw := range batch {
				if pkt := s.decode(raw); pkt != nil {
					s.pending = append(s.pending, pkt)
				}
			}
			continue
		}
		if s.Batch {
			batch, err := s.Port.ReadBatch(p)
			if err != nil {
				return nil, err
			}
			for _, raw := range batch {
				if pkt := s.decode(raw); pkt != nil {
					s.pending = append(s.pending, pkt)
				}
			}
			continue
		}
		raw, err := s.Port.Read(p)
		if err != nil {
			return nil, err
		}
		if pkt := s.decode(raw); pkt != nil {
			return pkt, nil
		}
	}
}

// decode strips the data-link header and parses the Pup; malformed
// packets are dropped silently, as a user-level protocol must ("the
// user must discover transmission failure through lack of response").
// The silent drop still leaves a provenance trail: a born-dead child
// span typed DropChecksum hangs off the delivered packet's span.
func (s *Socket) decode(raw pfdev.Packet) *Packet {
	_, _, _, payload, err := s.link.Decode(raw.Data)
	if err == nil {
		if pkt, perr := Unmarshal(payload); perr == nil {
			return pkt
		}
	}
	h := s.dev.Host()
	h.Sim().Tracer().SpanUserDrop(raw.Span(), h.Clock().Now(), h.Name(), trace.DropChecksum)
	return nil
}

// Close releases the underlying port.
func (s *Socket) Close(p *sim.Proc) { s.Port.Close(p) }

// --- Echo protocol (§5.1's request-response workload) ---------------------

// Echo sends an EchoMe Pup carrying data and waits for the matching
// ImAnEcho, retrying on timeout; it returns the round-trip time.  This
// is the "write; read with timeout; retry if necessary" paradigm of
// §3.
func (s *Socket) Echo(p *sim.Proc, dst PortAddr, data []byte, timeout time.Duration, retries int) (time.Duration, error) {
	start := p.Now()
	id := uint32(start/time.Microsecond) & 0xFFFFFF
	s.SetTimeout(p, timeout)
	for try := 0; try <= retries; try++ {
		err := s.Send(p, &Packet{Type: TypeEchoMe, ID: id, Dst: dst, Data: data})
		if err != nil {
			return 0, err
		}
		for {
			pkt, err := s.Recv(p)
			if err == pfdev.ErrTimeout {
				break // retransmit
			}
			if err != nil {
				return 0, err
			}
			if pkt.Type == TypeImAnEcho && pkt.ID == id {
				return p.Now() - start, nil
			}
		}
	}
	return 0, pfdev.ErrTimeout
}

// EchoServer answers EchoMe Pups until the timeout expires with no
// traffic; it returns the number of echoes served.  If the port is
// closed under it (a host crash), the server re-binds its filter and
// keeps serving — §5.1's long-running services must survive their
// machine rebooting.
func (s *Socket) EchoServer(p *sim.Proc, idleTimeout time.Duration) int {
	served := 0
	s.SetTimeout(p, idleTimeout)
	for {
		pkt, err := s.Recv(p)
		if err == pfdev.ErrClosed {
			if s.Reopen(p) != nil {
				return served
			}
			s.SetTimeout(p, idleTimeout)
			continue
		}
		if err != nil {
			return served
		}
		if pkt.Type != TypeEchoMe {
			continue
		}
		reply := &Packet{Type: TypeImAnEcho, ID: pkt.ID, Dst: pkt.Src, Data: pkt.Data}
		if s.Send(p, reply) == nil {
			served++
		}
	}
}
