// Package pup implements the Pup internetwork datagram protocol of
// Boggs, Shoch, Taft & Metcalfe ("Pup: An internetwork architecture",
// 1980) as a user-level protocol over the packet filter, the way the
// Stanford Unix implementation of §5.1 did: "almost all of the Pup
// protocols were implemented for Unix, based entirely on the packet
// filter."
//
// The packet format follows the paper's figure 3-7: a Pup carried on
// the 3 Mb Experimental Ethernet is the 4-byte data-link header
// followed by a 20-byte Pup header (length, hop count, type, a 32-bit
// identifier, destination and source ports), the data, and a software
// checksum word.  The byte-stream protocol (BSP) in bsp.go layers a
// sliding window over these datagrams.
package pup

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Header sizes and limits.  "Pup (hence BSP) allows a maximum packet
// size of 568 bytes" (§6.4): 20 bytes of header + 546 of data + the
// 2-byte checksum.
const (
	HeaderLen   = 20
	ChecksumLen = 2
	MaxData     = 546
	MaxPup      = HeaderLen + MaxData + ChecksumLen // 568
)

// NoChecksum in the checksum field means the checksum was not
// computed, which the paper's measured implementations exploit ("note
// that TCP checksums all data, whereas these implementations of VMTP
// do not").
const NoChecksum = 0xFFFF

// Pup types used in this repository.  EchoMe/ImAnEcho are the Pup echo
// protocol; the BSP types are private to bsp.go's stream protocol.
const (
	TypeEchoMe   uint8 = 1
	TypeImAnEcho uint8 = 2
	TypeBSPData  uint8 = 16
	TypeBSPAck   uint8 = 17
	TypeBSPEnd   uint8 = 18
	TypeBSPEndOK uint8 = 19
)

// PortAddr is a Pup port: network, host, and a 32-bit socket.
type PortAddr struct {
	Net    uint8
	Host   uint8
	Socket uint32
}

// String formats the address in Pup's conventional net#host#socket
// form.
func (a PortAddr) String() string {
	return fmt.Sprintf("%d#%d#%d", a.Net, a.Host, a.Socket)
}

// Packet is one Pup datagram.
type Packet struct {
	HopCount uint8
	Type     uint8
	ID       uint32
	Dst      PortAddr
	Src      PortAddr
	Data     []byte
	// Checksummed selects whether Marshal computes the trailing
	// software checksum or stores NoChecksum.
	Checksummed bool
}

// Errors returned by Unmarshal.
var (
	ErrTooShort    = errors.New("pup: packet shorter than header")
	ErrTooLong     = errors.New("pup: data exceeds MaxData")
	ErrBadLength   = errors.New("pup: length field inconsistent")
	ErrBadChecksum = errors.New("pup: checksum mismatch")
)

// Marshal encodes the Pup into wire format (header, data, checksum).
func (p *Packet) Marshal() ([]byte, error) {
	if len(p.Data) > MaxData {
		return nil, ErrTooLong
	}
	total := HeaderLen + len(p.Data) + ChecksumLen
	buf := make([]byte, total)
	binary.BigEndian.PutUint16(buf[0:], uint16(total))
	buf[2] = p.HopCount
	buf[3] = p.Type
	binary.BigEndian.PutUint32(buf[4:], p.ID)
	buf[8] = p.Dst.Net
	buf[9] = p.Dst.Host
	binary.BigEndian.PutUint32(buf[10:], p.Dst.Socket)
	buf[14] = p.Src.Net
	buf[15] = p.Src.Host
	binary.BigEndian.PutUint32(buf[16:], p.Src.Socket)
	copy(buf[HeaderLen:], p.Data)
	sum := uint16(NoChecksum)
	if p.Checksummed {
		sum = Checksum(buf[:total-ChecksumLen])
	}
	binary.BigEndian.PutUint16(buf[total-ChecksumLen:], sum)
	return buf, nil
}

// Unmarshal decodes a Pup from wire format, verifying the length field
// and, when present, the checksum.
func Unmarshal(b []byte) (*Packet, error) {
	if len(b) < HeaderLen+ChecksumLen {
		return nil, ErrTooShort
	}
	total := int(binary.BigEndian.Uint16(b[0:]))
	if total < HeaderLen+ChecksumLen || total > len(b) || total > MaxPup {
		return nil, ErrBadLength
	}
	p := &Packet{
		HopCount: b[2],
		Type:     b[3],
		ID:       binary.BigEndian.Uint32(b[4:]),
		Dst: PortAddr{
			Net: b[8], Host: b[9],
			Socket: binary.BigEndian.Uint32(b[10:]),
		},
		Src: PortAddr{
			Net: b[14], Host: b[15],
			Socket: binary.BigEndian.Uint32(b[16:]),
		},
		Data: append([]byte(nil), b[HeaderLen:total-ChecksumLen]...),
	}
	sum := binary.BigEndian.Uint16(b[total-ChecksumLen:])
	if sum != NoChecksum {
		p.Checksummed = true
		if sum != Checksum(b[:total-ChecksumLen]) {
			return nil, ErrBadChecksum
		}
	}
	return p, nil
}

// Checksum is the Pup software checksum: ones-complement addition of
// 16-bit words with a left rotate after each add.  Odd trailing bytes
// are zero-padded.
func Checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i < len(b); i += 2 {
		var w uint32
		if i+1 < len(b) {
			w = uint32(binary.BigEndian.Uint16(b[i:]))
		} else {
			w = uint32(b[i]) << 8
		}
		sum += w
		if sum > 0xFFFF {
			sum = (sum & 0xFFFF) + 1 // end-around carry
		}
		// Rotate left by one within 16 bits.
		sum = ((sum << 1) & 0xFFFF) | (sum >> 15)
	}
	if sum == NoChecksum {
		sum = 0
	}
	return uint16(sum)
}
