package pup

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/backoff"
	"repro/internal/pfdev"
	"repro/internal/sim"
)

// EFTP is Pup's Easy File Transfer Protocol: the deliberately minimal
// stop-and-wait transfer used by Alto boot servers and printers — one
// data block outstanding, each acknowledged by block number, with an
// End block closing the transfer and Abort packets reporting failure.
// §5.1's "variety of applications using both datagram
// (request-response) and stream transport protocols" ran protocols of
// exactly this shape over the packet filter.
//
// Pup types (the classic assignments):
const (
	TypeEFTPData  uint8 = 24
	TypeEFTPAck   uint8 = 25
	TypeEFTPEnd   uint8 = 26
	TypeEFTPAbort uint8 = 27
)

// EFTPConfig tunes the protocol.
type EFTPConfig struct {
	// BlockSize caps data bytes per block (default MaxData).
	BlockSize int
	// RTO is the initial per-block retransmission timeout;
	// consecutive timeouts on the same block back off exponentially
	// up to MaxRTO.
	RTO time.Duration
	// MaxRTO caps the backed-off timeout (default 8×RTO).
	MaxRTO time.Duration
	// Retries bounds retransmissions of one block before aborting.
	Retries int
	// Dally is how long the receiver lingers after acknowledging the
	// End block, re-acking retransmitted Ends whose acks were lost
	// (default 2×MaxRTO — longer than the sender's largest
	// retransmission gap).  Without it the final ack's loss strands
	// the sender: the two-army problem at teardown.
	Dally time.Duration
	// PerBlockCPU models the user-mode processing per block.
	PerBlockCPU time.Duration
	// Stats, when non-nil, accumulates sender-side accounting.
	Stats *EFTPStats
}

// EFTPStats is the sender-side accounting block.
type EFTPStats struct {
	Blocks          int // distinct blocks sent (including the End)
	Attempts        int // block transmissions including retransmits
	Retransmissions int // timeouts that forced a retransmit
}

// DefaultEFTPConfig returns the configuration used in examples and
// tests.
func DefaultEFTPConfig() EFTPConfig {
	return EFTPConfig{
		BlockSize:   MaxData,
		RTO:         40 * time.Millisecond,
		Retries:     8,
		PerBlockCPU: 800 * time.Microsecond,
	}
}

func (c *EFTPConfig) sanitize() {
	if c.BlockSize <= 0 || c.BlockSize > MaxData {
		c.BlockSize = MaxData
	}
	if c.RTO <= 0 {
		c.RTO = 40 * time.Millisecond
	}
	if c.MaxRTO <= 0 {
		c.MaxRTO = 8 * c.RTO
	}
	if c.Retries <= 0 {
		c.Retries = 8
	}
	if c.Dally <= 0 {
		c.Dally = 2 * c.MaxRTO
	}
}

// EFTP errors.
var (
	ErrEFTPTimeout = errors.New("pup/eftp: transfer timed out")
	ErrEFTPAborted = errors.New("pup/eftp: transfer aborted by peer")
)

// EFTPAbortError carries the peer's abort code and message.
type EFTPAbortError struct {
	Code uint32
	Msg  string
}

func (e *EFTPAbortError) Error() string {
	return fmt.Sprintf("pup/eftp: aborted by peer: code %d: %s", e.Code, e.Msg)
}

func (e *EFTPAbortError) Unwrap() error { return ErrEFTPAborted }

// EFTPSend transfers data to dst over sock, block by block.  It
// returns the number of retransmissions performed.
func EFTPSend(p *sim.Proc, sock *Socket, dst PortAddr, data []byte, cfg EFTPConfig) (int, error) {
	cfg.sanitize()
	retrans := 0
	blocks := segment(data, cfg.BlockSize)
	pol := backoff.Policy{Base: cfg.RTO, Cap: cfg.MaxRTO}

	xmit := func(seq uint32, typ uint8, blk []byte) error {
		if cfg.PerBlockCPU > 0 {
			p.Consume(cfg.PerBlockCPU)
		}
		if cfg.Stats != nil {
			cfg.Stats.Attempts++
		}
		return sock.Send(p, &Packet{Type: typ, ID: seq, Dst: dst, Data: blk})
	}
	// await waits for the ack of seq, retransmitting with exponential
	// backoff while the same block keeps timing out.  Only timeouts
	// consume the retry budget: a duplicated wire makes the receiver
	// re-ack earlier blocks, and those stale acks must not starve the
	// block actually in flight.
	await := func(seq uint32, typ uint8, blk []byte) error {
		try := 0
		for try <= cfg.Retries {
			sock.SetTimeout(p, pol.Delay(try))
			pkt, err := sock.Recv(p)
			if err == pfdev.ErrTimeout {
				try++
				if try > cfg.Retries {
					break
				}
				retrans++
				if cfg.Stats != nil {
					cfg.Stats.Retransmissions++
				}
				if err := xmit(seq, typ, blk); err != nil {
					return err
				}
				continue
			}
			if err != nil {
				return err
			}
			switch pkt.Type {
			case TypeEFTPAck:
				if pkt.ID == seq {
					return nil
				}
				// A stale ack for an earlier block: ignore.
			case TypeEFTPAbort:
				return &EFTPAbortError{Code: pkt.ID, Msg: string(pkt.Data)}
			}
		}
		return ErrEFTPTimeout
	}

	for i, blk := range blocks {
		seq := uint32(i)
		if cfg.Stats != nil {
			cfg.Stats.Blocks++
		}
		if err := xmit(seq, TypeEFTPData, blk); err != nil {
			return retrans, err
		}
		if err := await(seq, TypeEFTPData, blk); err != nil {
			return retrans, err
		}
	}
	endSeq := uint32(len(blocks))
	if cfg.Stats != nil {
		cfg.Stats.Blocks++
	}
	if err := xmit(endSeq, TypeEFTPEnd, nil); err != nil {
		return retrans, err
	}
	if err := await(endSeq, TypeEFTPEnd, nil); err != nil {
		// Every data block was acknowledged, so the receiver has the
		// whole file; only the End handshake is in doubt.  The
		// receiver dallies to re-ack retransmitted Ends, but if every
		// exchange in the dally window was lost the sender must
		// assume success rather than fail a completed transfer.
		if err == ErrEFTPTimeout {
			return retrans, nil
		}
		return retrans, err
	}
	return retrans, nil
}

// EFTPReceive accepts one transfer on sock, returning the reassembled
// data.  idle bounds the wait for the first block and between blocks.
// Duplicate blocks (from lost acks) are re-acknowledged and discarded.
func EFTPReceive(p *sim.Proc, sock *Socket, idle time.Duration, cfg EFTPConfig) ([]byte, error) {
	cfg.sanitize()
	sock.SetTimeout(p, idle)
	var out []byte
	next := uint32(0)

	ack := func(to PortAddr, seq uint32) error {
		if cfg.PerBlockCPU > 0 {
			p.Consume(cfg.PerBlockCPU)
		}
		return sock.Send(p, &Packet{Type: TypeEFTPAck, ID: seq, Dst: to})
	}

	for {
		pkt, err := sock.Recv(p)
		if err != nil {
			return out, err
		}
		switch pkt.Type {
		case TypeEFTPData:
			switch {
			case pkt.ID == next:
				out = append(out, pkt.Data...)
				if err := ack(pkt.Src, next); err != nil {
					return out, err
				}
				next++
			case pkt.ID < next:
				// Our ack was lost; re-ack the duplicate.
				if err := ack(pkt.Src, pkt.ID); err != nil {
					return out, err
				}
			default:
				// A future block under stop-and-wait means the
				// sender is broken; abort.
				sock.Send(p, &Packet{Type: TypeEFTPAbort, ID: 1,
					Dst: pkt.Src, Data: []byte("block out of order")})
				return out, ErrEFTPAborted
			}
		case TypeEFTPEnd:
			if pkt.ID == next {
				if err := ack(pkt.Src, next); err != nil {
					return out, err
				}
				dally(p, sock, ack, next, cfg.Dally)
				return out, nil
			}
			ack(pkt.Src, pkt.ID) // stale end retransmission
		case TypeEFTPAbort:
			return out, &EFTPAbortError{Code: pkt.ID, Msg: string(pkt.Data)}
		}
	}
}

// dally keeps the receiver alive briefly after acknowledging End,
// re-acking retransmitted Ends (and stale data) whose acks were lost.
// Each retransmission restarts the window, so the receiver outlives
// any run of losses the sender is still retrying through.
func dally(p *sim.Proc, sock *Socket, ack func(PortAddr, uint32) error, endSeq uint32, window time.Duration) {
	sock.SetTimeout(p, window)
	for {
		pkt, err := sock.Recv(p)
		if err != nil {
			return
		}
		if pkt.Type == TypeEFTPEnd || pkt.Type == TypeEFTPData {
			if ack(pkt.Src, pkt.ID) != nil {
				return
			}
		}
	}
}

// EFTPAbort tells the peer to stop an in-progress transfer.
func EFTPAbort(p *sim.Proc, sock *Socket, dst PortAddr, code uint32, msg string) error {
	return sock.Send(p, &Packet{Type: TypeEFTPAbort, ID: code, Dst: dst, Data: []byte(msg)})
}
