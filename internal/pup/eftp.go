package pup

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/pfdev"
	"repro/internal/sim"
)

// EFTP is Pup's Easy File Transfer Protocol: the deliberately minimal
// stop-and-wait transfer used by Alto boot servers and printers — one
// data block outstanding, each acknowledged by block number, with an
// End block closing the transfer and Abort packets reporting failure.
// §5.1's "variety of applications using both datagram
// (request-response) and stream transport protocols" ran protocols of
// exactly this shape over the packet filter.
//
// Pup types (the classic assignments):
const (
	TypeEFTPData  uint8 = 24
	TypeEFTPAck   uint8 = 25
	TypeEFTPEnd   uint8 = 26
	TypeEFTPAbort uint8 = 27
)

// EFTPConfig tunes the protocol.
type EFTPConfig struct {
	// BlockSize caps data bytes per block (default MaxData).
	BlockSize int
	// RTO is the per-block retransmission timeout.
	RTO time.Duration
	// Retries bounds retransmissions of one block before aborting.
	Retries int
	// PerBlockCPU models the user-mode processing per block.
	PerBlockCPU time.Duration
}

// DefaultEFTPConfig returns the configuration used in examples and
// tests.
func DefaultEFTPConfig() EFTPConfig {
	return EFTPConfig{
		BlockSize:   MaxData,
		RTO:         40 * time.Millisecond,
		Retries:     8,
		PerBlockCPU: 800 * time.Microsecond,
	}
}

func (c *EFTPConfig) sanitize() {
	if c.BlockSize <= 0 || c.BlockSize > MaxData {
		c.BlockSize = MaxData
	}
	if c.RTO <= 0 {
		c.RTO = 40 * time.Millisecond
	}
	if c.Retries <= 0 {
		c.Retries = 8
	}
}

// EFTP errors.
var (
	ErrEFTPTimeout = errors.New("pup/eftp: transfer timed out")
	ErrEFTPAborted = errors.New("pup/eftp: transfer aborted by peer")
)

// EFTPAbortError carries the peer's abort code and message.
type EFTPAbortError struct {
	Code uint32
	Msg  string
}

func (e *EFTPAbortError) Error() string {
	return fmt.Sprintf("pup/eftp: aborted by peer: code %d: %s", e.Code, e.Msg)
}

func (e *EFTPAbortError) Unwrap() error { return ErrEFTPAborted }

// EFTPSend transfers data to dst over sock, block by block.  It
// returns the number of retransmissions performed.
func EFTPSend(p *sim.Proc, sock *Socket, dst PortAddr, data []byte, cfg EFTPConfig) (int, error) {
	cfg.sanitize()
	retrans := 0
	blocks := segment(data, cfg.BlockSize)
	sock.SetTimeout(p, cfg.RTO)

	xmit := func(seq uint32, typ uint8, blk []byte) error {
		if cfg.PerBlockCPU > 0 {
			p.Consume(cfg.PerBlockCPU)
		}
		return sock.Send(p, &Packet{Type: typ, ID: seq, Dst: dst, Data: blk})
	}
	// await waits for the ack of seq, retransmitting as needed.
	await := func(seq uint32, typ uint8, blk []byte) error {
		for try := 0; try <= cfg.Retries; try++ {
			pkt, err := sock.Recv(p)
			if err == pfdev.ErrTimeout {
				retrans++
				if err := xmit(seq, typ, blk); err != nil {
					return err
				}
				continue
			}
			if err != nil {
				return err
			}
			switch pkt.Type {
			case TypeEFTPAck:
				if pkt.ID == seq {
					return nil
				}
				// A stale ack for an earlier block: ignore.
			case TypeEFTPAbort:
				return &EFTPAbortError{Code: pkt.ID, Msg: string(pkt.Data)}
			}
		}
		return ErrEFTPTimeout
	}

	for i, blk := range blocks {
		seq := uint32(i)
		if err := xmit(seq, TypeEFTPData, blk); err != nil {
			return retrans, err
		}
		if err := await(seq, TypeEFTPData, blk); err != nil {
			return retrans, err
		}
	}
	endSeq := uint32(len(blocks))
	if err := xmit(endSeq, TypeEFTPEnd, nil); err != nil {
		return retrans, err
	}
	if err := await(endSeq, TypeEFTPEnd, nil); err != nil {
		return retrans, err
	}
	return retrans, nil
}

// EFTPReceive accepts one transfer on sock, returning the reassembled
// data.  idle bounds the wait for the first block and between blocks.
// Duplicate blocks (from lost acks) are re-acknowledged and discarded.
func EFTPReceive(p *sim.Proc, sock *Socket, idle time.Duration, cfg EFTPConfig) ([]byte, error) {
	cfg.sanitize()
	sock.SetTimeout(p, idle)
	var out []byte
	next := uint32(0)

	ack := func(to PortAddr, seq uint32) error {
		if cfg.PerBlockCPU > 0 {
			p.Consume(cfg.PerBlockCPU)
		}
		return sock.Send(p, &Packet{Type: TypeEFTPAck, ID: seq, Dst: to})
	}

	for {
		pkt, err := sock.Recv(p)
		if err != nil {
			return out, err
		}
		switch pkt.Type {
		case TypeEFTPData:
			switch {
			case pkt.ID == next:
				out = append(out, pkt.Data...)
				if err := ack(pkt.Src, next); err != nil {
					return out, err
				}
				next++
			case pkt.ID < next:
				// Our ack was lost; re-ack the duplicate.
				if err := ack(pkt.Src, pkt.ID); err != nil {
					return out, err
				}
			default:
				// A future block under stop-and-wait means the
				// sender is broken; abort.
				sock.Send(p, &Packet{Type: TypeEFTPAbort, ID: 1,
					Dst: pkt.Src, Data: []byte("block out of order")})
				return out, ErrEFTPAborted
			}
		case TypeEFTPEnd:
			if pkt.ID == next {
				ack(pkt.Src, next)
				return out, nil
			}
			ack(pkt.Src, pkt.ID) // stale end retransmission
		case TypeEFTPAbort:
			return out, &EFTPAbortError{Code: pkt.ID, Msg: string(pkt.Data)}
		}
	}
}

// EFTPAbort tells the peer to stop an in-progress transfer.
func EFTPAbort(p *sim.Proc, sock *Socket, dst PortAddr, code uint32, msg string) error {
	return sock.Send(p, &Packet{Type: TypeEFTPAbort, ID: code, Dst: dst, Data: []byte(msg)})
}
