package pup

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/ethersim"
	"repro/internal/sim"
)

func TestEFTPTransfer(t *testing.T) {
	r := newRig(ethersim.Ether3Mb)
	data := bytes.Repeat([]byte("easy file transfer protocol "), 120) // ~3.4 KB
	var got []byte
	var sendErr, recvErr error
	var retrans int

	r.s.Spawn(r.hb, "recv", func(p *sim.Proc) {
		sock, err := Open(p, r.db, addrB, 10)
		if err != nil {
			t.Error(err)
			return
		}
		got, recvErr = EFTPReceive(p, sock, 300*time.Millisecond, DefaultEFTPConfig())
	})
	r.s.Spawn(r.ha, "send", func(p *sim.Proc) {
		sock, err := Open(p, r.da, addrA, 10)
		if err != nil {
			t.Error(err)
			return
		}
		p.Sleep(5 * time.Millisecond)
		retrans, sendErr = EFTPSend(p, sock, addrB, data, DefaultEFTPConfig())
	})
	r.s.Run(0)
	if sendErr != nil || recvErr != nil {
		t.Fatalf("send=%v recv=%v", sendErr, recvErr)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("transfer corrupted: got %d want %d bytes", len(got), len(data))
	}
	if retrans != 0 {
		t.Errorf("lossless transfer retransmitted %d times", retrans)
	}
}

func TestEFTPTransferWithLoss(t *testing.T) {
	r := newRig(ethersim.Ether3Mb)
	r.net.DropEvery = 5 // brutal: every 5th frame lost
	data := bytes.Repeat([]byte("lossy"), 500)
	var got []byte
	var sendErr error
	var retrans int

	r.s.Spawn(r.hb, "recv", func(p *sim.Proc) {
		sock, _ := Open(p, r.db, addrB, 10)
		got, _ = EFTPReceive(p, sock, time.Second, DefaultEFTPConfig())
	})
	r.s.Spawn(r.ha, "send", func(p *sim.Proc) {
		sock, _ := Open(p, r.da, addrA, 10)
		p.Sleep(5 * time.Millisecond)
		retrans, sendErr = EFTPSend(p, sock, addrB, data, DefaultEFTPConfig())
	})
	r.s.Run(0)
	if sendErr != nil {
		t.Fatalf("send failed under loss: %v", sendErr)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("corrupted under loss: got %d want %d bytes", len(got), len(data))
	}
	if retrans == 0 {
		t.Error("no retransmissions despite loss")
	}
}

func TestEFTPEmptyTransfer(t *testing.T) {
	r := newRig(ethersim.Ether3Mb)
	var got []byte
	var recvErr error
	done := false
	r.s.Spawn(r.hb, "recv", func(p *sim.Proc) {
		sock, _ := Open(p, r.db, addrB, 10)
		got, recvErr = EFTPReceive(p, sock, 200*time.Millisecond, DefaultEFTPConfig())
		done = true
	})
	r.s.Spawn(r.ha, "send", func(p *sim.Proc) {
		sock, _ := Open(p, r.da, addrA, 10)
		p.Sleep(5 * time.Millisecond)
		if _, err := EFTPSend(p, sock, addrB, nil, DefaultEFTPConfig()); err != nil {
			t.Error(err)
		}
	})
	r.s.Run(0)
	if !done || recvErr != nil {
		t.Fatalf("done=%v err=%v", done, recvErr)
	}
	if len(got) != 0 {
		t.Fatalf("empty transfer yielded %d bytes", len(got))
	}
}

func TestEFTPAbort(t *testing.T) {
	r := newRig(ethersim.Ether3Mb)
	var recvErr error
	r.s.Spawn(r.hb, "recv", func(p *sim.Proc) {
		sock, _ := Open(p, r.db, addrB, 10)
		_, recvErr = EFTPReceive(p, sock, 200*time.Millisecond, DefaultEFTPConfig())
	})
	r.s.Spawn(r.ha, "send", func(p *sim.Proc) {
		sock, _ := Open(p, r.da, addrA, 10)
		p.Sleep(5 * time.Millisecond)
		EFTPAbort(p, sock, addrB, 42, "disk on fire")
	})
	r.s.Run(0)
	var abort *EFTPAbortError
	if !errors.As(recvErr, &abort) {
		t.Fatalf("recv err = %v, want EFTPAbortError", recvErr)
	}
	if abort.Code != 42 || abort.Msg != "disk on fire" {
		t.Fatalf("abort = %+v", abort)
	}
	if !errors.Is(recvErr, ErrEFTPAborted) {
		t.Error("abort error does not unwrap to ErrEFTPAborted")
	}
}

func TestEFTPSenderTimesOutWithoutReceiver(t *testing.T) {
	r := newRig(ethersim.Ether3Mb)
	var sendErr error
	r.s.Spawn(r.ha, "send", func(p *sim.Proc) {
		sock, _ := Open(p, r.da, addrA, 10)
		cfg := DefaultEFTPConfig()
		cfg.RTO = 5 * time.Millisecond
		cfg.Retries = 2
		_, sendErr = EFTPSend(p, sock, addrB, []byte("x"), cfg)
	})
	r.s.Run(0)
	if sendErr != ErrEFTPTimeout {
		t.Fatalf("err = %v, want ErrEFTPTimeout", sendErr)
	}
}

func TestEFTPAcrossGateway(t *testing.T) {
	w := newInternet()
	data := bytes.Repeat([]byte("boot image "), 300)
	var got []byte
	var sendErr error
	w.s.Spawn(w.hb, "recv", func(p *sim.Proc) {
		sock, _ := Open(p, w.db, netAddrB, 10)
		sock.Gateway = w.gwAddr2
		got, _ = EFTPReceive(p, sock, 500*time.Millisecond, DefaultEFTPConfig())
	})
	w.s.Spawn(w.ha, "send", func(p *sim.Proc) {
		sock, _ := Open(p, w.da, netAddrA, 10)
		sock.Gateway = w.gwAddr1
		p.Sleep(10 * time.Millisecond)
		cfg := DefaultEFTPConfig()
		cfg.RTO = 80 * time.Millisecond // cross-net RTT is longer
		_, sendErr = EFTPSend(p, sock, netAddrB, data, cfg)
	})
	w.s.Run(0)
	if sendErr != nil {
		t.Fatal(sendErr)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("cross-net transfer corrupted: got %d want %d", len(got), len(data))
	}
}
