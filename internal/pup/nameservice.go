package pup

import (
	"encoding/binary"
	"errors"
	"time"

	"repro/internal/backoff"
	"repro/internal/pfdev"
	"repro/internal/sim"
)

// The Pup Miscellaneous Services protocol included network name
// lookup: a client broadcasts "what is the address of 'printer'?" and
// any name server answers with the port to talk to.  It is the piece
// that lets §5.1's "variety of applications" find each other without
// configuration files, and a natural demonstration of user-level
// protocol code: the name server is just another process with a filter
// on its well-known socket.

// WellKnownNameSocket is the Pup socket every name server listens on
// (Miscellaneous Services lived on a well-known socket in real Pup).
const WellKnownNameSocket uint32 = 4

// Pup types for the name protocol.
const (
	TypeNameLookup uint8 = 0x90 // request: data = name
	TypeNameIs     uint8 = 0x91 // reply: data = name + address
	TypeNameError  uint8 = 0x92 // reply: data = name (not registered)
)

// MaxNameLen bounds a registered name.
const MaxNameLen = 100

// Name-service errors.
var (
	ErrNameTooLong = errors.New("pup/name: name too long")
	ErrNameUnknown = errors.New("pup/name: name not registered")
	ErrNameTimeout = errors.New("pup/name: no name server answered")
)

// marshalNameIs encodes a TypeNameIs payload: the 6-byte port address
// followed by the name.
func marshalNameIs(name string, addr PortAddr) []byte {
	b := make([]byte, 6+len(name))
	b[0] = addr.Net
	b[1] = addr.Host
	binary.BigEndian.PutUint32(b[2:], addr.Socket)
	copy(b[6:], name)
	return b
}

func unmarshalNameIs(b []byte) (string, PortAddr, bool) {
	if len(b) < 6 {
		return "", PortAddr{}, false
	}
	addr := PortAddr{
		Net: b[0], Host: b[1],
		Socket: binary.BigEndian.Uint32(b[2:]),
	}
	return string(b[6:]), addr, true
}

// NameServer answers lookup requests from a registration table.
type NameServer struct {
	dev   *pfdev.Device
	local PortAddr
	table map[string]PortAddr
	// Served and Unknown count lookups answered and refused.
	Served, Unknown int
}

// NewNameServer creates a server on dev; local is its own Pup address
// (Socket is forced to WellKnownNameSocket).
func NewNameServer(dev *pfdev.Device, local PortAddr) *NameServer {
	local.Socket = WellKnownNameSocket
	return &NameServer{dev: dev, local: local, table: make(map[string]PortAddr)}
}

// Register binds a name to a port address.
func (ns *NameServer) Register(name string, addr PortAddr) error {
	if len(name) > MaxNameLen {
		return ErrNameTooLong
	}
	ns.table[name] = addr
	return nil
}

// Run answers lookups until none arrive for idle.
func (ns *NameServer) Run(p *sim.Proc, idle time.Duration) error {
	sock, err := Open(p, ns.dev, ns.local, 15)
	if err != nil {
		return err
	}
	defer sock.Close(p)
	sock.SetTimeout(p, idle)
	for {
		pkt, err := sock.Recv(p)
		if err != nil {
			return nil
		}
		if pkt.Type != TypeNameLookup {
			continue
		}
		name := string(pkt.Data)
		if addr, ok := ns.table[name]; ok {
			ns.Served++
			sock.Send(p, &Packet{Type: TypeNameIs, ID: pkt.ID,
				Dst: pkt.Src, Data: marshalNameIs(name, addr)})
		} else {
			ns.Unknown++
			sock.Send(p, &Packet{Type: TypeNameError, ID: pkt.ID,
				Dst: pkt.Src, Data: pkt.Data})
		}
	}
}

// LookupStats reports how hard a lookup had to try.
type LookupStats struct {
	Attempts int // broadcasts sent (1 on a quiet network)
}

// LookupName resolves a name by broadcasting to the well-known name
// socket and waiting for any server's answer, retrying with capped
// exponential backoff on timeout.  sock is the caller's own socket
// (replies come back to it).
func LookupName(p *sim.Proc, sock *Socket, name string, timeout time.Duration, retries int) (PortAddr, error) {
	addr, _, err := LookupNameStats(p, sock, name, timeout, retries)
	return addr, err
}

// LookupNameStats is LookupName, also reporting attempt counts.
func LookupNameStats(p *sim.Proc, sock *Socket, name string, timeout time.Duration, retries int) (PortAddr, LookupStats, error) {
	var st LookupStats
	if len(name) > MaxNameLen {
		return PortAddr{}, st, ErrNameTooLong
	}
	id := uint32(p.Now()/time.Microsecond) & 0xFFFFFF
	req := &Packet{
		Type: TypeNameLookup,
		ID:   id,
		Dst: PortAddr{
			Net:    sock.Local.Net,
			Host:   0, // Pup broadcast: any host on this network
			Socket: WellKnownNameSocket,
		},
		Data: []byte(name),
	}
	pol := backoff.Policy{Base: timeout, Cap: 8 * timeout}
	for try := 0; try <= retries; try++ {
		sock.SetTimeout(p, pol.Delay(try))
		if err := sock.Send(p, req); err != nil {
			return PortAddr{}, st, err
		}
		st.Attempts++
		for {
			pkt, err := sock.Recv(p)
			if err == pfdev.ErrTimeout {
				break // retransmit
			}
			if err != nil {
				return PortAddr{}, st, err
			}
			if pkt.ID != id {
				continue
			}
			switch pkt.Type {
			case TypeNameIs:
				got, addr, ok := unmarshalNameIs(pkt.Data)
				if ok && got == name {
					return addr, st, nil
				}
			case TypeNameError:
				if string(pkt.Data) == name {
					return PortAddr{}, st, ErrNameUnknown
				}
			}
		}
	}
	return PortAddr{}, st, ErrNameTimeout
}
