package pup

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/ethersim"
	"repro/internal/pfdev"
	"repro/internal/sim"
	"repro/internal/vtime"
)

// internet builds two Ethernet segments joined by a gateway host:
// host A on net 1 (3 Mb), host B on net 2 (10 Mb), gateway on both.
type internet struct {
	s           *sim.Sim
	net1, net2  *ethersim.Network
	ha, hb, hgw *sim.Host
	da, db      *pfdev.Device
	dg1, dg2    *pfdev.Device
	gwAddr1     ethersim.Addr // gateway's link address on net 1
	gwAddr2     ethersim.Addr
	gw          *Gateway
}

func newInternet() *internet {
	s := sim.New(vtime.DefaultCosts())
	w := &internet{
		s:    s,
		net1: ethersim.New(s, ethersim.Ether3Mb),
		net2: ethersim.New(s, ethersim.Ether10Mb),
		ha:   s.NewHost("a"), hb: s.NewHost("b"), hgw: s.NewHost("gw"),
	}
	w.gwAddr1, w.gwAddr2 = 0x7E, 0x7F
	w.da = pfdev.Attach(w.net1.Attach(w.ha, 0x0A), nil, pfdev.Options{})
	w.db = pfdev.Attach(w.net2.Attach(w.hb, 0x0B), nil, pfdev.Options{})
	w.dg1 = pfdev.Attach(w.net1.Attach(w.hgw, w.gwAddr1), nil, pfdev.Options{})
	w.dg2 = pfdev.Attach(w.net2.Attach(w.hgw, w.gwAddr2), nil, pfdev.Options{})
	w.gw = NewGateway(
		GatewayPort{Dev: w.dg1, Net: 1},
		GatewayPort{Dev: w.dg2, Net: 2},
	)
	s.Spawn(w.hgw, "gateway", func(p *sim.Proc) { w.gw.Run(p, 300*time.Millisecond) })
	return w
}

var (
	netAddrA = PortAddr{Net: 1, Host: 0x0A, Socket: 0x100}
	netAddrB = PortAddr{Net: 2, Host: 0x0B, Socket: 0x200}
)

func TestEchoAcrossGateway(t *testing.T) {
	w := newInternet()
	var rtt time.Duration
	var echoErr error
	w.s.Spawn(w.hb, "server", func(p *sim.Proc) {
		sock, err := Open(p, w.db, netAddrB, 10)
		if err != nil {
			t.Error(err)
			return
		}
		sock.Gateway = w.gwAddr2
		sock.EchoServer(p, 200*time.Millisecond)
	})
	w.s.Spawn(w.ha, "client", func(p *sim.Proc) {
		sock, err := Open(p, w.da, netAddrA, 10)
		if err != nil {
			t.Error(err)
			return
		}
		sock.Gateway = w.gwAddr1
		p.Sleep(10 * time.Millisecond)
		rtt, echoErr = sock.Echo(p, netAddrB, []byte("cross-net"), 80*time.Millisecond, 3)
	})
	w.s.Run(0)
	if echoErr != nil {
		t.Fatal(echoErr)
	}
	if rtt <= 0 {
		t.Fatal("no round trip")
	}
	if w.gw.Forwarded < 2 {
		t.Fatalf("gateway forwarded %d Pups, want request+reply", w.gw.Forwarded)
	}
}

func TestBSPAcrossGateway(t *testing.T) {
	w := newInternet()
	data := bytes.Repeat([]byte("inter-network stream "), 200) // ~4 KB
	var got bytes.Buffer
	w.s.Spawn(w.hb, "recv", func(p *sim.Proc) {
		sock, _ := Open(p, w.db, netAddrB, 10)
		sock.Gateway = w.gwAddr2
		rcv := NewBSPReceiver(sock, DefaultBSPConfig())
		for {
			seg, err := rcv.Receive(p, 400*time.Millisecond)
			if err != nil {
				return
			}
			got.Write(seg)
		}
	})
	w.s.Spawn(w.ha, "send", func(p *sim.Proc) {
		sock, _ := Open(p, w.da, netAddrA, 10)
		sock.Gateway = w.gwAddr1
		p.Sleep(10 * time.Millisecond)
		snd := NewBSPSender(sock, netAddrB, DefaultBSPConfig())
		if err := snd.Send(p, data); err != nil {
			t.Error(err)
			return
		}
		snd.Close(p)
	})
	w.s.Run(0)
	if !bytes.Equal(got.Bytes(), data) {
		t.Fatalf("stream corrupted across gateway: got %d want %d bytes",
			got.Len(), len(data))
	}
}

func TestGatewayIgnoresLocalTraffic(t *testing.T) {
	// On-net Pups (DstNet == local net) never wake the gateway: the
	// transit filter rejects them in the kernel.
	w := newInternet()
	localB := PortAddr{Net: 1, Host: 0x7E, Socket: 0x300} // unrelated socket on net 1
	w.s.Spawn(w.ha, "client", func(p *sim.Proc) {
		sock, _ := Open(p, w.da, netAddrA, 10)
		p.Sleep(5 * time.Millisecond)
		for i := 0; i < 5; i++ {
			sock.Send(p, &Packet{Type: 3, Dst: localB})
		}
	})
	w.s.Run(0)
	if w.gw.Forwarded != 0 {
		t.Fatalf("gateway forwarded %d on-net Pups", w.gw.Forwarded)
	}
}

func TestGatewayDropsNoRoute(t *testing.T) {
	w := newInternet()
	w.s.Spawn(w.ha, "client", func(p *sim.Proc) {
		sock, _ := Open(p, w.da, netAddrA, 10)
		sock.Gateway = w.gwAddr1
		p.Sleep(10 * time.Millisecond)
		// Net 9 is attached nowhere.
		sock.Send(p, &Packet{Type: 3, Dst: PortAddr{Net: 9, Host: 1, Socket: 1}})
	})
	w.s.Run(0)
	if w.gw.DroppedNoRoute != 1 {
		t.Fatalf("DroppedNoRoute = %d, want 1", w.gw.DroppedNoRoute)
	}
}

func TestHopCountBreaksRoutingLoops(t *testing.T) {
	// Two gateways joining the same pair of networks, each claiming
	// the route to a third network through the other: a Pup for net
	// 9 bounces between them until MaxHops kills it.
	s := sim.New(vtime.DefaultCosts())
	net1 := ethersim.New(s, ethersim.Ether3Mb)
	net2 := ethersim.New(s, ethersim.Ether3Mb)
	ha := s.NewHost("a")
	g1h, g2h := s.NewHost("g1"), s.NewHost("g2")
	da := pfdev.Attach(net1.Attach(ha, 0x0A), nil, pfdev.Options{})

	// Misconfiguration: g1 thinks net 2 hosts reach net 9 via host
	// g2's address, and vice versa.  Both advertise "net 2" and
	// "net 1"... the loop is induced by mapping the victim Pup's
	// destination (net 9 is routed as if it were the OTHER side).
	g1 := NewGateway(
		GatewayPort{Dev: pfdev.Attach(net1.Attach(g1h, 0x71), nil, pfdev.Options{}), Net: 1},
		GatewayPort{Dev: pfdev.Attach(net2.Attach(g1h, 0x72), nil, pfdev.Options{}), Net: 9,
			Hosts: map[uint8]ethersim.Addr{1: 0x82}}, // "net 9 host 1" -> g2
	)
	g2 := NewGateway(
		GatewayPort{Dev: pfdev.Attach(net2.Attach(g2h, 0x82), nil, pfdev.Options{}), Net: 1,
			Hosts: map[uint8]ethersim.Addr{1: 0x71}},
		GatewayPort{Dev: pfdev.Attach(net1.Attach(g2h, 0x81), nil, pfdev.Options{}), Net: 9,
			Hosts: map[uint8]ethersim.Addr{1: 0x71}}, // "net 9 host 1" -> g1
	)
	s.Spawn(g1h, "g1", func(p *sim.Proc) { g1.Run(p, 200*time.Millisecond) })
	s.Spawn(g2h, "g2", func(p *sim.Proc) { g2.Run(p, 200*time.Millisecond) })

	s.Spawn(ha, "client", func(p *sim.Proc) {
		sock, _ := Open(p, da, netAddrA, 10)
		sock.Gateway = 0x71
		p.Sleep(10 * time.Millisecond)
		sock.Send(p, &Packet{Type: 3, Dst: PortAddr{Net: 9, Host: 1, Socket: 1}})
	})
	end := s.Run(5 * time.Second)
	if end >= 5*time.Second {
		t.Fatal("simulation did not quiesce: routing loop not broken")
	}
	if g1.DroppedHops+g2.DroppedHops != 1 {
		t.Fatalf("hop-limit drops = %d, want exactly 1", g1.DroppedHops+g2.DroppedHops)
	}
	total := g1.Forwarded + g2.Forwarded
	if total < 10 || total > uint64(MaxHops)+2 {
		t.Fatalf("loop forwarded %d times, want ~MaxHops", total)
	}
}
