package pup

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/ethersim"
	"repro/internal/pfdev"
	"repro/internal/sim"
)

// TestBSPTransferOverRing runs the full byte-stream protocol with both
// endpoints on the zero-copy ring path: data segments, acks and the
// end mark all travel through mapped segments, and no payload byte
// crosses the kernel/user boundary as a copy on either port.
func TestBSPTransferOverRing(t *testing.T) {
	r := newRig(ethersim.Ether3Mb)
	data := make([]byte, 5000)
	for i := range data {
		data[i] = byte(i * 7)
	}
	var received bytes.Buffer
	var sendErr, recvErr error
	var sendStats, recvStats pfdev.PortStats
	r.s.Spawn(r.hb, "recv", func(p *sim.Proc) {
		sock, _ := Open(p, r.db, addrB, 10)
		if err := sock.EnableRing(p, 16); err != nil {
			recvErr = err
			return
		}
		rcv := NewBSPReceiver(sock, DefaultBSPConfig())
		for {
			seg, err := rcv.Receive(p, 200*time.Millisecond)
			if err == ErrStreamClosed {
				recvStats = sock.Port.Stats()
				return
			}
			if err != nil {
				recvErr = err
				return
			}
			received.Write(seg)
		}
	})
	r.s.Spawn(r.ha, "send", func(p *sim.Proc) {
		sock, _ := Open(p, r.da, addrA, 10)
		if err := sock.EnableRing(p, 16); err != nil {
			sendErr = err
			return
		}
		p.Sleep(5 * time.Millisecond)
		snd := NewBSPSender(sock, addrB, DefaultBSPConfig())
		if err := snd.Send(p, data); err != nil {
			sendErr = err
			return
		}
		sendErr = snd.Close(p)
		sendStats = sock.Port.Stats()
	})
	r.s.Run(0)
	if sendErr != nil || recvErr != nil {
		t.Fatalf("send=%v recv=%v", sendErr, recvErr)
	}
	if !bytes.Equal(received.Bytes(), data) {
		t.Fatalf("data corrupted over ring: got %d bytes want %d", received.Len(), len(data))
	}
	for _, ps := range []struct {
		name  string
		stats pfdev.PortStats
	}{{"send", sendStats}, {"recv", recvStats}} {
		if ps.stats.BytesCopied != 0 {
			t.Errorf("%s port copied %d bytes; the ring path should copy none", ps.name, ps.stats.BytesCopied)
		}
		if ps.stats.BytesMapped == 0 {
			t.Errorf("%s port mapped no bytes; the ring path was not exercised", ps.name)
		}
	}
	if recvStats.BytesMapped < uint64(len(data)) {
		t.Errorf("receiver mapped %d bytes, less than the %d-byte stream", recvStats.BytesMapped, len(data))
	}
}

// TestRingSurvivesReopen crashes the serving host mid-conversation:
// the segment is user memory and survives, Reopen re-maps it onto the
// fresh port, and the echo service keeps answering on the ring path.
func TestRingSurvivesReopen(t *testing.T) {
	r := newRig(ethersim.Ether3Mb)
	var served int
	var rebinds int
	var afterCrash pfdev.PortStats
	r.s.Spawn(r.hb, "server", func(p *sim.Proc) {
		sock, _ := Open(p, r.db, addrB, 10)
		if err := sock.EnableRing(p, 8); err != nil {
			t.Errorf("EnableRing: %v", err)
			return
		}
		served = sock.EchoServer(p, 100*time.Millisecond)
		rebinds = sock.Rebinds
		afterCrash = sock.Port.Stats()
	})
	r.s.Spawn(r.ha, "client", func(p *sim.Proc) {
		sock, _ := Open(p, r.da, addrA, 10)
		p.Sleep(5 * time.Millisecond)
		if _, err := sock.Echo(p, addrB, []byte("before"), 50*time.Millisecond, 3); err != nil {
			t.Errorf("echo before crash: %v", err)
		}
		r.hb.Crash()
		p.Sleep(2 * time.Millisecond)
		r.hb.Restart()
		if _, err := sock.Echo(p, addrB, []byte("after"), 50*time.Millisecond, 5); err != nil {
			t.Errorf("echo after crash: %v", err)
		}
	})
	r.s.Run(0)
	if served < 2 {
		t.Errorf("served %d echoes, want at least one on each side of the crash", served)
	}
	if rebinds != 1 {
		t.Errorf("rebinds = %d, want 1", rebinds)
	}
	if afterCrash.BytesMapped == 0 || afterCrash.BytesCopied != 0 {
		t.Errorf("post-crash port not on the ring path: %+v", afterCrash)
	}
}
