// Package demux implements the baseline the packet filter is measured
// against: a user-level demultiplexing process (figure 2-1).  One
// process receives every packet of interest from the kernel, decides
// in user space which destination process should get it, and forwards
// it through a pipe — costing "at least two context switches and three
// system calls per received packet" plus two extra data copies, since
// "Unix does not support memory sharing" (§2, §6.5.1).
//
// Tables 6-5, 6-8 and 6-9 quantify this; the bench harness rebuilds
// them by running the same traffic through this package and through a
// direct packet-filter port.
package demux

import (
	"time"

	"repro/internal/filter"
	"repro/internal/pfdev"
	"repro/internal/sim"
)

// Predicate decides in user space whether a client wants a packet.
type Predicate func(frame []byte) bool

// Config tunes the demultiplexer.
type Config struct {
	// Batch drains the packet-filter port in batched reads
	// (table 6-9); forwarding through the pipes is still
	// per-packet.
	Batch bool
	// DecisionCPU is the user-mode cost per predicate evaluated.
	// Zero models the paper's most generous assumption: "even if
	// one assumes zero cost for decision-making in a user-level
	// demultiplexer" (§6.5.3).
	DecisionCPU time.Duration
	// PipeCap bounds each client pipe (default 16 messages).
	PipeCap int
}

// Demux is the demultiplexing process state.
type Demux struct {
	dev     *pfdev.Device
	cfg     Config
	clients []*Client

	// Forwarded counts packets delivered to clients; Unclaimed
	// counts packets no predicate wanted.
	Forwarded, Unclaimed uint64
}

// Client is one destination process's handle: a pipe fed by the
// demultiplexer.
type Client struct {
	pred Predicate
	pipe *sim.Pipe
}

// New creates a demultiplexer on a packet-filter device.
func New(dev *pfdev.Device, cfg Config) *Demux {
	if cfg.PipeCap <= 0 {
		cfg.PipeCap = 16
	}
	return &Demux{dev: dev, cfg: cfg}
}

// Register adds a destination process with its predicate.  Call before
// Run starts forwarding.
func (d *Demux) Register(pred Predicate) *Client {
	c := &Client{
		pred: pred,
		pipe: d.dev.Host().Sim().NewPipe(d.dev.Host(), d.cfg.PipeCap),
	}
	d.clients = append(d.clients, c)
	return c
}

// Recv blocks until the demultiplexer forwards a packet to this
// client; the caller is the destination process.
func (c *Client) Recv(p *sim.Proc) []byte {
	return p.Read(c.pipe)
}

// Run is the demultiplexing process main loop: bind one catch-all (or
// caller-supplied) filter, then read packets and forward each to the
// first client whose predicate accepts it.  It returns when no traffic
// arrives for idle.
func (d *Demux) Run(p *sim.Proc, f filter.Filter, idle time.Duration) error {
	port := d.dev.Open(p)
	defer port.Close(p)
	if len(f.Program) == 0 {
		f = filter.Filter{
			Priority: 100,
			Program:  filter.NewBuilder().AcceptAll().MustProgram(),
		}
	}
	if err := port.SetFilter(p, f); err != nil {
		return err
	}
	port.SetTimeout(p, idle)
	port.SetQueueLimit(p, 64)

	var pending []pfdev.Packet
	for {
		var pkt pfdev.Packet
		if len(pending) > 0 {
			pkt = pending[0]
			pending = pending[1:]
		} else if d.cfg.Batch {
			batch, err := port.ReadBatch(p)
			if err != nil {
				return nil
			}
			pending = batch
			continue
		} else {
			var err error
			pkt, err = port.Read(p)
			if err != nil {
				return nil
			}
		}
		d.forward(p, pkt.Data)
	}
}

func (d *Demux) forward(p *sim.Proc, frame []byte) {
	for _, c := range d.clients {
		if d.cfg.DecisionCPU > 0 {
			p.Consume(d.cfg.DecisionCPU)
		}
		if c.pred(frame) {
			// "the demultiplexing process transfers the packet
			// to the appropriate destination process" — two
			// more copies and at least two context switches.
			p.Write(c.pipe, frame)
			d.Forwarded++
			return
		}
	}
	d.Unclaimed++
}
