// Package demux implements the baseline the packet filter is measured
// against: a user-level demultiplexing process (figure 2-1).  One
// process receives every packet of interest from the kernel, decides
// in user space which destination process should get it, and forwards
// it through a pipe — costing "at least two context switches and three
// system calls per received packet" plus two extra data copies, since
// "Unix does not support memory sharing" (§2, §6.5.1).
//
// Tables 6-5, 6-8 and 6-9 quantify this; the bench harness rebuilds
// them by running the same traffic through this package and through a
// direct packet-filter port.
package demux

import (
	"time"

	"repro/internal/filter"
	"repro/internal/pfdev"
	"repro/internal/shm"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Predicate decides in user space whether a client wants a packet.
type Predicate func(frame []byte) bool

// Config tunes the demultiplexer.
type Config struct {
	// Batch drains the packet-filter port in batched reads
	// (table 6-9); forwarding through the pipes is still
	// per-packet.
	Batch bool
	// DecisionCPU is the user-mode cost per predicate evaluated.
	// Zero models the paper's most generous assumption: "even if
	// one assumes zero cost for decision-making in a user-level
	// demultiplexer" (§6.5.3).
	DecisionCPU time.Duration
	// PipeCap bounds each client pipe (default 16 messages).
	PipeCap int
	// Shared rebuilds the forwarding path on shared memory (§2's
	// "this would be easier in a system that supported shared
	// memory"): the port is drained through a mapped receive ring,
	// each frame is deposited into the destination client's arena
	// slot, and only a 12-byte descriptor travels down the pipe.
	// The wakeup and its system calls remain; the per-byte boundary
	// copies disappear.
	Shared bool
	// ArenaSlots is the per-client arena slot count in Shared mode
	// (default 2*PipeCap, so a slot is never reused while its
	// descriptor can still be queued in the pipe).
	ArenaSlots int
}

// Demux is the demultiplexing process state.
type Demux struct {
	dev     *pfdev.Device
	cfg     Config
	clients []*Client

	// seg and slotSize are the Shared-mode forwarding arena: one
	// segment shared by the demultiplexer and every client, divided
	// into per-client slot arenas.
	seg      *shm.Segment
	slotSize int

	// Forwarded counts packets delivered to clients; Unclaimed
	// counts packets no predicate wanted.
	Forwarded, Unclaimed uint64
}

// Client is one destination process's handle: a pipe fed by the
// demultiplexer and, in Shared mode, a slice of the forwarding arena.
type Client struct {
	d    *Demux
	idx  int
	pred Predicate
	pipe *sim.Pipe
	next uint64 // rotating arena slot (demux side)
}

// New creates a demultiplexer on a packet-filter device.
func New(dev *pfdev.Device, cfg Config) *Demux {
	if cfg.PipeCap <= 0 {
		cfg.PipeCap = 16
	}
	if cfg.ArenaSlots <= 0 {
		cfg.ArenaSlots = 2 * cfg.PipeCap
	}
	return &Demux{dev: dev, cfg: cfg}
}

// Register adds a destination process with its predicate.  Call before
// Run starts forwarding.
func (d *Demux) Register(pred Predicate) *Client {
	c := &Client{
		d:    d,
		idx:  len(d.clients),
		pred: pred,
		pipe: d.dev.Host().Sim().NewPipe(d.dev.Host(), d.cfg.PipeCap),
	}
	d.clients = append(d.clients, c)
	return c
}

// Recv blocks until the demultiplexer forwards a packet to this
// client; the caller is the destination process.  In Shared mode the
// pipe carries a descriptor and the payload is read in place from the
// arena — counted as mapped bytes, charged no copy.
func (c *Client) Recv(p *sim.Proc) []byte {
	msg := p.Read(c.pipe)
	if c.d.seg == nil {
		return msg
	}
	desc, err := shm.DecodeDesc(msg)
	if err != nil || len(msg) != shm.DescSize {
		return msg // oversized-frame fallback: the pipe carried the frame itself
	}
	view, err := c.d.seg.Slice(desc.Off, desc.Len)
	if err != nil {
		return nil
	}
	p.Mapped("demux", len(view))
	return view
}

// Run is the demultiplexing process main loop: bind one catch-all (or
// caller-supplied) filter, then read packets and forward each to the
// first client whose predicate accepts it.  It returns when no traffic
// arrives for idle.
func (d *Demux) Run(p *sim.Proc, f filter.Filter, idle time.Duration) error {
	port := d.dev.Open(p)
	defer port.Close(p)
	if len(f.Program) == 0 {
		f = filter.Filter{
			Priority: 100,
			Program:  filter.NewBuilder().AcceptAll().MustProgram(),
		}
	}
	if err := port.SetFilter(p, f); err != nil {
		return err
	}
	port.SetTimeout(p, idle)
	port.SetQueueLimit(p, 64)

	if d.cfg.Shared {
		// One mapping pays for the whole run: a receive ring on the
		// port plus a forwarding arena shared with every client.
		reg := shm.NewRegistry(d.dev.Host())
		d.slotSize = d.dev.NIC().Network().Link().MaxFrame()
		ringSeg, err := reg.Map(p, "demux-ring", port.RingLayoutSize(64))
		if err != nil {
			return err
		}
		if err := port.MapRing(p, ringSeg, 64); err != nil {
			return err
		}
		arena, err := reg.Map(p, "demux-arena", len(d.clients)*d.cfg.ArenaSlots*d.slotSize)
		if err != nil {
			return err
		}
		// The arena outlives Run: clients may still be consuming
		// queued descriptors after the demultiplexer goes idle.
		d.seg = arena
	}

	var pending []pfdev.Packet
	for {
		var pkt pfdev.Packet
		if len(pending) > 0 {
			pkt = pending[0]
			pending = pending[1:]
		} else if d.cfg.Shared {
			// The reaped views stay valid while pending drains:
			// their ring slots are lent out until the next
			// ReapBatch call, so the driver cannot redeposit over
			// them during the Consume/pipe-write yields below —
			// burst overflow drops at the port instead.
			batch, err := port.ReapBatch(p)
			if err != nil {
				return nil
			}
			pending = batch
			continue
		} else if d.cfg.Batch {
			batch, err := port.ReadBatch(p)
			if err != nil {
				return nil
			}
			pending = batch
			continue
		} else {
			var err error
			pkt, err = port.Read(p)
			if err != nil {
				return nil
			}
		}
		d.forward(p, pkt)
	}
}

func (d *Demux) forward(p *sim.Proc, pkt pfdev.Packet) {
	frame := pkt.Data
	for _, c := range d.clients {
		if d.cfg.DecisionCPU > 0 {
			p.Consume(d.cfg.DecisionCPU)
		}
		if !c.pred(frame) {
			continue
		}
		if d.seg != nil {
			d.forwardShared(p, c, frame)
		} else {
			// "the demultiplexing process transfers the packet
			// to the appropriate destination process" — two
			// more copies and at least two context switches.
			p.Write(c.pipe, frame)
		}
		d.Forwarded++
		return
	}
	d.Unclaimed++
	// No predicate wanted the packet: a user-level death, recorded as
	// a born-dead child span so the taxonomy explains where it went.
	h := d.dev.Host()
	h.Sim().Tracer().SpanUserDrop(pkt.Span(), h.Clock().Now(), h.Name(), trace.DropUnclaimed)
}

// forwardShared deposits the frame into the client's next arena slot
// and sends only its descriptor down the pipe.  The wakeup (pipe
// syscalls, context switches) is still paid; the payload never crosses
// the kernel/user boundary again.
func (d *Demux) forwardShared(p *sim.Proc, c *Client, frame []byte) {
	slot := int(c.next % uint64(d.cfg.ArenaSlots))
	c.next++
	off := uint32((c.idx*d.cfg.ArenaSlots + slot) * d.slotSize)
	view, err := d.seg.Slice(off, uint32(len(frame)))
	if err != nil {
		// A frame larger than a slot (impossible off a conforming
		// link) falls back to the copying pipe.
		p.Write(c.pipe, frame)
		return
	}
	copy(view, frame)
	d.seg.Stats.BytesOut += uint64(len(frame))
	p.Write(c.pipe, shm.Desc{Off: off, Len: uint32(len(frame))}.Encode(nil))
}
