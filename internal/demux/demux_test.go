package demux

import (
	"testing"
	"time"

	"repro/internal/ethersim"
	"repro/internal/filter"
	"repro/internal/pfdev"
	"repro/internal/sim"
	"repro/internal/vtime"
)

type rig struct {
	s      *sim.Sim
	net    *ethersim.Network
	ha, hb *sim.Host
	na     *ethersim.NIC
	db     *pfdev.Device
}

func newRig() *rig {
	s := sim.New(vtime.DefaultCosts())
	net := ethersim.New(s, ethersim.Ether3Mb)
	ha, hb := s.NewHost("src"), s.NewHost("dst")
	na := net.Attach(ha, 1)
	nb := net.Attach(hb, 2)
	return &rig{s: s, net: net, ha: ha, hb: hb, na: na,
		db: pfdev.Attach(nb, nil, pfdev.Options{})}
}

// frameType builds a 3Mb frame with a given type and one payload byte.
func frameType(etherType uint16, tag byte) []byte {
	return ethersim.Ether3Mb.Encode(2, 1, etherType, []byte{tag, 0})
}

// typePred matches frames by Ethernet type in user space.
func typePred(etherType uint16) Predicate {
	return func(frame []byte) bool {
		_, _, typ, _, err := ethersim.Ether3Mb.Decode(frame)
		return err == nil && typ == etherType
	}
}

func TestForwardToCorrectClient(t *testing.T) {
	r := newRig()
	d := New(r.db, Config{})
	c1 := d.Register(typePred(0x0101))
	c2 := d.Register(typePred(0x0202))

	var got1, got2 []byte
	r.s.Spawn(r.hb, "demux", func(p *sim.Proc) {
		d.Run(p, filter.Filter{}, 50*time.Millisecond)
	})
	r.s.Spawn(r.hb, "dst1", func(p *sim.Proc) { got1 = c1.Recv(p) })
	r.s.Spawn(r.hb, "dst2", func(p *sim.Proc) { got2 = c2.Recv(p) })
	r.s.Spawn(r.ha, "src", func(p *sim.Proc) {
		p.Sleep(5 * time.Millisecond)
		r.na.Transmit(frameType(0x0202, 22))
		r.na.Transmit(frameType(0x0101, 11))
		r.na.Transmit(frameType(0x0303, 33)) // nobody wants this
	})
	r.s.Run(0)
	if len(got1) == 0 || got1[4] != 11 {
		t.Fatalf("client1 got %v", got1)
	}
	if len(got2) == 0 || got2[4] != 22 {
		t.Fatalf("client2 got %v", got2)
	}
	if d.Forwarded != 2 || d.Unclaimed != 1 {
		t.Fatalf("forwarded=%d unclaimed=%d", d.Forwarded, d.Unclaimed)
	}
}

func TestDemuxCostsMoreThanDirect(t *testing.T) {
	// The central claim of §2: per received packet, the demux path
	// must burn more context switches and copies than a direct
	// packet-filter port.
	const packets = 10

	direct := func() vtime.Counters {
		r := newRig()
		r.s.Spawn(r.hb, "dst", func(p *sim.Proc) {
			port := r.db.Open(p)
			port.SetFilter(p, filter.Filter{Priority: 10,
				Program: filter.NewBuilder().AcceptAll().MustProgram()})
			port.SetTimeout(p, 50*time.Millisecond)
			for {
				if _, err := port.Read(p); err != nil {
					return
				}
			}
		})
		r.s.Spawn(r.ha, "src", func(p *sim.Proc) {
			p.Sleep(5 * time.Millisecond)
			for i := 0; i < packets; i++ {
				r.na.Transmit(frameType(0x0101, byte(i)))
				p.Sleep(3 * time.Millisecond)
			}
		})
		r.s.Run(0)
		return r.hb.Counters
	}()

	demuxed := func() vtime.Counters {
		r := newRig()
		d := New(r.db, Config{})
		c := d.Register(typePred(0x0101))
		r.s.Spawn(r.hb, "demux", func(p *sim.Proc) {
			d.Run(p, filter.Filter{}, 50*time.Millisecond)
		})
		r.s.Spawn(r.hb, "dst", func(p *sim.Proc) {
			for i := 0; i < packets; i++ {
				c.Recv(p)
			}
		})
		r.s.Spawn(r.ha, "src", func(p *sim.Proc) {
			p.Sleep(5 * time.Millisecond)
			for i := 0; i < packets; i++ {
				r.na.Transmit(frameType(0x0101, byte(i)))
				p.Sleep(3 * time.Millisecond)
			}
		})
		r.s.Run(0)
		return r.hb.Counters
	}()

	if demuxed.ContextSwitches < direct.ContextSwitches+2*packets-2 {
		t.Errorf("demux switches = %d, direct = %d: want ≥2 extra per packet",
			demuxed.ContextSwitches, direct.ContextSwitches)
	}
	if demuxed.Copies < direct.Copies+2*packets {
		t.Errorf("demux copies = %d, direct = %d: want 2 extra per packet",
			demuxed.Copies, direct.Copies)
	}
	if demuxed.Syscalls <= direct.Syscalls {
		t.Errorf("demux syscalls = %d not above direct %d",
			demuxed.Syscalls, direct.Syscalls)
	}
}

func TestBatchedDemuxStillForwards(t *testing.T) {
	r := newRig()
	d := New(r.db, Config{Batch: true, DecisionCPU: 50 * time.Microsecond})
	c := d.Register(typePred(0x0101))
	got := 0
	r.s.Spawn(r.hb, "demux", func(p *sim.Proc) {
		d.Run(p, filter.Filter{}, 60*time.Millisecond)
	})
	r.s.Spawn(r.hb, "dst", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			c.Recv(p)
			got++
		}
	})
	r.s.Spawn(r.ha, "src", func(p *sim.Proc) {
		p.Sleep(5 * time.Millisecond)
		for i := 0; i < 5; i++ {
			r.na.Transmit(frameType(0x0101, byte(i)))
		}
	})
	r.s.Run(0)
	if got != 5 {
		t.Fatalf("forwarded %d packets", got)
	}
}

func TestSharedDemuxForwardsInPlace(t *testing.T) {
	r := newRig()
	d := New(r.db, Config{Shared: true})
	c1 := d.Register(typePred(0x0101))
	c2 := d.Register(typePred(0x0202))

	var got1, got2 []byte
	r.s.Spawn(r.hb, "demux", func(p *sim.Proc) {
		d.Run(p, filter.Filter{}, 50*time.Millisecond)
	})
	r.s.Spawn(r.hb, "dst1", func(p *sim.Proc) { got1 = append([]byte(nil), c1.Recv(p)...) })
	r.s.Spawn(r.hb, "dst2", func(p *sim.Proc) { got2 = append([]byte(nil), c2.Recv(p)...) })
	r.s.Spawn(r.ha, "src", func(p *sim.Proc) {
		p.Sleep(5 * time.Millisecond)
		r.na.Transmit(frameType(0x0202, 22))
		r.na.Transmit(frameType(0x0101, 11))
	})
	r.s.Run(0)
	if len(got1) == 0 || got1[4] != 11 {
		t.Fatalf("client1 got %v", got1)
	}
	if len(got2) == 0 || got2[4] != 22 {
		t.Fatalf("client2 got %v", got2)
	}
	if d.Forwarded != 2 {
		t.Fatalf("forwarded = %d", d.Forwarded)
	}
	if d.seg == nil || d.seg.Stats.BytesOut == 0 {
		t.Fatalf("forwarding arena unused")
	}
}

func TestSharedDemuxCopiesLessThanPipes(t *testing.T) {
	// The ablation the subsystem exists for: the shared-memory
	// forwarding path must move strictly fewer bytes across the
	// kernel/user boundary per packet than the pipe path — only
	// 12-byte descriptors and the wakeup syscalls remain.  (For
	// frames smaller than a descriptor the pipe path genuinely wins;
	// use realistic sizes.)
	const packets = 10
	frame := ethersim.Ether3Mb.Encode(2, 1, 0x0101, make([]byte, 400))
	run := func(shared bool) vtime.Counters {
		r := newRig()
		d := New(r.db, Config{Shared: shared, Batch: !shared})
		c := d.Register(typePred(0x0101))
		r.s.Spawn(r.hb, "demux", func(p *sim.Proc) {
			d.Run(p, filter.Filter{}, 50*time.Millisecond)
		})
		r.s.Spawn(r.hb, "dst", func(p *sim.Proc) {
			for i := 0; i < packets; i++ {
				c.Recv(p)
			}
		})
		r.s.Spawn(r.ha, "src", func(p *sim.Proc) {
			p.Sleep(5 * time.Millisecond)
			for i := 0; i < packets; i++ {
				r.na.Transmit(frame)
				p.Sleep(3 * time.Millisecond)
			}
		})
		r.s.Run(0)
		return r.hb.Counters
	}

	piped := run(false)
	shared := run(true)
	if shared.BytesCopied >= piped.BytesCopied {
		t.Errorf("shared path copied %d bytes, pipes %d: want strictly fewer",
			shared.BytesCopied, piped.BytesCopied)
	}
	if shared.BytesMapped == 0 {
		t.Errorf("shared path mapped no bytes")
	}
	// Descriptors still flow down the pipes: 12 bytes per packet plus
	// the filter-bind copies is all that should remain.
	if shared.BytesCopied > piped.BytesCopied/2 {
		t.Errorf("shared path still copies %d of the pipe path's %d bytes",
			shared.BytesCopied, piped.BytesCopied)
	}
}
