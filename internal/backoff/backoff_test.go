package backoff

import (
	"testing"
	"time"
)

func TestDelayDoublesAndCaps(t *testing.T) {
	p := Policy{Base: 50 * time.Millisecond, Cap: 400 * time.Millisecond}
	want := []time.Duration{
		50 * time.Millisecond,  // attempt 0: base
		100 * time.Millisecond, // attempt 1
		200 * time.Millisecond, // attempt 2
		400 * time.Millisecond, // attempt 3: hits cap exactly
		400 * time.Millisecond, // attempt 4: capped
		400 * time.Millisecond, // attempt 5: capped
	}
	for i, w := range want {
		if got := p.Delay(i); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i, got, w)
		}
	}
}

func TestDelayNoCap(t *testing.T) {
	p := Policy{Base: time.Millisecond}
	if got := p.Delay(10); got != 1024*time.Millisecond {
		t.Errorf("Delay(10) = %v, want 1024ms", got)
	}
}

func TestDelayOverflowSafe(t *testing.T) {
	p := Policy{Base: time.Hour}
	if got := p.Delay(1000); got <= 0 {
		t.Errorf("Delay(1000) = %v, want positive", got)
	}
	capped := Policy{Base: time.Hour, Cap: 2 * time.Hour}
	if got := capped.Delay(1000); got != 2*time.Hour {
		t.Errorf("capped Delay(1000) = %v, want 2h", got)
	}
}

func TestDelayNegativeAttempt(t *testing.T) {
	p := Policy{Base: 5 * time.Millisecond, Cap: time.Second}
	if got := p.Delay(-3); got != 5*time.Millisecond {
		t.Errorf("Delay(-3) = %v, want base", got)
	}
}

func TestDelayIsDeterministic(t *testing.T) {
	p := Policy{Base: 7 * time.Millisecond, Cap: 100 * time.Millisecond}
	for i := 0; i < 20; i++ {
		if p.Delay(i) != p.Delay(i) {
			t.Fatalf("Delay(%d) not stable", i)
		}
	}
}
