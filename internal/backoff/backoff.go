// Package backoff provides the capped exponential retry schedule
// shared by every retrying protocol in the repository (BSP, EFTP, the
// name service, the RARP client, VMTP).
//
// The schedule is deliberately jitter-free: the simulation is a
// deterministic discrete-event system, and reproducibility of a run
// from its seed matters more than the collision-avoidance jitter buys
// on a real network.  Determinism of retries is what lets the chaos
// soak suite assert bit-identical trace streams.
package backoff

import "time"

// Policy is a capped exponential backoff schedule: attempt n waits
// Base<<n, never exceeding Cap.
type Policy struct {
	Base time.Duration // delay before the first retry (attempt 0)
	Cap  time.Duration // upper bound; zero means no cap
}

// Delay returns the wait before retry number attempt (0-based).  The
// doubling is overflow-safe: once the shifted value would exceed Cap
// (or overflow), Cap is returned.
func (p Policy) Delay(attempt int) time.Duration {
	if attempt < 0 {
		attempt = 0
	}
	d := p.Base
	for i := 0; i < attempt; i++ {
		if p.Cap > 0 && d >= p.Cap {
			return p.Cap
		}
		if d > 1<<61 { // doubling again would overflow
			break
		}
		d *= 2
	}
	if p.Cap > 0 && d > p.Cap {
		return p.Cap
	}
	return d
}
