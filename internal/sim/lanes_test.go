package sim

import (
	"testing"
	"time"

	"repro/internal/vtime"
)

func TestKernelLanesRunInParallel(t *testing.T) {
	// Four lanes each charged 10ms overlap in virtual time: the whole
	// batch finishes at 10ms, not 40ms, while KernelTime accounts all
	// 40ms of CPU — that is the parallel-kernel-thread model.
	s := New(vtime.Costs{})
	h := s.NewHost("a")
	h.SetKernelLanes(4)
	done := 0
	for q := 0; q < 4; q++ {
		h.RunKernelOn(q, "driver", ms(10), func() { done++ })
	}
	if end := s.Run(0); end != ms(10) {
		t.Fatalf("end = %v, want 10ms", end)
	}
	if done != 4 {
		t.Fatalf("completions = %d, want 4", done)
	}
	if h.KernelTime["driver"] != ms(40) {
		t.Fatalf("driver time = %v, want 40ms", h.KernelTime["driver"])
	}
	if h.Counters.KernelEntries != 4 {
		t.Fatalf("kernel entries = %d, want 4", h.Counters.KernelEntries)
	}
}

func TestLaneSerializesItsOwnQueue(t *testing.T) {
	s := New(vtime.Costs{})
	h := s.NewHost("a")
	h.SetKernelLanes(2)
	var order []int
	h.RunKernelOn(0, "driver", ms(10), func() { order = append(order, 1) })
	h.RunKernelOn(0, "driver", ms(10), func() { order = append(order, 2) })
	if end := s.Run(0); end != ms(20) {
		t.Fatalf("end = %v, want 20ms: one lane is a serial server", end)
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v", order)
	}
}

func TestRunKernelOnFallsBackToMainCPU(t *testing.T) {
	// Lane -1 (and any unconfigured lane) must behave exactly like
	// RunKernel: serialized on the single CPU.
	s := New(vtime.Costs{})
	h := s.NewHost("a")
	h.RunKernelOn(-1, "driver", ms(10), nil)
	h.RunKernelOn(0, "driver", ms(10), nil) // no lanes configured
	if end := s.Run(0); end != ms(20) {
		t.Fatalf("end = %v, want 20ms serialized on the main CPU", end)
	}
}

func TestLanesOverlapMainCPU(t *testing.T) {
	// Lane work runs concurrently with interrupt work on the main
	// CPU; both 10ms charges complete at 10ms.
	s := New(vtime.Costs{})
	h := s.NewHost("a")
	h.SetKernelLanes(1)
	h.RunKernel("pf", ms(10), nil)
	h.RunKernelOn(0, "driver", ms(10), nil)
	if end := s.Run(0); end != ms(10) {
		t.Fatalf("end = %v, want 10ms", end)
	}
	if h.KernelTime["pf"] != ms(10) || h.KernelTime["driver"] != ms(10) {
		t.Fatalf("kernel time = %v", h.KernelTime)
	}
}

func TestCrashLosesLaneWork(t *testing.T) {
	// In-flight and queued lane work is lost on crash, exactly like
	// the main interrupt queue: the completion must not run and no
	// kernel time is accounted for the lost half.
	s := New(vtime.Costs{})
	h := s.NewHost("a")
	h.SetKernelLanes(1)
	ran := false
	h.RunKernelOn(0, "driver", ms(10), func() { ran = true })
	h.RunKernelOn(0, "driver", ms(10), func() { ran = true })
	s.After(ms(5), func() { h.Crash() })
	s.After(ms(30), func() { h.Restart() })
	s.Run(0)
	if ran {
		t.Fatal("lane completion ran despite the crash")
	}
	if h.KernelTime["driver"] != 0 {
		t.Fatalf("driver time = %v after crash, want 0", h.KernelTime["driver"])
	}
	// The lane must be usable again after restart.
	h.RunKernelOn(0, "driver", ms(10), func() { ran = true })
	s.Run(0)
	if !ran {
		t.Fatal("lane dead after restart")
	}
}

func TestPauseStallsLanes(t *testing.T) {
	s := New(vtime.Costs{})
	h := s.NewHost("a")
	h.SetKernelLanes(1)
	var at time.Duration
	h.Pause()
	h.RunKernelOn(0, "driver", ms(10), func() { at = s.Now() })
	s.After(ms(7), func() { h.Resume() })
	s.Run(0)
	if at != ms(17) {
		t.Fatalf("lane work finished at %v, want 17ms (paused until 7ms)", at)
	}
}

func TestSetKernelLanesIdempotent(t *testing.T) {
	s := New(vtime.Costs{})
	h := s.NewHost("a")
	h.SetKernelLanes(4)
	h.SetKernelLanes(2)
	if h.KernelLanes() != 4 {
		t.Fatalf("lanes = %d, want 4 (never shrinks)", h.KernelLanes())
	}
}
