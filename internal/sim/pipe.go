package sim

// Pipe models a 4.3BSD pipe carrying discrete messages between two
// processes on one host.  The paper's user-level demultiplexer
// baseline forwards each received packet to its destination process
// through such a pipe (§6.3, §6.5.3); the cost is two extra
// kernel/user copies plus the pipe bookkeeping overhead ("much of
// this is attributable to the poor IPC facilities in 4.3BSD").
type Pipe struct {
	host    *Host
	cap     int
	buf     [][]byte
	readers *WaitQ
	writers *WaitQ
}

// NewPipe creates a pipe on host h buffering at most capacity
// messages.
func (s *Sim) NewPipe(h *Host, capacity int) *Pipe {
	if capacity < 1 {
		capacity = 1
	}
	return &Pipe{host: h, cap: capacity, readers: s.NewWaitQ(), writers: s.NewWaitQ()}
}

// Write sends one message down the pipe: a write system call plus a
// user-to-kernel copy.  It blocks while the pipe is full.
func (p *Proc) Write(pipe *Pipe, msg []byte) {
	p.Syscall("pipe")
	p.ConsumeKernel("pipe", p.sim.costs.Pipe)
	for len(pipe.buf) >= pipe.cap {
		p.Wait(pipe.writers, 0)
	}
	p.CopyIn("pipe", len(msg))
	pipe.buf = append(pipe.buf, append([]byte(nil), msg...))
	pipe.readers.WakeOne(pipe.host)
}

// Read receives one message: a read system call plus a kernel-to-user
// copy.  It blocks while the pipe is empty.
func (p *Proc) Read(pipe *Pipe) []byte {
	p.Syscall("pipe")
	for len(pipe.buf) == 0 {
		p.Wait(pipe.readers, 0)
	}
	msg := pipe.buf[0]
	pipe.buf = pipe.buf[1:]
	p.CopyOut("pipe", len(msg))
	pipe.writers.WakeOne(pipe.host)
	return msg
}

// Len returns the number of buffered messages.
func (pipe *Pipe) Len() int { return len(pipe.buf) }
