package sim

import (
	"time"

	"repro/internal/vtime"
)

// Host is one simulated machine: a uniprocessor CPU shared by kernel
// interrupt work and processes, plus whatever devices other packages
// attach (network interfaces, the packet-filter pseudodevice, the
// kernel-resident protocol stack).
type Host struct {
	sim  *Sim
	name string

	// Counters holds per-host event counts.
	Counters vtime.Counters

	// cpu state: a single processor with interrupt work served
	// ahead of process work, matching the VAX's interrupt priority
	// levels.
	cpuBusy   bool
	intrQ     []*cpuReq
	procQ     []*cpuReq
	lastOwner *Proc // last process granted the CPU

	// KernelTime accumulates kernel-mode CPU by category ("pf",
	// "filter", "ip", "driver", ...) so experiments can reproduce
	// the §6.1 gprof-style breakdown.
	KernelTime map[string]time.Duration
	// UserTime is CPU consumed in user mode by processes.
	UserTime time.Duration
}

type cpuReq struct {
	d    time.Duration
	proc *Proc  // non-nil for process work
	fn   func() // non-nil for kernel work completion
	tag  string
}

// NewHost adds a host to the simulation.
func (s *Sim) NewHost(name string) *Host {
	h := &Host{sim: s, name: name, KernelTime: make(map[string]time.Duration)}
	s.hosts = append(s.hosts, h)
	return h
}

// Name returns the host's name.
func (h *Host) Name() string { return h.name }

// Sim returns the owning simulation.
func (h *Host) Sim() *Sim { return h.sim }

// Costs returns the simulation cost model.
func (h *Host) Costs() vtime.Costs { return h.sim.costs }

// RunKernel charges d of kernel CPU at interrupt level, accounted
// under tag, then calls fn (which may be nil) in event-loop context.
// This is how device drivers and the packet filter consume time: the
// work queues if the CPU is busy and is served before process work.
func (h *Host) RunKernel(tag string, d time.Duration, fn func()) {
	h.intrQ = append(h.intrQ, &cpuReq{d: d, fn: fn, tag: tag})
	h.pump()
}

// requestCPU enqueues process work; proc parks until it completes.
// Called from process context via Proc.Consume and the syscall
// helpers.
func (h *Host) requestCPU(p *Proc, d time.Duration, kernelMode bool, tag string) {
	h.procQ = append(h.procQ, &cpuReq{d: d, proc: p, tag: tag})
	_ = kernelMode
	h.pump()
	p.park()
}

// pump grants the CPU to the next request if it is idle.  Interrupt
// work preempts queued (not running) process work.
func (h *Host) pump() {
	if h.cpuBusy {
		return
	}
	var r *cpuReq
	switch {
	case len(h.intrQ) > 0:
		r = h.intrQ[0]
		h.intrQ = h.intrQ[1:]
	case len(h.procQ) > 0:
		r = h.procQ[0]
		h.procQ = h.procQ[1:]
	default:
		return
	}

	d := r.d
	tr := h.sim.tracer
	if r.proc != nil {
		// Charge a context switch when the CPU passes to a
		// different process (§6.5.2, about 0.4 ms), or when this
		// process blocked on a wait queue since its last grant —
		// suspending and resuming is a switch pair even on an
		// otherwise idle system (§6.5.1).
		if (r.proc != h.lastOwner && h.lastOwner != nil) || r.proc.blocked {
			cs := h.sim.costs.CtxSwitch
			d += cs
			h.Counters.ContextSwitches++
			h.sim.Counters.ContextSwitches++
			h.KernelTime["ctxswitch"] += cs
			if tr != nil {
				tr.CtxSwitch(h.sim.now, h.name, r.proc.name, cs)
				tr.KernelTime(h.name, "ctxswitch", cs)
			}
		}
		r.proc.blocked = false
		h.lastOwner = r.proc
	}
	if tr != nil {
		switch {
		case r.proc != nil && r.tag == "user":
			tr.UserSlice(h.sim.now, h.name, r.proc.name, r.d)
		case r.proc != nil:
			tr.KernelSlice(h.sim.now, h.name, r.tag, r.proc.name, r.d)
		default:
			tr.KernelSlice(h.sim.now, h.name, r.tag, "", r.d)
		}
	}

	h.cpuBusy = true
	h.sim.After(d, func() {
		h.cpuBusy = false
		tr := h.sim.tracer
		if r.proc != nil {
			if r.tag == "user" {
				h.UserTime += r.d
				if tr != nil {
					tr.UserTime(h.name, r.d)
				}
			} else {
				h.KernelTime[r.tag] += r.d
				if tr != nil {
					tr.KernelTime(h.name, r.tag, r.d)
				}
			}
			h.sim.runProc(r.proc)
		} else {
			h.KernelTime[r.tag] += r.d
			if tr != nil {
				tr.KernelTime(h.name, r.tag, r.d)
			}
			if r.fn != nil {
				r.fn()
			}
		}
		h.pump()
	})
}

// KernelTotal sums kernel-mode CPU across categories.
func (h *Host) KernelTotal() time.Duration {
	var t time.Duration
	for _, d := range h.KernelTime {
		t += d
	}
	return t
}

// ResetAccounting zeroes the host's counters and CPU accounting — and
// any attached tracer's metrics for this host, so trace-derived
// profiles stay in exact agreement with KernelTime.  Benchmarks call
// it after warm-up.
func (h *Host) ResetAccounting() {
	h.Counters = vtime.Counters{}
	h.KernelTime = make(map[string]time.Duration)
	h.UserTime = 0
	if tr := h.sim.tracer; tr != nil {
		tr.ResetHost(h.name)
	}
}
