package sim

import (
	"time"

	"repro/internal/clock"
	"repro/internal/vtime"
)

// Host is one simulated machine: a uniprocessor CPU shared by kernel
// interrupt work and processes, plus whatever devices other packages
// attach (network interfaces, the packet-filter pseudodevice, the
// kernel-resident protocol stack).
type Host struct {
	sim  *Sim
	name string

	// Counters holds per-host event counts.
	Counters vtime.Counters

	// cpu state: a single processor with interrupt work served
	// ahead of process work, matching the VAX's interrupt priority
	// levels.
	// Both queues pop from a head index instead of reslicing so the
	// backing arrays are reused once drained; a steady-state receive
	// path enqueues and dequeues without touching the allocator.
	cpuBusy   bool
	intrQ     []*cpuReq
	intrHead  int
	procQ     []*cpuReq
	procHead  int
	lastOwner *Proc // last process granted the CPU

	// Grant completion state: cpuBusy serializes grants, so at most
	// one request is ever in flight and a single pre-bound callback
	// (completeFn) plus a free list of requests keeps the per-grant
	// path allocation-free.
	running    *cpuReq
	runEpoch   uint64
	completeFn func()
	reqFree    []*cpuReq

	// lifecycle state for fault injection: a paused host stops
	// granting its CPU but keeps all queued work; a crashed host
	// additionally loses its interrupt queue and in-flight kernel
	// work (epoch guards the completions already scheduled).
	paused     bool
	down       bool
	epoch      uint64
	crashHooks []func()

	// KernelTime accumulates kernel-mode CPU by category ("pf",
	// "filter", "ip", "driver", ...) so experiments can reproduce
	// the §6.1 gprof-style breakdown.
	KernelTime map[string]time.Duration
	// UserTime is CPU consumed in user mode by processes.
	UserTime time.Duration

	// lanes are the host's parallel kernel threads for multi-queue
	// receive: each lane is an independent serial server for
	// interrupt-level work, running concurrently in virtual time
	// with the main CPU and with the other lanes.  Empty until
	// SetKernelLanes configures them; single-queue hosts never touch
	// this path.
	lanes []*kernelLane
}

// kernelLane is one parallel kernel thread.  It mirrors the main
// CPU's interrupt-queue discipline (head-indexed queue, pre-bound
// completion, epoch-guarded crash semantics) but has no process work
// and no context switches: lanes only ever run RunKernelOn grants.
type kernelLane struct {
	busy       bool
	q          []*cpuReq
	head       int
	running    *cpuReq
	runEpoch   uint64
	completeFn func()
}

type cpuReq struct {
	d    time.Duration
	proc *Proc  // non-nil for process work
	fn   func() // non-nil for kernel work completion
	tag  string
}

// NewHost adds a host to the simulation.
func (s *Sim) NewHost(name string) *Host {
	h := &Host{sim: s, name: name, KernelTime: make(map[string]time.Duration)}
	h.completeFn = h.complete
	s.hosts = append(s.hosts, h)
	return h
}

// getReq takes a request from the free list (or allocates one).
func (h *Host) getReq(d time.Duration, proc *Proc, fn func(), tag string) *cpuReq {
	if n := len(h.reqFree); n > 0 {
		r := h.reqFree[n-1]
		h.reqFree[n-1] = nil
		h.reqFree = h.reqFree[:n-1]
		*r = cpuReq{d: d, proc: proc, fn: fn, tag: tag}
		return r
	}
	return &cpuReq{d: d, proc: proc, fn: fn, tag: tag}
}

// putReq returns a completed request to the free list.
func (h *Host) putReq(r *cpuReq) {
	*r = cpuReq{}
	h.reqFree = append(h.reqFree, r)
}

// Name returns the host's name.
func (h *Host) Name() string { return h.name }

// Sim returns the owning simulation.
func (h *Host) Sim() *Sim { return h.sim }

// Clock returns the host's time source — the owning simulation's
// virtual clock.  Device code timestamps through this interface so the
// identical code hosts live traffic on a clock.Wall.
func (h *Host) Clock() clock.Clock { return h.sim }

// Costs returns the simulation cost model.
func (h *Host) Costs() vtime.Costs { return h.sim.costs }

// RunKernel charges d of kernel CPU at interrupt level, accounted
// under tag, then calls fn (which may be nil) in event-loop context.
// This is how device drivers and the packet filter consume time: the
// work queues if the CPU is busy and is served before process work.
func (h *Host) RunKernel(tag string, d time.Duration, fn func()) {
	h.Counters.KernelEntries++
	h.sim.Counters.KernelEntries++
	h.intrQ = append(h.intrQ, h.getReq(d, nil, fn, tag))
	h.pump()
}

// SetKernelLanes configures n parallel kernel threads on the host
// (idempotent; shrinking is not supported — lanes model hardware
// queues fixed at attach time).  Lane work is charged through
// RunKernelOn; with no lanes configured, or lane < 0, RunKernelOn
// degenerates to RunKernel and the host stays a pure uniprocessor.
func (h *Host) SetKernelLanes(n int) {
	for len(h.lanes) < n {
		l := &kernelLane{}
		l.completeFn = func() { h.laneComplete(l) }
		h.lanes = append(h.lanes, l)
	}
}

// KernelLanes returns the number of configured parallel kernel lanes.
func (h *Host) KernelLanes() int { return len(h.lanes) }

// RunKernelOn charges d of kernel CPU on the given parallel kernel
// lane, accounted under tag, then calls fn (which may be nil) in
// event-loop context.  Lane < 0 — or a lane the host never
// configured — falls back to RunKernel on the main CPU, so
// single-queue callers are byte-identical to the pre-lane world.
// Lane work runs concurrently (in virtual time) with the main CPU:
// this is the §7 "demultiplexing in parallel" model.
func (h *Host) RunKernelOn(lane int, tag string, d time.Duration, fn func()) {
	if lane < 0 || lane >= len(h.lanes) {
		h.RunKernel(tag, d, fn)
		return
	}
	h.Counters.KernelEntries++
	h.sim.Counters.KernelEntries++
	l := h.lanes[lane]
	l.q = append(l.q, h.getReq(d, nil, fn, tag))
	h.lanePump(l)
}

// lanePump grants the lane to its next queued request if idle.
func (h *Host) lanePump(l *kernelLane) {
	if l.busy || h.paused || h.down {
		return
	}
	if l.head >= len(l.q) {
		return
	}
	r := l.q[l.head]
	l.q[l.head] = nil
	l.head++
	if l.head == len(l.q) {
		l.q = l.q[:0]
		l.head = 0
	}
	if tr := h.sim.tracer; tr != nil {
		tr.KernelSlice(h.sim.now, h.name, r.tag, "", r.d)
	}
	l.busy = true
	l.running = r
	l.runEpoch = h.epoch
	h.sim.After(r.d, l.completeFn)
}

// laneComplete finishes the lane's in-flight grant, mirroring
// complete() minus the process half.
func (h *Host) laneComplete(l *kernelLane) {
	l.busy = false
	r := l.running
	l.running = nil
	if h.epoch != l.runEpoch {
		// The host crashed while this lane work was in flight: the
		// kernel half is lost.
		h.putReq(r)
		h.lanePump(l)
		return
	}
	h.KernelTime[r.tag] += r.d
	if tr := h.sim.tracer; tr != nil {
		tr.KernelTime(h.name, r.tag, r.d)
	}
	if r.fn != nil {
		r.fn()
	}
	h.putReq(r)
	h.lanePump(l)
}

// requestCPU enqueues process work; proc parks until it completes.
// Called from process context via Proc.Consume and the syscall
// helpers.
func (h *Host) requestCPU(p *Proc, d time.Duration, kernelMode bool, tag string) {
	h.procQ = append(h.procQ, h.getReq(d, p, nil, tag))
	_ = kernelMode
	h.pump()
	p.park()
}

// Pause stalls the host's CPU: no new work is granted until Resume,
// but queued and in-flight work is preserved — the model of a machine
// that stops scheduling (heavy GC, a debugger, a hiccup) without
// losing state.  Its NIC input queue fills and overflows naturally.
func (h *Host) Pause() { h.paused = true }

// Resume restarts a paused host's CPU.
func (h *Host) Resume() {
	h.paused = false
	if !h.down {
		h.pump()
		for _, l := range h.lanes {
			h.lanePump(l)
		}
	}
}

// Crash takes the host down: pending interrupt work (and the kernel
// halves of in-flight completions) is lost, and registered crash hooks
// run so attached devices can flush their state — the packet filter
// closes its ports, which is what forces user code to re-bind filters
// on recovery.  Parked processes are NOT destroyed: their queued CPU
// requests survive and are served after Restart, modeling processes
// that come back with the machine.
func (h *Host) Crash() {
	h.down = true
	h.epoch++
	for i := h.intrHead; i < len(h.intrQ); i++ {
		h.putReq(h.intrQ[i])
		h.intrQ[i] = nil
	}
	h.intrQ = h.intrQ[:0]
	h.intrHead = 0
	for _, l := range h.lanes {
		for i := l.head; i < len(l.q); i++ {
			h.putReq(l.q[i])
			l.q[i] = nil
		}
		l.q = l.q[:0]
		l.head = 0
	}
	for _, fn := range h.crashHooks {
		fn()
	}
}

// Restart brings a crashed (or paused) host back up.
func (h *Host) Restart() {
	h.down = false
	h.paused = false
	h.pump()
	for _, l := range h.lanes {
		h.lanePump(l)
	}
}

// Down reports whether the host is crashed (not merely paused).
// Devices consult it to discard I/O addressed to a dead machine.
func (h *Host) Down() bool { return h.down }

// OnCrash registers fn to run (in event-loop context) whenever the
// host crashes.  Devices use it to model state lost with the machine.
func (h *Host) OnCrash(fn func()) { h.crashHooks = append(h.crashHooks, fn) }

// pump grants the CPU to the next request if it is idle.  Interrupt
// work preempts queued (not running) process work.
func (h *Host) pump() {
	if h.cpuBusy || h.paused || h.down {
		return
	}
	var r *cpuReq
	switch {
	case h.intrHead < len(h.intrQ):
		r = h.intrQ[h.intrHead]
		h.intrQ[h.intrHead] = nil
		h.intrHead++
		if h.intrHead == len(h.intrQ) {
			h.intrQ = h.intrQ[:0]
			h.intrHead = 0
		}
	case h.procHead < len(h.procQ):
		r = h.procQ[h.procHead]
		h.procQ[h.procHead] = nil
		h.procHead++
		if h.procHead == len(h.procQ) {
			h.procQ = h.procQ[:0]
			h.procHead = 0
		}
	default:
		return
	}

	d := r.d
	tr := h.sim.tracer
	if r.proc != nil {
		// Charge a context switch when the CPU passes to a
		// different process (§6.5.2, about 0.4 ms), or when this
		// process blocked on a wait queue since its last grant —
		// suspending and resuming is a switch pair even on an
		// otherwise idle system (§6.5.1).
		if (r.proc != h.lastOwner && h.lastOwner != nil) || r.proc.blocked {
			cs := h.sim.costs.CtxSwitch
			d += cs
			h.Counters.ContextSwitches++
			h.sim.Counters.ContextSwitches++
			h.KernelTime["ctxswitch"] += cs
			if tr != nil {
				tr.CtxSwitch(h.sim.now, h.name, r.proc.name, cs)
				tr.KernelTime(h.name, "ctxswitch", cs)
			}
		}
		r.proc.blocked = false
		h.lastOwner = r.proc
	}
	if tr != nil {
		switch {
		case r.proc != nil && r.tag == "user":
			tr.UserSlice(h.sim.now, h.name, r.proc.name, r.d)
		case r.proc != nil:
			tr.KernelSlice(h.sim.now, h.name, r.tag, r.proc.name, r.d)
		default:
			tr.KernelSlice(h.sim.now, h.name, r.tag, "", r.d)
		}
	}

	h.cpuBusy = true
	h.running = r
	h.runEpoch = h.epoch
	h.sim.After(d, h.completeFn)
}

// complete finishes the in-flight CPU grant.  It is scheduled by pump
// through a single pre-bound callback; cpuBusy guarantees at most one
// grant is ever outstanding, so h.running is unambiguous.
func (h *Host) complete() {
	h.cpuBusy = false
	r := h.running
	h.running = nil
	if h.epoch != h.runEpoch {
		// The host crashed while this work was in flight: the
		// kernel half is lost, but a process is resumed so its
		// goroutine survives the crash (it will queue for CPU
		// again and run after Restart).
		if r.proc != nil {
			h.sim.runProc(r.proc)
		}
		h.putReq(r)
		h.pump()
		return
	}
	tr := h.sim.tracer
	if r.proc != nil {
		if r.tag == "user" {
			h.UserTime += r.d
			if tr != nil {
				tr.UserTime(h.name, r.d)
			}
		} else {
			h.KernelTime[r.tag] += r.d
			if tr != nil {
				tr.KernelTime(h.name, r.tag, r.d)
			}
		}
		h.sim.runProc(r.proc)
	} else {
		h.KernelTime[r.tag] += r.d
		if tr != nil {
			tr.KernelTime(h.name, r.tag, r.d)
		}
		if r.fn != nil {
			r.fn()
		}
	}
	h.putReq(r)
	h.pump()
}

// KernelTotal sums kernel-mode CPU across categories.
func (h *Host) KernelTotal() time.Duration {
	var t time.Duration
	for _, d := range h.KernelTime {
		t += d
	}
	return t
}

// ResetAccounting zeroes the host's counters and CPU accounting — and
// any attached tracer's metrics for this host, so trace-derived
// profiles stay in exact agreement with KernelTime.  Benchmarks call
// it after warm-up.
func (h *Host) ResetAccounting() {
	h.Counters = vtime.Counters{}
	h.KernelTime = make(map[string]time.Duration)
	h.UserTime = 0
	if tr := h.sim.tracer; tr != nil {
		tr.ResetHost(h.name)
	}
}
