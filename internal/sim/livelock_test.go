package sim

import (
	"testing"
	"time"

	"repro/internal/vtime"
)

// TestReceiveLivelock documents a real phenomenon the simulator
// reproduces: interrupt-level work is served before process work, so a
// host flooded with kernel work starves its processes — the
// receive-livelock problem Mogul later studied directly ("Eliminating
// Receive Livelock in an Interrupt-Driven Kernel", 1996).  Here a
// stream of 1 ms interrupt jobs arriving every 0.5 ms prevents a
// process from finishing a 5 ms computation until the storm ends.
func TestReceiveLivelock(t *testing.T) {
	s := New(vtime.Costs{})
	h := s.NewHost("victim")
	var done time.Duration
	s.Spawn(h, "worker", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Consume(time.Millisecond)
		}
		done = p.Now()
	})
	// Interrupt storm: 100 jobs of 1 ms each, arriving every 0.5 ms
	// starting immediately.
	for i := 0; i < 100; i++ {
		s.At(time.Duration(i)*500*time.Microsecond, func() {
			h.RunKernel("driver", time.Millisecond, nil)
		})
	}
	s.Run(0)
	// The storm occupies the CPU for ~100 ms; the process cannot
	// complete inside it.
	if done < 100*time.Millisecond {
		t.Fatalf("worker finished at %v, inside the interrupt storm", done)
	}
}

func TestEventCancel(t *testing.T) {
	s := New(vtime.Costs{})
	fired := false
	e := s.After(time.Millisecond, func() { fired = true })
	e2 := s.After(2*time.Millisecond, func() {})
	_ = e2
	// Cancel via the WaitQ timeout path: Wait that is woken cancels
	// its timer.
	h := s.NewHost("h")
	q := s.NewWaitQ()
	woken := false
	s.Spawn(h, "w", func(p *Proc) {
		woken = p.Wait(q, 10*time.Millisecond)
	})
	s.After(500*time.Microsecond, func() { q.WakeOne(h) })
	s.Run(0)
	if !fired || !woken {
		t.Fatalf("fired=%v woken=%v", fired, woken)
	}
	// The canceled wait timeout must not have produced a second
	// wakeup; clock stops at the last real event.
	if s.Now() > 10*time.Millisecond {
		t.Fatalf("clock ran to %v: canceled timer still acted", s.Now())
	}
	_ = e
}

func TestYieldInterleaves(t *testing.T) {
	s := New(vtime.Costs{})
	h := s.NewHost("h")
	var order []string
	s.Spawn(h, "a", func(p *Proc) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	s.Spawn(h, "b", func(p *Proc) {
		order = append(order, "b1")
		p.Yield()
		order = append(order, "b2")
	})
	s.Run(0)
	want := []string{"a1", "b1", "a2", "b2"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestRunForAdvancesPartially(t *testing.T) {
	s := New(vtime.Costs{})
	hits := 0
	for i := 1; i <= 10; i++ {
		s.After(time.Duration(i)*time.Millisecond, func() { hits++ })
	}
	s.RunFor(5 * time.Millisecond)
	if hits != 5 {
		t.Fatalf("hits = %d after 5ms", hits)
	}
	if s.Now() != 5*time.Millisecond {
		t.Fatalf("clock = %v", s.Now())
	}
	s.Run(0)
	if hits != 10 {
		t.Fatalf("hits = %d at end", hits)
	}
}

func TestResetAccounting(t *testing.T) {
	s := New(vtime.DefaultCosts())
	h := s.NewHost("h")
	s.Spawn(h, "p", func(p *Proc) {
		p.Syscall("x")
		p.Consume(time.Millisecond)
	})
	s.Run(0)
	if h.Counters.Syscalls == 0 || h.UserTime == 0 || h.KernelTotal() == 0 {
		t.Fatal("no accounting recorded")
	}
	h.ResetAccounting()
	if h.Counters.Syscalls != 0 || h.UserTime != 0 || h.KernelTotal() != 0 {
		t.Fatal("reset left residue")
	}
}

func TestBlockedResumeChargesSwitch(t *testing.T) {
	// A single process that blocks and resumes pays a context
	// switch even with no other process on the host (§6.5.1: once
	// the receiver suspends, resuming it is a switch).
	s := New(vtime.DefaultCosts())
	h := s.NewHost("h")
	q := s.NewWaitQ()
	s.Spawn(h, "p", func(p *Proc) {
		p.Consume(time.Millisecond) // no switch: first grant
		p.Wait(q, 0)
		p.Consume(time.Millisecond) // switch: resumed after blocking
	})
	s.After(5*time.Millisecond, func() { q.WakeOne(h) })
	s.Run(0)
	if h.Counters.ContextSwitches != 1 {
		t.Fatalf("context switches = %d, want exactly 1", h.Counters.ContextSwitches)
	}
}
