package sim

import "time"

// WaitQ is a kernel wait queue (the moral equivalent of 4.3BSD's
// sleep/wakeup channels).  Processes block on it with Wait; kernel or
// process code unblocks them with WakeOne/WakeAll.
type WaitQ struct {
	sim     *Sim
	waiters []*waiter
}

type waiter struct {
	proc    *Proc
	woken   bool
	timeout *event
	tgen    uint64 // generation of timeout when armed (events are pooled)
}

// NewWaitQ creates a wait queue.
func (s *Sim) NewWaitQ() *WaitQ { return &WaitQ{sim: s} }

// Wait blocks the calling process until a wakeup or until timeout
// elapses; timeout <= 0 means wait indefinitely.  It reports whether
// the process was woken (false on timeout).
func (p *Proc) Wait(q *WaitQ, timeout time.Duration) bool {
	p.sim.assertProc("Wait")
	w := &waiter{proc: p}
	p.blocked = true
	q.waiters = append(q.waiters, w)
	if timeout > 0 {
		w.timeout = p.sim.After(timeout, func() {
			if w.woken {
				return
			}
			q.remove(w)
			p.sim.runProc(p)
		})
		w.tgen = w.timeout.gen
	}
	p.park()
	// A wakeup that raced with the timeout may resume us after the
	// timeout event fired and was recycled; only cancel our own
	// generation.
	if w.woken && w.timeout != nil && w.timeout.gen == w.tgen {
		w.timeout.cancel()
	}
	return w.woken
}

func (q *WaitQ) remove(w *waiter) {
	for i, x := range q.waiters {
		if x == w {
			q.waiters = append(q.waiters[:i], q.waiters[i+1:]...)
			return
		}
	}
}

// WakeOne unblocks the longest-waiting process, if any, charging the
// scheduler's wakeup cost to h.  It reports whether a process was
// woken.  Safe from any context.
func (q *WaitQ) WakeOne(h *Host) bool {
	if len(q.waiters) == 0 {
		return false
	}
	w := q.waiters[0]
	q.waiters = q.waiters[1:]
	q.wake(h, w)
	return true
}

// WakeAll unblocks every waiting process.
func (q *WaitQ) WakeAll(h *Host) {
	ws := q.waiters
	q.waiters = nil
	for _, w := range ws {
		q.wake(h, w)
	}
}

func (q *WaitQ) wake(h *Host, w *waiter) {
	w.woken = true
	h.Counters.Wakeups++
	q.sim.Counters.Wakeups++
	if tr := q.sim.tracer; tr != nil {
		tr.Wakeup(q.sim.now, h.name)
	}
	// The woken process becomes runnable after the scheduler's
	// wakeup cost; the context switch itself is charged when the
	// CPU actually passes to it.
	q.sim.After(q.sim.costs.Wakeup, func() { q.sim.runProc(w.proc) })
}

// Len returns the number of blocked processes.
func (q *WaitQ) Len() int { return len(q.waiters) }
