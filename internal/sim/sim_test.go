package sim

import (
	"testing"
	"time"

	"repro/internal/vtime"
)

func ms(n float64) time.Duration { return time.Duration(n * float64(time.Millisecond)) }

func TestEventOrdering(t *testing.T) {
	s := New(vtime.Costs{})
	var order []int
	s.After(2*time.Millisecond, func() { order = append(order, 2) })
	s.After(1*time.Millisecond, func() { order = append(order, 1) })
	s.After(1*time.Millisecond, func() { order = append(order, 11) }) // same time: FIFO
	s.After(3*time.Millisecond, func() { order = append(order, 3) })
	end := s.Run(0)
	if end != 3*time.Millisecond {
		t.Errorf("end = %v", end)
	}
	want := []int{1, 11, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestRunLimit(t *testing.T) {
	s := New(vtime.Costs{})
	fired := false
	s.After(10*time.Millisecond, func() { fired = true })
	s.Run(5 * time.Millisecond)
	if fired {
		t.Fatal("event beyond limit fired")
	}
	if s.Now() != 5*time.Millisecond {
		t.Fatalf("clock = %v, want 5ms", s.Now())
	}
	s.Run(0)
	if !fired {
		t.Fatal("event never fired")
	}
}

func TestProcessLifecycleAndSleep(t *testing.T) {
	s := New(vtime.Costs{})
	h := s.NewHost("a")
	var trace []string
	s.Spawn(h, "p1", func(p *Proc) {
		trace = append(trace, "start")
		p.Sleep(5 * time.Millisecond)
		trace = append(trace, "woke")
	})
	s.Run(0)
	if len(trace) != 2 || trace[0] != "start" || trace[1] != "woke" {
		t.Fatalf("trace = %v", trace)
	}
	if s.Now() != 5*time.Millisecond {
		t.Fatalf("clock = %v", s.Now())
	}
}

func TestConsumeSerializesOnOneCPU(t *testing.T) {
	// Two processes each consuming 10ms on one host must take 20ms
	// of virtual time plus one context switch between them.
	costs := vtime.Costs{CtxSwitch: ms(0.4)}
	s := New(costs)
	h := s.NewHost("a")
	var done []string
	s.Spawn(h, "p1", func(p *Proc) { p.Consume(ms(10)); done = append(done, "p1") })
	s.Spawn(h, "p2", func(p *Proc) { p.Consume(ms(10)); done = append(done, "p2") })
	end := s.Run(0)
	if want := ms(20.4); end != want {
		t.Fatalf("end = %v, want %v", end, want)
	}
	if h.Counters.ContextSwitches != 1 {
		t.Fatalf("context switches = %d, want 1", h.Counters.ContextSwitches)
	}
	if len(done) != 2 || done[0] != "p1" || done[1] != "p2" {
		t.Fatalf("done = %v", done)
	}
}

func TestTwoHostsRunInParallel(t *testing.T) {
	// The same work on two hosts overlaps: total elapsed 10ms.
	s := New(vtime.Costs{})
	h1, h2 := s.NewHost("a"), s.NewHost("b")
	s.Spawn(h1, "p1", func(p *Proc) { p.Consume(ms(10)) })
	s.Spawn(h2, "p2", func(p *Proc) { p.Consume(ms(10)) })
	if end := s.Run(0); end != ms(10) {
		t.Fatalf("end = %v, want 10ms", end)
	}
}

func TestInterruptWorkPreemptsQueuedProcessWork(t *testing.T) {
	s := New(vtime.Costs{})
	h := s.NewHost("a")
	var order []string
	s.Spawn(h, "p", func(p *Proc) {
		p.Consume(ms(1))
		order = append(order, "proc1")
		p.Consume(ms(1))
		order = append(order, "proc2")
	})
	// Interrupt work arriving while the CPU is busy runs before the
	// process's second quantum.
	s.After(ms(0.5), func() {
		h.RunKernel("driver", ms(2), func() { order = append(order, "intr") })
	})
	s.Run(0)
	want := []string{"proc1", "intr", "proc2"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if h.KernelTime["driver"] != ms(2) {
		t.Errorf("driver time = %v", h.KernelTime["driver"])
	}
	if h.UserTime != ms(2) {
		t.Errorf("user time = %v", h.UserTime)
	}
}

func TestNoContextSwitchForSameProcess(t *testing.T) {
	// One process doing repeated kernel entries never context
	// switches (figure 2-2's best case: "the receiving process will
	// never be suspended, and no context switches take place").
	s := New(vtime.DefaultCosts())
	h := s.NewHost("a")
	s.Spawn(h, "p", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Syscall("pf")
			p.CopyOut("pf", 128)
		}
	})
	s.Run(0)
	if h.Counters.ContextSwitches != 0 {
		t.Fatalf("context switches = %d, want 0", h.Counters.ContextSwitches)
	}
	if h.Counters.Syscalls != 10 || h.Counters.Copies != 10 {
		t.Fatalf("syscalls=%d copies=%d", h.Counters.Syscalls, h.Counters.Copies)
	}
	if h.Counters.DomainCrossings != 20 {
		t.Fatalf("domain crossings = %d, want 20", h.Counters.DomainCrossings)
	}
}

func TestSyscallAndCopyCosts(t *testing.T) {
	costs := vtime.Costs{Syscall: ms(0.15), CopyFixed: ms(0.37), CopyPerKB: ms(1)}
	s := New(costs)
	h := s.NewHost("a")
	s.Spawn(h, "p", func(p *Proc) {
		p.Syscall("x")
		p.CopyOut("x", 1024)
	})
	end := s.Run(0)
	if want := ms(0.15) + ms(0.37) + ms(1); end != want {
		t.Fatalf("end = %v, want %v", end, want)
	}
	if h.Counters.BytesCopied != 1024 {
		t.Fatalf("bytes copied = %d", h.Counters.BytesCopied)
	}
}

func TestWaitWakeOne(t *testing.T) {
	s := New(vtime.Costs{Wakeup: ms(0.05)})
	h := s.NewHost("a")
	q := s.NewWaitQ()
	var got bool
	var wakeTime time.Duration
	s.Spawn(h, "waiter", func(p *Proc) {
		got = p.Wait(q, 0)
		wakeTime = p.Now()
	})
	s.After(ms(3), func() { q.WakeOne(h) })
	s.Run(0)
	if !got {
		t.Fatal("Wait returned false")
	}
	if wakeTime != ms(3.05) {
		t.Fatalf("woke at %v, want 3.05ms", wakeTime)
	}
	if h.Counters.Wakeups != 1 {
		t.Fatalf("wakeups = %d", h.Counters.Wakeups)
	}
}

func TestWaitTimeout(t *testing.T) {
	s := New(vtime.Costs{})
	h := s.NewHost("a")
	q := s.NewWaitQ()
	var got bool
	var at time.Duration
	s.Spawn(h, "waiter", func(p *Proc) {
		got = p.Wait(q, ms(2))
		at = p.Now()
	})
	s.Run(0)
	if got {
		t.Fatal("Wait reported woken on timeout")
	}
	if at != ms(2) {
		t.Fatalf("timed out at %v", at)
	}
	if q.Len() != 0 {
		t.Fatal("waiter left on queue after timeout")
	}
}

func TestWakeAllAndOrder(t *testing.T) {
	s := New(vtime.Costs{})
	h := s.NewHost("a")
	q := s.NewWaitQ()
	var order []string
	for _, name := range []string{"w1", "w2", "w3"} {
		name := name
		s.Spawn(h, name, func(p *Proc) {
			p.Wait(q, 0)
			order = append(order, name)
		})
	}
	s.After(ms(1), func() { q.WakeAll(h) })
	s.Run(0)
	if len(order) != 3 || order[0] != "w1" || order[1] != "w2" || order[2] != "w3" {
		t.Fatalf("order = %v", order)
	}
}

func TestWokenBeforeTimeoutDoesNotTimeout(t *testing.T) {
	s := New(vtime.Costs{})
	h := s.NewHost("a")
	q := s.NewWaitQ()
	rounds := 0
	s.Spawn(h, "w", func(p *Proc) {
		for i := 0; i < 3; i++ {
			if p.Wait(q, ms(10)) {
				rounds++
			}
		}
	})
	s.Spawn(h, "k", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(ms(1))
			q.WakeOne(h)
		}
	})
	s.Run(0)
	if rounds != 3 {
		t.Fatalf("woken rounds = %d, want 3", rounds)
	}
}

func TestPipeTransfersInOrder(t *testing.T) {
	s := New(vtime.DefaultCosts())
	h := s.NewHost("a")
	pipe := s.NewPipe(h, 4)
	var got []byte
	s.Spawn(h, "writer", func(p *Proc) {
		for i := byte(0); i < 10; i++ {
			p.Write(pipe, []byte{i})
		}
	})
	s.Spawn(h, "reader", func(p *Proc) {
		for i := 0; i < 10; i++ {
			m := p.Read(pipe)
			got = append(got, m[0])
		}
	})
	s.Run(0)
	if len(got) != 10 {
		t.Fatalf("got %d messages", len(got))
	}
	for i := range got {
		if got[i] != byte(i) {
			t.Fatalf("out of order: %v", got)
		}
	}
	// Pipe transfer = 2 syscalls + 2 copies per message, and the
	// writer/reader ping-pong forces context switches.
	if h.Counters.Syscalls != 20 || h.Counters.Copies != 20 {
		t.Errorf("syscalls=%d copies=%d", h.Counters.Syscalls, h.Counters.Copies)
	}
	if h.Counters.ContextSwitches == 0 {
		t.Error("expected context switches from pipe ping-pong")
	}
}

func TestPipeBlocksWhenFull(t *testing.T) {
	s := New(vtime.Costs{})
	h := s.NewHost("a")
	pipe := s.NewPipe(h, 1)
	var wrote, read int
	s.Spawn(h, "writer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Write(pipe, []byte{1})
			wrote++
		}
	})
	s.Spawn(h, "reader", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(ms(1))
			p.Read(pipe)
			read++
		}
	})
	s.Run(0)
	if wrote != 5 || read != 5 {
		t.Fatalf("wrote=%d read=%d", wrote, read)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (time.Duration, vtime.Counters) {
		s := New(vtime.DefaultCosts())
		h := s.NewHost("a")
		pipe := s.NewPipe(h, 2)
		q := s.NewWaitQ()
		s.Spawn(h, "w", func(p *Proc) {
			for i := 0; i < 20; i++ {
				p.Write(pipe, make([]byte, 100))
			}
		})
		s.Spawn(h, "r", func(p *Proc) {
			for i := 0; i < 20; i++ {
				p.Read(pipe)
			}
			q.WakeAll(h)
		})
		s.Spawn(h, "idle", func(p *Proc) { p.Wait(q, 0) })
		end := s.Run(0)
		return end, s.Counters
	}
	e1, c1 := run()
	e2, c2 := run()
	if e1 != e2 || c1 != c2 {
		t.Fatalf("nondeterministic: %v/%v vs %v/%v", e1, c1, e2, c2)
	}
}

func TestAssertConsumeOutsideProcPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	s := New(vtime.Costs{})
	h := s.NewHost("a")
	p := &Proc{sim: s, host: h}
	p.Consume(time.Millisecond)
}

func TestCountersSubAdd(t *testing.T) {
	a := vtime.Counters{Syscalls: 5, Copies: 3}
	b := vtime.Counters{Syscalls: 2, Copies: 1}
	d := a.Sub(b)
	if d.Syscalls != 3 || d.Copies != 2 {
		t.Fatalf("sub = %+v", d)
	}
	b.Add(d)
	if b != a {
		t.Fatalf("add mismatch: %+v vs %+v", b, a)
	}
}
