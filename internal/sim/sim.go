// Package sim is a deterministic discrete-event simulation of the
// operating-system substrate the paper's measurements ran on: a set of
// uniprocessor hosts, each with processes, system calls, context
// switches, kernel/user data copies and pipes, all charged virtual
// time from the calibrated cost model in package vtime.
//
// Protocol code in this repository is written in ordinary blocking
// style (read, write, wait); under the hood each simulated process is
// a goroutine that runs in lockstep with the event loop — exactly one
// goroutine (either the event loop or one process) is ever runnable,
// so simulations are fully deterministic and need no locking.
//
// The paper's performance arguments are about counts: how many context
// switches, system calls and copies a received packet costs under each
// demultiplexing scheme (figures 2-1 through 3-5), and how those
// counts translate to time (§6.5).  Hosts and the simulator both
// accumulate vtime.Counters so experiments can report exactly those
// quantities.
package sim

import (
	"container/heap"
	"fmt"
	"time"

	"repro/internal/clock"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// Sim is the virtual-time implementation of the dual-mode clock
// interface: Now is the discrete-event clock and AfterFunc rides the
// event queue, so code written against clock.Clock runs bit-identically
// under simulation and switches to clock.Wall for live mode.
var _ clock.Clock = (*Sim)(nil)

// Sim is one simulation universe: a virtual clock, an event queue and
// any number of hosts.
type Sim struct {
	now    time.Duration
	events eventHeap
	seq    uint64
	costs  vtime.Costs
	hosts  []*Host
	tracer *trace.Tracer

	// Counters aggregates events across all hosts.
	Counters vtime.Counters

	yield   chan struct{} // lockstep handshake with process goroutines
	current *Proc         // process currently executing, nil in event loop
	nprocs  int

	// free recycles fired events so the per-packet hot path (every
	// CPU grant is one sim.After) allocates nothing in steady state.
	free []*event
}

// New creates a simulation with the given cost model.
func New(costs vtime.Costs) *Sim {
	return &Sim{costs: costs, yield: make(chan struct{})}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// Costs returns the cost model in force.
func (s *Sim) Costs() vtime.Costs { return s.costs }

// Hosts returns all hosts in creation order.
func (s *Sim) Hosts() []*Host { return s.hosts }

// SetTracer attaches a tracer (nil detaches).  With no tracer attached
// — the default — instrumentation sites cost a single nil check.
func (s *Sim) SetTracer(t *trace.Tracer) { s.tracer = t }

// Tracer returns the attached tracer, or nil.  Device packages consult
// it at their own instrumentation points.
func (s *Sim) Tracer() *trace.Tracer { return s.tracer }

type event struct {
	when time.Duration
	seq  uint64
	gen  uint64 // bumped on reuse so stale handles cannot cancel a recycled event
	fn   func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// At schedules fn to run in event-loop context at virtual time when
// (clamped to now).  Events at equal times run in scheduling order.
func (s *Sim) At(when time.Duration, fn func()) *event {
	if when < s.now {
		when = s.now
	}
	var e *event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		e.gen++
	} else {
		e = &event{}
	}
	e.when, e.seq, e.fn = when, s.seq, fn
	s.seq++
	heap.Push(&s.events, e)
	return e
}

// After schedules fn to run d from now.
func (s *Sim) After(d time.Duration, fn func()) *event {
	return s.At(s.now+d, fn)
}

// cancel marks an event as a no-op; the heap entry stays until popped.
func (e *event) cancel() { e.fn = nil }

// Timer is a cancellable handle on one scheduled event, for device
// code that schedules deferred work it may later abandon — the NIC's
// interrupt-coalescing timer is the motivating user.  A nil Timer is
// safe to Stop.
type Timer struct {
	e   *event
	gen uint64
}

// NewTimer schedules fn to run in event-loop context d from now and
// returns a handle that can cancel it before it fires.
func (s *Sim) NewTimer(d time.Duration, fn func()) *Timer {
	e := s.After(d, fn)
	return &Timer{e: e, gen: e.gen}
}

// AfterFunc implements clock.Clock over the event queue: fn runs in
// event-loop context d of virtual time from now.  It is NewTimer
// behind the interface, so virtual and wall mode share one timer API.
func (s *Sim) AfterFunc(d time.Duration, fn func()) clock.Timer {
	return s.NewTimer(d, fn)
}

// Clock returns the simulation's virtual clock as the dual-mode
// interface device code is written against.
func (s *Sim) Clock() clock.Clock { return s }

// Stop cancels the timer if it has not fired yet.  Stopping a fired or
// already-stopped timer is a no-op.  The generation check makes Stop
// safe after the underlying event has fired and been recycled for an
// unrelated callback.
func (t *Timer) Stop() {
	if t == nil || t.e == nil {
		return
	}
	if t.e.gen == t.gen {
		t.e.cancel()
	}
	t.e = nil
}

// Run processes events until the queue is empty or the virtual clock
// would pass limit (0 means no limit).  It returns the virtual time at
// which it stopped.  Run must not be called from process context.
func (s *Sim) Run(limit time.Duration) time.Duration {
	s.assertEventLoop("Run")
	for s.events.Len() > 0 {
		e := s.events[0]
		if limit > 0 && e.when > limit {
			s.now = limit
			return s.now
		}
		heap.Pop(&s.events)
		s.now = e.when
		// Recycle before running: fn may schedule new events and is
		// welcome to reuse this one (its gen is bumped on reuse).
		fn := e.fn
		e.fn = nil
		s.free = append(s.free, e)
		if fn != nil {
			fn()
		}
	}
	return s.now
}

// RunFor advances the simulation by d of virtual time.
func (s *Sim) RunFor(d time.Duration) time.Duration { return s.Run(s.now + d) }

func (s *Sim) assertEventLoop(op string) {
	if s.current != nil {
		panic(fmt.Sprintf("sim: %s called from process %q; only event-loop context may do this", op, s.current.name))
	}
}

func (s *Sim) assertProc(op string) *Proc {
	if s.current == nil {
		panic(fmt.Sprintf("sim: %s called outside process context", op))
	}
	return s.current
}

// runProc transfers control to p until it parks or exits.  Event-loop
// context only.
func (s *Sim) runProc(p *Proc) {
	if p.done {
		return
	}
	s.current = p
	p.resume <- struct{}{}
	<-s.yield
	s.current = nil
}

// schedule arranges for p to resume via the event queue; safe from any
// context.
func (s *Sim) schedule(p *Proc) {
	s.At(s.now, func() { s.runProc(p) })
}
