package sim

import (
	"time"
)

// Proc is one simulated user process.  All its methods except Name
// must be called from the process's own goroutine (inside the function
// passed to Spawn).
type Proc struct {
	sim    *Sim
	host   *Host
	name   string
	resume chan struct{}
	done   bool

	// blocked records that the process slept on a wait queue since
	// its last CPU grant; the next grant charges a context switch
	// even if no other process ran meanwhile ("in the best case the
	// receiving process will never be suspended, and no context
	// switches take place" — §6.5.1; once it does suspend, resuming
	// it costs a switch).
	blocked bool
}

// Spawn creates a process on host h running fn.  The process starts
// when the event loop next runs.  Spawn may be called from any
// context.
func (s *Sim) Spawn(h *Host, name string, fn func(p *Proc)) *Proc {
	p := &Proc{sim: s, host: h, name: name, resume: make(chan struct{})}
	s.nprocs++
	go func() {
		<-p.resume
		fn(p)
		p.done = true
		s.nprocs--
		s.yield <- struct{}{}
	}()
	s.schedule(p)
	return p
}

// Name returns the process name.
func (p *Proc) Name() string { return p.name }

// Host returns the host the process runs on.
func (p *Proc) Host() *Host { return p.host }

// Sim returns the owning simulation.
func (p *Proc) Sim() *Sim { return p.sim }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.sim.now }

// park yields to the event loop until something resumes this process.
func (p *Proc) park() {
	if p.sim.current != p {
		panic("sim: park from wrong context")
	}
	p.sim.yield <- struct{}{}
	<-p.resume
}

// Consume charges d of user-mode CPU time, competing with other work
// on this host's processor.
func (p *Proc) Consume(d time.Duration) {
	p.sim.assertProc("Consume")
	p.host.requestCPU(p, d, false, "user")
}

// ConsumeKernel charges d of kernel-mode CPU on behalf of this
// process (the kernel half of a system call), accounted under tag.
func (p *Proc) ConsumeKernel(tag string, d time.Duration) {
	p.sim.assertProc("ConsumeKernel")
	p.host.requestCPU(p, d, true, tag)
}

// Sleep suspends the process for d of virtual time without consuming
// CPU.
func (p *Proc) Sleep(d time.Duration) {
	p.sim.assertProc("Sleep")
	p.sim.After(d, func() { p.sim.runProc(p) })
	p.park()
}

// Yield gives up the processor momentarily (other runnable work at the
// current instant proceeds first).
func (p *Proc) Yield() {
	p.sim.assertProc("Yield")
	p.sim.schedule(p)
	p.park()
}

// Syscall accounts one kernel entry/exit: the fixed trap cost plus the
// bookkeeping counters (one system call, two domain crossings).  The
// work done inside the kernel is charged separately by the caller.
func (p *Proc) Syscall(tag string) {
	p.sim.assertProc("Syscall")
	h := p.host
	h.Counters.Syscalls++
	h.Counters.DomainCrossings += 2
	p.sim.Counters.Syscalls++
	p.sim.Counters.DomainCrossings += 2
	if tr := p.sim.tracer; tr != nil {
		tr.SyscallEnter(p.sim.now, h.name, p.name, tag)
	}
	p.ConsumeKernel(tag, p.sim.costs.Syscall)
	if tr := p.sim.tracer; tr != nil {
		tr.SyscallExit(p.sim.now, h.name, p.name, tag)
	}
}

// CopyIn charges moving n bytes from user space into the kernel.
func (p *Proc) CopyIn(tag string, n int) { p.copy(tag, n) }

// CopyOut charges moving n bytes from the kernel to user space.
func (p *Proc) CopyOut(tag string, n int) { p.copy(tag, n) }

func (p *Proc) copy(tag string, n int) {
	p.sim.assertProc("Copy")
	h := p.host
	h.Counters.Copies++
	h.Counters.BytesCopied += uint64(n)
	p.sim.Counters.Copies++
	p.sim.Counters.BytesCopied += uint64(n)
	if tr := p.sim.tracer; tr != nil {
		tr.Copy(p.sim.now, h.name, p.name, tag, n)
	}
	p.ConsumeKernel(tag, p.sim.costs.Copy(n))
}

// Mapped records n bytes delivered through a shared-memory mapping
// without crossing the kernel/user boundary: the counterfactual the
// paper could not build ("Unix does not support memory sharing", §2).
// No copy time is charged — that is the point — but the bytes are
// accounted so experiments can report bytes-mapped against
// bytes-copied.
func (p *Proc) Mapped(tag string, n int) {
	p.sim.assertProc("Mapped")
	h := p.host
	h.Counters.BytesMapped += uint64(n)
	p.sim.Counters.BytesMapped += uint64(n)
	if tr := p.sim.tracer; tr != nil {
		tr.Mapped(p.sim.now, h.name, p.name, tag, n)
	}
}

// Exit marks the process finished; it must be the last statement the
// process executes (it simply documents intent — returning from the
// Spawn function has the same effect).
func (p *Proc) Exit() {}

// Spin runs a CPU-bound loop forever in quanta of q; experiments use
// it to model "other active processes" on a timesharing system
// (§6.5.1: "If the system has other active processes, an additional
// context switch to an unrelated process may occur").
func (p *Proc) Spin(q time.Duration) {
	for {
		p.Consume(q)
	}
}
