// Package clock abstracts the repository's notion of time behind a
// dual-mode interface, so the same device, filter and governor code
// can run in two worlds:
//
//   - Virtual mode: *sim.Sim implements Clock.  Now is the
//     deterministic discrete-event clock, AfterFunc rides the event
//     queue, and callbacks run in event-loop context — exactly one
//     goroutine is ever runnable, so no locking is needed and every
//     run is bit-identical.
//
//   - Live mode: Wall implements Clock over the machine's real clock.
//     Now is wall time elapsed since the Wall was created, AfterFunc
//     is time.AfterFunc, and callbacks run concurrently on their own
//     goroutines — callers must do their own locking.
//
// The contract deliberately exposes time as a time.Duration since an
// epoch rather than a time.Time: virtual time has no calendar, and
// every consumer in this repository (timestamps, token-bucket refills,
// quarantine windows, queue-residency accounting) only ever subtracts
// two readings.  Code under internal/ must obtain time exclusively
// through this interface — a direct time.Now/time.Sleep/time.After in
// a simulation code path would silently break determinism, which is
// why lint_test.go greps the tree for exactly that class of leak.
package clock

import "time"

// Timer is a cancellable handle on one scheduled callback.
type Timer interface {
	// Stop cancels the timer if it has not fired yet.  Stopping a
	// fired or already-stopped timer is a no-op.
	Stop()
}

// Clock is the dual-mode time source.
type Clock interface {
	// Now returns the time elapsed since the clock's epoch.  Virtual
	// clocks return the simulation clock; Wall returns real elapsed
	// time.  Readings are monotonic and only meaningful relative to
	// other readings from the same Clock.
	Now() time.Duration

	// AfterFunc schedules fn to run once, d from now, and returns a
	// handle that can cancel it before it fires.  In virtual mode fn
	// runs in event-loop context (single-threaded, deterministic); in
	// live mode fn runs on its own goroutine and must synchronize
	// with the code it touches.
	AfterFunc(d time.Duration, fn func()) Timer
}

// Wall is the live-mode Clock: real time measured from the moment the
// Wall was created.  It is safe for concurrent use.
type Wall struct {
	epoch time.Time
}

// NewWall creates a wall clock whose epoch is now.
func NewWall() *Wall { return &Wall{epoch: time.Now()} }

// Now returns real time elapsed since the epoch.
func (w *Wall) Now() time.Duration { return time.Since(w.epoch) }

// AfterFunc schedules fn on the runtime timer heap.  fn runs on its
// own goroutine.
func (w *Wall) AfterFunc(d time.Duration, fn func()) Timer {
	return wallTimer{time.AfterFunc(d, fn)}
}

type wallTimer struct{ t *time.Timer }

// Stop cancels the underlying timer; the callback may already be
// running on its goroutine (time.AfterFunc semantics).
func (t wallTimer) Stop() { t.t.Stop() }
