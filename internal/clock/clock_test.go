package clock

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestWallNowMonotonic(t *testing.T) {
	w := NewWall()
	a := w.Now()
	time.Sleep(2 * time.Millisecond)
	b := w.Now()
	if b <= a {
		t.Fatalf("wall clock did not advance: %v then %v", a, b)
	}
	if a < 0 {
		t.Fatalf("first reading before epoch: %v", a)
	}
}

func TestWallAfterFuncFires(t *testing.T) {
	w := NewWall()
	var fired atomic.Bool
	done := make(chan struct{})
	w.AfterFunc(time.Millisecond, func() {
		fired.Store(true)
		close(done)
	})
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("AfterFunc callback never ran")
	}
	if !fired.Load() {
		t.Fatal("callback ran without setting flag")
	}
}

func TestWallAfterFuncStop(t *testing.T) {
	w := NewWall()
	var fired atomic.Bool
	tm := w.AfterFunc(time.Hour, func() { fired.Store(true) })
	tm.Stop()
	tm.Stop() // double Stop is a no-op
	time.Sleep(5 * time.Millisecond)
	if fired.Load() {
		t.Fatal("stopped timer fired")
	}
}
