package clock

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// wallClockIdents are the package-time identifiers that read or act on
// the machine's real clock.  Any of them in simulation code silently
// breaks determinism (a virtual-time run would observe wall time), so
// everything under internal/ must go through the clock.Clock interface
// instead.  Package clock itself is the one place allowed to touch
// them: it IS the wall-clock implementation.
var wallClockIdents = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
	"Tick":      true,
	"Since":     true,
	"Until":     true,
}

// TestNoWallClockLeaks parses every non-test Go file under internal/
// and fails on any direct use of the time package's wall-clock API
// outside this package.  time.Duration, time.Millisecond and friends
// remain free — only the identifiers that sample or schedule on the
// real clock are fenced.
func TestNoWallClockLeaks(t *testing.T) {
	root := ".." // internal/
	var leaks []string
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			if info.Name() == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		if filepath.Dir(path) == filepath.Join("..", "clock") {
			return nil // the wall-clock implementation itself
		}
		leaks = append(leaks, lintFile(t, path)...)
		return nil
	})
	if err != nil {
		t.Fatalf("walking internal/: %v", err)
	}
	if len(leaks) > 0 {
		t.Errorf("wall-clock leaks in internal/ (route these through clock.Clock):\n  %s",
			strings.Join(leaks, "\n  "))
	}
}

// lintFile returns one "path:line: time.X" string per wall-clock use.
func lintFile(t *testing.T, path string) []string {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		t.Fatalf("parsing %s: %v", path, err)
	}
	// Resolve what the "time" package is imported as in this file.
	timeName := ""
	for _, imp := range f.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != "time" {
			continue
		}
		timeName = "time"
		if imp.Name != nil {
			timeName = imp.Name.Name
		}
	}
	if timeName == "" || timeName == "_" || timeName == "." {
		// No (selector-addressable) time import.  A dot-import of time
		// would defeat the selector check; nothing in this repository
		// dot-imports, and doing so would be its own review problem.
		return nil
	}
	var leaks []string
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || id.Name != timeName || id.Obj != nil {
			// id.Obj != nil: a local variable shadowing the package
			// name, not the package itself.
			return true
		}
		if wallClockIdents[sel.Sel.Name] {
			pos := fset.Position(sel.Pos())
			leaks = append(leaks, fmt.Sprintf("%s:%d: time.%s", path, pos.Line, sel.Sel.Name))
		}
		return true
	})
	return leaks
}
