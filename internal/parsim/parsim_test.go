package parsim

import (
	"bytes"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ethersim"
	"repro/internal/filter"
	"repro/internal/pfdev"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vtime"
)

func TestMapOrderAndCompleteness(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 9} {
		var calls atomic.Int64
		got := Map(25, workers, func(i int) int {
			calls.Add(1)
			return i * i
		})
		if calls.Load() != 25 {
			t.Fatalf("workers=%d: %d calls, want 25", workers, calls.Load())
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	if got := Map(0, 4, func(i int) int { return i }); got != nil {
		t.Fatalf("Map(0) = %v, want nil", got)
	}
}

func TestWorkersDefault(t *testing.T) {
	if got, want := Workers(0), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, want)
	}
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
}

// TestMapActuallyParallel proves trials overlap in real time: two
// trials rendezvous at a barrier that can only be passed if both are in
// flight at once.
func TestMapActuallyParallel(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs >= 2 CPUs")
	}
	var barrier sync.WaitGroup
	barrier.Add(2)
	passed := make(chan struct{})
	go func() {
		barrier.Wait()
		close(passed)
	}()
	Do(2, 2, func(i int) {
		barrier.Done()
		select {
		case <-passed:
		case <-time.After(10 * time.Second):
			t.Errorf("trial %d: rendezvous timeout — trials did not overlap", i)
		}
	})
}

// TestMapPanicLowestTrial pins that a panic in any trial surfaces as
// the lowest-numbered trial's panic, after every other trial has run.
func TestMapPanicLowestTrial(t *testing.T) {
	var calls atomic.Int64
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected re-panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "trial 3 panicked: boom 3") {
			t.Fatalf("panic = %v, want trial 3's", r)
		}
		if calls.Load() != 8 {
			t.Fatalf("%d trials ran before re-panic, want all 8", calls.Load())
		}
	}()
	Map(8, 4, func(i int) int {
		calls.Add(1)
		if i == 3 || i == 6 {
			panic("boom " + string(rune('0'+i)))
		}
		return i
	})
}

// trialRun drives one complete, self-contained simulation universe —
// wire, two hosts, packet-filter device, a paced source and a reading
// sink — and returns a digest of everything observable: final virtual
// time, delivered count, host counters and the metrics snapshot.
func trialRun(seed int) (time.Duration, int, vtime.Counters, []byte) {
	s := sim.New(vtime.DefaultCosts())
	tr := trace.New()
	s.SetTracer(tr)
	net := ethersim.New(s, ethersim.Ether10Mb)
	hA, hB := s.NewHost("A"), s.NewHost("B")
	nicA, nicB := net.Attach(hA, 1), net.Attach(hB, 2)
	dev := pfdev.Attach(nicB, nil, pfdev.Options{})
	received := 0
	s.Spawn(hB, "sink", func(p *sim.Proc) {
		port := dev.Open(p)
		port.SetFilter(p, filter.Filter{Priority: 1, Program: filter.NewBuilder().
			WordEQ(ethersim.Ether10Mb.TypeWord(), 0x0101).MustProgram()})
		port.SetTimeout(p, 100*time.Millisecond)
		for {
			if _, err := port.Read(p); err != nil {
				return
			}
			received++
		}
	})
	s.Spawn(hA, "src", func(p *sim.Proc) {
		p.Sleep(5 * time.Millisecond)
		frame := ethersim.Ether10Mb.Encode(2, 1, 0x0101, make([]byte, 64))
		for i := 0; i < 10+seed%5; i++ {
			nicA.Transmit(frame)
			p.Sleep(time.Duration(1+seed%3) * time.Millisecond)
		}
	})
	end := s.Run(2 * time.Second)
	snap, err := tr.Snapshot().JSON()
	if err != nil {
		panic(err)
	}
	return end, received, hB.Counters, snap
}

// TestParallelTrialsBitIdentical is the package's reason to exist:
// whole-universe trials run under the worker pool must be
// indistinguishable from the same trials run sequentially.
func TestParallelTrialsBitIdentical(t *testing.T) {
	type result struct {
		end      time.Duration
		received int
		counters vtime.Counters
		snap     []byte
	}
	run := func(workers int) []result {
		return Map(8, workers, func(i int) result {
			end, n, c, snap := trialRun(i)
			return result{end, n, c, snap}
		})
	}
	seq := run(1)
	par := run(4)
	for i := range seq {
		if seq[i].end != par[i].end || seq[i].received != par[i].received ||
			seq[i].counters != par[i].counters {
			t.Fatalf("trial %d diverged: seq {%v %d} vs par {%v %d}",
				i, seq[i].end, seq[i].received, par[i].end, par[i].received)
		}
		if !bytes.Equal(seq[i].snap, par[i].snap) {
			t.Fatalf("trial %d: metrics snapshot diverged between sequential and parallel runs", i)
		}
	}
}

// TestTwoSimsConcurrently is the package-level-state audit's regression
// test: two Sims advanced from two plain goroutines (no pool) must not
// interfere — run under -race this catches any shared mutable state
// reachable from concurrent universes.
func TestTwoSimsConcurrently(t *testing.T) {
	var wg sync.WaitGroup
	results := make([]int, 2)
	ends := make([]time.Duration, 2)
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			end, n, _, _ := trialRun(g)
			ends[g], results[g] = end, n
		}()
	}
	wg.Wait()
	for g := 0; g < 2; g++ {
		end, n, _, _ := trialRun(g)
		if end != ends[g] || n != results[g] {
			t.Fatalf("universe %d diverged when run concurrently: got (%v, %d), want (%v, %d)",
				g, ends[g], results[g], end, n)
		}
	}
}
