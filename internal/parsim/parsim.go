// Package parsim runs independent simulation trials across real OS
// threads.  A sim.Sim is fully deterministic and fully isolated — the
// lockstep scheduler means exactly one goroutine per universe is ever
// runnable, every universe has its own clock, event heap, hosts,
// tracer and metrics, and nothing package-level is mutated on the hot
// path — so N trials with disjoint Sims can execute concurrently with
// no locking and bit-identical results.  This package is the worker
// pool that exploits that: multi-seed suites (the chaos soak, the
// equivalence properties, benchmark sweeps) run trials in parallel and
// still collect results in deterministic trial order.
//
// The determinism contract (also documented in DESIGN.md):
//
//   - Each trial builds its OWN Sim (and tracer, and fault plan)
//     inside fn; trials must not share a Sim, Host, Device or Tracer.
//   - fn may use testing.T's goroutine-safe methods (Error, Errorf,
//     Logf) but not FailNow/Fatalf, which must be called from the test
//     goroutine after Map returns.
//   - Results are delivered in trial order regardless of completion
//     order, so output built from them is byte-identical to a
//     sequential run.
package parsim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: values <= 0 select
// GOMAXPROCS (one worker per schedulable CPU), anything else is taken
// as given.
func Workers(requested int) int {
	if requested <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

// trialPanic preserves a panic raised inside a trial so it can be
// re-raised deterministically (lowest trial first) on the caller's
// goroutine.
type trialPanic struct {
	val   any
	stack []byte
}

// Map runs fn(0) .. fn(n-1), each trial exactly once, across a pool of
// workers (Workers(workers) of them, capped at n) and returns the
// results indexed by trial.  With workers == 1 it runs inline with no
// goroutines at all, so a sequential run is trivially the reference
// behavior.  If any trial panics, every remaining trial still runs,
// and Map then re-panics with the lowest-numbered trial's panic —
// deterministic regardless of scheduling.
func Map[T any](n, workers int, fn func(trial int) T) []T {
	if n <= 0 {
		return nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	results := make([]T, n)
	if w <= 1 {
		for i := 0; i < n; i++ {
			results[i] = fn(i)
		}
		return results
	}

	panics := make([]*trialPanic, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							buf := make([]byte, 16<<10)
							buf = buf[:runtime.Stack(buf, false)]
							panics[i] = &trialPanic{val: r, stack: buf}
						}
					}()
					results[i] = fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	for i, p := range panics {
		if p != nil {
			panic(fmt.Sprintf("parsim: trial %d panicked: %v\n%s", i, p.val, p.stack))
		}
	}
	return results
}

// Do runs fn(0) .. fn(n-1) for side effects collected by the caller
// through the results of a closure; it is Map for trials with no
// return value.
func Do(n, workers int, fn func(trial int)) {
	Map(n, workers, func(i int) struct{} {
		fn(i)
		return struct{}{}
	})
}
