package integration

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/ethersim"
	"repro/internal/faults"
	"repro/internal/filter"
	"repro/internal/pfdev"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// Per-packet provenance under chaos: every frame the wire carries is
// stamped with a span at its origin and must terminate in exactly one
// of {user delivery, kernel delivery, typed drop} — and the drop
// taxonomy must reconcile, count for count, against the fault engine's
// own ledger.  These are the end-to-end invariants behind the flight
// recorder: if they hold, any packet's fate is explainable after the
// fact from the records alone.

// spanSignature digests everything observable about a span tracker —
// aggregates, taxonomy and every flight-recorder record with its stage
// marks — into one hash, for bit-identity comparisons across reruns
// and worker counts.
func spanSignature(sp *trace.Spans) string {
	h := sha256.New()
	fmt.Fprintf(h, "agg %d %d %d %v %d %d %d %d %d\n",
		sp.Created, sp.DeliveredUser, sp.DeliveredKernel, sp.Drops,
		sp.FlaggedCorrupt, sp.FlaggedDup, sp.FlaggedDelayed, sp.Wrapped, sp.DoubleTerm)
	for _, r := range sp.RecordsSnapshot() {
		fmt.Fprintf(h, "span %d %d %s %s %s %d %d %d %d\n",
			r.ID, r.Parent, r.Origin, r.Final, r.Class, r.Port, r.Term, r.Flags, r.End)
		for i := 0; i < int(r.NMarks); i++ {
			fmt.Fprintf(h, " m %d %d\n", r.Marks[i].Stage, r.Marks[i].When)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestChaosSpanTaxonomy reconciles the span taxonomy against the fault
// ledger on a 30%-fault soak cell: every wire-level drop is a typed
// wire_fault span death, every corrupted/duplicated/delayed frame is
// flagged, no span terminates twice, and the flight-recorder records
// agree with the aggregate counters record for record.
func TestChaosSpanTaxonomy(t *testing.T) {
	res := runChaosCell(t, 7, 0.30)
	sp := res.spans
	trace.DumpOnFailure(t, sp)

	if sp.Created == 0 {
		t.Fatal("no spans created: origin stamping is dead")
	}
	if res.ledger.Total() == 0 {
		t.Fatal("no faults injected at 30%: nothing to reconcile")
	}
	if sp.Drops[trace.DropWireFault] != res.ledger.Drops {
		t.Errorf("wire_fault drops = %d, ledger drops = %d",
			sp.Drops[trace.DropWireFault], res.ledger.Drops)
	}
	if sp.FlaggedCorrupt != res.ledger.Corrupts {
		t.Errorf("corrupt-flagged spans = %d, ledger corrupts = %d",
			sp.FlaggedCorrupt, res.ledger.Corrupts)
	}
	if sp.FlaggedDup != res.ledger.Dups {
		t.Errorf("dup-flagged spans = %d, ledger dups = %d",
			sp.FlaggedDup, res.ledger.Dups)
	}
	if sp.FlaggedDelayed != res.ledger.Delays {
		t.Errorf("delay-flagged spans = %d, ledger delays = %d",
			sp.FlaggedDelayed, res.ledger.Delays)
	}
	if sp.DoubleTerm != 0 {
		t.Errorf("%d spans terminated twice", sp.DoubleTerm)
	}
	if sp.Wrapped != 0 {
		t.Errorf("%d live records evicted: ring undersized for the soak", sp.Wrapped)
	}

	// The flight recorder is sized above the cell's packet count, so
	// its records must retell the aggregates exactly — and any span
	// still live at the end of time must be parked in an open port
	// queue (a Queue mark with no Read), never silently lost mid-path.
	var user, kern, drops, live uint64
	for _, r := range sp.RecordsSnapshot() {
		switch {
		case r.Term == trace.TermLive:
			live++
			if _, ok := r.MarkAt(trace.StageQueue); !ok {
				t.Errorf("live span %d never reached a port queue: %+v", r.ID, r)
			}
		case r.Term == trace.TermUser:
			user++
		case r.Term == trace.TermKernel:
			kern++
		default:
			drops++
		}
	}
	if user != sp.DeliveredUser || kern != sp.DeliveredKernel ||
		drops != sp.TotalDrops() || live != sp.Live() {
		t.Errorf("records disagree with aggregates: user %d/%d kernel %d/%d drops %d/%d live %d/%d",
			user, sp.DeliveredUser, kern, sp.DeliveredKernel,
			drops, sp.TotalDrops(), live, sp.Live())
	}
}

// soakFrame builds a Pup frame to the given socket with seeded filler.
func soakFrame(rng *rand.Rand, seq, socket int) []byte {
	size := 22 + rng.Intn(160)
	payload := make([]byte, size)
	payload[3] = byte(seq)
	payload[13] = byte(socket)
	for i := 22; i < size; i++ {
		payload[i] = byte(rng.Intn(256))
	}
	return ethersim.Ether3Mb.Encode(2, 1, ethersim.EtherTypePup3Mb, payload)
}

// TestSpanConservation drives a faulted wire with mixed matching and
// non-matching traffic, drains and closes every port, and requires the
// books to balance exactly: no span still live, none evicted, and
// created == delivered + Σ(typed drops).
func TestSpanConservation(t *testing.T) {
	s := sim.New(vtime.DefaultCosts())
	tr := trace.New()
	sp := tr.EnableSpans(trace.SpanConfig{Ring: 1 << 13})
	s.SetTracer(tr)
	trace.DumpOnFailure(t, sp)

	net := ethersim.New(s, ethersim.Ether3Mb)
	ha, hb := s.NewHost("a"), s.NewHost("b")
	na, nb := net.Attach(ha, 1), net.Attach(hb, 2)
	da := pfdev.Attach(na, nil, pfdev.Options{})
	db := pfdev.Attach(nb, nil, pfdev.Options{})
	eng := faults.New(s, 3, faults.Plan{Name: "conserve", Wire: faults.Uniform(0.20)})
	eng.AttachWire(net)

	const frames = 160
	s.Spawn(hb, "recv", func(p *sim.Proc) {
		port := db.Open(p)
		port.SetFilter(p, filter.DstSocketFilter(10, 35))
		port.SetQueueLimit(p, frames)
		port.SetTimeout(p, 10*time.Millisecond)
		idle := 0
		for idle < 2 {
			if _, err := port.Read(p); err != nil {
				idle++
			} else {
				idle = 0
			}
		}
		port.Close(p)
	})
	s.Spawn(ha, "send", func(p *sim.Proc) {
		rng := rand.New(rand.NewSource(3))
		port := da.Open(p)
		p.Sleep(2 * time.Millisecond)
		for i := 0; i < frames; i++ {
			socket := 35
			if i%5 == 4 {
				socket = 99 // nobody filters for this one
			}
			if err := port.Write(p, soakFrame(rng, i, socket)); err != nil {
				t.Error(err)
				return
			}
			p.Sleep(time.Duration(100+rng.Intn(900)) * time.Microsecond)
		}
		port.Close(p)
	})
	s.Run(0)

	if sp.Created == 0 {
		t.Fatal("no spans created")
	}
	if sp.Live() != 0 {
		t.Errorf("%d spans still live after every port closed", sp.Live())
	}
	if sp.Wrapped != 0 {
		t.Errorf("%d live records evicted", sp.Wrapped)
	}
	if sp.DoubleTerm != 0 {
		t.Errorf("%d spans terminated twice", sp.DoubleTerm)
	}
	if sp.Created != sp.DeliveredUser+sp.DeliveredKernel+sp.TotalDrops() {
		t.Errorf("conservation broken: created=%d user=%d kernel=%d drops=%d",
			sp.Created, sp.DeliveredUser, sp.DeliveredKernel, sp.TotalDrops())
	}
	if sp.Drops[trace.DropWireFault] != eng.Ledger.Drops {
		t.Errorf("wire_fault drops = %d, ledger drops = %d",
			sp.Drops[trace.DropWireFault], eng.Ledger.Drops)
	}
	if sp.Drops[trace.DropNoMatch] == 0 {
		t.Error("non-matching traffic produced no nomatch drops")
	}
	if sp.DeliveredUser == 0 {
		t.Error("no user deliveries")
	}
}
