// Package integration runs whole-system scenarios: every protocol this
// repository implements operating simultaneously over one simulated
// Ethernet — figure 3-3's world, where kernel-resident IP/TCP, kernel
// VMTP, user-level Pup/BSP and RARP through the packet filter, and a
// promiscuous monitor all coexist on the same wire.
package integration

import (
	"bytes"
	"io"
	"testing"
	"time"

	"repro/internal/ethersim"
	"repro/internal/inet"
	"repro/internal/monitor"
	"repro/internal/pfdev"
	"repro/internal/pup"
	"repro/internal/rarp"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vmtp"
	"repro/internal/vtime"
)

// world is the full test topology: two workstations, a diskless node,
// and a monitoring station on one 10 Mb Ethernet.
type world struct {
	s                 *sim.Sim
	net               *ethersim.Network
	alpha, beta       *sim.Host
	diskless, watcher *sim.Host
	nicA, nicB        *ethersim.NIC
	nicD, nicW        *ethersim.NIC
	stackA, stackB    *inet.Stack
	vmtpA, vmtpB      *vmtp.KernelTransport
	devA, devB        *pfdev.Device
	devD, devW        *pfdev.Device
}

func newWorld() *world {
	s := sim.New(vtime.DefaultCosts())
	net := ethersim.New(s, ethersim.Ether10Mb)
	w := &world{
		s: s, net: net,
		alpha: s.NewHost("alpha"), beta: s.NewHost("beta"),
		diskless: s.NewHost("diskless"), watcher: s.NewHost("watcher"),
	}
	w.nicA = net.Attach(w.alpha, 0xA1)
	w.nicB = net.Attach(w.beta, 0xB2)
	w.nicD = net.Attach(w.diskless, 0xD3)
	w.nicW = net.Attach(w.watcher, 0xE4)
	w.nicW.Promiscuous = true

	w.stackA = inet.NewStack(w.nicA, 0x0A0000A1)
	w.stackB = inet.NewStack(w.nicB, 0x0A0000B2)
	w.stackA.AddARP(w.stackB.Addr(), w.nicB.Addr())
	w.stackB.AddARP(w.stackA.Addr(), w.nicA.Addr())
	w.vmtpA = vmtp.AttachKernel(w.nicA, vmtp.DefaultKernelConfig())
	w.vmtpB = vmtp.AttachKernel(w.nicB, vmtp.DefaultKernelConfig())

	w.devA = pfdev.Attach(w.nicA, pfdev.Chain(w.stackA, w.vmtpA), pfdev.Options{})
	w.devB = pfdev.Attach(w.nicB, pfdev.Chain(w.stackB, w.vmtpB), pfdev.Options{})
	w.devD = pfdev.Attach(w.nicD, nil, pfdev.Options{})
	w.devW = pfdev.Attach(w.nicW, nil, pfdev.Options{})
	return w
}

// results collected by runEverything.
type results struct {
	tcpBytes    int
	bspOK       bool
	vmtpOK      bool
	userVMTPOK  bool
	rarpIP      rarp.IPAddr
	echoRTT     time.Duration
	monPackets  int
	monProtos   map[string]int
	endTime     time.Duration
	wireFrames  uint64
	totalSwitch uint64
}

// runEverything drives the whole scenario; tr, when non-nil, observes
// the run (the traced-determinism test passes a recording tracer).
func runEverything(t *testing.T, tr *trace.Tracer) results {
	t.Helper()
	w := newWorld()
	if tr != nil {
		w.s.SetTracer(tr)
	}
	var res results
	tcpData := bytes.Repeat([]byte("kernel tcp "), 1000) // ~11 KB
	bspData := bytes.Repeat([]byte("user bsp "), 800)    // ~7 KB
	vmtpBlob := bytes.Repeat([]byte{0x5A}, 4000)

	// --- Monitor (watcher host) -----------------------------------
	mon := monitor.New(w.devW)
	w.s.Spawn(w.watcher, "monitor", func(p *sim.Proc) {
		mon.Run(p, 250*time.Millisecond)
	})

	// --- Kernel TCP: alpha -> beta --------------------------------
	w.s.Spawn(w.beta, "tcpd", func(p *sim.Proc) {
		l, err := w.stackB.TCPListen(p, 80, inet.DefaultTCPConfig())
		if err != nil {
			t.Error(err)
			return
		}
		c, err := l.Accept(p, 2*time.Second)
		if err != nil {
			t.Error(err)
			return
		}
		c.SetTimeout(2 * time.Second)
		var got bytes.Buffer
		for {
			chunk, err := c.Read(p, 0)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Error(err)
				return
			}
			got.Write(chunk)
		}
		if !bytes.Equal(got.Bytes(), tcpData) {
			t.Error("tcp stream corrupted")
			return
		}
		res.tcpBytes = got.Len()
	})
	w.s.Spawn(w.alpha, "tcp-client", func(p *sim.Proc) {
		p.Sleep(3 * time.Millisecond)
		c, err := w.stackA.TCPDial(p, w.stackB.Addr(), 80, 4000, inet.DefaultTCPConfig())
		if err != nil {
			t.Error(err)
			return
		}
		c.Write(p, tcpData)
		c.Close(p)
	})

	// --- User-level BSP: beta -> alpha ----------------------------
	bspAddr := pup.PortAddr{Net: 1, Host: 0xA1, Socket: 0x500}
	w.s.Spawn(w.alpha, "bsp-recv", func(p *sim.Proc) {
		sock, err := pup.Open(p, w.devA, bspAddr, 10)
		if err != nil {
			t.Error(err)
			return
		}
		rcv := pup.NewBSPReceiver(sock, pup.DefaultBSPConfig())
		var got bytes.Buffer
		for {
			seg, err := rcv.Receive(p, 400*time.Millisecond)
			if err != nil {
				break
			}
			got.Write(seg)
		}
		res.bspOK = bytes.Equal(got.Bytes(), bspData)
	})
	w.s.Spawn(w.beta, "bsp-send", func(p *sim.Proc) {
		sock, err := pup.Open(p, w.devB, pup.PortAddr{Net: 1, Host: 0xB2, Socket: 0x501}, 10)
		if err != nil {
			t.Error(err)
			return
		}
		p.Sleep(5 * time.Millisecond)
		snd := pup.NewBSPSender(sock, bspAddr, pup.DefaultBSPConfig())
		if err := snd.Send(p, bspData); err != nil {
			t.Error(err)
			return
		}
		snd.Close(p)
	})

	// --- Kernel VMTP: alpha calls beta ----------------------------
	w.s.Spawn(w.beta, "vmtpd", func(p *sim.Proc) {
		svc := w.vmtpB.Register(p, 700)
		svc.Serve(p, func(op uint16, req []byte) []byte { return vmtpBlob },
			400*time.Millisecond)
	})
	w.s.Spawn(w.alpha, "vmtp-client", func(p *sim.Proc) {
		p.Sleep(6 * time.Millisecond)
		resp, err := w.vmtpA.Call(p, w.nicB.Addr(), 700, 2, nil, 701)
		if err != nil {
			t.Error(err)
			return
		}
		res.vmtpOK = bytes.Equal(resp, vmtpBlob)
	})

	// --- User-level VMTP on DIFFERENT ports, same hosts -----------
	w.s.Spawn(w.beta, "uvmtpd", func(p *sim.Proc) {
		ep, err := vmtp.NewUserEndpoint(p, w.devB, 800, vmtp.DefaultUserConfig())
		if err != nil {
			t.Error(err)
			return
		}
		ep.Serve(p, func(op uint16, req []byte) []byte { return req }, 400*time.Millisecond)
	})
	w.s.Spawn(w.alpha, "uvmtp-client", func(p *sim.Proc) {
		ep, err := vmtp.NewUserEndpoint(p, w.devA, 801, vmtp.DefaultUserConfig())
		if err != nil {
			t.Error(err)
			return
		}
		p.Sleep(8 * time.Millisecond)
		resp, err := ep.Call(p, w.nicB.Addr(), 800, 1, []byte("coexist"))
		if err != nil {
			t.Error(err)
			return
		}
		res.userVMTPOK = string(resp) == "coexist"
	})

	// --- RARP: the diskless host boots off a server on beta -------
	srv := rarp.NewServer(w.devB, map[ethersim.Addr]rarp.IPAddr{
		0xD3: 0x0A0000D3,
	})
	w.s.Spawn(w.beta, "rarpd", func(p *sim.Proc) { srv.Run(p, 400*time.Millisecond) })
	w.s.Spawn(w.diskless, "boot", func(p *sim.Proc) {
		p.Sleep(10 * time.Millisecond)
		ip, err := rarp.Resolve(p, w.devD, 30*time.Millisecond, 4)
		if err != nil {
			t.Error(err)
			return
		}
		res.rarpIP = ip
	})

	// --- Pup echo: diskless pings beta after booting ---------------
	echoAddr := pup.PortAddr{Net: 1, Host: 0xB2, Socket: 0x30}
	w.s.Spawn(w.beta, "echod", func(p *sim.Proc) {
		sock, err := pup.Open(p, w.devB, echoAddr, 10)
		if err != nil {
			t.Error(err)
			return
		}
		sock.EchoServer(p, 400*time.Millisecond)
	})
	w.s.Spawn(w.diskless, "pinger", func(p *sim.Proc) {
		sock, err := pup.Open(p, w.devD, pup.PortAddr{Net: 1, Host: 0xD3, Socket: 0x31}, 10)
		if err != nil {
			t.Error(err)
			return
		}
		p.Sleep(60 * time.Millisecond)
		rtt, err := sock.Echo(p, echoAddr, []byte("up?"), 60*time.Millisecond, 3)
		if err != nil {
			t.Error(err)
			return
		}
		res.echoRTT = rtt
	})

	res.endTime = w.s.Run(10 * time.Second)
	res.monPackets = mon.Stats.Packets
	res.monProtos = mon.Stats.ByProto
	res.wireFrames = w.net.FramesOnWire
	res.totalSwitch = w.s.Counters.ContextSwitches
	return res
}

func TestEverythingCoexists(t *testing.T) {
	res := runEverything(t, nil)
	if res.tcpBytes != 11000 {
		t.Errorf("tcp received %d bytes", res.tcpBytes)
	}
	if !res.bspOK {
		t.Error("bsp transfer failed")
	}
	if !res.vmtpOK {
		t.Error("kernel vmtp failed")
	}
	if !res.userVMTPOK {
		t.Error("user vmtp failed")
	}
	if res.rarpIP != 0x0A0000D3 {
		t.Errorf("rarp resolved %08x", uint32(res.rarpIP))
	}
	if res.echoRTT <= 0 {
		t.Error("no echo round trip")
	}
	// The monitor must have decoded every protocol family in play.
	for _, proto := range []string{"ip/tcp", "bsp", "vmtp", "rarp", "pup"} {
		if res.monProtos[proto] == 0 {
			t.Errorf("monitor saw no %s traffic (%v)", proto, res.monProtos)
		}
	}
	// And it must have seen (nearly) every frame on the wire; its
	// own transmissions are the only exclusions.
	if uint64(res.monPackets) < res.wireFrames*9/10 {
		t.Errorf("monitor captured %d of %d frames", res.monPackets, res.wireFrames)
	}
}

// TestWholeSystemDeterminism re-runs the full scenario and requires
// bit-identical timing and counters — the property that makes every
// benchmark in this repository reproducible.
func TestWholeSystemDeterminism(t *testing.T) {
	a := runEverything(t, nil)
	b := runEverything(t, nil)
	if a.endTime != b.endTime {
		t.Fatalf("end times differ: %v vs %v", a.endTime, b.endTime)
	}
	if a.wireFrames != b.wireFrames {
		t.Fatalf("wire frames differ: %d vs %d", a.wireFrames, b.wireFrames)
	}
	if a.totalSwitch != b.totalSwitch {
		t.Fatalf("context switches differ: %d vs %d", a.totalSwitch, b.totalSwitch)
	}
	if a.echoRTT != b.echoRTT {
		t.Fatalf("echo RTTs differ: %v vs %v", a.echoRTT, b.echoRTT)
	}
	if a.monPackets != b.monPackets {
		t.Fatalf("monitor captures differ: %d vs %d", a.monPackets, b.monPackets)
	}
}

// TestTracedRunsAreDeterministic extends the determinism guarantee to
// the observability layer: two identical traced runs must produce
// bit-identical event streams and metric snapshots, and attaching a
// tracer must not perturb the simulation itself.
func TestTracedRunsAreDeterministic(t *testing.T) {
	run := func() (results, []trace.Event, []byte) {
		tr := trace.New()
		rec := &trace.Recorder{}
		tr.SetSink(rec)
		res := runEverything(t, tr)
		raw, err := tr.Snapshot().JSON()
		if err != nil {
			t.Fatal(err)
		}
		return res, rec.Events, raw
	}
	resA, eventsA, snapA := run()
	_, eventsB, snapB := run()

	if len(eventsA) == 0 {
		t.Fatal("traced run produced no events")
	}
	if len(eventsA) != len(eventsB) {
		t.Fatalf("event counts differ: %d vs %d", len(eventsA), len(eventsB))
	}
	for i := range eventsA {
		if eventsA[i] != eventsB[i] {
			t.Fatalf("event %d differs:\n  %+v\n  %+v", i, eventsA[i], eventsB[i])
		}
	}
	if !bytes.Equal(snapA, snapB) {
		t.Fatal("metric snapshots differ between identical runs")
	}

	// The tracer is an observer only: the simulation must end at the
	// same virtual time with the same counters as an untraced run.
	plain := runEverything(t, nil)
	if plain.endTime != resA.endTime || plain.totalSwitch != resA.totalSwitch ||
		plain.wireFrames != resA.wireFrames {
		t.Fatalf("tracing perturbed the run: traced (%v, %d, %d) vs plain (%v, %d, %d)",
			resA.endTime, resA.totalSwitch, resA.wireFrames,
			plain.endTime, plain.totalSwitch, plain.wireFrames)
	}
}

// TestEverythingUnderLoss re-runs the scenario with deterministic
// frame loss: every protocol must still complete via its own
// retransmission machinery.
func TestEverythingUnderLoss(t *testing.T) {
	s := sim.New(vtime.DefaultCosts())
	net := ethersim.New(s, ethersim.Ether10Mb)
	net.DropEvery = 13
	alpha, beta := s.NewHost("alpha"), s.NewHost("beta")
	nicA, nicB := net.Attach(alpha, 0xA1), net.Attach(beta, 0xB2)
	stackA, stackB := inet.NewStack(nicA, 0x0A0000A1), inet.NewStack(nicB, 0x0A0000B2)
	stackA.AddARP(stackB.Addr(), nicB.Addr())
	stackB.AddARP(stackA.Addr(), nicA.Addr())
	devA := pfdev.Attach(nicA, stackA, pfdev.Options{})
	devB := pfdev.Attach(nicB, stackB, pfdev.Options{})

	tcpData := bytes.Repeat([]byte("x"), 20000)
	bspData := bytes.Repeat([]byte("y"), 5000)
	tcpOK, bspOK := false, false

	s.Spawn(beta, "tcpd", func(p *sim.Proc) {
		l, _ := stackB.TCPListen(p, 80, inet.DefaultTCPConfig())
		c, err := l.Accept(p, 5*time.Second)
		if err != nil {
			return
		}
		c.SetTimeout(3 * time.Second)
		var got bytes.Buffer
		for {
			chunk, err := c.Read(p, 0)
			if err != nil {
				break
			}
			got.Write(chunk)
		}
		tcpOK = bytes.Equal(got.Bytes(), tcpData)
	})
	s.Spawn(alpha, "tcp-client", func(p *sim.Proc) {
		p.Sleep(2 * time.Millisecond)
		c, err := stackA.TCPDial(p, stackB.Addr(), 80, 4000, inet.DefaultTCPConfig())
		if err != nil {
			t.Error(err)
			return
		}
		c.Write(p, tcpData)
		c.Close(p)
	})

	bspAddr := pup.PortAddr{Net: 1, Host: 0xA1, Socket: 0x500}
	s.Spawn(alpha, "bsp-recv", func(p *sim.Proc) {
		sock, _ := pup.Open(p, devA, bspAddr, 10)
		rcv := pup.NewBSPReceiver(sock, pup.DefaultBSPConfig())
		var got bytes.Buffer
		for {
			seg, err := rcv.Receive(p, 2*time.Second)
			if err != nil {
				break
			}
			got.Write(seg)
		}
		bspOK = bytes.Equal(got.Bytes(), bspData)
	})
	s.Spawn(beta, "bsp-send", func(p *sim.Proc) {
		sock, _ := pup.Open(p, devB, pup.PortAddr{Net: 1, Host: 0xB2, Socket: 0x501}, 10)
		p.Sleep(5 * time.Millisecond)
		snd := pup.NewBSPSender(sock, bspAddr, pup.DefaultBSPConfig())
		if err := snd.Send(p, bspData); err != nil {
			t.Error(err)
			return
		}
		snd.Close(p)
	})

	s.Run(30 * time.Second)
	if net.Dropped == 0 {
		t.Fatal("loss injection inactive")
	}
	if !tcpOK {
		t.Error("tcp failed under loss")
	}
	if !bspOK {
		t.Error("bsp failed under loss")
	}
}
