package integration

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/ethersim"
	"repro/internal/faults"
	"repro/internal/filter"
	"repro/internal/parsim"
	"repro/internal/pfdev"
	"repro/internal/shm"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// The golden-trace corpus: a grid of (config, seed) universes whose
// complete observable behavior — every trace event, the final metrics
// snapshot and the final virtual clock — is pinned as a SHA-256 hash.
// Any change that shifts an event, a counter or a tick anywhere in
// sim/ethersim/pfdev/shm/faults moves a hash and fails here; any
// optimization that preserves behavior (event pooling, buffer reuse,
// parallel execution) leaves every hash untouched.

// goldenCfg is one delivery configuration of the corpus.
type goldenCfg struct {
	name     string
	coalesce bool // interrupt coalescing, budget 4 / 2 mSec
	ring     bool // drain through a mapped shm ring
	faults   bool // 20% seeded wire chaos
}

func goldenConfigs() []goldenCfg {
	return []goldenCfg{
		{name: "plain"},
		{name: "coalesce", coalesce: true},
		{name: "ring", ring: true},
		{name: "faults", faults: true},
		{name: "all", coalesce: true, ring: true, faults: true},
	}
}

// goldenFrame builds a Pup frame to socket 35 carrying seq and
// rng-derived filler.
func goldenFrame(rng *rand.Rand, seq int) []byte {
	size := 22 + rng.Intn(160)
	payload := make([]byte, size)
	payload[3] = byte(seq)
	payload[13] = 35
	for i := 22; i < size; i++ {
		payload[i] = byte(rng.Intn(256))
	}
	return ethersim.Ether3Mb.Encode(2, 1, ethersim.EtherTypePup3Mb, payload)
}

// goldenRun drives one fully traced universe and digests everything
// observable about it into one hash.
func goldenRun(seed uint64, cfg goldenCfg) string {
	s := sim.New(vtime.DefaultCosts())
	tr := trace.New()
	rec := &trace.Recorder{}
	tr.SetSink(rec)
	sp := tr.EnableSpans(trace.SpanConfig{Ring: 512})
	s.SetTracer(tr)

	net := ethersim.New(s, ethersim.Ether3Mb)
	ha, hb := s.NewHost("a"), s.NewHost("b")
	na, nb := net.Attach(ha, 1), net.Attach(hb, 2)
	opt := pfdev.Options{}
	if cfg.coalesce {
		opt.CoalesceBudget = 4
		opt.CoalesceDelay = 2 * time.Millisecond
	}
	da := pfdev.Attach(na, nil, pfdev.Options{})
	db := pfdev.Attach(nb, nil, opt)
	if cfg.faults {
		eng := faults.New(s, seed, faults.Plan{Name: "golden", Wire: faults.Uniform(0.20)})
		eng.AttachWire(net)
	}

	n := 12 + int(seed%5)
	s.Spawn(hb, "recv", func(p *sim.Proc) {
		port := db.Open(p)
		port.SetFilter(p, filter.DstSocketFilter(10, 35))
		port.SetQueueLimit(p, 4*n)
		port.SetTimeout(p, 10*time.Millisecond)
		if cfg.ring {
			reg := shm.NewRegistry(hb)
			seg, err := reg.Map(p, "golden", port.RingLayoutSize(2*n))
			if err != nil {
				panic(err)
			}
			if err := port.MapRing(p, seg, 2*n); err != nil {
				panic(err)
			}
		}
		idle := 0
		for idle < 2 {
			var err error
			if cfg.ring {
				_, err = port.ReapBatch(p)
			} else {
				_, err = port.Read(p)
			}
			if err != nil {
				idle++
			} else {
				idle = 0
			}
		}
	})
	s.Spawn(ha, "send", func(p *sim.Proc) {
		rng := rand.New(rand.NewSource(int64(seed)))
		port := da.Open(p)
		p.Sleep(2 * time.Millisecond)
		for i := 0; i < n; i++ {
			if err := port.Write(p, goldenFrame(rng, i)); err != nil {
				panic(err)
			}
			p.Sleep(time.Duration(100+rng.Intn(1200)) * time.Microsecond)
		}
	})
	end := s.Run(0)

	h := sha256.New()
	for _, e := range rec.Events {
		fmt.Fprintf(h, "%d %d %s %s %s %d %d %d\n",
			e.When, e.Kind, e.Host, e.Proc, e.Tag, e.Port, e.Value, e.Aux)
	}
	snap, err := tr.Snapshot().JSON()
	if err != nil {
		panic(err)
	}
	h.Write(snap)
	// The provenance stream is observable behavior too: every span
	// record, stage mark and taxonomy counter is folded into the pin,
	// so a shifted mark or a recounted drop moves the hash exactly like
	// a shifted trace event would.
	fmt.Fprintf(h, "spans %s\n", spanSignature(sp))
	fmt.Fprintf(h, "end %d\n", end)
	return hex.EncodeToString(h.Sum(nil))
}

// goldenHashes pins the corpus.  When an intentional behavior change
// moves a trace, the failure message prints the new hash — re-pin it
// here only after confirming the shift is intended.
var goldenHashes = map[string]string{
	"plain/1":    "e8c0b54b0a82ba7e515fa8f60317fdad53eeb791e21ae72b2578677b720e5ce2",
	"plain/2":    "8627cdff771977e5d7befc4021c4895d5b6a5da3112e808eacbca9b278e956f4",
	"coalesce/1": "a1e9e7bf22d5383d52a0935a335b48eefac6d8437d2d87d82a39f0cba6a374d8",
	"coalesce/2": "7521f628e019badead69fe25bb3df635c88362f880d6f8dc7f41063a34ad1ab8",
	"ring/1":     "99eb5ad4cd7ffa0f7d910e81e56d223c852a5fcace7f9734625f634447566fd5",
	"ring/2":     "d5b75bb9874a59f0266a218aaf3cdce5648828611a1684daa8e769a46908d699",
	"faults/1":   "260da025e881fb877f0e89db7b887019e0e5b6874e17f244d8dfaeac7862800d",
	"faults/2":   "817d84f3d5662fbde99e97b622a776c7b6b7681ee84eeff8c2121f366005af93",
	"all/1":      "95a84604d028ad9d70d76d2f1fbd311cb55e83dd38ca58609b54be8e45d05d8a",
	"all/2":      "a20137721caa18581dc079849b866619c7af51f380adf1dacf5d9e6be7d5d9e9",
}

// goldenCells enumerates the corpus in deterministic order.
func goldenCells() (keys []string, cfgs []goldenCfg, seeds []uint64) {
	for _, cfg := range goldenConfigs() {
		for _, seed := range []uint64{1, 2} {
			keys = append(keys, fmt.Sprintf("%s/%d", cfg.name, seed))
			cfgs = append(cfgs, cfg)
			seeds = append(seeds, seed)
		}
	}
	return
}

// TestGoldenTraceCorpus checks every cell against its pinned hash —
// run both sequentially and across the parsim pool, so the worker pool
// itself is pinned to have no observable effect.
func TestGoldenTraceCorpus(t *testing.T) {
	keys, cfgs, seeds := goldenCells()
	for _, workers := range []int{1, 4} {
		got := parsim.Map(len(keys), workers, func(i int) string {
			return goldenRun(seeds[i], cfgs[i])
		})
		for i, key := range keys {
			want := goldenHashes[key]
			if want == "" {
				t.Errorf("workers=%d: %s: no pinned hash; got %s", workers, key, got[i])
				continue
			}
			if got[i] != want {
				t.Errorf("workers=%d: %s: trace hash %s, want %s", workers, key, got[i], want)
			}
		}
	}
}
