package integration

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/ethersim"
	"repro/internal/faults"
	"repro/internal/filter"
	"repro/internal/parsim"
	"repro/internal/pfdev"
	"repro/internal/shm"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// The golden-trace corpus: a grid of (config, seed) universes whose
// complete observable behavior — every trace event, the final metrics
// snapshot and the final virtual clock — is pinned as a SHA-256 hash.
// Any change that shifts an event, a counter or a tick anywhere in
// sim/ethersim/pfdev/shm/faults moves a hash and fails here; any
// optimization that preserves behavior (event pooling, buffer reuse,
// parallel execution) leaves every hash untouched.

// goldenCfg is one delivery configuration of the corpus.
type goldenCfg struct {
	name     string
	coalesce bool // interrupt coalescing, budget 4 / 2 mSec
	ring     bool // drain through a mapped shm ring
	faults   bool // 20% seeded wire chaos
}

func goldenConfigs() []goldenCfg {
	return []goldenCfg{
		{name: "plain"},
		{name: "coalesce", coalesce: true},
		{name: "ring", ring: true},
		{name: "faults", faults: true},
		{name: "all", coalesce: true, ring: true, faults: true},
	}
}

// goldenFrame builds a Pup frame to socket 35 carrying seq and
// rng-derived filler.
func goldenFrame(rng *rand.Rand, seq int) []byte {
	size := 22 + rng.Intn(160)
	payload := make([]byte, size)
	payload[3] = byte(seq)
	payload[13] = 35
	for i := 22; i < size; i++ {
		payload[i] = byte(rng.Intn(256))
	}
	return ethersim.Ether3Mb.Encode(2, 1, ethersim.EtherTypePup3Mb, payload)
}

// goldenRun drives one fully traced universe and digests everything
// observable about it into one hash.
func goldenRun(seed uint64, cfg goldenCfg) string {
	s := sim.New(vtime.DefaultCosts())
	tr := trace.New()
	rec := &trace.Recorder{}
	tr.SetSink(rec)
	s.SetTracer(tr)

	net := ethersim.New(s, ethersim.Ether3Mb)
	ha, hb := s.NewHost("a"), s.NewHost("b")
	na, nb := net.Attach(ha, 1), net.Attach(hb, 2)
	opt := pfdev.Options{}
	if cfg.coalesce {
		opt.CoalesceBudget = 4
		opt.CoalesceDelay = 2 * time.Millisecond
	}
	da := pfdev.Attach(na, nil, pfdev.Options{})
	db := pfdev.Attach(nb, nil, opt)
	if cfg.faults {
		eng := faults.New(s, seed, faults.Plan{Name: "golden", Wire: faults.Uniform(0.20)})
		eng.AttachWire(net)
	}

	n := 12 + int(seed%5)
	s.Spawn(hb, "recv", func(p *sim.Proc) {
		port := db.Open(p)
		port.SetFilter(p, filter.DstSocketFilter(10, 35))
		port.SetQueueLimit(p, 4*n)
		port.SetTimeout(p, 10*time.Millisecond)
		if cfg.ring {
			reg := shm.NewRegistry(hb)
			seg, err := reg.Map(p, "golden", port.RingLayoutSize(2*n))
			if err != nil {
				panic(err)
			}
			if err := port.MapRing(p, seg, 2*n); err != nil {
				panic(err)
			}
		}
		idle := 0
		for idle < 2 {
			var err error
			if cfg.ring {
				_, err = port.ReapBatch(p)
			} else {
				_, err = port.Read(p)
			}
			if err != nil {
				idle++
			} else {
				idle = 0
			}
		}
	})
	s.Spawn(ha, "send", func(p *sim.Proc) {
		rng := rand.New(rand.NewSource(int64(seed)))
		port := da.Open(p)
		p.Sleep(2 * time.Millisecond)
		for i := 0; i < n; i++ {
			if err := port.Write(p, goldenFrame(rng, i)); err != nil {
				panic(err)
			}
			p.Sleep(time.Duration(100+rng.Intn(1200)) * time.Microsecond)
		}
	})
	end := s.Run(0)

	h := sha256.New()
	for _, e := range rec.Events {
		fmt.Fprintf(h, "%d %d %s %s %s %d %d %d\n",
			e.When, e.Kind, e.Host, e.Proc, e.Tag, e.Port, e.Value, e.Aux)
	}
	snap, err := tr.Snapshot().JSON()
	if err != nil {
		panic(err)
	}
	h.Write(snap)
	fmt.Fprintf(h, "end %d\n", end)
	return hex.EncodeToString(h.Sum(nil))
}

// goldenHashes pins the corpus.  When an intentional behavior change
// moves a trace, the failure message prints the new hash — re-pin it
// here only after confirming the shift is intended.
var goldenHashes = map[string]string{
	"plain/1":    "ec21cf900c9cd19c1195d46d3f4d12dee8d2231c0a81be1d95d424ef575ef818",
	"plain/2":    "323c61964fc4aba1cae8070aeabb6d731b7d5f45b6225b7cd555a1523a57822f",
	"coalesce/1": "fdb2077e02194035096574649af785fdfe24be8590d4f222e75ea3dddc2ade4e",
	"coalesce/2": "d5e809f3dfc435c8c71a8573ce9fd330ddd70ed6f0d5e2dc5d2220583b7d3251",
	"ring/1":     "624fe435fa428ade84e87bd04258aa578a1a1ead205975dbc368b892f642f7f5",
	"ring/2":     "b838fb7a0e2be17d0d62ecfb8245ef1765684f5e32112fcfb9576883fb142f56",
	"faults/1":   "5ef4a611b9a622c48df7307349e6328ca9bf2266b4a1fa16d6f307a5e87d0bcd",
	"faults/2":   "6b3f89b1be627e9501997bc7e6ccb41d1c8698b3b8b2699d52623dfae0309b88",
	"all/1":      "09430fb263d8d5f8bf55106ee5765fed9fcd8101ab831c3ed5531ac749724099",
	"all/2":      "dd1731399c188b0144b7b02d653aaa4a61df8eb123e483f78806bc5065745e2b",
}

// goldenCells enumerates the corpus in deterministic order.
func goldenCells() (keys []string, cfgs []goldenCfg, seeds []uint64) {
	for _, cfg := range goldenConfigs() {
		for _, seed := range []uint64{1, 2} {
			keys = append(keys, fmt.Sprintf("%s/%d", cfg.name, seed))
			cfgs = append(cfgs, cfg)
			seeds = append(seeds, seed)
		}
	}
	return
}

// TestGoldenTraceCorpus checks every cell against its pinned hash —
// run both sequentially and across the parsim pool, so the worker pool
// itself is pinned to have no observable effect.
func TestGoldenTraceCorpus(t *testing.T) {
	keys, cfgs, seeds := goldenCells()
	for _, workers := range []int{1, 4} {
		got := parsim.Map(len(keys), workers, func(i int) string {
			return goldenRun(seeds[i], cfgs[i])
		})
		for i, key := range keys {
			want := goldenHashes[key]
			if want == "" {
				t.Errorf("workers=%d: %s: no pinned hash; got %s", workers, key, got[i])
				continue
			}
			if got[i] != want {
				t.Errorf("workers=%d: %s: trace hash %s, want %s", workers, key, got[i], want)
			}
		}
	}
}
